module pitract

go 1.24
