package pitract

// One benchmark per experiment id (regenerating the corresponding paper
// artifact end to end at Quick scale), plus fine-grained per-operation
// benchmarks for the answering paths whose polylog/constant growth the
// paper claims. Run with:
//
//	go test -bench=. -benchmem
//
// The per-op benchmarks report the interesting number directly (ns per
// answered query after preprocessing); the experiment benchmarks bound the
// cost of regenerating each table.

import (
	"io"
	"math/rand"
	"testing"

	"pitract/internal/harness"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
		tbl.Render(io.Discard)
	}
}

func BenchmarkE1_PointSelection(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkF1_BDSFactorizations(b *testing.B)  { benchExperiment(b, "F1") }
func BenchmarkF2_Landscape(b *testing.B)          { benchExperiment(b, "F2") }
func BenchmarkE3b_Reachability(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkC1_RangeSelection(b *testing.B)     { benchExperiment(b, "C1") }
func BenchmarkC2_ListSearch(b *testing.B)         { benchExperiment(b, "C2") }
func BenchmarkC3_RMQ(b *testing.B)                { benchExperiment(b, "C3") }
func BenchmarkC4_LCA(b *testing.B)                { benchExperiment(b, "C4") }
func BenchmarkC5_Compression(b *testing.B)        { benchExperiment(b, "C5") }
func BenchmarkC6_Views(b *testing.B)              { benchExperiment(b, "C6") }
func BenchmarkC7_Incremental(b *testing.B)        { benchExperiment(b, "C7") }
func BenchmarkC8_CVP(b *testing.B)                { benchExperiment(b, "C8") }
func BenchmarkC9_VertexCover(b *testing.B)        { benchExperiment(b, "C9") }
func BenchmarkC10_TopK(b *testing.B)              { benchExperiment(b, "C10") }
func BenchmarkC11_IncrementalPrep(b *testing.B)   { benchExperiment(b, "C11") }
func BenchmarkC12_FuncAndRewriting(b *testing.B)  { benchExperiment(b, "C12") }
func BenchmarkT5_CompletenessChain(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkL2_Composition(b *testing.B)        { benchExperiment(b, "L2") }
func BenchmarkT9_Separation(b *testing.B)         { benchExperiment(b, "T9") }
func BenchmarkP10_FReductions(b *testing.B)       { benchExperiment(b, "P10") }
func BenchmarkA1_ClosureAblation(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2_BTreeFanout(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3_RMQAblation(b *testing.B)        { benchExperiment(b, "A3") }
func BenchmarkX1_ParallelPRAM(b *testing.B)       { benchExperiment(b, "X1") }
func BenchmarkX2_BatchAnswering(b *testing.B)     { benchExperiment(b, "X2") }
func BenchmarkX3_Serving(b *testing.B)            { benchExperiment(b, "X3") }
func BenchmarkX4_Sharding(b *testing.B)           { benchExperiment(b, "X4") }
func BenchmarkX5_IncrementalServing(b *testing.B) { benchExperiment(b, "X5") }

// BenchmarkX6 regenerates the hot-path cache experiment and reports its
// headline numbers — the repeated-query (bfs, hot-mix) cached-vs-uncached
// speedup and the cache hit ratio — as benchmark metrics, so BENCH_ci.json
// tracks the cache's measured payoff from this PR on.
func BenchmarkX6(b *testing.B) {
	var speedup, hitRatio float64
	for i := 0; i < b.N; i++ {
		var err error
		speedup, hitRatio, err = harness.X6CachedSpeedup(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedup, "cached-speedup-x")
	b.ReportMetric(hitRatio, "hit-ratio")
}

func BenchmarkX6_HotPathCache(b *testing.B) { benchExperiment(b, "X6") }

// BenchmarkX7 regenerates the serving-envelope load experiment and reports
// its headline numbers — the admitted p99 latency and the rejection rate
// over the overload zipf mix — as benchmark metrics, so BENCH_ci.json
// tracks how the envelope degrades under pressure from this PR on.
func BenchmarkX7(b *testing.B) {
	var p99Ms, rejectedRate float64
	for i := 0; i < b.N; i++ {
		var err error
		p99Ms, rejectedRate, err = harness.X7EnvelopeMetrics(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p99Ms, "admitted-p99-ms")
	b.ReportMetric(rejectedRate, "rejection-rate")
}

func BenchmarkX7_Envelope(b *testing.B) { benchExperiment(b, "X7") }

// BenchmarkX8 regenerates the observability-overhead experiment and
// reports its headline numbers — the relative QPS cost of instrumentation
// and the instrumented QPS — as benchmark metrics, so BENCH_ci.json tracks
// what the metrics layer itself costs from this PR on.
func BenchmarkX8(b *testing.B) {
	var overheadPct, qps float64
	for i := 0; i < b.N; i++ {
		var err error
		overheadPct, qps, err = harness.X8OverheadMetrics(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(overheadPct, "obs-overhead-pct")
	b.ReportMetric(qps, "instrumented-qps")
}

func BenchmarkX8_ObsOverhead(b *testing.B) { benchExperiment(b, "X8") }

// BenchmarkX9 regenerates the full-dynamism experiment and reports its
// headline numbers — the delete-heavy maintain-vs-rebuild speedup and the
// delta-log crash-replay wall time — as benchmark metrics, so
// BENCH_ci.json tracks what dynamism costs (and saves) from this PR on.
func BenchmarkX9(b *testing.B) {
	var speedup, replayMs float64
	for i := 0; i < b.N; i++ {
		var err error
		speedup, replayMs, err = harness.X9DynamismMetrics(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedup, "delete-maintain-speedup-x")
	b.ReportMetric(replayMs, "replay-ms")
}

func BenchmarkX9_FullDynamism(b *testing.B) { benchExperiment(b, "X9") }

// BenchmarkX10 regenerates the succinct-Π experiment and reports its
// headline numbers — the dense/labels snapshot-bytes ratio and the
// labeled-probe latency next to the dense probe it replaces — as benchmark
// metrics, so BENCH_ci.json tracks what the compressed artifact costs (and
// saves) from this PR on.
func BenchmarkX10(b *testing.B) {
	var snapRatio, labelNs, denseNs float64
	for i := 0; i < b.N; i++ {
		var err error
		snapRatio, labelNs, denseNs, err = harness.X10SuccinctMetrics(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(snapRatio, "snapshot-ratio-x")
	b.ReportMetric(labelNs, "label-probe-ns")
	b.ReportMetric(denseNs, "dense-probe-ns")
}

func BenchmarkX10_Succinct(b *testing.B) { benchExperiment(b, "X10") }

// BenchmarkX11 regenerates the serve-path chaos experiment and reports its
// headline numbers — how long a tripped breaker took to serve again after
// the fault cleared, and the degraded-answer rate while the fallback
// carried the traffic — as benchmark metrics, so BENCH_ci.json tracks
// recovery behavior from this PR on.
func BenchmarkX11(b *testing.B) {
	var recoveryMs, degradedRate float64
	for i := 0; i < b.N; i++ {
		var err error
		recoveryMs, degradedRate, err = harness.X11ChaosMetrics(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(recoveryMs, "breaker-recovery-ms")
	b.ReportMetric(degradedRate, "degraded-rate")
}

func BenchmarkX11_Chaos(b *testing.B) { benchExperiment(b, "X11") }

// BenchmarkOpShardedReachAnswer measures one sharded reachability answer
// (4 range-partitioned shards, fan-out + portal merge) against the same
// query mix BenchmarkOpReachabilityAnswer-style benchmarks use, so the
// sharding overhead per query is visible next to the O(1) unsharded read.
func BenchmarkOpShardedReachAnswer(b *testing.B) {
	g := CommunityGraph(8, 128, 256, 9)
	ss, err := BuildShardedStore("bench", ReachabilityScheme(), NewRangePartitioner(), 4, g.Encode())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(6))
	for i := range queries {
		queries[i] = NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ss.Answer(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpPreparedReachAnswer measures one reachability answer through
// the prepared (decoded-once) store path — the hot-path sibling of
// BenchmarkOpReachabilityAnswer's raw Scheme.Answer, so the payoff of
// hoisting the per-query header parse and validation is visible in
// BENCH_ci.json.
func BenchmarkOpPreparedReachAnswer(b *testing.B) {
	g := RandomDirected(1<<11, 4<<11, 5)
	reg := NewStoreRegistry("")
	st, err := reg.Register("bench-prepared", ReachabilityScheme(), g.Encode())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(6))
	for i := range queries {
		queries[i] = NodePairQuery(rng.Intn(1<<11), rng.Intn(1<<11))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Answer(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpCachedAnswer measures one answer through the verdict cache in
// steady state (every key resident): a BFS-per-query store whose uncached
// answers cost O(|V|+|E|), served as LRU hits.
func BenchmarkOpCachedAnswer(b *testing.B) {
	g := RandomDirected(1<<10, 4<<10, 17)
	reg := NewStoreRegistry("")
	st, err := reg.Register("bench-cached", ReachabilityBFSScheme(), g.Encode())
	if err != nil {
		b.Fatal(err)
	}
	cd := NewCachedDataset(st, NewAnswerCache(1<<22))
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(18))
	for i := range queries {
		queries[i] = NodePairQuery(rng.Intn(1<<10), rng.Intn(1<<10))
	}
	for _, q := range queries { // warm the cache: the loop measures hits
		if _, err := cd.Answer(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cd.Answer(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- per-operation benchmarks: the answering paths ---------------------------

// BenchmarkOpPointSelectionAnswer measures one O(log|D|) point-selection
// answer over a preprocessed 64k-row relation.
func BenchmarkOpPointSelectionAnswer(b *testing.B) {
	rel := GenerateRelation(RelationGenConfig{Rows: 1 << 16, Seed: 1, KeyMax: 1 << 17})
	scheme := PointSelectionScheme()
	prep, err := scheme.Preprocess(rel.Encode())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(2))
	for i := range queries {
		queries[i] = PointQuery(rng.Int63n(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Answer(prep, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpBDSAnswer measures one O(1) BDS order answer over a
// preprocessed 16k-vertex graph (Figure 1, Υ_BDS row).
func BenchmarkOpBDSAnswer(b *testing.B) {
	g := RandomConnectedUndirected(1<<14, 3<<14, 3)
	scheme := BDSScheme()
	prep, err := scheme.Preprocess(g.Encode())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(4))
	for i := range queries {
		queries[i] = NodePairQuery(rng.Intn(1<<14), rng.Intn(1<<14))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Answer(prep, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpBDSNaive measures the Υ′ row: a full search per query on a
// 4k-vertex graph.
func BenchmarkOpBDSNaive(b *testing.B) {
	g := RandomConnectedUndirected(1<<12, 3<<12, 3)
	d := g.Encode()
	scheme := BDSNoPreprocessScheme()
	queries := make([][]byte, 32)
	rng := rand.New(rand.NewSource(4))
	for i := range queries {
		queries[i] = PadPair(d, NodePairQuery(rng.Intn(1<<12), rng.Intn(1<<12)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Answer(nil, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpReachabilityAnswer measures one O(1) closure-matrix read over
// a preprocessed 2k-vertex digraph.
func BenchmarkOpReachabilityAnswer(b *testing.B) {
	g := RandomDirected(1<<11, 4<<11, 5)
	scheme := ReachabilityScheme()
	prep, err := scheme.Preprocess(g.Encode())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(6))
	for i := range queries {
		queries[i] = NodePairQuery(rng.Intn(1<<11), rng.Intn(1<<11))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Answer(prep, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpCVPGateReadout measures one O(1) gate-value read over a
// preprocessed 64k-gate CVP instance (the C8 fast path).
func BenchmarkOpCVPGateReadout(b *testing.B) {
	inst := cvpInstance(1 << 16)
	scheme := CVPGateValueScheme()
	prep, err := scheme.Preprocess(inst)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 256)
	rng := rand.New(rand.NewSource(8))
	for i := range queries {
		queries[i] = GateQuery(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Answer(prep, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpCVPNoPreprocess measures the Theorem 9 slow path: evaluating a
// 64k-gate instance from scratch per query.
func BenchmarkOpCVPNoPreprocess(b *testing.B) {
	inst := cvpInstance(1 << 16)
	scheme := CVPNoPreprocessScheme()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Answer(nil, inst); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sequential-vs-parallel benchmarks (the X experiments, per-op) -----------

// batchWorkload builds a preprocessed BFS-per-query reachability store
// and a query batch: each answer costs O(|V|+|E|), the shape where pooled
// answering pays off.
func batchWorkload(b *testing.B) (*Scheme, []byte, [][]byte) {
	b.Helper()
	g := RandomDirected(1<<10, 4<<10, 17)
	scheme := ReachabilityBFSScheme()
	prep, err := scheme.Preprocess(g.Encode())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 64)
	rng := rand.New(rand.NewSource(18))
	for i := range queries {
		queries[i] = NodePairQuery(rng.Intn(1<<10), rng.Intn(1<<10))
	}
	return scheme, prep, queries
}

// BenchmarkOpAnswerBatchLoop is the sequential baseline: a batch of 64
// reachability queries answered one at a time.
func BenchmarkOpAnswerBatchLoop(b *testing.B) {
	scheme, prep, queries := batchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.AnswerBatch(prep, queries, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpAnswerBatchParallel answers the same batch through the
// GOMAXPROCS-sized worker pool; on a multi-core host it beats the loop
// roughly linearly in core count.
func BenchmarkOpAnswerBatchParallel(b *testing.B) {
	scheme, prep, queries := batchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.AnswerBatch(prep, queries, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpPRAMClosureSequential measures the NC² closure schedule on
// the sequential oracle executor (48 vertices, n³-wide rounds).
func BenchmarkOpPRAMClosureSequential(b *testing.B) {
	adj := pathMatrix(48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PRAMTransitiveClosure(NewPRAM(0), adj)
	}
}

// BenchmarkOpPRAMClosureParallel runs the identical schedule on the
// goroutine-parallel executor.
func BenchmarkOpPRAMClosureParallel(b *testing.B) {
	adj := pathMatrix(48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PRAMTransitiveClosure(NewPRAM(0, WithPRAMWorkers(0)), adj)
	}
}

func pathMatrix(n int) *PRAMBoolMatrix {
	adj := NewPRAMBoolMatrix(n)
	for i := 0; i+1 < n; i++ {
		adj.Set(i, i+1, true)
	}
	return adj
}

// BenchmarkOpTheorem5Chain measures one full chain execution (compile,
// reduce, preprocess, answer) for the parity machine on 8-bit inputs.
func BenchmarkOpTheorem5Chain(b *testing.B) {
	cm := ParityMachine()
	scheme := TMSchemeViaBDS(cm)
	x := EncodeBits([]bool{true, false, true, true, false, false, true, true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep, err := scheme.Preprocess(x)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := scheme.Answer(prep, x); err != nil {
			b.Fatal(err)
		}
	}
}
