package pitract

// Facade-level tests: the public API must be sufficient to drive the
// paper's main flows without reaching into internal packages (exactly what
// the examples do).

import (
	"bytes"
	"strings"
	"testing"
)

// cvpInstance builds an encoded random CVP instance with the given gate
// count; shared with the benchmarks.
func cvpInstance(gates int) []byte {
	c := GenerateCircuit(CircuitGenConfig{Inputs: 16, Gates: gates, Seed: int64(gates)})
	return EncodeCVPInstance(&CVPInstance{Circuit: c, Inputs: RandomCircuitInputs(16, 9)})
}

func TestFacadeExample1Flow(t *testing.T) {
	rel := GenerateRelation(RelationGenConfig{Rows: 2000, Seed: 1, KeyMax: 4000})
	d := rel.Encode()
	scheme := PointSelectionScheme()
	prep, err := scheme.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	lang := SelectionLanguage()
	for c := int64(0); c < 100; c++ {
		got, err := scheme.Answer(prep, PointQuery(c*31))
		if err != nil {
			t.Fatal(err)
		}
		want, err := lang.Contains(d, PointQuery(c*31))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: %v vs %v", c, got, want)
		}
	}
}

func TestFacadeTheorem5Flow(t *testing.T) {
	cm := ParityMachine()
	scheme := TMSchemeViaBDS(cm)
	for _, bits := range [][]bool{{}, {true}, {true, true}, {true, false, true}} {
		x := EncodeBits(bits)
		prep, err := scheme.Preprocess(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := scheme.Answer(prep, x)
		if err != nil {
			t.Fatal(err)
		}
		want := cm.M.Run(bits, cm.Bound(len(bits))).Accepted
		if got != want {
			t.Fatalf("input %v: chain %v, simulator %v", bits, got, want)
		}
	}
}

func TestFacadeCVPFlow(t *testing.T) {
	d := cvpInstance(500)
	inst, err := DecodeCVPInstance(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// Fast path.
	fast := CVPGateValueScheme()
	prep, err := fast.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.Answer(prep, GateQuery(int(inst.Circuit.Output)))
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 9 path.
	slow, err := CVPNoPreprocessScheme().Answer(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || slow != want {
		t.Fatalf("fast %v, slow %v, want %v", got, slow, want)
	}
	// Reference reduction to BDS preserves the answer structurally.
	img, err := ReduceCVPToBDS(inst)
	if err != nil {
		t.Fatal(err)
	}
	if (img.U < img.V) != want { // canonical graph visits 3 before 4
		t.Fatal("BDS image does not reflect the answer")
	}
}

func TestFacadeClassify(t *testing.T) {
	fit, err := Classify([]Measurement{
		{N: 100, Cost: 7}, {N: 1000, Cost: 10}, {N: 10000, Cost: 13}, {N: 100000, Cost: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Growth != GrowthPolylog {
		t.Fatalf("log-ish series classified %v", fit.Growth)
	}
}

func TestRunExperimentAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "F2", ScaleQuick); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ΠT⁰Q") {
		t.Fatal("F2 table missing class column content")
	}
	err := RunExperiment(&buf, "nope", ScaleQuick)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var unknown *UnknownExperimentError
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %v does not name the id", err)
	}
	_ = unknown
	if len(Experiments()) != 23 {
		t.Fatalf("Experiments() = %d entries", len(Experiments()))
	}
}

func TestFacadeViewsAndIncremental(t *testing.T) {
	rel := GenerateRelation(RelationGenConfig{Rows: 1000, Seed: 2, KeyMax: 1000})
	set, err := MaterializeViews(rel, EvenPartition("key", 0, 999, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.AnswerPoint("key", 500); err != nil {
		t.Fatal(err)
	}
	g := RandomDirected(100, 150, 1)
	idx, err := NewIncrementalReach(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(0, 99); err != nil {
		t.Fatal(err)
	}
	if ok, _ := idx.Reach(0, 99); !ok {
		t.Fatal("inserted edge not reachable")
	}
	c, err := CompressGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reach(0, 99); err != nil {
		t.Fatal(err)
	}
}
