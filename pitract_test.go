package pitract

// Facade-level tests: the public API must be sufficient to drive the
// paper's main flows without reaching into internal packages (exactly what
// the examples do).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// cvpInstance builds an encoded random CVP instance with the given gate
// count; shared with the benchmarks.
func cvpInstance(gates int) []byte {
	c := GenerateCircuit(CircuitGenConfig{Inputs: 16, Gates: gates, Seed: int64(gates)})
	return EncodeCVPInstance(&CVPInstance{Circuit: c, Inputs: RandomCircuitInputs(16, 9)})
}

func TestFacadeExample1Flow(t *testing.T) {
	rel := GenerateRelation(RelationGenConfig{Rows: 2000, Seed: 1, KeyMax: 4000})
	d := rel.Encode()
	scheme := PointSelectionScheme()
	prep, err := scheme.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	lang := SelectionLanguage()
	for c := int64(0); c < 100; c++ {
		got, err := scheme.Answer(prep, PointQuery(c*31))
		if err != nil {
			t.Fatal(err)
		}
		want, err := lang.Contains(d, PointQuery(c*31))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: %v vs %v", c, got, want)
		}
	}
}

func TestFacadeTheorem5Flow(t *testing.T) {
	cm := ParityMachine()
	scheme := TMSchemeViaBDS(cm)
	for _, bits := range [][]bool{{}, {true}, {true, true}, {true, false, true}} {
		x := EncodeBits(bits)
		prep, err := scheme.Preprocess(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := scheme.Answer(prep, x)
		if err != nil {
			t.Fatal(err)
		}
		want := cm.M.Run(bits, cm.Bound(len(bits))).Accepted
		if got != want {
			t.Fatalf("input %v: chain %v, simulator %v", bits, got, want)
		}
	}
}

func TestFacadeCVPFlow(t *testing.T) {
	d := cvpInstance(500)
	inst, err := DecodeCVPInstance(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// Fast path.
	fast := CVPGateValueScheme()
	prep, err := fast.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.Answer(prep, GateQuery(int(inst.Circuit.Output)))
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 9 path.
	slow, err := CVPNoPreprocessScheme().Answer(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || slow != want {
		t.Fatalf("fast %v, slow %v, want %v", got, slow, want)
	}
	// Reference reduction to BDS preserves the answer structurally.
	img, err := ReduceCVPToBDS(inst)
	if err != nil {
		t.Fatal(err)
	}
	if (img.U < img.V) != want { // canonical graph visits 3 before 4
		t.Fatal("BDS image does not reflect the answer")
	}
}

func TestFacadeClassify(t *testing.T) {
	fit, err := Classify([]Measurement{
		{N: 100, Cost: 7}, {N: 1000, Cost: 10}, {N: 10000, Cost: 13}, {N: 100000, Cost: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Growth != GrowthPolylog {
		t.Fatalf("log-ish series classified %v", fit.Growth)
	}
}

func TestRunExperimentAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "F2", ScaleQuick); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ΠT⁰Q") {
		t.Fatal("F2 table missing class column content")
	}
	err := RunExperiment(&buf, "nope", ScaleQuick)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var unknown *UnknownExperimentError
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %v does not name the id", err)
	}
	_ = unknown
	if len(Experiments()) != 34 {
		t.Fatalf("Experiments() = %d entries, want 23 paper artifacts plus X1…X11", len(Experiments()))
	}
}

func TestFacadeViewsAndIncremental(t *testing.T) {
	rel := GenerateRelation(RelationGenConfig{Rows: 1000, Seed: 2, KeyMax: 1000})
	set, err := MaterializeViews(rel, EvenPartition("key", 0, 999, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.AnswerPoint("key", 500); err != nil {
		t.Fatal(err)
	}
	g := RandomDirected(100, 150, 1)
	idx, err := NewIncrementalReach(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(0, 99); err != nil {
		t.Fatal(err)
	}
	if ok, _ := idx.Reach(0, 99); !ok {
		t.Fatal("inserted edge not reachable")
	}
	c, err := CompressGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reach(0, 99); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeConcurrentEngine drives the concurrent execution engine
// through the public API only: batch answering against one preprocessed
// store, and the parallel PRAM executor substituting for the sequential
// oracle.
func TestFacadeConcurrentEngine(t *testing.T) {
	// Batch answering: worker pool verdicts must equal the loop's.
	g := RandomDirected(128, 512, 11)
	scheme := ReachabilityScheme()
	prep, err := scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]byte, 40)
	for i := range queries {
		queries[i] = NodePairQuery(i%128, (i*37)%128)
	}
	loop, err := AnswerBatch(scheme, prep, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := AnswerBatch(scheme, prep, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range loop {
		if loop[i] != pooled[i] {
			t.Fatalf("query %d: loop %v, pooled %v", i, loop[i], pooled[i])
		}
	}

	// ApplyBatch for function schemes.
	list := make([]int64, 64)
	for i := range list {
		list[i] = int64((i * 31) % 100)
	}
	fs := RMQFuncScheme()
	fprep, err := fs.Preprocess(EncodeList(list))
	if err != nil {
		t.Fatal(err)
	}
	rq := [][]byte{RangeQueryIJ(0, 63), RangeQueryIJ(10, 20), RangeQueryIJ(5, 5)}
	seqOut, err := ApplyBatch(fs, fprep, rq, 1)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := ApplyBatch(fs, fprep, rq, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqOut {
		if string(seqOut[i]) != string(parOut[i]) {
			t.Fatalf("RMQ query %d diverged between loop and pool", i)
		}
	}

	// Parallel PRAM executor: identical closure and cost to the oracle.
	adj := NewPRAMBoolMatrix(20)
	for i := 0; i+1 < 20; i++ {
		adj.Set(i, i+1, true)
	}
	seqM := NewPRAM(0)
	parM := NewPRAM(0, WithPRAMWorkers(4))
	want := PRAMTransitiveClosure(seqM, adj)
	got := PRAMTransitiveClosure(parM, adj)
	if !want.Equal(got) {
		t.Fatal("parallel executor produced a different closure")
	}
	if seqM.Cost() != parM.Cost() {
		t.Fatalf("cost diverged: sequential %v, parallel %v", seqM.Cost(), parM.Cost())
	}
	if ExperimentParallelism() < 1 {
		t.Fatal("ExperimentParallelism must be ≥ 1")
	}
}

// TestFacadeServingFlow drives the serving subsystem through the public
// API alone: open a persisted store, restart it from its snapshot, serve
// it over HTTP, and answer identically on every path.
func TestFacadeServingFlow(t *testing.T) {
	dir := t.TempDir()
	rel := GenerateRelation(RelationGenConfig{Rows: 500, Seed: 3, KeyMax: 1000})
	d := rel.Encode()
	scheme := PointSelectionScheme()

	path := filepath.Join(dir, "rel.pitract")
	st, err := OpenStore(path, scheme, d)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded {
		t.Fatal("first OpenStore claims a snapshot reload")
	}
	st2, err := OpenStore(path, scheme, d)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Loaded || !bytes.Equal(st.Prep, st2.Prep) {
		t.Fatal("second OpenStore did not reload the identical snapshot")
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemeName != scheme.Name() || !bytes.Equal(snap.Prep, st.Prep) {
		t.Fatal("LoadSnapshot disagrees with OpenStore")
	}

	reg := NewStoreRegistry("")
	srv := NewServer(reg, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, _ := json.Marshal(map[string]interface{}{
		"id": "rel", "scheme": scheme.Name(), "data": d,
	})
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	for c := int64(0); c < 20; c++ {
		q := PointQuery(c * 31)
		want, err := st.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(map[string]interface{}{"dataset": "rel", "query": q})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Answer bool `json:"answer"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Answer != want {
			t.Fatalf("query %d: served %v, store says %v", c, out.Answer, want)
		}
	}
}

// TestFacadeShardingFlow drives sharding through the public API alone:
// build a sharded store, check it against the unsharded scheme, register
// it persistently, and reload it across a registry restart.
func TestFacadeShardingFlow(t *testing.T) {
	g := CommunityGraph(3, 10, 12, 13)
	scheme := ReachabilityScheme()
	d := g.Encode()

	ss, err := BuildShardedStore("g", scheme, NewRangePartitioner(), 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if ss.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", ss.ShardCount())
	}
	prep, err := scheme.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 3 {
		for v := 0; v < g.N(); v += 4 {
			q := NodePairQuery(u, v)
			want, err := scheme.Answer(prep, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ss.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("reach(%d,%d): sharded %v, unsharded %v", u, v, got, want)
			}
		}
	}

	if ShardingForScheme(scheme.Name()) == nil {
		t.Fatal("reachability must have a sharded form")
	}
	if ShardingForScheme("bds/visit-order") != nil {
		t.Fatal("BDS must not have a sharded form")
	}
	if _, err := PartitionerByName("range"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	reg := NewStoreRegistry(dir)
	if _, err := RegisterSharded(reg, "g", scheme, NewHashPartitioner(), 2, d); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadShardedStore(dir, "g", scheme)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.ShardCount() != 2 || !reloaded.WasLoaded() {
		t.Fatalf("reloaded sharded store: %d shards, loaded=%v", reloaded.ShardCount(), reloaded.WasLoaded())
	}
	ok, err := reloaded.Answer(NodePairQuery(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := scheme.Answer(prep, NodePairQuery(0, 1))
	if err != nil || ok != want {
		t.Fatalf("reloaded answer %v, want %v (err %v)", ok, want, err)
	}
}
