// Command pitract runs the paper-reproduction experiment suite.
//
// Usage:
//
//	pitract list              list all experiments
//	pitract run <id>…         run selected experiments (E1, F1, C3, …)
//	pitract run all           run the whole suite
//	pitract -full run all     use the EXPERIMENTS.md workload sizes
//	pitract -parallel 8 run X1 X2    size the worker pools explicitly
//
// # Running in parallel
//
// The X1 and X2 experiments exercise the concurrent execution engine: X1
// substitutes the goroutine-parallel PRAM executor for the sequential
// oracle (verifying identical results, rounds, and work), and X2 serves
// query batches through the AnswerBatch worker pool. Both default to one
// worker per CPU (GOMAXPROCS); -parallel overrides the worker count, e.g.
// to chart speedup versus pool size on a fixed machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pitract"
)

func main() {
	full := flag.Bool("full", false, "use Full (EXPERIMENTS.md) workload sizes instead of Quick")
	parallel := flag.Int("parallel", 0, "worker count for the parallel experiments X1/X2 (0 = one per CPU)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	scale := pitract.ScaleQuick
	if *full {
		scale = pitract.ScaleFull
	}
	pitract.SetExperimentParallelism(*parallel)
	switch args[0] {
	case "list":
		for _, e := range pitract.Experiments() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Title)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "pitract run: need experiment ids or 'all'")
			os.Exit(2)
		}
		if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
			ids = ids[:0]
			for _, e := range pitract.Experiments() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			if err := pitract.RunExperiment(os.Stdout, id, scale); err != nil {
				fmt.Fprintf(os.Stderr, "pitract: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `pitract — experiments for "Making Queries Tractable on Big Data with Preprocessing"

usage:
  pitract list                              list experiments
  pitract [-full] [-parallel N] run <id>... run experiments (or 'run all')

running in parallel:
  X1 races the goroutine-parallel PRAM executor against the sequential
  oracle; X2 serves query batches through the AnswerBatch worker pool.
  Both use one worker per CPU unless -parallel N overrides it.
`)
}
