// Command pitract runs the paper-reproduction experiment suite and serves
// preprocessed stores over HTTP.
//
// Usage:
//
//	pitract list                       list all experiments
//	pitract run <id>…                  run selected experiments (E1, F1, C3, …)
//	pitract run all                    run the whole suite
//	pitract run -full all              use the EXPERIMENTS.md workload sizes
//	pitract run -parallel 8 X1 X2      size the worker pools explicitly
//	pitract serve -addr :8080 -data ./data    serve the HTTP query API
//
// # Running in parallel
//
// The X1 and X2 experiments exercise the concurrent execution engine: X1
// substitutes the goroutine-parallel PRAM executor for the sequential
// oracle (verifying identical results, rounds, and work), and X2 serves
// query batches through the AnswerBatch worker pool. X3 measures the same
// serving path end-to-end over HTTP. All default to one worker per CPU
// (GOMAXPROCS); -parallel overrides the worker count.
//
// # Serving
//
// `pitract serve` starts the preprocess-once/answer-many HTTP API: clients
// POST a dataset once (paying PTIME preprocessing, persisted as a snapshot
// under -data so restarts reload instead of recompute) and then answer any
// number of queries in the NC budget via /v1/query and /v1/query/batch.
// Datasets whose scheme has an incremental form are live-updatable: PATCH
// /v1/datasets/{id} maintains Π(D ⊕ ∆D) in place, bumps the dataset
// version, and re-snapshots atomically. See the package pitract
// documentation, examples/serve, and examples/maintain for clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pitract"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches the subcommand and returns the process exit code. Every
// unknown subcommand, unknown flag, or stray argument is a usage error
// (exit 2) with a message on stderr — never a silent fall-through.
func run(args []string) int {
	// Accept global-style flags before the subcommand too (the pre-serve
	// CLI shape, `pitract -full run all`), by letting the top-level FlagSet
	// parse and re-dispatching on the remainder.
	top := flag.NewFlagSet("pitract", flag.ContinueOnError)
	top.Usage = func() { usage(top.Output()) }
	topFull := top.Bool("full", false, "use Full (EXPERIMENTS.md) workload sizes instead of Quick")
	topParallel := top.Int("parallel", 0, "worker count for the parallel experiments (0 = one per CPU)")
	if code := parseArgs(top, args); code >= 0 {
		return code
	}
	rest := top.Args()
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "pitract: missing subcommand")
		usage(os.Stderr)
		return 2
	}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "list":
		return cmdList(rest)
	case "run":
		return cmdRun(rest, *topFull, *topParallel)
	case "serve":
		return cmdServe(rest)
	case "help":
		usage(os.Stdout)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "pitract: unknown subcommand %q\n", cmd)
		usage(os.Stderr)
		return 2
	}
}

func cmdList(args []string) int {
	fs := flag.NewFlagSet("pitract list", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprintln(fs.Output(), "usage: pitract list") }
	if code := parseArgs(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "pitract list: unexpected arguments %q\n", fs.Args())
		return 2
	}
	for _, e := range pitract.Experiments() {
		fmt.Printf("  %-4s %s\n", e.ID, e.Title)
	}
	return 0
}

func cmdRun(args []string, full bool, parallel int) int {
	fs := flag.NewFlagSet("pitract run", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: pitract run [-full] [-parallel N] <id>... | all")
	}
	fsFull := fs.Bool("full", full, "use Full (EXPERIMENTS.md) workload sizes instead of Quick")
	fsParallel := fs.Int("parallel", parallel, "worker count for the parallel experiments (0 = one per CPU)")
	if code := parseArgs(fs, args); code >= 0 {
		return code
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "pitract run: need experiment ids or 'all'")
		return 2
	}
	scale := pitract.ScaleQuick
	if *fsFull {
		scale = pitract.ScaleFull
	}
	pitract.SetExperimentParallelism(*fsParallel)
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		ids = ids[:0]
		for _, e := range pitract.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		if err := pitract.RunExperiment(os.Stdout, id, scale); err != nil {
			fmt.Fprintf(os.Stderr, "pitract: %v\n", err)
			return 1
		}
	}
	return 0
}

func cmdServe(args []string) int {
	fs := flag.NewFlagSet("pitract serve", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: pitract serve [-addr :8080] [-data DIR] [-shards N] [-partitioner hash|range] [-cache-bytes N]")
		fmt.Fprintln(fs.Output(), "                     [-max-inflight N] [-max-inflight-dataset N] [-max-body-bytes N] [-max-batch N]")
		fmt.Fprintln(fs.Output(), "                     [-register-budget D] [-query-budget-ms N] [-retry-after D] [-log-level L] [-log-format F]")
		fmt.Fprintln(fs.Output(), "                     [-slow-query-ms N] [-pprof-addr ADDR] [-checkpoint-every N]")
	}
	addr := fs.String("addr", ":8080", "listen address")
	data := fs.String("data", "", "snapshot directory for preprocessed stores (empty = in-memory only)")
	shards := fs.Int("shards", 0, "default shard count for registered datasets (0 or 1 = unsharded; per-request ?shards=N overrides)")
	partitioner := fs.String("partitioner", "hash", "default partitioner for sharded datasets: hash or range")
	cacheBytes := fs.Int64("cache-bytes", 0, "answer-cache budget in bytes: memoize hot (dataset, version, query) verdicts (0 = no cache)")
	maxInFlight := fs.Int("max-inflight", 0, "admitted work requests across the server; beyond it requests get 429 + Retry-After (0 = unlimited)")
	maxInFlightDS := fs.Int("max-inflight-dataset", 0, "admitted work requests per dataset id (0 = unlimited)")
	maxBodyBytes := fs.Int64("max-body-bytes", 0, "request-body byte cap; larger bodies get 413 (0 = the 64 MiB default)")
	maxBatch := fs.Int("max-batch", 0, "queries per /v1/query/batch request; larger batches get 413 (0 = the 4096 default)")
	registerBudget := fs.Duration("register-budget", 0, "wall budget per registration or PATCH, e.g. 30s; over-budget work is abandoned with 503 (0 = none)")
	queryBudgetMs := fs.Int64("query-budget-ms", 0, "wall budget per query or batch in milliseconds; over-budget answers are abandoned with 504 (0 = none)")
	retryAfter := fs.Duration("retry-after", 0, "delay advertised in 429 Retry-After headers (0 = the 1s default)")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn, or error (debug logs every request)")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	slowQueryMs := fs.Int64("slow-query-ms", 0, "log requests slower than this many milliseconds at warn level (0 = no slow-query log)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on its own listener, e.g. localhost:6060 (empty = disabled)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "delta-log records to accumulate before a snapshot checkpoint truncates the log; higher = faster PATCHes, longer replay after a crash (0 = checkpoint every batch)")
	if code := parseArgs(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "pitract serve: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *cacheBytes < 0 {
		fmt.Fprintf(os.Stderr, "pitract serve: -cache-bytes %d: want a non-negative byte budget\n", *cacheBytes)
		return 2
	}
	for name, v := range map[string]int64{
		"-max-inflight": int64(*maxInFlight), "-max-inflight-dataset": int64(*maxInFlightDS),
		"-max-body-bytes": *maxBodyBytes, "-max-batch": int64(*maxBatch),
		"-register-budget": int64(*registerBudget), "-query-budget-ms": *queryBudgetMs,
		"-retry-after":   int64(*retryAfter),
		"-slow-query-ms": *slowQueryMs, "-checkpoint-every": int64(*checkpointEvery),
	} {
		if v < 0 {
			fmt.Fprintf(os.Stderr, "pitract serve: %s: want a non-negative value\n", name)
			return 2
		}
	}
	var level slog.Level
	switch *logLevel {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "pitract serve: -log-level %q: want debug, info, warn, or error\n", *logLevel)
		return 2
	}
	handlerOpts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, handlerOpts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, handlerOpts)
	default:
		fmt.Fprintf(os.Stderr, "pitract serve: -log-format %q: want text or json\n", *logFormat)
		return 2
	}

	reg := pitract.NewStoreRegistry(*data)
	if *checkpointEvery > 0 {
		reg.SetCheckpointEvery(*checkpointEvery)
	}
	srv := pitract.NewServer(reg, nil)
	if err := srv.SetDefaultSharding(*shards, *partitioner); err != nil {
		fmt.Fprintf(os.Stderr, "pitract serve: %v\n", err)
		return 2
	}
	if *cacheBytes > 0 {
		srv.SetAnswerCache(pitract.NewAnswerCache(*cacheBytes))
	}
	srv.SetLimits(pitract.ServerLimits{
		MaxInFlight:           *maxInFlight,
		MaxInFlightPerDataset: *maxInFlightDS,
		MaxBodyBytes:          *maxBodyBytes,
		MaxBatchQueries:       *maxBatch,
		RegisterBudget:        *registerBudget,
		QueryBudget:           time.Duration(*queryBudgetMs) * time.Millisecond,
		RetryAfter:            *retryAfter,
	})
	srv.SetLogger(slog.New(handler))
	srv.SetSlowQueryThreshold(time.Duration(*slowQueryMs) * time.Millisecond)
	// Bind before announcing, so the "listening" line means the port is
	// live (and reports the real port when -addr ends in :0).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pitract serve: %v\n", err)
		return 1
	}
	// pprof rides its own off-by-default listener with an explicit mux, so
	// the profiling surface never shares a port (or an accidental
	// DefaultServeMux registration) with the query API.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintf(os.Stderr, "pitract serve: -pprof-addr: %v\n", err)
			return 1
		}
		defer pln.Close()
		go http.Serve(pln, pm)
		fmt.Printf("pitract serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}
	persistence := "in-memory only (no -data directory)"
	if *data != "" {
		persistence = "snapshots under " + *data
	}
	if *shards > 1 {
		persistence += fmt.Sprintf(", datasets %s-partitioned across %d shards by default", *partitioner, *shards)
	}
	if *cacheBytes > 0 {
		persistence += fmt.Sprintf(", answer cache %d bytes", *cacheBytes)
	}
	if *maxInFlight > 0 || *maxInFlightDS > 0 || *registerBudget > 0 {
		persistence += fmt.Sprintf(", envelope: in-flight %s global / %s per dataset, register budget %s",
			limitOrUnlimited(*maxInFlight), limitOrUnlimited(*maxInFlightDS), budgetOrNone(*registerBudget))
	}
	schemes := make([]string, 0)
	for name := range pitract.ServeCatalog() {
		schemes = append(schemes, name)
	}
	sort.Strings(schemes)
	fmt.Printf("pitract serve: listening on %s, %s\n", ln.Addr(), persistence)
	fmt.Printf("  schemes: %s\n", strings.Join(schemes, ", "))
	fmt.Printf("  POST /v1/datasets · GET /v1/datasets · GET/PATCH /v1/datasets/{id} · POST /v1/query · POST /v1/query/batch · GET /v1/stats · GET /metrics · GET /healthz\n")

	// Graceful shutdown: SIGINT/SIGTERM drains in-flight requests.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if err != nil {
			fmt.Fprintf(os.Stderr, "pitract serve: %v\n", err)
			return 1
		}
	case sig := <-sigCh:
		fmt.Printf("pitract serve: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pitract serve: shutdown: %v\n", err)
			return 1
		}
		// Serve returns nil after a clean Shutdown; anything else is a real
		// listener failure that raced the signal and must not be masked.
		if err := <-errCh; err != nil {
			fmt.Fprintf(os.Stderr, "pitract serve: %v\n", err)
			return 1
		}
	}
	return 0
}

// limitOrUnlimited renders a concurrency limit for the startup banner.
func limitOrUnlimited(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}

// budgetOrNone renders a duration budget for the startup banner.
func budgetOrNone(d time.Duration) string {
	if d <= 0 {
		return "none"
	}
	return d.String()
}

// parseArgs parses args with fs, routing -h/--help usage to stdout (exit
// 0) and parse errors plus usage to stderr (exit 2). Returns -1 when
// parsing succeeded and the caller should continue.
func parseArgs(fs *flag.FlagSet, args []string) int {
	// Parse silently; the switch below decides where output belongs —
	// the flag package's default would send help to stderr.
	fs.SetOutput(io.Discard)
	err := fs.Parse(args)
	switch {
	case err == nil:
		fs.SetOutput(os.Stderr)
		return -1
	case err == flag.ErrHelp:
		fs.SetOutput(os.Stdout)
		fs.Usage()
		return 0
	default:
		fmt.Fprintln(os.Stderr, err)
		fs.SetOutput(os.Stderr)
		fs.Usage()
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `pitract — "Making Queries Tractable on Big Data with Preprocessing"

usage:
  pitract list                              list experiments
  pitract run [-full] [-parallel N] <id>... run experiments (or 'run all')
  pitract serve [-addr :8080] [-data DIR] [-shards N] [-partitioner hash|range]
                [-cache-bytes N] [-max-inflight N] [-max-inflight-dataset N]
                [-max-body-bytes N] [-max-batch N] [-register-budget D]
                [-query-budget-ms N] [-retry-after D] [-log-level L]
                [-log-format F] [-slow-query-ms N] [-pprof-addr ADDR]
                                            serve preprocessed stores over HTTP

running in parallel:
  X1 races the goroutine-parallel PRAM executor against the sequential
  oracle; X2 serves query batches through the AnswerBatch worker pool; X3
  measures end-to-end HTTP serving; X4 measures sharded preprocessing and
  serving; X5 measures PATCH-maintained Π(D ⊕ ∆D) against re-registering.
  All use one worker per CPU unless -parallel N overrides it.

serving:
  'pitract serve' exposes the preprocess-once/answer-many API: register a
  dataset once (POST /v1/datasets), answer queries forever (POST /v1/query,
  /v1/query/batch). With -data DIR, Π(D) is persisted as a checksummed
  snapshot and reloaded on restart instead of recomputed. With -shards N
  (or per-request ?shards=N), a dataset is partitioned across N
  preprocessed stores and queries are routed to the owning shard or fanned
  out and merged. PATCH /v1/datasets/{id} maintains registered datasets in
  place under deltas (Π(D ⊕ ∆D), versioned, re-snapshotted atomically).
  With -cache-bytes N, hot (dataset, version, query) verdicts are served
  from a sharded in-memory LRU with singleflight coalescing — version-keyed,
  so a PATCH invalidates stale entries for free; hit/miss/coalesced counters
  appear in /v1/stats. The serving envelope bounds what one request or one
  burst can cost: -max-body-bytes and -max-batch refuse oversized work with
  413, -max-inflight/-max-inflight-dataset refuse work beyond the
  concurrency limits with 429 + Retry-After (tune the advertised delay with
  -retry-after), and -register-budget abandons registrations or PATCHes
  that outrun their wall budget with 503 and no catalog side effects.
  -query-budget-ms gives each query or batch its own deadline: an
  overrun is abandoned with 504 and the worker never blocks the pool.
  Each dataset carries a health circuit breaker — repeated serve-path
  failures trip it open (fast 503 + Retry-After until a backoff-paced
  probe heals it), corrupt snapshots and delta logs are quarantined
  aside and rebuilt from source, and datasets with a declared fallback
  keep answering in degraded mode while unhealthy (see GET /healthz).
  Rejection counters and the in-flight gauge appear in /v1/stats. See
  docs/ARCHITECTURE.md and docs/API.md.

observability:
  Every serve-path stage (admission, cache lookup, shard fan-out/merge,
  preprocess, snapshot I/O, PATCH apply/persist) records into lock-free
  latency histograms exposed three ways: GET /metrics renders Prometheus
  text exposition (never metered by the envelope), GET /v1/stats reports
  per-scheme and per-stage percentiles plus uptime and build info, and
  structured request logs on stderr carry the X-Request-ID of every
  request (-log-level debug logs each request; -slow-query-ms N warns on
  slow ones; -log-format picks text or json). -pprof-addr serves
  net/http/pprof on its own listener, off by default.
`)
}
