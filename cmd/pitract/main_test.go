package main

import "testing"

// TestExitCodes pins the CLI contract: bad invocations exit 2 with a usage
// message, failing runs exit 1, good ones 0. Unknown subcommands and flags
// must never silently fall through.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-args", nil, 2},
		{"unknown-subcommand", []string{"frobnicate"}, 2},
		{"unknown-top-flag", []string{"-bogus", "list"}, 2},
		{"unknown-run-flag", []string{"run", "-bogus", "E1"}, 2},
		{"unknown-serve-flag", []string{"serve", "-bogus"}, 2},
		{"serve-bad-partitioner", []string{"serve", "-shards", "2", "-partitioner", "zodiac"}, 2},
		{"serve-shards-over-cap", []string{"serve", "-shards", "100000"}, 2},
		{"serve-negative-cache", []string{"serve", "-cache-bytes", "-1"}, 2},
		{"serve-bad-log-level", []string{"serve", "-log-level", "loud"}, 2},
		{"serve-bad-log-format", []string{"serve", "-log-format", "xml"}, 2},
		{"serve-negative-slow-query", []string{"serve", "-slow-query-ms", "-5"}, 2},
		{"list-extra-args", []string{"list", "stray"}, 2},
		{"serve-extra-args", []string{"serve", "stray"}, 2},
		{"run-no-ids", []string{"run"}, 2},
		{"run-unknown-id", []string{"run", "ZZ9"}, 1},
		{"help", []string{"help"}, 0},
		{"top-help-flag", []string{"-h"}, 0},
		{"run-help-flag", []string{"run", "-h"}, 0},
		{"serve-help-flag", []string{"serve", "--help"}, 0},
		{"list", []string{"list"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args); got != c.want {
				t.Fatalf("pitract %v: exit %d, want %d", c.args, got, c.want)
			}
		})
	}
}
