package inc

import (
	"math/rand"
	"testing"

	"pitract/internal/graph"
)

func TestInsertEdgeMaintainsClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(30)
		g := graph.RandomDirected(n, n, int64(trial))
		idx, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if err := idx.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := idx.VerifyAgainstRecompute(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRedundantInsertIsFree(t *testing.T) {
	g := graph.Path(4, true) // 0→1→2→3
	idx, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Ledger()
	// 0→2 is already implied by the closure: |∆O| = 0.
	if err := idx.InsertEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	after := idx.Ledger()
	if after.ChangedPairs != before.ChangedPairs {
		t.Fatalf("redundant insert changed %d pairs", after.ChangedPairs-before.ChangedPairs)
	}
	if after.WorkWords != before.WorkWords {
		t.Fatalf("redundant insert did %d words of work", after.WorkWords-before.WorkWords)
	}
	if after.Updates != before.Updates+1 {
		t.Fatal("update not counted")
	}
}

func TestChangedPairsCountedExactly(t *testing.T) {
	// Two disjoint paths 0→1 and 2→3; inserting 1→2 connects
	// {0,1} × {2,3}: exactly 4 new pairs.
	g := graph.New(4, true)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	idx, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := idx.Ledger().ChangedPairs; got != 4 {
		t.Fatalf("ChangedPairs = %d, want 4", got)
	}
	if got := idx.Ledger().Changed(); got != 5 { // |∆D|=1 + |∆O|=4
		t.Fatalf("Changed = %d, want 5", got)
	}
}

func TestLocalizedChangeCostIndependentOfGraphSize(t *testing.T) {
	// The §4(7) claim: cost tracks |CHANGED|, not |D|. Build two graphs of
	// very different sizes, make the same tiny localized change (an edge
	// between two fresh isolated vertices), and compare the incremental
	// work; it must not scale with n.
	work := func(n int) int64 {
		g := graph.New(n, true)
		// A long path occupying vertices 4..n-1 (bulk of the graph).
		for v := 4; v+1 < n; v++ {
			g.MustAddEdge(v, v+1)
		}
		idx, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		base := idx.Ledger().WorkWords
		if err := idx.InsertEdge(0, 1); err != nil { // isolated pair
			t.Fatal(err)
		}
		return idx.Ledger().WorkWords - base
	}
	w1, w2 := work(64), work(1024)
	// Work is measured in words; one row of the 1024-vertex graph is 16
	// words vs 1 word for 64 vertices, so allow the word-size factor but
	// nothing like the 16x row-count factor.
	if w2 > 20*w1 {
		t.Fatalf("localized change cost scaled with |D|: %d → %d words", w1, w2)
	}
	// And it must be microscopic next to recomputation.
	g := graph.New(1024, true)
	idx, _ := New(g)
	_ = idx.InsertEdge(0, 1)
	if idx.Ledger().WorkWords*100 > idx.RecomputeCostWords() {
		t.Fatalf("incremental work %d not far below recompute %d",
			idx.Ledger().WorkWords, idx.RecomputeCostWords())
	}
}

func TestQueryAndInsertValidation(t *testing.T) {
	idx, err := New(graph.Path(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Reach(-1, 0); err == nil {
		t.Error("negative query accepted")
	}
	if _, err := idx.Reach(0, 3); err == nil {
		t.Error("out-of-range query accepted")
	}
	if err := idx.InsertEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := idx.InsertEdge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if idx.N() != 3 {
		t.Errorf("N = %d", idx.N())
	}
}

func TestNewRejectsUndirected(t *testing.T) {
	if _, err := New(graph.Path(3, false)); err == nil {
		t.Fatal("undirected graph accepted")
	}
}

func TestInitialClosureCorrect(t *testing.T) {
	g := graph.RandomDirected(20, 50, 9)
	idx, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.VerifyAgainstRecompute(); err != nil {
		t.Fatal(err)
	}
}
