// Package inc implements (bounded) incremental evaluation, the paper's
// §4(7) strategy: compute Q(D) once as preprocessing; when D changes by ∆D,
// compute the output change ∆O instead of re-evaluating from scratch.
// Following Ramalingam & Reps [35], incremental cost is accounted against
// |CHANGED| = |∆D| + |∆O| — the work inherent to the change itself — and an
// algorithm is "bounded" when its cost is a function of |CHANGED| alone,
// independent of |D|.
//
// The concrete instance is an incrementally maintained all-pairs
// reachability index over a growing directed graph (the preprocessed
// structure of Example 3), under edge insertions. Inserting (u, v) flips
// exactly the pairs (a, b) with a →* u, v →* b that were previously
// unconnected; the maintenance loop touches ancestors of u only, and the
// Ledger records both the work done and |CHANGED| so tests and benchmarks
// can check the boundedness claim directly.
package inc

import (
	"fmt"
	"math/bits"

	"pitract/internal/graph"
)

// Ledger accumulates incremental-cost accounting across updates.
type Ledger struct {
	// Updates is |∆D|: the number of edge insertions applied.
	Updates int
	// ChangedPairs is |∆O|: reachable pairs that flipped false→true.
	ChangedPairs int64
	// WorkWords counts bitset words touched by maintenance — the
	// algorithm's actual cost, to be compared against |CHANGED|.
	WorkWords int64
}

// Changed returns |CHANGED| = |∆D| + |∆O|.
func (l Ledger) Changed() int64 { return int64(l.Updates) + l.ChangedPairs }

// Index is an incrementally maintained reachability index.
type Index struct {
	n      int
	words  int
	g      *graph.Graph // the current graph (edges inserted so far)
	reach  []uint64     // row-major closure bitsets, reflexive
	ledger Ledger
}

// New builds the index for an initial graph in one PTIME preprocessing pass.
func New(g *graph.Graph) (*Index, error) {
	if !g.Directed() {
		return nil, fmt.Errorf("inc: reachability maintenance expects a directed graph")
	}
	n := g.N()
	words := (n + 63) / 64
	idx := &Index{n: n, words: words, g: g.Clone(), reach: make([]uint64, n*words)}
	c := graph.NewClosure(g)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if c.Reach(u, v) {
				idx.reach[u*words+v/64] |= 1 << (v % 64)
			}
		}
	}
	return idx, nil
}

// N reports the vertex count.
func (x *Index) N() int { return x.n }

// Reach answers a reachability query in O(1) against the maintained index.
func (x *Index) Reach(u, v int) (bool, error) {
	if u < 0 || u >= x.n || v < 0 || v >= x.n {
		return false, fmt.Errorf("inc: query (%d,%d) out of range [0,%d)", u, v, x.n)
	}
	return x.reach[u*x.words+v/64]&(1<<(v%64)) != 0, nil
}

// Ledger returns the accumulated cost accounting.
func (x *Index) Ledger() Ledger { return x.ledger }

// InsertEdge applies ∆D = {+(u,v)} and incrementally maintains the index:
// every vertex a that reaches u gains v's descendant row. Work is counted
// in bitset words touched; changed pairs are counted exactly by popcount
// deltas.
func (x *Index) InsertEdge(u, v int) error {
	if u < 0 || u >= x.n || v < 0 || v >= x.n || u == v {
		return fmt.Errorf("inc: bad edge (%d,%d)", u, v)
	}
	if err := x.g.AddEdge(u, v); err != nil {
		return err
	}
	x.ledger.Updates++
	already, _ := x.Reach(u, v)
	if already {
		return nil // no output change: |∆O| = 0, and no work either
	}
	rowV := x.reach[v*x.words : (v+1)*x.words]
	// Update every ancestor of u (including u itself, reflexively).
	uWord, uBit := u/64, uint64(1)<<(u%64)
	for a := 0; a < x.n; a++ {
		rowA := x.reach[a*x.words : (a+1)*x.words]
		if rowA[uWord]&uBit == 0 {
			continue // a does not reach u; untouched beyond this test
		}
		for w := range rowA {
			before := rowA[w]
			after := before | rowV[w]
			if after != before {
				x.ledger.ChangedPairs += int64(bits.OnesCount64(after &^ before))
				rowA[w] = after
			}
		}
		x.ledger.WorkWords += int64(len(rowA))
	}
	return nil
}

// RecomputeCostWords estimates the from-scratch recomputation cost in the
// same unit (bitset words written): n rows of `words` words each, plus the
// traversal — a lower bound that already dwarfs incremental work on big
// graphs.
func (x *Index) RecomputeCostWords() int64 {
	return int64(x.n) * int64(x.words)
}

// VerifyAgainstRecompute checks the maintained index against a fresh
// closure of the current graph; used by tests after update batches.
func (x *Index) VerifyAgainstRecompute() error {
	c := graph.NewClosure(x.g)
	for u := 0; u < x.n; u++ {
		for v := 0; v < x.n; v++ {
			got, _ := x.Reach(u, v)
			if got != c.Reach(u, v) {
				return fmt.Errorf("inc: divergence at (%d,%d): index %v, recompute %v", u, v, got, !got)
			}
		}
	}
	return nil
}
