package shard

// Succinct-vs-dense differential: the 2-hop labeling scheme must be
// observably indistinguishable from the dense closure-matrix scheme —
// verdict for verdict AND error string for error string — unsharded and
// under both partitioners × n ∈ {2, 4}, across a save → reload → PATCH
// cycle with mixed edge inserts and deletes. The dense scheme is the
// oracle; any divergence is a labels bug.

import (
	"math/rand"
	"testing"

	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// succinctFixture builds the shared workload: a community graph, a probe
// mix (in-range, out-of-range, malformed), and a mixed insert/delete delta
// sequence whose deletes target edges the sequence itself inserted.
func succinctFixture(seed int64) (g *graph.Graph, probes [][]byte, deltas [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	g = graph.CommunityGraph(4, 9, 14, seed)
	for i := 0; i < 220; i++ {
		probes = append(probes, schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N())))
	}
	probes = append(probes,
		schemes.NodePairQuery(g.N(), 0),
		schemes.NodePairQuery(0, g.N()+9),
		schemes.NodePairQuery(-1, 1),
		[]byte{5},
		nil,
	)
	used := map[[2]int]bool{}
	freshPair := func() (int, int) {
		for {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) && !used[[2]int{u, v}] {
				used[[2]int{u, v}] = true
				return u, v
			}
		}
	}
	u1, v1 := freshPair()
	u2, v2 := freshPair()
	deltas = [][]byte{
		schemes.EdgeDelta(u1, v1),
		schemes.EdgeDelta(u2, v2),
		schemes.EdgeDeleteDelta(u1, v1),
		schemes.EdgeUpsertDelta(u1, v1), // re-insert across the reload boundary
		schemes.EdgeDeleteDelta(u2, v2),
		schemes.EdgeDeleteDelta(u1, v1),
	}
	return g, probes, deltas
}

// assertSuccinctEqualsDense probes both datasets and requires identical
// verdicts and identical error strings.
func assertSuccinctEqualsDense(t *testing.T, dense, labels store.Dataset, probes [][]byte, step string) {
	t.Helper()
	for i, q := range probes {
		dGot, dErr := dense.Answer(q)
		lGot, lErr := labels.Answer(q)
		if (dErr == nil) != (lErr == nil) {
			t.Fatalf("%s probe %d: dense err %v, labels err %v", step, i, dErr, lErr)
		}
		if dErr != nil {
			if dErr.Error() != lErr.Error() {
				t.Fatalf("%s probe %d: error strings diverge:\n dense:  %v\n labels: %v", step, i, dErr, lErr)
			}
			continue
		}
		if dGot != lGot {
			t.Fatalf("%s probe %d: dense %v, labels %v", step, i, dGot, lGot)
		}
	}
}

// TestSuccinctVsDenseUnsharded runs the differential on plain stores
// through a registry: initial build, snapshot reload, then a mixed
// insert/delete PATCH run, checking after every delta.
func TestSuccinctVsDenseUnsharded(t *testing.T) {
	g, probes, deltas := succinctFixture(31)
	dir := t.TempDir()
	reg := store.NewRegistry(dir)
	if _, err := reg.Register("dense", schemes.ReachabilityScheme(), g.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("labels", schemes.ReachabilityLabelsScheme(), g.Encode()); err != nil {
		t.Fatal(err)
	}
	dense, _ := reg.GetDataset("dense")
	labels, _ := reg.GetDataset("labels")
	assertSuccinctEqualsDense(t, dense, labels, probes, "initial")

	// Restart over the same directory: both must reload from snapshots.
	reg2 := store.NewRegistry(dir)
	if _, err := reg2.Register("dense", schemes.ReachabilityScheme(), g.Encode()); err != nil {
		t.Fatal(err)
	}
	ls, err := reg2.Register("labels", schemes.ReachabilityLabelsScheme(), g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !ls.WasLoaded() || reg2.PreprocessCount() != 0 {
		t.Fatalf("restart did not reload: loaded=%v preprocess=%d", ls.WasLoaded(), reg2.PreprocessCount())
	}
	dense, _ = reg2.GetDataset("dense")
	labels, _ = reg2.GetDataset("labels")
	assertSuccinctEqualsDense(t, dense, labels, probes, "reloaded")

	// Mixed insert/delete PATCH run on both datasets in lockstep.
	for i, delta := range deltas {
		if _, err := reg2.ApplyDelta("dense", [][]byte{delta}); err != nil {
			t.Fatalf("dense delta %d: %v", i, err)
		}
		if _, err := reg2.ApplyDelta("labels", [][]byte{delta}); err != nil {
			t.Fatalf("labels delta %d: %v", i, err)
		}
		assertSuccinctEqualsDense(t, dense, labels, probes, "patched")
	}
}

// TestSuccinctVsDenseSharded runs the same differential over sharded
// datasets: hash/range × n ∈ {2, 4}, reload via a fresh registry, then the
// PATCH run — the labels scheme rides the same scheme-agnostic sharded
// form (local probes + portal overlay) as the dense one, so the two must
// stay observably identical shard-for-shard too.
func TestSuccinctVsDenseSharded(t *testing.T) {
	g, probes, deltas := succinctFixture(47)
	for _, p := range []Partitioner{HashPartitioner{}, RangePartitioner{}} {
		for _, n := range []int{2, 4} {
			t.Run(p.Name()+"/n="+string(rune('0'+n)), func(t *testing.T) {
				dir := t.TempDir()
				reg := store.NewRegistry(dir)
				if _, err := RegisterSharded(reg, "dense", schemes.ReachabilityScheme(), p, n, g.Encode()); err != nil {
					t.Fatal(err)
				}
				if _, err := RegisterSharded(reg, "labels", schemes.ReachabilityLabelsScheme(), p, n, g.Encode()); err != nil {
					t.Fatal(err)
				}
				dense, _ := reg.GetDataset("dense")
				labels, _ := reg.GetDataset("labels")
				assertSuccinctEqualsDense(t, dense, labels, probes, "initial")

				reg2 := store.NewRegistry(dir)
				if _, err := RegisterSharded(reg2, "dense", schemes.ReachabilityScheme(), p, n, g.Encode()); err != nil {
					t.Fatal(err)
				}
				ls, err := RegisterSharded(reg2, "labels", schemes.ReachabilityLabelsScheme(), p, n, g.Encode())
				if err != nil {
					t.Fatal(err)
				}
				if !ls.WasLoaded() || reg2.PreprocessCount() != 0 {
					t.Fatalf("restart did not reload: loaded=%v preprocess=%d", ls.WasLoaded(), reg2.PreprocessCount())
				}
				dense, _ = reg2.GetDataset("dense")
				labels, _ = reg2.GetDataset("labels")
				assertSuccinctEqualsDense(t, dense, labels, probes, "reloaded")

				for i, delta := range deltas {
					if _, err := reg2.ApplyDelta("dense", [][]byte{delta}); err != nil {
						t.Fatalf("dense delta %d: %v", i, err)
					}
					if _, err := reg2.ApplyDelta("labels", [][]byte{delta}); err != nil {
						t.Fatalf("labels delta %d: %v", i, err)
					}
					assertSuccinctEqualsDense(t, dense, labels, probes, "patched")
				}
			})
		}
	}
}
