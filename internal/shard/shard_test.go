package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// diffWorkload is one scheme with a dataset and a query mix that includes
// cross-shard answers.
type diffWorkload struct {
	name    string
	scheme  *core.Scheme
	data    []byte
	queries [][]byte
	// crossShard reports whether a query's answer can span shards under
	// the given assignment (used to assert the test actually covers the
	// interesting case).
	crossShard func(q []byte, asn Assignment) bool
}

// assembleWorkloads builds the workload list: five shardable schemes over
// three dataset kinds, with query mixes that include cross-shard answers,
// empty ranges, and malformed/out-of-range queries.
func assembleWorkloads(t *testing.T) []diffWorkload {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))

	keys := make([]int64, 300)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
	}
	relData := schemes.RelationFromKeys(keys)
	var pointQs [][]byte
	for i := 0; i < 120; i++ {
		pointQs = append(pointQs, schemes.PointQuery(int64(rng.Intn(1200)-100)))
	}
	var rangeQs [][]byte
	for i := 0; i < 120; i++ {
		lo := int64(rng.Intn(1100) - 50)
		rangeQs = append(rangeQs, schemes.RangeQuery(lo, lo+int64(rng.Intn(400))))
	}
	rangeQs = append(rangeQs,
		schemes.RangeQuery(0, 999),
		schemes.RangeQuery(10, 5),
		schemes.RangeQuery(-10, -1),
	)

	list := make([]int64, 250)
	for i := range list {
		list[i] = int64(rng.Intn(800))
	}
	var listQs [][]byte
	for i := 0; i < 120; i++ {
		listQs = append(listQs, schemes.PointQuery(int64(rng.Intn(1000)-100)))
	}

	g := graph.CommunityGraph(4, 16, 40, 7)
	var reachQs [][]byte
	for i := 0; i < 250; i++ {
		reachQs = append(reachQs, schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N())))
	}
	reachQs = append(reachQs,
		schemes.NodePairQuery(0, g.N()-1),
		schemes.NodePairQuery(g.N()-1, 0),
		schemes.NodePairQuery(0, g.N()+5),
	)
	reachCross := func(q []byte, asn Assignment) bool {
		u, v, err := schemes.DecodeNodePairQuery(q)
		if err != nil {
			return false
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return false
		}
		return asn.Shard(int64(u)) != asn.Shard(int64(v))
	}
	rangeCross := func(q []byte, asn Assignment) bool {
		lo, hi, err := schemes.DecodeRangeQuery(q)
		if err != nil || lo >= hi {
			return false
		}
		return asn.Shard(lo) != asn.Shard(hi)
	}

	return []diffWorkload{
		{"point-selection", schemes.PointSelectionScheme(), relData, pointQs, nil},
		{"range-selection", schemes.RangeSelectionScheme(), relData, rangeQs, rangeCross},
		{"list-membership", schemes.ListMembershipScheme(), schemes.EncodeList(list), listQs, nil},
		{"reachability", schemes.ReachabilityScheme(), g.Encode(), reachQs, reachCross},
		{"reachability-bfs", schemes.ReachabilityBFSScheme(), g.Encode(), reachQs, reachCross},
		{"reachability-labels", schemes.ReachabilityLabelsScheme(), g.Encode(), reachQs, reachCross},
	}
}

// TestShardedDifferential is the acceptance test for the sharded answering
// path: for every shardable scheme, every partitioner, and n ∈ {2, 4},
// every query — including queries whose answers span shards — must return
// exactly the unsharded scheme's verdict (or error exactly when it
// errors), both one at a time and through AnswerBatch.
func TestShardedDifferential(t *testing.T) {
	for _, w := range assembleWorkloads(t) {
		pd, err := w.scheme.Preprocess(w.data)
		if err != nil {
			t.Fatalf("%s: unsharded preprocess: %v", w.name, err)
		}
		type oracle struct {
			want  bool
			isErr bool
		}
		oracles := make([]oracle, len(w.queries))
		for i, q := range w.queries {
			got, err := w.scheme.Answer(pd, q)
			oracles[i] = oracle{want: got, isErr: err != nil}
		}

		for _, p := range []Partitioner{HashPartitioner{}, RangePartitioner{}} {
			for _, n := range []int{2, 4} {
				name := fmt.Sprintf("%s/%s/n=%d", w.name, p.Name(), n)
				t.Run(name, func(t *testing.T) {
					ss, err := Build("d", w.scheme, ForScheme(w.scheme.Name()), p, n, w.data)
					if err != nil {
						t.Fatalf("build: %v", err)
					}
					if ss.ShardCount() != n {
						t.Fatalf("ShardCount = %d, want %d", ss.ShardCount(), n)
					}

					crossTrue := 0
					var goodQs [][]byte
					var goodWant []bool
					for i, q := range w.queries {
						got, err := ss.Answer(q)
						if (err != nil) != oracles[i].isErr {
							t.Fatalf("query %d: sharded err=%v, unsharded err=%v", i, err, oracles[i].isErr)
						}
						if err != nil {
							continue
						}
						if got != oracles[i].want {
							t.Fatalf("query %d: sharded %v, unsharded %v", i, got, oracles[i].want)
						}
						goodQs = append(goodQs, q)
						goodWant = append(goodWant, got)
						if w.crossShard != nil && got && w.crossShard(q, ss.Asn) {
							crossTrue++
						}
					}
					if w.crossShard != nil && crossTrue == 0 {
						t.Fatalf("no true cross-shard answers exercised — workload does not cover spanning queries")
					}

					// The batch path must agree with the per-query path.
					for _, par := range []int{1, 4} {
						ans, err := ss.AnswerBatch(goodQs, par)
						if err != nil {
							t.Fatalf("batch (parallelism %d): %v", par, err)
						}
						for i := range ans {
							if ans[i] != goodWant[i] {
								t.Fatalf("batch query %d (parallelism %d): %v, want %v", i, par, ans[i], goodWant[i])
							}
						}
					}
					// A failing query anywhere in a batch aborts it, like
					// core.Scheme.AnswerBatch.
					if w.name == "reachability" {
						bad := append(append([][]byte{}, goodQs[:3]...), []byte{0xff, 0xff})
						if _, err := ss.AnswerBatch(bad, 2); err == nil {
							t.Fatal("batch with a malformed query must fail")
						}
					}
				})
			}
		}
	}
}

// TestShardedPrepBytesScaleOut pins the horizontal-scaling claim for the
// closure-matrix scheme: per-shard artifacts shrink quadratically, so the
// summed sharded artifact must be well under the unsharded n² bitset.
func TestShardedPrepBytesScaleOut(t *testing.T) {
	g := graph.CommunityGraph(4, 32, 24, 11) // 128 vertices
	scheme := schemes.ReachabilityScheme()
	pd, err := scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Build("d", scheme, ForScheme(scheme.Name()), RangePartitioner{}, 4, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	var shardsOnly int
	for _, st := range ss.Stores {
		shardsOnly += len(st.Prep)
	}
	if shardsOnly >= len(pd) {
		t.Fatalf("per-shard closures sum to %d bytes, not smaller than the unsharded %d", shardsOnly, len(pd))
	}
}

// TestRegisterShardedMemoization: one catalog entry, one build, racing
// registrations share it, incompatible re-registrations error.
func TestRegisterShardedMemoization(t *testing.T) {
	reg := store.NewRegistry("")
	g := graph.CommunityGraph(3, 8, 10, 3)
	scheme := schemes.ReachabilityScheme()

	ss1, err := RegisterSharded(reg, "g", scheme, HashPartitioner{}, 2, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := RegisterSharded(reg, "g", scheme, HashPartitioner{}, 2, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if ss1 != ss2 {
		t.Fatal("re-registration returned a different sharded store")
	}
	if got := reg.PreprocessCount(); got != 2 {
		t.Fatalf("PreprocessCount = %d, want 2 (one per shard)", got)
	}
	if _, err := RegisterSharded(reg, "g", scheme, HashPartitioner{}, 4, g.Encode()); err == nil {
		t.Fatal("re-registering with a different shard count must error")
	}
	if _, err := RegisterSharded(reg, "g", scheme, RangePartitioner{}, 2, g.Encode()); err == nil {
		t.Fatal("re-registering with a different partitioner must error, not silently serve the other layout")
	}
	if _, err := reg.Register("g", scheme, g.Encode()); err == nil {
		t.Fatal("plain re-registration of a sharded id must error")
	}

	// The 1-shard corner: ShardCount()==1 on both types, so only the type
	// may decide ownership — neither direction may panic.
	if _, err := RegisterSharded(reg, "one", scheme, HashPartitioner{}, 1, g.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("one", scheme, g.Encode()); err == nil {
		t.Fatal("plain re-registration of a 1-shard sharded id must error, not panic")
	}
	if _, err := reg.Register("plain", scheme, g.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, err := RegisterSharded(reg, "plain", scheme, HashPartitioner{}, 1, g.Encode()); err == nil {
		t.Fatal("sharded re-registration of a plain id must error, not panic")
	}
	if _, ok := reg.Get("g"); ok {
		t.Fatal("Get must not hand out a sharded dataset as a plain store")
	}
	ds, ok := reg.GetDataset("g")
	if !ok || ds.ShardCount() != 2 {
		t.Fatalf("GetDataset: ok=%v shards=%v", ok, ds)
	}
	// The sharded id answers through the Dataset interface.
	got, err := ds.Answer(schemes.NodePairQuery(0, 1))
	if err != nil {
		t.Fatalf("answer through dataset: %v", err)
	}
	want, err := scheme.Decide(g.Encode(), schemes.NodePairQuery(0, 1))
	if err != nil || got != want {
		t.Fatalf("dataset answer %v, direct %v (err %v)", got, want, err)
	}
}

// TestShardedNotShardable: schemes without a sharded form are refused with
// a helpful error.
func TestShardedNotShardable(t *testing.T) {
	reg := store.NewRegistry("")
	if _, err := RegisterSharded(reg, "b", schemes.BDSScheme(), HashPartitioner{}, 2, nil); err == nil {
		t.Fatal("BDS has no sharded form and must be refused")
	}
	if ForScheme("bds/visit-order") != nil {
		t.Fatal("ForScheme must not invent a sharding for BDS")
	}
}
