package shard

// Sharded delta maintenance: the differential suite pins PATCH-maintained
// sharded datasets verdict-equivalent to a from-scratch unsharded
// preprocessing of the updated data (the same oracle the unsharded suite
// uses), across partitioners, shard counts, and a persistence
// reload → continue-patching cycle; plus the clean-refusal regression for
// sharded forms without delta routing.

import (
	"context"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// shardDeltaCase is one sharded maintenance scenario.
type shardDeltaCase struct {
	scheme string
	inc    *core.IncrementalScheme
	data   []byte
	deltas [][]byte
	probes [][]byte
}

func shardDeltaCases(seed int64) []shardDeltaCase {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, 40)
	for i := range keys {
		keys[i] = int64(rng.Intn(300) * 2)
	}
	// Mixed kinds, with the fixed prefix covering delete-present,
	// absent-tombstone, upsert-re-insert, and delete-again on both sides
	// of the reload boundary (half = 4); the random tail keeps the
	// cross-shard routing honest (tombstones are idempotent, so random
	// delete targets are safe).
	keyDeltas := [][]byte{
		schemes.KeysDeleteDelta([]int64{keys[0], keys[1], 900_001}),
		schemes.KeysUpsertDelta([]int64{keys[0], keys[2]}),
		schemes.KeysDeleteDelta([]int64{keys[0]}),
	}
	for len(keyDeltas) < 8 {
		batch := make([]int64, 1+rng.Intn(4))
		for j := range batch {
			batch[j] = int64(rng.Intn(700))
		}
		switch rng.Intn(3) {
		case 0:
			keyDeltas = append(keyDeltas, schemes.KeysDelta(batch))
		case 1:
			keyDeltas = append(keyDeltas, schemes.KeysDeleteDelta(batch))
		default:
			keyDeltas = append(keyDeltas, schemes.KeysUpsertDelta(batch))
		}
	}
	keyProbes := make([][]byte, 0, 150)
	for c := int64(0); c < 150; c++ {
		keyProbes = append(keyProbes, schemes.PointQuery(rng.Int63n(750)))
	}
	rangeProbes := make([][]byte, 0, 60)
	for i := 0; i < 60; i++ {
		lo := rng.Int63n(700)
		rangeProbes = append(rangeProbes, schemes.RangeQuery(lo, lo+rng.Int63n(12)))
	}
	// A community graph keeps some structure per shard but guarantees
	// cross-shard edges, so deltas exercise both local closure maintenance
	// and portal-overlay rebuilds.
	g := graph.CommunityGraph(4, 8, 14, seed+5)
	// Edge deletes must target present edges, so they retract edges this
	// sequence itself inserted on pairs absent from the base graph —
	// insert, delete, re-insert via upsert, delete again, spanning the
	// reload boundary and (under range partitioning) crossing shards.
	usedPairs := map[[2]int]bool{}
	freshPair := func() (int, int) {
		for {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) && !usedPairs[[2]int{u, v}] {
				usedPairs[[2]int{u, v}] = true
				return u, v
			}
		}
	}
	u1, v1 := freshPair()
	u2, v2 := freshPair()
	u3, v3 := freshPair()
	edgeDeltas := [][]byte{
		schemes.EdgeDelta(u1, v1),
		schemes.EdgeDelta(u2, v2),
		schemes.EdgeDeleteDelta(u1, v1),
		schemes.EdgeUpsertDelta(u1, v1), // re-insert across the reload boundary
		schemes.EdgeDeleteDelta(u2, v2),
		schemes.EdgeDeleteDelta(u1, v1),
		schemes.EdgeDelta(u3, v3),
		schemes.EdgeUpsertDelta(u3, v3), // upsert of a present edge: no-op
	}
	pairProbes := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		pairProbes = append(pairProbes, schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N())))
	}
	return []shardDeltaCase{
		{"point-selection/sorted-keys", schemes.IncrementalPointSelection(),
			schemes.RelationFromKeys(keys), keyDeltas, keyProbes},
		{"range-selection/sorted-keys", schemes.IncrementalRangeSelection(),
			schemes.RelationFromKeys(keys), keyDeltas, rangeProbes},
		{"list-membership/sorted", schemes.IncrementalListMembership(),
			schemes.EncodeList(keys), keyDeltas, keyProbes},
		{"reachability/closure-matrix", schemes.IncrementalReachability(),
			g.Encode(), edgeDeltas, pairProbes},
		{"reachability/labels", schemes.IncrementalReachabilityLabels(),
			g.Encode(), edgeDeltas, pairProbes},
	}
}

// assertShardedEquivalent compares the maintained sharded dataset against
// a from-scratch unsharded preprocessing of the updated raw data.
func assertShardedEquivalent(t *testing.T, tc shardDeltaCase, ds store.Dataset, updated []byte, step int) {
	t.Helper()
	fresh, err := tc.inc.Scheme.Preprocess(updated)
	if err != nil {
		t.Fatalf("step %d: fresh preprocess: %v", step, err)
	}
	got, err := ds.AnswerBatch(tc.probes, 2)
	if err != nil {
		t.Fatalf("step %d: maintained batch: %v", step, err)
	}
	for pi, q := range tc.probes {
		want, err := tc.inc.Scheme.Answer(fresh, q)
		if err != nil {
			t.Fatalf("step %d probe %d: rebuilt answer: %v", step, pi, err)
		}
		if got[pi] != want {
			t.Fatalf("step %d probe %d: sharded maintained %v, unsharded rebuilt %v", step, pi, got[pi], want)
		}
	}
}

// TestShardedMaintainedVsRebuiltDifferential runs the sharded differential
// suite: every delta-capable scheme × hash/range × 2/3 shards, maintained
// through Registry.ApplyDelta, checked against the unsharded oracle after
// every delta and across a reload → continue-patching cycle.
func TestShardedMaintainedVsRebuiltDifferential(t *testing.T) {
	for _, tc := range shardDeltaCases(904) {
		for _, p := range []Partitioner{HashPartitioner{}, RangePartitioner{}} {
			for _, n := range []int{2, 3} {
				t.Run(tc.scheme+"/"+p.Name()+"/"+string(rune('0'+n)), func(t *testing.T) {
					dir := t.TempDir()
					reg := store.NewRegistry(dir)
					if _, err := RegisterSharded(reg, "d", tc.inc.Scheme, p, n, tc.data); err != nil {
						t.Fatal(err)
					}
					updated := tc.data
					var err error
					half := len(tc.deltas) / 2
					for i, delta := range tc.deltas[:half] {
						v, err2 := reg.ApplyDelta("d", [][]byte{delta})
						if err2 != nil {
							t.Fatalf("delta %d: %v", i, err2)
						}
						if v != uint64(i+1) {
							t.Fatalf("delta %d: version %d, want %d", i, v, i+1)
						}
						if updated, err = tc.inc.ApplyUpdate(updated, delta); err != nil {
							t.Fatalf("delta %d: ⊕: %v", i, err)
						}
						ds, _ := reg.GetDataset("d")
						assertShardedEquivalent(t, tc, ds, updated, i)
					}

					// Restart over the same directory: the maintained
					// generation must reload (no Preprocess), with its
					// version, and keep accepting deltas.
					reg2 := store.NewRegistry(dir)
					ss, err := RegisterSharded(reg2, "d", tc.inc.Scheme, p, n, tc.data)
					if err != nil {
						t.Fatal(err)
					}
					if !ss.WasLoaded() {
						t.Fatal("restart did not reload the maintained shards")
					}
					if reg2.PreprocessCount() != 0 {
						t.Fatalf("restart ran %d Preprocess calls, want 0", reg2.PreprocessCount())
					}
					if ss.Version() != uint64(half) {
						t.Fatalf("reloaded version %d, want %d", ss.Version(), half)
					}
					assertShardedEquivalent(t, tc, ss, updated, half)
					for i, delta := range tc.deltas[half:] {
						if _, err := reg2.ApplyDelta("d", [][]byte{delta}); err != nil {
							t.Fatalf("post-reload delta %d: %v", i, err)
						}
						if updated, err = tc.inc.ApplyUpdate(updated, delta); err != nil {
							t.Fatalf("post-reload delta %d: ⊕: %v", i, err)
						}
						assertShardedEquivalent(t, tc, ss, updated, half+i)
					}
					if ss.Version() != uint64(len(tc.deltas)) {
						t.Fatalf("final version %d, want %d", ss.Version(), len(tc.deltas))
					}
				})
			}
		}
	}
}

// TestCrossShardEdgeDeltaConnects pins the portal-overlay rebuild: a
// cross-shard edge insert between two previously disconnected components
// must flip the cross-shard verdict to true on the maintained store.
func TestCrossShardEdgeDeltaConnects(t *testing.T) {
	// Two chains, 0→1→2 and 3→4→5; range partitioning over 2 shards puts
	// them on different shards with no cross edges at registration.
	g := graph.New(6, true)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	reg := store.NewRegistry(t.TempDir())
	scheme := schemes.ReachabilityScheme()
	ss, err := RegisterSharded(reg, "g", scheme, RangePartitioner{}, 2, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := ss.Answer(schemes.NodePairQuery(0, 5)); err != nil || ok {
		t.Fatalf("0⇝5 before the cross edge: %v, %v (want false)", ok, err)
	}
	if _, err := reg.ApplyDelta("g", [][]byte{schemes.EdgeDelta(2, 3)}); err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]int{{0, 5}, {2, 3}, {1, 4}} {
		ok, err := ss.Answer(schemes.NodePairQuery(q[0], q[1]))
		if err != nil || !ok {
			t.Fatalf("%d⇝%d after the cross edge: %v, %v (want true)", q[0], q[1], ok, err)
		}
	}
	if ok, _ := ss.Answer(schemes.NodePairQuery(5, 0)); ok {
		t.Fatal("5⇝0 should stay false (directed)")
	}

	// A multi-delta batch commits as one unit with the overlay rebuilt
	// once at the end: 5→3 is same-shard (both on shard 1), 3→0 is a new
	// cross edge, and the combined paths (5⇝0 via 5→3→0, 3⇝2 via 3→0→1→2,
	// 4⇝1 via 4→5→3→0→1) need both deltas plus the final rebuild.
	if _, err := reg.ApplyDelta("g", [][]byte{schemes.EdgeDelta(5, 3), schemes.EdgeDelta(3, 0)}); err != nil {
		t.Fatal(err)
	}
	if ss.Version() != 3 {
		t.Fatalf("version %d after batch of 2, want 3", ss.Version())
	}
	for _, q := range [][2]int{{5, 0}, {3, 2}, {4, 1}} {
		ok, err := ss.Answer(schemes.NodePairQuery(q[0], q[1]))
		if err != nil || !ok {
			t.Fatalf("%d⇝%d after the batch: %v, %v (want true)", q[0], q[1], ok, err)
		}
	}
}

// TestShardedDeltaUnsupportedCleanRefusal is the regression for the PATCH
// conflict path: a sharded dataset whose scheme has no sharded delta
// routing refuses with a clean error — no panic, the registry entry still
// answers, the version stays 0, and the persisted manifest is untouched.
func TestShardedDeltaUnsupportedCleanRefusal(t *testing.T) {
	dir := t.TempDir()
	reg := store.NewRegistry(dir)
	g := graph.CommunityGraph(2, 6, 8, 11)
	scheme := schemes.ReachabilityBFSScheme()
	ss, err := RegisterSharded(reg, "g", scheme, HashPartitioner{}, 2, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	manifestBefore, err := os.ReadFile(ManifestPath(dir, "g"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := ss.Answer(schemes.NodePairQuery(0, 1))
	if err != nil {
		t.Fatal(err)
	}

	_, err = reg.ApplyDelta("g", [][]byte{schemes.EdgeDelta(0, 2)})
	if err == nil {
		t.Fatal("sharded BFS accepted a delta")
	}
	if want := "no sharded delta routing"; !strings.Contains(err.Error(), want) {
		t.Fatalf("refusal %q does not explain itself (want %q)", err, want)
	}
	if ss.Version() != 0 {
		t.Fatalf("refused delta bumped the version to %d", ss.Version())
	}
	after, err := ss.Answer(schemes.NodePairQuery(0, 1))
	if err != nil || after != before {
		t.Fatalf("registry entry disturbed by refused delta: %v, %v", after, err)
	}
	manifestAfter, err := os.ReadFile(ManifestPath(dir, "g"))
	if err != nil {
		t.Fatal(err)
	}
	if string(manifestBefore) != string(manifestAfter) {
		t.Fatal("refused delta rewrote the manifest")
	}
}

// TestShardedEmptyBatchIsNoOp pins the empty-batch contract on the
// exported seam: ApplyDeltas with no deltas must not touch the persisted
// generation (a rewrite-then-cleanup of the same generation would delete
// the files the manifest names), and the dataset must stay loadable.
func TestShardedEmptyBatchIsNoOp(t *testing.T) {
	dir := t.TempDir()
	reg := store.NewRegistry(dir)
	inc := schemes.IncrementalPointSelection()
	ss, err := RegisterSharded(reg, "d", inc.Scheme, HashPartitioner{}, 2,
		schemes.RelationFromKeys([]int64{2, 4, 6}))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ss.ApplyDeltas(context.Background(), inc, nil, store.DiskMedium(dir))
	if err != nil || v != 0 {
		t.Fatalf("empty batch: version %d, err %v (want 0, nil)", v, err)
	}
	if _, err := LoadSharded(dir, "d", inc.Scheme); err != nil {
		t.Fatalf("empty batch broke the persisted generation: %v", err)
	}
}

// TestShardedConcurrentDeltasAndQueries races sharded ApplyDelta against
// fan-out batch queries under the race detector: verdicts must always come
// from a fully applied version (key visible once the version says so), and
// versions must be monotonic.
func TestShardedConcurrentDeltasAndQueries(t *testing.T) {
	reg := store.NewRegistry("")
	keys := make([]int64, 48)
	for i := range keys {
		keys[i] = int64(2 * i)
	}
	ss, err := RegisterSharded(reg, "d", schemes.PointSelectionScheme(), HashPartitioner{}, 3,
		schemes.RelationFromKeys(keys))
	if err != nil {
		t.Fatal(err)
	}
	const deltas = 24
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < deltas; i++ {
			if _, err := reg.ApplyDelta("d", [][]byte{schemes.KeysDelta([]int64{int64(1001 + 2*i)})}); err != nil {
				t.Errorf("delta %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 99))
			var last uint64
			for j := 0; j < 200; j++ {
				i := rng.Intn(deltas)
				v := ss.Version()
				if v < last {
					t.Errorf("version went backwards: %d after %d", v, last)
					return
				}
				last = v
				ans, err := ss.AnswerBatch([][]byte{schemes.PointQuery(int64(1001 + 2*i))}, 2)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if v >= uint64(i+1) && !ans[0] {
					t.Errorf("version %d claims delta %d applied but its key is invisible", v, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := ss.Version(); got != deltas {
		t.Fatalf("final version %d, want %d", got, deltas)
	}
}

// TestShardedConcurrentMixedDeltasAndQueries is the sharded twin of the
// store-level mixed race: batch i atomically inserts key 1001+2i and
// tombstones original key 2i, and any fan-out query observing version
// ≥ 2(i+1) must see the insert and must NOT see the deleted key — a
// tombstone lost in the shard routing or a torn generation swap would
// resurrect it.
func TestShardedConcurrentMixedDeltasAndQueries(t *testing.T) {
	reg := store.NewRegistry("")
	keys := make([]int64, 48)
	for i := range keys {
		keys[i] = int64(2 * i)
	}
	ss, err := RegisterSharded(reg, "d", schemes.PointSelectionScheme(), RangePartitioner{}, 3,
		schemes.RelationFromKeys(keys))
	if err != nil {
		t.Fatal(err)
	}
	const deltas = 24
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < deltas; i++ {
			batch := [][]byte{
				schemes.KeysDelta([]int64{int64(1001 + 2*i)}),
				schemes.KeysDeleteDelta([]int64{int64(2 * i)}),
			}
			if _, err := reg.ApplyDelta("d", batch); err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 77))
			var last uint64
			for j := 0; j < 200; j++ {
				i := rng.Intn(deltas)
				v := ss.Version()
				if v < last {
					t.Errorf("version went backwards: %d after %d", v, last)
					return
				}
				last = v
				if v < uint64(2*(i+1)) {
					continue // batch i not committed yet
				}
				ans, err := ss.AnswerBatch([][]byte{
					schemes.PointQuery(int64(1001 + 2*i)),
					schemes.PointQuery(int64(2 * i)),
				}, 2)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if !ans[0] {
					t.Errorf("version %d claims batch %d applied but its inserted key is invisible", v, i)
					return
				}
				if ans[1] {
					t.Errorf("version %d claims batch %d applied but its deleted key %d reappeared", v, i, 2*i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := ss.Version(); got != 2*deltas {
		t.Fatalf("final version %d, want %d", got, 2*deltas)
	}
	for i := 0; i < deltas; i++ {
		ans, err := ss.AnswerBatch([][]byte{
			schemes.PointQuery(int64(2 * i)),
			schemes.PointQuery(int64(1001 + 2*i)),
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ans[0] {
			t.Fatalf("deleted key %d reappeared after the race", 2*i)
		}
		if !ans[1] {
			t.Fatalf("inserted key %d lost after the race", 1001+2*i)
		}
	}
}
