package shard

// The sharded crash matrix: the same kill-the-medium-at-every-operation
// discipline as internal/store's crash suite, over the sharded persistence
// protocol — per-shard generation files committed by an atomic manifest
// rename, one write-ahead delta log per dataset logging the ORIGINAL
// (pre-split) deltas, checkpoints on the medium's cadence, replay at
// registration. Every scheme × hash/range partitioning is killed at the
// five named protocol boundaries and across a full op-index sweep, and the
// recovered dataset must sit at exactly the last acknowledged version,
// verdict-identical to an unsharded from-scratch rebuild of the data at
// that version.

import (
	"strings"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
	"pitract/internal/store/faultfs"
)

const (
	shardCrashDir = "/data"
	shardCrashID  = "d"
	shardCrashN   = 2
)

// shardCrashScheme is one scheme's sharded crash scenario.
type shardCrashScheme struct {
	name    string
	inc     *core.IncrementalScheme
	data    []byte
	batches [][][]byte
	probes  [][]byte
}

// shardCrashSchemes mirrors the unsharded crash scenarios: mixed-kind
// batches (insert, delete, upsert, idempotent tombstone) over the four
// delta-capable schemes. The reachability graph bridges, cuts, and
// re-bridges two chains, so under range partitioning the deltas hit both
// local closures and the cross-edge/portal summary.
func shardCrashSchemes() []shardCrashScheme {
	keyData := schemes.RelationFromKeys([]int64{2, 4, 6, 8, 10, 400, 402, 404})
	keyBatches := func() [][][]byte {
		return [][][]byte{
			{schemes.KeysDelta([]int64{101, 401})},
			{schemes.KeysDeleteDelta([]int64{4, 401, 404})},
			{schemes.KeysUpsertDelta([]int64{4, 500}), schemes.KeysDelta([]int64{7})},
			{schemes.KeysDeleteDelta([]int64{999})}, // absent: idempotent tombstone
		}
	}
	keyProbes := make([][]byte, 0, 16)
	for _, k := range []int64{2, 4, 6, 7, 8, 10, 101, 400, 401, 402, 404, 500, 999, 5} {
		keyProbes = append(keyProbes, schemes.PointQuery(k))
	}
	rangeProbes := make([][]byte, 0, 16)
	for _, r := range [][2]int64{{0, 3}, {3, 5}, {5, 7}, {99, 102}, {399, 405}, {499, 501}, {900, 1000}, {11, 399}} {
		rangeProbes = append(rangeProbes, schemes.RangeQuery(r[0], r[1]))
	}

	g := graph.New(8, true)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		g.MustAddEdge(e[0], e[1])
	}
	edgeBatches := [][][]byte{
		{schemes.EdgeDelta(3, 4)},                                // bridge (cross under range partitioning)
		{schemes.EdgeDeleteDelta(1, 2)},                          // cut a local chain
		{schemes.EdgeDelta(1, 2), schemes.EdgeDeleteDelta(3, 4)}, // restore, un-bridge
		{schemes.EdgeUpsertDelta(0, 1)},                          // present: no-op upsert
	}
	pairProbes := make([][]byte, 0, 64)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			pairProbes = append(pairProbes, schemes.NodePairQuery(u, v))
		}
	}

	return []shardCrashScheme{
		{"point-selection/sorted-keys", schemes.IncrementalPointSelection(), keyData, keyBatches(), keyProbes},
		{"range-selection/sorted-keys", schemes.IncrementalRangeSelection(), keyData, keyBatches(), rangeProbes},
		{"list-membership/sorted", schemes.IncrementalListMembership(),
			schemes.EncodeList([]int64{2, 4, 6, 8, 10, 400, 402, 404}), keyBatches(), keyProbes},
		{"reachability/closure-matrix", schemes.IncrementalReachability(), g.Encode(), edgeBatches, pairProbes},
	}
}

// shardFlatDeltas flattens a scenario's batches into version order.
func shardFlatDeltas(cs shardCrashScheme) [][]byte {
	var out [][]byte
	for _, b := range cs.batches {
		out = append(out, b...)
	}
	return out
}

// shardOracleStates returns the raw dataset at every version boundary.
func shardOracleStates(t *testing.T, cs shardCrashScheme) [][]byte {
	t.Helper()
	states := [][]byte{cs.data}
	cur := cs.data
	for i, d := range shardFlatDeltas(cs) {
		next, err := cs.inc.ApplyUpdate(cur, d)
		if err != nil {
			t.Fatalf("oracle ⊕ delta %d: %v", i, err)
		}
		cur = next
		states = append(states, cur)
	}
	return states
}

// assertShardOracle checks the sharded dataset verdict-identical to an
// UNSHARDED from-scratch preprocessing of the oracle's raw data — sharding
// must never change an answer, crashed and recovered or not.
func assertShardOracle(t *testing.T, cs shardCrashScheme, ds store.Dataset, raw []byte, label string) {
	t.Helper()
	fresh, err := cs.inc.Scheme.Preprocess(raw)
	if err != nil {
		t.Fatalf("%s: oracle preprocess: %v", label, err)
	}
	for pi, q := range cs.probes {
		got, err := ds.Answer(q)
		if err != nil {
			t.Fatalf("%s probe %d: recovered answer: %v", label, pi, err)
		}
		want, err := cs.inc.Scheme.Answer(fresh, q)
		if err != nil {
			t.Fatalf("%s probe %d: oracle answer: %v", label, pi, err)
		}
		if got != want {
			t.Fatalf("%s probe %d: sharded recovered %v, unsharded oracle %v", label, pi, got, want)
		}
	}
}

// runShardMaintenance registers the sharded dataset on a fresh registry
// over f and applies batches until done or crashed; returns the last
// acknowledged version.
func runShardMaintenance(t *testing.T, f *faultfs.FS, cs shardCrashScheme, p Partitioner, cadence int) (acked uint64, reg *store.Registry) {
	t.Helper()
	reg = store.NewRegistryMedium(&store.Medium{Dir: shardCrashDir, FS: f, CheckpointEvery: cadence})
	if _, err := RegisterSharded(reg, shardCrashID, cs.inc.Scheme, p, shardCrashN, cs.data); err != nil {
		t.Fatalf("register: %v (crashed=%v)", err, f.Crashed())
	}
	for bi, batch := range cs.batches {
		v, err := reg.ApplyDelta(shardCrashID, batch)
		if err != nil {
			if !f.Crashed() {
				t.Fatalf("batch %d failed without a crash: %v", bi, err)
			}
			return acked, reg
		}
		acked = v
	}
	return acked, reg
}

// recoverShardAndVerify restarts the medium, re-registers sharded, and
// asserts: loaded from the manifest (never re-partitioned/re-preprocessed),
// at exactly the acknowledged version, verdict-identical to the oracle.
func recoverShardAndVerify(t *testing.T, f *faultfs.FS, cs shardCrashScheme, p Partitioner, cadence int, acked uint64, states [][]byte, label string) (*ShardedStore, *store.Registry) {
	t.Helper()
	f.Restart()
	reg := store.NewRegistryMedium(&store.Medium{Dir: shardCrashDir, FS: f, CheckpointEvery: cadence})
	ss, err := RegisterSharded(reg, shardCrashID, cs.inc.Scheme, p, shardCrashN, cs.data)
	if err != nil {
		t.Fatalf("%s: recovery registration: %v", label, err)
	}
	if !ss.WasLoaded() {
		t.Fatalf("%s: recovery re-preprocessed instead of loading the manifest", label)
	}
	if got := ss.Version(); got != acked {
		t.Fatalf("%s: recovered version %d, want acknowledged %d", label, got, acked)
	}
	assertShardOracle(t, cs, ss, states[acked], label+": recovered state")
	return ss, reg
}

// finishShardAndVerify applies the remaining deltas and checks the final
// state — recovered sharded datasets must keep maintaining correctly.
func finishShardAndVerify(t *testing.T, reg *store.Registry, cs shardCrashScheme, from uint64, states [][]byte, label string) {
	t.Helper()
	deltas := shardFlatDeltas(cs)
	total := uint64(len(deltas))
	if from < total {
		v, err := reg.ApplyDelta(shardCrashID, deltas[from:])
		if err != nil {
			t.Fatalf("%s: continue after recovery: %v", label, err)
		}
		if v != total {
			t.Fatalf("%s: continued to version %d, want %d", label, v, total)
		}
	}
	ds, ok := reg.GetDataset(shardCrashID)
	if !ok {
		t.Fatalf("%s: dataset vanished", label)
	}
	assertShardOracle(t, cs, ds, states[total], label+": final state")
}

// TestCrashMatrixSharded sweeps the kill point over every file-system
// operation of the sharded maintenance phase, for every delta-capable
// scheme × hash/range partitioning.
func TestCrashMatrixSharded(t *testing.T) {
	for _, cs := range shardCrashSchemes() {
		for _, p := range []Partitioner{HashPartitioner{}, RangePartitioner{}} {
			t.Run(cs.name+"/"+p.Name(), func(t *testing.T) {
				states := shardOracleStates(t, cs)
				total := uint64(len(shardFlatDeltas(cs)))

				setup := faultfs.New()
				sreg := store.NewRegistryMedium(&store.Medium{Dir: shardCrashDir, FS: setup, CheckpointEvery: 1})
				if _, err := RegisterSharded(sreg, shardCrashID, cs.inc.Scheme, p, shardCrashN, cs.data); err != nil {
					t.Fatal(err)
				}
				setupOps := setup.Ops()
				dry := faultfs.New()
				if acked, _ := runShardMaintenance(t, dry, cs, p, 1); acked != total {
					t.Fatalf("dry run acknowledged %d deltas, want %d", acked, total)
				}
				totalOps := dry.Ops()
				if totalOps <= setupOps {
					t.Fatalf("no maintenance ops to crash (%d setup, %d total)", setupOps, totalOps)
				}

				for k := setupOps; k < totalOps; k++ {
					f := faultfs.New()
					f.SetTornBytes(5)
					f.CrashAfterOps(k)
					acked, _ := runShardMaintenance(t, f, cs, p, 1)
					if !f.Crashed() {
						t.Fatalf("crashAt=%d did not fire (trace len %d)", k, f.Ops())
					}
					label := "crashAt=" + dry.Trace()[k]
					_, reg2 := recoverShardAndVerify(t, f, cs, p, 1, acked, states, label)
					finishShardAndVerify(t, reg2, cs, acked, states, label)
				}
			})
		}
	}
}

// shardFindOp returns the absolute index of the nth (0-based) trace entry
// containing fragment.
func shardFindOp(t *testing.T, trace []string, fragment string, nth int) int {
	t.Helper()
	seen := 0
	for i, e := range trace {
		if strings.Contains(e, fragment) {
			if seen == nth {
				return i
			}
			seen++
		}
	}
	t.Fatalf("trace has no occurrence %d of %q (len %d)", nth, fragment, len(trace))
	return -1
}

// TestCrashKillPointsSharded pins the five named kill points on the sharded
// protocol, per scheme × partitioner, against the delete batch (batch 1).
// The manifest rename is the generation commit, so "mid-checkpoint" kills
// the atomic rename that would publish the new shard generation — the old
// manifest must survive and the log must replay the batch.
func TestCrashKillPointsSharded(t *testing.T) {
	logPath := store.LogPath(shardCrashDir, shardCrashID)
	maniPath := ManifestPath(shardCrashDir, shardCrashID)
	for _, cs := range shardCrashSchemes() {
		for _, p := range []Partitioner{HashPartitioner{}, RangePartitioner{}} {
			t.Run(cs.name+"/"+p.Name(), func(t *testing.T) {
				states := shardOracleStates(t, cs)
				dry := faultfs.New()
				runShardMaintenance(t, dry, cs, p, 1)
				trace := dry.Trace()

				// Batch 1 (the delete batch). Registration writes the manifest
				// once and removes the (absent) stale log once; each prior
				// batch adds one more manifest rename and log removal.
				const b = 1
				vBefore := uint64(len(cs.batches[0]))
				vAfter := vBefore + uint64(len(cs.batches[b]))
				points := []struct {
					name    string
					idx     int
					torn    int
					acked   uint64
					replays int64
				}{
					{"pre-log-append", shardFindOp(t, trace, "open "+logPath, b), 0, vBefore, 0},
					{"mid-record-torn", shardFindOp(t, trace, "write "+logPath, b), 6, vBefore, 0},
					{"post-log-pre-commit", shardFindOp(t, trace, "sync "+logPath, b) + 2, 0, vAfter, 1},
					{"mid-checkpoint", shardFindOp(t, trace, "-> "+maniPath, b+1), 0, vAfter, 1},
					{"post-checkpoint-pre-truncate", shardFindOp(t, trace, "remove "+logPath, b+1), 0, vAfter, 0},
				}
				for _, pt := range points {
					t.Run(pt.name, func(t *testing.T) {
						f := faultfs.New()
						f.SetTornBytes(pt.torn)
						f.CrashAfterOps(pt.idx)
						acked, _ := runShardMaintenance(t, f, cs, p, 1)
						if !f.Crashed() {
							t.Fatalf("kill point op %d (%s) did not fire", pt.idx, trace[pt.idx])
						}
						if acked != pt.acked {
							t.Fatalf("acknowledged version %d, want %d", acked, pt.acked)
						}
						ss, reg := recoverShardAndVerify(t, f, cs, p, 1, pt.acked, states, pt.name)
						if got := reg.ReplayCount(); got != pt.replays {
							t.Fatalf("replayed %d log records, want %d", got, pt.replays)
						}
						if ss.ShardCount() != shardCrashN {
							t.Fatalf("recovered %d shards, want %d", ss.ShardCount(), shardCrashN)
						}
						finishShardAndVerify(t, reg, cs, pt.acked, states, pt.name)
					})
				}
			})
		}
	}
}

// TestCrashShardedReplayAll hard-kills with a cadence larger than the
// scenario: the manifest never advanced past registration, every batch
// lives in the log, and recovery replays the whole history, checkpoints it
// as a fresh generation, sweeps superseded generations, and truncates the
// log.
func TestCrashShardedReplayAll(t *testing.T) {
	for _, cs := range shardCrashSchemes() {
		t.Run(cs.name, func(t *testing.T) {
			states := shardOracleStates(t, cs)
			total := uint64(len(shardFlatDeltas(cs)))
			const cadence = 100
			p := RangePartitioner{}
			f := faultfs.New()
			if acked, _ := runShardMaintenance(t, f, cs, p, cadence); acked != total {
				t.Fatalf("acknowledged %d, want %d", acked, total)
			}
			_, reg := recoverShardAndVerify(t, f, cs, p, cadence, total, states, "replay-all")
			if got, want := reg.ReplayCount(), int64(len(cs.batches)); got != want {
				t.Fatalf("replayed %d records, want %d", got, want)
			}
			// The replay folded into a durable checkpoint: log truncated, one
			// generation of shard files left.
			if recs, err := store.ReadLog(f, store.LogPath(shardCrashDir, shardCrashID)); err != nil || len(recs) != 0 {
				t.Fatalf("log after replay checkpoint: %d records, err=%v", len(recs), err)
			}
			names, err := f.ReadDirNames(shardCrashDir)
			if err != nil {
				t.Fatal(err)
			}
			gens := 0
			for _, n := range names {
				if strings.HasSuffix(n, ".pitract-shard") {
					gens++
				}
			}
			if gens != shardCrashN {
				t.Fatalf("%d shard files after replay checkpoint, want %d (one generation)", gens, shardCrashN)
			}
			// A second restart finds the checkpoint and replays nothing.
			f.Restart()
			reg2 := store.NewRegistryMedium(&store.Medium{Dir: shardCrashDir, FS: f, CheckpointEvery: cadence})
			ss2, err := RegisterSharded(reg2, shardCrashID, cs.inc.Scheme, p, shardCrashN, cs.data)
			if err != nil {
				t.Fatal(err)
			}
			if ss2.Version() != total || reg2.ReplayCount() != 0 {
				t.Fatalf("second restart: version %d (want %d), replays %d (want 0)",
					ss2.Version(), total, reg2.ReplayCount())
			}
		})
	}
}
