package shard

// Sharded persistence: one dataset becomes n snapshot files (one per
// shard, in the plain internal/store format) plus a manifest binding them
// together. The manifest is the commit record — it names the scheme, the
// raw-data digest, the partitioner and its frozen assignment, the
// cross-shard summary, and the SHA-256 of every shard snapshot file — and
// it is written last, atomically. A crash mid-registration therefore
// leaves at most orphaned shard files and no manifest: the next
// registration finds nothing loadable and rebuilds from the data, and the
// registry catalog never exposes a partial entry.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"pitract/internal/core"
	"pitract/internal/obs"
	"pitract/internal/store"
)

// manifestMagic opens every shard manifest; the trailing byte is the
// format version. Version 2 added the maintenance version counter and
// generation-suffixed shard snapshot files (incremental serving), and the
// reachability summary gained its cross-edge list in the same change —
// version-1 manifests are therefore rejected cleanly (the next
// registration rebuilds from the data) instead of half-loading.
var manifestMagic = []byte("PITRACTM\x02")

// Manifest describes one persisted sharded dataset.
type Manifest struct {
	// SchemeName names the scheme that preprocessed every shard.
	SchemeName string
	// DataSum digests the raw, unsplit dataset as originally registered;
	// deltas advance Version, not the digest.
	DataSum store.DataChecksum
	// Partitioner is the partitioner name ("hash", "range").
	Partitioner string
	// Assignment is the frozen key→shard mapping (DecodeAssignment form).
	Assignment []byte
	// Summary is the cross-shard state (scheme-specific; may be empty).
	Summary []byte
	// Version is the dataset's maintenance version: how many deltas have
	// been applied since registration. It doubles as the shard snapshot
	// file generation — the manifest only ever names files of its own
	// generation, so a crash mid-maintenance can never mix old and new
	// shard artifacts.
	Version uint64
	// ShardSums holds the SHA-256 of each shard snapshot file, indexed by
	// shard; its length is the shard count.
	ShardSums [][sha256.Size]byte
}

func appendBytesField(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// EncodeManifest renders the manifest in its on-disk format:
//
//	magic ‖ version ‖ crc32(payload) ‖ payload
//	payload = scheme ‖ dataSum ‖ partitioner ‖ assignment ‖ summary ‖ maintVersion ‖ n ‖ n×sha256
//
// with every variable-length field uvarint-length-prefixed.
func EncodeManifest(m *Manifest) []byte {
	var payload []byte
	payload = appendBytesField(payload, []byte(m.SchemeName))
	payload = append(payload, m.DataSum[:]...)
	payload = appendBytesField(payload, []byte(m.Partitioner))
	payload = appendBytesField(payload, m.Assignment)
	payload = appendBytesField(payload, m.Summary)
	payload = binary.AppendUvarint(payload, m.Version)
	payload = binary.AppendUvarint(payload, uint64(len(m.ShardSums)))
	for _, s := range m.ShardSums {
		payload = append(payload, s[:]...)
	}
	out := make([]byte, 0, len(manifestMagic)+4+len(payload))
	out = append(out, manifestMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeManifest parses the on-disk format. Any deviation — wrong magic or
// version, checksum mismatch, truncation, hostile counts — is an error,
// never a panic.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < len(manifestMagic)+4 {
		return nil, fmt.Errorf("shard: manifest too short (%d bytes)", len(b))
	}
	for i, m := range manifestMagic {
		if b[i] != m {
			return nil, fmt.Errorf("shard: bad manifest magic/version (offset %d)", i)
		}
	}
	want := binary.BigEndian.Uint32(b[len(manifestMagic):])
	payload := b[len(manifestMagic)+4:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("shard: manifest checksum mismatch (want %08x, got %08x)", want, got)
	}
	off := 0
	field := func() ([]byte, error) {
		n, k := binary.Uvarint(payload[off:])
		if k <= 0 || uint64(len(payload)-off-k) < n {
			return nil, fmt.Errorf("shard: corrupt manifest field at offset %d", off)
		}
		f := payload[off+k : off+k+int(n)]
		off += k + int(n)
		return f, nil
	}
	m := &Manifest{}
	scheme, err := field()
	if err != nil {
		return nil, err
	}
	m.SchemeName = string(scheme)
	if len(payload)-off < sha256.Size {
		return nil, fmt.Errorf("shard: manifest truncated before data digest")
	}
	copy(m.DataSum[:], payload[off:])
	off += sha256.Size
	part, err := field()
	if err != nil {
		return nil, err
	}
	m.Partitioner = string(part)
	if m.Assignment, err = field(); err != nil {
		return nil, err
	}
	m.Assignment = append([]byte(nil), m.Assignment...)
	if m.Summary, err = field(); err != nil {
		return nil, err
	}
	m.Summary = append([]byte(nil), m.Summary...)
	ver, k := binary.Uvarint(payload[off:])
	if k <= 0 {
		return nil, fmt.Errorf("shard: corrupt manifest maintenance version")
	}
	m.Version = ver
	off += k
	cnt, k := binary.Uvarint(payload[off:])
	if k <= 0 {
		return nil, fmt.Errorf("shard: corrupt manifest shard count")
	}
	off += k
	if cnt > uint64(len(payload)-off)/sha256.Size {
		return nil, fmt.Errorf("shard: manifest claims %d shards in %d bytes", cnt, len(payload)-off)
	}
	m.ShardSums = make([][sha256.Size]byte, cnt)
	for i := range m.ShardSums {
		copy(m.ShardSums[i][:], payload[off:])
		off += sha256.Size
	}
	if off != len(payload) {
		return nil, fmt.Errorf("shard: %d trailing manifest bytes", len(payload)-off)
	}
	return m, nil
}

// ManifestPath maps a dataset ID to its manifest file under dir (IDs are
// path-escaped exactly like plain snapshot names).
func ManifestPath(dir, id string) string {
	return filepath.Join(dir, url.PathEscape(id)+".pitract-shards")
}

// ShardSnapshotPath maps (dataset ID, shard index) to the shard's snapshot
// file under dir at generation 0 (as registered). The extension is
// deliberately NOT the plain registry's ".pitract": url.PathEscape keeps
// '.' intact, so a plain dataset id like "g.shard000" would otherwise map
// to the same file as sharded dataset "g"'s shard 0 and the two would
// silently clobber each other's artifacts.
func ShardSnapshotPath(dir, id string, i int) string {
	return shardSnapshotPathGen(dir, id, i, 0)
}

// shardSnapshotPathGen maps (dataset ID, shard index, generation) to a
// shard snapshot file. Maintenance writes each new dataset version as a
// fresh generation of files and commits it by atomically renaming the
// manifest that names them — the manifest on disk therefore always
// references a complete, self-consistent generation. Superseded or
// orphaned generations (including those left by a crash between the
// manifest rename and the cleanup) are reclaimed by sweepShardGenerations
// on the next successful maintenance.
func shardSnapshotPathGen(dir, id string, i int, gen uint64) string {
	if gen == 0 {
		return filepath.Join(dir, fmt.Sprintf("%s.shard%03d.pitract-shard", url.PathEscape(id), i))
	}
	return filepath.Join(dir, fmt.Sprintf("%s.shard%03d.v%d.pitract-shard", url.PathEscape(id), i, gen))
}

// sweepShardGenerations best-effort deletes every shard snapshot file of
// the dataset that does not belong to generation keep — not just the
// immediately preceding one, so generations orphaned by an earlier crash
// (committed manifest, interrupted cleanup) cannot accumulate.
func sweepShardGenerations(fsys store.FS, dir, id string, keep uint64) {
	entries, err := fsys.ReadDirNames(dir)
	if err != nil {
		return
	}
	prefix := url.PathEscape(id) + ".shard"
	const ext = ".pitract-shard"
	for _, name := range entries {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
			continue
		}
		// The generation part: "NNN" (gen 0) or "NNN.vG" for gen G.
		mid := name[len(prefix) : len(name)-len(ext)]
		gen := uint64(0)
		if i := strings.Index(mid, ".v"); i >= 0 {
			g, err := strconv.ParseUint(mid[i+2:], 10, 64)
			if err != nil {
				continue // not ours
			}
			gen = g
			mid = mid[:i]
		}
		// %03d widens past 3 digits for shard indexes >= 1000 (the library
		// has no shard cap, only the HTTP server does), so accept any
		// all-digit index of at least the padded width.
		if len(mid) < 3 || strings.Trim(mid, "0123456789") != "" {
			continue // not a shard index of ours
		}
		if gen != keep {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// writeShardGeneration persists one complete generation: every shard
// snapshot encoding first (atomic each, at the manifest's generation), the
// manifest last (atomic) — the commit point, so the manifest only ever
// names files that are fully on disk. On failure the written shard files
// are best-effort removed; without a manifest naming them they are dead
// weight, not a visible dataset.
func writeShardGeneration(fsys store.FS, dir, id string, m *Manifest, encs [][]byte) error {
	m.ShardSums = make([][sha256.Size]byte, len(encs))
	written := make([]string, 0, len(encs))
	cleanup := func() {
		for _, p := range written {
			fsys.Remove(p)
		}
	}
	for i, enc := range encs {
		m.ShardSums[i] = sha256.Sum256(enc)
		path := shardSnapshotPathGen(dir, id, i, m.Version)
		if err := store.WriteFileAtomicFS(fsys, path, enc); err != nil {
			cleanup()
			return fmt.Errorf("shard: save %q: %w", id, err)
		}
		written = append(written, path)
	}
	if err := store.WriteFileAtomicFS(fsys, ManifestPath(dir, id), EncodeManifest(m)); err != nil {
		cleanup()
		return fmt.Errorf("shard: save %q: %w", id, err)
	}
	return nil
}

// SaveSharded persists a sharded store under dir on the real disk (see
// writeShardGeneration for the commit discipline).
func SaveSharded(dir, id string, ss *ShardedStore, partitioner string) error {
	return SaveShardedFS(store.OSFS, dir, id, ss, partitioner)
}

// SaveShardedFS is SaveSharded on an explicit file layer.
func SaveShardedFS(fsys store.FS, dir, id string, ss *ShardedStore, partitioner string) error {
	m := &Manifest{
		SchemeName:  ss.Scheme.Name(),
		DataSum:     ss.DataSum,
		Partitioner: partitioner,
		Assignment:  ss.Asn.Encode(),
		Summary:     ss.Summary,
		Version:     ss.Version(),
	}
	encs := make([][]byte, len(ss.Stores))
	for i, st := range ss.Stores {
		encs[i] = store.EncodeSnapshot(st.Snapshot())
	}
	return writeShardGeneration(fsys, dir, id, m, encs)
}

// saveMaintainedStaged persists the staged (pending) maintenance state as
// generation newVersion, leaving the previous generation intact until the
// manifest rename commits the new one. Called by ApplyDeltas under the
// maintenance mutex, before the in-memory commit.
func (ss *ShardedStore) saveMaintainedStaged(fsys store.FS, dir string, pending [][]byte, summary []byte, newVersion uint64) error {
	m := &Manifest{
		SchemeName:  ss.Scheme.Name(),
		DataSum:     ss.DataSum,
		Partitioner: ss.Partitioner,
		Assignment:  ss.Asn.Encode(),
		Summary:     summary,
		Version:     newVersion,
	}
	encs := make([][]byte, len(pending))
	for i, prep := range pending {
		snap := ss.Stores[i].Snapshot()
		snap.Prep, snap.Version = prep, newVersion
		encs[i] = store.EncodeSnapshot(snap)
	}
	return writeShardGeneration(fsys, dir, ss.ID, m, encs)
}

// LoadSharded reopens a persisted sharded dataset: read and validate the
// manifest, verify every shard snapshot file against its manifest SHA-256,
// decode each, and reassemble the sharded store. A missing or corrupt
// manifest, a missing or corrupt shard file, a digest mismatch, or a
// scheme-name mismatch each fail with a clean error — never a panic and
// never a store quietly missing shards.
func LoadSharded(dir, id string, scheme *core.Scheme) (*ShardedStore, error) {
	return LoadShardedFS(store.OSFS, dir, id, scheme)
}

// LoadShardedFS is LoadSharded on an explicit file layer.
func LoadShardedFS(fsys store.FS, dir, id string, scheme *core.Scheme) (*ShardedStore, error) {
	mb, err := fsys.ReadFile(ManifestPath(dir, id))
	if err != nil {
		return nil, fmt.Errorf("shard: open %q: %w", id, err)
	}
	m, err := DecodeManifest(mb)
	if err != nil {
		return nil, fmt.Errorf("shard: open %q: %w", id, err)
	}
	if m.SchemeName != scheme.Name() {
		return nil, fmt.Errorf("shard: open %q: manifest scheme %s, want %s", id, m.SchemeName, scheme.Name())
	}
	sh := ForScheme(m.SchemeName)
	if sh == nil {
		return nil, fmt.Errorf("shard: open %q: scheme %s has no sharded form", id, m.SchemeName)
	}
	asn, err := DecodeAssignment(m.Assignment)
	if err != nil {
		return nil, fmt.Errorf("shard: open %q: %w", id, err)
	}
	if asn.Shards() != len(m.ShardSums) {
		return nil, fmt.Errorf("shard: open %q: assignment has %d shards, manifest %d",
			id, asn.Shards(), len(m.ShardSums))
	}
	ss := &ShardedStore{
		ID:          id,
		Scheme:      scheme,
		Sharding:    sh,
		Asn:         asn,
		Summary:     m.Summary,
		Stores:      make([]*store.Store, len(m.ShardSums)),
		DataSum:     m.DataSum,
		Loaded:      true,
		Partitioner: m.Partitioner,
	}
	ss.SetVersion(m.Version)
	for i, want := range m.ShardSums {
		// The manifest names its own generation of shard files, so a load
		// can never mix pre- and post-maintenance artifacts.
		path := shardSnapshotPathGen(dir, id, i, m.Version)
		enc, err := fsys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("shard: open %q: shard %d: %w", id, i, err)
		}
		if got := sha256.Sum256(enc); got != want {
			return nil, fmt.Errorf("shard: open %q: shard %d snapshot %s fails its manifest SHA-256", id, i, path)
		}
		snap, err := store.DecodeSnapshot(enc)
		if err != nil {
			return nil, fmt.Errorf("shard: open %q: shard %d: %w", id, i, err)
		}
		if snap.SchemeName != scheme.Name() {
			return nil, fmt.Errorf("shard: open %q: shard %d preprocessed by %s, want %s",
				id, i, snap.SchemeName, scheme.Name())
		}
		ss.Stores[i] = &store.Store{
			ID:      fmt.Sprintf("%s/shard%d", id, i),
			Scheme:  scheme,
			Prep:    snap.Prep,
			DataSum: snap.DataSum,
			Loaded:  true,
		}
		ss.Stores[i].SetVersion(snap.Version)
	}
	// Warm the per-shard prepared answerers concurrently, as Build does —
	// a serial warm-up would add n decode latencies to the restart path.
	var wg sync.WaitGroup
	for _, st := range ss.Stores {
		wg.Add(1)
		go func(st *store.Store) {
			defer wg.Done()
			st.Warm()
		}(st)
	}
	wg.Wait()
	return ss, nil
}

// RegisterSharded registers data under id as n partitioned stores behind
// one registry catalog entry — the sharded sibling of Registry.Register,
// with the same exactly-once and persistence contract: concurrent
// registrations share one build, a persistent registry reloads fresh
// snapshots (same scheme, same data digest, same partitioner and shard
// count) instead of re-preprocessing, and re-registering with anything
// incompatible is an error rather than a silent swap.
func RegisterSharded(r *store.Registry, id string, scheme *core.Scheme, p Partitioner, n int, data []byte) (*ShardedStore, error) {
	return RegisterShardedContext(context.Background(), r, id, scheme, p, n, data)
}

// RegisterShardedContext is RegisterSharded under a request budget: when
// ctx expires before the per-shard preprocessing completes the call
// returns a *store.BudgetError and the build is abandoned (it finishes but
// is not memoized — no catalog entry remains), exactly the
// Registry.RegisterContext contract. The HTTP layer threads each sharded
// registration's deadline through here.
func RegisterShardedContext(ctx context.Context, r *store.Registry, id string, scheme *core.Scheme, p Partitioner, n int, data []byte) (*ShardedStore, error) {
	if scheme == nil {
		return nil, fmt.Errorf("shard: register %q: nil scheme", id)
	}
	if p == nil {
		p = HashPartitioner{}
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: register %q: shard count %d < 1", id, n)
	}
	sh := ForScheme(scheme.Name())
	if sh == nil {
		return nil, fmt.Errorf("shard: register %q: scheme %s has no sharded form (shardable: %v)",
			id, scheme.Name(), ShardableSchemes())
	}
	sum := store.SumData(data)
	ds, err := r.RegisterDatasetContext(ctx, id,
		func(d store.Dataset) error {
			if d.SchemeName() != scheme.Name() {
				return fmt.Errorf("shard: dataset %q already registered with scheme %s (got %s)",
					id, d.SchemeName(), scheme.Name())
			}
			if d.DataDigest() != sum {
				return fmt.Errorf("shard: dataset %q already registered with different data (re-register under a new id)", id)
			}
			existing, ok := d.(*ShardedStore)
			if !ok {
				return fmt.Errorf("shard: dataset %q is registered unsharded; re-register through the plain path or under a new id", id)
			}
			if existing.ShardCount() != n {
				return fmt.Errorf("shard: dataset %q already registered with %d shards (got %d)",
					id, existing.ShardCount(), n)
			}
			if existing.Partitioner != p.Name() {
				return fmt.Errorf("shard: dataset %q already registered with the %s partitioner (got %s)",
					id, existing.Partitioner, p.Name())
			}
			return nil
		},
		func() (store.Dataset, error) {
			med := r.Medium()
			if med.Persistent() {
				ss, err := LoadShardedFS(med.Files(), med.Path(), id, scheme)
				if err == nil && ss.DataSum == sum && ss.ShardCount() == n && ss.Partitioner == p.Name() {
					for range ss.Stores {
						r.NoteLoad()
					}
					// A crash between a durable log append and the generation
					// checkpoint leaves acknowledged batches only in the log:
					// replay them so the restart resumes at the exact applied
					// version, just like a plain store.
					if err := replayShardedLog(r, med, ss); err != nil {
						return nil, fmt.Errorf("shard: register %q: %w", id, err)
					}
					return ss, nil
				}
			}
			ss, err := Build(id, scheme, sh, p, n, data)
			if err != nil {
				return nil, err
			}
			ss.Partitioner = p.Name()
			for range ss.Stores {
				r.NotePreprocess()
			}
			if med.Persistent() {
				if err := SaveShardedFS(med.Files(), med.Path(), id, ss, p.Name()); err != nil {
					return nil, err
				}
				// A fresh build supersedes any delta log a previous
				// incarnation of this ID left behind.
				if err := store.RemoveLog(med.Files(), store.LogPath(med.Path(), id)); err != nil {
					return nil, err
				}
			}
			return ss, nil
		})
	if err != nil {
		return nil, err
	}
	ss, ok := ds.(*ShardedStore)
	if !ok {
		return nil, fmt.Errorf("shard: dataset %q is not a sharded store", id)
	}
	return ss, nil
}

// replayShardedLog applies the delta-log tail to a manifest-loaded sharded
// store — the sharded twin of the registry's plain-store replay, with the
// same alignment rules: records wholly inside the loaded generation skip,
// the record starting exactly at the loaded version applies (memory-only —
// the log already holds it durably), and a gap or straddle means an
// acknowledged batch vanished and errors. A non-empty replay is folded
// into a fresh generation checkpoint; a failed checkpoint is not fatal —
// the log stays authoritative and the next restart replays again.
func replayShardedLog(r *store.Registry, med *store.Medium, ss *ShardedStore) error {
	fsys := med.Files()
	logPath := store.LogPath(med.Path(), ss.ID)
	records, err := store.ReadLog(fsys, logPath)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return nil
	}
	inc := r.IncrementalFor(ss.Scheme.Name())
	replayStart := obs.Start()
	replayed := 0
	for i, rec := range records {
		v := ss.Version()
		end := rec.FromVersion + uint64(len(rec.Deltas))
		if end <= v {
			continue // fully inside the checkpointed generation
		}
		if rec.FromVersion != v {
			return fmt.Errorf("replay log %s: record %d covers versions [%d,%d) but the manifest is at %d — an acknowledged batch is missing",
				logPath, i, rec.FromVersion, end, v)
		}
		if inc == nil {
			return fmt.Errorf("replay log %s: scheme %s has no incremental form to replay %d logged deltas",
				logPath, ss.Scheme.Name(), len(rec.Deltas))
		}
		if _, err := ss.ApplyDeltas(context.Background(), inc, rec.Deltas, nil); err != nil {
			return fmt.Errorf("replay log %s: record %d: %w", logPath, i, err)
		}
		replayed++
		r.NoteReplay()
	}
	obsLogReplay.Since(replayStart)
	// Fold the replayed state into a checkpoint (or drop a log that was
	// entirely stale). Save-then-remove: losing the log before a generation
	// holds its records would lose acknowledged batches.
	if replayed > 0 {
		if err := SaveShardedFS(fsys, med.Path(), ss.ID, ss, ss.Partitioner); err != nil {
			obsCheckpointFails.Inc()
			return nil
		}
		sweepShardGenerations(fsys, med.Path(), ss.ID, ss.Version())
	}
	if err := store.RemoveLog(fsys, logPath); err != nil {
		obsCheckpointFails.Inc()
	}
	return nil
}
