package shard

// Sharded persistence: one dataset becomes n snapshot files (one per
// shard, in the plain internal/store format) plus a manifest binding them
// together. The manifest is the commit record — it names the scheme, the
// raw-data digest, the partitioner and its frozen assignment, the
// cross-shard summary, and the SHA-256 of every shard snapshot file — and
// it is written last, atomically. A crash mid-registration therefore
// leaves at most orphaned shard files and no manifest: the next
// registration finds nothing loadable and rebuilds from the data, and the
// registry catalog never exposes a partial entry.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"

	"pitract/internal/core"
	"pitract/internal/store"
)

// manifestMagic opens every shard manifest; the trailing byte is the
// format version.
var manifestMagic = []byte("PITRACTM\x01")

// Manifest describes one persisted sharded dataset.
type Manifest struct {
	// SchemeName names the scheme that preprocessed every shard.
	SchemeName string
	// DataSum digests the raw, unsplit dataset.
	DataSum store.DataChecksum
	// Partitioner is the partitioner name ("hash", "range").
	Partitioner string
	// Assignment is the frozen key→shard mapping (DecodeAssignment form).
	Assignment []byte
	// Summary is the cross-shard state (scheme-specific; may be empty).
	Summary []byte
	// ShardSums holds the SHA-256 of each shard snapshot file, indexed by
	// shard; its length is the shard count.
	ShardSums [][sha256.Size]byte
}

func appendBytesField(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// EncodeManifest renders the manifest in its on-disk format:
//
//	magic ‖ version ‖ crc32(payload) ‖ payload
//	payload = scheme ‖ dataSum ‖ partitioner ‖ assignment ‖ summary ‖ n ‖ n×sha256
//
// with every variable-length field uvarint-length-prefixed.
func EncodeManifest(m *Manifest) []byte {
	var payload []byte
	payload = appendBytesField(payload, []byte(m.SchemeName))
	payload = append(payload, m.DataSum[:]...)
	payload = appendBytesField(payload, []byte(m.Partitioner))
	payload = appendBytesField(payload, m.Assignment)
	payload = appendBytesField(payload, m.Summary)
	payload = binary.AppendUvarint(payload, uint64(len(m.ShardSums)))
	for _, s := range m.ShardSums {
		payload = append(payload, s[:]...)
	}
	out := make([]byte, 0, len(manifestMagic)+4+len(payload))
	out = append(out, manifestMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeManifest parses the on-disk format. Any deviation — wrong magic or
// version, checksum mismatch, truncation, hostile counts — is an error,
// never a panic.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < len(manifestMagic)+4 {
		return nil, fmt.Errorf("shard: manifest too short (%d bytes)", len(b))
	}
	for i, m := range manifestMagic {
		if b[i] != m {
			return nil, fmt.Errorf("shard: bad manifest magic/version (offset %d)", i)
		}
	}
	want := binary.BigEndian.Uint32(b[len(manifestMagic):])
	payload := b[len(manifestMagic)+4:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("shard: manifest checksum mismatch (want %08x, got %08x)", want, got)
	}
	off := 0
	field := func() ([]byte, error) {
		n, k := binary.Uvarint(payload[off:])
		if k <= 0 || uint64(len(payload)-off-k) < n {
			return nil, fmt.Errorf("shard: corrupt manifest field at offset %d", off)
		}
		f := payload[off+k : off+k+int(n)]
		off += k + int(n)
		return f, nil
	}
	m := &Manifest{}
	scheme, err := field()
	if err != nil {
		return nil, err
	}
	m.SchemeName = string(scheme)
	if len(payload)-off < sha256.Size {
		return nil, fmt.Errorf("shard: manifest truncated before data digest")
	}
	copy(m.DataSum[:], payload[off:])
	off += sha256.Size
	part, err := field()
	if err != nil {
		return nil, err
	}
	m.Partitioner = string(part)
	if m.Assignment, err = field(); err != nil {
		return nil, err
	}
	m.Assignment = append([]byte(nil), m.Assignment...)
	if m.Summary, err = field(); err != nil {
		return nil, err
	}
	m.Summary = append([]byte(nil), m.Summary...)
	cnt, k := binary.Uvarint(payload[off:])
	if k <= 0 {
		return nil, fmt.Errorf("shard: corrupt manifest shard count")
	}
	off += k
	if cnt > uint64(len(payload)-off)/sha256.Size {
		return nil, fmt.Errorf("shard: manifest claims %d shards in %d bytes", cnt, len(payload)-off)
	}
	m.ShardSums = make([][sha256.Size]byte, cnt)
	for i := range m.ShardSums {
		copy(m.ShardSums[i][:], payload[off:])
		off += sha256.Size
	}
	if off != len(payload) {
		return nil, fmt.Errorf("shard: %d trailing manifest bytes", len(payload)-off)
	}
	return m, nil
}

// ManifestPath maps a dataset ID to its manifest file under dir (IDs are
// path-escaped exactly like plain snapshot names).
func ManifestPath(dir, id string) string {
	return filepath.Join(dir, url.PathEscape(id)+".pitract-shards")
}

// ShardSnapshotPath maps (dataset ID, shard index) to the shard's snapshot
// file under dir. The extension is deliberately NOT the plain registry's
// ".pitract": url.PathEscape keeps '.' intact, so a plain dataset id like
// "g.shard000" would otherwise map to the same file as sharded dataset
// "g"'s shard 0 and the two would silently clobber each other's
// artifacts.
func ShardSnapshotPath(dir, id string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard%03d.pitract-shard", url.PathEscape(id), i))
}

// SaveSharded persists a sharded store under dir: every shard snapshot
// first (atomic each), the manifest last (atomic), so the manifest only
// ever names files that are fully on disk. On failure the written shard
// files are best-effort removed; without a manifest they are dead weight,
// not a visible dataset.
func SaveSharded(dir, id string, ss *ShardedStore, partitioner string) error {
	m := &Manifest{
		SchemeName:  ss.Scheme.Name(),
		DataSum:     ss.DataSum,
		Partitioner: partitioner,
		Assignment:  ss.Asn.Encode(),
		Summary:     ss.Summary,
		ShardSums:   make([][sha256.Size]byte, len(ss.Stores)),
	}
	written := make([]string, 0, len(ss.Stores))
	cleanup := func() {
		for _, p := range written {
			os.Remove(p)
		}
	}
	for i, st := range ss.Stores {
		enc := store.EncodeSnapshot(st.Snapshot())
		m.ShardSums[i] = sha256.Sum256(enc)
		path := ShardSnapshotPath(dir, id, i)
		if err := store.WriteFileAtomic(path, enc); err != nil {
			cleanup()
			return fmt.Errorf("shard: save %q: %w", id, err)
		}
		written = append(written, path)
	}
	if err := store.WriteFileAtomic(ManifestPath(dir, id), EncodeManifest(m)); err != nil {
		cleanup()
		return fmt.Errorf("shard: save %q: %w", id, err)
	}
	return nil
}

// LoadSharded reopens a persisted sharded dataset: read and validate the
// manifest, verify every shard snapshot file against its manifest SHA-256,
// decode each, and reassemble the sharded store. A missing or corrupt
// manifest, a missing or corrupt shard file, a digest mismatch, or a
// scheme-name mismatch each fail with a clean error — never a panic and
// never a store quietly missing shards.
func LoadSharded(dir, id string, scheme *core.Scheme) (*ShardedStore, error) {
	mb, err := os.ReadFile(ManifestPath(dir, id))
	if err != nil {
		return nil, fmt.Errorf("shard: open %q: %w", id, err)
	}
	m, err := DecodeManifest(mb)
	if err != nil {
		return nil, fmt.Errorf("shard: open %q: %w", id, err)
	}
	if m.SchemeName != scheme.Name() {
		return nil, fmt.Errorf("shard: open %q: manifest scheme %s, want %s", id, m.SchemeName, scheme.Name())
	}
	sh := ForScheme(m.SchemeName)
	if sh == nil {
		return nil, fmt.Errorf("shard: open %q: scheme %s has no sharded form", id, m.SchemeName)
	}
	asn, err := DecodeAssignment(m.Assignment)
	if err != nil {
		return nil, fmt.Errorf("shard: open %q: %w", id, err)
	}
	if asn.Shards() != len(m.ShardSums) {
		return nil, fmt.Errorf("shard: open %q: assignment has %d shards, manifest %d",
			id, asn.Shards(), len(m.ShardSums))
	}
	ss := &ShardedStore{
		ID:          id,
		Scheme:      scheme,
		Sharding:    sh,
		Asn:         asn,
		Summary:     m.Summary,
		Stores:      make([]*store.Store, len(m.ShardSums)),
		DataSum:     m.DataSum,
		Loaded:      true,
		Partitioner: m.Partitioner,
	}
	for i, want := range m.ShardSums {
		path := ShardSnapshotPath(dir, id, i)
		enc, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("shard: open %q: shard %d: %w", id, i, err)
		}
		if got := sha256.Sum256(enc); got != want {
			return nil, fmt.Errorf("shard: open %q: shard %d snapshot %s fails its manifest SHA-256", id, i, path)
		}
		snap, err := store.DecodeSnapshot(enc)
		if err != nil {
			return nil, fmt.Errorf("shard: open %q: shard %d: %w", id, i, err)
		}
		if snap.SchemeName != scheme.Name() {
			return nil, fmt.Errorf("shard: open %q: shard %d preprocessed by %s, want %s",
				id, i, snap.SchemeName, scheme.Name())
		}
		ss.Stores[i] = &store.Store{
			ID:      fmt.Sprintf("%s/shard%d", id, i),
			Scheme:  scheme,
			Prep:    snap.Prep,
			DataSum: snap.DataSum,
			Loaded:  true,
		}
	}
	return ss, nil
}

// RegisterSharded registers data under id as n partitioned stores behind
// one registry catalog entry — the sharded sibling of Registry.Register,
// with the same exactly-once and persistence contract: concurrent
// registrations share one build, a persistent registry reloads fresh
// snapshots (same scheme, same data digest, same partitioner and shard
// count) instead of re-preprocessing, and re-registering with anything
// incompatible is an error rather than a silent swap.
func RegisterSharded(r *store.Registry, id string, scheme *core.Scheme, p Partitioner, n int, data []byte) (*ShardedStore, error) {
	if scheme == nil {
		return nil, fmt.Errorf("shard: register %q: nil scheme", id)
	}
	if p == nil {
		p = HashPartitioner{}
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: register %q: shard count %d < 1", id, n)
	}
	sh := ForScheme(scheme.Name())
	if sh == nil {
		return nil, fmt.Errorf("shard: register %q: scheme %s has no sharded form (shardable: %v)",
			id, scheme.Name(), ShardableSchemes())
	}
	sum := store.SumData(data)
	ds, err := r.RegisterDataset(id,
		func(d store.Dataset) error {
			if d.SchemeName() != scheme.Name() {
				return fmt.Errorf("shard: dataset %q already registered with scheme %s (got %s)",
					id, d.SchemeName(), scheme.Name())
			}
			if d.DataDigest() != sum {
				return fmt.Errorf("shard: dataset %q already registered with different data (re-register under a new id)", id)
			}
			existing, ok := d.(*ShardedStore)
			if !ok {
				return fmt.Errorf("shard: dataset %q is registered unsharded; re-register through the plain path or under a new id", id)
			}
			if existing.ShardCount() != n {
				return fmt.Errorf("shard: dataset %q already registered with %d shards (got %d)",
					id, existing.ShardCount(), n)
			}
			if existing.Partitioner != p.Name() {
				return fmt.Errorf("shard: dataset %q already registered with the %s partitioner (got %s)",
					id, existing.Partitioner, p.Name())
			}
			return nil
		},
		func() (store.Dataset, error) {
			if r.Dir() != "" {
				ss, err := LoadSharded(r.Dir(), id, scheme)
				if err == nil && ss.DataSum == sum && ss.ShardCount() == n && ss.Partitioner == p.Name() {
					for range ss.Stores {
						r.NoteLoad()
					}
					return ss, nil
				}
			}
			ss, err := Build(id, scheme, sh, p, n, data)
			if err != nil {
				return nil, err
			}
			ss.Partitioner = p.Name()
			for range ss.Stores {
				r.NotePreprocess()
			}
			if r.Dir() != "" {
				if err := SaveSharded(r.Dir(), id, ss, p.Name()); err != nil {
					return nil, err
				}
			}
			return ss, nil
		})
	if err != nil {
		return nil, err
	}
	ss, ok := ds.(*ShardedStore)
	if !ok {
		return nil, fmt.Errorf("shard: dataset %q is not a sharded store", id)
	}
	return ss, nil
}
