// Package shard partitions one dataset across several preprocessed stores
// and routes queries to them — the horizontal-scaling face of the paper's
// Π-tractability contract. Preprocess(D) is PTIME in |D|; cutting D into n
// parts preprocesses n datasets of size |D|/n (concurrently, and with
// sub-linear artifacts like the reachability closure matrix, into
// strictly smaller total output), while answering stays inside the NC
// budget: a query is either routed to the single shard that owns its
// answer, or fanned out to every shard and the per-shard verdicts merged
// by a scheme-specific reducer.
//
// The moving parts:
//
//   - Partitioner (hash, range) freezes an Assignment of element keys to
//     shards.
//   - Sharding is the per-scheme hook bundle: Keys extracts partition keys,
//     Split re-encodes the dataset as n valid sub-datasets, Route finds a
//     query's owning shard, Fanout rewrites a query per shard, Summarize
//     builds cross-shard state (e.g. the reachability portal overlay), and
//     Merge reduces fan-out verdicts (default: OR).
//   - ShardedStore holds the n per-shard stores plus the assignment and
//     summary, and answers exactly like a plain store.Store — differential
//     tests pin sharded answers byte-identical to unsharded ones.
//   - Manifest + RegisterSharded persist the whole thing as one catalog
//     entry backed by n snapshot files with per-shard SHA-256 integrity.
//
// Layering: shard sits on top of internal/store (it composes plain stores
// and reuses the snapshot format) and below internal/server (which routes
// /v1/query through store.Dataset, the interface both implement).
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pitract/internal/core"
	"pitract/internal/obs"
	"pitract/internal/store"
)

// Stage histograms for the sharded answer and maintenance paths, resolved
// once at init. Fan-out and merge are timed separately: fan-out cost scales
// with shard count, merge cost with the scheme's reducer (reachability
// probes O(|portals|) local queries per merge).
var (
	obsShardFanout  = obs.Stage(obs.StageShardFanout)
	obsShardMerge   = obs.Stage(obs.StageShardMerge)
	obsPreprocess   = obs.Stage(obs.StagePreprocess)
	obsWarm         = obs.Stage(obs.StageWarm)
	obsPatchApply   = obs.Stage(obs.StagePatchApply)
	obsPatchPersist = obs.Stage(obs.StagePatchPersist)
	obsLogAppend    = obs.Stage(obs.StageLogAppend)
	obsLogReplay    = obs.Stage(obs.StageLogReplay)
	// Same family the plain store reports into — the obs registry returns
	// the one shared counter for the name.
	obsCheckpointFails = obs.Default.Counter("pitract_checkpoint_failures_total",
		"Checkpoint (snapshot rewrite + log truncate) failures after a durable log append.")
)

// Probe answers a follow-up local query against one shard during Merge —
// e.g. reachability's "does u reach portal p inside its shard".
type Probe func(shard int, localQuery []byte) (bool, error)

// Sharding adapts one scheme to partitioned stores. Split/Keys/Summarize
// run once at preprocessing time; Route/Fanout/Merge sit on the answer path
// and must stay within the scheme's NC answering budget (they do constant
// or polylog work over the assignment and summary, never touch raw data).
type Sharding struct {
	// Keys extracts every element's partition key, in element order, from
	// an encoded dataset.
	Keys func(data []byte) ([]int64, error)
	// Split re-encodes data as asn.Shards() valid sub-datasets, element i
	// going to shard asn.Shard(keys[i]). Every part must itself be a
	// dataset the scheme's Preprocess accepts.
	Split func(data []byte, asn Assignment) ([][]byte, error)
	// Summarize builds the cross-shard summary artifact from the original
	// data (e.g. the reachability portal-overlay closure). Nil when the
	// scheme needs none; the result is persisted in the manifest.
	Summarize func(data []byte, asn Assignment) ([]byte, error)
	// SplitSummarize computes Split and Summarize in one pass over the
	// decoded dataset; Build prefers it when set, so schemes whose split
	// and summary share expensive intermediate state (reachability decodes
	// the graph and builds the induced subgraphs for both) do that work
	// once per registration instead of once per hook.
	SplitSummarize func(data []byte, asn Assignment) (parts [][]byte, summary []byte, err error)
	// Prepare decodes the summary once per opened store; the result is
	// what Fanout and Merge receive, so per-query work never re-parses the
	// O(|D|)-sized summary (that would smuggle linear work into the NC
	// answering budget). Nil passes the raw summary bytes through.
	Prepare func(summary []byte) (interface{}, error)
	// Route returns the single shard that alone owns q's answer, or -1 to
	// fan out to every shard.
	Route func(q []byte, asn Assignment) (int, error)
	// Fanout rewrites q for one shard during fan-out; keep=false means the
	// shard is known to contribute a false verdict without being asked.
	// summary is Prepare's output (or the raw bytes without Prepare). Nil
	// sends q unchanged to every shard.
	Fanout func(q []byte, shardIdx int, asn Assignment, summary interface{}) (local []byte, keep bool, err error)
	// Merge reduces the fan-out verdicts (verdicts[i] is false for shards
	// Fanout dropped); probe allows follow-up local queries. Nil means OR.
	Merge func(q []byte, verdicts []bool, asn Assignment, summary interface{}, probe Probe) (bool, error)

	// SplitDelta routes one dataset delta to the shards it lands on: the
	// result maps a shard index to the local deltas (in application order)
	// for that shard's store, each in the scheme's own delta encoding —
	// e.g. a key-insertion batch splits by partitioner into one per-shard
	// batch, and a same-shard edge insert becomes one relabelled local
	// edge. An empty map is valid (a purely cross-shard delta touches only
	// the summary). summary is Prepare's output *as of the start of the
	// delta batch* — SplitDelta must only depend on summary state deltas
	// cannot change (the vertex universe and relabelling, not derived
	// connectivity). Nil SplitDelta means the sharded form has no delta
	// routing: PATCH/ApplyDeltas is refused with a clean error and the
	// dataset stays exactly as it was.
	SplitDelta func(delta []byte, asn Assignment, summary interface{}) (map[int][][]byte, error)
	// UpdateSummary maintains the cross-shard summary's *structure* after
	// one delta's local deltas have been applied (e.g. extends the
	// reachability cross-edge list and portal set). Derived state that is
	// expensive to recompute belongs in FinishSummary, which runs once per
	// batch. probe answers local queries against the updated (pending, not
	// yet committed) per-shard stores. Nil means the summary never changes
	// under deltas (schemes without summaries). The []byte-in/[]byte-out
	// shape keeps the hook scheme-agnostic at the cost of a summary
	// decode/encode per structure-changing delta; schemes should
	// short-circuit deltas that provably leave the structure unchanged
	// (reachability returns the input summary for same-shard edges).
	UpdateSummary func(delta []byte, asn Assignment, summary []byte, probe Probe) ([]byte, error)
	// FinishSummary recomputes the summary's derived state once after the
	// whole delta batch (e.g. the reachability overlay closure, which
	// costs portal² probes — paying it per delta would waste k-1 of k
	// rebuilds). Nil when UpdateSummary leaves nothing deferred.
	FinishSummary func(asn Assignment, summary []byte, probe Probe) ([]byte, error)
}

// ShardedStore is one dataset served from n per-shard preprocessed stores
// behind a single catalog entry. It implements store.Dataset, so the HTTP
// server and the registry treat it exactly like a plain store; Answer and
// AnswerBatch route or fan out per query.
type ShardedStore struct {
	// ID is the dataset identifier the store was registered under.
	ID string
	// Scheme answers against each per-shard store.
	Scheme *core.Scheme
	// Sharding is the per-scheme routing/merging hook bundle.
	Sharding *Sharding
	// Asn is the frozen key→shard assignment.
	Asn Assignment
	// Summary is the cross-shard state from Sharding.Summarize (nil when
	// the scheme needs none).
	Summary []byte
	// Stores holds the per-shard preprocessed stores, indexed by shard.
	Stores []*store.Store
	// DataSum digests the raw (unsplit) data.
	DataSum store.DataChecksum
	// Loaded reports whether every shard was reloaded from snapshots.
	Loaded bool
	// Partitioner names the partitioner that planned Asn ("hash", "range");
	// persisted in the manifest so reloads only match like-partitioned
	// snapshots.
	Partitioner string

	// mu guards the mutable answer state — the per-shard preprocessed
	// strings, Summary, and version — against ApplyDeltas. Answer and
	// AnswerBatch hold the read lock for the whole call, so a query (even a
	// fan-out touching every shard plus the summary) always observes one
	// fully applied version, never shard i old and shard j new. The write
	// lock is held only for the commit swap — staging and snapshot I/O run
	// under maintMu — so queries never wait on maintenance work.
	mu sync.RWMutex
	// maintMu serializes maintainers; see store.Store.
	maintMu sync.Mutex
	// version counts the deltas applied since registration (restored from
	// the manifest on reload).
	version uint64
	// walRecords counts delta-log records appended since the last
	// generation checkpoint (guarded by maintMu); when it reaches the
	// medium's cadence a new generation is written and the log truncated.
	walRecords int

	// prepared memoizes Sharding.Prepare(Summary) for the answer paths;
	// ApplyDeltas refreshes it when a delta changes the summary.
	prepMu   sync.Mutex
	prepDone bool
	prepared interface{}
	prepErr  error
}

// summaryView returns the decoded summary, preparing it once per summary
// value. Callers hold ss.mu (read or write), which orders it against
// ApplyDeltas' refresh.
func (ss *ShardedStore) summaryView() (interface{}, error) {
	if ss.Sharding.Prepare == nil {
		return ss.Summary, nil
	}
	ss.prepMu.Lock()
	defer ss.prepMu.Unlock()
	if !ss.prepDone {
		ss.prepared, ss.prepErr = ss.Sharding.Prepare(ss.Summary)
		ss.prepDone = true
	}
	return ss.prepared, ss.prepErr
}

// DatasetID implements store.Dataset.
func (ss *ShardedStore) DatasetID() string { return ss.ID }

// SchemeName implements store.Dataset.
func (ss *ShardedStore) SchemeName() string { return ss.Scheme.Name() }

// DataDigest implements store.Dataset.
func (ss *ShardedStore) DataDigest() store.DataChecksum { return ss.DataSum }

// PrepBytes implements store.Dataset: the summed per-shard artifacts plus
// the cross-shard summary.
func (ss *ShardedStore) PrepBytes() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	total := len(ss.Summary)
	for _, st := range ss.Stores {
		total += st.PrepBytes()
	}
	return total
}

// ShardCount implements store.Dataset.
func (ss *ShardedStore) ShardCount() int { return len(ss.Stores) }

// SnapshotBytes implements store.SnapshotSizer: the summed encoded sizes
// of the per-shard snapshots plus the cross-shard summary the manifest
// carries — what a generation checkpoint would write.
func (ss *ShardedStore) SnapshotBytes() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	total := len(ss.Summary)
	for _, st := range ss.Stores {
		total += st.SnapshotBytes()
	}
	return total
}

// WasLoaded implements store.Dataset.
func (ss *ShardedStore) WasLoaded() bool { return ss.Loaded }

// Version implements store.Dataset: the number of deltas applied since
// registration.
func (ss *ShardedStore) Version() uint64 {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.version
}

// SetVersion stamps the maintenance version on a freshly constructed store
// (manifest reloads restore the persisted counter). It must not be called
// once the store is shared; ApplyDeltas is the concurrent-safe mutation.
func (ss *ShardedStore) SetVersion(v uint64) { ss.version = v }

// probe answers one follow-up local query for Merge.
func (ss *ShardedStore) probe(shardIdx int, localQuery []byte) (bool, error) {
	if shardIdx < 0 || shardIdx >= len(ss.Stores) {
		return false, fmt.Errorf("shard: probe shard %d out of range [0,%d)", shardIdx, len(ss.Stores))
	}
	return ss.Stores[shardIdx].Answer(localQuery)
}

// Answer decides one query: routed queries hit their owning shard
// unchanged; everything else fans out and merges. The read lock is held
// for the whole call, so every shard probe and summary read within one
// query sees the same maintenance version.
func (ss *ShardedStore) Answer(q []byte) (bool, error) {
	return ss.AnswerContext(context.Background(), q)
}

// AnswerContext implements store.ContextAnswerer: Answer with the
// context threaded through the fan-out, checked before every per-shard
// probe, so an expired query budget stops paying shards it can no
// longer use.
func (ss *ShardedStore) AnswerContext(ctx context.Context, q []byte) (bool, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	owner, err := ss.Sharding.Route(q, ss.Asn)
	if err != nil {
		return false, err
	}
	if owner >= 0 {
		if owner >= len(ss.Stores) {
			return false, fmt.Errorf("shard: route to shard %d out of range [0,%d)", owner, len(ss.Stores))
		}
		return ss.Stores[owner].AnswerContext(ctx, q)
	}
	fanStart := obs.Start()
	verdicts := make([]bool, len(ss.Stores))
	for i := range ss.Stores {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		local, keep, err := ss.fanout(q, i)
		if err != nil {
			return false, err
		}
		if !keep {
			continue
		}
		verdicts[i], err = ss.Stores[i].Answer(local)
		if err != nil {
			return false, err
		}
	}
	obsShardFanout.Since(fanStart)
	mergeStart := obs.Start()
	v, err := ss.merge(q, verdicts)
	obsShardMerge.Since(mergeStart)
	return v, err
}

// RetryPrepare implements store.PrepareRetrier: every member store
// drops and rebuilds its prepared answerer (the half-open probe's heal
// hook); the first failure is reported after all shards have retried.
func (ss *ShardedStore) RetryPrepare() error {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	var firstErr error
	for _, st := range ss.Stores {
		if err := st.RetryPrepare(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fanout applies Sharding.Fanout with the identity default.
func (ss *ShardedStore) fanout(q []byte, shardIdx int) ([]byte, bool, error) {
	if ss.Sharding.Fanout == nil {
		return q, true, nil
	}
	sv, err := ss.summaryView()
	if err != nil {
		return nil, false, err
	}
	return ss.Sharding.Fanout(q, shardIdx, ss.Asn, sv)
}

// merge applies Sharding.Merge with the OR default.
func (ss *ShardedStore) merge(q []byte, verdicts []bool) (bool, error) {
	if ss.Sharding.Merge == nil {
		for _, v := range verdicts {
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	sv, err := ss.summaryView()
	if err != nil {
		return false, err
	}
	return ss.Sharding.Merge(q, verdicts, ss.Asn, sv, ss.probe)
}

// AnswerBatch answers queries concurrently, in query order, riding the
// same per-scheme AnswerBatch worker pools a plain store uses: routed
// queries are grouped into one batch per owning shard, fan-out queries
// into one rewritten batch per shard, then merged per query. The first
// error aborts the batch, matching core.Scheme.AnswerBatch semantics. The
// read lock is held across the whole batch, so all verdicts come from one
// maintenance version.
func (ss *ShardedStore) AnswerBatch(queries [][]byte, parallelism int) ([]bool, error) {
	return ss.AnswerBatchContext(context.Background(), queries, parallelism)
}

// AnswerBatchContext implements store.ContextAnswerer: AnswerBatch with
// the context threaded through the per-shard sub-batches and the merge
// pool, so an expired query budget abandons the remaining work instead
// of paying every shard.
func (ss *ShardedStore) AnswerBatchContext(ctx context.Context, queries [][]byte, parallelism int) ([]bool, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(ss.Stores)
	results := make([]bool, len(queries))

	// Plan every query: routed ones group by owning shard, the rest fan
	// out.
	routed := make([][]int, n) // shard -> indices of queries routed there
	var fanned []int           // indices of fan-out queries
	for i, q := range queries {
		owner, err := ss.Sharding.Route(q, ss.Asn)
		if err != nil {
			return nil, fmt.Errorf("shard: batch query %d: %w", i, err)
		}
		if owner >= 0 {
			if owner >= n {
				return nil, fmt.Errorf("shard: batch query %d: route to shard %d out of range [0,%d)", i, owner, n)
			}
			routed[owner] = append(routed[owner], i)
		} else {
			fanned = append(fanned, i)
		}
	}

	// Per-shard batches run concurrently across shards; inside each shard
	// the scheme's AnswerBatch worker pool spreads the queries. The
	// caller's parallelism budget is divided across the shards with work,
	// so the total worker count stays what the caller (and the server's
	// maxBatchParallelism cap) asked for instead of multiplying by n.
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	active := 0
	for i := 0; i < n; i++ {
		if len(routed[i]) > 0 || len(fanned) > 0 {
			active++
		}
	}
	perShard := parallelism
	if active > 1 {
		perShard = parallelism / active
		if perShard < 1 {
			perShard = 1
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// verdicts[j][i] is shard i's verdict for fan-out query fanned[j].
	verdicts := make([][]bool, len(fanned))
	for j := range verdicts {
		verdicts[j] = make([]bool, n)
	}
	// One observation covers the whole concurrent fan-out section: with
	// per-shard batches in flight simultaneously, the meaningful latency is
	// the section's wall time, not the sum of per-shard times.
	var fanStart time.Time
	if len(fanned) > 0 {
		fanStart = obs.Start()
	}
	for i := 0; i < n; i++ {
		idxs := routed[i]
		if len(idxs) == 0 && len(fanned) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, idxs []int) {
			defer wg.Done()
			// Routed queries travel unchanged.
			if len(idxs) > 0 {
				batch := make([][]byte, len(idxs))
				for k, qi := range idxs {
					batch[k] = queries[qi]
				}
				ans, err := ss.Stores[i].AnswerBatchContext(ctx, batch, perShard)
				if err != nil {
					fail(err)
					return
				}
				for k, qi := range idxs {
					results[qi] = ans[k]
				}
			}
			// Fan-out queries are rewritten for this shard; dropped ones
			// keep their false verdict.
			if len(fanned) > 0 {
				var batch [][]byte
				var owners []int // j index into fanned/verdicts
				for j, qi := range fanned {
					local, keep, err := ss.fanout(queries[qi], i)
					if err != nil {
						fail(fmt.Errorf("shard: batch query %d: %w", qi, err))
						return
					}
					if keep {
						batch = append(batch, local)
						owners = append(owners, j)
					}
				}
				if len(batch) > 0 {
					ans, err := ss.Stores[i].AnswerBatchContext(ctx, batch, perShard)
					if err != nil {
						fail(err)
						return
					}
					for k, j := range owners {
						verdicts[j][i] = ans[k]
					}
				}
			}
		}(i, idxs)
	}
	wg.Wait()
	obsShardFanout.Since(fanStart)
	if firstErr != nil {
		return nil, firstErr
	}
	if len(fanned) > 0 {
		mergeStart := obs.Start()
		// Merges can be the expensive half of a fan-out batch (reachability
		// probes O(|portals|) local queries per merge), so they ride their
		// own bounded pool instead of serializing on the calling goroutine;
		// the first failing merge (lowest query index) aborts the batch,
		// matching core.Scheme.AnswerBatch.
		workers := parallelism
		if workers > len(fanned) {
			workers = len(fanned)
		}
		var (
			next   atomic.Int64
			failed atomic.Bool
			mwg    sync.WaitGroup
		)
		mergeErrs := make([]error, len(fanned))
		mwg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer mwg.Done()
				for !failed.Load() {
					j := int(next.Add(1)) - 1
					if j >= len(fanned) {
						return
					}
					if err := ctx.Err(); err != nil {
						mergeErrs[j] = err
						failed.Store(true)
						return
					}
					got, err := ss.merge(queries[fanned[j]], verdicts[j])
					if err != nil {
						mergeErrs[j] = err
						failed.Store(true)
						return
					}
					results[fanned[j]] = got
				}
			}()
		}
		mwg.Wait()
		obsShardMerge.Since(mergeStart)
		for j, err := range mergeErrs {
			if err != nil {
				return nil, fmt.Errorf("shard: batch query %d: %w", fanned[j], err)
			}
		}
	}
	return results, nil
}

// ApplyDeltas implements store.DeltaDataset: it maintains the sharded
// dataset under a batch of deltas. Each delta is routed by the scheme's
// SplitDelta hook to the shards it lands on (local deltas applied through
// the scheme's incremental form, exactly as an unsharded store would), and
// the cross-shard summary is maintained by UpdateSummary (with derived
// state like the reachability overlay closure rebuilt once per batch by
// FinishSummary), probing the pending post-delta shard state. The whole
// batch is staged outside the served state — under the maintenance mutex,
// never the reader-blocking lock — and committed at once: per-shard
// strings, summary, and version swap together under the writer lock.
//
// With a persistent medium the commit protocol is write-ahead, exactly as
// for a plain store: the original (top-level) deltas are appended to the
// dataset's delta log — CRC-framed and fsynced — before any served state
// changes. The log append is the commit point: a failure there aborts the
// batch with nothing applied (PersistError); once the record is durable
// the batch commits unconditionally. On the medium's checkpoint cadence a
// fresh shard generation is written (new generation files first, manifest
// rename as the atomic commit point) and the log truncated; a checkpoint
// failure after a durable append is counted and retried on the next batch
// — the log stays authoritative and a restart replays it on top of the
// manifest's generation.
//
// ctx bounds the batch (checked before each delta and before the commit
// point): a budget that expires mid-batch aborts with nothing applied.
//
// Schemes whose sharded form has no delta routing (SplitDelta == nil)
// refuse cleanly; the HTTP layer surfaces that as a 409.
func (ss *ShardedStore) ApplyDeltas(ctx context.Context, inc *core.IncrementalScheme, deltas [][]byte, med *store.Medium) (uint64, error) {
	if ss.Sharding.SplitDelta == nil {
		return ss.Version(), fmt.Errorf("shard: scheme %s has no sharded delta routing; re-register unsharded to maintain it",
			ss.Scheme.Name())
	}
	if inc == nil || inc.ApplyDelta == nil {
		return ss.Version(), fmt.Errorf("shard: scheme %s has no incremental form", ss.Scheme.Name())
	}
	if med.Persistent() && ss.ID == "" {
		return ss.Version(), fmt.Errorf("shard: cannot persist deltas for a store with no dataset ID")
	}
	// An empty batch is a no-op, never a persistence round-trip: writing
	// generation v over itself and then "removing the old generation"
	// would delete the files the manifest still names.
	if len(deltas) == 0 {
		return ss.Version(), nil
	}
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	n := len(ss.Stores)
	pending := make([][]byte, n)
	for i, st := range ss.Stores {
		pending[i], _ = st.View()
	}
	// Summary is only written by maintainers (serialized on maintMu), so
	// reading it here without ss.mu is ordered with every past commit.
	summary := ss.Summary
	oldVersion := ss.Version()
	// probe answers local queries against the staged shard state, so
	// summary maintenance for delta k sees deltas 1..k already applied.
	probe := func(s int, q []byte) (bool, error) {
		if s < 0 || s >= n {
			return false, fmt.Errorf("shard: probe shard %d out of range [0,%d)", s, n)
		}
		return ss.Scheme.Answer(pending[s], q)
	}
	// SplitDelta receives the summary view as of the start of the batch —
	// its contract only depends on delta-invariant summary state (vertex
	// universe, local relabelling), so one Prepare serves the whole batch
	// instead of one full summary decode per delta.
	sv := interface{}(summary)
	if ss.Sharding.Prepare != nil {
		var err error
		if sv, err = ss.Sharding.Prepare(summary); err != nil {
			return oldVersion, fmt.Errorf("shard: prepare summary: %w (nothing applied)", err)
		}
	}
	applyStart := obs.Start()
	touched := make([]bool, n)
	for di, delta := range deltas {
		if err := ctx.Err(); err != nil {
			return oldVersion, fmt.Errorf("shard: delta %d: %w (nothing applied)", di, err)
		}
		locals, err := ss.Sharding.SplitDelta(delta, ss.Asn, sv)
		if err != nil {
			return oldVersion, fmt.Errorf("shard: delta %d: %w (nothing applied)", di, err)
		}
		for s, lds := range locals {
			if s < 0 || s >= n {
				return oldVersion, fmt.Errorf("shard: delta %d routed to shard %d out of range [0,%d) (nothing applied)", di, s, n)
			}
			if len(lds) > 0 {
				touched[s] = true
			}
			for _, ld := range lds {
				if pending[s], err = inc.ApplyDelta(pending[s], ld); err != nil {
					return oldVersion, fmt.Errorf("shard: delta %d on shard %d: %w (nothing applied)", di, s, err)
				}
			}
		}
		if ss.Sharding.UpdateSummary != nil {
			if summary, err = ss.Sharding.UpdateSummary(delta, ss.Asn, summary, probe); err != nil {
				return oldVersion, fmt.Errorf("shard: delta %d: summary: %w (nothing applied)", di, err)
			}
		}
	}
	// Derived summary state (e.g. the reachability overlay closure) is
	// rebuilt once for the whole batch, not once per delta.
	if ss.Sharding.FinishSummary != nil {
		var err error
		if summary, err = ss.Sharding.FinishSummary(ss.Asn, summary, probe); err != nil {
			return oldVersion, fmt.Errorf("shard: finish summary: %w (nothing applied)", err)
		}
	}
	obsPatchApply.Since(applyStart)
	newVersion := oldVersion + uint64(len(deltas))
	if err := ctx.Err(); err != nil {
		return oldVersion, fmt.Errorf("shard: %w (nothing applied)", err)
	}
	checkpointed := false
	if med.Persistent() {
		fsys := med.Files()
		appendStart := obs.Start()
		if err := store.AppendLogRecord(fsys, store.LogPath(med.Path(), ss.ID), oldVersion, deltas); err != nil {
			return oldVersion, &store.PersistError{Err: fmt.Errorf("shard: log delta batch: %w (nothing applied)", err)}
		}
		obsLogAppend.Since(appendStart)
		ss.walRecords++
		if ss.walRecords >= med.Cadence() {
			persistStart := obs.Start()
			if err := ss.saveMaintainedStaged(fsys, med.Path(), pending, summary, newVersion); err != nil {
				obsCheckpointFails.Inc()
			} else if err := store.RemoveLog(fsys, store.LogPath(med.Path(), ss.ID)); err != nil {
				obsCheckpointFails.Inc()
			} else {
				ss.walRecords = 0
				checkpointed = true
				obsPatchPersist.Since(persistStart)
			}
		}
	}
	var prepared interface{}
	var prepErr error
	if ss.Sharding.Prepare != nil {
		prepared, prepErr = ss.Sharding.Prepare(summary)
	}
	// Stage the touched shards' prepared answerers outside the
	// reader-blocking lock, so the commit below swaps ⟨Π, version,
	// prepared⟩ per shard without decoding anything while queries wait —
	// concurrently, as Build and LoadSharded warm, so PATCH latency grows
	// with the slowest touched shard's decode, not the sum of all n.
	// Untouched shards (pending[i] is still the slice View returned) keep
	// their current Π and its still-valid answerer; only the version
	// advances. Prepare failures are carried into the stores and surface
	// per answer, like the raw path's per-query validation (the
	// maintained bytes are the committed truth).
	staged := make([]core.Answerer, n)
	stagedErr := make([]error, n)
	var stageWG sync.WaitGroup
	for i := range pending {
		if !touched[i] {
			continue
		}
		stageWG.Add(1)
		go func(i int) {
			defer stageWG.Done()
			staged[i], stagedErr[i] = ss.Scheme.Prepare(pending[i])
		}(i)
	}
	stageWG.Wait()
	// Commit: everything swaps inside one writer-lock critical section,
	// including the memoized prepared summary (refreshed under prepMu
	// while still holding mu, so no reader can pair the new summary with
	// the old prepared view).
	ss.mu.Lock()
	for i, st := range ss.Stores {
		if touched[i] {
			st.ReplacePrepared(pending[i], newVersion, staged[i], stagedErr[i])
		} else {
			st.BumpVersion(newVersion)
		}
	}
	ss.Summary = summary
	ss.version = newVersion
	ss.prepMu.Lock()
	ss.prepared, ss.prepErr, ss.prepDone = prepared, prepErr, ss.Sharding.Prepare != nil
	ss.prepMu.Unlock()
	ss.mu.Unlock()
	// Sweep only after a successful checkpoint: between checkpoints the
	// manifest still names the previous generation's files, which must
	// survive for replay-over-manifest recovery.
	if checkpointed {
		sweepShardGenerations(med.Files(), med.Path(), ss.ID, newVersion)
	}
	return newVersion, nil
}

// Build cuts data into n parts with the partitioner, preprocesses every
// part concurrently, and assembles the sharded store. It does not persist
// anything; RegisterSharded adds snapshots and the manifest.
func Build(id string, scheme *core.Scheme, sh *Sharding, p Partitioner, n int, data []byte) (*ShardedStore, error) {
	if scheme == nil || sh == nil {
		return nil, fmt.Errorf("shard: build %q: nil scheme or sharding", id)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: build %q: shard count %d < 1", id, n)
	}
	keys, err := sh.Keys(data)
	if err != nil {
		return nil, fmt.Errorf("shard: build %q: keys: %w", id, err)
	}
	asn, err := p.Plan(keys, n)
	if err != nil {
		return nil, fmt.Errorf("shard: build %q: %w", id, err)
	}
	var parts [][]byte
	var summary []byte
	if sh.SplitSummarize != nil {
		parts, summary, err = sh.SplitSummarize(data, asn)
		if err != nil {
			return nil, fmt.Errorf("shard: build %q: split: %w", id, err)
		}
	} else {
		parts, err = sh.Split(data, asn)
		if err != nil {
			return nil, fmt.Errorf("shard: build %q: split: %w", id, err)
		}
		if sh.Summarize != nil {
			summary, err = sh.Summarize(data, asn)
			if err != nil {
				return nil, fmt.Errorf("shard: build %q: summarize: %w", id, err)
			}
		}
	}
	if len(parts) != n {
		return nil, fmt.Errorf("shard: build %q: split produced %d parts, want %d", id, len(parts), n)
	}
	ss := &ShardedStore{
		ID:       id,
		Scheme:   scheme,
		Sharding: sh,
		Asn:      asn,
		Summary:  summary,
		Stores:   make([]*store.Store, n),
		DataSum:  store.SumData(data),
	}
	// Preprocess the parts concurrently: the per-part PTIME cost is the
	// thing sharding scales out.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("shard: build %q: preprocess shard %d panicked: %v", id, i, p)
				}
			}()
			ppStart := obs.Start()
			pd, err := scheme.Preprocess(parts[i])
			if err != nil {
				errs[i] = fmt.Errorf("shard: build %q: preprocess shard %d: %w", id, i, err)
				return
			}
			obsPreprocess.Since(ppStart)
			ss.Stores[i] = &store.Store{
				ID:      fmt.Sprintf("%s/shard%d", id, i),
				Scheme:  scheme,
				Prep:    pd,
				DataSum: store.SumData(parts[i]),
			}
			// Each shard's Π decodes into its prepared form inside the same
			// per-shard goroutine, so warm-up parallelizes with preprocessing.
			warmStart := obs.Start()
			ss.Stores[i].Warm()
			obsWarm.Since(warmStart)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ss, nil
}
