package shard

import (
	"math/rand"
	"testing"
)

func TestHashAssignmentBalanceAndDeterminism(t *testing.T) {
	p := HashPartitioner{}
	asn, err := p.Plan(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for k := int64(-5000); k < 5000; k++ {
		s := asn.Shard(k)
		if s < 0 || s >= 4 {
			t.Fatalf("key %d assigned to shard %d", k, s)
		}
		if s != asn.Shard(k) {
			t.Fatalf("key %d assignment not deterministic", k)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 1500 || c > 3500 {
			t.Fatalf("hash shard %d holds %d of 10000 keys — badly unbalanced: %v", s, c, counts)
		}
	}
}

func TestRangeAssignmentContiguousAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(rng.Intn(100000) - 50000)
	}
	asn, err := RangePartitioner{}.Plan(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguity: shard ids are non-decreasing in key order.
	prev := 0
	for k := int64(-60000); k <= 60000; k += 7 {
		s := asn.Shard(k)
		if s < prev {
			t.Fatalf("shard id decreased from %d to %d at key %d — ranges not contiguous", prev, s, k)
		}
		prev = s
	}
	// Balance: the dataset's own keys spread roughly evenly.
	counts := make([]int, asn.Shards())
	for _, k := range keys {
		counts[asn.Shard(k)]++
	}
	for s, c := range counts {
		if c < 100 || c > 500 {
			t.Fatalf("range shard %d holds %d of 1000 keys: %v", s, c, counts)
		}
	}
	// OwnerOfRange: single-bucket ranges route, spanning ranges do not.
	ro := asn.(RangeOwner)
	if got := ro.OwnerOfRange(-60000, 60000); got != -1 {
		t.Fatalf("full-span range owned by shard %d, want -1", got)
	}
	for _, k := range keys[:50] {
		if got := ro.OwnerOfRange(k, k); got != asn.Shard(k) {
			t.Fatalf("point range [%d,%d] owned by %d, want %d", k, k, got, asn.Shard(k))
		}
	}
}

func TestAssignmentEncodeDecodeRoundTrip(t *testing.T) {
	hashAsn, _ := HashPartitioner{}.Plan(nil, 7)
	rangeAsn, _ := RangePartitioner{}.Plan([]int64{-9, -2, 0, 3, 3, 14, 200}, 3)
	for _, asn := range []Assignment{hashAsn, rangeAsn} {
		got, err := DecodeAssignment(asn.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.Shards() != asn.Shards() {
			t.Fatalf("decoded %d shards, want %d", got.Shards(), asn.Shards())
		}
		for k := int64(-300); k < 300; k++ {
			if got.Shard(k) != asn.Shard(k) {
				t.Fatalf("decoded assignment diverges at key %d", k)
			}
		}
	}
}

func TestDecodeAssignmentRejectsHostileInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'x'},
		{hashAssignmentTag},
		{hashAssignmentTag, 0},          // n = 0
		{rangeAssignmentTag},            // no count
		{rangeAssignmentTag, 0xff},      // truncated varint count
		{rangeAssignmentTag, 200, 1, 2}, // count exceeds buffer
		{rangeAssignmentTag, 2, 4, 2},   // bounds out of order
		{hashAssignmentTag, 3, 9},       // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeAssignment(b); err == nil {
			t.Errorf("case %d (%v): hostile assignment decoded without error", i, b)
		}
	}
}

func TestPartitionerByName(t *testing.T) {
	for name, want := range map[string]string{"": "hash", "hash": "hash", "range": "range"} {
		p, err := PartitionerByName(name)
		if err != nil || p.Name() != want {
			t.Fatalf("PartitionerByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PartitionerByName("zodiac"); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}
