package shard

// Sharded reachability. The vertex set is partitioned by the assignment;
// each shard preprocesses the induced subgraph on its vertices (relabelled
// 0..n_i-1), so per-shard closure matrices cost (n/k)² bits instead of n²
// — the artifact genuinely scales out. Correctness across shards comes
// from the portal overlay built at preprocessing time:
//
//   - portals are the endpoints of cross-shard edges;
//   - the overlay graph has one node per portal, an edge for every cross
//     edge, and an edge p→q for every same-shard portal pair with p
//     reaching q inside its shard;
//   - the overlay's transitive closure is stored in the summary.
//
// Any path u ⇝ v decomposes into within-shard segments joined at cross
// edges, so
//
//	reach(u, v)  ⇔  same-shard reach(u, v)
//	              ∨ ∃ portals p, q: reach_local(u, p) ∧ overlay(p, q) ∧ reach_local(q, v).
//
// Merge therefore ORs the same-shard verdict with the portal check, using
// O(|portals|) local probes (each an O(1) closure read on its shard) plus
// bitset lookups in the overlay closure — comfortably inside the NC
// answering budget as long as the cross-edge cut stays small, which is the
// same locality assumption every graph partitioner lives on.

import (
	"encoding/binary"
	"fmt"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
)

// reachSummary is the decoded cross-shard state for sharded reachability.
// Besides the overlay closure the answer path needs, it carries the
// cross-shard edge list and the graph's orientation — the inputs delta
// maintenance needs to rebuild the overlay when an edge insert changes
// portal-to-portal connectivity.
type reachSummary struct {
	n           int      // global vertex count
	directed    bool     // orientation of the sharded graph
	local       []uint32 // local[v] = v's id inside its shard
	cross       [][2]int // cross-shard edges, global ids
	portals     []int    // ascending global ids of cross-edge endpoints
	portalShard []int    // portalShard[i] = shard owning portals[i]
	portal      map[int]int
	// byShard groups portal global ids per shard, precomputed at decode
	// time so Merge touches only the two relevant shards' portals instead
	// of scanning (and re-hashing) every portal per query.
	byShard map[int][]int
	closure []byte // reflexive overlay closure bitset, row-major over portals
}

// portalsFor returns the portals owned by shard s (nil when none).
func (rs *reachSummary) portalsFor(s int) []int { return rs.byShard[s] }

// index rebuilds the derived lookup structures from portals+portalShard.
func (rs *reachSummary) index() {
	rs.portal = make(map[int]int, len(rs.portals))
	rs.byShard = make(map[int][]int)
	for i, p := range rs.portals {
		rs.portal[p] = i
		s := rs.portalShard[i]
		rs.byShard[s] = append(rs.byShard[s], p)
	}
}

func (rs *reachSummary) overlayReach(pi, qi int) bool {
	bit := pi*len(rs.portals) + qi
	return rs.closure[bit/8]&(1<<(bit%8)) != 0
}

func encodeReachSummary(rs *reachSummary) []byte {
	b := binary.AppendUvarint(nil, uint64(rs.n))
	for _, l := range rs.local {
		b = binary.AppendUvarint(b, uint64(l))
	}
	if rs.directed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(rs.cross)))
	for _, e := range rs.cross {
		b = binary.AppendUvarint(b, uint64(e[0]))
		b = binary.AppendUvarint(b, uint64(e[1]))
	}
	b = binary.AppendUvarint(b, uint64(len(rs.portals)))
	for _, p := range rs.portals {
		b = binary.AppendUvarint(b, uint64(p))
	}
	for _, s := range rs.portalShard {
		b = binary.AppendUvarint(b, uint64(s))
	}
	return append(b, rs.closure...)
}

func decodeReachSummary(b []byte) (*reachSummary, error) {
	off := 0
	next := func() (uint64, error) {
		v, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return 0, fmt.Errorf("shard: corrupt reachability summary at offset %d", off)
		}
		off += k
		return v, nil
	}
	n64, err := next()
	if err != nil {
		return nil, err
	}
	if n64 > graph.MaxDecodeVertices {
		return nil, fmt.Errorf("shard: reachability summary claims %d vertices", n64)
	}
	rs := &reachSummary{n: int(n64), local: make([]uint32, n64)}
	for v := range rs.local {
		l, err := next()
		if err != nil {
			return nil, err
		}
		rs.local[v] = uint32(l)
	}
	if off >= len(b) {
		return nil, fmt.Errorf("shard: reachability summary truncated before orientation flag")
	}
	rs.directed = b[off] == 1
	off++
	c64, err := next()
	if err != nil {
		return nil, err
	}
	// Each cross edge takes at least two bytes; reject hostile counts
	// before allocating.
	if c64 > uint64(len(b)-off)/2 {
		return nil, fmt.Errorf("shard: reachability summary claims %d cross edges in %d bytes", c64, len(b)-off)
	}
	rs.cross = make([][2]int, c64)
	for i := range rs.cross {
		u, err := next()
		if err != nil {
			return nil, err
		}
		v, err := next()
		if err != nil {
			return nil, err
		}
		if u >= n64 || v >= n64 {
			return nil, fmt.Errorf("shard: cross edge (%d,%d) out of range [0,%d)", u, v, n64)
		}
		rs.cross[i] = [2]int{int(u), int(v)}
	}
	p64, err := next()
	if err != nil {
		return nil, err
	}
	if p64 > n64 {
		return nil, fmt.Errorf("shard: reachability summary claims %d portals over %d vertices", p64, n64)
	}
	rs.portals = make([]int, p64)
	for i := range rs.portals {
		p, err := next()
		if err != nil {
			return nil, err
		}
		if p >= n64 {
			return nil, fmt.Errorf("shard: portal %d out of range [0,%d)", p, n64)
		}
		rs.portals[i] = int(p)
	}
	rs.portalShard = make([]int, p64)
	for i := range rs.portalShard {
		s, err := next()
		if err != nil {
			return nil, err
		}
		// Shard ids are small in practice; the bound only has to stop a
		// hostile manifest from claiming astronomical values.
		if s > n64 {
			return nil, fmt.Errorf("shard: portal shard id %d out of range", s)
		}
		rs.portalShard[i] = int(s)
	}
	rs.index()
	rs.closure = b[off:]
	if want := (len(rs.portals)*len(rs.portals) + 7) / 8; len(rs.closure) != want {
		return nil, fmt.Errorf("shard: overlay closure is %d bytes, want %d", len(rs.closure), want)
	}
	return rs, nil
}

// vertexShards computes shard membership and local relabelling for every
// vertex: local ids are ranks within the shard in ascending global order.
func vertexShards(n int, asn Assignment) (shardOf []int, local []uint32, counts []int) {
	shardOf = make([]int, n)
	local = make([]uint32, n)
	counts = make([]int, asn.Shards())
	for v := 0; v < n; v++ {
		s := asn.Shard(int64(v))
		shardOf[v] = s
		local[v] = uint32(counts[s])
		counts[s]++
	}
	return shardOf, local, counts
}

// inducedSubgraphs builds each shard's induced subgraph under the local
// relabelling; edges crossing shards are dropped here and recovered by the
// portal overlay.
func inducedSubgraphs(g *graph.Graph, shardOf []int, local []uint32, counts []int) ([]*graph.Graph, error) {
	subs := make([]*graph.Graph, len(counts))
	for i, c := range counts {
		subs[i] = graph.New(c, g.Directed())
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if shardOf[u] != shardOf[v] {
			continue
		}
		if err := subs[shardOf[u]].AddEdge(int(local[u]), int(local[v])); err != nil {
			return nil, err
		}
	}
	for _, s := range subs {
		s.Normalize()
	}
	return subs, nil
}

// splitGraph cuts a graph dataset into per-shard induced subgraphs.
func splitGraph(data []byte, asn Assignment) ([][]byte, error) {
	g, err := graph.Decode(data)
	if err != nil {
		return nil, err
	}
	shardOf, local, counts := vertexShards(g.N(), asn)
	subs, err := inducedSubgraphs(g, shardOf, local, counts)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(subs))
	for i, s := range subs {
		out[i] = s.Encode()
	}
	return out, nil
}

// splitSummarizeGraph is the combined Build hook: one decode, one
// relabelling, one set of induced subgraphs feeding both the per-shard
// parts and the portal-overlay summary.
func splitSummarizeGraph(data []byte, asn Assignment) ([][]byte, []byte, error) {
	g, err := graph.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	shardOf, local, counts := vertexShards(g.N(), asn)
	subs, err := inducedSubgraphs(g, shardOf, local, counts)
	if err != nil {
		return nil, nil, err
	}
	parts := make([][]byte, len(subs))
	for i, s := range subs {
		parts[i] = s.Encode()
	}
	summary, err := buildReachSummary(g, shardOf, local, counts, subs)
	if err != nil {
		return nil, nil, err
	}
	return parts, summary, nil
}

// summarizeGraph builds the portal overlay closure (standalone form of
// the summary half of splitSummarizeGraph).
func summarizeGraph(data []byte, asn Assignment) ([]byte, error) {
	g, err := graph.Decode(data)
	if err != nil {
		return nil, err
	}
	shardOf, local, counts := vertexShards(g.N(), asn)
	subs, err := inducedSubgraphs(g, shardOf, local, counts)
	if err != nil {
		return nil, err
	}
	return buildReachSummary(g, shardOf, local, counts, subs)
}

// buildReachSummary computes the portal overlay closure from the decoded
// graph and its per-shard induced subgraphs.
func buildReachSummary(g *graph.Graph, shardOf []int, local []uint32, counts []int, subs []*graph.Graph) ([]byte, error) {
	n := g.N()

	// Portals: endpoints of cross-shard edges, ascending. The cross-edge
	// list itself is retained in the summary — delta maintenance rebuilds
	// the overlay from it when an insert changes portal connectivity.
	isPortal := make([]bool, n)
	var cross [][2]int
	for _, e := range g.Edges() {
		if shardOf[e[0]] != shardOf[e[1]] {
			isPortal[e[0]] = true
			isPortal[e[1]] = true
			cross = append(cross, e)
		}
	}
	var portals []int
	portalIdx := make(map[int]int)
	for v := 0; v < n; v++ {
		if isPortal[v] {
			portalIdx[v] = len(portals)
			portals = append(portals, v)
		}
	}

	// Overlay: cross edges, plus within-shard reachability between portals.
	overlay := graph.New(len(portals), true)
	for _, e := range cross {
		overlay.MustAddEdge(portalIdx[e[0]], portalIdx[e[1]])
		if !g.Directed() {
			overlay.MustAddEdge(portalIdx[e[1]], portalIdx[e[0]])
		}
	}
	portalsByShard := make([][]int, len(counts))
	for _, p := range portals {
		portalsByShard[shardOf[p]] = append(portalsByShard[shardOf[p]], p)
	}
	for s, ps := range portalsByShard {
		for _, p := range ps {
			_, dist := subs[s].BFS(int(local[p]))
			for _, q := range ps {
				if p != q && dist[local[q]] >= 0 {
					overlay.MustAddEdge(portalIdx[p], portalIdx[q])
				}
			}
		}
	}

	// The overlay closure (reflexive, like the per-shard closures).
	c := graph.NewClosure(overlay)
	bits := make([]byte, (len(portals)*len(portals)+7)/8)
	for i := range portals {
		for j := range portals {
			if c.Reach(i, j) {
				bit := i*len(portals) + j
				bits[bit/8] |= 1 << (bit % 8)
			}
		}
	}
	portalShard := make([]int, len(portals))
	for i, p := range portals {
		portalShard[i] = shardOf[p]
	}
	return encodeReachSummary(&reachSummary{
		n: n, directed: g.Directed(), local: local, cross: cross,
		portals: portals, portalShard: portalShard, closure: bits,
	}), nil
}

// recomputePortals rederives the portal set (ascending global ids), the
// per-portal shard assignment, and the lookup indexes from the cross-edge
// list — the canonical source after an insert may have created new portals.
func (rs *reachSummary) recomputePortals(asn Assignment) {
	isPortal := make(map[int]bool)
	for _, e := range rs.cross {
		isPortal[e[0]] = true
		isPortal[e[1]] = true
	}
	rs.portals = rs.portals[:0]
	for v := 0; v < rs.n; v++ {
		if isPortal[v] {
			rs.portals = append(rs.portals, v)
		}
	}
	rs.portalShard = make([]int, len(rs.portals))
	for i, p := range rs.portals {
		rs.portalShard[i] = asn.Shard(int64(p))
	}
	rs.index()
}

// rebuildClosure recomputes the overlay transitive closure from the
// cross-edge list plus within-shard portal reachability, probed against
// the (already maintained) per-shard stores: O(Σ_s |portals_s|²) probes,
// each an O(1) closure read, then one closure computation on the
// |portals|-node overlay — far below re-preprocessing the dataset.
func (rs *reachSummary) rebuildClosure(probe Probe) error {
	overlay := graph.New(len(rs.portals), true)
	for _, e := range rs.cross {
		overlay.MustAddEdge(rs.portal[e[0]], rs.portal[e[1]])
		if !rs.directed {
			overlay.MustAddEdge(rs.portal[e[1]], rs.portal[e[0]])
		}
	}
	for s, ps := range rs.byShard {
		for _, p := range ps {
			for _, q := range ps {
				if p == q {
					continue
				}
				ok, err := probe(s, schemes.NodePairQuery(int(rs.local[p]), int(rs.local[q])))
				if err != nil {
					return err
				}
				if ok {
					overlay.MustAddEdge(rs.portal[p], rs.portal[q])
				}
			}
		}
	}
	c := graph.NewClosure(overlay)
	bits := make([]byte, (len(rs.portals)*len(rs.portals)+7)/8)
	for i := range rs.portals {
		for j := range rs.portals {
			if c.Reach(i, j) {
				bit := i*len(rs.portals) + j
				bits[bit/8] |= 1 << (bit % 8)
			}
		}
	}
	rs.closure = bits
	return nil
}

// hasCross reports whether the cross-edge list already holds (u,v) (either
// orientation for undirected graphs).
func (rs *reachSummary) hasCross(u, v int) bool {
	for _, e := range rs.cross {
		if (e[0] == u && e[1] == v) || (!rs.directed && e[0] == v && e[1] == u) {
			return true
		}
	}
	return false
}

// removeCross drops the first copy of (u,v) (either orientation for
// undirected graphs) from the cross-edge list, reporting whether it was
// present.
func (rs *reachSummary) removeCross(u, v int) bool {
	for i, e := range rs.cross {
		if (e[0] == u && e[1] == v) || (!rs.directed && e[0] == v && e[1] == u) {
			rs.cross = append(rs.cross[:i], rs.cross[i+1:]...)
			return true
		}
	}
	return false
}

// decodeEdgeDelta parses and validates one edge-insert delta against the
// summary's vertex universe.
func decodeEdgeDelta(delta []byte, rs *reachSummary) (u, v int, err error) {
	u, v, err = schemes.DecodeNodePairQuery(delta)
	if err != nil {
		return 0, 0, err
	}
	if u < 0 || u >= rs.n || v < 0 || v >= rs.n || u == v {
		return 0, 0, fmt.Errorf("shard: bad edge delta (%d,%d) over %d vertices", u, v, rs.n)
	}
	return u, v, nil
}

// splitReachDelta routes an edge delta: a same-shard edge becomes a local
// relabelled delta of the same kind on its owning shard; a cross-shard
// edge touches no shard — induced subgraphs exclude cross edges — and
// lands entirely on the summary. Inserts on undirected graphs keep the
// historical two-orientation encoding (the second is an idempotent no-op
// now that the scheme's AddEdge stores both arcs); deletes send exactly
// one local delta, because the scheme's RemoveEdge drops both arcs and a
// second delete would error as edge-not-present.
func splitReachDelta(delta []byte, asn Assignment, summary interface{}) (map[int][][]byte, error) {
	rs := summary.(*reachSummary)
	kind, payload, err := core.DeltaParts(delta)
	if err != nil {
		return nil, err
	}
	u, v, err := decodeEdgeDelta(payload, rs)
	if err != nil {
		return nil, err
	}
	su, sv := asn.Shard(int64(u)), asn.Shard(int64(v))
	if su != sv {
		return nil, nil
	}
	local := schemes.NodePairQuery(int(rs.local[u]), int(rs.local[v]))
	lds := [][]byte{core.TagDelta(kind, local)}
	if !rs.directed && kind != core.DeltaDelete {
		lds = append(lds, core.TagDelta(kind, schemes.NodePairQuery(int(rs.local[v]), int(rs.local[u]))))
	}
	return map[int][][]byte{su: lds}, nil
}

// updateReachSummary maintains the portal overlay's structure after one
// edge delta: a cross-shard insert extends the cross-edge list (possibly
// promoting its endpoints to portals, with the closure bitset zero-padded
// to the new portal count); a cross-shard delete drops the edge from the
// list — erroring when it was never there, matching the unsharded scheme's
// strict edge-delete contract — and demotes portals that lost their last
// cross edge. The overlay closure itself is stale until finishReachSummary
// rebuilds it — once per batch, not per delta — which is safe because
// nothing inside the batch reads it: splitReachDelta only needs the vertex
// universe and local relabelling, and queries keep serving the committed
// (pre-batch) summary until the batch commits.
func updateReachSummary(delta []byte, asn Assignment, summary []byte, probe Probe) ([]byte, error) {
	kind, payload, err := core.DeltaParts(delta)
	if err != nil {
		return nil, err
	}
	// A same-shard edge changes no summary structure (SplitDelta already
	// validated the endpoints), so it skips the summary decode/encode
	// round-trip entirely; only genuine cross edges pay it.
	u, v, err := schemes.DecodeNodePairQuery(payload)
	if err != nil {
		return nil, err
	}
	if asn.Shard(int64(u)) == asn.Shard(int64(v)) {
		return summary, nil
	}
	rs, err := decodeReachSummary(summary)
	if err != nil {
		return nil, err
	}
	if _, _, err := decodeEdgeDelta(payload, rs); err != nil {
		return nil, err
	}
	switch kind {
	case core.DeltaDelete:
		if !rs.removeCross(u, v) {
			return nil, fmt.Errorf("shard: cross edge (%d,%d) not present", u, v)
		}
		rs.recomputePortals(asn)
		rs.closure = make([]byte, (len(rs.portals)*len(rs.portals)+7)/8)
	default: // insert and upsert: idempotent when the edge is present
		if !rs.hasCross(u, v) {
			rs.cross = append(rs.cross, [2]int{u, v})
			rs.recomputePortals(asn)
			rs.closure = make([]byte, (len(rs.portals)*len(rs.portals)+7)/8)
		}
	}
	return encodeReachSummary(rs), nil
}

// finishReachSummary rebuilds the overlay closure from the (batch-final)
// cross-edge list and the maintained per-shard closures — a same-shard
// insert can connect two portals locally, which changes cross-shard
// answers too, so the rebuild runs even when no cross edge was added.
func finishReachSummary(asn Assignment, summary []byte, probe Probe) ([]byte, error) {
	rs, err := decodeReachSummary(summary)
	if err != nil {
		return nil, err
	}
	if err := rs.rebuildClosure(probe); err != nil {
		return nil, err
	}
	return encodeReachSummary(rs), nil
}

// reachabilitySharding wires the graph split, the portal overlay, the
// per-shard query rewrite, and the cross-shard merge. It serves both the
// closure-matrix scheme and the BFS-per-query baseline: the merge only
// needs local reach probes, which either scheme answers.
//
// withDeltas enables sharded edge-insert maintenance. It is on for the
// closure-matrix scheme, whose per-shard maintenance (§4(7) ancestor-row
// OR-ing) and overlay rebuild (O(1) closure probes) both stay far below a
// re-preprocess. The BFS baseline keeps it off: its "preprocessed" shard
// artifact is the raw subgraph, so every overlay rebuild probe is a full
// O(|V|+|E|) BFS and maintenance would cost more than re-registering —
// the bounded-incrementality contract the delta path exists for does not
// hold, and PATCH refuses with a clean conflict instead.
func reachabilitySharding(withDeltas bool) *Sharding {
	sh := &Sharding{
		Keys: func(data []byte) ([]int64, error) {
			g, err := graph.Decode(data)
			if err != nil {
				return nil, err
			}
			keys := make([]int64, g.N())
			for v := range keys {
				keys[v] = int64(v)
			}
			return keys, nil
		},
		Split:          splitGraph,
		Summarize:      summarizeGraph,
		SplitSummarize: splitSummarizeGraph,
		Prepare: func(summary []byte) (interface{}, error) {
			return decodeReachSummary(summary)
		},
		Route: func(q []byte, asn Assignment) (int, error) {
			// Validate the query shape here (malformed queries must error
			// exactly as they do unsharded), then always fan out: even a
			// same-shard pair may be connected through other shards.
			if _, _, err := schemes.DecodeNodePairQuery(q); err != nil {
				return 0, err
			}
			return -1, nil
		},
		Fanout: func(q []byte, shardIdx int, asn Assignment, summary interface{}) ([]byte, bool, error) {
			u, v, err := schemes.DecodeNodePairQuery(q)
			if err != nil {
				return nil, false, err
			}
			rs := summary.(*reachSummary)
			if u < 0 || u >= rs.n || v < 0 || v >= rs.n {
				return nil, false, fmt.Errorf("shard: node pair (%d,%d) out of range [0,%d)", u, v, rs.n)
			}
			if asn.Shard(int64(u)) != shardIdx || asn.Shard(int64(v)) != shardIdx {
				return nil, false, nil // this shard holds at most one endpoint
			}
			return schemes.NodePairQuery(int(rs.local[u]), int(rs.local[v])), true, nil
		},
		Merge: func(q []byte, verdicts []bool, asn Assignment, summary interface{}, probe Probe) (bool, error) {
			u, v, err := schemes.DecodeNodePairQuery(q)
			if err != nil {
				return false, err
			}
			rs := summary.(*reachSummary)
			if u < 0 || u >= rs.n || v < 0 || v >= rs.n {
				return false, fmt.Errorf("shard: node pair (%d,%d) out of range [0,%d)", u, v, rs.n)
			}
			su, sv := asn.Shard(int64(u)), asn.Shard(int64(v))
			if su == sv && verdicts[su] {
				return true, nil
			}
			// A = portals u reaches inside its shard; B = portals reaching v
			// inside its shard; connected iff the overlay closure joins them.
			// The per-shard portal lists are precomputed at summary decode.
			var from, to []int // overlay indices
			for _, p := range rs.portalsFor(su) {
				ok, err := probe(su, schemes.NodePairQuery(int(rs.local[u]), int(rs.local[p])))
				if err != nil {
					return false, err
				}
				if ok {
					from = append(from, rs.portal[p])
				}
			}
			if len(from) == 0 {
				return false, nil
			}
			for _, p := range rs.portalsFor(sv) {
				ok, err := probe(sv, schemes.NodePairQuery(int(rs.local[p]), int(rs.local[v])))
				if err != nil {
					return false, err
				}
				if ok {
					to = append(to, rs.portal[p])
				}
			}
			for _, pi := range from {
				for _, qi := range to {
					if rs.overlayReach(pi, qi) {
						return true, nil
					}
				}
			}
			return false, nil
		},
	}
	if withDeltas {
		sh.SplitDelta = splitReachDelta
		sh.UpdateSummary = updateReachSummary
		sh.FinishSummary = finishReachSummary
	}
	return sh
}
