package shard

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		SchemeName:  "reachability/closure-matrix",
		DataSum:     store.SumData([]byte("raw")),
		Partitioner: "range",
		Assignment:  []byte{rangeAssignmentTag, 2, 2, 4},
		Summary:     []byte("overlay"),
		ShardSums:   make([][32]byte, 3),
	}
	for i := range m.ShardSums {
		m.ShardSums[i] = store.SumData([]byte{byte(i)})
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemeName != m.SchemeName || got.Partitioner != m.Partitioner ||
		got.DataSum != m.DataSum || !bytes.Equal(got.Assignment, m.Assignment) ||
		!bytes.Equal(got.Summary, m.Summary) || len(got.ShardSums) != 3 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.ShardSums {
		if got.ShardSums[i] != m.ShardSums[i] {
			t.Fatalf("shard sum %d mismatch", i)
		}
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	m := &Manifest{SchemeName: "s", Partitioner: "hash", Assignment: []byte{hashAssignmentTag, 2}}
	enc := EncodeManifest(m)
	cases := map[string][]byte{
		"empty":          {},
		"short":          enc[:5],
		"bad-magic":      append([]byte("XITRACTM\x02"), enc[9:]...),
		"bad-version":    append([]byte("PITRACTM\x03"), enc[9:]...),
		"old-version":    append([]byte("PITRACTM\x01"), enc[9:]...),
		"flipped-byte":   append(append([]byte{}, enc[:len(enc)-1]...), enc[len(enc)-1]^0xff),
		"truncated-tail": enc[:len(enc)-2],
	}
	for name, b := range cases {
		if _, err := DecodeManifest(b); err == nil {
			t.Errorf("%s: corrupt manifest decoded without error", name)
		}
	}
}

// shardedFixture registers a persisted sharded reachability dataset and
// returns the registry dir, the graph, and the scheme.
func shardedFixture(t *testing.T) (string, *graph.Graph, *core.Scheme) {
	t.Helper()
	dir := t.TempDir()
	g := graph.CommunityGraph(3, 8, 12, 5)
	scheme := schemes.ReachabilityScheme()
	reg := store.NewRegistry(dir)
	if _, err := RegisterSharded(reg, "g", scheme, RangePartitioner{}, 3, g.Encode()); err != nil {
		t.Fatal(err)
	}
	return dir, g, scheme
}

// TestShardedPersistenceReload restarts the registry over the same
// directory: every shard reloads from its snapshot (zero new Preprocess
// calls) and answers identically.
func TestShardedPersistenceReload(t *testing.T) {
	dir, g, _ := shardedFixture(t)

	var calls atomic.Int64
	counted := *schemes.ReachabilityScheme()
	inner := counted.Preprocess
	counted.Preprocess = func(d []byte) ([]byte, error) {
		calls.Add(1)
		return inner(d)
	}
	reg2 := store.NewRegistry(dir)
	ss, err := RegisterSharded(reg2, "g", &counted, RangePartitioner{}, 3, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("restart preprocessed %d shards, want 0 (snapshot reload)", calls.Load())
	}
	if !ss.WasLoaded() || reg2.LoadCount() != 3 {
		t.Fatalf("restart did not reload: loaded=%v loads=%d", ss.WasLoaded(), reg2.LoadCount())
	}
	for u := 0; u < g.N(); u += 5 {
		for v := 0; v < g.N(); v += 7 {
			got, err := ss.Answer(schemes.NodePairQuery(u, v))
			if err != nil {
				t.Fatal(err)
			}
			if want := g.Reachable(u, v); got != want {
				t.Fatalf("reloaded shard store: reach(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}

	// A different partitioner must not silently serve the old layout.
	var calls2 atomic.Int64
	counted2 := *schemes.ReachabilityScheme()
	inner2 := counted2.Preprocess
	counted2.Preprocess = func(d []byte) ([]byte, error) {
		calls2.Add(1)
		return inner2(d)
	}
	reg3 := store.NewRegistry(dir)
	ss3, err := RegisterSharded(reg3, "g", &counted2, HashPartitioner{}, 3, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if ss3.WasLoaded() || calls2.Load() != 3 {
		t.Fatalf("partitioner change: loaded=%v calls=%d, want a fresh 3-shard build", ss3.WasLoaded(), calls2.Load())
	}
}

// TestShardedRegistrationAtomicity: a registration that dies mid-build —
// error or panic on one shard's Preprocess — must leave no catalog entry,
// no manifest, and a retryable id. Stray shard snapshot files without a
// manifest must not resurrect as a dataset.
func TestShardedRegistrationAtomicity(t *testing.T) {
	dir := t.TempDir()
	g := graph.CommunityGraph(3, 8, 12, 5)
	reg := store.NewRegistry(dir)

	// Preprocess fails on every part after the first: some shards succeed,
	// the build as a whole must not.
	var n atomic.Int64
	failing := *schemes.ReachabilityScheme()
	inner := failing.Preprocess
	failing.Preprocess = func(d []byte) ([]byte, error) {
		if n.Add(1) > 1 {
			return nil, fmt.Errorf("disk on fire")
		}
		return inner(d)
	}
	if _, err := RegisterSharded(reg, "g", &failing, RangePartitioner{}, 3, g.Encode()); err == nil {
		t.Fatal("partially failing build must error")
	}
	if _, ok := reg.GetDataset("g"); ok {
		t.Fatal("failed sharded registration left a catalog entry")
	}
	if _, err := os.Stat(ManifestPath(dir, "g")); !os.IsNotExist(err) {
		t.Fatalf("failed registration left a manifest (err=%v)", err)
	}

	// Panicking Preprocess: same story, and the id must stay retryable.
	panicking := *schemes.ReachabilityScheme()
	panicking.Preprocess = func(d []byte) ([]byte, error) { panic("hostile") }
	if _, err := RegisterSharded(reg, "g", &panicking, RangePartitioner{}, 3, g.Encode()); err == nil {
		t.Fatal("panicking build must surface an error")
	}
	if _, ok := reg.GetDataset("g"); ok {
		t.Fatal("panicked sharded registration left a catalog entry")
	}

	// Simulate a crash after shard files but before the manifest: stray
	// snapshot files must be invisible (no manifest = no dataset) and the
	// next registration rebuilds cleanly over them.
	stray := store.EncodeSnapshot(&store.Snapshot{SchemeName: "reachability/closure-matrix"})
	if err := store.WriteFileAtomic(ShardSnapshotPath(dir, "g", 0), stray); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(dir, "g", schemes.ReachabilityScheme()); err == nil {
		t.Fatal("LoadSharded without a manifest must fail")
	}
	ss, err := RegisterSharded(reg, "g", schemes.ReachabilityScheme(), RangePartitioner{}, 3, g.Encode())
	if err != nil {
		t.Fatalf("retry after failures: %v", err)
	}
	if ss.WasLoaded() {
		t.Fatal("retry must rebuild, not trust stray shard files")
	}

	// Concurrent registrations of one id share a single build.
	reg2 := store.NewRegistry("")
	var builds atomic.Int64
	counting := *schemes.ReachabilityScheme()
	inner2 := counting.Preprocess
	counting.Preprocess = func(d []byte) ([]byte, error) {
		builds.Add(1)
		return inner2(d)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	stores := make([]*ShardedStore, goroutines)
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			stores[i], errs[i] = RegisterSharded(reg2, "g", &counting, HashPartitioner{}, 2, g.Encode())
		}(i)
	}
	wg.Wait()
	for i := range stores {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if stores[i] != stores[0] {
			t.Fatalf("goroutine %d received a different sharded store", i)
		}
	}
	if builds.Load() != 2 {
		t.Fatalf("Preprocess ran %d times, want 2 (one per shard, once per id)", builds.Load())
	}
}

// TestShardedAndPlainSnapshotNamespacesDisjoint: a plain dataset whose id
// matches a sharded dataset's shard-file stem ("g.shard000") must not
// clobber — or be clobbered by — the sharded dataset's snapshot files;
// both must reload across a restart.
func TestShardedAndPlainSnapshotNamespacesDisjoint(t *testing.T) {
	dir, g, scheme := shardedFixture(t) // sharded "g", 3 range shards
	reg := store.NewRegistry(dir)
	plainData := graph.CommunityGraph(2, 6, 4, 8).Encode()
	if _, err := reg.Register("g.shard000", scheme, plainData); err != nil {
		t.Fatal(err)
	}

	reg2 := store.NewRegistry(dir)
	ss, err := RegisterSharded(reg2, "g", scheme, RangePartitioner{}, 3, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !ss.WasLoaded() {
		t.Fatal("sharded dataset failed to reload — a plain id clobbered a shard snapshot")
	}
	st, err := reg2.Register("g.shard000", scheme, plainData)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Loaded {
		t.Fatal("plain dataset failed to reload — a shard file clobbered its snapshot")
	}
}

// TestShardedCorruptSnapshotFailsOpen: a manifest whose shard snapshot is
// missing, truncated, or bit-flipped must fail LoadSharded with a clean
// error — and a persistent registry must quietly rebuild instead of
// serving the damaged artifact.
func TestShardedCorruptSnapshotFailsOpen(t *testing.T) {
	for _, tamper := range []struct {
		name string
		do   func(t *testing.T, path string)
	}{
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tamper.name, func(t *testing.T) {
			dir, g, scheme := shardedFixture(t)
			tamper.do(t, ShardSnapshotPath(dir, "g", 1))

			_, err := LoadSharded(dir, "g", scheme)
			if err == nil {
				t.Fatal("LoadSharded must fail on a damaged shard snapshot")
			}
			if !strings.Contains(err.Error(), "shard") {
				t.Fatalf("unhelpful error: %v", err)
			}

			// The registry treats an unloadable layout as absent and
			// rebuilds from data.
			reg := store.NewRegistry(dir)
			ss, err := RegisterSharded(reg, "g", scheme, RangePartitioner{}, 3, g.Encode())
			if err != nil {
				t.Fatalf("rebuild over damaged snapshots: %v", err)
			}
			if ss.WasLoaded() {
				t.Fatal("registry served a damaged snapshot as loaded")
			}
			got, err := ss.Answer(schemes.NodePairQuery(0, g.N()-1))
			if err != nil {
				t.Fatal(err)
			}
			if want := g.Reachable(0, g.N()-1); got != want {
				t.Fatalf("rebuilt store answers %v, want %v", got, want)
			}
		})
	}

	// A corrupt manifest is equally fatal for LoadSharded.
	dir, _, scheme := shardedFixture(t)
	mb, err := os.ReadFile(ManifestPath(dir, "g"))
	if err != nil {
		t.Fatal(err)
	}
	mb[len(mb)-1] ^= 0xff
	if err := os.WriteFile(ManifestPath(dir, "g"), mb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(dir, "g", scheme); err == nil {
		t.Fatal("LoadSharded must fail on a corrupt manifest")
	}
}
