package shard

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Assignment is a frozen mapping from element keys to shards. It is
// produced once at partitioning time by a Partitioner, used by Split to cut
// the dataset, by Route to find a query's owning shard, and persisted in
// the shard manifest (Encode/DecodeAssignment) so a restarted process
// routes exactly as the one that preprocessed.
type Assignment interface {
	// Shards reports the shard count n.
	Shards() int
	// Shard maps a key to its owning shard in [0, n).
	Shard(key int64) int
	// Encode renders the assignment for the manifest; DecodeAssignment
	// reverses it.
	Encode() []byte
}

// RangeOwner is an optional Assignment refinement: assignments that place
// contiguous key ranges on single shards (range partitioning) can route a
// [lo, hi] query to one shard instead of fanning out.
type RangeOwner interface {
	// OwnerOfRange returns the shard owning every key in [lo, hi], or -1
	// when the range spans shards.
	OwnerOfRange(lo, hi int64) int
}

// Partitioner plans how a dataset's element keys spread over n shards.
// Partitioners are scheme-agnostic: the per-scheme Sharding descriptor
// extracts keys (Keys) and re-encodes parts (Split); the partitioner only
// decides ownership.
type Partitioner interface {
	// Name identifies the partitioner in manifests and the HTTP API
	// ("hash", "range").
	Name() string
	// Plan inspects the dataset's element keys once and freezes an
	// assignment of keys to n shards.
	Plan(keys []int64, n int) (Assignment, error)
}

// assignment encoding tags.
const (
	hashAssignmentTag  = 'h'
	rangeAssignmentTag = 'r'
)

// --- hash partitioning --------------------------------------------------------

// HashPartitioner spreads keys by a 64-bit FNV-1a hash modulo n: balanced
// for any key distribution, but range queries cannot be routed and always
// fan out.
type HashPartitioner struct{}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// Plan implements Partitioner; the assignment depends only on n, never on
// the keys, so re-planning after a restart is trivially consistent.
func (HashPartitioner) Plan(keys []int64, n int) (Assignment, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: hash partitioner: shard count %d < 1", n)
	}
	return hashAssignment{n: n}, nil
}

type hashAssignment struct{ n int }

func (a hashAssignment) Shards() int { return a.n }

// fnv1a64 hashes the 8 big-endian bytes of key with FNV-1a, inline: Shard
// sits on the per-query route path (and runs once per portal in fan-out
// merges), so it must not allocate a hash.Hash64 per call.
func fnv1a64(key int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= uint64(key) >> shift & 0xff
		h *= prime64
	}
	return h
}

func (a hashAssignment) Shard(key int64) int {
	return int(fnv1a64(key) % uint64(a.n))
}

func (a hashAssignment) Encode() []byte {
	b := []byte{hashAssignmentTag}
	return binary.AppendUvarint(b, uint64(a.n))
}

// --- range partitioning -------------------------------------------------------

// RangePartitioner cuts the sorted key space at n-1 quantile boundaries:
// each shard owns a contiguous key range of roughly equal population, so
// range queries inside one bucket route to a single shard. Skewed or
// duplicate-heavy key sets degrade gracefully (some shards may be empty).
type RangePartitioner struct{}

// Name implements Partitioner.
func (RangePartitioner) Name() string { return "range" }

// Plan implements Partitioner: sort a copy of the keys and take the n-1
// equidistant order statistics as inclusive upper bounds.
func (RangePartitioner) Plan(keys []int64, n int) (Assignment, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: range partitioner: shard count %d < 1", n)
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		var b int64
		if len(sorted) == 0 {
			b = 0
		} else {
			idx := i*len(sorted)/n - 1
			if idx < 0 {
				idx = 0
			}
			b = sorted[idx]
		}
		bounds = append(bounds, b)
	}
	return rangeAssignment{bounds: bounds}, nil
}

// rangeAssignment owns keys ≤ bounds[0] on shard 0, keys in
// (bounds[i-1], bounds[i]] on shard i, and keys > bounds[n-2] on shard n-1.
type rangeAssignment struct{ bounds []int64 }

func (a rangeAssignment) Shards() int { return len(a.bounds) + 1 }

func (a rangeAssignment) Shard(key int64) int {
	return sort.Search(len(a.bounds), func(i int) bool { return key <= a.bounds[i] })
}

// OwnerOfRange implements RangeOwner: buckets are contiguous, so lo and hi
// landing on the same shard means every key between them does too.
func (a rangeAssignment) OwnerOfRange(lo, hi int64) int {
	if s := a.Shard(lo); s == a.Shard(hi) {
		return s
	}
	return -1
}

func (a rangeAssignment) Encode() []byte {
	b := []byte{rangeAssignmentTag}
	b = binary.AppendUvarint(b, uint64(len(a.bounds)))
	for _, v := range a.bounds {
		b = binary.AppendVarint(b, v)
	}
	return b
}

// DecodeAssignment parses an Assignment persisted by Encode. Hostile or
// truncated input is an error, never a panic.
func DecodeAssignment(b []byte) (Assignment, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("shard: empty assignment encoding")
	}
	switch b[0] {
	case hashAssignmentTag:
		n, k := binary.Uvarint(b[1:])
		if k <= 0 || 1+k != len(b) || n < 1 {
			return nil, fmt.Errorf("shard: corrupt hash assignment")
		}
		return hashAssignment{n: int(n)}, nil
	case rangeAssignmentTag:
		off := 1
		cnt, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return nil, fmt.Errorf("shard: corrupt range assignment header")
		}
		off += k
		// Each bound takes at least one byte; reject hostile counts before
		// allocating.
		if cnt > uint64(len(b)-off) {
			return nil, fmt.Errorf("shard: range assignment claims %d bounds in %d bytes", cnt, len(b)-off)
		}
		bounds := make([]int64, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			v, k := binary.Varint(b[off:])
			if k <= 0 {
				return nil, fmt.Errorf("shard: corrupt range assignment bound %d", i)
			}
			off += k
			bounds = append(bounds, v)
		}
		if off != len(b) {
			return nil, fmt.Errorf("shard: %d trailing assignment bytes", len(b)-off)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				return nil, fmt.Errorf("shard: range assignment bounds out of order")
			}
		}
		return rangeAssignment{bounds: bounds}, nil
	default:
		return nil, fmt.Errorf("shard: unknown assignment tag %q", b[0])
	}
}

// PartitionerByName resolves the partitioner names accepted by the HTTP
// API and the CLI.
func PartitionerByName(name string) (Partitioner, error) {
	switch name {
	case "", "hash":
		return HashPartitioner{}, nil
	case "range":
		return RangePartitioner{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %q (have hash, range)", name)
	}
}
