package shard

// Per-scheme Sharding descriptors for the key-partitioned case studies:
// point/range selection over relations and list membership. All three cut
// the dataset by element key, so a point query routes straight to the
// shard owning its key, and a range query routes when the assignment keeps
// contiguous ranges together (range partitioning) or fans out with an OR
// merge otherwise.

import (
	"fmt"

	"pitract/internal/core"
	"pitract/internal/relation"
	"pitract/internal/schemes"
)

// ForScheme returns the Sharding descriptor for a scheme name, or nil when
// the scheme has no sharded form (e.g. BDS visit orders and CVP gate
// tables are global artifacts with no meaningful data partition).
func ForScheme(name string) *Sharding {
	switch name {
	case "point-selection/sorted-keys", "point-selection/scan":
		return pointSelectionSharding()
	case "range-selection/sorted-keys":
		return rangeSelectionSharding()
	case "list-membership/sorted":
		return listMembershipSharding()
	case "reachability/closure-matrix":
		return reachabilitySharding(true)
	case "reachability/labels":
		// The sharded form is scheme-agnostic (it only needs local reach
		// probes), so the labels scheme shards and routes deltas exactly
		// like the dense closure — each shard just answers by label
		// intersection instead of a matrix probe.
		return reachabilitySharding(true)
	case "reachability/bfs-per-query":
		// No delta routing: see reachabilitySharding on why maintenance
		// would cost more than re-registering for the BFS baseline.
		return reachabilitySharding(false)
	default:
		return nil
	}
}

// DeltaCapableSchemes lists the scheme names whose sharded form routes
// deltas (a subset of ShardableSchemes), for error messages and docs.
func DeltaCapableSchemes() []string {
	return []string{
		"list-membership/sorted",
		"point-selection/sorted-keys",
		"range-selection/sorted-keys",
		"reachability/closure-matrix",
		"reachability/labels",
	}
}

// ShardableSchemes lists the scheme names ForScheme accepts, for error
// messages and docs.
func ShardableSchemes() []string {
	return []string{
		"list-membership/sorted",
		"point-selection/scan",
		"point-selection/sorted-keys",
		"range-selection/sorted-keys",
		"reachability/bfs-per-query",
		"reachability/closure-matrix",
		"reachability/labels",
	}
}

// relationKeys extracts the int64 "key" column in tuple order.
func relationKeys(data []byte) ([]int64, error) {
	rel, err := relation.Decode(data)
	if err != nil {
		return nil, err
	}
	idx := rel.Schema.AttrIndex("key")
	if idx < 0 {
		return nil, fmt.Errorf("shard: relation %q has no \"key\" attribute to partition on", rel.Schema.Name)
	}
	if rel.Schema.Attrs[idx].Kind != relation.KindInt64 {
		return nil, fmt.Errorf("shard: relation %q attribute \"key\" is %v, want int64",
			rel.Schema.Name, rel.Schema.Attrs[idx].Kind)
	}
	keys := make([]int64, rel.Len())
	for i, t := range rel.Tuples {
		keys[i] = t[idx].I
	}
	return keys, nil
}

// splitRelation cuts a relation into one sub-relation per shard, keeping
// the schema and tuple order. Every part is a valid dataset for the
// selection schemes (possibly empty).
func splitRelation(data []byte, asn Assignment) ([][]byte, error) {
	rel, err := relation.Decode(data)
	if err != nil {
		return nil, err
	}
	idx := rel.Schema.AttrIndex("key")
	if idx < 0 {
		return nil, fmt.Errorf("shard: relation %q has no \"key\" attribute to partition on", rel.Schema.Name)
	}
	parts := make([]*relation.Relation, asn.Shards())
	for i := range parts {
		parts[i] = relation.New(rel.Schema)
	}
	for _, t := range rel.Tuples {
		s := asn.Shard(t[idx].I)
		if err := parts[s].Append(t); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, len(parts))
	for i, p := range parts {
		out[i] = p.Encode()
	}
	return out, nil
}

// splitKeysDelta routes a key batch (schemes.KeysDelta and its delete and
// upsert variants) to the shards that own the keys under the frozen
// assignment — the sharded delta path of every key-partitioned scheme.
// Each shard receives one local batch of its own keys carrying the same
// delta kind, applied through the same sorted-file merge (or tombstone
// merge) an unsharded store uses.
func splitKeysDelta(delta []byte, asn Assignment, _ interface{}) (map[int][][]byte, error) {
	kind, payload, err := core.DeltaParts(delta)
	if err != nil {
		return nil, err
	}
	keys, err := schemes.DecodeList(payload)
	if err != nil {
		return nil, err
	}
	groups := map[int][]int64{}
	for _, k := range keys {
		s := asn.Shard(k)
		groups[s] = append(groups[s], k)
	}
	out := make(map[int][][]byte, len(groups))
	for s, g := range groups {
		out[s] = [][]byte{core.TagDelta(kind, schemes.EncodeList(g))}
	}
	return out, nil
}

// pointSelectionSharding: point queries always route — the owning shard is
// the one the query key hashes or ranges to — so no fan-out and no merge.
func pointSelectionSharding() *Sharding {
	return &Sharding{
		Keys:       relationKeys,
		Split:      splitRelation,
		SplitDelta: splitKeysDelta,
		Route: func(q []byte, asn Assignment) (int, error) {
			c, err := schemes.DecodePointQuery(q)
			if err != nil {
				return 0, err
			}
			return asn.Shard(c), nil
		},
	}
}

// rangeSelectionSharding: a [lo, hi] query routes when one shard owns the
// whole range (range partitioning keeps ranges contiguous); otherwise it
// fans out unchanged — each shard scans/searches its own keys — and the
// verdicts OR together, the natural merge for an existential query.
func rangeSelectionSharding() *Sharding {
	return &Sharding{
		Keys:       relationKeys,
		Split:      splitRelation,
		SplitDelta: splitKeysDelta,
		Route: func(q []byte, asn Assignment) (int, error) {
			lo, hi, err := schemes.DecodeRangeQuery(q)
			if err != nil {
				return 0, err
			}
			if lo == hi {
				return asn.Shard(lo), nil
			}
			if ro, ok := asn.(RangeOwner); ok {
				if s := ro.OwnerOfRange(lo, hi); s >= 0 {
					return s, nil
				}
			}
			return -1, nil // spans shards: fan out, OR the verdicts
		},
	}
}

// listMembershipSharding: like point selection, with list datasets.
func listMembershipSharding() *Sharding {
	return &Sharding{
		Keys:       schemes.DecodeList,
		SplitDelta: splitKeysDelta,
		Split: func(data []byte, asn Assignment) ([][]byte, error) {
			list, err := schemes.DecodeList(data)
			if err != nil {
				return nil, err
			}
			parts := make([][]int64, asn.Shards())
			for _, v := range list {
				s := asn.Shard(v)
				parts[s] = append(parts[s], v)
			}
			out := make([][]byte, len(parts))
			for i, p := range parts {
				out[i] = schemes.EncodeList(p)
			}
			return out, nil
		},
		Route: func(q []byte, asn Assignment) (int, error) {
			e, err := schemes.DecodePointQuery(q)
			if err != nil {
				return 0, err
			}
			return asn.Shard(e), nil
		},
	}
}
