package store

// Tests for the v3 compressed prep section: the delta-varint codec must
// fire exactly on sorted-key artifacts, shrink them, and round-trip
// byte-identically; unsorted or odd-length artifacts ship raw; legacy v2
// and v1 files still decode; hostile sections fail closed.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"pitract/internal/core"
	"pitract/internal/schemes"
)

// sortedPrep builds the canonical sorted-key artifact shape: non-decreasing
// 8-byte big-endian records — what point/range selection and list
// membership persist.
func sortedPrep(keys []int64) []byte {
	pd, err := schemes.PointSelectionScheme().Preprocess(schemes.RelationFromKeys(keys))
	if err != nil {
		panic(err)
	}
	return pd
}

func TestPrepSectionDeltaVarintFires(t *testing.T) {
	prep := sortedPrep([]int64{5, 1, 9, 3, 3, 200, -40, 1 << 30})
	sec := encodePrepSection(prep)
	if sec[0] != prepCodecDeltaVarint {
		t.Fatalf("sorted-key artifact shipped with codec %d, want delta-varint", sec[0])
	}
	if len(sec) >= len(prep)+1 {
		t.Fatalf("delta-varint section (%d bytes) did not shrink the %d-byte artifact", len(sec), len(prep))
	}
	got, err := decodePrepSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prep) {
		t.Fatal("delta-varint round trip changed the artifact")
	}
}

func TestPrepSectionRawFallback(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"odd-length": {1, 2, 3},
		"descending": append(binary.BigEndian.AppendUint64(nil, 9), binary.BigEndian.AppendUint64(nil, 3)...),
		// Eight 0xff bytes: one record, but its varint encoding (10 bytes +
		// count) is larger than raw, so raw must win.
		"incompressible": bytes.Repeat([]byte{0xff}, 8),
	}
	for name, prep := range cases {
		t.Run(name, func(t *testing.T) {
			sec := encodePrepSection(prep)
			if sec[0] != prepCodecRaw {
				t.Fatalf("codec %d, want raw", sec[0])
			}
			got, err := decodePrepSection(sec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, prep) {
				t.Fatal("raw round trip changed the artifact")
			}
		})
	}
}

// TestSnapshotV3ShrinksSortedKeys pins the headline effect at the snapshot
// level: a sorted-key store's snapshot is strictly smaller than the same
// snapshot under the v2 (raw prep) layout.
func TestSnapshotV3ShrinksSortedKeys(t *testing.T) {
	keys := make([]int64, 512)
	for i := range keys {
		keys[i] = int64(i * 3)
	}
	s := &Snapshot{SchemeName: "point-selection/sorted-keys", Prep: sortedPrep(keys)}
	enc := EncodeSnapshot(s)
	rawSize := len(enc) - len(encodePrepSection(s.Prep)) + 1 + len(s.Prep)
	if len(enc) >= rawSize {
		t.Fatalf("v3 snapshot is %d bytes, raw layout would be %d", len(enc), rawSize)
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Prep, s.Prep) {
		t.Fatal("compressed snapshot round trip changed Π")
	}
}

// encodeLegacySnapshot renders the v1/v2 layouts (raw prep, no codec byte)
// so the compat path is pinned against real bytes, not the current encoder.
func encodeLegacySnapshot(s *Snapshot, magic []byte, withVersion bool) []byte {
	header := core.PadPair([]byte(s.SchemeName), []byte(s.Notes))
	meta := append([]byte(nil), s.DataSum[:]...)
	if withVersion {
		meta = binary.AppendUvarint(meta, s.Version)
	}
	payload := core.PadPair(header, core.PadPair(meta, s.Prep))
	out := append([]byte(nil), magic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func TestSnapshotLegacyVersionsStillDecode(t *testing.T) {
	s := testSnapshot()
	s.Version = 7

	t.Run("v2", func(t *testing.T) {
		got, err := DecodeSnapshot(encodeLegacySnapshot(s, snapshotMagicV2, true))
		if err != nil {
			t.Fatalf("v2 decode: %v", err)
		}
		if got.SchemeName != s.SchemeName || got.Version != 7 || !bytes.Equal(got.Prep, s.Prep) {
			t.Fatalf("v2 decode changed fields: %+v", got)
		}
	})
	t.Run("v1", func(t *testing.T) {
		got, err := DecodeSnapshot(encodeLegacySnapshot(s, snapshotMagicV1, false))
		if err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		if got.SchemeName != s.SchemeName || got.Version != 0 || !bytes.Equal(got.Prep, s.Prep) {
			t.Fatalf("v1 decode changed fields: %+v", got)
		}
	})
	// Re-encoding a legacy snapshot writes the current (v3) format.
	got, err := DecodeSnapshot(encodeLegacySnapshot(s, snapshotMagicV2, true))
	if err != nil {
		t.Fatal(err)
	}
	re := EncodeSnapshot(got)
	if !bytes.HasPrefix(re, snapshotMagic) {
		t.Fatal("re-encoded legacy snapshot is not v3")
	}
	if got2, err := DecodeSnapshot(re); err != nil || !bytes.Equal(got2.Prep, s.Prep) {
		t.Fatalf("v2→v3 rewrite round trip: %v", err)
	}
}

// TestDecodePrepSectionHostile pins fail-closed decoding: every malformed
// section errors without panicking and without allocating from attacker-
// controlled counts.
func TestDecodePrepSectionHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"unknown-codec":  {9, 1, 2, 3},
		"no-count":       {prepCodecDeltaVarint},
		"zero-count":     append([]byte{prepCodecDeltaVarint}, binary.AppendUvarint(nil, 0)...),
		"count-lie":      append([]byte{prepCodecDeltaVarint}, binary.AppendUvarint(nil, 1<<40)...),
		"truncated-body": append(append([]byte{prepCodecDeltaVarint}, binary.AppendUvarint(nil, 3)...), 1, 2),
		"overflow": append(append(append([]byte{prepCodecDeltaVarint},
			binary.AppendUvarint(nil, 2)...),
			binary.AppendUvarint(nil, 1<<63)...),
			binary.AppendUvarint(nil, 1<<63)...),
		"trailing-bytes": append(append(append([]byte{prepCodecDeltaVarint},
			binary.AppendUvarint(nil, 1)...),
			binary.AppendUvarint(nil, 5)...),
			0xee),
		"bad-varint": append([]byte{prepCodecDeltaVarint}, bytes.Repeat([]byte{0x80}, 11)...),
	}
	for name, sec := range cases {
		t.Run(name, func(t *testing.T) {
			if got, err := decodePrepSection(sec); err == nil {
				t.Fatalf("hostile section decoded to %d bytes", len(got))
			}
		})
	}
}
