package store

// Per-dataset health tracking: a windowed-failure circuit breaker that
// moves a dataset healthy → degraded → open as serve-path failures
// accumulate, refuses fast while open, and heals through single
// half-open probes with exponential backoff. The breaker never guesses
// at causes — the server classifies each answer outcome (deadline
// expiry, prepare failure, success) and reports it via OnSuccess /
// OnFailure; the breaker only decides whether the next request should
// pay the possibly-failing exact path, try a cheaper declared fallback,
// or be refused outright with a Retry-After hint.

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"pitract/internal/obs"
)

var (
	obsBreakerTrips = obs.Default.Counter("pitract_breaker_trips_total",
		"Datasets whose circuit breaker tripped open.")
	obsQuarantines = obs.Default.Counter("pitract_quarantines_total",
		"Corrupt artifacts renamed aside for forensics and rebuilt from source.")
)

// HealthState is a dataset's serve-path health as reported by /healthz.
type HealthState int32

const (
	// Healthy: the exact path is serving normally.
	HealthHealthy HealthState = iota
	// Degraded: recent failures crossed the soft threshold; requests are
	// admitted but answered via the scheme's declared fallback when one
	// exists. The state ages out as the failure window empties.
	HealthDegraded
	// Open: the breaker tripped. Requests refuse fast (503 + Retry-After)
	// until the backoff elapses, then a single half-open probe retries the
	// exact path; success closes the breaker, failure doubles the backoff.
	HealthOpen
	// Quarantined: a persisted artifact failed CRC or decode and was
	// renamed aside; the dataset was rebuilt from source and the state
	// clears on the first successful answer.
	HealthQuarantined
)

func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthOpen:
		return "open"
	case HealthQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("HealthState(%d)", int32(s))
}

// BreakerConfig tunes one dataset's circuit breaker. The zero value
// means "use the default" for every field.
type BreakerConfig struct {
	// Window is how long a failure counts against the dataset.
	Window time.Duration
	// DegradedAfter is the windowed failure count that enters Degraded.
	DegradedAfter int
	// OpenAfter is the windowed failure count that trips the breaker.
	OpenAfter int
	// Backoff is the initial open→probe delay; each failed probe doubles
	// it up to MaxBackoff, and a successful probe resets it.
	Backoff time.Duration
	// MaxBackoff caps the exponential probe backoff.
	MaxBackoff time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 3
	}
	if c.OpenAfter <= 0 {
		c.OpenAfter = 8
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.OpenAfter < c.DegradedAfter {
		c.OpenAfter = c.DegradedAfter
	}
	return c
}

// BreakerDecision is the breaker's verdict for one incoming request.
type BreakerDecision struct {
	// Admit: serve the request. False means refuse fast with RetryAfter.
	Admit bool
	// Probe: this request is the single half-open probe — it must take
	// the exact path, and its outcome closes or re-opens the breaker.
	Probe bool
	// Degrade: prefer the scheme's declared fallback for this request.
	Degrade bool
	// ExactFallback: when Degrade is set and the scheme declares no
	// fallback, the exact path is still acceptable (Degraded state).
	// False means the exact path is off-limits (half-open, non-probe).
	ExactFallback bool
	// State is the health state the decision was made under.
	State HealthState
	// RetryAfter hints when the client should retry a refused request.
	RetryAfter time.Duration
}

// Breaker is one dataset's health state machine. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    HealthState
	failures []time.Time
	openedAt time.Time
	backoff  time.Duration
	probing  bool
	probeAt  time.Time
}

// NewBreaker builds a breaker; zero-value config fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, now: time.Now, backoff: cfg.Backoff}
}

// probeTimeout bounds how long the single half-open probe slot stays
// reserved for a probe that never reported back (e.g. its goroutine was
// abandoned past a deadline): after it, the slot is re-issued.
func (b *Breaker) probeTimeout() time.Duration {
	if b.backoff > time.Second {
		return b.backoff
	}
	return time.Second
}

// prune drops failures older than the window and ages Degraded back to
// Healthy when the window empties below the soft threshold. Open never
// ages out here — only probe outcomes move it.
func (b *Breaker) prune(now time.Time) {
	cut := now.Add(-b.cfg.Window)
	k := 0
	for _, t := range b.failures {
		if t.After(cut) {
			b.failures[k] = t
			k++
		}
	}
	b.failures = b.failures[:k]
	if b.state == HealthDegraded && len(b.failures) < b.cfg.DegradedAfter {
		b.state = HealthHealthy
	}
}

// Allow decides how the next request against this dataset is served.
func (b *Breaker) Allow() BreakerDecision {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.prune(now)
	switch b.state {
	case HealthOpen:
		if wait := b.openedAt.Add(b.backoff).Sub(now); wait > 0 {
			return BreakerDecision{State: HealthOpen, RetryAfter: wait}
		}
		if !b.probing || now.Sub(b.probeAt) >= b.probeTimeout() {
			b.probing = true
			b.probeAt = now
			return BreakerDecision{Admit: true, Probe: true, State: HealthOpen}
		}
		// Half-open with the probe slot taken: only a declared fallback
		// may answer — the exact path is reserved for the probe.
		return BreakerDecision{Admit: true, Degrade: true, State: HealthOpen, RetryAfter: b.backoff}
	case HealthDegraded:
		return BreakerDecision{Admit: true, Degrade: true, ExactFallback: true, State: HealthDegraded}
	default:
		return BreakerDecision{Admit: true, State: b.state}
	}
}

// OnSuccess reports a successfully served request. probe must echo the
// Probe flag of the BreakerDecision the request was admitted under.
func (b *Breaker) OnSuccess(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch b.state {
	case HealthOpen:
		if !probe {
			// A straggler admitted before the trip proves nothing about
			// the path the probe is testing.
			return
		}
		b.state = HealthHealthy
		b.failures = b.failures[:0]
		b.backoff = b.cfg.Backoff
	case HealthQuarantined:
		// First successful answer over the rebuilt artifact: healed.
		b.state = HealthHealthy
		b.failures = b.failures[:0]
	}
}

// OnFailure reports a health-relevant serve failure (deadline expiry,
// prepare failure, injected I/O) — client-shaped errors such as
// malformed queries must not be reported here.
func (b *Breaker) OnFailure(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if probe {
		b.probing = false
	}
	if b.state == HealthOpen {
		if probe {
			// The probe failed: stay open and back off exponentially.
			b.openedAt = now
			b.backoff *= 2
			if b.backoff > b.cfg.MaxBackoff {
				b.backoff = b.cfg.MaxBackoff
			}
		}
		return
	}
	b.failures = append(b.failures, now)
	b.prune(now)
	switch {
	case len(b.failures) >= b.cfg.OpenAfter:
		b.state = HealthOpen
		b.openedAt = now
		b.backoff = b.cfg.Backoff
		obsBreakerTrips.Inc()
	case len(b.failures) >= b.cfg.DegradedAfter:
		b.state = HealthDegraded
	}
}

// MarkQuarantined records that the dataset's persisted artifact was
// quarantined and rebuilt; the state clears on the next success.
func (b *Breaker) MarkQuarantined() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = HealthQuarantined
}

// MarkHealed force-resets the breaker to Healthy.
func (b *Breaker) MarkHealed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = HealthHealthy
	b.failures = b.failures[:0]
	b.probing = false
	b.backoff = b.cfg.Backoff
}

// State returns the current health state, aging out stale failures.
func (b *Breaker) State() HealthState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prune(b.now())
	return b.state
}

// SetBreakerConfig sets the config applied to every breaker created
// after the call and resets existing ones. Set it before serving
// traffic; it is not synchronized against in-flight decisions.
func (r *Registry) SetBreakerConfig(cfg BreakerConfig) {
	r.breakerMu.Lock()
	r.breakerCfg = cfg
	r.breakers = nil
	r.breakerMu.Unlock()
}

// Breaker returns the dataset's circuit breaker, creating it on first
// use. Callers must only ask for breakers of datasets that exist (the
// map is keyed by arbitrary ids and never shrinks).
func (r *Registry) Breaker(id string) *Breaker {
	r.breakerMu.Lock()
	defer r.breakerMu.Unlock()
	if r.breakers == nil {
		r.breakers = map[string]*Breaker{}
	}
	b := r.breakers[id]
	if b == nil {
		b = NewBreaker(r.breakerCfg)
		r.breakers[id] = b
	}
	return b
}

// HealthStates reports the health state of every completed dataset.
func (r *Registry) HealthStates() map[string]HealthState {
	out := map[string]HealthState{}
	for _, id := range r.IDs() {
		out[id] = r.Breaker(id).State()
	}
	return out
}

// QuarantineCount reports how many artifacts this registry quarantined.
func (r *Registry) QuarantineCount() int64 { return r.quarantineCount.Load() }

// NoteQuarantine counts an externally performed quarantine (composite
// registrations report through this seam, like NoteLoad/NotePreprocess)
// and marks the dataset's breaker.
func (r *Registry) NoteQuarantine(id string) {
	r.quarantineCount.Add(1)
	obsQuarantines.Inc()
	r.Breaker(id).MarkQuarantined()
}

// QuarantinePath maps an artifact path to where quarantine moves it.
// The suffix appends to an already path-escaped filename, so hostile
// dataset ids cannot escape the data directory.
func QuarantinePath(path string) string { return path + ".quarantine" }

// quarantineArtifact renames a corrupt artifact aside for forensics and
// records the quarantine. A rename failure must not block the rebuild —
// the artifact is unreadable either way.
func (r *Registry) quarantineArtifact(fsys FS, path, id string) {
	if err := fsys.Rename(path, QuarantinePath(path)); err == nil {
		fsys.SyncDir(filepath.Dir(path))
	}
	r.NoteQuarantine(id)
}
