package store

// The request-budget suite: RegisterContext must abandon builds that
// outrun their context — returning a BudgetError and leaving no catalog
// entry in any interleaving — while concurrent waiters still share one
// build, and ApplyDeltaContext must refuse expired contexts with nothing
// applied. These pin the contract the server's 503 taxonomy stands on.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pitract/internal/core"
	"pitract/internal/schemes"
)

// gatedScheme returns a scheme whose Preprocess blocks until gate is
// closed, so tests control exactly when a build completes.
func gatedScheme(gate <-chan struct{}) *core.Scheme {
	return &core.Scheme{
		SchemeName: "test/gated",
		Preprocess: func(d []byte) ([]byte, error) {
			<-gate
			return append([]byte(nil), d...), nil
		},
		Answer: func(pd, q []byte) (bool, error) { return len(pd) > 0, nil },
	}
}

// TestRegisterContextBudgetExceeded pins the headline contract: a
// registration whose context expires mid-build returns a BudgetError
// wrapping the context's error, and once the abandoned build drains the
// catalog holds no entry — the id is free for a clean retry.
func TestRegisterContextBudgetExceeded(t *testing.T) {
	reg := NewRegistry("")
	gate := make(chan struct{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	_, err := reg.RegisterContext(ctx, "d", gatedScheme(gate), []byte{1})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expired registration returned %v, want a BudgetError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("BudgetError %v does not wrap context.DeadlineExceeded", err)
	}

	// Let the abandoned build finish; its result must be dropped. A Get
	// can transiently observe the still-in-flight entry (it behaves like a
	// build waiter), so poll until the commit-and-drop lands.
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := reg.Get("d"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned build is still addressable")
		}
		time.Sleep(time.Millisecond)
	}
	if n := reg.Len(); n != 0 {
		t.Fatalf("abandoned build left %d catalog entries", n)
	}

	// The id is free: a fresh registration builds from scratch and lands.
	open := make(chan struct{})
	close(open)
	if _, err := reg.RegisterContext(context.Background(), "d", gatedScheme(open), []byte{1}); err != nil {
		t.Fatalf("re-registering after an abandoned build: %v", err)
	}
	if reg.Len() != 1 {
		t.Fatalf("catalog has %d entries after retry, want 1", reg.Len())
	}
}

// TestRegisterContextExpiredUpfront pins the cheap path: an
// already-expired context is refused before any build starts.
func TestRegisterContextExpiredUpfront(t *testing.T) {
	reg := NewRegistry("")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	scheme := &core.Scheme{
		SchemeName: "test/never",
		Preprocess: func(d []byte) ([]byte, error) { called = true; return d, nil },
		Answer:     func(pd, q []byte) (bool, error) { return true, nil },
	}
	_, err := reg.RegisterContext(ctx, "d", scheme, []byte{1})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expired-upfront registration returned %v, want a BudgetError", err)
	}
	if called {
		t.Fatal("preprocess ran under an already-expired context")
	}
	if reg.Len() != 0 {
		t.Fatal("expired-upfront registration left a catalog entry")
	}
}

// TestRegisterContextWaiterSharesBuild pins the future semantics under
// budgets: a second registration for an id being built waits and shares
// the result, and a waiter whose own context expires gives up with a
// BudgetError without abandoning the build — the builder's registration
// still commits.
func TestRegisterContextWaiterSharesBuild(t *testing.T) {
	reg := NewRegistry("")
	gate := make(chan struct{})
	started := make(chan struct{})
	scheme := &core.Scheme{
		SchemeName: "test/gated",
		Preprocess: func(d []byte) ([]byte, error) {
			close(started)
			<-gate
			return append([]byte(nil), d...), nil
		},
		Answer: func(pd, q []byte) (bool, error) { return len(pd) > 0, nil },
	}

	var wg sync.WaitGroup
	builderErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := reg.RegisterContext(context.Background(), "d", scheme, []byte{1})
		builderErr <- err
	}()
	<-started // the build is in flight; everyone below is a waiter

	// An impatient waiter times out with a BudgetError — and must not
	// abandon the build it was merely waiting on.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err := reg.RegisterContext(ctx, "d", scheme, []byte{1})
	cancel()
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("impatient waiter returned %v, want a BudgetError", err)
	}

	// A patient waiter shares the committed build.
	waiterErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := reg.RegisterContext(context.Background(), "d", scheme, []byte{1})
		waiterErr <- err
	}()

	close(gate)
	wg.Wait()
	if err := <-builderErr; err != nil {
		t.Fatalf("builder failed: %v", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("patient waiter failed: %v", err)
	}
	// The impatient waiter's timeout must not have abandoned the build.
	if reg.Len() != 1 {
		t.Fatalf("catalog has %d entries, want 1 (impatient waiter must not abandon)", reg.Len())
	}
	st, ok := reg.Get("d")
	if !ok {
		t.Fatal("committed build missing")
	}
	if got, err := st.Answer(nil); err != nil || !got {
		t.Fatalf("shared build answers (%v, %v), want (true, nil)", got, err)
	}
}

// TestApplyDeltaContextExpired pins maintenance budgets: an expired
// context refuses the batch as a BudgetError with nothing applied — the
// served Π, the version, and the delta counter are untouched.
func TestApplyDeltaContextExpired(t *testing.T) {
	reg := NewRegistry("")
	data := schemes.RelationFromKeys([]int64{2, 4, 6})
	st, err := reg.Register("d", schemes.PointSelectionScheme(), data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = reg.ApplyDeltaContext(ctx, "d", [][]byte{schemes.KeysDelta([]int64{9})})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expired delta batch returned %v, want a BudgetError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BudgetError %v does not wrap context.Canceled", err)
	}
	if v := st.Version(); v != 0 {
		t.Fatalf("version %d after refused batch, want 0", v)
	}
	if ok, _ := st.Answer(schemes.PointQuery(9)); ok {
		t.Fatal("refused delta is visible")
	}
	if reg.DeltaCount() != 0 {
		t.Fatalf("delta counter %d after refused batch, want 0", reg.DeltaCount())
	}
}
