package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pitract/internal/schemes"
)

func testSnapshot() *Snapshot {
	return &Snapshot{
		SchemeName: "point-selection/sorted-keys",
		Notes:      "O(|D| log |D|) / O(log |D|)",
		DataSum:    SumData([]byte("the raw data")),
		Prep:       []byte{0, 1, 2, 250, 251, 252, 253, 254, 255},
	}
}

func TestSnapshotRoundTripBytesIdentical(t *testing.T) {
	s := testSnapshot()
	enc := EncodeSnapshot(s)
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.SchemeName != s.SchemeName || got.Notes != s.Notes ||
		got.DataSum != s.DataSum || !bytes.Equal(got.Prep, s.Prep) {
		t.Fatalf("round trip changed fields: got %+v want %+v", got, s)
	}
	if !bytes.Equal(EncodeSnapshot(got), enc) {
		t.Fatal("re-encoding a decoded snapshot is not byte-identical")
	}
}

func TestSnapshotSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "dir", "d.pitract")
	s := testSnapshot()
	if err := Save(path, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.SchemeName != s.SchemeName || !bytes.Equal(got.Prep, s.Prep) || got.DataSum != s.DataSum {
		t.Fatalf("loaded snapshot differs: %+v vs %+v", got, s)
	}
}

// TestSnapshotCorruptionRejected flips, truncates and garbles an encoded
// snapshot every way the format must catch: each must produce an error, and
// none may panic.
func TestSnapshotCorruptionRejected(t *testing.T) {
	enc := EncodeSnapshot(testSnapshot())

	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeSnapshot(nil); err == nil {
			t.Fatal("empty input accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(enc); cut += 3 {
			if _, err := DecodeSnapshot(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(enc); i++ {
			bad := append([]byte(nil), enc...)
			bad[i] ^= 0x40
			if _, err := DecodeSnapshot(bad); err == nil {
				t.Fatalf("bit flip at byte %d accepted", i)
			}
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[len(snapshotMagic)-1] = 0x7f
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatal("wrong format version accepted")
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := DecodeSnapshot(append(append([]byte(nil), enc...), 0xEE)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.pitract")
	if err := Save(path, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt file loaded without error")
	}
}

// TestOpen checks the single-store preprocess-once contract: first Open
// preprocesses and saves, second Open reloads byte-identically without
// preprocessing, changed data forces a re-preprocess.
func TestOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.pitract")
	scheme := schemes.PointSelectionScheme()
	prepCalls := 0
	wrapped := *scheme
	inner := scheme.Preprocess
	wrapped.Preprocess = func(d []byte) ([]byte, error) { prepCalls++; return inner(d) }

	data := schemes.RelationFromKeys([]int64{5, 1, 9, 3})
	st1, err := Open(path, &wrapped, data)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	if st1.Loaded || prepCalls != 1 {
		t.Fatalf("first open: loaded=%v prepCalls=%d, want fresh preprocess", st1.Loaded, prepCalls)
	}
	st2, err := Open(path, &wrapped, data)
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	if !st2.Loaded || prepCalls != 1 {
		t.Fatalf("second open: loaded=%v prepCalls=%d, want snapshot reload", st2.Loaded, prepCalls)
	}
	if !bytes.Equal(st1.Prep, st2.Prep) {
		t.Fatal("reloaded preprocessed bytes differ from the saved ones")
	}
	ok, err := st2.Answer(schemes.PointQuery(9))
	if err != nil || !ok {
		t.Fatalf("answer on reloaded store: ok=%v err=%v", ok, err)
	}

	st3, err := Open(path, &wrapped, schemes.RelationFromKeys([]int64{7}))
	if err != nil {
		t.Fatalf("open with new data: %v", err)
	}
	if st3.Loaded || prepCalls != 2 {
		t.Fatalf("changed data: loaded=%v prepCalls=%d, want re-preprocess", st3.Loaded, prepCalls)
	}
}
