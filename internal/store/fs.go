// FS is the file-system seam of the persistence layer. Every byte the
// store and shard packages put on (or read from) disk flows through this
// interface, so the crash-injection harness (internal/store/faultfs) can
// substitute an in-memory medium with op-counted, controllable durability
// — fail the Nth write, tear the final record, lie on fsync, lose a rename
// whose directory was never synced — and the crash-matrix suites can kill
// the process model at every boundary of the commit protocol.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is one writable file handle: what the atomic-write and log-append
// paths need, nothing more.
type File interface {
	io.Writer
	// Sync flushes written content to the durable medium.
	Sync() error
	Close() error
	// Name reports the path the file was opened under.
	Name() string
}

// FS abstracts the file operations the persistence layer performs. OSFS is
// the real disk; faultfs.FS is the in-memory crash-injection medium.
type FS interface {
	ReadFile(name string) ([]byte, error)
	// ReadDirNames lists the entry names (not paths) of a directory.
	ReadDirNames(name string) ([]string, error)
	// Size reports a file's length in bytes (an error when absent).
	Size(name string) (int64, error)
	MkdirAll(name string) error
	// CreateTemp creates a uniquely named file in dir; pattern as in
	// os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens name for appending, creating it when absent.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making its entry table — creations,
	// renames, removals — durable. A rename without it can vanish on
	// crash even though the renamed file's *content* was synced.
	SyncDir(name string) error
}

// OSFS is the real operating-system file system.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDirNames(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) MkdirAll(name string) error { return os.MkdirAll(name, 0o755) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Medium bundles where and how maintained artifacts persist: a snapshot
// directory, the file system behind it, and the checkpoint cadence of the
// write-ahead delta log. The zero Medium (or a nil pointer) is volatile —
// nothing is persisted.
type Medium struct {
	// Dir is the snapshot/log directory; "" disables persistence.
	Dir string
	// FS is the file layer; nil means OSFS.
	FS FS
	// CheckpointEvery is how many log records may accumulate before the
	// snapshot (or shard generation) is rewritten and the log truncated.
	// Values < 1 mean 1: checkpoint on every PATCH, so the log exists only
	// as the crash-recovery journal of the in-flight batch.
	CheckpointEvery int
}

// DiskMedium is the common case: persist under dir on the real disk,
// checkpointing every batch.
func DiskMedium(dir string) *Medium { return &Medium{Dir: dir} }

// fs returns the file layer, defaulting to the real disk.
func (m *Medium) fs() FS {
	if m == nil || m.FS == nil {
		return OSFS
	}
	return m.FS
}

// Files is the exported face of fs, for composite datasets (internal/shard)
// persisting through the registry's medium.
func (m *Medium) Files() FS { return m.fs() }

// persistent reports whether the medium persists anything at all.
func (m *Medium) persistent() bool { return m != nil && m.Dir != "" }

// Persistent reports whether the medium persists anything at all (a nil
// medium is volatile).
func (m *Medium) Persistent() bool { return m.persistent() }

// Path reports the medium's directory ("" when volatile; nil-safe).
func (m *Medium) Path() string {
	if m == nil {
		return ""
	}
	return m.Dir
}

// checkpointEvery normalizes the checkpoint cadence.
func (m *Medium) checkpointEvery() int {
	if m == nil || m.CheckpointEvery < 1 {
		return 1
	}
	return m.CheckpointEvery
}

// Cadence is the exported face of checkpointEvery: the normalized number of
// log records between checkpoints.
func (m *Medium) Cadence() int { return m.checkpointEvery() }

// WriteFileAtomicFS writes b to path atomically on fsys: temp file in the
// target directory, fsync, rename, directory fsync. A crash mid-write
// leaves either the old file or none — never a torn one — and the closing
// SyncDir makes the rename itself durable: without it a crash shortly
// after a "successful" write could resurface the old file (or none), i.e.
// a version behind answers already served. It is the durability primitive
// behind Save, the delta log, and the shard generation writer.
func WriteFileAtomicFS(fsys FS, path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	tmp, err := fsys.CreateTemp(dir, ".pitract-atomic-*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: write %s: sync dir: %w", path, err)
	}
	return nil
}
