package store

// The breaker state-machine suite: windowed failure counting with exact
// edge behavior, the half-open single-probe contract, exponential
// backoff, quarantine marking, and concurrent trippers under -race. The
// clock is the breaker's unexported `now` seam, so every transition is
// deterministic. A fuzz target pins that quarantine file naming can
// never escape the data directory, whatever the dataset id.

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pitract/internal/core"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := newFakeClock()
	b.now = clk.Now
	return b, clk
}

var breakerCfg = BreakerConfig{
	Window:        time.Second,
	DegradedAfter: 2,
	OpenAfter:     4,
	Backoff:       100 * time.Millisecond,
	MaxBackoff:    400 * time.Millisecond,
}

func TestBreakerConfigDefaults(t *testing.T) {
	c := BreakerConfig{}.withDefaults()
	if c.Window <= 0 || c.DegradedAfter <= 0 || c.OpenAfter <= 0 || c.Backoff <= 0 || c.MaxBackoff <= 0 {
		t.Fatalf("zero config did not take defaults: %+v", c)
	}
	// OpenAfter below DegradedAfter is contradictory; it clamps up so the
	// state machine can still reach Open.
	c = BreakerConfig{DegradedAfter: 5, OpenAfter: 2}.withDefaults()
	if c.OpenAfter != 5 {
		t.Fatalf("OpenAfter = %d, want clamped to DegradedAfter = 5", c.OpenAfter)
	}
}

// TestBreakerLifecycle walks the whole machine: healthy → degraded →
// open → refused → half-open probe → healed, checking each decision's
// flags along the way.
func TestBreakerLifecycle(t *testing.T) {
	b, clk := testBreaker(breakerCfg)

	if dec := b.Allow(); !dec.Admit || dec.Probe || dec.Degrade || dec.State != HealthHealthy {
		t.Fatalf("healthy decision %+v", dec)
	}

	b.OnFailure(false)
	if st := b.State(); st != HealthHealthy {
		t.Fatalf("one failure moved the state to %v", st)
	}
	b.OnFailure(false)
	if dec := b.Allow(); !dec.Admit || !dec.Degrade || !dec.ExactFallback || dec.State != HealthDegraded {
		t.Fatalf("degraded decision %+v", dec)
	}

	b.OnFailure(false)
	b.OnFailure(false)
	if st := b.State(); st != HealthOpen {
		t.Fatalf("state after %d failures = %v, want open", breakerCfg.OpenAfter, st)
	}

	// Open within the backoff: refused with the remaining wait.
	clk.Advance(30 * time.Millisecond)
	dec := b.Allow()
	if dec.Admit {
		t.Fatalf("open breaker admitted a request: %+v", dec)
	}
	if want := 70 * time.Millisecond; dec.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want the remaining backoff %v", dec.RetryAfter, want)
	}

	// Backoff elapsed: exactly one probe is admitted; concurrent arrivals
	// may only degrade (the exact path is reserved for the probe).
	clk.Advance(70 * time.Millisecond)
	probe := b.Allow()
	if !probe.Admit || !probe.Probe {
		t.Fatalf("post-backoff decision %+v, want the probe", probe)
	}
	during := b.Allow()
	if !during.Admit || during.Probe || !during.Degrade || during.ExactFallback {
		t.Fatalf("decision during probe %+v, want degrade-only", during)
	}

	// The probe fails: still open, backoff doubled.
	b.OnFailure(true)
	if dec := b.Allow(); dec.Admit {
		t.Fatalf("breaker admitted right after a failed probe: %+v", dec)
	}
	clk.Advance(199 * time.Millisecond)
	if dec := b.Allow(); dec.Admit {
		t.Fatalf("breaker admitted before the doubled backoff elapsed: %+v", dec)
	}
	clk.Advance(time.Millisecond)
	if dec := b.Allow(); !dec.Probe {
		t.Fatalf("decision after the doubled backoff %+v, want a probe", dec)
	}

	// The probe succeeds: healthy, failures cleared, backoff reset.
	b.OnSuccess(true)
	if st := b.State(); st != HealthHealthy {
		t.Fatalf("state after a successful probe = %v", st)
	}
	b.OnFailure(false)
	b.OnFailure(false)
	if st := b.State(); st != HealthDegraded {
		t.Fatalf("failure history survived the heal: state %v after 2 fresh failures", st)
	}
}

// TestBreakerWindowEdges pins the sliding window's boundary behavior: a
// failure exactly Window old no longer counts, one a nanosecond younger
// still does, and Degraded ages back to Healthy as the window empties.
func TestBreakerWindowEdges(t *testing.T) {
	b, clk := testBreaker(breakerCfg)

	b.OnFailure(false)
	b.OnFailure(false)
	if st := b.State(); st != HealthDegraded {
		t.Fatalf("state after 2 failures = %v", st)
	}

	// One nanosecond short of the window: both failures still count.
	clk.Advance(breakerCfg.Window - time.Nanosecond)
	if st := b.State(); st != HealthDegraded {
		t.Fatalf("failures aged out %v early", time.Nanosecond)
	}
	// At exactly Window the failures drop and Degraded ages to Healthy.
	clk.Advance(time.Nanosecond)
	if st := b.State(); st != HealthHealthy {
		t.Fatalf("state at the window edge = %v, want healthy", st)
	}

	// Aged-out failures must not stack with fresh ones toward Open.
	b.OnFailure(false)
	b.OnFailure(false)
	b.OnFailure(false)
	clk.Advance(breakerCfg.Window + time.Millisecond)
	b.OnFailure(false)
	if st := b.State(); st != HealthHealthy {
		t.Fatalf("stale failures still count: state %v after 1 in-window failure", st)
	}
}

// TestBreakerOpenNeverAgesOut pins that Open is sticky: only a probe
// outcome moves it, no matter how long the breaker sits idle.
func TestBreakerOpenNeverAgesOut(t *testing.T) {
	b, clk := testBreaker(breakerCfg)
	for i := 0; i < breakerCfg.OpenAfter; i++ {
		b.OnFailure(false)
	}
	clk.Advance(10 * breakerCfg.Window)
	if st := b.State(); st != HealthOpen {
		t.Fatalf("open breaker aged out to %v without a probe", st)
	}
	// A pre-trip straggler's success proves nothing about the probed path.
	b.OnSuccess(false)
	if st := b.State(); st != HealthOpen {
		t.Fatalf("straggler success closed the breaker: %v", st)
	}
}

// TestBreakerProbeSlotReissue pins the abandoned-probe guard: a probe
// that never reports back (its worker was abandoned past a deadline)
// releases the slot after the probe timeout instead of wedging the
// breaker open forever.
func TestBreakerProbeSlotReissue(t *testing.T) {
	b, clk := testBreaker(breakerCfg)
	for i := 0; i < breakerCfg.OpenAfter; i++ {
		b.OnFailure(false)
	}
	clk.Advance(breakerCfg.Backoff)
	if dec := b.Allow(); !dec.Probe {
		t.Fatalf("first post-backoff decision %+v, want a probe", dec)
	}
	// The probe never calls OnSuccess/OnFailure. Within the timeout the
	// slot stays reserved...
	clk.Advance(500 * time.Millisecond)
	if dec := b.Allow(); dec.Probe {
		t.Fatal("probe slot double-issued while the first probe was live")
	}
	// ...and after it, a fresh probe is issued.
	clk.Advance(600 * time.Millisecond)
	if dec := b.Allow(); !dec.Probe {
		t.Fatalf("probe slot not re-issued after the timeout: %+v", dec)
	}
}

// TestBreakerBackoffCap pins the exponential backoff's ceiling.
func TestBreakerBackoffCap(t *testing.T) {
	b, clk := testBreaker(breakerCfg)
	for i := 0; i < breakerCfg.OpenAfter; i++ {
		b.OnFailure(false)
	}
	// Fail enough probes to overshoot MaxBackoff: 100 → 200 → 400 → 400.
	for i := 0; i < 4; i++ {
		clk.Advance(breakerCfg.MaxBackoff)
		if dec := b.Allow(); !dec.Probe {
			t.Fatalf("probe %d not issued: %+v", i, dec)
		}
		b.OnFailure(true)
	}
	clk.Advance(breakerCfg.MaxBackoff - time.Millisecond)
	if dec := b.Allow(); dec.Admit {
		t.Fatalf("admitted before the capped backoff elapsed: %+v", dec)
	}
	clk.Advance(time.Millisecond)
	if dec := b.Allow(); !dec.Probe {
		t.Fatalf("probe not issued at the capped backoff: %+v", dec)
	}
}

// TestBreakerQuarantineHeals pins the quarantine leg: marked datasets
// report quarantined until any successful answer heals them.
func TestBreakerQuarantineHeals(t *testing.T) {
	b, _ := testBreaker(breakerCfg)
	b.MarkQuarantined()
	if st := b.State(); st != HealthQuarantined {
		t.Fatalf("state after MarkQuarantined = %v", st)
	}
	if dec := b.Allow(); !dec.Admit || dec.Degrade || dec.Probe {
		t.Fatalf("quarantined decision %+v, want plain admission", dec)
	}
	b.OnSuccess(false)
	if st := b.State(); st != HealthHealthy {
		t.Fatalf("first success did not heal the quarantine: %v", st)
	}
}

// TestBreakerConcurrentTrippers hammers one breaker from many
// goroutines under -race: every interleaving must leave the machine in
// a legal state with the probe-slot invariant intact (at most one live
// probe between reports).
func TestBreakerConcurrentTrippers(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		Window:        50 * time.Millisecond,
		DegradedAfter: 2,
		OpenAfter:     4,
		Backoff:       time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				dec := b.Allow()
				if !dec.Admit {
					continue
				}
				if (i+g)%3 == 0 {
					b.OnFailure(dec.Probe)
				} else {
					b.OnSuccess(dec.Probe)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := b.State(); st < HealthHealthy || st > HealthQuarantined {
		t.Fatalf("breaker left in impossible state %d", st)
	}
}

// TestRegistryBreakerPlumbing pins the registry side: one breaker per
// id (stable across calls), config applied to new breakers, reset on
// SetBreakerConfig, and HealthStates keyed by the completed datasets.
func TestRegistryBreakerPlumbing(t *testing.T) {
	reg := NewRegistry("")
	if b1, b2 := reg.Breaker("a"), reg.Breaker("a"); b1 != b2 {
		t.Fatal("Breaker(id) is not stable across calls")
	}
	reg.Breaker("a").MarkQuarantined()
	reg.SetBreakerConfig(BreakerConfig{DegradedAfter: 1, OpenAfter: 1})
	if st := reg.Breaker("a").State(); st != HealthHealthy {
		t.Fatalf("SetBreakerConfig kept stale breaker state %v", st)
	}
	reg.Breaker("a").OnFailure(false)
	if st := reg.Breaker("a").State(); st != HealthOpen {
		t.Fatalf("new config not applied: state %v after 1 failure with OpenAfter=1", st)
	}

	scheme := &core.Scheme{
		SchemeName: "test/health",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Answer:     func(pd, q []byte) (bool, error) { return true, nil },
	}
	if _, err := reg.Register("ds", scheme, []byte{1}); err != nil {
		t.Fatal(err)
	}
	states := reg.HealthStates()
	if len(states) != 1 || states["ds"] != HealthHealthy {
		t.Fatalf("HealthStates = %v, want {ds: healthy}", states)
	}
	reg.NoteQuarantine("ds")
	if got := reg.QuarantineCount(); got != 1 {
		t.Fatalf("QuarantineCount = %d, want 1", got)
	}
	if st := reg.HealthStates()["ds"]; st != HealthQuarantined {
		t.Fatalf("NoteQuarantine did not mark the breaker: %v", st)
	}
}

func TestHealthStateStrings(t *testing.T) {
	for st, want := range map[HealthState]string{
		HealthHealthy: "healthy", HealthDegraded: "degraded",
		HealthOpen: "open", HealthQuarantined: "quarantined",
		HealthState(42): "HealthState(42)",
	} {
		if got := st.String(); got != want {
			t.Fatalf("HealthState(%d).String() = %q, want %q", int32(st), got, want)
		}
	}
}

// FuzzQuarantinePathContainment pins that quarantine naming composed
// with the registry's path escaping can never leave the data directory:
// for any dataset id, the quarantined snapshot and log names are plain
// files directly inside dir.
func FuzzQuarantinePathContainment(f *testing.F) {
	for _, id := range []string{
		"plain", "../escape", "..", ".", "a/b/c", `..\..\win`,
		"%2e%2e%2fdouble-encoded", "id with spaces", "ends-with-dot.",
		"\x00nul", "🦔", strings.Repeat("../", 40) + "etc/passwd",
	} {
		f.Add(id)
	}
	dir := filepath.Join("data", "dir")
	f.Fuzz(func(t *testing.T, id string) {
		for _, artifact := range []string{SnapshotPath(dir, id), LogPath(dir, id)} {
			q := QuarantinePath(artifact)
			if filepath.Dir(q) != dir {
				t.Fatalf("id %q: quarantine path %q escapes %q", id, q, dir)
			}
			// The name must be a single path element (no separators, not a
			// traversal component) — "..%2Fetc" is fine, it is a literal
			// filename, but "../etc" or "a/b" would escape.
			rel, err := filepath.Rel(dir, q)
			if err != nil || rel == ".." || rel == "." || strings.ContainsRune(rel, filepath.Separator) || strings.ContainsRune(rel, '/') {
				t.Fatalf("id %q: quarantine path %q is not a plain file under %q (rel %q, err %v)", id, q, dir, rel, err)
			}
		}
	})
}
