package store

// Unit pins for the cache-fronted dataset wrapper that need controllable
// version behavior — the cross-scheme differential lives in
// internal/server/cache_test.go.

import (
	"sync/atomic"
	"testing"

	"pitract/internal/cache"
)

// scriptedDataset is a Dataset stub with a controllable version and
// scripted verdicts, for racing the wrapper against "maintenance".
type scriptedDataset struct {
	version atomic.Uint64
	// onBatch runs inside AnswerBatch before answering — the hook a test
	// uses to commit a "delta" mid-batch. Every verdict is simply
	// "version > 0", so pre- and post-delta worlds are distinguishable.
	onBatch func()
}

func (d *scriptedDataset) DatasetID() string        { return "scripted" }
func (d *scriptedDataset) SchemeName() string       { return "scripted/scheme" }
func (d *scriptedDataset) DataDigest() DataChecksum { return DataChecksum{} }
func (d *scriptedDataset) PrepBytes() int           { return 0 }
func (d *scriptedDataset) ShardCount() int          { return 1 }
func (d *scriptedDataset) WasLoaded() bool          { return false }
func (d *scriptedDataset) Version() uint64          { return d.version.Load() }
func (d *scriptedDataset) Answer(q []byte) (bool, error) {
	return d.version.Load() > 0, nil
}
func (d *scriptedDataset) AnswerBatch(queries [][]byte, parallelism int) ([]bool, error) {
	if d.onBatch != nil {
		d.onBatch()
	}
	out := make([]bool, len(queries))
	v := d.version.Load() > 0
	for i := range out {
		out[i] = v
	}
	return out, nil
}

// TestCachedBatchConsistentAcrossMidBatchCommit pins the batch
// consistency contract: when a delta commits between cache admission and
// the miss sub-batch, the wrapper must not mix old-version hits with
// new-version miss answers — it falls back to one uncached batch, whose
// verdicts all come from a single Π.
func TestCachedBatchConsistentAcrossMidBatchCommit(t *testing.T) {
	ds := &scriptedDataset{}
	c := cache.New(1 << 20)
	cd := NewCachedDataset(ds, c)

	q1, q2 := []byte{1}, []byte{2}
	// Warm q1 at version 0 (verdict false).
	if got, err := cd.Answer(q1); err != nil || got {
		t.Fatalf("warm answer = (%v, %v), want (false, nil)", got, err)
	}
	// The "delta" commits while the miss sub-batch (q2) is in flight.
	ds.onBatch = func() { ds.version.Store(1) }
	got, err := cd.AnswerBatch([][]byte{q1, q2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] {
		t.Fatalf("mixed-version batch: %v — verdicts must come from one Π", got)
	}
	if !got[0] {
		t.Fatalf("batch = %v, want the post-commit verdicts", got)
	}
	// And the stale v0 entry must not have been refreshed under v1 keys:
	// a fresh lookup at v1 misses (the fallback skips cache fills).
	if _, ok := c.Lookup("scripted", 1, q2); ok {
		t.Fatal("fallback path filled the cache despite the version change")
	}
}

// TestCachedBatchFillsAndServes pins the happy path: misses answered once
// and cached, hits served without touching the dataset.
func TestCachedBatchFillsAndServes(t *testing.T) {
	ds := &scriptedDataset{}
	ds.version.Store(1)
	c := cache.New(1 << 20)
	cd := NewCachedDataset(ds, c)
	qs := [][]byte{{1}, {2}, {3}}
	for pass := 0; pass < 2; pass++ {
		got, err := cd.AnswerBatch(qs, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if !v {
				t.Fatalf("pass %d query %d: got false", pass, i)
			}
		}
	}
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 misses then 3 hits", st)
	}
}
