// The per-dataset write-ahead delta log. PR 4's PATCH path rewrote the
// whole snapshot before every in-memory commit, so a crash mid-PATCH could
// only fall back a full generation; the log closes that window. Every
// accepted delta batch is appended — CRC-framed and fsynced — *before* any
// in-memory or snapshot state changes, snapshot writes become checkpoints
// that truncate the log, and a registry open replays ⟨snapshot, log tail⟩
// so a restart resumes at the exact applied version. The log is also the
// ROADMAP's named prerequisite for multi-node replication: ship the log,
// not the snapshot.
//
// File layout:
//
//	logMagic ("PITRACTL\x01") ‖ record*
//	record   = crc32(body) (4 bytes BE) ‖ uvarint(len(body)) ‖ body
//	body     = uvarint(fromVersion) ‖ uvarint(k) ‖ k × (uvarint(len) ‖ delta)
//
// fromVersion is the dataset's maintenance version when the batch was
// accepted, which makes replay idempotent and self-aligning: records below
// the loaded snapshot's version are skipped (the checkpoint already holds
// them), the record at exactly the loaded version applies, and a gap above
// it means an acknowledged batch was lost (a lying fsync or foreign
// truncation) — an error, never a silent resume.
//
// A torn tail — short header, short body, or checksum mismatch on the last
// record — is the normal signature of a crash mid-append and marks a clean
// end of log. Corruption *behind* a valid frame (a CRC-valid record whose
// body does not parse) is hostile, not torn, and errors.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"net/url"
	"path/filepath"
)

// logMagic opens every delta-log file; the trailing byte is the format
// version.
var logMagic = []byte("PITRACTL\x01")

// LogPath is the canonical delta-log path for a dataset ID, next to its
// snapshot (SnapshotPath) with the ".pitract-log" suffix.
func LogPath(dir, id string) string {
	return filepath.Join(dir, url.PathEscape(id)+".pitract-log")
}

// LogRecord is one replayable delta batch.
type LogRecord struct {
	// FromVersion is the maintenance version the batch applies on top of.
	FromVersion uint64
	// Deltas are the batch's delta encodings, in application order.
	Deltas [][]byte
}

// encodeLogRecord frames one record (without the file magic).
func encodeLogRecord(fromVersion uint64, deltas [][]byte) []byte {
	body := binary.AppendUvarint(nil, fromVersion)
	body = binary.AppendUvarint(body, uint64(len(deltas)))
	for _, d := range deltas {
		body = binary.AppendUvarint(body, uint64(len(d)))
		body = append(body, d...)
	}
	rec := binary.BigEndian.AppendUint32(nil, crc32.ChecksumIEEE(body))
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	return append(rec, body...)
}

// AppendLogRecord appends one batch record to the dataset's log and fsyncs
// it — the durability point of a PATCH. Creating the log also fsyncs the
// parent directory so the new file's entry survives a crash.
func AppendLogRecord(fsys FS, path string, fromVersion uint64, deltas [][]byte) error {
	size, err := fsys.Size(path)
	isNew := err != nil || size == 0
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("store: append log %s: %w", path, err)
	}
	buf := encodeLogRecord(fromVersion, deltas)
	if isNew {
		buf = append(append([]byte(nil), logMagic...), buf...)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: append log %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: append log %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: append log %s: %w", path, err)
	}
	if isNew {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("store: append log %s: sync dir: %w", path, err)
		}
	}
	return nil
}

// ReadLog parses a delta log, returning every complete record up to the
// first torn one (which ends the log cleanly — the crash signature). A
// missing file is an empty log. CRC-valid records that fail to parse, or a
// full-length file with a foreign magic, are errors: that is corruption or
// hostility, not a crash.
func ReadLog(fsys FS, path string) ([]LogRecord, error) {
	b, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read log %s: %w", path, err)
	}
	if len(b) < len(logMagic) {
		// A crash during creation can leave a partial magic; clean empty.
		return nil, nil
	}
	if string(b[:len(logMagic)]) != string(logMagic) {
		return nil, &CorruptArtifactError{Path: path, Err: fmt.Errorf("store: %s is not a pitract delta log", path)}
	}
	var records []LogRecord
	off := len(logMagic)
	for off < len(b) {
		if len(b)-off < 5 {
			break // torn header: clean end
		}
		wantCRC := binary.BigEndian.Uint32(b[off:])
		bodyLen, m := binary.Uvarint(b[off+4:])
		if m <= 0 {
			break // torn length: clean end
		}
		bodyOff := off + 4 + m
		if bodyLen > uint64(len(b)-bodyOff) {
			break // torn body: clean end
		}
		body := b[bodyOff : bodyOff+int(bodyLen)]
		if crc32.ChecksumIEEE(body) != wantCRC {
			break // torn write caught by checksum: clean end
		}
		rec, err := decodeLogBody(body)
		if err != nil {
			return nil, &CorruptArtifactError{Path: path,
				Err: fmt.Errorf("store: read log %s: record %d: %w", path, len(records), err)}
		}
		records = append(records, rec)
		off = bodyOff + int(bodyLen)
	}
	return records, nil
}

// decodeLogBody parses one CRC-validated record body. Failures here are
// hostile input, not torn writes — the checksum already matched.
func decodeLogBody(body []byte) (LogRecord, error) {
	var rec LogRecord
	off := 0
	next := func() (uint64, error) {
		v, m := binary.Uvarint(body[off:])
		if m <= 0 {
			return 0, fmt.Errorf("corrupt varint at offset %d", off)
		}
		off += m
		return v, nil
	}
	from, err := next()
	if err != nil {
		return rec, err
	}
	k, err := next()
	if err != nil {
		return rec, err
	}
	// Each delta costs at least one length byte, so a count beyond the
	// remaining bytes is corrupt — reject before allocating.
	if k > uint64(len(body)-off) {
		return rec, fmt.Errorf("delta count %d exceeds remaining %d bytes", k, len(body)-off)
	}
	rec.FromVersion = from
	rec.Deltas = make([][]byte, 0, int(k))
	for i := uint64(0); i < k; i++ {
		dlen, err := next()
		if err != nil {
			return rec, err
		}
		if dlen > uint64(len(body)-off) {
			return rec, fmt.Errorf("delta %d claims %d bytes, %d remain", i, dlen, len(body)-off)
		}
		rec.Deltas = append(rec.Deltas, append([]byte(nil), body[off:off+int(dlen)]...))
		off += int(dlen)
	}
	if off != len(body) {
		return rec, fmt.Errorf("%d trailing record bytes", len(body)-off)
	}
	return rec, nil
}

// RemoveLog truncates (deletes) a dataset's delta log and makes the
// removal durable — the checkpoint's final step. Removing a log that does
// not exist is a no-op.
func RemoveLog(fsys FS, path string) error {
	if err := fsys.Remove(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: remove log %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("store: remove log %s: sync dir: %w", path, err)
	}
	return nil
}
