package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
)

// countingScheme wraps a scheme so tests can observe Preprocess calls.
func countingScheme(s *core.Scheme, calls *int32, mu *sync.Mutex) *core.Scheme {
	wrapped := *s
	inner := s.Preprocess
	wrapped.Preprocess = func(d []byte) ([]byte, error) {
		mu.Lock()
		*calls++
		mu.Unlock()
		return inner(d)
	}
	return &wrapped
}

// TestRegistryConcurrentRegister races many goroutines registering the same
// dataset: all must receive the same memoized store and exactly one
// Preprocess may run. Run under -race.
func TestRegistryConcurrentRegister(t *testing.T) {
	r := NewRegistry("")
	var calls int32
	var mu sync.Mutex
	scheme := countingScheme(schemes.PointSelectionScheme(), &calls, &mu)
	data := schemes.RelationFromKeys([]int64{2, 4, 6, 8})

	const goroutines = 32
	stores := make([]*Store, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			stores[i], errs[i] = r.Register("keys", scheme, data)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if stores[i] != stores[0] {
			t.Fatalf("goroutine %d got a different store instance", i)
		}
	}
	if calls != 1 {
		t.Fatalf("Preprocess ran %d times, want exactly 1", calls)
	}
	if got := r.PreprocessCount(); got != 1 {
		t.Fatalf("PreprocessCount = %d, want 1", got)
	}
}

// TestRegistryConcurrentRegisterAndQuery mixes registrations of distinct
// datasets with queries against already-registered ones, under -race.
func TestRegistryConcurrentRegisterAndQuery(t *testing.T) {
	r := NewRegistry("")
	g := graph.RandomDirected(64, 256, 7)
	reach := schemes.ReachabilityScheme()
	if _, err := r.Register("graph", reach, g.Encode()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("keys-%d", i)
			scheme := schemes.PointSelectionScheme()
			st, err := r.Register(id, scheme, schemes.RelationFromKeys([]int64{int64(i), 100}))
			if err != nil {
				t.Errorf("register %s: %v", id, err)
				return
			}
			ok, err := st.Answer(schemes.PointQuery(int64(i)))
			if err != nil || !ok {
				t.Errorf("%s: answer ok=%v err=%v", id, ok, err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			st, ok := r.Get("graph")
			if !ok {
				t.Error("graph store missing")
				return
			}
			queries := [][]byte{
				schemes.NodePairQuery(i%64, (i*7)%64),
				schemes.NodePairQuery((i*3)%64, i%64),
			}
			if _, err := st.AnswerBatch(queries, 4); err != nil {
				t.Errorf("batch: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := len(r.IDs()); got != 17 {
		t.Fatalf("registered %d datasets, want 17", got)
	}
}

// TestRegistryDoubleRegistration re-registers an existing ID: same store
// back, no second Preprocess; a different scheme under the same ID errors.
func TestRegistryDoubleRegistration(t *testing.T) {
	r := NewRegistry("")
	var calls int32
	var mu sync.Mutex
	scheme := countingScheme(schemes.PointSelectionScheme(), &calls, &mu)
	data := schemes.RelationFromKeys([]int64{1, 2, 3})

	st1, err := r.Register("d", scheme, data)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r.Register("d", scheme, data)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatal("double registration returned a different store")
	}
	if calls != 1 {
		t.Fatalf("Preprocess ran %d times, want 1", calls)
	}
	if _, err := r.Register("d", schemes.ReachabilityScheme(), data); err == nil {
		t.Fatal("re-registering with a different scheme must error")
	}
	if _, err := r.Register("d", scheme, schemes.RelationFromKeys([]int64{9, 9, 9})); err == nil {
		t.Fatal("re-registering with different data must error, not serve the stale store")
	}
}

// TestRegistryPersistence restarts the registry on the same directory: the
// second incarnation reloads the snapshot byte-identically and never calls
// Preprocess.
func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	data := schemes.RelationFromKeys([]int64{10, 20, 30})
	var calls int32
	var mu sync.Mutex

	r1 := NewRegistry(dir)
	st1, err := r1.Register("my/data set", countingScheme(schemes.PointSelectionScheme(), &calls, &mu), data)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("first run: %d Preprocess calls, want 1", calls)
	}

	r2 := NewRegistry(dir)
	st2, err := r2.Register("my/data set", countingScheme(schemes.PointSelectionScheme(), &calls, &mu), data)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("after restart: %d Preprocess calls, want still 1 (snapshot reload)", calls)
	}
	if !st2.Loaded || r2.LoadCount() != 1 {
		t.Fatalf("restart did not reload from snapshot (loaded=%v loads=%d)", st2.Loaded, r2.LoadCount())
	}
	if !bytes.Equal(st1.Prep, st2.Prep) {
		t.Fatal("reloaded Π(D) differs from the original")
	}

	// Changed data under the same ID must not serve the stale snapshot.
	r3 := NewRegistry(dir)
	st3, err := r3.Register("my/data set", countingScheme(schemes.PointSelectionScheme(), &calls, &mu),
		schemes.RelationFromKeys([]int64{99}))
	if err != nil {
		t.Fatal(err)
	}
	if st3.Loaded || calls != 2 {
		t.Fatalf("changed data: loaded=%v calls=%d, want fresh preprocess", st3.Loaded, calls)
	}
}

// TestRegistryFailedRegistrationRetries drops failed registrations so a
// corrected retry works.
func TestRegistryFailedRegistrationRetries(t *testing.T) {
	r := NewRegistry("")
	bad := &core.Scheme{
		SchemeName: "always-fails",
		Preprocess: func(d []byte) ([]byte, error) { return nil, fmt.Errorf("boom") },
		Answer:     func(pd, q []byte) (bool, error) { return false, nil },
	}
	if _, err := r.Register("d", bad, nil); err == nil {
		t.Fatal("failing Preprocess must surface an error")
	}
	if _, ok := r.Get("d"); ok {
		t.Fatal("failed registration left a store behind")
	}
	if _, err := r.Register("d", schemes.PointSelectionScheme(), schemes.RelationFromKeys([]int64{1})); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
}

// TestRegistryPanickingPreprocess: a Preprocess that panics (hostile data
// can trigger e.g. makeslice range panics inside scheme decoders) must come
// back as an error, not wedge the id — e.done must still close so later
// Register/Get calls neither block forever nor see a half-built store.
func TestRegistryPanickingPreprocess(t *testing.T) {
	r := NewRegistry("")
	bad := &core.Scheme{
		SchemeName: "panics",
		Preprocess: func(d []byte) ([]byte, error) { panic("hostile input") },
		Answer:     func(pd, q []byte) (bool, error) { return false, nil },
	}
	st, err := r.Register("d", bad, nil)
	if err == nil || st != nil {
		t.Fatalf("panicking Preprocess: got store=%v err=%v, want nil store + error", st, err)
	}
	done := make(chan struct{})
	go func() {
		if _, ok := r.Get("d"); ok {
			t.Error("panicked registration left a store behind")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked after panicked registration — done channel never closed")
	}
	if _, err := r.Register("d", schemes.PointSelectionScheme(), schemes.RelationFromKeys([]int64{1})); err != nil {
		t.Fatalf("retry after panic: %v", err)
	}
}
