package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// walRecords is the shared fixture: three batches with awkward payloads —
// empty batch, empty delta, binary junk that looks like framing.
func walRecords() []LogRecord {
	return []LogRecord{
		{FromVersion: 0, Deltas: [][]byte{[]byte("first"), {}}},
		{FromVersion: 2, Deltas: nil},
		{FromVersion: 2, Deltas: [][]byte{{0xFF, 0xFF, 0xFF, 0x00, 0x01, 0x80}, []byte("PITRACTL\x01")}},
	}
}

func writeWAL(t *testing.T, recs []LogRecord) string {
	t.Helper()
	path := LogPath(t.TempDir(), "d")
	for _, r := range recs {
		if err := AppendLogRecord(OSFS, path, r.FromVersion, r.Deltas); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func assertRecords(t *testing.T, got, want []LogRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].FromVersion != want[i].FromVersion {
			t.Fatalf("record %d: FromVersion %d, want %d", i, got[i].FromVersion, want[i].FromVersion)
		}
		if len(got[i].Deltas) != len(want[i].Deltas) {
			t.Fatalf("record %d: %d deltas, want %d", i, len(got[i].Deltas), len(want[i].Deltas))
		}
		for j := range want[i].Deltas {
			if !bytes.Equal(got[i].Deltas[j], want[i].Deltas[j]) {
				t.Fatalf("record %d delta %d: %x != %x", i, j, got[i].Deltas[j], want[i].Deltas[j])
			}
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	want := walRecords()
	path := writeWAL(t, want)
	got, err := ReadLog(OSFS, path)
	if err != nil {
		t.Fatal(err)
	}
	assertRecords(t, got, want)
}

func TestWALMissingAndEmpty(t *testing.T) {
	recs, err := ReadLog(OSFS, LogPath(t.TempDir(), "absent"))
	if err != nil || recs != nil {
		t.Fatalf("missing log: %v %v", recs, err)
	}
	// A crash during creation can leave fewer bytes than the magic: clean
	// empty, not an error.
	for _, partial := range [][]byte{{}, []byte("PITR"), []byte("PITRACTL")} {
		path := filepath.Join(t.TempDir(), "partial.pitract-log")
		if err := os.WriteFile(path, partial, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadLog(OSFS, path)
		if err != nil || recs != nil {
			t.Fatalf("%d-byte partial magic: %v %v", len(partial), recs, err)
		}
	}
}

func TestWALForeignMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.pitract-log")
	if err := os.WriteFile(path, []byte("SQLITE f3\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(OSFS, path); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

// TestWALTornTail truncates the log at every byte boundary: the records
// whose frames survive intact must parse, the torn tail must end the log
// cleanly, and no truncation may error — a torn write is a crash
// signature, not corruption.
func TestWALTornTail(t *testing.T) {
	want := walRecords()
	path := writeWAL(t, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record frame boundaries so we know how many records each prefix holds.
	bounds := []int{len(logMagic)}
	for _, r := range want {
		bounds = append(bounds, bounds[len(bounds)-1]+len(encodeLogRecord(r.FromVersion, r.Deltas)))
	}
	if bounds[len(bounds)-1] != len(full) {
		t.Fatalf("frame arithmetic off: %v vs %d bytes", bounds, len(full))
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadLog(OSFS, path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantN := 0
		for i := 1; i < len(bounds); i++ {
			if cut >= bounds[i] {
				wantN = i
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: %d records survive, want %d", cut, len(got), wantN)
		}
		assertRecords(t, got, want[:wantN])
	}
}

// TestWALFlippedBit: a checksum mismatch on the last record is torn (clean
// end), and records behind it still parse.
func TestWALFlippedBit(t *testing.T) {
	want := walRecords()
	path := writeWAL(t, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-1] ^= 0x40
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(OSFS, path)
	if err != nil {
		t.Fatal(err)
	}
	assertRecords(t, got, want[:len(want)-1])
}

// TestWALHostileBody: a record whose CRC matches but whose body does not
// parse is corruption, not a crash — ReadLog must error, never guess.
func TestWALHostileBody(t *testing.T) {
	hostileBodies := [][]byte{
		{0x80},                   // truncated fromVersion varint
		{0x01},                   // missing count
		{0x00, 0x05},             // count 5, zero bytes remain
		{0x00, 0x01, 0x06, 0xAA}, // delta claims 6 bytes, 1 remains
		{0x00, 0x00, 0xEE},       // trailing bytes after a valid record
	}
	for i, body := range hostileBodies {
		frame := binary.BigEndian.AppendUint32(nil, crc32.ChecksumIEEE(body))
		frame = binary.AppendUvarint(frame, uint64(len(body)))
		frame = append(frame, body...)
		path := filepath.Join(t.TempDir(), "hostile.pitract-log")
		if err := os.WriteFile(path, append(append([]byte(nil), logMagic...), frame...), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadLog(OSFS, path); err == nil {
			t.Fatalf("hostile body %d accepted", i)
		}
	}
}

// FuzzLogReplay feeds arbitrary bytes to the log parser. Properties: no
// panic; and whatever records come back must re-encode into a log that
// parses to the identical records (the parser and encoder agree).
func FuzzLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(logMagic))
	f.Add([]byte("SQLITE f3\x00\x00\x00"))
	valid := append([]byte(nil), logMagic...)
	for _, r := range walRecords() {
		valid = append(valid, encodeLogRecord(r.FromVersion, r.Deltas)...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[15] ^= 0x01
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.pitract-log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		recs, err := ReadLog(OSFS, path)
		if err != nil {
			return // rejected cleanly
		}
		// Round-trip: re-encoding the accepted records must reproduce them.
		re := append([]byte(nil), logMagic...)
		for _, r := range recs {
			re = append(re, encodeLogRecord(r.FromVersion, r.Deltas)...)
		}
		path2 := filepath.Join(dir, "re.pitract-log")
		if err := os.WriteFile(path2, re, 0o644); err != nil {
			t.Fatal(err)
		}
		recs2, err := ReadLog(OSFS, path2)
		if err != nil {
			t.Fatalf("re-encoded log rejected: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip lost records: %d != %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].FromVersion != recs[i].FromVersion || len(recs2[i].Deltas) != len(recs[i].Deltas) {
				t.Fatalf("record %d mutated in round trip", i)
			}
			for j := range recs[i].Deltas {
				if !bytes.Equal(recs2[i].Deltas[j], recs[i].Deltas[j]) {
					t.Fatalf("record %d delta %d mutated in round trip", i, j)
				}
			}
		}
	})
}
