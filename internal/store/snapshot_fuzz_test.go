package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot feeds the snapshot decoder arbitrary bytes: it must
// either return an error or a snapshot whose re-encoding decodes to the
// same fields — and it must never panic. The seed corpus (valid snapshots
// plus characteristic corruptions) runs on every plain `go test`;
// `go test -fuzz=FuzzDecodeSnapshot ./internal/store` explores further.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := EncodeSnapshot(&Snapshot{
		SchemeName: "point-selection/sorted-keys",
		Notes:      "O(|D| log |D|) / O(log |D|)",
		DataSum:    SumData([]byte("data")),
		Prep:       []byte{1, 2, 3},
	})
	f.Add(valid)
	f.Add(EncodeSnapshot(&Snapshot{}))
	f.Add([]byte{})
	f.Add([]byte("PITRACTS"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xFF))

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		re, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot failed to decode: %v", err)
		}
		if re.SchemeName != s.SchemeName || re.Notes != s.Notes ||
			re.DataSum != s.DataSum || !bytes.Equal(re.Prep, s.Prep) {
			t.Fatalf("round trip changed fields: %+v vs %+v", re, s)
		}
	})
}
