package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"pitract/internal/core"
)

// snapshotWithPrepSection frames an arbitrary (possibly hostile) prep
// section in an otherwise valid v3 snapshot — CRC intact, so the decoder
// reaches decodePrepSection instead of bouncing at the checksum.
func snapshotWithPrepSection(sec []byte) []byte {
	var sum DataChecksum
	header := core.PadPair([]byte("s"), []byte("n"))
	meta := binary.AppendUvarint(append([]byte(nil), sum[:]...), 0)
	payload := core.PadPair(header, core.PadPair(meta, sec))
	out := append([]byte(nil), snapshotMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// FuzzDecodeSnapshot feeds the snapshot decoder arbitrary bytes: it must
// either return an error or a snapshot whose re-encoding decodes to the
// same fields — and it must never panic. The seed corpus (valid snapshots
// plus characteristic corruptions) runs on every plain `go test`;
// `go test -fuzz=FuzzDecodeSnapshot ./internal/store` explores further.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := EncodeSnapshot(&Snapshot{
		SchemeName: "point-selection/sorted-keys",
		Notes:      "O(|D| log |D|) / O(log |D|)",
		DataSum:    SumData([]byte("data")),
		Prep:       []byte{1, 2, 3},
	})
	f.Add(valid)
	f.Add(EncodeSnapshot(&Snapshot{}))
	f.Add([]byte{})
	f.Add([]byte("PITRACTS"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xFF))

	// v3 compressed-section seeds: a snapshot whose Π is a sorted-key
	// artifact (triggers the delta-varint codec), the same snapshot under
	// the legacy raw layout, and snapshots whose prep sections carry hostile
	// codec bytes or record counts.
	sorted := sortedPrep([]int64{1, 2, 3, 500, 1 << 40})
	compressed := EncodeSnapshot(&Snapshot{SchemeName: "point-selection/sorted-keys", Prep: sorted})
	f.Add(compressed)
	f.Add(encodeLegacySnapshot(&Snapshot{SchemeName: "point-selection/sorted-keys", Version: 3, Prep: sorted}, snapshotMagicV2, true))
	f.Add(encodeLegacySnapshot(&Snapshot{SchemeName: "legacy", Prep: []byte{1, 2, 3}}, snapshotMagicV1, false))
	f.Add(snapshotWithPrepSection([]byte{99, 1, 2, 3}))                                          // unknown codec
	f.Add(snapshotWithPrepSection(append([]byte{prepCodecDeltaVarint}, 0xff, 0xff, 0xff, 0x7f))) // count lie
	f.Add(snapshotWithPrepSection([]byte{prepCodecDeltaVarint, 2, 5}))                           // truncated body

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		re, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot failed to decode: %v", err)
		}
		if re.SchemeName != s.SchemeName || re.Notes != s.Notes ||
			re.DataSum != s.DataSum || !bytes.Equal(re.Prep, s.Prep) {
			t.Fatalf("round trip changed fields: %+v vs %+v", re, s)
		}
	})
}
