package faultfs

import (
	"errors"
	"io/fs"
	"testing"

	"pitract/internal/store"
)

// writeAll is a test helper: open-append, write, sync, close.
func writeAll(t *testing.T, f *FS, path string, b []byte) {
	t.Helper()
	h, err := f.OpenAppend(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := h.Write(b); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("sync %s: %v", path, err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

// TestDurabilityModel: content survives a restart only once Sync ran, and a
// brand-new file's entry survives only once SyncDir ran.
func TestDurabilityModel(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}

	// Entry made durable.
	writeAll(t, f, "/d/kept", []byte("payload"))
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	// Entry never made durable: written and synced after the last SyncDir.
	writeAll(t, f, "/d/lost", []byte("content"))
	// Written after the SyncDir but to an already-durable entry, with Sync:
	// content durability needs no further directory sync.
	h, err := f.OpenAppend("/d/kept")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h.Close()
	// Written but never synced: lost on restart even though entry durable.
	h2, err := f.OpenAppend("/d/kept")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Write([]byte("+unsynced")); err != nil {
		t.Fatal(err)
	}
	h2.Close()

	f.Restart()

	if _, err := f.ReadFile("/d/lost"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("entry without SyncDir survived restart: err=%v", err)
	}
	got, err := f.ReadFile("/d/kept")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload+more" {
		t.Fatalf("durable content = %q, want %q (synced appends kept, unsynced lost)", got, "payload+more")
	}
}

// TestRenameNeedsSyncDir is the regression model for the WriteFileAtomicFS
// directory-fsync bug: a rename whose directory is never synced vanishes on
// restart — the old name is still what the durable entry table holds.
func TestRenameNeedsSyncDir(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/old", []byte("v1"))
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}

	if err := f.Rename("/d/old", "/d/new"); err != nil {
		t.Fatal(err)
	}
	// Live view sees the rename immediately.
	if _, err := f.ReadFile("/d/new"); err != nil {
		t.Fatalf("live read after rename: %v", err)
	}

	f.Restart()
	if _, err := f.ReadFile("/d/new"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename without SyncDir survived restart: err=%v", err)
	}
	if got, err := f.ReadFile("/d/old"); err != nil || string(got) != "v1" {
		t.Fatalf("old entry should survive un-synced rename: %q, %v", got, err)
	}

	// With the directory sync the rename is durable.
	if err := f.Rename("/d/old", "/d/new"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f.Restart()
	if got, err := f.ReadFile("/d/new"); err != nil || string(got) != "v1" {
		t.Fatalf("synced rename lost: %q, %v", got, err)
	}
	if _, err := f.ReadFile("/d/old"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old entry should be gone after synced rename: err=%v", err)
	}
}

// TestRemoveNeedsSyncDir: a removal becomes durable only at SyncDir.
func TestRemoveNeedsSyncDir(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/x", []byte("v"))
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	f.Restart()
	if got, err := f.ReadFile("/d/x"); err != nil || string(got) != "v" {
		t.Fatalf("un-synced removal should not be durable: %q, %v", got, err)
	}
	if err := f.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f.Restart()
	if _, err := f.ReadFile("/d/x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("synced removal should be durable: err=%v", err)
	}
}

// TestCrashAfterOps: the crashing op does not execute, later ops return
// ErrCrashed, and Restart reopens exactly the durable image.
func TestCrashAfterOps(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/a", []byte("safe"))
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}

	f.CrashAfterOps(f.Ops()) // next mutating op crashes
	if err := f.Remove("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing op: err=%v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after armed crash fired")
	}
	if _, err := f.OpenAppend("/d/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: err=%v, want ErrCrashed", err)
	}
	if _, err := f.ReadFile("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: err=%v, want ErrCrashed", err)
	}

	f.Restart()
	if f.Crashed() {
		t.Fatal("Crashed() should clear on Restart")
	}
	if got, err := f.ReadFile("/d/a"); err != nil || string(got) != "safe" {
		t.Fatalf("durable image after crash: %q, %v", got, err)
	}
}

// TestTornWrite: a Write at the crash point leaves its configured prefix in
// the durable image of an already-durable file — the torn log tail.
func TestTornWrite(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/log", []byte("HEAD"))
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}

	h, err := f.OpenAppend("/d/log")
	if err != nil {
		t.Fatal(err)
	}
	f.SetTornBytes(3)
	f.CrashAfterOps(f.Ops())
	if _, err := h.Write([]byte("RECORD")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: err=%v, want ErrCrashed", err)
	}

	f.Restart()
	got, err := f.ReadFile("/d/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "HEADREC" {
		t.Fatalf("torn tail = %q, want %q", got, "HEADREC")
	}
}

// TestFailAfterWrites: an exhausted write budget injects an error without
// crashing the medium; operation continues to work afterwards.
func TestFailAfterWrites(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	h, err := f.OpenAppend("/d/x")
	if err != nil {
		t.Fatal(err)
	}
	f.FailAfterWrites(1)
	if _, err := h.Write([]byte("ok")); err != nil {
		t.Fatalf("first write within budget: %v", err)
	}
	if _, err := h.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: err=%v, want ErrInjected", err)
	}
	if f.Crashed() {
		t.Fatal("injected write failure must not crash the medium")
	}
	f.FailAfterWrites(-1)
	if _, err := h.Write([]byte("again")); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
	if got, _ := f.ReadFile("/d/x"); string(got) != "okagain" {
		t.Fatalf("content = %q, want %q (failed write must not land)", got, "okagain")
	}
}

// TestLieOnSync: an acknowledged Sync that did nothing — after restart the
// "synced" content is gone even though every call returned nil.
func TestLieOnSync(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/x", []byte("base"))
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}

	f.LieOnSync(true)
	h, err := f.OpenAppend("/d/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("+ack")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("lying sync must still acknowledge: %v", err)
	}
	h.Close()

	f.Restart()
	if got, _ := f.ReadFile("/d/x"); string(got) != "base" {
		t.Fatalf("content = %q, want %q (lying fsync loses the append)", got, "base")
	}
}

// TestWriteFileAtomicFSDurable: the store's atomic writer, run over faultfs,
// is durable end-to-end — this is the integration pin for the directory
// fsync in WriteFileAtomicFS (drop the SyncDir call and this fails).
func TestWriteFileAtomicFSDurable(t *testing.T) {
	f := New()
	if err := store.WriteFileAtomicFS(f, "/data/snap.pitract", []byte("snapshot-v1")); err != nil {
		t.Fatal(err)
	}
	f.Restart()
	got, err := f.ReadFile("/data/snap.pitract")
	if err != nil {
		t.Fatalf("atomic write lost on restart (missing directory fsync?): %v", err)
	}
	if string(got) != "snapshot-v1" {
		t.Fatalf("content = %q, want %q", got, "snapshot-v1")
	}
	// Overwrite; any crash image is either v1 or v2, never torn.
	if err := store.WriteFileAtomicFS(f, "/data/snap.pitract", []byte("snapshot-v2!")); err != nil {
		t.Fatal(err)
	}
	f.Restart()
	if got, _ := f.ReadFile("/data/snap.pitract"); string(got) != "snapshot-v2!" {
		t.Fatalf("content = %q, want %q", got, "snapshot-v2!")
	}
}

// TestWriteFileAtomicFSCrashSweep: kill WriteFileAtomicFS at every single
// operation index; after every crash the durable image must hold either the
// complete old content or the complete new content — never a torn or
// missing file.
func TestWriteFileAtomicFSCrashSweep(t *testing.T) {
	// Dry run to count ops.
	dry := New()
	if err := store.WriteFileAtomicFS(dry, "/data/f.pitract", []byte("OLD")); err != nil {
		t.Fatal(err)
	}
	before := dry.Ops()
	if err := store.WriteFileAtomicFS(dry, "/data/f.pitract", []byte("NEWCONTENT")); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops() - before
	if total < 5 {
		t.Fatalf("expected ≥5 ops in an atomic write, got %d (trace %v)", total, dry.Trace())
	}

	for k := 0; k < total; k++ {
		f := New()
		if err := store.WriteFileAtomicFS(f, "/data/f.pitract", []byte("OLD")); err != nil {
			t.Fatal(err)
		}
		f.SetTornBytes(4)
		f.CrashAfterOps(f.Ops() + k)
		err := store.WriteFileAtomicFS(f, "/data/f.pitract", []byte("NEWCONTENT"))
		if !f.Crashed() {
			t.Fatalf("crashAt=%d: crash did not fire (err=%v)", k, err)
		}
		f.Restart()
		got, rerr := f.ReadFile("/data/f.pitract")
		if rerr != nil {
			t.Fatalf("crashAt=%d: file missing after crash: %v", k, rerr)
		}
		if s := string(got); s != "OLD" && s != "NEWCONTENT" {
			t.Fatalf("crashAt=%d: torn content %q", k, s)
		}
	}
}

// TestTrace: operations are recorded with names and paths, so crash
// matrices can locate protocol boundaries by path suffix.
func TestTrace(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/x.pitract-log", []byte("r"))
	tr := f.Trace()
	want := []string{"mkdir /d", "open /d/x.pitract-log", "write /d/x.pitract-log", "sync /d/x.pitract-log"}
	if len(tr) != len(want) {
		t.Fatalf("trace = %v, want %v", tr, want)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q", i, tr[i], want[i])
		}
	}
	if f.Ops() != 4 {
		t.Fatalf("Ops() = %d, want 4", f.Ops())
	}
}

// TestReadDirNames: live listing, including subdirectories.
func TestReadDirNames(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d/sub"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "/d/b", []byte("1"))
	writeAll(t, f, "/d/a", []byte("2"))
	names, err := f.ReadDirNames("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "sub"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := f.ReadDirNames("/absent"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("absent dir: err=%v", err)
	}
}
