// Package faultfs is an in-memory, fault-injecting implementation of the
// persistence layer's file-system seam (store.FS). It models exactly the
// distinction journaled storage lives and dies by: the *live* namespace
// (what reads observe now) versus the *durable* namespace (what survives a
// crash). Content becomes durable on File.Sync; directory entries —
// creations, renames, removals — become durable on SyncDir; everything
// else is lost at a crash.
//
// The crash-matrix suites drive it three ways:
//
//   - CrashAfterOps(n) kills the medium at the nth mutating operation: the
//     op does not execute (except a torn Write, whose configured prefix
//     reaches the durable image — the torn-tail crash signature a delta
//     log must absorb), and every later operation fails with ErrCrashed.
//     Restart then reopens the durable image as the new live state, which
//     is precisely what a process restart sees.
//   - FailAfterWrites(n) makes the (n+1)th Write return an injected error
//     without crashing — the I/O-failure path (PersistError, HTTP 500).
//   - LieOnSync makes Sync acknowledge without making content durable —
//     the lying-fsync hardware that turns an acknowledged commit into a
//     replay-time gap.
//
// Trace records every operation (name + path), so a suite can first dry-run
// a scenario to count its operations, then sweep crashAt over every index —
// a kill point at every boundary of the commit protocol, not just the ones
// someone thought to name.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pitract/internal/store"
)

// ErrCrashed is returned by every operation after the injected crash point.
var ErrCrashed = errors.New("faultfs: medium crashed")

// ErrInjected is returned by a Write that hit the FailAfterWrites budget,
// and by a ReadFile that drew a probabilistic read error (SetReadFaults).
var ErrInjected = errors.New("faultfs: injected write failure")

// node is one live file: its current content and the prefix of it known to
// be durable for this inode (advanced by Sync; carried across Rename).
type node struct {
	data   []byte
	synced []byte
}

// FS is the fault-injecting medium. The zero value is not usable; call New.
// It implements store.FS.
type FS struct {
	mu sync.Mutex

	live    map[string]*node  // live namespace: path -> file
	durable map[string][]byte // crash image: path -> content
	dirs    map[string]bool   // existing directories (durable once created)

	ops     int      // executed mutating operations
	trace   []string // "op path" per executed mutating operation
	crashAt int      // crash when ops reaches this count; <0 = never
	crashed bool

	writes     int // executed Write calls
	failWrites int // inject an error on the (failWrites+1)th Write; <0 = never

	tornBytes int // bytes of a crashing Write that reach the durable image
	lieOnSync bool

	readFaults ReadFaults
	readRNG    *rand.Rand
}

// ReadFaults arms probabilistic fault injection on the read path — the
// serve-path chaos the X11 harness drives: transient read errors
// (flaky medium), torn reads (a reader racing a non-atomic writer or a
// medium returning short), and injected latency (a disk that went slow
// rather than loud). Rates are probabilities in [0,1] per ReadFile
// call; Seed makes a chaos run reproducible.
type ReadFaults struct {
	Seed        int64
	ErrorRate   float64       // ReadFile fails with ErrInjected
	TornRate    float64       // ReadFile returns a truncated prefix
	Latency     time.Duration // added to a LatencyRate fraction of reads
	LatencyRate float64
}

// SetReadFaults arms (or, with the zero value, disarms) probabilistic
// read-path faults. Decisions are drawn from a seeded generator under
// the medium's lock; the injected sleep happens outside it.
func (f *FS) SetReadFaults(rf ReadFaults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readFaults = rf
	f.readRNG = rand.New(rand.NewSource(rf.Seed))
}

// CorruptByte flips one byte of path in both the live and durable
// images — the corrupt-at-rest artifact (bit rot, foreign scribble)
// that quarantine-and-heal exists for. Reports whether the path existed
// and was long enough.
func (f *FS) CorruptByte(path string, off int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := filepath.Clean(path)
	ok := false
	if n, exists := f.live[p]; exists && off < len(n.data) {
		n.data[off] ^= 0xFF
		ok = true
	}
	if b, exists := f.durable[p]; exists && off < len(b) {
		b[off] ^= 0xFF
		ok = true
	}
	return ok
}

// New returns an empty medium with no faults armed.
func New() *FS {
	return &FS{
		live:       map[string]*node{},
		durable:    map[string][]byte{},
		dirs:       map[string]bool{"/": true, ".": true},
		crashAt:    -1,
		failWrites: -1,
	}
}

// CrashAfterOps arms a crash at the nth (0-based) mutating operation: that
// operation does not execute — except a Write, whose configured torn
// prefix reaches the durable image — and every operation after it returns
// ErrCrashed. n < 0 disarms.
func (f *FS) CrashAfterOps(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// SetTornBytes sets how many bytes of a crashing Write reach the durable
// image (0 = the write vanishes entirely; clamped to the write's length).
func (f *FS) SetTornBytes(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornBytes = k
}

// FailAfterWrites makes the (n+1)th Write call fail with ErrInjected,
// without crashing the medium. n < 0 disarms.
func (f *FS) FailAfterWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites = n
}

// LieOnSync makes File.Sync and SyncDir acknowledge without making
// anything durable — the lying-fsync fault.
func (f *FS) LieOnSync(lie bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lieOnSync = lie
}

// Crashed reports whether the armed crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops reports how many mutating operations have executed.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Trace returns a copy of the executed-operation log ("op path" entries).
func (f *FS) Trace() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trace...)
}

// Restart simulates a process restart after a crash (or a clean stop): the
// durable image becomes the live namespace, the crash flag clears, and the
// operation counter and trace reset. Armed fault budgets are disarmed; the
// test re-arms what the next phase needs.
func (f *FS) Restart() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.live = make(map[string]*node, len(f.durable))
	for p, b := range f.durable {
		c := append([]byte(nil), b...)
		f.live[p] = &node{data: c, synced: append([]byte(nil), c...)}
	}
	f.crashed = false
	f.crashAt = -1
	f.failWrites = -1
	f.readFaults = ReadFaults{}
	f.readRNG = nil
	f.ops = 0
	f.writes = 0
	f.trace = f.trace[:0]
}

// DurableBytes returns the durable image of path (what a restart would
// read), and whether the entry exists at all.
func (f *FS) DurableBytes(path string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.durable[filepath.Clean(path)]
	return append([]byte(nil), b...), ok
}

// step gates one mutating operation: records it, fires an armed crash, and
// refuses everything after the crash. It reports whether the operation
// should execute. Callers hold f.mu.
func (f *FS) step(op, path string) (bool, error) {
	if f.crashed {
		return false, fmt.Errorf("%s %s: %w", op, path, ErrCrashed)
	}
	f.trace = append(f.trace, op+" "+path)
	if f.crashAt >= 0 && f.ops == f.crashAt {
		f.crashed = true
		f.ops++
		return false, fmt.Errorf("%s %s: %w", op, path, ErrCrashed)
	}
	f.ops++
	return true, nil
}

// ReadFile implements store.FS (reads are not counted as operations — they
// have no durable effect — but a crashed medium refuses them too). Armed
// read faults (SetReadFaults) may delay the read, fail it with
// ErrInjected, or return a torn prefix.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, fmt.Errorf("read %s: %w", name, ErrCrashed)
	}
	var sleep time.Duration
	var fail, torn bool
	tornFrac := 0.0
	if f.readRNG != nil {
		rf := f.readFaults
		if rf.LatencyRate > 0 && f.readRNG.Float64() < rf.LatencyRate {
			sleep = rf.Latency
		}
		if rf.ErrorRate > 0 && f.readRNG.Float64() < rf.ErrorRate {
			fail = true
		} else if rf.TornRate > 0 && f.readRNG.Float64() < rf.TornRate {
			torn = true
			tornFrac = f.readRNG.Float64()
		}
	}
	n, ok := f.live[filepath.Clean(name)]
	var data []byte
	if ok {
		data = append([]byte(nil), n.data...)
	}
	f.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return nil, fmt.Errorf("read %s: %w", name, ErrInjected)
	}
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	if torn {
		return data[:int(tornFrac*float64(len(data)))], nil
	}
	return data, nil
}

// ReadDirNames implements store.FS.
func (f *FS) ReadDirNames(name string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, fmt.Errorf("readdir %s: %w", name, ErrCrashed)
	}
	dir := filepath.Clean(name)
	if !f.dirs[dir] {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	seen := map[string]bool{}
	for p := range f.live {
		if filepath.Dir(p) == dir {
			seen[filepath.Base(p)] = true
		}
	}
	for d := range f.dirs {
		if d != dir && filepath.Dir(d) == dir {
			seen[filepath.Base(d)] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Size implements store.FS.
func (f *FS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, fmt.Errorf("stat %s: %w", name, ErrCrashed)
	}
	n, ok := f.live[filepath.Clean(name)]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return int64(len(n.data)), nil
}

// MkdirAll implements store.FS. Directories are durable once created — the
// suites crash file and entry operations, not directory creation.
func (f *FS) MkdirAll(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ok, err := f.step("mkdir", name)
	if !ok {
		return err
	}
	p := filepath.Clean(name)
	for p != "/" && p != "." && p != "" {
		f.dirs[p] = true
		p = filepath.Dir(p)
	}
	return nil
}

// CreateTemp implements store.FS.
func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := filepath.Clean(dir)
	ok, err := f.step("create", d+"/"+pattern)
	if !ok {
		return nil, err
	}
	if !f.dirs[d] {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrNotExist}
	}
	for i := 0; ; i++ {
		name := strings.Replace(pattern, "*", fmt.Sprintf("%06d", len(f.trace)*1000+i), 1)
		path := filepath.Join(d, name)
		if _, exists := f.live[path]; !exists {
			f.live[path] = &node{}
			return &file{fs: f, path: path}, nil
		}
	}
}

// OpenAppend implements store.FS.
func (f *FS) OpenAppend(name string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := filepath.Clean(name)
	ok, err := f.step("open", path)
	if !ok {
		return nil, err
	}
	if _, exists := f.live[path]; !exists {
		if !f.dirs[filepath.Dir(path)] {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		f.live[path] = &node{}
	}
	return &file{fs: f, path: path}, nil
}

// Rename implements store.FS: the live entry moves (with its synced inode
// content); the durable namespace does not change until SyncDir — the loss
// window the WriteFileAtomicFS directory fsync exists to close.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	op, np := filepath.Clean(oldpath), filepath.Clean(newpath)
	ok, err := f.step("rename", op+" -> "+np)
	if !ok {
		return err
	}
	n, exists := f.live[op]
	if !exists {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(f.live, op)
	f.live[np] = n
	return nil
}

// Remove implements store.FS; removal of the durable entry waits for
// SyncDir, like every other entry change.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := filepath.Clean(name)
	ok, err := f.step("remove", path)
	if !ok {
		return err
	}
	if _, exists := f.live[path]; !exists {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(f.live, path)
	return nil
}

// SyncDir implements store.FS: the directory's durable entry table becomes
// its live one — new entries appear (with their synced inode content),
// removed or renamed-away entries disappear. A lying fsync acknowledges
// without doing any of that.
func (f *FS) SyncDir(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir := filepath.Clean(name)
	ok, err := f.step("syncdir", dir)
	if !ok {
		return err
	}
	if !f.dirs[dir] {
		return &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	if f.lieOnSync {
		return nil
	}
	for p := range f.durable {
		if filepath.Dir(p) == dir {
			if _, live := f.live[p]; !live {
				delete(f.durable, p)
			}
		}
	}
	for p, n := range f.live {
		if filepath.Dir(p) == dir {
			f.durable[p] = append([]byte(nil), n.synced...)
		}
	}
	return nil
}

// file is one open handle.
type file struct {
	fs   *FS
	path string
}

// Write implements store.File. A crash here is the torn-write case: the
// configured prefix of b reaches the durable image when the file's entry
// is already durable (an existing log file), modelling an append cut short
// by power loss.
func (fl *file) Write(b []byte) (int, error) {
	f := fl.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, fmt.Errorf("write %s: %w", fl.path, ErrCrashed)
	}
	if f.failWrites >= 0 && f.writes >= f.failWrites {
		f.trace = append(f.trace, "write(fail) "+fl.path)
		return 0, fmt.Errorf("write %s: %w", fl.path, ErrInjected)
	}
	ok, err := f.step("write", fl.path)
	if !ok {
		// Torn write: a prefix of this write lands on the platter even
		// though the call never returned.
		if n, exists := f.live[fl.path]; exists {
			k := f.tornBytes
			if k > len(b) {
				k = len(b)
			}
			if k > 0 {
				n.synced = append(n.synced, b[:k]...)
				n.data = append(n.data, b[:k]...)
				if _, durable := f.durable[fl.path]; durable {
					f.durable[fl.path] = append([]byte(nil), n.synced...)
				}
			}
		}
		return 0, err
	}
	f.writes++
	n, exists := f.live[fl.path]
	if !exists {
		return 0, &fs.PathError{Op: "write", Path: fl.path, Err: fs.ErrNotExist}
	}
	n.data = append(n.data, b...)
	return len(b), nil
}

// Sync implements store.File: the inode's content becomes durable, and —
// when the entry itself is already durable — the crash image updates too.
// A lying fsync acknowledges without either.
func (fl *file) Sync() error {
	f := fl.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	ok, err := f.step("sync", fl.path)
	if !ok {
		return err
	}
	if f.lieOnSync {
		return nil
	}
	n, exists := f.live[fl.path]
	if !exists {
		return &fs.PathError{Op: "sync", Path: fl.path, Err: fs.ErrNotExist}
	}
	n.synced = append([]byte(nil), n.data...)
	if _, durable := f.durable[fl.path]; durable {
		f.durable[fl.path] = append([]byte(nil), n.synced...)
	}
	return nil
}

// Close implements store.File (not a counted operation: it has no durable
// effect in this model, and counting it would put kill points on no-ops).
func (fl *file) Close() error {
	f := fl.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("close %s: %w", fl.path, ErrCrashed)
	}
	return nil
}

// Name implements store.File.
func (fl *file) Name() string { return fl.path }

var _ store.FS = (*FS)(nil)
