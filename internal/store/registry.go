package store

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net/url"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pitract/internal/core"
	"pitract/internal/obs"
	"pitract/internal/schemes"
)

// Stage histograms and counters for the registration/maintenance path,
// resolved once at init so the hot paths never touch the registry map.
var (
	obsPreprocess   = obs.Stage(obs.StagePreprocess)
	obsSnapshotLoad = obs.Stage(obs.StageSnapshotLoad)
	obsSnapshotSave = obs.Stage(obs.StageSnapshotSave)
	obsWarm         = obs.Stage(obs.StageWarm)

	obsPreprocessTotal = obs.Default.Counter("pitract_preprocess_total",
		"Scheme Preprocess runs across all registries in this process.")
	obsSnapshotLoadTotal = obs.Default.Counter("pitract_snapshot_loads_total",
		"Stores reloaded from snapshots instead of preprocessed.")
	obsDeltasTotal = obs.Default.Counter("pitract_deltas_applied_total",
		"Deltas applied through incremental maintenance.")
	obsDeltasDeletedTotal = obs.Default.Counter("pitract_deltas_deleted_total",
		"Delete-kind deltas applied through incremental maintenance.")
	obsLogReplay        = obs.Stage(obs.StageLogReplay)
	obsLogReplayedTotal = obs.Default.Counter("pitract_log_records_replayed_total",
		"Delta-log records replayed over loaded snapshots at registry open.")
)

// Dataset is anything the registry can serve queries from: a plain Store
// (one preprocessed artifact) or a composite such as internal/shard's
// ShardedStore (n per-shard artifacts behind one catalog entry). The
// answer-path methods must be safe for concurrent use; the descriptive
// methods must be cheap and never block.
type Dataset interface {
	// DatasetID is the registry identifier the dataset was registered under.
	DatasetID() string
	// SchemeName names the scheme that preprocessed — and answers against —
	// the dataset.
	SchemeName() string
	// DataDigest is the SHA-256 of the raw data the dataset was built from;
	// re-registration uses it to refuse serving a stale Π(D) as fresh.
	DataDigest() DataChecksum
	// PrepBytes reports the total size of the preprocessed artifact(s).
	PrepBytes() int
	// ShardCount reports how many preprocessed stores back the dataset
	// (1 for a plain Store).
	ShardCount() int
	// WasLoaded reports whether the dataset was reloaded from snapshots
	// instead of freshly preprocessed.
	WasLoaded() bool
	// Version is the dataset's monotonic maintenance version: 0 as
	// registered, bumped once per applied delta (see Registry.ApplyDelta).
	// Restarts restore it from the snapshot, so it never goes backwards
	// over the lifetime of the persisted dataset.
	Version() uint64
	// Answer decides one query.
	Answer(q []byte) (bool, error)
	// AnswerBatch answers queries concurrently through worker pools;
	// parallelism <= 0 selects GOMAXPROCS.
	AnswerBatch(queries [][]byte, parallelism int) ([]bool, error)
}

// DeltaDataset is the registry's mutation seam: datasets that can maintain
// Π(D ⊕ ∆D) in place implement it — a plain Store for any scheme with an
// incremental form, and internal/shard's ShardedStore for schemes with
// sharded delta routing. ApplyDeltas must be atomic (all deltas and the
// persisted artifact commit together, or nothing changes) and must never
// let a concurrent query observe a partially applied Π.
type DeltaDataset interface {
	Dataset
	// ApplyDeltas applies the deltas in order through the scheme's
	// incremental form, persisting the maintained artifact on med (nil or
	// zero Medium = memory only), and returns the new maintenance version.
	// With a persistent medium the batch is appended to the dataset's
	// write-ahead delta log (fsynced) before any served state changes — the
	// durable commit point — and checkpointed on the medium's cadence. ctx
	// bounds the work: a deadline or cancellation between deltas aborts the
	// whole batch with nothing applied (deltas are the cancellation
	// granularity — a single delta application is never torn).
	ApplyDeltas(ctx context.Context, inc *core.IncrementalScheme, deltas [][]byte, med *Medium) (uint64, error)
}

// Registry maps dataset IDs to preprocessed datasets. Registering a dataset
// preprocesses it exactly once — concurrent registrations of the same ID
// share one build and all receive the same memoized dataset — and, when the
// registry has a data directory, persists the result as snapshot file(s) so
// a restarted process reloads Π(D) instead of recomputing it.
//
// Plain (single-store) registration goes through Register; composite
// datasets (sharded stores) plug in through RegisterDataset, which carries
// the same one-catalog-entry, one-build-per-ID guarantee for any Dataset
// implementation.
//
// The registry is safe for concurrent use; Answer paths never hold the
// registry lock (the preprocessed bytes are immutable).
type Registry struct {
	med *Medium // nil or zero Dir = memory-only, no persistence

	mu      sync.Mutex
	entries map[string]*regEntry
	// incResolver maps a scheme name to its incremental form for
	// ApplyDelta. It defaults to the built-in schemes catalog
	// (schemes.IncrementalForScheme); SetIncrementalResolver lets callers
	// registering custom core.Scheme values plug in their own.
	incResolver func(string) *core.IncrementalScheme

	preprocessCount atomic.Int64
	loadCount       atomic.Int64
	deltaCount      atomic.Int64
	deleteCount     atomic.Int64
	replayCount     atomic.Int64
	quarantineCount atomic.Int64

	// breakerMu guards the per-dataset circuit breakers separately from
	// the entries mutex: breaker decisions sit on the hot answer path and
	// must never contend with builds.
	breakerMu  sync.Mutex
	breakers   map[string]*Breaker
	breakerCfg BreakerConfig
}

// regEntry is a future for one dataset: done closes once ds/err are set,
// so concurrent registrations of the same ID wait instead of preprocessing
// again.
type regEntry struct {
	done chan struct{}
	ds   Dataset
	err  error
	// abandoned (guarded by the registry mutex) marks a build whose
	// admitting registration ran out of budget: the build finishes — it
	// cannot be interrupted mid-Preprocess — but its result is dropped
	// instead of memoized, so a budget-exceeded registration leaves no
	// catalog entry.
	abandoned bool
}

// NewRegistry returns a registry persisting snapshots (and write-ahead
// delta logs) under dir on the real disk; dir == "" keeps every store in
// memory only.
func NewRegistry(dir string) *Registry {
	return NewRegistryMedium(DiskMedium(dir))
}

// NewRegistryMedium is NewRegistry on an explicit persistence medium — the
// seam the crash-injection harness uses to run the full durable protocol
// (snapshots, delta logs, checkpoints, replay) against a fault-injecting
// file layer. A nil med is memory-only.
func NewRegistryMedium(med *Medium) *Registry {
	if med == nil {
		med = &Medium{}
	}
	return &Registry{med: med, entries: map[string]*regEntry{}}
}

// Medium exposes the registry's persistence medium, so composite
// registrations (internal/shard) persist through the same file layer and
// checkpoint cadence the registry itself uses.
func (r *Registry) Medium() *Medium { return r.med }

// SetCheckpointEvery sets how many delta-log records may accumulate per
// dataset before its snapshot is rewritten and the log truncated (values
// < 1 mean 1 — checkpoint on every PATCH). Set it before serving traffic;
// it is not synchronized against in-flight maintenance.
func (r *Registry) SetCheckpointEvery(n int) { r.med.CheckpointEvery = n }

// SetIncrementalResolver overrides how ApplyDelta resolves a scheme's
// incremental form by name (nil restores the built-in schemes catalog).
// Callers serving custom schemes use it to make their datasets
// maintainable; set it before serving traffic.
func (r *Registry) SetIncrementalResolver(f func(string) *core.IncrementalScheme) {
	r.mu.Lock()
	r.incResolver = f
	r.mu.Unlock()
}

// IncrementalFor resolves a scheme's incremental form through the
// registry's resolver (the built-in schemes catalog unless
// SetIncrementalResolver overrode it). Composite registrations
// (internal/shard) use it to replay a sharded dataset's delta log with the
// same resolution ApplyDelta will serve with.
func (r *Registry) IncrementalFor(name string) *core.IncrementalScheme {
	r.mu.Lock()
	f := r.incResolver
	r.mu.Unlock()
	if f == nil {
		f = schemes.IncrementalForScheme
	}
	return f(name)
}

// Dir reports the snapshot directory ("" when memory-only).
func (r *Registry) Dir() string { return r.med.Dir }

// SnapshotPath maps a dataset ID to its snapshot file under dir. IDs are
// arbitrary strings, so the filename is the ID path-escaped (keeps readable
// IDs readable, makes hostile ones safe). It is exported so the delta
// maintenance path (Store.ApplyDeltas) re-snapshots to exactly the file a
// restarted registry will reload.
func SnapshotPath(dir, id string) string {
	return filepath.Join(dir, url.PathEscape(id)+".pitract")
}

// snapshotPath is SnapshotPath under the registry's own directory.
func (r *Registry) snapshotPath(id string) string {
	return SnapshotPath(r.med.Dir, id)
}

// RegisterDataset returns the dataset registered under id, building it on
// first call. compat is consulted when id already has a completed entry: it
// decides whether the existing dataset satisfies this registration (nil
// accepts anything). build runs at most once per id across any number of
// concurrent registrations; a failed or panicking build is not memoized, so
// a later corrected attempt can retry.
//
// This is the generic seam plain Register and internal/shard's sharded
// registration both ride: one catalog entry per ID, one build per ID, and
// Get/Answer paths that never observe a half-built dataset.
func (r *Registry) RegisterDataset(id string, compat func(Dataset) error, build func() (Dataset, error)) (Dataset, error) {
	return r.RegisterDatasetContext(context.Background(), id, compat, build)
}

// RegisterDatasetContext is RegisterDataset under a request budget: when
// ctx expires before the build completes, the call returns a *BudgetError
// and the in-flight build is abandoned — it runs to completion (Preprocess
// cannot be interrupted mid-flight) but its result is dropped instead of
// memoized, so a budget-exceeded registration leaves no catalog entry and
// the id stays free for a retried (or better-budgeted) attempt. A waiter
// whose ctx expires while someone else's build is in flight gives up
// without abandoning that build — the budget belongs to the registration
// that started it.
func (r *Registry) RegisterDatasetContext(ctx context.Context, id string, compat func(Dataset) error, build func() (Dataset, error)) (Dataset, error) {
	if build == nil {
		return nil, fmt.Errorf("store: register %q: nil build function", id)
	}
	if err := ctx.Err(); err != nil {
		return nil, &BudgetError{Op: "register", ID: id, Err: err}
	}
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		r.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, &BudgetError{Op: "register", ID: id, Err: ctx.Err()}
		}
		if e.err != nil {
			return nil, e.err
		}
		if compat != nil {
			if err := compat(e.ds); err != nil {
				return nil, err
			}
		}
		return e.ds, nil
	}
	e := &regEntry{done: make(chan struct{})}
	r.entries[id] = e
	r.mu.Unlock()

	go r.runBuild(e, id, build)
	select {
	case <-e.done:
		return e.ds, e.err
	case <-ctx.Done():
		r.abandon(e, id)
		return nil, &BudgetError{Op: "register", ID: id, Err: ctx.Err()}
	}
}

// runBuild executes one registration's build and commits (or drops) its
// result. The deferred block must run even if build panics (a scheme
// Preprocess on hostile data can, e.g. makeslice out of range): otherwise
// e.done is never closed and every future Register/Get for this id blocks
// forever. The panic is converted to an error so one bad registration
// cannot wedge the dataset or kill a serving process. The commit decision
// (memoize vs drop) and close(e.done) happen under the registry mutex, so
// it cannot race an abandon from the admitting registration's expired
// budget.
func (r *Registry) runBuild(e *regEntry, id string, build func() (Dataset, error)) {
	defer func() {
		if p := recover(); p != nil {
			e.err = fmt.Errorf("store: register %q: build panicked: %v", id, p)
		}
		r.mu.Lock()
		if e.err != nil {
			// Failed registrations are not memoized: drop the entry so a
			// later attempt (fixed data, fixed scheme) can retry.
			e.ds = nil
			delete(r.entries, id)
		} else if e.abandoned {
			// The admitting registration ran out of budget: the result is
			// dropped, not memoized. Waiters already blocked on e.done still
			// receive the built dataset — only the catalog forgets it.
			delete(r.entries, id)
		}
		close(e.done)
		r.mu.Unlock()
	}()
	e.ds, e.err = build()
}

// abandon marks e's build as over budget. Under the registry mutex either
// the build has not committed yet — the abandoned flag makes its commit
// drop the entry — or it already has, in which case the entry is evicted
// here, so in every interleaving the budget-exceeded registration leaves no
// catalog entry.
func (r *Registry) abandon(e *regEntry, id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-e.done:
		if e.err == nil {
			if cur, ok := r.entries[id]; ok && cur == e {
				delete(r.entries, id)
			}
		}
	default:
		e.abandoned = true
	}
}

// Register returns the preprocessed store for id, creating it on first
// call: reload from a fresh snapshot if the registry is persistent and one
// matches (same scheme, same data digest), otherwise run scheme.Preprocess
// and persist the result. Re-registering an existing id with the same
// scheme and the same data returns the memoized store; a different scheme
// name, a different data digest, or an id held by a sharded dataset is an
// error rather than a silent answer-path swap or a stale Π(D) served as
// fresh.
func (r *Registry) Register(id string, scheme *core.Scheme, data []byte) (*Store, error) {
	return r.RegisterContext(context.Background(), id, scheme, data)
}

// RegisterContext is Register under a request budget: when ctx expires
// before preprocessing completes the call returns a *BudgetError and the
// build is abandoned — it finishes but is not memoized, so no catalog
// entry remains (see RegisterDatasetContext). The HTTP layer threads each
// registration request's deadline through here.
func (r *Registry) RegisterContext(ctx context.Context, id string, scheme *core.Scheme, data []byte) (*Store, error) {
	if scheme == nil {
		return nil, fmt.Errorf("store: register %q: nil scheme", id)
	}
	sum := SumData(data)
	ds, err := r.RegisterDatasetContext(ctx, id,
		func(d Dataset) error {
			if d.SchemeName() != scheme.Name() {
				return fmt.Errorf("store: dataset %q already registered with scheme %s (got %s)",
					id, d.SchemeName(), scheme.Name())
			}
			if d.DataDigest() != sum {
				return fmt.Errorf("store: dataset %q already registered with different data (re-register under a new id)", id)
			}
			// A ShardedStore with n=1 also reports ShardCount()==1, so the
			// type check — not the count — decides whether the plain path
			// owns this id.
			if _, ok := d.(*Store); !ok {
				return fmt.Errorf("store: dataset %q is registered sharded (%d shards); re-register through the sharded path",
					id, d.ShardCount())
			}
			return nil
		},
		func() (Dataset, error) {
			st, err := r.build(id, scheme, data)
			if err != nil {
				return nil, err
			}
			return st, nil
		})
	if err != nil {
		return nil, err
	}
	st, ok := ds.(*Store)
	if !ok {
		return nil, fmt.Errorf("store: dataset %q is not a plain store", id)
	}
	return st, nil
}

// rebuildAttempts bounds the jittered-backoff retry loop around
// persistence I/O on the quarantine-and-heal rebuild path (and the
// transient-read retry before declaring a snapshot unreadable).
const rebuildAttempts = 3

// rebuildBackoff sleeps before retry attempt (1-based), with ±50%
// jitter so concurrent rebuilds don't hammer a recovering medium in
// lockstep: 5ms, 10ms, 20ms… before jitter.
func rebuildBackoff(attempt int) {
	base := 5 * time.Millisecond << (attempt - 1)
	time.Sleep(time.Duration(float64(base) * (0.5 + rand.Float64())))
}

// loadSnapshot reads the dataset's snapshot, retrying transient I/O
// errors with jittered backoff. A missing file and a corrupt artifact
// (typed CorruptArtifactError) return immediately — neither gets better
// by retrying.
func (r *Registry) loadSnapshot(fsys FS, id string) (*Snapshot, error) {
	var err error
	for attempt := 1; ; attempt++ {
		var snap *Snapshot
		snap, err = LoadFS(fsys, r.snapshotPath(id))
		if err == nil {
			return snap, nil
		}
		var ce *CorruptArtifactError
		if errors.Is(err, fs.ErrNotExist) || errors.As(err, &ce) || attempt >= rebuildAttempts {
			return nil, err
		}
		rebuildBackoff(attempt)
	}
}

// build produces the store for one first-time registration.
func (r *Registry) build(id string, scheme *core.Scheme, data []byte) (*Store, error) {
	sum := SumData(data)
	// quarantined marks a registration that found its persisted snapshot
	// corrupt: the artifact was renamed aside and the store is rebuilt
	// from source — but the delta log (if any) survives and is replayed,
	// because its records are acknowledged batches for this same data.
	quarantined := false
	if r.med.persistent() {
		fsys := r.med.fs()
		loadStart := obs.Start()
		snap, lerr := r.loadSnapshot(fsys, id)
		if lerr == nil && snap.SchemeName == scheme.Name() && snap.DataSum == sum {
			obsSnapshotLoad.Since(loadStart)
			r.loadCount.Add(1)
			obsSnapshotLoadTotal.Inc()
			st := &Store{ID: id, Scheme: scheme, Prep: snap.Prep, DataSum: sum, Loaded: true}
			// A snapshot with Version > 0 is the maintained Π(D ⊕ ∆D…):
			// resuming from it (not from a re-preprocess of D) is the whole
			// point of persisting maintenance.
			st.SetVersion(snap.Version)
			// A crash between a durable log append and the checkpoint leaves
			// acknowledged batches only in the log: replay them on top of the
			// snapshot so the restart resumes at the exact applied version.
			if err := r.replayLog(st); err != nil {
				return nil, fmt.Errorf("store: register %q: %w", id, err)
			}
			// Decode Π into its prepared form while still inside the one
			// build this registration runs — queries then pay only probes.
			warmStart := obs.Start()
			st.Warm()
			obsWarm.Since(warmStart)
			return st, nil
		}
		var ce *CorruptArtifactError
		if errors.As(lerr, &ce) {
			// The snapshot failed CRC or decode: keep the bytes for
			// forensics under *.quarantine and rebuild Π from source
			// instead of erroring the dataset permanently.
			r.quarantineArtifact(fsys, r.snapshotPath(id), id)
			quarantined = true
		}
	}
	ppStart := obs.Start()
	pd, err := scheme.Preprocess(data)
	if err != nil {
		return nil, fmt.Errorf("store: register %q: preprocess (%s): %w", id, scheme.Name(), err)
	}
	obsPreprocess.Since(ppStart)
	r.preprocessCount.Add(1)
	obsPreprocessTotal.Inc()
	st := &Store{ID: id, Scheme: scheme, Prep: pd, DataSum: sum}
	if r.med.persistent() {
		fsys := r.med.fs()
		saveStart := obs.Start()
		saveErr := SaveFS(fsys, r.snapshotPath(id), st.Snapshot())
		for attempt := 1; saveErr != nil && quarantined && attempt < rebuildAttempts; attempt++ {
			// The heal path tolerates a still-flaky medium: retry the
			// rebuild's persistence with jittered backoff before giving up.
			rebuildBackoff(attempt)
			saveErr = SaveFS(fsys, r.snapshotPath(id), st.Snapshot())
		}
		if saveErr != nil {
			return nil, saveErr
		}
		obsSnapshotSave.Since(saveStart)
		if quarantined {
			// The surviving delta log holds acknowledged batches for this
			// same data digest, starting at the rebuilt version 0: replay
			// them instead of discarding acknowledged state.
			if err := r.replayLog(st); err != nil {
				return nil, fmt.Errorf("store: register %q: %w", id, err)
			}
		} else if err := RemoveLog(fsys, LogPath(r.med.Dir, id)); err != nil {
			// A fresh preprocess supersedes any delta log a previous
			// incarnation of this ID left behind (different data or
			// scheme): its records apply to a Π that no longer exists.
			return nil, err
		}
	}
	warmStart := obs.Start()
	st.Warm()
	obsWarm.Since(warmStart)
	return st, nil
}

// replayLog applies the delta-log tail to a snapshot-loaded store. Records
// wholly at or below the snapshot version are already checkpointed and
// skip; the record starting exactly at the loaded version applies
// (memory-only — the log already holds it durably); a gap or straddle
// means an acknowledged batch vanished (lying fsync, foreign truncation)
// and errors rather than silently resuming behind acknowledged state.
// After a non-empty replay the store checkpoints: snapshot rewritten at
// the replayed version, log truncated. A failed checkpoint here is not
// fatal — the log stays authoritative and the next restart replays again.
func (r *Registry) replayLog(st *Store) error {
	fsys := r.med.fs()
	logPath := LogPath(r.med.Dir, st.ID)
	records, err := ReadLog(fsys, logPath)
	if err != nil {
		var ce *CorruptArtifactError
		if errors.As(err, &ce) {
			// The log is structurally corrupt (foreign magic or a
			// CRC-valid-but-unparseable body — hostility, not a torn
			// crash). Its tail is unrecoverable either way: quarantine the
			// bytes for forensics and serve the checkpointed snapshot
			// rather than wedging the dataset.
			r.quarantineArtifact(fsys, logPath, st.ID)
			return nil
		}
		return err
	}
	if len(records) == 0 {
		return nil
	}
	inc := r.IncrementalFor(st.Scheme.Name())
	replayStart := obs.Start()
	replayed := 0
	for i, rec := range records {
		v := st.Version()
		end := rec.FromVersion + uint64(len(rec.Deltas))
		if end <= v {
			continue // fully inside the checkpoint
		}
		if rec.FromVersion != v {
			return fmt.Errorf("replay log %s: record %d covers versions [%d,%d) but the snapshot is at %d — an acknowledged batch is missing",
				logPath, i, rec.FromVersion, end, v)
		}
		if inc == nil {
			return fmt.Errorf("replay log %s: scheme %s has no incremental form to replay %d logged deltas",
				logPath, st.Scheme.Name(), len(rec.Deltas))
		}
		if _, err := st.ApplyDeltas(context.Background(), inc, rec.Deltas, nil); err != nil {
			return fmt.Errorf("replay log %s: record %d: %w", logPath, i, err)
		}
		replayed++
		r.replayCount.Add(1)
		obsLogReplayedTotal.Inc()
	}
	obsLogReplay.Since(replayStart)
	// Fold the replayed state into a checkpoint (or drop a log that was
	// entirely stale). Save-then-remove: losing the log before the snapshot
	// holds its records would lose acknowledged batches.
	if replayed > 0 {
		if err := SaveFS(fsys, r.snapshotPath(st.ID), st.Snapshot()); err != nil {
			obsCheckpointFails.Inc()
			return nil
		}
	}
	if err := RemoveLog(fsys, logPath); err != nil {
		obsCheckpointFails.Inc()
	}
	return nil
}

// ReplayCount reports how many delta-log records this registry has
// replayed over loaded snapshots — non-zero after a restart that recovered
// acknowledged-but-not-checkpointed batches.
func (r *Registry) ReplayCount() int64 { return r.replayCount.Load() }

// NoteReplay folds an externally replayed delta-log record into the
// registry's replay counters (one call per record); internal/shard's
// sharded replay reports through it, as NotePreprocess/NoteLoad do for
// builds and reloads.
func (r *Registry) NoteReplay() {
	r.replayCount.Add(1)
	obsLogReplayedTotal.Inc()
}

// NotFoundError reports an ApplyDelta against an id with no completed
// registration — the HTTP layer maps it to 404 where every other delta
// failure is a 409.
type NotFoundError struct{ ID string }

// Error implements error.
func (e *NotFoundError) Error() string { return fmt.Sprintf("store: dataset %q not registered", e.ID) }

// BudgetError reports a registration or maintenance call that ran out of
// its request budget (context deadline or cancellation) before the work
// committed. Nothing was committed under the caller's name: a
// budget-exceeded registration leaves no catalog entry, a budget-exceeded
// delta batch leaves the dataset, its version, and its snapshot untouched.
// The HTTP layer maps it to 503 Service Unavailable where request-shaped
// failures are 4xx — the request was well-formed, the server declined to
// spend more time on it.
type BudgetError struct {
	// Op names the budgeted operation ("register" or "apply delta").
	Op string
	// ID is the dataset the operation addressed.
	ID string
	// Err is the context error that ended the budget (DeadlineExceeded or
	// Canceled).
	Err error
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("store: %s %q: request budget exceeded (%v)", e.Op, e.ID, e.Err)
}

// Unwrap exposes the context error, so errors.Is(err,
// context.DeadlineExceeded) works through the wrapper.
func (e *BudgetError) Unwrap() error { return e.Err }

// PersistError reports that maintenance failed while writing the durable
// artifact (snapshot or shard generation), not because of anything wrong
// with the request — the deltas were applicable and nothing was committed.
// The HTTP layer maps it to 500 where request-shaped failures are 409s, so
// retry and alerting logic can tell a server-side fault apart from a
// conflicting request.
type PersistError struct{ Err error }

// Error implements error.
func (e *PersistError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying I/O error.
func (e *PersistError) Unwrap() error { return e.Err }

// ApplyDelta maintains the dataset registered under id in place:
// Π ← Π(D ⊕ ∆D₁ ⊕ … ⊕ ∆Dₖ) through the scheme's incremental form (the
// built-in schemes catalog by default; see SetIncrementalResolver),
// applied under the dataset's maintenance lock.
// The batch is atomic — every delta commits together with a bumped
// monotonic version and an atomically rewritten snapshot (when the
// registry is persistent), or nothing changes at all: a malformed delta, a
// scheme without an incremental form, or a sharded dataset without delta
// routing each leave the registry entry, the served Π, and the on-disk
// snapshot exactly as they were. Returns the dataset's new maintenance
// version.
//
// Concurrent queries are never blocked on maintenance I/O and never
// observe a torn Π: answer paths snapshot the preprocessed string under a
// read lock and the writer swaps it wholesale.
func (r *Registry) ApplyDelta(id string, deltas [][]byte) (uint64, error) {
	return r.ApplyDeltaContext(context.Background(), id, deltas)
}

// ApplyDeltaContext is ApplyDelta under a request budget: ctx is threaded
// into the dataset's ApplyDeltas, which checks it between deltas — a batch
// that runs past its deadline aborts with a *BudgetError and nothing
// applied (the served Π, the version, and the snapshot are untouched). The
// HTTP PATCH handler threads each request's deadline through here.
func (r *Registry) ApplyDeltaContext(ctx context.Context, id string, deltas [][]byte) (uint64, error) {
	ds, ok := r.GetDataset(id)
	if !ok {
		return 0, &NotFoundError{ID: id}
	}
	if len(deltas) == 0 {
		return ds.Version(), fmt.Errorf("store: dataset %q: empty delta batch", id)
	}
	inc := r.IncrementalFor(ds.SchemeName())
	if inc == nil {
		return ds.Version(), fmt.Errorf("store: dataset %q: scheme %s has no incremental form (maintainable: %v)",
			id, ds.SchemeName(), schemes.MaintainableSchemes())
	}
	dd, ok := ds.(DeltaDataset)
	if !ok {
		return ds.Version(), fmt.Errorf("store: dataset %q does not support in-place maintenance", id)
	}
	v, err := dd.ApplyDeltas(ctx, inc, deltas, r.med)
	if err != nil {
		var be *BudgetError
		if errors.As(err, &be) {
			return v, err
		}
		if ce := ctx.Err(); ce != nil && errors.Is(err, ce) {
			return v, &BudgetError{Op: "apply delta to", ID: id, Err: ce}
		}
		return v, fmt.Errorf("store: apply delta to %q: %w", id, err)
	}
	r.deltaCount.Add(int64(len(deltas)))
	obsDeltasTotal.Add(int64(len(deltas)))
	deleted := int64(0)
	for _, d := range deltas {
		if core.DeltaKindOf(d) == core.DeltaDelete {
			deleted++
		}
	}
	if deleted > 0 {
		r.deleteCount.Add(deleted)
		obsDeltasDeletedTotal.Add(deleted)
	}
	return v, nil
}

// DeltaCount reports how many deltas this registry has applied across all
// datasets — the counter /v1/stats serves as deltas_applied, alongside
// PreprocessCount and LoadCount. It counts every ApplyDelta caller, HTTP
// or library-side.
func (r *Registry) DeltaCount() int64 { return r.deltaCount.Load() }

// DeleteCount reports how many of the applied deltas were delete-kind —
// the dynamism counter /v1/stats serves as deltas_deleted.
func (r *Registry) DeleteCount() int64 { return r.deleteCount.Load() }

// Get returns the plain store registered under id, if any. Registrations
// still in flight count as present: Get waits for them, so a Get racing a
// Register never observes a half-built store. IDs registered through the
// sharded path are not plain stores and report false; use GetDataset for
// the scheme-agnostic answer path.
func (r *Registry) Get(id string) (*Store, bool) {
	ds, ok := r.GetDataset(id)
	if !ok {
		return nil, false
	}
	st, ok := ds.(*Store)
	return st, ok
}

// GetDataset returns the dataset registered under id — plain or sharded —
// waiting out a registration still in flight.
func (r *Registry) GetDataset(id string) (Dataset, bool) {
	r.mu.Lock()
	e, ok := r.entries[id]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	<-e.done
	if e.err != nil {
		return nil, false
	}
	return e.ds, true
}

// IDs returns the completed dataset IDs, sorted. Registrations still in
// flight are omitted rather than waited for, so listing (and the server's
// health endpoint) never blocks behind a long Preprocess.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.entries))
	for id, e := range r.entries {
		select {
		case <-e.done:
			if e.err == nil {
				ids = append(ids, id)
			}
		default: // still preprocessing
		}
	}
	sort.Strings(ids)
	return ids
}

// Len reports the number of successfully registered datasets. Unlike IDs it
// allocates nothing — it sits on the /healthz and /v1/stats hot paths.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default: // still preprocessing
		}
	}
	return n
}

// SnapshotSizer is an optional Dataset capability: datasets that can report
// the encoded size of their current snapshot artifact(s) implement it so
// /v1/stats can expose the on-disk footprint (and the snapshot compression
// ratio) next to the in-memory artifact bytes. Store and internal/shard's
// ShardedStore both do; the registry's ArtifactStats type-asserts rather
// than requiring it, so foreign Dataset implementations stay valid.
type SnapshotSizer interface {
	// SnapshotBytes reports the total encoded size of the dataset's
	// snapshot artifact(s) at its current version.
	SnapshotBytes() int
}

// ArtifactStats sums, over completed datasets, the in-memory preprocessed
// artifact bytes (PrepBytes) and the encoded snapshot bytes (for datasets
// implementing SnapshotSizer). Registrations still in flight are skipped,
// as in Len, so stats never block behind a Preprocess.
func (r *Registry) ArtifactStats() (prepBytes, snapshotBytes int64) {
	for _, ds := range r.completed() {
		prepBytes += int64(ds.PrepBytes())
		if sz, ok := ds.(SnapshotSizer); ok {
			snapshotBytes += int64(sz.SnapshotBytes())
		}
	}
	return prepBytes, snapshotBytes
}

// ArtifactBytes is the in-memory half of ArtifactStats — PrepBytes summed
// over completed datasets, with no snapshot encoding — cheap enough for a
// gauge callback scraped on every /metrics hit.
func (r *Registry) ArtifactBytes() int64 {
	var total int64
	for _, ds := range r.completed() {
		total += int64(ds.PrepBytes())
	}
	return total
}

// completed returns the datasets of every completed, successful
// registration, skipping (not waiting for) builds still in flight.
func (r *Registry) completed() []Dataset {
	r.mu.Lock()
	entries := make([]*regEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	out := make([]Dataset, 0, len(entries))
	for _, e := range entries {
		select {
		case <-e.done:
			if e.err == nil && e.ds != nil {
				out = append(out, e.ds)
			}
		default: // still preprocessing
		}
	}
	return out
}

// PreprocessCount reports how many Preprocess calls this registry has run —
// the preprocess-once contract's observable: it stays at one per distinct
// (unsharded) dataset no matter how many registrations or
// restarts-with-snapshots happen. A sharded registration counts one call
// per shard preprocessed.
func (r *Registry) PreprocessCount() int64 { return r.preprocessCount.Load() }

// LoadCount reports how many stores were reloaded from snapshots instead of
// preprocessed (one per shard for sharded datasets).
func (r *Registry) LoadCount() int64 { return r.loadCount.Load() }

// NotePreprocess folds an externally run Preprocess call into the
// registry's counters. Composite registrations (internal/shard) preprocess
// their parts outside build and report here so /v1/stats stays truthful.
func (r *Registry) NotePreprocess() {
	r.preprocessCount.Add(1)
	obsPreprocessTotal.Inc()
}

// NoteLoad is NotePreprocess for snapshot reloads.
func (r *Registry) NoteLoad() {
	r.loadCount.Add(1)
	obsSnapshotLoadTotal.Inc()
}
