package store

import (
	"fmt"
	"net/url"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"pitract/internal/core"
)

// Registry maps dataset IDs to preprocessed stores. Registering a dataset
// preprocesses it exactly once — concurrent registrations of the same ID
// share one Preprocess call and all receive the same memoized store — and,
// when the registry has a data directory, persists the result as a snapshot
// so a restarted process reloads Π(D) instead of recomputing it.
//
// The registry is safe for concurrent use; Answer paths never hold the
// registry lock (the store's preprocessed bytes are immutable).
type Registry struct {
	dir string // "" = memory-only, no persistence

	mu      sync.Mutex
	entries map[string]*regEntry

	preprocessCount atomic.Int64
	loadCount       atomic.Int64
}

// regEntry is a future for one dataset: done closes once store/err are set,
// so concurrent registrations of the same ID wait instead of preprocessing
// again.
type regEntry struct {
	done  chan struct{}
	store *Store
	err   error
}

// NewRegistry returns a registry persisting snapshots under dir; dir == ""
// keeps every store in memory only.
func NewRegistry(dir string) *Registry {
	return &Registry{dir: dir, entries: map[string]*regEntry{}}
}

// Dir reports the snapshot directory ("" when memory-only).
func (r *Registry) Dir() string { return r.dir }

// snapshotPath maps a dataset ID to its snapshot file. IDs are arbitrary
// strings, so the filename is the ID path-escaped (keeps readable IDs
// readable, makes hostile ones safe).
func (r *Registry) snapshotPath(id string) string {
	return filepath.Join(r.dir, url.PathEscape(id)+".pitract")
}

// Register returns the preprocessed store for id, creating it on first
// call: reload from a fresh snapshot if the registry is persistent and one
// matches (same scheme, same data digest), otherwise run scheme.Preprocess
// and persist the result. Re-registering an existing id with the same
// scheme and the same data returns the memoized store; a different scheme
// name or a different data digest is an error rather than a silent
// answer-path swap or a stale Π(D) served as fresh.
func (r *Registry) Register(id string, scheme *core.Scheme, data []byte) (st *Store, err error) {
	if scheme == nil {
		return nil, fmt.Errorf("store: register %q: nil scheme", id)
	}
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		r.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		if e.store.Scheme.Name() != scheme.Name() {
			return nil, fmt.Errorf("store: dataset %q already registered with scheme %s (got %s)",
				id, e.store.Scheme.Name(), scheme.Name())
		}
		if e.store.DataSum != SumData(data) {
			return nil, fmt.Errorf("store: dataset %q already registered with different data (re-register under a new id)", id)
		}
		return e.store, nil
	}
	e := &regEntry{done: make(chan struct{})}
	r.entries[id] = e
	r.mu.Unlock()

	// The deferred block must run even if build panics (a scheme Preprocess
	// on hostile data can, e.g. makeslice out of range): otherwise e.done is
	// never closed and every future Register/Get for this id blocks forever.
	// The panic is converted to an error so one bad registration cannot
	// wedge the dataset or kill a serving process.
	defer func() {
		if p := recover(); p != nil {
			e.err = fmt.Errorf("store: register %q: preprocess (%s) panicked: %v", id, scheme.Name(), p)
		}
		if e.err != nil {
			// Failed registrations are not memoized: drop the entry so a
			// later attempt (fixed data, fixed scheme) can retry.
			e.store = nil
			r.mu.Lock()
			delete(r.entries, id)
			r.mu.Unlock()
		}
		close(e.done)
		st, err = e.store, e.err
	}()
	e.store, e.err = r.build(id, scheme, data)
	return e.store, e.err
}

// build produces the store for one first-time registration.
func (r *Registry) build(id string, scheme *core.Scheme, data []byte) (*Store, error) {
	sum := SumData(data)
	if r.dir != "" {
		if snap, err := Load(r.snapshotPath(id)); err == nil &&
			snap.SchemeName == scheme.Name() && snap.DataSum == sum {
			r.loadCount.Add(1)
			return &Store{ID: id, Scheme: scheme, Prep: snap.Prep, DataSum: sum, Loaded: true}, nil
		}
	}
	pd, err := scheme.Preprocess(data)
	if err != nil {
		return nil, fmt.Errorf("store: register %q: preprocess (%s): %w", id, scheme.Name(), err)
	}
	r.preprocessCount.Add(1)
	st := &Store{ID: id, Scheme: scheme, Prep: pd, DataSum: sum}
	if r.dir != "" {
		if err := Save(r.snapshotPath(id), st.Snapshot()); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Get returns the store registered under id, if any. Registrations still
// in flight count as present: Get waits for them, so a Get racing a
// Register never observes a half-built store.
func (r *Registry) Get(id string) (*Store, bool) {
	r.mu.Lock()
	e, ok := r.entries[id]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	<-e.done
	if e.err != nil {
		return nil, false
	}
	return e.store, true
}

// IDs returns the completed dataset IDs, sorted. Registrations still in
// flight are omitted rather than waited for, so listing (and the server's
// health endpoint) never blocks behind a long Preprocess.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.entries))
	for id, e := range r.entries {
		select {
		case <-e.done:
			if e.err == nil {
				ids = append(ids, id)
			}
		default: // still preprocessing
		}
	}
	sort.Strings(ids)
	return ids
}

// Len reports the number of successfully registered datasets. Unlike IDs it
// allocates nothing — it sits on the /healthz and /v1/stats hot paths.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default: // still preprocessing
		}
	}
	return n
}

// PreprocessCount reports how many Preprocess calls this registry has run —
// the preprocess-once contract's observable: it stays at one per distinct
// dataset no matter how many registrations or restarts-with-snapshots
// happen.
func (r *Registry) PreprocessCount() int64 { return r.preprocessCount.Load() }

// LoadCount reports how many stores were reloaded from snapshots instead of
// preprocessed.
func (r *Registry) LoadCount() int64 { return r.loadCount.Load() }
