package store

// Query deadlines: AnswerWithin / AnswerBatchWithin bound how long a
// single answer or batch may hold the serving path. Datasets that
// implement ContextAnswerer are cancelled cooperatively (the context is
// checked before every probe); any dataset is additionally bounded by a
// hard guard that abandons the worker goroutine at the deadline — the
// result is dropped and the HTTP layer answers 504 immediately, so an
// expired request is never left holding an envelope slot.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// DeadlineError reports a query or batch that outlived its budget. It
// wraps context.DeadlineExceeded (or context.Canceled), so errors.Is
// still sees the context cause.
type DeadlineError struct {
	Op  string // "answer" or "batch"
	ID  string // dataset id
	Err error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("store: %s %q: query budget exceeded (%v)", e.Op, e.ID, e.Err)
}

func (e *DeadlineError) Unwrap() error { return e.Err }

// ContextAnswerer is implemented by datasets that can be cancelled
// cooperatively mid-answer (Store, ShardedStore, and the cache wrapper).
type ContextAnswerer interface {
	AnswerContext(ctx context.Context, q []byte) (bool, error)
	AnswerBatchContext(ctx context.Context, queries [][]byte, parallelism int) ([]bool, error)
}

// DegradedDataset is implemented by datasets whose scheme declares a
// cheaper fallback answerer (core.Scheme.PrepareFallback). Degraded
// answers must be exact on well-formed queries — the fallback trades
// serving cost, not correctness.
type DegradedDataset interface {
	CanDegrade() bool
	AnswerDegraded(q []byte) (bool, error)
	AnswerBatchDegraded(queries [][]byte, parallelism int) ([]bool, error)
}

// DegradableBatcher answers a batch under a deadline, switching to the
// scheme's declared fallback once the remaining budget runs low, and
// reports how many queries were answered degraded.
type DegradableBatcher interface {
	AnswerBatchDegradable(ctx context.Context, queries [][]byte, parallelism int) ([]bool, int, error)
}

// PrepareRetrier is implemented by datasets that can drop a cached
// (possibly failed) prepared answerer and rebuild it — the hook a
// breaker's half-open probe uses to retry a transient Prepare failure.
type PrepareRetrier interface {
	RetryPrepare() error
}

// deadlineError classifies err: a context-caused failure under an armed
// ctx becomes a typed DeadlineError; anything else passes through.
func deadlineError(op, id string, ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		return &DeadlineError{Op: op, ID: id, Err: cerr}
	}
	return err
}

type answerResult struct {
	ans      bool
	answers  []bool
	degraded int
	err      error
}

// guard runs fn on its own goroutine and abandons it at the deadline:
// the zombie finishes (and is cancelled cooperatively at its next
// context check) but its result is dropped.
func guard(ctx context.Context, op, id string, fn func() answerResult) answerResult {
	ch := make(chan answerResult, 1)
	go func() { ch <- fn() }()
	select {
	case res := <-ch:
		res.err = deadlineError(op, id, ctx, res.err)
		return res
	case <-ctx.Done():
		return answerResult{err: &DeadlineError{Op: op, ID: id, Err: ctx.Err()}}
	}
}

// AnswerWithin answers one query within ctx's deadline. Without a
// deadline (or cancellation) it is exactly ds.Answer.
func AnswerWithin(ctx context.Context, ds Dataset, q []byte) (bool, error) {
	if ctx == nil || ctx.Done() == nil {
		return ds.Answer(q)
	}
	if err := ctx.Err(); err != nil {
		return false, &DeadlineError{Op: "answer", ID: ds.DatasetID(), Err: err}
	}
	res := guard(ctx, "answer", ds.DatasetID(), func() answerResult {
		var r answerResult
		if ca, ok := ds.(ContextAnswerer); ok {
			r.ans, r.err = ca.AnswerContext(ctx, q)
		} else {
			r.ans, r.err = ds.Answer(q)
		}
		return r
	})
	return res.ans, res.err
}

// AnswerBatchWithin answers a batch within ctx's deadline. Datasets
// with a declared fallback (DegradableBatcher) switch to it once the
// remaining budget runs low; degraded reports how many queries took the
// fallback. Without a deadline it is exactly ds.AnswerBatch.
func AnswerBatchWithin(ctx context.Context, ds Dataset, queries [][]byte, parallelism int) (answers []bool, degraded int, err error) {
	if ctx == nil || ctx.Done() == nil {
		answers, err = ds.AnswerBatch(queries, parallelism)
		return answers, 0, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, 0, &DeadlineError{Op: "batch", ID: ds.DatasetID(), Err: cerr}
	}
	res := guard(ctx, "batch", ds.DatasetID(), func() answerResult {
		var r answerResult
		switch d := ds.(type) {
		case DegradableBatcher:
			r.answers, r.degraded, r.err = d.AnswerBatchDegradable(ctx, queries, parallelism)
		case ContextAnswerer:
			r.answers, r.err = d.AnswerBatchContext(ctx, queries, parallelism)
		default:
			r.answers, r.err = ds.AnswerBatch(queries, parallelism)
		}
		return r
	})
	return res.answers, res.degraded, res.err
}

// degradeThreshold is the fraction of the remaining budget at which a
// degradable batch switches from the exact path to the fallback.
const degradeThresholdDiv = 4

// budgetLow reports whether less than 1/degradeThresholdDiv of the
// budget measured from start remains before deadline.
func budgetLow(start, deadline time.Time) bool {
	total := deadline.Sub(start)
	if total <= 0 {
		return true
	}
	return time.Until(deadline) < total/degradeThresholdDiv
}
