package store

// The maintained-vs-rebuilt differential suite: for every scheme with an
// incremental form, Registry.ApplyDelta-maintained Π must be equivalent to
// Preprocess(ApplyUpdate(D, ∆D)) — byte-equivalent where the artifact is
// canonical, verdict-equivalent always — after every delta of random
// sequences, including across a snapshot save → reload → continue-patching
// cycle. Plus the mutation-path contracts: atomic failure, clean errors
// for unmaintainable schemes, and torn-free concurrent PATCH vs query.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"sync"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
)

// deltaCase is one scheme's differential scenario.
type deltaCase struct {
	scheme string
	inc    *core.IncrementalScheme
	data   []byte
	deltas [][]byte
	probes [][]byte
	// byteExact asserts maintained Π byte-identical to the rebuilt one
	// (sorted-key files and closure matrices are canonical; the membership
	// list keeps duplicates a merge drops, so it is verdict-exact only).
	byteExact bool
}

// deltaCases builds the differential scenarios from one seed.
func deltaCases(seed int64) []deltaCase {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, 48)
	for i := range keys {
		keys[i] = int64(rng.Intn(200) * 2)
	}
	keyDeltas := func() [][]byte {
		// The fixed prefix spans the full dynamism story — delete present
		// keys alongside an absent tombstone, re-insert one via upsert,
		// delete it again — and the random tail mixes all three kinds
		// (tombstones are idempotent, so random delete targets are safe).
		// Eight deltas put delete/re-insert on both sides of the
		// save→reload boundary (half = 4).
		ds := [][]byte{
			schemes.KeysDeleteDelta([]int64{keys[0], keys[1], 900_001}),
			schemes.KeysUpsertDelta([]int64{keys[0], keys[2]}),
			schemes.KeysDeleteDelta([]int64{keys[0]}),
		}
		for len(ds) < 8 {
			batch := make([]int64, 1+rng.Intn(4))
			for j := range batch {
				batch[j] = int64(rng.Intn(500)) // mix of fresh, duplicate, odd, even
			}
			switch rng.Intn(3) {
			case 0:
				ds = append(ds, schemes.KeysDelta(batch))
			case 1:
				ds = append(ds, schemes.KeysDeleteDelta(batch))
			default:
				ds = append(ds, schemes.KeysUpsertDelta(batch))
			}
		}
		return ds
	}
	keyProbes := func() [][]byte {
		ps := make([][]byte, 0, 120)
		for c := int64(0); c < 120; c++ {
			ps = append(ps, schemes.PointQuery(4*c+rng.Int63n(5)))
		}
		return ps
	}
	rangeProbes := func() [][]byte {
		ps := make([][]byte, 0, 60)
		for i := 0; i < 60; i++ {
			lo := rng.Int63n(500)
			ps = append(ps, schemes.RangeQuery(lo, lo+rng.Int63n(8)))
		}
		return ps
	}
	g := graph.CommunityGraph(4, 10, 16, seed)
	// Edge retraction of an absent edge is an error (unlike key
	// tombstones), so deletes target edges this sequence itself inserted,
	// on pairs absent from the base graph — insert, delete, re-insert via
	// upsert, delete again, with the save→reload boundary (half = 4) in
	// the middle of the churn.
	freshPair := func(used map[[2]int]bool) (int, int) {
		for {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) && !used[[2]int{u, v}] {
				used[[2]int{u, v}] = true
				return u, v
			}
		}
	}
	used := map[[2]int]bool{}
	u1, v1 := freshPair(used)
	u2, v2 := freshPair(used)
	u3, v3 := freshPair(used)
	edgeDeltas := [][]byte{
		schemes.EdgeDelta(u1, v1),
		schemes.EdgeDelta(u2, v2),
		schemes.EdgeDeleteDelta(u1, v1),
		schemes.EdgeUpsertDelta(u1, v1), // re-insert across the reload boundary
		schemes.EdgeDeleteDelta(u2, v2),
		schemes.EdgeDeleteDelta(u1, v1), // delete the upserted edge again
		schemes.EdgeDelta(u3, v3),
		schemes.EdgeUpsertDelta(u3, v3), // upsert of a present edge: no-op
	}
	pairProbes := make([][]byte, 0, 200)
	for i := 0; i < 200; i++ {
		pairProbes = append(pairProbes, schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N())))
	}
	return []deltaCase{
		{
			scheme: "point-selection/sorted-keys", inc: schemes.IncrementalPointSelection(),
			data: schemes.RelationFromKeys(keys), deltas: keyDeltas(), probes: keyProbes(),
			byteExact: true,
		},
		{
			scheme: "range-selection/sorted-keys", inc: schemes.IncrementalRangeSelection(),
			data: schemes.RelationFromKeys(keys), deltas: keyDeltas(), probes: rangeProbes(),
			byteExact: true,
		},
		{
			scheme: "list-membership/sorted", inc: schemes.IncrementalListMembership(),
			data: schemes.EncodeList(keys), deltas: keyDeltas(), probes: keyProbes(),
			byteExact: false, // fresh Preprocess keeps duplicate members the merge drops
		},
		{
			scheme: "reachability/closure-matrix", inc: schemes.IncrementalReachability(),
			data: g.Encode(), deltas: edgeDeltas, probes: pairProbes,
			byteExact: true,
		},
		{
			scheme: "reachability/bfs-per-query", inc: schemes.IncrementalReachabilityBFS(),
			data: g.Encode(), deltas: edgeDeltas, probes: pairProbes,
			byteExact: true, // Π = the (Normalize-canonical) graph encoding
		},
		{
			scheme: "reachability/labels", inc: schemes.IncrementalReachabilityLabels(),
			data: g.Encode(), deltas: edgeDeltas, probes: pairProbes,
			byteExact: true, // relabel-on-commit rebuilds the canonical labeling
		},
		undirectedReachCase(seed),
	}
}

// undirectedReachCase pins the orientation-flag path: ⊕ on an undirected
// graph inserts a symmetric edge, so the maintained closure must OR both
// arcs — a directed-only maintenance diverges on the reverse direction.
func undirectedReachCase(seed int64) deltaCase {
	rng := rand.New(rand.NewSource(seed + 17))
	// Two disconnected undirected components, so edge deltas genuinely
	// create new two-way reachability across them.
	g := graph.New(24, false)
	for v := 1; v < 12; v++ {
		g.MustAddEdge(v, rng.Intn(v))
	}
	for v := 13; v < 24; v++ {
		g.MustAddEdge(v, 12+rng.Intn(v-12))
	}
	a, b := rng.Intn(12), 12+rng.Intn(12)
	other := func() (int, int) {
		for {
			u, v := rng.Intn(12), 12+rng.Intn(12)
			if u != a || v != b {
				return u, v
			}
		}
	}
	o1u, o1v := other()
	o2u, o2v := other()
	deltas := [][]byte{
		schemes.EdgeDelta(a, b),
		schemes.EdgeDelta(o1u, o1v),
		schemes.EdgeDeleteDelta(b, a), // reversed orientation: undirected delete
		schemes.EdgeUpsertDelta(a, b), // re-bridge the components
		schemes.EdgeDeleteDelta(a, b),
		schemes.EdgeDelta(o2u, o2v),
	}
	probes := make([][]byte, 0, 200)
	for i := 0; i < 200; i++ {
		probes = append(probes, schemes.NodePairQuery(rng.Intn(24), rng.Intn(24)))
	}
	return deltaCase{
		scheme: "reachability/closure-matrix (undirected)", inc: schemes.IncrementalReachability(),
		data: g.Encode(), deltas: deltas, probes: probes,
		byteExact: true,
	}
}

// assertEquivalent checks the maintained store against a from-scratch
// preprocessing of the updated raw data.
func assertEquivalent(t *testing.T, tc deltaCase, st *Store, updated []byte, step int) {
	t.Helper()
	fresh, err := tc.inc.Scheme.Preprocess(updated)
	if err != nil {
		t.Fatalf("step %d: fresh preprocess: %v", step, err)
	}
	maintained, _ := st.View()
	if tc.byteExact && !bytes.Equal(maintained, fresh) {
		t.Fatalf("step %d: maintained Π diverges from rebuilt Π (%d vs %d bytes)",
			step, len(maintained), len(fresh))
	}
	for pi, q := range tc.probes {
		got, err := st.Answer(q)
		if err != nil {
			t.Fatalf("step %d probe %d: maintained answer: %v", step, pi, err)
		}
		want, err := tc.inc.Scheme.Answer(fresh, q)
		if err != nil {
			t.Fatalf("step %d probe %d: rebuilt answer: %v", step, pi, err)
		}
		if got != want {
			t.Fatalf("step %d probe %d: maintained %v, rebuilt %v", step, pi, got, want)
		}
	}
}

// TestMaintainedVsRebuiltDifferential pins ApplyDelta-maintained Π
// equivalent to Preprocess(ApplyUpdate(D, ∆D)) after every delta, across a
// snapshot save → reload → continue-patching cycle.
func TestMaintainedVsRebuiltDifferential(t *testing.T) {
	for _, tc := range deltaCases(1207) {
		t.Run(tc.scheme, func(t *testing.T) {
			dir := t.TempDir()
			reg := NewRegistry(dir)
			if _, err := reg.Register("d", tc.inc.Scheme, tc.data); err != nil {
				t.Fatal(err)
			}
			updated := tc.data
			half := len(tc.deltas) / 2
			for i, delta := range tc.deltas[:half] {
				v, err := reg.ApplyDelta("d", [][]byte{delta})
				if err != nil {
					t.Fatalf("delta %d: %v", i, err)
				}
				if v != uint64(i+1) {
					t.Fatalf("delta %d: version %d, want %d", i, v, i+1)
				}
				if updated, err = tc.inc.ApplyUpdate(updated, delta); err != nil {
					t.Fatalf("delta %d: ⊕: %v", i, err)
				}
				st, _ := reg.Get("d")
				assertEquivalent(t, tc, st, updated, i)
			}

			// Restart: a new registry over the same directory must reload
			// the MAINTAINED snapshot (same original data digest, version
			// half), not re-preprocess the stale registration data.
			reg2 := NewRegistry(dir)
			st2, err := reg2.Register("d", tc.inc.Scheme, tc.data)
			if err != nil {
				t.Fatal(err)
			}
			if !st2.WasLoaded() {
				t.Fatal("restart did not reload the snapshot")
			}
			if reg2.PreprocessCount() != 0 {
				t.Fatalf("restart ran %d Preprocess calls, want 0", reg2.PreprocessCount())
			}
			if got := st2.Version(); got != uint64(half) {
				t.Fatalf("reloaded version %d, want %d", got, half)
			}
			assertEquivalent(t, tc, st2, updated, half)

			// Continue patching the reloaded store.
			for i, delta := range tc.deltas[half:] {
				v, err := reg2.ApplyDelta("d", [][]byte{delta})
				if err != nil {
					t.Fatalf("post-reload delta %d: %v", i, err)
				}
				if v != uint64(half+i+1) {
					t.Fatalf("post-reload delta %d: version %d, want %d", i, v, half+i+1)
				}
				if updated, err = tc.inc.ApplyUpdate(updated, delta); err != nil {
					t.Fatalf("post-reload delta %d: ⊕: %v", i, err)
				}
				assertEquivalent(t, tc, st2, updated, half+i)
			}
		})
	}
}

// TestApplyDeltaBatchIsAtomic pins the all-or-nothing contract: a batch
// whose last delta is hostile must leave the served Π, the version, and
// the on-disk snapshot untouched.
func TestApplyDeltaBatchIsAtomic(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(dir)
	data := schemes.RelationFromKeys([]int64{2, 4, 6})
	st, err := reg.Register("d", schemes.PointSelectionScheme(), data)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := st.View()
	snapBefore, err := os.ReadFile(SnapshotPath(dir, "d"))
	if err != nil {
		t.Fatal(err)
	}

	_, err = reg.ApplyDelta("d", [][]byte{schemes.KeysDelta([]int64{9}), []byte{0xff, 0xff}})
	if err == nil {
		t.Fatal("hostile batch applied without error")
	}
	after, v := st.View()
	if v != 0 {
		t.Fatalf("version %d after failed batch, want 0", v)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed batch mutated the served Π")
	}
	if ok, _ := st.Answer(schemes.PointQuery(9)); ok {
		t.Fatal("partially applied delta is visible")
	}
	snapAfter, err := os.ReadFile(SnapshotPath(dir, "d"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBefore, snapAfter) {
		t.Fatal("failed batch rewrote the snapshot")
	}
	if reg.DeltaCount() != 0 {
		t.Fatalf("delta counter %d after failed batch, want 0", reg.DeltaCount())
	}
}

// TestApplyDeltaErrors pins the clean-refusal paths: unknown ids are
// NotFoundError, schemes without incremental forms and empty batches are
// plain conflicts, and none of them disturb the registry entry.
func TestApplyDeltaErrors(t *testing.T) {
	reg := NewRegistry("")
	if _, err := reg.ApplyDelta("ghost", [][]byte{{1}}); err == nil {
		t.Fatal("unknown dataset accepted")
	} else {
		var nf *NotFoundError
		if !errors.As(err, &nf) {
			t.Fatalf("unknown dataset error %v is not a NotFoundError", err)
		}
	}

	data := schemes.RelationFromKeys([]int64{2, 4})
	if _, err := reg.Register("scan", schemes.PointSelectionScanScheme(), data); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyDelta("scan", [][]byte{schemes.KeysDelta([]int64{8})}); err == nil {
		t.Fatal("scheme without incremental form accepted a delta")
	}
	if _, err := reg.Register("pt", schemes.PointSelectionScheme(), data); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyDelta("pt", nil); err == nil {
		t.Fatal("empty delta batch accepted")
	}
	st, _ := reg.Get("pt")
	if st.Version() != 0 {
		t.Fatalf("refused deltas bumped the version to %d", st.Version())
	}
	if ok, _ := st.Answer(schemes.PointQuery(2)); !ok {
		t.Fatal("registry entry disturbed by refused deltas")
	}
}

// TestConcurrentDeltasAndQueries races ApplyDelta writers against Answer
// readers under the race detector: every query must observe a fully
// applied version — if the version read before a query says delta i has
// committed, the inserted key must be visible — and reported versions must
// be monotonic.
func TestConcurrentDeltasAndQueries(t *testing.T) {
	reg := NewRegistry("") // memory-only: the race is in the swap, not the file
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64(2 * i)
	}
	st, err := reg.Register("d", schemes.PointSelectionScheme(), schemes.RelationFromKeys(keys))
	if err != nil {
		t.Fatal(err)
	}
	const deltas = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < deltas; i++ {
			// Delta i inserts key 1001+2i and commits version i+1.
			if _, err := reg.ApplyDelta("d", [][]byte{schemes.KeysDelta([]int64{int64(1001 + 2*i)})}); err != nil {
				t.Errorf("delta %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			var lastVersion uint64
			for j := 0; j < 400; j++ {
				i := rng.Intn(deltas)
				v := st.Version()
				if v < lastVersion {
					t.Errorf("version went backwards: %d after %d", v, lastVersion)
					return
				}
				lastVersion = v
				ok, err := st.Answer(schemes.PointQuery(int64(1001 + 2*i)))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if v >= uint64(i+1) && !ok {
					t.Errorf("version %d claims delta %d applied but its key is invisible", v, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := st.Version(); got != deltas {
		t.Fatalf("final version %d, want %d", got, deltas)
	}
}

// TestConcurrentMixedDeltasAndQueries races a writer of mixed
// insert+delete batches against readers under the race detector. Batch i
// atomically inserts key 1001+2i and deletes original key 2i, so any query
// that observes version ≥ i+1 must see the inserted key AND must NOT see
// the deleted one — a deleted key reappearing (a torn merge, a lost
// tombstone) is the invariant this test exists to catch.
func TestConcurrentMixedDeltasAndQueries(t *testing.T) {
	reg := NewRegistry("") // memory-only: the race is in the swap, not the file
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64(2 * i)
	}
	st, err := reg.Register("d", schemes.PointSelectionScheme(), schemes.RelationFromKeys(keys))
	if err != nil {
		t.Fatal(err)
	}
	const deltas = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < deltas; i++ {
			batch := [][]byte{
				schemes.KeysDelta([]int64{int64(1001 + 2*i)}),
				schemes.KeysDeleteDelta([]int64{int64(2 * i)}),
			}
			if _, err := reg.ApplyDelta("d", batch); err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			var lastVersion uint64
			for j := 0; j < 400; j++ {
				i := rng.Intn(deltas)
				v := st.Version()
				if v < lastVersion {
					t.Errorf("version went backwards: %d after %d", v, lastVersion)
					return
				}
				lastVersion = v
				// Versions count deltas and each batch holds two, so batch
				// i is committed once the version reaches 2(i+1).
				if v < uint64(2*(i+1)) {
					continue // batch i not committed yet; nothing to assert
				}
				ok, err := st.Answer(schemes.PointQuery(int64(1001 + 2*i)))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if !ok {
					t.Errorf("version %d claims batch %d applied but its inserted key is invisible", v, i)
					return
				}
				gone, err := st.Answer(schemes.PointQuery(int64(2 * i)))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if gone {
					t.Errorf("version %d claims batch %d applied but its deleted key 2*%d reappeared", v, i, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := st.Version(); got != 2*deltas {
		t.Fatalf("final version %d, want %d", got, 2*deltas)
	}
	// Post-race sweep: every tombstone stuck, every insert stuck.
	for i := 0; i < deltas; i++ {
		if ok, _ := st.Answer(schemes.PointQuery(int64(2 * i))); ok {
			t.Fatalf("deleted key %d reappeared after the race", 2*i)
		}
		if ok, _ := st.Answer(schemes.PointQuery(int64(1001 + 2*i))); !ok {
			t.Fatalf("inserted key %d lost after the race", 1001+2*i)
		}
	}
}

// TestSnapshotVersionRoundTrip pins the v2 snapshot format: the
// maintenance version survives encode/decode, and the pre-delta v1 layout
// still decodes as version 0.
func TestSnapshotVersionRoundTrip(t *testing.T) {
	s := &Snapshot{SchemeName: "s", Notes: "n", DataSum: SumData([]byte("d")), Version: 7, Prep: []byte{1, 2, 3}}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || got.SchemeName != "s" || !bytes.Equal(got.Prep, s.Prep) || got.DataSum != s.DataSum {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// A v1 file: same framing, no version field, old magic.
	header := core.PadPair([]byte(s.SchemeName), []byte(s.Notes))
	body := core.PadPair(s.DataSum[:], s.Prep)
	payload := core.PadPair(header, body)
	v1 := []byte("PITRACTS\x01")
	v1 = binary.BigEndian.AppendUint32(v1, crc32.ChecksumIEEE(payload))
	v1 = append(v1, payload...)
	old, err := DecodeSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if old.Version != 0 || !bytes.Equal(old.Prep, s.Prep) || old.DataSum != s.DataSum {
		t.Fatalf("v1 decode mismatch: %+v", old)
	}
}
