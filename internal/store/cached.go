package store

import (
	"context"
	"fmt"

	"pitract/internal/cache"
	"pitract/internal/obs"
)

// Cache-lookup stage histograms, split by outcome: a hit is served (or
// coalesced) from the version-keyed cache, a miss ran the underlying
// answer path and filled the cache.
var (
	obsCacheHit  = obs.Stage(obs.StageCacheHit)
	obsCacheMiss = obs.Stage(obs.StageCacheMiss)
)

// cachedDataset fronts one Dataset with a verdict cache. It implements
// Dataset by delegation, intercepting only the answer paths.
type cachedDataset struct {
	Dataset
	c *cache.Cache
}

// NewCachedDataset wraps ds so Answer and AnswerBatch consult (and fill) c
// before touching the underlying answering path. The cache key is
// ⟨ds.DatasetID(), ds.Version(), query⟩ with the version read at admission
// — the same read the HTTP layer reports — so a hit can only ever serve a
// verdict computed against that version or a newer one, exactly the
// staleness contract the uncached path already documents, and a committed
// delta invalidates every prior entry by moving traffic to new keys.
//
// The wrapper is an answer-path view: registration and maintenance keep
// going through the registry (or the underlying dataset), which is also
// why it deliberately does not implement DeltaDataset. Wrapping costs one
// allocation; callers serving many requests may wrap once and keep it.
func NewCachedDataset(ds Dataset, c *cache.Cache) Dataset {
	if c == nil {
		return ds
	}
	return &cachedDataset{Dataset: ds, c: c}
}

// Answer implements Dataset: a cache hit returns immediately; a cold key
// runs the underlying answer once, with concurrent callers of the same key
// coalesced onto that one run (singleflight).
func (cd *cachedDataset) Answer(q []byte) (bool, error) {
	version := cd.Dataset.Version()
	start := obs.Start()
	if start.IsZero() { // metrics disabled: skip the outcome bookkeeping
		return cd.c.Do(cd.Dataset.DatasetID(), version, q, func() (bool, error) {
			return cd.Dataset.Answer(q)
		})
	}
	ran := false
	v, err := cd.c.Do(cd.Dataset.DatasetID(), version, q, func() (bool, error) {
		ran = true
		return cd.Dataset.Answer(q)
	})
	if ran {
		obsCacheMiss.Since(start)
	} else {
		// Hits include callers coalesced onto someone else's in-flight run:
		// from the caller's side both are "served from the cache layer".
		obsCacheHit.Since(start)
	}
	return v, err
}

// AnswerBatch implements Dataset: cached verdicts are filled in directly
// and only the misses ride the underlying AnswerBatch worker pool (then
// populate the cache). The whole batch is keyed at one admission version.
// Misses are answered as one sub-batch rather than coalesced per key.
func (cd *cachedDataset) AnswerBatch(queries [][]byte, parallelism int) ([]bool, error) {
	id := cd.Dataset.DatasetID()
	version := cd.Dataset.Version()
	results := make([]bool, len(queries))
	var missIdx []int
	var missQueries [][]byte
	for i, q := range queries {
		if v, ok := cd.c.Lookup(id, version, q); ok {
			results[i] = v
		} else {
			missIdx = append(missIdx, i)
			missQueries = append(missQueries, q)
		}
	}
	var answers []bool
	if len(missIdx) > 0 {
		var err error
		answers, err = cd.Dataset.AnswerBatch(missQueries, parallelism)
		if err != nil {
			// The sub-batch error names the failing query's index *within
			// the misses*, which would be wrong (and cache-state-dependent)
			// for the caller. Errors abort the whole batch anyway, so
			// re-run the full original batch: same deterministic failure,
			// and the error carries the caller's own lowest failing index —
			// identical bytes to what the uncached path reports.
			return cd.Dataset.AnswerBatch(queries, parallelism)
		}
	}
	if cd.Dataset.Version() != version {
		// A delta committed since admission: mixing entries keyed at the
		// admission version (whose verdicts may span the commit — a
		// single-query writer admitted at v may legally cache a verdict
		// computed at v+1) with the sub-batch's newer answers could
		// return a combination no single Π produces. Versions are
		// monotonic, so an unchanged version here certifies the whole
		// batch consistent at the admission version; on a change, fall
		// back to one uncached batch — which answers against a single Π,
		// preserving the batch consistency contract the uncached path
		// documents. This guards the all-hit path too, not just misses.
		return cd.Dataset.AnswerBatch(queries, parallelism)
	}
	for k, i := range missIdx {
		results[i] = answers[k]
		cd.c.Put(id, version, queries[i], answers[k])
	}
	return results, nil
}

// AnswerContext implements ContextAnswerer: the cache is still
// consulted (hits beat deadlines for free); a cold key runs the
// underlying context-aware path so an expired budget aborts the probe.
func (cd *cachedDataset) AnswerContext(ctx context.Context, q []byte) (bool, error) {
	ca, ok := cd.Dataset.(ContextAnswerer)
	if !ok {
		return cd.Answer(q)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return cd.c.Do(cd.Dataset.DatasetID(), cd.Dataset.Version(), q, func() (bool, error) {
		return ca.AnswerContext(ctx, q)
	})
}

// AnswerBatchContext implements ContextAnswerer with entry-point
// cancellation; mid-batch expiry is handled by the hard deadline guard
// (AnswerBatchWithin), which abandons the batch and drops its result.
func (cd *cachedDataset) AnswerBatchContext(ctx context.Context, queries [][]byte, parallelism int) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cd.AnswerBatch(queries, parallelism)
}

// CanDegrade implements DegradedDataset by delegation.
func (cd *cachedDataset) CanDegrade() bool {
	if dd, ok := cd.Dataset.(DegradedDataset); ok {
		return dd.CanDegrade()
	}
	return false
}

// AnswerDegraded implements DegradedDataset by delegation, bypassing
// the cache entirely: degraded-mode traffic must not populate (or be
// served from) the exact path's cache — verdicts are exact either way,
// but keeping the flows separate keeps the cache's hit accounting an
// exact-path signal.
func (cd *cachedDataset) AnswerDegraded(q []byte) (bool, error) {
	dd, ok := cd.Dataset.(DegradedDataset)
	if !ok {
		return false, fmt.Errorf("store: dataset %q declares no degraded fallback", cd.Dataset.DatasetID())
	}
	return dd.AnswerDegraded(q)
}

// AnswerBatchDegraded implements DegradedDataset by delegation,
// bypassing the cache (see AnswerDegraded).
func (cd *cachedDataset) AnswerBatchDegraded(queries [][]byte, parallelism int) ([]bool, error) {
	dd, ok := cd.Dataset.(DegradedDataset)
	if !ok {
		return nil, fmt.Errorf("store: dataset %q declares no degraded fallback", cd.Dataset.DatasetID())
	}
	return dd.AnswerBatchDegraded(queries, parallelism)
}

// RetryPrepare implements PrepareRetrier by delegation (a no-op for
// datasets that cannot rebuild their prepared form).
func (cd *cachedDataset) RetryPrepare() error {
	if pr, ok := cd.Dataset.(PrepareRetrier); ok {
		return pr.RetryPrepare()
	}
	return nil
}
