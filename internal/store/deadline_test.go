package store

// The graceful-degradation suite for the store layer: AnswerWithin must
// abandon answers at the deadline with a typed DeadlineError (never
// blocking the serving path behind a stalled scheme), AnswerBatchWithin
// must switch a degradable batch to the scheme's declared fallback when
// the budget runs low — with verdicts identical to the exact path — and
// the registry must quarantine a corrupt snapshot, rebuild from source,
// and replay the surviving delta log. The sticky-Prepare test is the
// regression pin for the heal path: a Prepare that failed transiently
// poisons the store only until RetryPrepare, never until restart.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"pitract/internal/core"
	"pitract/internal/schemes"
)

// stallScheme answers correctly but blocks every Answer until gate is
// closed, so tests control exactly how long the exact path stalls.
func stallScheme(gate <-chan struct{}) *core.Scheme {
	return &core.Scheme{
		SchemeName: "test/stall",
		Preprocess: func(d []byte) ([]byte, error) { return append([]byte(nil), d...), nil },
		Answer: func(pd, q []byte) (bool, error) {
			<-gate
			return true, nil
		},
	}
}

// TestAnswerWithinNoDeadlineIsPlainAnswer pins the hot-path contract: a
// nil or non-cancellable context pays no guard goroutine — AnswerWithin
// degenerates to ds.Answer exactly.
func TestAnswerWithinNoDeadlineIsPlainAnswer(t *testing.T) {
	st := &Store{ID: "d", Scheme: schemes.PointSelectionScheme(),
		Prep: mustPreprocess(t, schemes.PointSelectionScheme(), schemes.RelationFromKeys([]int64{2, 4, 6}))}
	for _, ctx := range []context.Context{nil, context.Background()} {
		got, err := AnswerWithin(ctx, st, schemes.PointQuery(4))
		if err != nil || !got {
			t.Fatalf("AnswerWithin(%v) = (%v, %v), want (true, nil)", ctx, got, err)
		}
		got, err = AnswerWithin(ctx, st, schemes.PointQuery(5))
		if err != nil || got {
			t.Fatalf("AnswerWithin(%v) = (%v, %v), want (false, nil)", ctx, got, err)
		}
	}
}

func mustPreprocess(t *testing.T, s *core.Scheme, d []byte) []byte {
	t.Helper()
	pd, err := s.Preprocess(d)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return pd
}

// TestAnswerWithinExpiredUpfront pins the cheap path: an already-expired
// context is refused as a typed DeadlineError before any probe runs,
// still unwrapping to the context cause.
func TestAnswerWithinExpiredUpfront(t *testing.T) {
	gate := make(chan struct{}) // never opened: any probe would hang
	st := &Store{ID: "d", Scheme: stallScheme(gate), Prep: []byte{1}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnswerWithin(ctx, st, []byte("q"))
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("expired answer returned %v, want a DeadlineError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DeadlineError %v does not wrap context.Canceled", err)
	}
	if _, _, berr := AnswerBatchWithin(ctx, st, [][]byte{[]byte("q")}, 1); !errors.As(berr, &de) {
		t.Fatalf("expired batch returned %v, want a DeadlineError", berr)
	}
}

// TestAnswerWithinAbandonsStalledAnswer pins the hard guard: a scheme
// whose Answer stalls indefinitely does not hold the serving path — the
// worker is abandoned at the deadline, the caller gets a DeadlineError
// promptly, and the zombie's late result is dropped.
func TestAnswerWithinAbandonsStalledAnswer(t *testing.T) {
	gate := make(chan struct{})
	st := &Store{ID: "d", Scheme: stallScheme(gate), Prep: []byte{1}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := AnswerWithin(ctx, st, []byte("q"))
	elapsed := time.Since(start)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("stalled answer returned %v, want a DeadlineError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DeadlineError %v does not wrap context.DeadlineExceeded", err)
	}
	if de.Op != "answer" || de.ID != "d" {
		t.Fatalf("DeadlineError carries (op %q, id %q), want (answer, d)", de.Op, de.ID)
	}
	// The caller must come back at the deadline, not at the stall's end.
	// 2s is a generous ceiling for a 30ms budget on a loaded CI machine.
	if elapsed > 2*time.Second {
		t.Fatalf("AnswerWithin took %v to abandon a stalled answer under a 30ms budget", elapsed)
	}
	close(gate) // let the zombie drain
}

// verdictOf is the toy language the degradable scheme decides: a query
// is in the language iff its first byte is even.
func verdictOf(q []byte) bool { return len(q) > 0 && q[0]%2 == 0 }

// TestAnswerBatchWithinDegradesMidBatch pins the degraded-answering
// contract end to end: a batch whose exact path eats most of the budget
// switches to the scheme's declared fallback for the remainder, the
// reported degraded count matches the fallback probes, and — the part
// that makes degradation admissible at all — every verdict is identical
// to the exact path's.
func TestAnswerBatchWithinDegradesMidBatch(t *testing.T) {
	var exactCalls, fbCalls atomic.Int64
	sch := &core.Scheme{
		SchemeName: "test/degradable",
		Preprocess: func(d []byte) ([]byte, error) { return append([]byte(nil), d...), nil },
		Answer: func(pd, q []byte) (bool, error) {
			// The first exact probe eats ~80% of the 800ms budget, so the
			// degradable batch must finish the rest through the fallback.
			if exactCalls.Add(1) == 1 {
				time.Sleep(650 * time.Millisecond)
			}
			return verdictOf(q), nil
		},
		PrepareFallback: func(pd []byte) (core.Answerer, error) {
			return core.AnswererFunc(func(q []byte) (bool, error) {
				fbCalls.Add(1)
				return verdictOf(q), nil
			}), nil
		},
	}
	st := &Store{ID: "d", Scheme: sch, Prep: []byte{1}}
	queries := [][]byte{{2}, {3}, {4}, {5}, {6}, {7}}

	ctx, cancel := context.WithTimeout(context.Background(), 800*time.Millisecond)
	defer cancel()
	answers, degraded, err := AnswerBatchWithin(ctx, st, queries, 1)
	if err != nil {
		t.Fatalf("degradable batch failed: %v", err)
	}
	if len(answers) != len(queries) {
		t.Fatalf("batch returned %d answers for %d queries", len(answers), len(queries))
	}
	for i, q := range queries {
		if answers[i] != verdictOf(q) {
			t.Fatalf("query %d: degraded batch says %v, exact verdict is %v — degradation changed an answer", i, answers[i], verdictOf(q))
		}
	}
	if degraded < 1 {
		t.Fatalf("degraded count %d after the exact path ate the budget, want >= 1", degraded)
	}
	if int64(degraded) != fbCalls.Load() {
		t.Fatalf("degraded count %d but the fallback answered %d probes", degraded, fbCalls.Load())
	}

	// Without a deadline the same store takes the exact path only.
	fbBefore := fbCalls.Load()
	answers, degraded, err = AnswerBatchWithin(context.Background(), st, [][]byte{{8}, {9}}, 1)
	if err != nil || degraded != 0 || !answers[0] || answers[1] {
		t.Fatalf("deadline-free batch = (%v, %d, %v), want exact ([true false], 0, nil)", answers, degraded, err)
	}
	if fbCalls.Load() != fbBefore {
		t.Fatal("deadline-free batch touched the fallback answerer")
	}
}

// TestStickyPrepareHealsWithoutReRegister is the regression pin for the
// sticky-Prepare bug: a transient Prepare failure used to poison the
// store until process restart. The store must (a) surface the failure as
// a typed *PrepareError, (b) keep it sticky — no Prepare retry storm per
// query — and (c) heal through RetryPrepare on the SAME registered
// dataset: correct answers afterwards, one catalog entry, one
// Preprocess, no re-register.
func TestStickyPrepareHealsWithoutReRegister(t *testing.T) {
	var prepCalls atomic.Int64
	sch := &core.Scheme{
		SchemeName: "test/flaky-prepare",
		Preprocess: func(d []byte) ([]byte, error) { return append([]byte(nil), d...), nil },
		Answer:     func(pd, q []byte) (bool, error) { return len(q) > 0, nil },
		PrepareAnswerer: func(pd []byte) (core.Answerer, error) {
			if prepCalls.Add(1) == 1 {
				return nil, fmt.Errorf("injected decode fault")
			}
			return core.AnswererFunc(func(q []byte) (bool, error) { return len(q) > 0, nil }), nil
		},
	}
	reg := NewRegistry("")
	st, err := reg.Register("d", sch, []byte{1})
	if err != nil {
		t.Fatalf("registration must survive a transient Prepare failure, got %v", err)
	}

	_, aerr := st.Answer([]byte("q"))
	var pe *PrepareError
	if !errors.As(aerr, &pe) {
		t.Fatalf("answer over a failed Prepare returned %v, want a PrepareError", aerr)
	}
	_, aerr2 := st.Answer([]byte("q"))
	if aerr2 == nil || aerr2.Error() != aerr.Error() {
		t.Fatalf("second answer returned %v, want the identical sticky error %v", aerr2, aerr)
	}
	if n := prepCalls.Load(); n != 1 {
		t.Fatalf("Prepare ran %d times across sticky answers, want 1 (no retry storm)", n)
	}

	// The breaker's half-open probe path: retry the Prepare, then answer.
	if err := st.RetryPrepare(); err != nil {
		t.Fatalf("RetryPrepare on a healed scheme: %v", err)
	}
	got, err := st.Answer([]byte("q"))
	if err != nil || !got {
		t.Fatalf("healed answer = (%v, %v), want (true, nil)", got, err)
	}

	// Healing happened in place: same dataset, no re-register.
	cur, ok := reg.Get("d")
	if !ok || cur != st {
		t.Fatal("healing replaced the registered dataset; the heal must be in place")
	}
	if n := reg.PreprocessCount(); n != 1 {
		t.Fatalf("heal re-preprocessed: PreprocessCount %d, want 1", n)
	}
	if reg.Len() != 1 {
		t.Fatalf("catalog has %d entries after heal, want 1", reg.Len())
	}
}

// TestQuarantineRebuildReplaysSurvivingLog pins the quarantine-and-heal
// protocol end to end on a real directory: a snapshot corrupted on disk
// is renamed aside as *.quarantine (kept for forensics), the dataset is
// rebuilt from source rather than erroring permanently, the surviving
// write-ahead delta log — acknowledged batches for this same data — is
// replayed on top, and the healed snapshot serves the next restart as a
// clean load.
func TestQuarantineRebuildReplaysSurvivingLog(t *testing.T) {
	dir := t.TempDir()
	data := schemes.RelationFromKeys([]int64{2, 4, 6})

	reg := NewRegistry(dir)
	reg.SetCheckpointEvery(100) // keep the delta log alive across the corruption
	if _, err := reg.Register("d", schemes.PointSelectionScheme(), data); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyDelta("d", [][]byte{schemes.KeysDelta([]int64{9})}); err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte of the snapshot body — the CRC must catch it.
	path := SnapshotPath(dir, "d")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: the corrupt artifact is quarantined, Π rebuilt from source,
	// and the log replayed — the acknowledged delta is not lost.
	reg2 := NewRegistry(dir)
	reg2.SetCheckpointEvery(100)
	st2, err := reg2.Register("d", schemes.PointSelectionScheme(), data)
	if err != nil {
		t.Fatalf("re-register over a corrupt snapshot: %v", err)
	}
	if st2.WasLoaded() {
		t.Fatal("dataset claims to be snapshot-loaded over a corrupt snapshot")
	}
	if v := st2.Version(); v != 1 {
		t.Fatalf("rebuilt dataset at version %d, want 1 (log replayed)", v)
	}
	if n := reg2.ReplayCount(); n != 1 {
		t.Fatalf("ReplayCount %d after rebuild, want 1", n)
	}
	if n := reg2.QuarantineCount(); n != 1 {
		t.Fatalf("QuarantineCount %d after rebuild, want 1", n)
	}
	for _, tc := range []struct {
		key  int64
		want bool
	}{{2, true}, {9, true}, {3, false}} {
		got, err := st2.Answer(schemes.PointQuery(tc.key))
		if err != nil || got != tc.want {
			t.Fatalf("healed dataset: key %d = (%v, %v), want (%v, nil)", tc.key, got, err, tc.want)
		}
	}

	// The corrupt bytes survive for forensics under *.quarantine.
	qpath := QuarantinePath(path)
	qraw, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("quarantined artifact missing: %v", err)
	}
	if string(qraw) != string(raw) {
		t.Fatal("quarantined artifact is not the corrupt bytes verbatim")
	}

	// The heal rewrote a valid snapshot: the next restart loads cleanly at
	// the replayed version.
	reg3 := NewRegistry(dir)
	st3, err := reg3.Register("d", schemes.PointSelectionScheme(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.WasLoaded() {
		t.Fatal("post-heal restart did not load the healed snapshot")
	}
	if v := st3.Version(); v != 1 {
		t.Fatalf("post-heal restart at version %d, want 1", v)
	}
	if got, err := st3.Answer(schemes.PointQuery(9)); err != nil || !got {
		t.Fatalf("post-heal restart: key 9 = (%v, %v), want (true, nil)", got, err)
	}
	if reg3.QuarantineCount() != 0 {
		t.Fatal("clean restart reported a quarantine")
	}
}
