package store_test

// The crash matrix: run the full durable maintenance protocol — register,
// PATCH batches of inserts/deletes/upserts, write-ahead log, checkpoint —
// over the fault-injecting medium (internal/store/faultfs), kill it at
// EVERY file-system operation, restart, and require the recovered dataset
// to sit exactly at the last acknowledged version with Π byte-exact (or
// verdict-exact where Π is not canonical) against a from-scratch rebuild of
// the data at that version. The sweep subsumes the five named kill points —
// pre-log-append, mid-record (torn), post-log-pre-commit, mid-checkpoint,
// post-checkpoint-pre-truncate — which TestCrashKillPoints also pins by
// name, with the exact recovery behavior (replayed vs skipped) each implies.
//
// This file is an external test package: faultfs imports store, so an
// in-package test would be an import cycle — and everything the matrix
// needs is exported API, which is the point of the FS/Medium seam.

import (
	"bytes"
	"strings"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
	"pitract/internal/store/faultfs"
)

const (
	crashDir = "/data"
	crashID  = "d"
)

// crashScheme is one scheme's crash scenario: a dataset plus delta batches
// that exercise insert, delete, and upsert kinds (each batch is one PATCH =
// one log record; versions count deltas).
type crashScheme struct {
	name      string
	inc       *core.IncrementalScheme
	data      []byte
	batches   [][][]byte
	probes    [][]byte
	byteExact bool
}

// crashSchemes covers the four delta-capable schemes with mixed-kind
// batches: inserts, deletes of original and of freshly inserted elements,
// re-insertion of deleted ones (upsert), and an idempotent no-op tombstone.
func crashSchemes() []crashScheme {
	keyData := schemes.RelationFromKeys([]int64{2, 4, 6, 8, 10})
	keyBatches := func() [][][]byte {
		return [][][]byte{
			{schemes.KeysDelta([]int64{101, 103})},
			{schemes.KeysDeleteDelta([]int64{4, 101})},
			{schemes.KeysUpsertDelta([]int64{4, 200}), schemes.KeysDelta([]int64{7})},
			{schemes.KeysDeleteDelta([]int64{999})}, // absent: idempotent tombstone
		}
	}
	keyProbes := make([][]byte, 0, 32)
	for _, k := range []int64{2, 4, 6, 7, 8, 10, 101, 103, 200, 999, 1, 5} {
		keyProbes = append(keyProbes, schemes.PointQuery(k))
	}
	rangeProbes := make([][]byte, 0, 16)
	for _, r := range [][2]int64{{0, 3}, {3, 5}, {5, 7}, {7, 9}, {100, 104}, {199, 201}, {900, 1000}, {11, 100}} {
		rangeProbes = append(rangeProbes, schemes.RangeQuery(r[0], r[1]))
	}

	// Two directed chains; the batches bridge, cut, and re-bridge them.
	g := graph.New(8, true)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		g.MustAddEdge(e[0], e[1])
	}
	edgeBatches := [][][]byte{
		{schemes.EdgeDelta(3, 4)},                                // bridge the chains
		{schemes.EdgeDeleteDelta(1, 2)},                          // cut the first chain
		{schemes.EdgeDelta(1, 2), schemes.EdgeDeleteDelta(3, 4)}, // restore, un-bridge
		{schemes.EdgeUpsertDelta(0, 1)},                          // present: no-op upsert
	}
	pairProbes := make([][]byte, 0, 64)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			pairProbes = append(pairProbes, schemes.NodePairQuery(u, v))
		}
	}

	return []crashScheme{
		{
			name: "point-selection/sorted-keys", inc: schemes.IncrementalPointSelection(),
			data: keyData, batches: keyBatches(), probes: keyProbes, byteExact: true,
		},
		{
			name: "range-selection/sorted-keys", inc: schemes.IncrementalRangeSelection(),
			data: keyData, batches: keyBatches(), probes: rangeProbes, byteExact: true,
		},
		{
			name: "list-membership/sorted", inc: schemes.IncrementalListMembership(),
			data: schemes.EncodeList([]int64{2, 4, 6, 8, 10}), batches: keyBatches(),
			probes: keyProbes, byteExact: false, // fresh Π keeps duplicates the merge drops
		},
		{
			name: "reachability/closure-matrix", inc: schemes.IncrementalReachability(),
			data: g.Encode(), batches: edgeBatches, probes: pairProbes, byteExact: true,
		},
	}
}

// flatDeltas flattens a scenario's batches into one delta-per-version list.
func flatDeltas(cs crashScheme) [][]byte {
	var out [][]byte
	for _, b := range cs.batches {
		out = append(out, b...)
	}
	return out
}

// oracleStates returns the raw dataset at every version boundary:
// states[v] = D ⊕ ∆D₁ ⊕ … ⊕ ∆Dᵥ, the ground truth the recovered Π at
// version v is checked against.
func oracleStates(t *testing.T, cs crashScheme) [][]byte {
	t.Helper()
	states := [][]byte{cs.data}
	cur := cs.data
	for i, d := range flatDeltas(cs) {
		next, err := cs.inc.ApplyUpdate(cur, d)
		if err != nil {
			t.Fatalf("oracle ⊕ delta %d: %v", i, err)
		}
		cur = next
		states = append(states, cur)
	}
	return states
}

// assertOracle checks a store against a from-scratch preprocessing of the
// oracle's raw data — byte-exact where the artifact is canonical,
// verdict-exact on every probe always.
func assertOracle(t *testing.T, cs crashScheme, st *store.Store, raw []byte, label string) {
	t.Helper()
	fresh, err := cs.inc.Scheme.Preprocess(raw)
	if err != nil {
		t.Fatalf("%s: oracle preprocess: %v", label, err)
	}
	if cs.byteExact {
		maintained, _ := st.View()
		if !bytes.Equal(maintained, fresh) {
			t.Fatalf("%s: recovered Π diverges from rebuilt Π (%d vs %d bytes)",
				label, len(maintained), len(fresh))
		}
	}
	for pi, q := range cs.probes {
		got, err := st.Answer(q)
		if err != nil {
			t.Fatalf("%s probe %d: recovered answer: %v", label, pi, err)
		}
		want, err := cs.inc.Scheme.Answer(fresh, q)
		if err != nil {
			t.Fatalf("%s probe %d: oracle answer: %v", label, pi, err)
		}
		if got != want {
			t.Fatalf("%s probe %d: recovered %v, oracle %v", label, pi, got, want)
		}
	}
}

// runMaintenance registers the scenario's dataset on a fresh registry over
// f and applies its batches until done or until the armed crash interrupts.
// It returns the last acknowledged version. A batch may succeed even after
// the crash fires (a checkpoint-phase crash does not revoke the durable log
// append); only an error ends the run.
func runMaintenance(t *testing.T, f *faultfs.FS, cs crashScheme, cadence int) (acked uint64, reg *store.Registry) {
	t.Helper()
	reg = store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
	if _, err := reg.Register(crashID, cs.inc.Scheme, cs.data); err != nil {
		t.Fatalf("register: %v (crashed=%v)", err, f.Crashed())
	}
	for bi, batch := range cs.batches {
		v, err := reg.ApplyDelta(crashID, batch)
		if err != nil {
			if !f.Crashed() {
				t.Fatalf("batch %d failed without a crash: %v", bi, err)
			}
			return acked, reg
		}
		acked = v
	}
	return acked, reg
}

// recoverAndVerify restarts the crashed medium, re-registers, and asserts
// the recovered store: loaded (never re-preprocessed), at exactly the last
// acknowledged version — the write-ahead protocol makes acknowledgement and
// durability the same event — and equivalent to the oracle at that version.
func recoverAndVerify(t *testing.T, f *faultfs.FS, cs crashScheme, cadence int, acked uint64, states [][]byte, label string) (*store.Store, *store.Registry) {
	t.Helper()
	f.Restart()
	reg := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
	st, err := reg.Register(crashID, cs.inc.Scheme, cs.data)
	if err != nil {
		t.Fatalf("%s: recovery registration: %v", label, err)
	}
	if !st.WasLoaded() {
		t.Fatalf("%s: recovery re-preprocessed instead of loading the snapshot", label)
	}
	if got := st.Version(); got != acked {
		t.Fatalf("%s: recovered version %d, want acknowledged %d", label, got, acked)
	}
	assertOracle(t, cs, st, states[acked], label+": recovered state")
	return st, reg
}

// finishAndVerify applies every delta beyond the recovered version and
// checks the final state — recovery must leave a dataset that not only
// answers correctly but keeps maintaining correctly.
func finishAndVerify(t *testing.T, reg *store.Registry, cs crashScheme, from uint64, states [][]byte, label string) {
	t.Helper()
	deltas := flatDeltas(cs)
	total := uint64(len(deltas))
	if from < total {
		v, err := reg.ApplyDelta(crashID, deltas[from:])
		if err != nil {
			t.Fatalf("%s: continue after recovery: %v", label, err)
		}
		if v != total {
			t.Fatalf("%s: continued to version %d, want %d", label, v, total)
		}
	}
	st, ok := reg.Get(crashID)
	if !ok {
		t.Fatalf("%s: dataset vanished", label)
	}
	assertOracle(t, cs, st, states[total], label+": final state")
}

// TestCrashMatrixStore is the full sweep: for every scheme, kill the medium
// at every single file-system operation of the maintenance phase (with a
// torn tail on whichever operation is a write), restart, and verify
// recovery and continued maintenance.
func TestCrashMatrixStore(t *testing.T) {
	for _, cs := range crashSchemes() {
		t.Run(cs.name, func(t *testing.T) {
			states := oracleStates(t, cs)
			total := uint64(len(flatDeltas(cs)))

			// Dry runs: count the registration ops and the full scenario ops.
			setup := faultfs.New()
			reg := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: setup, CheckpointEvery: 1})
			if _, err := reg.Register(crashID, cs.inc.Scheme, cs.data); err != nil {
				t.Fatal(err)
			}
			setupOps := setup.Ops()
			dry := faultfs.New()
			if acked, _ := runMaintenance(t, dry, cs, 1); acked != total {
				t.Fatalf("dry run acknowledged %d deltas, want %d", acked, total)
			}
			totalOps := dry.Ops()
			if totalOps <= setupOps {
				t.Fatalf("no maintenance ops to crash (%d setup, %d total)", setupOps, totalOps)
			}

			for k := setupOps; k < totalOps; k++ {
				f := faultfs.New()
				f.SetTornBytes(5)
				f.CrashAfterOps(k)
				acked, _ := runMaintenance(t, f, cs, 1)
				if !f.Crashed() {
					t.Fatalf("crashAt=%d did not fire (trace len %d)", k, f.Ops())
				}
				label := dry.Trace()[k]
				_, reg2 := recoverAndVerify(t, f, cs, 1, acked, states,
					"crashAt="+label)
				finishAndVerify(t, reg2, cs, acked, states, "crashAt="+label)
			}
		})
	}
}

// findOp returns the absolute index of the nth (0-based) trace entry with
// the given prefix or containing the given fragment.
func findOp(t *testing.T, trace []string, fragment string, nth int) int {
	t.Helper()
	seen := 0
	for i, e := range trace {
		if strings.Contains(e, fragment) {
			if seen == nth {
				return i
			}
			seen++
		}
	}
	t.Fatalf("trace has no occurrence %d of %q (len %d)", nth, fragment, len(trace))
	return -1
}

// TestCrashKillPoints pins the five named kill points of the commit
// protocol by locating them in a dry-run trace, for every scheme. The
// target is the scenario's delete batch (batch index 1), so deletions —
// not just inserts — are what recovery replays or discards. Expected
// recovery per point (checkpoint cadence 1, batch = 1 delta, acked = the
// last version ApplyDelta returned):
//
//	pre-log-append        crash opening the log: batch refused, nothing
//	                      durable — recovered = version before the batch.
//	mid-record (torn)     crash inside the record write, torn prefix on
//	                      the platter: ReadLog discards the tail —
//	                      recovered = version before the batch.
//	post-log-pre-commit   log record durable, checkpoint never started:
//	                      the batch WAS acknowledged — recovered = its
//	                      version, via one replayed record.
//	mid-checkpoint        crash at the snapshot rename: old snapshot
//	                      survives (atomic write), log replays — recovered
//	                      = acknowledged version, one replayed record.
//	post-checkpoint-      new snapshot durable, stale log left behind:
//	pre-truncate          records skip as already checkpointed — recovered
//	                      = acknowledged version, zero replays.
func TestCrashKillPoints(t *testing.T) {
	logPath := store.LogPath(crashDir, crashID)
	snapPath := store.SnapshotPath(crashDir, crashID)
	for _, cs := range crashSchemes() {
		t.Run(cs.name, func(t *testing.T) {
			states := oracleStates(t, cs)
			dry := faultfs.New()
			runMaintenance(t, dry, cs, 1)
			trace := dry.Trace()

			// Batch index 1 (the delete batch). Registration itself performs
			// one rename-to-snapshot and one remove-log (of the absent log),
			// and each prior batch one more of each — hence the occurrence
			// arithmetic below.
			const b = 1
			vBefore := uint64(len(cs.batches[0]))          // versions acked before batch 1
			vAfter := vBefore + uint64(len(cs.batches[b])) // version after batch 1
			points := []struct {
				name    string
				idx     int
				torn    int
				acked   uint64
				replays int64
			}{
				{"pre-log-append", findOp(t, trace, "open "+logPath, b), 0, vBefore, 0},
				{"mid-record-torn", findOp(t, trace, "write "+logPath, b), 6, vBefore, 0},
				// After the log's sync comes its creation SyncDir, then the
				// checkpoint's first op: crash there = record durable,
				// checkpoint never ran.
				{"post-log-pre-commit", findOp(t, trace, "sync "+logPath, b) + 2, 0, vAfter, 1},
				{"mid-checkpoint", findOp(t, trace, "-> "+snapPath, b+1), 0, vAfter, 1},
				{"post-checkpoint-pre-truncate", findOp(t, trace, "remove "+logPath, b+1), 0, vAfter, 0},
			}
			for _, p := range points {
				t.Run(p.name, func(t *testing.T) {
					f := faultfs.New()
					f.SetTornBytes(p.torn)
					f.CrashAfterOps(p.idx)
					acked, _ := runMaintenance(t, f, cs, 1)
					if !f.Crashed() {
						t.Fatalf("kill point op %d (%s) did not fire", p.idx, trace[p.idx])
					}
					if acked != p.acked {
						t.Fatalf("acknowledged version %d, want %d", acked, p.acked)
					}
					f.Restart()
					reg := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: 1})
					st, err := reg.Register(crashID, cs.inc.Scheme, cs.data)
					if err != nil {
						t.Fatalf("recovery: %v", err)
					}
					if got := st.Version(); got != p.acked {
						t.Fatalf("recovered version %d, want %d", got, p.acked)
					}
					if got := reg.ReplayCount(); got != p.replays {
						t.Fatalf("replayed %d log records, want %d", got, p.replays)
					}
					assertOracle(t, cs, st, states[p.acked], p.name)
					finishAndVerify(t, reg, cs, p.acked, states, p.name)
				})
			}
		})
	}
}

// TestCrashReplayMultiRecord runs with a checkpoint cadence larger than the
// scenario, so every batch lives only in the log; a hard kill then forces
// recovery to replay the whole history — and the replay itself must
// checkpoint, leaving no log behind.
func TestCrashReplayMultiRecord(t *testing.T) {
	for _, cs := range crashSchemes() {
		t.Run(cs.name, func(t *testing.T) {
			states := oracleStates(t, cs)
			total := uint64(len(flatDeltas(cs)))
			const cadence = 100
			f := faultfs.New()
			acked, _ := runMaintenance(t, f, cs, cadence)
			if acked != total {
				t.Fatalf("acknowledged %d, want %d", acked, total)
			}
			// Hard kill: no checkpoint ever ran, the snapshot is still at
			// version 0, the log holds every batch.
			st, reg := recoverAndVerify(t, f, cs, cadence, total, states, "replay-all")
			if got, want := reg.ReplayCount(), int64(len(cs.batches)); got != want {
				t.Fatalf("replayed %d records, want %d", got, want)
			}
			if !st.WasLoaded() {
				t.Fatal("recovery re-preprocessed")
			}
			// The replay folded into a checkpoint: log gone, snapshot at the
			// replayed version — a second restart replays nothing.
			if recs, err := store.ReadLog(f, store.LogPath(crashDir, crashID)); err != nil || len(recs) != 0 {
				t.Fatalf("log after replay checkpoint: %d records, err=%v", len(recs), err)
			}
			f.Restart()
			reg2 := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
			st2, err := reg2.Register(crashID, cs.inc.Scheme, cs.data)
			if err != nil {
				t.Fatal(err)
			}
			if st2.Version() != total || reg2.ReplayCount() != 0 {
				t.Fatalf("second restart: version %d (want %d), replays %d (want 0)",
					st2.Version(), total, reg2.ReplayCount())
			}
		})
	}
}

// TestCrashTornTailAfterDurableRecords crashes mid-append with earlier
// records already durable in the same log: recovery must keep every whole
// record and discard exactly the torn tail.
func TestCrashTornTailAfterDurableRecords(t *testing.T) {
	cs := crashSchemes()[0]
	states := oracleStates(t, cs)
	const cadence = 100
	dry := faultfs.New()
	runMaintenance(t, dry, cs, cadence)
	// The last batch's log write: batches 0..2 are durable records by then.
	idx := findOp(t, dry.Trace(), "write "+store.LogPath(crashDir, crashID), len(cs.batches)-1)

	f := faultfs.New()
	f.SetTornBytes(9)
	f.CrashAfterOps(idx)
	acked, _ := runMaintenance(t, f, cs, cadence)
	wantAcked := uint64(0)
	for _, b := range cs.batches[:len(cs.batches)-1] {
		wantAcked += uint64(len(b))
	}
	if acked != wantAcked {
		t.Fatalf("acknowledged %d, want %d", acked, wantAcked)
	}
	_, reg := recoverAndVerify(t, f, cs, cadence, wantAcked, states, "torn-tail")
	if got, want := reg.ReplayCount(), int64(len(cs.batches)-1); got != want {
		t.Fatalf("replayed %d records, want %d (whole records kept, torn tail dropped)", got, want)
	}
	finishAndVerify(t, reg, cs, wantAcked, states, "torn-tail")
}

// TestCrashDuplicateReplayIsIdempotent injects a write failure into the
// post-replay checkpoint, so the log survives recovery — the next restart
// replays the SAME records a second time and must land on the same state,
// not double-apply them.
func TestCrashDuplicateReplayIsIdempotent(t *testing.T) {
	cs := crashSchemes()[3] // closure maintenance is the least idempotent-looking
	states := oracleStates(t, cs)
	total := uint64(len(flatDeltas(cs)))
	const cadence = 100
	f := faultfs.New()
	if acked, _ := runMaintenance(t, f, cs, cadence); acked != total {
		t.Fatalf("acknowledged %d, want %d", acked, total)
	}
	f.Restart()
	f.FailAfterWrites(0) // recovery's checkpoint write fails; replay stands
	reg := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
	st, err := reg.Register(crashID, cs.inc.Scheme, cs.data)
	if err != nil {
		t.Fatalf("recovery with failing checkpoint: %v", err)
	}
	if st.Version() != total {
		t.Fatalf("recovered version %d, want %d", st.Version(), total)
	}
	if recs, err := store.ReadLog(f, store.LogPath(crashDir, crashID)); err != nil || len(recs) != len(cs.batches) {
		t.Fatalf("log should survive a failed replay checkpoint: %d records, err=%v", len(recs), err)
	}

	// Second restart: the same records replay again on the same old
	// snapshot; the state must be identical, and this time the checkpoint
	// sticks.
	f.Restart()
	reg2 := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
	st2, err := reg2.Register(crashID, cs.inc.Scheme, cs.data)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version() != total {
		t.Fatalf("duplicate replay landed on version %d, want %d", st2.Version(), total)
	}
	if got, want := reg2.ReplayCount(), int64(len(cs.batches)); got != want {
		t.Fatalf("duplicate replay applied %d records, want %d", got, want)
	}
	assertOracle(t, cs, st2, states[total], "duplicate replay")
	if recs, _ := store.ReadLog(f, store.LogPath(crashDir, crashID)); len(recs) != 0 {
		t.Fatalf("log not truncated after successful replay checkpoint: %d records", len(recs))
	}
}

// TestCrashLyingFsyncLosesQuietly documents the one fault the protocol
// cannot detect: a medium that acknowledges fsync without persisting
// anything. Acknowledged batches vanish — but recovery still lands on a
// CONSISTENT earlier version (the registration snapshot), never on torn
// state.
func TestCrashLyingFsyncLosesQuietly(t *testing.T) {
	cs := crashSchemes()[0]
	states := oracleStates(t, cs)
	const cadence = 100
	f := faultfs.New()
	reg := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
	if _, err := reg.Register(crashID, cs.inc.Scheme, cs.data); err != nil {
		t.Fatal(err)
	}
	f.LieOnSync(true) // every fsync from here on is a lie
	for _, batch := range cs.batches {
		if _, err := reg.ApplyDelta(crashID, batch); err != nil {
			t.Fatalf("lying medium must still acknowledge: %v", err)
		}
	}
	f.Restart()
	reg2 := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: cadence})
	st2, err := reg2.Register(crashID, cs.inc.Scheme, cs.data)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version() != 0 {
		t.Fatalf("version %d survived a lying fsync, want 0", st2.Version())
	}
	assertOracle(t, cs, st2, states[0], "lying fsync")
}

// TestCrashReplayGapIsAnError pins the missing-batch detector: a log whose
// first live record starts above the snapshot version means an acknowledged
// batch vanished, and registration must refuse rather than silently resume
// behind acknowledged state.
func TestCrashReplayGapIsAnError(t *testing.T) {
	cs := crashSchemes()[0]
	f := faultfs.New()
	reg := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: 1})
	if _, err := reg.Register(crashID, cs.inc.Scheme, cs.data); err != nil {
		t.Fatal(err)
	}
	// Forge a log record claiming versions [3,4) on a version-0 snapshot.
	if err := store.AppendLogRecord(f, store.LogPath(crashDir, crashID), 3,
		[][]byte{schemes.KeysDelta([]int64{42})}); err != nil {
		t.Fatal(err)
	}
	f.Restart()
	reg2 := store.NewRegistryMedium(&store.Medium{Dir: crashDir, FS: f, CheckpointEvery: 1})
	_, err := reg2.Register(crashID, cs.inc.Scheme, cs.data)
	if err == nil {
		t.Fatal("registration resumed over a log gap")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gap error %q does not name the missing batch", err)
	}
}
