// Package store persists preprocessed stores and serves them from a
// registry. The paper's asymmetry — pay PTIME preprocessing once, then
// answer every query within the NC budget — only pays off in a system when
// Π(D) outlives the process that computed it. This package makes Π(D) a
// durable artifact: a versioned, checksummed snapshot file that can be
// written once and reloaded across restarts, plus a thread-safe Registry
// that maps dataset IDs to preprocessed stores, preprocessing on first
// registration and memoizing (and optionally persisting) thereafter.
//
// The snapshot format is deliberately dumb: magic, format version, a CRC-32
// of the payload, then the scheme name, free-text notes, a SHA-256 of the
// raw data the store was preprocessed from, and the preprocessed bytes —
// the fields framed with the same self-delimiting pair codec (core.PadPair)
// the formal framework uses for instance encoding. Corrupt or truncated
// files are rejected with errors, never panics (see the fuzz harness).
//
// The registry's catalog is shape-agnostic: an entry is any Dataset — a
// plain Store here, or a composite like internal/shard's ShardedStore
// plugged in through RegisterDataset — and the HTTP server answers through
// that interface, so new dataset shapes need no serving changes.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"pitract/internal/core"
)

// snapshotMagic opens every snapshot file. The trailing byte is the format
// version; bump it when the payload layout changes.
var snapshotMagic = []byte("PITRACTS\x01")

// DataChecksum is the SHA-256 digest of the raw (pre-preprocessing) data a
// snapshot was built from. Open uses it to detect stale snapshots: when the
// data under a dataset ID changes, the old Π(D) is silently invalid, so the
// digest — not the file's existence — decides whether a reload is sound.
type DataChecksum = [sha256.Size]byte

// Snapshot is one persisted preprocessed store: which scheme produced it,
// human-readable notes (the scheme's complexity annotations by default), the
// digest of the data it was preprocessed from, and Π(D) itself.
type Snapshot struct {
	SchemeName string
	Notes      string
	DataSum    DataChecksum
	Prep       []byte
}

// EncodeSnapshot renders a snapshot in the versioned on-disk format:
//
//	magic ‖ version ‖ crc32(payload) ‖ payload
//	payload = PadPair(PadPair(scheme, notes), PadPair(dataSum, prep))
func EncodeSnapshot(s *Snapshot) []byte {
	header := core.PadPair([]byte(s.SchemeName), []byte(s.Notes))
	body := core.PadPair(s.DataSum[:], s.Prep)
	payload := core.PadPair(header, body)
	out := make([]byte, 0, len(snapshotMagic)+4+len(payload))
	out = append(out, snapshotMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeSnapshot parses the versioned format. Any deviation — wrong magic,
// wrong version, bad checksum, truncated or malformed payload — is an
// error; DecodeSnapshot never panics on hostile input.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(b))
	}
	for i, m := range snapshotMagic {
		if b[i] != m {
			return nil, fmt.Errorf("store: bad snapshot magic/version (offset %d)", i)
		}
	}
	want := binary.BigEndian.Uint32(b[len(snapshotMagic):])
	payload := b[len(snapshotMagic)+4:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (want %08x, got %08x)", want, got)
	}
	header, body, err := core.UnpadPair(payload)
	if err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot payload: %w", err)
	}
	scheme, notes, err := core.UnpadPair(header)
	if err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot header: %w", err)
	}
	sum, prep, err := core.UnpadPair(body)
	if err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot body: %w", err)
	}
	s := &Snapshot{
		SchemeName: string(scheme),
		Notes:      string(notes),
		Prep:       append([]byte(nil), prep...),
	}
	if len(sum) != len(s.DataSum) {
		return nil, fmt.Errorf("store: data checksum is %d bytes, want %d", len(sum), len(s.DataSum))
	}
	copy(s.DataSum[:], sum)
	return s, nil
}

// WriteFileAtomic writes b to path atomically: temp file in the target
// directory, fsync, rename. A crash mid-write leaves either the old file or
// none — never a torn one. It is the durability primitive behind Save and
// the shard manifest writer.
func WriteFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, ".pitract-atomic-*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	return nil
}

// Save writes a snapshot atomically (see WriteFileAtomic); the checksum in
// the encoding catches torn files from less careful writers.
func Save(path string, s *Snapshot) error {
	return WriteFileAtomic(path, EncodeSnapshot(s))
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	s, err := DecodeSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	return s, nil
}

// SumData digests raw data for snapshot freshness checks.
func SumData(data []byte) DataChecksum { return sha256.Sum256(data) }

// Store is one preprocessed store ready to answer queries: a scheme plus
// its immutable Π(D). Any number of goroutines may call Answer or
// AnswerBatch concurrently (the scheme concurrency contract, core/batch.go).
type Store struct {
	// ID is the dataset identifier the store was registered under ("" for
	// stores opened directly from a path).
	ID string
	// Scheme is the Π-tractability scheme that produced — and answers
	// against — the preprocessed bytes.
	Scheme *core.Scheme
	// Prep is Π(D), immutable after construction.
	Prep []byte
	// DataSum digests the raw data Prep was preprocessed from.
	DataSum DataChecksum
	// Loaded reports whether Prep came from a snapshot file (true) or a
	// fresh Preprocess call (false).
	Loaded bool
}

// DatasetID implements Dataset.
func (st *Store) DatasetID() string { return st.ID }

// SchemeName implements Dataset.
func (st *Store) SchemeName() string { return st.Scheme.Name() }

// DataDigest implements Dataset.
func (st *Store) DataDigest() DataChecksum { return st.DataSum }

// PrepBytes implements Dataset: the size of Π(D).
func (st *Store) PrepBytes() int { return len(st.Prep) }

// ShardCount implements Dataset: a plain store is its own single shard.
func (st *Store) ShardCount() int { return 1 }

// WasLoaded implements Dataset.
func (st *Store) WasLoaded() bool { return st.Loaded }

// Answer decides one query against the preprocessed store.
func (st *Store) Answer(q []byte) (bool, error) {
	return st.Scheme.Answer(st.Prep, q)
}

// AnswerBatch answers queries concurrently through the scheme's worker
// pool; parallelism <= 0 selects GOMAXPROCS.
func (st *Store) AnswerBatch(queries [][]byte, parallelism int) ([]bool, error) {
	return st.Scheme.AnswerBatch(st.Prep, queries, parallelism)
}

// Snapshot renders the store as a persistable snapshot.
func (st *Store) Snapshot() *Snapshot {
	return &Snapshot{
		SchemeName: st.Scheme.Name(),
		Notes:      st.Scheme.PreprocessNote + " / " + st.Scheme.AnswerNote,
		DataSum:    st.DataSum,
		Prep:       st.Prep,
	}
}

// Open returns a preprocessed store for (scheme, data), reusing the
// snapshot at path when it is fresh: same scheme name and same data
// digest. Otherwise it preprocesses, saves the new snapshot to path, and
// returns the fresh store. This is the single-store face of the
// preprocess-once contract; Registry does the same per dataset ID.
func Open(path string, scheme *core.Scheme, data []byte) (*Store, error) {
	sum := SumData(data)
	if snap, err := Load(path); err == nil &&
		snap.SchemeName == scheme.Name() && snap.DataSum == sum {
		return &Store{Scheme: scheme, Prep: snap.Prep, DataSum: sum, Loaded: true}, nil
	}
	pd, err := scheme.Preprocess(data)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: preprocess (%s): %w", path, scheme.Name(), err)
	}
	st := &Store{Scheme: scheme, Prep: pd, DataSum: sum}
	if err := Save(path, st.Snapshot()); err != nil {
		return nil, err
	}
	return st, nil
}
