// Package store persists preprocessed stores and serves them from a
// registry. The paper's asymmetry — pay PTIME preprocessing once, then
// answer every query within the NC budget — only pays off in a system when
// Π(D) outlives the process that computed it. This package makes Π(D) a
// durable artifact: a versioned, checksummed snapshot file that can be
// written once and reloaded across restarts, plus a thread-safe Registry
// that maps dataset IDs to preprocessed stores, preprocessing on first
// registration and memoizing (and optionally persisting) thereafter.
//
// The snapshot format is deliberately dumb: magic, format version, a CRC-32
// of the payload, then the scheme name, free-text notes, a SHA-256 of the
// raw data the store was preprocessed from, and the preprocessed bytes —
// the fields framed with the same self-delimiting pair codec (core.PadPair)
// the formal framework uses for instance encoding. Corrupt or truncated
// files are rejected with errors, never panics (see the fuzz harness).
//
// The registry's catalog is shape-agnostic: an entry is any Dataset — a
// plain Store here, or a composite like internal/shard's ShardedStore
// plugged in through RegisterDataset — and the HTTP server answers through
// that interface, so new dataset shapes need no serving changes.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"pitract/internal/core"
	"pitract/internal/obs"
)

// PATCH-maintenance stage histograms: the incremental in-memory apply, the
// log append (the commit point), and the checkpoint rewrite are timed
// separately so dashboards can tell CPU-bound maintenance apart from
// fsync-bound persistence. Checkpoint failures after a durable log append
// are counted, not fatal — the log stays authoritative and the next batch
// retries the checkpoint.
var (
	obsPatchApply      = obs.Stage(obs.StagePatchApply)
	obsPatchPersist    = obs.Stage(obs.StagePatchPersist)
	obsLogAppend       = obs.Stage(obs.StageLogAppend)
	obsCheckpointFails = obs.Default.Counter("pitract_checkpoint_failures_total",
		"Checkpoint (snapshot rewrite + log truncate) failures after a durable log append.")
)

// snapshotMagic opens every snapshot file. The trailing byte is the format
// version; bump it when the payload layout changes. Version 2 added the
// maintenance version counter (incremental serving); version 3 wrapped the
// preprocessed bytes in a compressed, stream-decodable section (see
// encodePrepSection). Version-1 and version-2 files are still decoded —
// v1 as version-0 datasets, v2 with its raw prep bytes.
var (
	snapshotMagic   = []byte("PITRACTS\x03")
	snapshotMagicV2 = []byte("PITRACTS\x02")
	snapshotMagicV1 = []byte("PITRACTS\x01")
)

// Prep-section codecs (the first byte of a v3 snapshot's prep section).
const (
	// prepCodecRaw stores Π verbatim.
	prepCodecRaw = 0
	// prepCodecDeltaVarint stores Π as delta-varints of its non-decreasing
	// 8-byte big-endian records — the shape of every sorted-key artifact
	// (point/range selection, list membership), whose biased big-endian
	// keys are order-preserving, so a sorted file is exactly a
	// non-decreasing record sequence.
	prepCodecDeltaVarint = 1
)

// encodePrepSection renders Π as a self-describing compressed section:
//
//	codec byte ‖ body
//
// The encoder applies the delta-varint codec only when Π parses as a
// non-empty sequence of non-decreasing 8-byte big-endian records AND the
// encoding is strictly smaller; anything else ships raw. Both codecs
// decode in one forward pass with O(1) extra state per record — a reader
// can stream records out of the section without materializing Π first —
// and the codec choice is a pure function of the content, so
// encode(decode(section)) is deterministic.
func encodePrepSection(prep []byte) []byte {
	if dv := deltaEncodeRecords(prep); dv != nil {
		return append([]byte{prepCodecDeltaVarint}, dv...)
	}
	return append([]byte{prepCodecRaw}, prep...)
}

// deltaEncodeRecords delta-varint encodes a non-decreasing sequence of
// 8-byte big-endian records as
//
//	uvarint count ‖ uvarint first ‖ (count−1) × uvarint diff
//
// or returns nil when the input is not such a sequence or the encoding
// would not shrink it.
func deltaEncodeRecords(prep []byte) []byte {
	if len(prep) == 0 || len(prep)%8 != 0 {
		return nil
	}
	count := len(prep) / 8
	out := binary.AppendUvarint(nil, uint64(count))
	prev := uint64(0)
	for i := 0; i < len(prep); i += 8 {
		r := binary.BigEndian.Uint64(prep[i:])
		if i == 0 {
			out = binary.AppendUvarint(out, r)
		} else {
			if r < prev {
				return nil // not sorted: codec does not apply
			}
			out = binary.AppendUvarint(out, r-prev)
		}
		prev = r
		if len(out) >= len(prep) {
			return nil // not shrinking: raw wins
		}
	}
	return out
}

// decodePrepSection parses a v3 prep section. Hostile sections fail
// closed: the record count is bounded by the remaining bytes before any
// allocation, accumulator overflow is rejected, and trailing bytes are an
// error — never a panic, never an unbounded allocation.
func decodePrepSection(sec []byte) ([]byte, error) {
	if len(sec) == 0 {
		return nil, fmt.Errorf("store: empty snapshot prep section")
	}
	codec, body := sec[0], sec[1:]
	switch codec {
	case prepCodecRaw:
		return append([]byte(nil), body...), nil
	case prepCodecDeltaVarint:
		count, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, fmt.Errorf("store: corrupt prep section record count")
		}
		body = body[k:]
		// Every record costs at least one varint byte, so a count beyond
		// the remaining bytes is hostile — reject before allocating 8×.
		if count == 0 || count > uint64(len(body)) {
			return nil, fmt.Errorf("store: prep section claims %d records with %d bytes remaining", count, len(body))
		}
		prep := make([]byte, 0, count*8)
		prev := uint64(0)
		for i := uint64(0); i < count; i++ {
			d, k := binary.Uvarint(body)
			if k <= 0 {
				return nil, fmt.Errorf("store: corrupt prep section at record %d", i)
			}
			body = body[k:]
			if i == 0 {
				prev = d
			} else {
				next := prev + d
				if next < prev {
					return nil, fmt.Errorf("store: prep section record %d overflows", i)
				}
				prev = next
			}
			prep = binary.BigEndian.AppendUint64(prep, prev)
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("store: %d trailing prep section bytes", len(body))
		}
		return prep, nil
	default:
		return nil, fmt.Errorf("store: unknown prep section codec %d", codec)
	}
}

// DataChecksum is the SHA-256 digest of the raw (pre-preprocessing) data a
// snapshot was built from. Open uses it to detect stale snapshots: when the
// data under a dataset ID changes, the old Π(D) is silently invalid, so the
// digest — not the file's existence — decides whether a reload is sound.
type DataChecksum = [sha256.Size]byte

// Snapshot is one persisted preprocessed store: which scheme produced it,
// human-readable notes (the scheme's complexity annotations by default), the
// digest of the data it was preprocessed from, the maintenance version (how
// many deltas have been applied to Π since registration — 0 for a store
// that has only ever been preprocessed), and Π itself. A snapshot with
// Version > 0 holds the maintained Π(D ⊕ ∆D₁ ⊕ … ⊕ ∆Dₖ), so a restart
// resumes from the maintained structure, never a stale one.
type Snapshot struct {
	SchemeName string
	Notes      string
	DataSum    DataChecksum
	Version    uint64
	Prep       []byte
}

// EncodeSnapshot renders a snapshot in the versioned on-disk format:
//
//	magic ‖ version ‖ crc32(payload) ‖ payload
//	payload = PadPair(PadPair(scheme, notes), PadPair(dataSum ‖ uvarint(maintVersion), prepSection))
//
// where prepSection is Π wrapped in the compressed, stream-decodable
// section format (see encodePrepSection): sorted-key artifacts shrink to
// delta-varints of their records, everything else ships raw behind a
// one-byte codec tag.
func EncodeSnapshot(s *Snapshot) []byte {
	header := core.PadPair([]byte(s.SchemeName), []byte(s.Notes))
	meta := binary.AppendUvarint(append([]byte(nil), s.DataSum[:]...), s.Version)
	body := core.PadPair(meta, encodePrepSection(s.Prep))
	payload := core.PadPair(header, body)
	out := make([]byte, 0, len(snapshotMagic)+4+len(payload))
	out = append(out, snapshotMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeSnapshot parses the versioned format — current (v3, compressed
// prep section), v2 (raw prep), and the pre-delta v1 layout, which decodes
// as maintenance version 0. Any deviation — wrong magic, unknown version,
// bad checksum, truncated or malformed payload or prep section — is an
// error; DecodeSnapshot never panics on hostile input.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(b))
	}
	for i, m := range snapshotMagic[:len(snapshotMagic)-1] {
		if b[i] != m {
			return nil, fmt.Errorf("store: bad snapshot magic (offset %d)", i)
		}
	}
	verByte := b[len(snapshotMagic)-1]
	if verByte != snapshotMagic[len(snapshotMagic)-1] &&
		verByte != snapshotMagicV2[len(snapshotMagicV2)-1] &&
		verByte != snapshotMagicV1[len(snapshotMagicV1)-1] {
		return nil, fmt.Errorf("store: unknown snapshot format version %d", verByte)
	}
	v1 := verByte == snapshotMagicV1[len(snapshotMagicV1)-1]
	v3 := verByte == snapshotMagic[len(snapshotMagic)-1]
	want := binary.BigEndian.Uint32(b[len(snapshotMagic):])
	payload := b[len(snapshotMagic)+4:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (want %08x, got %08x)", want, got)
	}
	header, body, err := core.UnpadPair(payload)
	if err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot payload: %w", err)
	}
	scheme, notes, err := core.UnpadPair(header)
	if err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot header: %w", err)
	}
	meta, prep, err := core.UnpadPair(body)
	if err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot body: %w", err)
	}
	s := &Snapshot{
		SchemeName: string(scheme),
		Notes:      string(notes),
	}
	if v3 {
		if s.Prep, err = decodePrepSection(prep); err != nil {
			return nil, err
		}
	} else {
		s.Prep = append([]byte(nil), prep...)
	}
	if len(meta) < len(s.DataSum) {
		return nil, fmt.Errorf("store: data checksum is %d bytes, want %d", len(meta), len(s.DataSum))
	}
	copy(s.DataSum[:], meta)
	rest := meta[len(s.DataSum):]
	if v1 {
		if len(rest) != 0 {
			return nil, fmt.Errorf("store: %d trailing snapshot metadata bytes", len(rest))
		}
		return s, nil
	}
	ver, k := binary.Uvarint(rest)
	if k <= 0 || k != len(rest) {
		return nil, fmt.Errorf("store: corrupt snapshot maintenance version")
	}
	s.Version = ver
	return s, nil
}

// WriteFileAtomic is WriteFileAtomicFS on the real disk (see fs.go for the
// crash-safety contract, including the closing directory fsync).
func WriteFileAtomic(path string, b []byte) error {
	return WriteFileAtomicFS(OSFS, path, b)
}

// Save writes a snapshot atomically (see WriteFileAtomicFS); the checksum
// in the encoding catches torn files from less careful writers.
func Save(path string, s *Snapshot) error {
	return WriteFileAtomic(path, EncodeSnapshot(s))
}

// SaveFS is Save on an explicit file layer.
func SaveFS(fsys FS, path string, s *Snapshot) error {
	return WriteFileAtomicFS(fsys, path, EncodeSnapshot(s))
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) { return LoadFS(OSFS, path) }

// LoadFS is Load on an explicit file layer.
func LoadFS(fsys FS, path string) (*Snapshot, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	s, err := DecodeSnapshot(b)
	if err != nil {
		// Structural failure (magic, CRC, decode) on bytes the medium
		// delivered intact: the artifact itself is corrupt, not the read.
		// The typed wrapper lets the registry quarantine-and-rebuild
		// instead of treating it like a transient I/O error.
		return nil, &CorruptArtifactError{Path: path, Err: fmt.Errorf("store: load %s: %w", path, err)}
	}
	return s, nil
}

// CorruptArtifactError marks a persisted artifact (snapshot or delta
// log) that failed structural validation — wrong magic, checksum
// mismatch, or an undecodable body — as opposed to a transient I/O
// error reading it. The registry responds by renaming the artifact to
// *.quarantine and rebuilding from source (see Registry build) rather
// than wedging the dataset. The message is the underlying error's,
// unchanged.
type CorruptArtifactError struct {
	Path string
	Err  error
}

func (e *CorruptArtifactError) Error() string { return e.Err.Error() }

func (e *CorruptArtifactError) Unwrap() error { return e.Err }

// SumData digests raw data for snapshot freshness checks.
func SumData(data []byte) DataChecksum { return sha256.Sum256(data) }

// Store is one preprocessed store ready to answer queries: a scheme plus
// its Π(D). Any number of goroutines may call Answer or AnswerBatch
// concurrently (the scheme concurrency contract, core/batch.go), and —
// when the scheme has an incremental form — ApplyDeltas maintains Π(D ⊕ ∆D)
// in place under a writer lock: the preprocessed string is replaced
// wholesale, so a concurrent query always answers against a fully applied
// Π (old or new), never a torn one.
type Store struct {
	// ID is the dataset identifier the store was registered under ("" for
	// stores opened directly from a path).
	ID string
	// Scheme is the Π-tractability scheme that produced — and answers
	// against — the preprocessed bytes.
	Scheme *core.Scheme
	// Prep is Π(D) at construction. Once the store is shared it is guarded
	// by the writer lock: read it through View (or Answer/Snapshot), never
	// directly.
	Prep []byte
	// DataSum digests the raw data the store was originally registered
	// from. Deltas do not change it — the digest pins the registration
	// identity, while Version counts the maintenance steps applied since.
	DataSum DataChecksum
	// Loaded reports whether Prep came from a snapshot file (true) or a
	// fresh Preprocess call (false).
	Loaded bool

	// mu guards Prep, version, and the prepared answerer: ApplyDeltas swaps
	// them under the write lock, answer paths snapshot them under the read
	// lock. The write lock is held only for the pointer swap — never across
	// delta application, answerer preparation, or snapshot I/O — so queries
	// are never blocked on maintenance work.
	mu sync.RWMutex
	// maintMu serializes maintainers (ApplyDeltas/Replace callers), so the
	// staged state and the snapshot on disk can be built outside mu
	// without a later writer overwriting a newer version with a stale one.
	maintMu sync.Mutex
	// version counts the deltas applied since registration; it only ever
	// grows, and every applied delta bumps it by one.
	version uint64
	// walRecords counts delta-log records appended since the last
	// checkpoint (guarded by maintMu); when it reaches the medium's
	// CheckpointEvery the snapshot is rewritten and the log truncated.
	walRecords int
	// ans is the prepared answerer for the current Π (core.PreparedScheme):
	// the scheme's typed decoded form, built once per Π — eagerly by Warm at
	// registration/load, or lazily on the first answer for stores assembled
	// by hand — and refreshed as part of the same commit that swaps Prep and
	// version, so a query never pairs a new Π with an old prepared form.
	// ansErr is the sticky Prepare failure for the current Π (a corrupt
	// preprocessed string errors once at preparation; every answer surfaces
	// it, matching the raw path's per-query validation error). Both are nil
	// while the answerer is unbuilt.
	ans    core.Answerer
	ansErr error
	// fb is the degraded-mode fallback answerer for the current Π (built
	// from Scheme.PrepareFallback on first degraded answer, invalidated
	// with ans on every maintenance commit); fbErr is its sticky build
	// failure. Both are guarded by mu like ans/ansErr.
	fb    core.Answerer
	fbErr error
}

// PrepareError marks a failed Scheme.Prepare — the answerer build —
// as opposed to a per-query validation failure. The serving layer
// classifies it as a server-side fault (the dataset's Π is unreadable)
// and counts it against the dataset's health breaker, whose half-open
// probe retries the build via RetryPrepare. The message is the
// underlying error's, unchanged, so the raw path's pinned error
// strings hold.
type PrepareError struct{ Err error }

func (e *PrepareError) Error() string { return e.Err.Error() }

func (e *PrepareError) Unwrap() error { return e.Err }

// wrapPrepareErr types a Prepare failure exactly once.
func wrapPrepareErr(err error) error {
	if err == nil {
		return nil
	}
	var pe *PrepareError
	if errors.As(err, &pe) {
		return err
	}
	return &PrepareError{Err: err}
}

// SetVersion stamps the maintenance version on a freshly constructed store
// (snapshot reloads restore the persisted counter). It must not be called
// once the store is shared; ApplyDeltas is the concurrent-safe mutation.
func (st *Store) SetVersion(v uint64) { st.version = v }

// View returns the current preprocessed string and the maintenance version
// it corresponds to, as one consistent pair. The returned slice is the
// immutable current Π — ApplyDeltas replaces the slice rather than mutating
// it, so callers may read it without holding any lock.
func (st *Store) View() ([]byte, uint64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.Prep, st.version
}

// Replace swaps the preprocessed string and maintenance version under the
// writer lock — the commit step of composite (sharded) maintenance, which
// stages per-shard strings outside the store and swaps them in wholesale
// once every shard's maintenance has succeeded. The prepared answerer is
// reset and rebuilt lazily; maintainers that have already prepared the new
// Π outside the lock use ReplacePrepared to swap all three at once.
func (st *Store) Replace(prep []byte, version uint64) {
	st.ReplacePrepared(prep, version, nil, nil)
}

// ReplacePrepared is Replace with a pre-staged prepared answerer: ⟨Π,
// version, prepared⟩ commit in one writer-lock critical section, so the
// reader-blocking lock is never held across Prepare's decode work. a and
// aerr may both be nil to defer preparation to the first answer.
func (st *Store) ReplacePrepared(prep []byte, version uint64, a core.Answerer, aerr error) {
	st.mu.Lock()
	st.Prep, st.version = prep, version
	st.ans, st.ansErr = a, wrapPrepareErr(aerr)
	// The fallback answerer decodes the same Π: a maintenance commit
	// invalidates it too (rebuilt lazily on the next degraded answer).
	st.fb, st.fbErr = nil, nil
	st.mu.Unlock()
}

// BumpVersion advances the maintenance version while keeping the current
// Π and its prepared answerer — the commit step for a member store of a
// composite (sharded) dataset whose own Π a delta batch did not touch:
// its answerer is still valid, so discarding it would only re-pay the
// decode for nothing.
func (st *Store) BumpVersion(version uint64) {
	st.mu.Lock()
	st.version = version
	st.mu.Unlock()
}

// Warm builds the prepared answerer for the current Π now, so the first
// query pays a probe, not a decode. Registration and snapshot/manifest
// reloads call it; stores assembled by hand fall back to the same build on
// their first answer. Prepare failures are not fatal here — they surface,
// with the identical message, on every subsequent Answer.
func (st *Store) Warm() { st.answerer() }

// answerer returns the prepared answerer for the current Π, building and
// installing it on first use. The double-check under the write lock keeps
// a racing maintenance commit authoritative: if the version moved while we
// prepared, the freshly built form still matches the Π this call read, so
// it is used for this answer and discarded.
func (st *Store) answerer() (core.Answerer, error) {
	st.mu.RLock()
	a, aerr, pd, v := st.ans, st.ansErr, st.Prep, st.version
	st.mu.RUnlock()
	if a != nil || aerr != nil {
		return a, aerr
	}
	a, aerr = st.Scheme.Prepare(pd)
	aerr = wrapPrepareErr(aerr)
	st.mu.Lock()
	if st.ans == nil && st.ansErr == nil && st.version == v {
		st.ans, st.ansErr = a, aerr
	}
	st.mu.Unlock()
	return a, aerr
}

// RetryPrepare implements PrepareRetrier: it drops the cached prepared
// answerer (successful or failed) and rebuilds it from the current Π.
// This is the heal path for a Prepare that failed transiently (e.g. an
// injected I/O fault inside a scheme's decode): without it the first
// failure would poison the store until restart. Called by a health
// breaker's half-open probe.
func (st *Store) RetryPrepare() error {
	st.mu.Lock()
	st.ans, st.ansErr = nil, nil
	st.fb, st.fbErr = nil, nil
	st.mu.Unlock()
	_, err := st.answerer()
	return err
}

// Version implements Dataset: the number of deltas applied since
// registration.
func (st *Store) Version() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version
}

// ApplyDeltas implements DeltaDataset: it maintains the store under a
// batch of deltas using the scheme's incremental form,
// Π ← ApplyDelta(…ApplyDelta(Π, ∆D₁)…, ∆Dₖ), applied atomically — either
// every delta commits and the version grows by k, or none do and the store
// (and its durable state) are untouched.
//
// With a persistent medium the commit protocol is write-ahead: the batch
// is appended to the dataset's delta log — CRC-framed and fsynced — before
// any in-memory state changes, so the durable artifact is never behind a
// state a query has already observed. The log append is the commit point:
// a failure there aborts the batch with nothing applied (PersistError);
// once the record is durable the batch commits unconditionally. When the
// medium's checkpoint cadence is due, the maintained snapshot is rewritten
// atomically and the log truncated; a checkpoint failure after a durable
// append is counted and retried on the next batch — the log stays
// authoritative and a restart replays it (see wal.go).
//
// ctx bounds the batch: it is checked before each delta and before the
// commit point, so a budget that expires mid-batch aborts with nothing
// applied — individual delta applications are the cancellation granularity
// and are never torn.
//
// Delta application and persistence I/O run under the maintenance mutex
// only — the reader-blocking write lock is taken just for the final
// pointer swap, so concurrent queries never wait on maintenance work.
//
// Registry.ApplyDelta is the catalog-level entry point; it resolves inc by
// scheme name and supplies its medium.
func (st *Store) ApplyDeltas(ctx context.Context, inc *core.IncrementalScheme, deltas [][]byte, med *Medium) (uint64, error) {
	if inc == nil || inc.ApplyDelta == nil {
		return st.Version(), fmt.Errorf("store: scheme %s has no incremental form", st.Scheme.Name())
	}
	if med.persistent() && st.ID == "" {
		return st.Version(), fmt.Errorf("store: cannot persist deltas for a store with no dataset ID")
	}
	if len(deltas) == 0 {
		return st.Version(), nil // no-op, no log record
	}
	st.maintMu.Lock()
	defer st.maintMu.Unlock()
	// maintMu is the only writer seam, so the view cannot move under us.
	cur, oldVersion := st.View()
	applyStart := obs.Start()
	for i, delta := range deltas {
		if err := ctx.Err(); err != nil {
			return oldVersion, fmt.Errorf("store: delta %d: %w (nothing applied)", i, err)
		}
		next, err := inc.ApplyDelta(cur, delta)
		if err != nil {
			return oldVersion, fmt.Errorf("store: delta %d: %w (nothing applied)", i, err)
		}
		cur = next
	}
	obsPatchApply.Since(applyStart)
	if err := ctx.Err(); err != nil {
		return oldVersion, fmt.Errorf("store: %w (nothing applied)", err)
	}
	newVersion := oldVersion + uint64(len(deltas))
	if med.persistent() {
		fsys := med.fs()
		appendStart := obs.Start()
		if err := AppendLogRecord(fsys, LogPath(med.Dir, st.ID), oldVersion, deltas); err != nil {
			return oldVersion, &PersistError{Err: fmt.Errorf("store: log delta batch: %w (nothing applied)", err)}
		}
		obsLogAppend.Since(appendStart)
		st.walRecords++
		if st.walRecords >= med.checkpointEvery() {
			persistStart := obs.Start()
			snap := st.snapshotSkeleton()
			snap.Prep, snap.Version = cur, newVersion
			if err := st.checkpoint(fsys, med.Dir, snap); err != nil {
				obsCheckpointFails.Inc()
			} else {
				st.walRecords = 0
				obsPatchPersist.Since(persistStart)
			}
		}
	}
	// The maintained Π's prepared answerer is built here, outside the
	// reader-blocking lock, and committed with ⟨Π, version⟩ in one swap. A
	// Prepare failure does not abort the batch — the maintained bytes are
	// the committed truth, and answers surface the same validation error
	// the raw path would report per query.
	a, aerr := st.Scheme.Prepare(cur)
	st.ReplacePrepared(cur, newVersion, a, aerr)
	return newVersion, nil
}

// checkpoint rewrites the durable snapshot and truncates the delta log —
// the snapshot write is the checkpoint's commit (atomic rename + directory
// fsync), after which every log record is at or below the snapshot version
// and the log is dead weight. A crash between the two steps leaves a stale
// log whose records replay as no-ops.
func (st *Store) checkpoint(fsys FS, dir string, snap *Snapshot) error {
	if err := SaveFS(fsys, SnapshotPath(dir, st.ID), snap); err != nil {
		return err
	}
	return RemoveLog(fsys, LogPath(dir, st.ID))
}

// DatasetID implements Dataset.
func (st *Store) DatasetID() string { return st.ID }

// SchemeName implements Dataset.
func (st *Store) SchemeName() string { return st.Scheme.Name() }

// DataDigest implements Dataset.
func (st *Store) DataDigest() DataChecksum { return st.DataSum }

// PrepBytes implements Dataset: the size of the current Π.
func (st *Store) PrepBytes() int {
	pd, _ := st.View()
	return len(pd)
}

// ShardCount implements Dataset: a plain store is its own single shard.
func (st *Store) ShardCount() int { return 1 }

// SnapshotBytes implements SnapshotSizer: the encoded size of the store's
// snapshot at its current version — what a checkpoint would write, whether
// or not the store is persisted.
func (st *Store) SnapshotBytes() int { return len(EncodeSnapshot(st.Snapshot())) }

// WasLoaded implements Dataset.
func (st *Store) WasLoaded() bool { return st.Loaded }

// Answer decides one query against the preprocessed store, through the
// scheme's prepared (decoded-once) form — the raw Scheme.Answer stays
// available as the differential oracle.
func (st *Store) Answer(q []byte) (bool, error) {
	a, err := st.answerer()
	if err != nil {
		return false, err
	}
	return a.Answer(q)
}

// AnswerBatch answers queries concurrently through the scheme's worker
// pool; parallelism <= 0 selects GOMAXPROCS. The whole batch answers
// against one consistent Π — the prepared form is snapshot once up front,
// even if a delta commits mid-batch.
func (st *Store) AnswerBatch(queries [][]byte, parallelism int) ([]bool, error) {
	if len(queries) == 0 {
		// The raw batch path returns no error on an empty batch even over
		// a corrupt Π (it never calls Answer); match it.
		return []bool{}, nil
	}
	a, err := st.answerer()
	if err != nil {
		// A corrupt Π fails the raw path at its first query; report the
		// sticky Prepare error in exactly that shape.
		return nil, fmt.Errorf("scheme %s: batch query %d: %w", st.Scheme.Name(), 0, err)
	}
	return core.AnswerBatchPrepared(st.Scheme.Name(), a, queries, parallelism)
}

// AnswerContext implements ContextAnswerer: Answer with a cancellation
// check up front (a single prepared probe is too fine-grained to
// interrupt mid-flight).
func (st *Store) AnswerContext(ctx context.Context, q []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return st.Answer(q)
}

// AnswerBatchContext implements ContextAnswerer: AnswerBatch with the
// context consulted before every probe, so an expired deadline abandons
// the remainder of the batch instead of paying it.
func (st *Store) AnswerBatchContext(ctx context.Context, queries [][]byte, parallelism int) ([]bool, error) {
	if len(queries) == 0 {
		return []bool{}, nil
	}
	a, err := st.answerer()
	if err != nil {
		return nil, fmt.Errorf("scheme %s: batch query %d: %w", st.Scheme.Name(), 0, err)
	}
	return core.AnswerBatchPreparedContext(ctx, st.Scheme.Name(), a, queries, parallelism)
}

// fallbackAnswerer returns the degraded-mode answerer for the current
// Π, building and installing it on first use with the same
// version-checked double-install discipline as answerer.
func (st *Store) fallbackAnswerer() (core.Answerer, error) {
	if st.Scheme.PrepareFallback == nil {
		return nil, fmt.Errorf("store: scheme %s declares no degraded fallback", st.Scheme.Name())
	}
	st.mu.RLock()
	fb, fbErr, pd, v := st.fb, st.fbErr, st.Prep, st.version
	st.mu.RUnlock()
	if fb != nil || fbErr != nil {
		return fb, fbErr
	}
	fb, fbErr = st.Scheme.PrepareFallback(pd)
	st.mu.Lock()
	if st.fb == nil && st.fbErr == nil && st.version == v {
		st.fb, st.fbErr = fb, fbErr
	}
	st.mu.Unlock()
	return fb, fbErr
}

// CanDegrade implements DegradedDataset: whether the scheme declares a
// cheaper fallback answerer.
func (st *Store) CanDegrade() bool { return st.Scheme.PrepareFallback != nil }

// AnswerDegraded implements DegradedDataset: one query through the
// scheme's declared fallback. Verdicts are exact — the fallback trades
// probe cost and build cost, not correctness.
func (st *Store) AnswerDegraded(q []byte) (bool, error) {
	fb, err := st.fallbackAnswerer()
	if err != nil {
		return false, err
	}
	return fb.Answer(q)
}

// AnswerBatchDegraded implements DegradedDataset: a whole batch through
// the fallback, with the usual batch error shape.
func (st *Store) AnswerBatchDegraded(queries [][]byte, parallelism int) ([]bool, error) {
	if len(queries) == 0 {
		return []bool{}, nil
	}
	fb, err := st.fallbackAnswerer()
	if err != nil {
		return nil, fmt.Errorf("scheme %s: batch query %d: %w", st.Scheme.Name(), 0, err)
	}
	return core.AnswerBatchPrepared(st.Scheme.Name(), fb, queries, parallelism)
}

// AnswerBatchDegradable implements DegradableBatcher: the batch starts
// on the exact path and switches to the scheme's declared fallback once
// less than a quarter of the deadline budget remains, reporting how
// many queries answered degraded. Without a deadline or a fallback it
// is the plain context batch.
func (st *Store) AnswerBatchDegradable(ctx context.Context, queries [][]byte, parallelism int) ([]bool, int, error) {
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline || !st.CanDegrade() {
		ans, err := st.AnswerBatchContext(ctx, queries, parallelism)
		return ans, 0, err
	}
	if len(queries) == 0 {
		return []bool{}, 0, nil
	}
	a, err := st.answerer()
	if err != nil {
		return nil, 0, fmt.Errorf("scheme %s: batch query %d: %w", st.Scheme.Name(), 0, err)
	}
	start := time.Now()
	var degraded atomic.Int64
	var fbOnce sync.Once
	var fb core.Answerer
	var fbErr error
	wrapped := core.AnswererFunc(func(q []byte) (bool, error) {
		if budgetLow(start, deadline) {
			fbOnce.Do(func() { fb, fbErr = st.fallbackAnswerer() })
			if fbErr == nil && fb != nil {
				degraded.Add(1)
				return fb.Answer(q)
			}
		}
		return a.Answer(q)
	})
	ans, err := core.AnswerBatchPreparedContext(ctx, st.Scheme.Name(), wrapped, queries, parallelism)
	return ans, int(degraded.Load()), err
}

// Snapshot renders the store as a persistable snapshot.
func (st *Store) Snapshot() *Snapshot {
	s := st.snapshotSkeleton()
	s.Prep, s.Version = st.View()
	return s
}

// snapshotSkeleton builds the snapshot skeleton (everything but Prep and
// Version), which needs no locking — the remaining fields are immutable.
func (st *Store) snapshotSkeleton() *Snapshot {
	return &Snapshot{
		SchemeName: st.Scheme.Name(),
		Notes:      st.Scheme.PreprocessNote + " / " + st.Scheme.AnswerNote,
		DataSum:    st.DataSum,
	}
}

// Open returns a preprocessed store for (scheme, data), reusing the
// snapshot at path when it is fresh: same scheme name and same data
// digest. Otherwise it preprocesses, saves the new snapshot to path, and
// returns the fresh store. This is the single-store face of the
// preprocess-once contract; Registry does the same per dataset ID.
func Open(path string, scheme *core.Scheme, data []byte) (*Store, error) {
	sum := SumData(data)
	if snap, err := Load(path); err == nil &&
		snap.SchemeName == scheme.Name() && snap.DataSum == sum {
		st := &Store{Scheme: scheme, Prep: snap.Prep, DataSum: sum, Loaded: true, version: snap.Version}
		st.Warm()
		return st, nil
	}
	pd, err := scheme.Preprocess(data)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: preprocess (%s): %w", path, scheme.Name(), err)
	}
	st := &Store{Scheme: scheme, Prep: pd, DataSum: sum}
	if err := Save(path, st.Snapshot()); err != nil {
		return nil, err
	}
	st.Warm()
	return st, nil
}
