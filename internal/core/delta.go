package core

import "fmt"

// Delta kinds. The paper's §1 justification (3) writes updates as an
// abstract ⊕; PR 4 implemented only insertions, where ∆D is a batch of new
// elements. Full dynamism needs retractions too, so a delta now carries a
// kind:
//
//   - DeltaInsert: add the payload's elements (the PR 4 semantics);
//   - DeltaDelete: retract the payload's elements;
//   - DeltaUpsert: add the payload's elements only where absent — the
//     idempotent insert, whose ⊕ keeps raw data duplicate-free so
//     maintained and rebuilt artifacts stay byte-comparable.
//
// Wire format: an insert is the bare scheme payload, exactly the bytes
// PR 4 clients already send, so every existing delta (and every persisted
// log) keeps its meaning. Delete and upsert are tagged:
//
//	deltaTagMagic (4 bytes) ‖ kind (1 byte) ‖ payload
//
// The magic {0xFF, 0xFF, 0xFF, 0x00} cannot prefix any legitimately
// encoded untagged delta: both untagged families open with a
// binary.AppendUvarint value (a key count or a vertex id), Go always emits
// minimal uvarints, and a minimal multi-byte uvarint never has a 0x00
// terminal byte — so three continuation bytes followed by 0x00 is
// unreachable. (A hostile hand-built non-minimal uvarint could collide;
// it then parses as a tagged delta and fails validation like any other
// malformed payload — never as a silent misread of well-formed input.)
type DeltaKind uint8

const (
	// DeltaInsert adds elements (the untagged, PR 4-compatible kind).
	DeltaInsert DeltaKind = 0
	// DeltaDelete retracts elements.
	DeltaDelete DeltaKind = 1
	// DeltaUpsert adds elements where absent, no-op where present.
	DeltaUpsert DeltaKind = 2
)

// String names the kind for errors and stats.
func (k DeltaKind) String() string {
	switch k {
	case DeltaInsert:
		return "insert"
	case DeltaDelete:
		return "delete"
	case DeltaUpsert:
		return "upsert"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// deltaTagMagic opens every tagged (non-insert) delta; see DeltaKind.
var deltaTagMagic = [4]byte{0xFF, 0xFF, 0xFF, 0x00}

// TagDelta wraps a scheme delta payload with its kind. DeltaInsert returns
// the payload unchanged — inserts stay untagged for wire and snapshot-log
// compatibility with PR 4 clients.
func TagDelta(kind DeltaKind, payload []byte) []byte {
	if kind == DeltaInsert {
		return payload
	}
	out := make([]byte, 0, len(deltaTagMagic)+1+len(payload))
	out = append(out, deltaTagMagic[:]...)
	out = append(out, byte(kind))
	return append(out, payload...)
}

// DeltaParts splits a delta into its kind and scheme payload. Untagged
// bytes are an insert of the whole delta; a tagged delta with an unknown
// kind byte is an error (a future format, not a guess).
func DeltaParts(delta []byte) (DeltaKind, []byte, error) {
	if len(delta) < len(deltaTagMagic)+1 ||
		delta[0] != deltaTagMagic[0] || delta[1] != deltaTagMagic[1] ||
		delta[2] != deltaTagMagic[2] || delta[3] != deltaTagMagic[3] {
		return DeltaInsert, delta, nil
	}
	kind := DeltaKind(delta[len(deltaTagMagic)])
	if kind > DeltaUpsert {
		return 0, nil, fmt.Errorf("core: unknown delta kind %d", uint8(kind))
	}
	return kind, delta[len(deltaTagMagic)+1:], nil
}

// DeltaKindOf reports a delta's kind without splitting it (stats counters,
// taxonomies). Malformed tags report as inserts — the applying scheme is
// the authority that rejects them.
func DeltaKindOf(delta []byte) DeltaKind {
	kind, _, err := DeltaParts(delta)
	if err != nil {
		return DeltaInsert
	}
	return kind
}
