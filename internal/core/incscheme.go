package core

import "fmt"

// Incremental preprocessing, from the paper's §1 justification (3): "After
// a database D is preprocessed and yields D′, D may be updated by ∆D. It
// may be too costly to preprocess D ⊕ ∆D again starting from scratch.
// Instead, we assume incremental preprocessing ... by computing ∆D′ such
// that the outcome of processing D ⊕ ∆D is the same as D′ ⊕ ∆D′."
//
// IncrementalScheme extends a Scheme with ApplyDelta and an update
// composition ⊕ on raw databases, so the defining equation
//
//	ApplyDelta(Π(D), ∆D)  ≡  Π(D ⊕ ∆D)
//
// can be checked on concrete data. Equivalence is answer-equivalence: the
// two preprocessed strings must answer every probed query identically
// (byte equality is not required — index internals may differ).
type IncrementalScheme struct {
	// Scheme is the underlying Π-tractability witness.
	Scheme *Scheme
	// ApplyDelta maintains the preprocessed structure under an update.
	ApplyDelta func(pd, delta []byte) ([]byte, error)
	// ApplyUpdate computes D ⊕ ∆D on raw databases (the semantics of ⊕).
	ApplyUpdate func(d, delta []byte) ([]byte, error)
	// DeltaNote documents the claimed maintenance complexity.
	DeltaNote string
}

// Name identifies the scheme.
func (s *IncrementalScheme) Name() string { return s.Scheme.SchemeName + "+incremental" }

// VerifyIncremental checks the defining equation on one database, a
// sequence of updates, and a probe set: after every update, the maintained
// structure must answer all probes exactly like a from-scratch
// re-preprocessing of the updated database.
func (s *IncrementalScheme) VerifyIncremental(d []byte, deltas [][]byte, probes [][]byte) error {
	pd, err := s.Scheme.Preprocess(d)
	if err != nil {
		return fmt.Errorf("incremental %s: initial preprocess: %w", s.Name(), err)
	}
	cur := d
	for step, delta := range deltas {
		pd, err = s.ApplyDelta(pd, delta)
		if err != nil {
			return fmt.Errorf("incremental %s: delta %d: %w", s.Name(), step, err)
		}
		cur, err = s.ApplyUpdate(cur, delta)
		if err != nil {
			return fmt.Errorf("incremental %s: ⊕ at step %d: %w", s.Name(), step, err)
		}
		fresh, err := s.Scheme.Preprocess(cur)
		if err != nil {
			return fmt.Errorf("incremental %s: fresh preprocess at step %d: %w", s.Name(), step, err)
		}
		for pi, q := range probes {
			a, err := s.Scheme.Answer(pd, q)
			if err != nil {
				return fmt.Errorf("incremental %s: maintained answer step %d probe %d: %w", s.Name(), step, pi, err)
			}
			b, err := s.Scheme.Answer(fresh, q)
			if err != nil {
				return fmt.Errorf("incremental %s: fresh answer step %d probe %d: %w", s.Name(), step, pi, err)
			}
			if a != b {
				return fmt.Errorf("incremental %s: step %d probe %d: maintained %v, fresh %v",
					s.Name(), step, pi, a, b)
			}
		}
	}
	return nil
}
