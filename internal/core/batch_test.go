package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// parityScheme answers "is the query integer's bit count even, offset by
// the preprocessed byte"; queries equal to poison return an error. It is
// cheap, deterministic, and stateless — ideal for exercising the batch
// machinery itself.
func parityScheme(poison uint64) *Scheme {
	return &Scheme{
		SchemeName: "test/parity",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Answer: func(pd, q []byte) (bool, error) {
			vs, err := DecodeUint64(q, 1)
			if err != nil {
				return false, err
			}
			v := vs[0]
			if v == poison {
				return false, fmt.Errorf("poisoned query %d", v)
			}
			bits := 0
			for x := v; x != 0; x >>= 1 {
				bits += int(x & 1)
			}
			return (bits+len(pd))%2 == 0, nil
		},
	}
}

func batchQueries(n int) [][]byte {
	qs := make([][]byte, n)
	for i := range qs {
		qs[i] = EncodeUint64(uint64(i * 2654435761))
	}
	return qs
}

// TestAnswerBatchMatchesSequential: for every parallelism level, the batch
// verdicts must equal the one-at-a-time loop, in query order.
func TestAnswerBatchMatchesSequential(t *testing.T) {
	s := parityScheme(^uint64(0))
	pd := []byte{1}
	queries := batchQueries(523)
	want := make([]bool, len(queries))
	for i, q := range queries {
		got, err := s.Answer(pd, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = got
	}
	for _, par := range []int{-1, 0, 1, 2, 3, 8, 64, 1000} {
		got, err := s.AnswerBatch(pd, queries, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: query %d: batch %v, sequential %v", par, i, got[i], want[i])
			}
		}
	}
}

func TestAnswerBatchEmpty(t *testing.T) {
	s := parityScheme(0)
	got, err := s.AnswerBatch(nil, nil, 8)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: results=%v err=%v", got, err)
	}
}

// TestAnswerBatchErrorPropagation: a failing query aborts the batch and
// the error names the scheme and the query index.
func TestAnswerBatchErrorPropagation(t *testing.T) {
	const poison = uint64(77 * 2654435761)
	s := parityScheme(poison) // query index 77 fails
	queries := batchQueries(200)
	for _, par := range []int{1, 4} {
		got, err := s.AnswerBatch(nil, queries, par)
		if err == nil {
			t.Fatalf("parallelism %d: poisoned batch succeeded", par)
		}
		if got != nil {
			t.Fatalf("parallelism %d: partial results returned alongside error", par)
		}
		if !strings.Contains(err.Error(), "query 77") || !strings.Contains(err.Error(), s.SchemeName) {
			t.Fatalf("parallelism %d: error %q does not name scheme and query index", par, err)
		}
	}
}

// TestAnswerBatchConcurrentCallers: many goroutines batching against one
// preprocessed store at once — the serving pattern — must stay correct
// under the race detector.
func TestAnswerBatchConcurrentCallers(t *testing.T) {
	s := parityScheme(^uint64(0))
	pd := []byte{0, 1}
	queries := batchQueries(64)
	want, err := s.AnswerBatch(pd, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.AnswerBatch(pd, queries, 4)
			if err != nil {
				errc <- err
				return
			}
			for i := range want {
				if got[i] != want[i] {
					errc <- fmt.Errorf("query %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestApplyBatchMatchesSequential covers the function-scheme variant.
func TestApplyBatchMatchesSequential(t *testing.T) {
	s := &FuncScheme{
		SchemeName: "test/double",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Apply: func(pd, q []byte) ([]byte, error) {
			vs, err := DecodeUint64(q, 1)
			if err != nil {
				return nil, err
			}
			v := vs[0]
			if v%97 == 13 {
				return nil, errors.New("unlucky")
			}
			return EncodeUint64(2 * v), nil
		},
	}
	queries := make([][]byte, 150)
	for i := range queries {
		queries[i] = EncodeUint64(uint64(i * 97)) // v%97 == 0: never unlucky
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		out, err := s.Apply(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	got, err := s.ApplyBatch(nil, queries, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("query %d: batch %x, sequential %x", i, got[i], want[i])
		}
	}
	// And the failing path.
	bad := [][]byte{EncodeUint64(13)}
	if _, err := s.ApplyBatch(nil, bad, 3); err == nil {
		t.Fatal("poisoned ApplyBatch succeeded")
	}
}
