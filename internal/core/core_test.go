package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// --- toy problems used throughout: byte-sum parity ------------------------

func byteSum(x []byte) int {
	s := 0
	for _, b := range x {
		s += int(b)
	}
	return s
}

// evenPairProblem: instances are pad(d, q); member iff sum(d)+sum(q) even.
func evenPairProblem() *Problem {
	return &Problem{
		ProblemName: "even-pair-sum",
		Member: func(x []byte) (bool, error) {
			d, q, err := UnpadPair(x)
			if err != nil {
				return false, err
			}
			return (byteSum(d)+byteSum(q))%2 == 0, nil
		},
	}
}

// evenProblem: instances are raw strings; member iff byte sum even.
func evenProblem() *Problem {
	return &Problem{
		ProblemName: "even-sum",
		Member:      func(x []byte) (bool, error) { return byteSum(x)%2 == 0, nil },
	}
}

// splitFactorization factors pad(d, q) instances into (d, q).
func splitFactorization() *Factorization {
	return &Factorization{
		FactName: "split",
		Pi1: func(x []byte) ([]byte, error) {
			d, _, err := UnpadPair(x)
			return d, err
		},
		Pi2: func(x []byte) ([]byte, error) {
			_, q, err := UnpadPair(x)
			return q, err
		},
		Rho: func(d, q []byte) ([]byte, error) { return PadPair(d, q), nil },
	}
}

// --- codec -----------------------------------------------------------------

func TestPadUnpadRoundTrip(t *testing.T) {
	f := func(d, q []byte) bool {
		gd, gq, err := UnpadPair(PadPair(d, q))
		return err == nil && bytes.Equal(gd, d) && bytes.Equal(gq, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpadRejectsCorrupt(t *testing.T) {
	good := PadPair([]byte("abc"), []byte("de"))
	for i, bad := range [][]byte{nil, good[:2], good[:len(good)-1], append(append([]byte{}, good...), 1)} {
		if _, _, err := UnpadPair(bad); err == nil {
			t.Errorf("case %d unpadded", i)
		}
	}
}

func TestEncodeDecodeUint64(t *testing.T) {
	enc := EncodeUint64(3, 0, 1<<40)
	got, err := DecodeUint64(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 0 || got[2] != 1<<40 {
		t.Fatalf("DecodeUint64 = %v", got)
	}
	if _, err := DecodeUint64(enc, 2); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeUint64(enc[:1], 3); err == nil {
		t.Error("truncated input accepted")
	}
}

// --- factorizations ----------------------------------------------------------

func TestFactorizationCheck(t *testing.T) {
	f := splitFactorization()
	if err := f.Check(PadPair([]byte("xy"), []byte("z"))); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	broken := &Factorization{
		FactName: "broken",
		Pi1:      func(x []byte) ([]byte, error) { return x[:0], nil },
		Pi2:      func(x []byte) ([]byte, error) { return x[:0], nil },
		Rho:      func(d, q []byte) ([]byte, error) { return []byte("nope"), nil },
	}
	if err := broken.Check([]byte("abc")); err == nil {
		t.Fatal("broken factorization passed Check")
	}
}

func TestIdentityFactorization(t *testing.T) {
	f := IdentityFactorization()
	if err := f.Check([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Rho([]byte("a"), []byte("b")); err == nil {
		t.Fatal("identity ρ accepted unequal parts")
	}
}

func TestEmptyDataFactorization(t *testing.T) {
	f := EmptyDataFactorization()
	if err := f.Check([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Rho([]byte("x"), []byte("q")); err == nil {
		t.Fatal("empty-data ρ accepted a non-empty data part")
	}
}

func TestPaddedFactorization(t *testing.T) {
	base := splitFactorization()
	padded := PaddedFactorization(base)
	x := PadPair([]byte("data"), []byte("query"))
	if err := padded.Check(x); err != nil {
		t.Fatal(err)
	}
	d, _ := padded.Pi1(x)
	q, _ := padded.Pi2(x)
	if !bytes.Equal(d, q) {
		t.Fatal("padded parts must be equal")
	}
	if _, err := padded.Rho([]byte("a"), []byte("b")); err == nil {
		t.Fatal("padded ρ accepted unequal parts")
	}
}

// --- Proposition 1: PairLanguage ----------------------------------------------

func TestPairLanguageAgreesWithProblem(t *testing.T) {
	p := evenPairProblem()
	f := splitFactorization()
	s := PairLanguage(p, f)
	if !strings.Contains(s.Name(), p.ProblemName) {
		t.Errorf("language name %q should mention the problem", s.Name())
	}
	fq := func(d, q []byte) bool {
		x := PadPair(d, q)
		want, err1 := p.Member(x)
		got, err2 := s.Contains(d, q)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(fq, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- schemes -------------------------------------------------------------------

// paritySumScheme preprocesses d to its parity bit and answers by combining
// with the query's parity: Answer is O(|q|), independent of |d|.
func paritySumScheme() *Scheme {
	return &Scheme{
		SchemeName: "parity-bit",
		Preprocess: func(d []byte) ([]byte, error) {
			return []byte{byte(byteSum(d) % 2)}, nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			if len(pd) != 1 {
				return false, errFmt("bad preprocessed data")
			}
			return (int(pd[0])+byteSum(q))%2 == 0, nil
		},
		PreprocessNote: "O(|D|)",
		AnswerNote:     "O(|Q|)",
	}
}

func errFmt(msg string) error { return &schemeErr{msg} }

type schemeErr struct{ msg string }

func (e *schemeErr) Error() string { return e.msg }

func TestSchemeVerifyAgainst(t *testing.T) {
	s := paritySumScheme()
	lang := PairLanguage(evenPairProblem(), splitFactorization())
	pairs := []Pair{
		{D: []byte{2, 2}, Q: []byte{0}},
		{D: []byte{1}, Q: []byte{1}},
		{D: []byte{1}, Q: []byte{0}},
		{D: nil, Q: nil},
		{D: []byte{255}, Q: []byte{1}},
	}
	if err := s.VerifyAgainst(lang, pairs); err != nil {
		t.Fatal(err)
	}
	// A deliberately wrong scheme must be caught.
	wrong := *s
	wrong.Answer = func(pd, q []byte) (bool, error) { return true, nil }
	if err := wrong.VerifyAgainst(lang, pairs); err == nil {
		t.Fatal("wrong scheme passed verification")
	}
}

func TestSchemeDecide(t *testing.T) {
	s := paritySumScheme()
	got, err := s.Decide([]byte{3}, []byte{1})
	if err != nil || !got {
		t.Fatalf("Decide = %v, %v", got, err)
	}
	got, err = s.Decide([]byte{3}, []byte{0})
	if err != nil || got {
		t.Fatalf("Decide = %v, %v", got, err)
	}
}

// --- reductions -----------------------------------------------------------------

func TestReductionVerify(t *testing.T) {
	// Map the parity pair language to itself by appending even junk.
	s1 := PairLanguage(evenPairProblem(), splitFactorization())
	red := &Reduction{
		RedName: "append-even",
		Alpha:   func(d []byte) ([]byte, error) { return append(append([]byte{}, d...), 2, 2), nil },
		Beta:    func(q []byte) ([]byte, error) { return append(append([]byte{}, q...), 4), nil },
	}
	pairs := []Pair{{D: []byte{1}, Q: []byte{1}}, {D: []byte{1}, Q: []byte{2}}, {D: nil, Q: nil}}
	if err := red.Verify(s1, s1, pairs); err != nil {
		t.Fatal(err)
	}
	// A parity-flipping β must fail verification.
	bad := &Reduction{
		RedName: "flip",
		Alpha:   func(d []byte) ([]byte, error) { return d, nil },
		Beta:    func(q []byte) ([]byte, error) { return append(append([]byte{}, q...), 1), nil },
	}
	if err := bad.Verify(s1, s1, pairs); err == nil {
		t.Fatal("parity-flipping reduction verified")
	}
}

// TestLemma2Composition exercises the padding construction end to end:
// r1: S(L1,split) → S(L2,split) with identity maps (L1 = L2 textually),
// r2: S(L2,padded-split) → S(L3,empty-data),
// and Compose must yield a verified reduction from S(L1, padded-split) to
// S(L3, empty-data), despite the mismatched middle factorizations.
func TestLemma2Composition(t *testing.T) {
	l1 := evenPairProblem()
	l2 := evenPairProblem()
	l3 := evenProblem()
	split := splitFactorization()
	paddedSplit := PaddedFactorization(split)

	r1 := &Reduction{
		RedName: "r1-id",
		Alpha:   func(d []byte) ([]byte, error) { return d, nil },
		Beta:    func(q []byte) ([]byte, error) { return q, nil },
	}
	// r2 source: S(L2, padded-split) = {(y, y) | y ∈ L2}. Target:
	// S(L3, empty-data) = {(ε, x) | sum(x) even}. α2 discards; β2 unpads y
	// and concatenates the halves, so the image's byte sum equals
	// sum(d2)+sum(q2) without the length-prefix bytes of the padding.
	r2 := &Reduction{
		RedName: "r2-project",
		Alpha:   func(d []byte) ([]byte, error) { return nil, nil },
		Beta: func(q []byte) ([]byte, error) {
			d2, q2, err := UnpadPair(q)
			if err != nil {
				return nil, err
			}
			return append(append([]byte{}, d2...), q2...), nil
		},
	}
	// Sanity: verify r1 and r2 in isolation first.
	pairsOf := func(f *Factorization, instances [][]byte) []Pair {
		var out []Pair
		for _, x := range instances {
			d, err := f.Pi1(x)
			if err != nil {
				t.Fatal(err)
			}
			q, err := f.Pi2(x)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, Pair{D: d, Q: q})
		}
		return out
	}
	instances := [][]byte{
		PadPair([]byte{1}, []byte{1}),
		PadPair([]byte{1}, []byte{2}),
		PadPair(nil, nil),
		PadPair([]byte{5, 5}, []byte{3}),
	}
	if err := r1.Verify(PairLanguage(l1, split), PairLanguage(l2, split), pairsOf(split, instances)); err != nil {
		t.Fatalf("r1: %v", err)
	}
	if err := r2.Verify(PairLanguage(l2, paddedSplit), PairLanguage(l3, EmptyDataFactorization()),
		pairsOf(paddedSplit, instances)); err != nil {
		// Note: S(L3) queries are padded L2 instances; sum parity of the
		// padding prefix bytes shifts the parity, so β2 must be checked
		// against the real encoder. If this fails the test setup is wrong.
		t.Fatalf("r2: %v", err)
	}

	composed := Compose(r1, split.Rho, paddedSplit, r2)
	fr := &FactorReduction{
		From: l1, To: l3,
		F1:  paddedSplit,
		F2:  EmptyDataFactorization(),
		Map: *composed,
	}
	if err := fr.Verify(instances); err != nil {
		t.Fatalf("Lemma 2 composition failed: %v", err)
	}
}

// TestLemma3Transport: tractability flows backwards along reductions.
func TestLemma3Transport(t *testing.T) {
	// Target: L3 = even-sum with the empty-data factorization and a scheme
	// answering by scanning the query.
	targetScheme := &Scheme{
		SchemeName: "even-sum-direct",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Answer:     func(pd, q []byte) (bool, error) { return byteSum(q)%2 == 0, nil },
	}
	// Reduction from S(L1, padded-split) to S(L3, empty-data), as composed
	// in the Lemma 2 test.
	split := splitFactorization()
	paddedSplit := PaddedFactorization(split)
	r1 := &Reduction{RedName: "r1-id",
		Alpha: func(d []byte) ([]byte, error) { return d, nil },
		Beta:  func(q []byte) ([]byte, error) { return q, nil }}
	r2 := &Reduction{RedName: "r2-project",
		Alpha: func(d []byte) ([]byte, error) { return nil, nil },
		Beta: func(q []byte) ([]byte, error) {
			d2, q2, err := UnpadPair(q)
			if err != nil {
				return nil, err
			}
			return append(append([]byte{}, d2...), q2...), nil
		}}
	composed := Compose(r1, split.Rho, paddedSplit, r2)

	transported := TransportScheme(composed, targetScheme)
	lang := PairLanguage(evenPairProblem(), paddedSplit)
	instances := [][]byte{
		PadPair([]byte{1}, []byte{1}),
		PadPair([]byte{1}, []byte{2}),
		PadPair([]byte{7}, nil),
		PadPair(nil, nil),
	}
	var pairs []Pair
	for _, x := range instances {
		d, _ := paddedSplit.Pi1(x)
		q, _ := paddedSplit.Pi2(x)
		pairs = append(pairs, Pair{D: d, Q: q})
	}
	if err := transported.VerifyAgainst(lang, pairs); err != nil {
		t.Fatalf("Lemma 3 transport failed: %v", err)
	}
}

// --- registry ----------------------------------------------------------------

func TestRegistry(t *testing.T) {
	var r Registry
	s := paritySumScheme()
	if err := r.Register(Entry{Name: "a", Class: ClassPiT0Q, Scheme: s}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Entry{Name: "a", Class: ClassP}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := r.Register(Entry{Name: "b", Class: ClassPiT0Q}); err == nil {
		t.Fatal("ΠT⁰Q claim without scheme accepted")
	}
	if err := r.Register(Entry{Name: "c", Class: ClassNPComplete}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Entries()); got != 2 {
		t.Fatalf("Entries = %d", got)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassNC: "NC", ClassPiT0Q: "ΠT⁰Q", ClassPiTQ: "ΠTQ",
		ClassP: "P", ClassNPComplete: "NP-complete", Class(9): "Class(9)",
	} {
		if c.String() != want {
			t.Errorf("Class(%d) = %q", int(c), c.String())
		}
	}
}

// --- growth classification ------------------------------------------------------

func synthetic(f func(n float64) float64) []Measurement {
	var ms []Measurement
	for _, n := range []float64{1 << 7, 1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17, 1 << 19} {
		ms = append(ms, Measurement{N: n, Cost: f(n)})
	}
	return ms
}

func log2(n float64) float64 {
	k := 0.0
	for v := n; v > 1; v /= 2 {
		k++
	}
	return k
}

func TestClassifySyntheticFamilies(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		want Growth
	}{
		{"constant", func(n float64) float64 { return 40 }, GrowthConstant},
		{"log", func(n float64) float64 { return log2(n) }, GrowthPolylog},
		{"log²", func(n float64) float64 { return log2(n) * log2(n) }, GrowthPolylog},
		{"linear", func(n float64) float64 { return n }, GrowthPolynomial},
		{"n log n", func(n float64) float64 { return n * log2(n) }, GrowthPolynomial},
		{"quadratic", func(n float64) float64 { return n * n }, GrowthPolynomial},
	}
	for _, c := range cases {
		fit, err := Classify(synthetic(c.f))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if fit.Growth != c.want {
			t.Errorf("%s: classified %v (exponent %.2f), want %v", c.name, fit.Growth, fit.Exponent, c.want)
		}
		if fit.LogLogR2 < 0.9 {
			t.Errorf("%s: R² = %.3f, noisy fit on noiseless data", c.name, fit.LogLogR2)
		}
	}
}

func TestClassifyInputValidation(t *testing.T) {
	if _, err := Classify(nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Classify([]Measurement{{1, 1}, {2, 2}, {3, 3}}); err == nil {
		t.Error("narrow sweep accepted")
	}
	if _, err := Classify([]Measurement{{0, 1}, {8, 2}, {64, 3}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Classify([]Measurement{{1, -1}, {8, 2}, {64, 3}}); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestGrowthString(t *testing.T) {
	if GrowthConstant.String() == "" || GrowthPolylog.String() == "" ||
		GrowthPolynomial.String() == "" || Growth(9).String() == "" {
		t.Fatal("Growth.String broken")
	}
}
