package core

// Concurrent batch answering. The paper's asymmetry — preprocess once in
// PTIME, answer each query in NC — is exactly the shape that serves many
// clients from one preprocessed store: Π(D) is an immutable byte string, so
// any number of goroutines may answer against it at once. AnswerBatch is
// the worker-pool entry point for that mode.
//
// # The scheme concurrency contract
//
// Every Scheme (and FuncScheme) in this repository obeys, and every new
// scheme must obey:
//
//  1. Preprocess is called once per database, before any Answer. It needs
//     no internal synchronization but must not retain and later mutate the
//     returned preprocessed string.
//  2. Answer must be safe to call from any number of goroutines
//     concurrently with the same pd. In practice that means Answer treats
//     pd and q as read-only and keeps per-call state on the stack; schemes
//     that memoize shared state across calls (e.g. the compiled-tableau
//     cache of the Theorem 5 chain) must guard it with a mutex.
//  3. Answer must not mutate pd or q, even transiently: a concurrent
//     reader would observe the intermediate state.
//
// The contract is enforced by the schemes package's concurrency stress
// test, which runs every registered scheme's Answer from many goroutines
// under the race detector.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// AnswerBatch answers queries concurrently against one preprocessed store
// and returns the verdicts in query order. parallelism bounds the worker
// goroutines; values <= 0 select runtime.GOMAXPROCS(0). A parallelism of 1
// degenerates to the plain sequential loop.
//
// The first error (by lowest query index) aborts the batch: remaining
// workers drain quickly and the partial results are discarded. On success
// results[i] is Answer(pd, queries[i]) for every i.
func (s *Scheme) AnswerBatch(pd []byte, queries [][]byte, parallelism int) ([]bool, error) {
	return answerPool(s.SchemeName, func(q []byte) (bool, error) {
		return s.Answer(pd, q)
	}, queries, parallelism)
}

// AnswerBatchPrepared is AnswerBatch over a prepared Answerer: the same
// worker pool, error policy, and query ordering, but every probe rides the
// decoded in-memory form instead of re-reading pd. label names the scheme in
// error messages, keeping them identical to the raw batch path's.
func AnswerBatchPrepared(label string, a Answerer, queries [][]byte, parallelism int) ([]bool, error) {
	return answerPool(label, a.Answer, queries, parallelism)
}

// AnswerBatchPreparedContext is AnswerBatchPrepared with cooperative
// cancellation: ctx is consulted before every probe, so an expired
// deadline abandons the rest of the batch promptly instead of paying
// every remaining query. The batch fails with the usual error shape at
// the lowest unanswered index, wrapping ctx.Err(). A context that can
// never be cancelled degenerates to the plain prepared batch.
func AnswerBatchPreparedContext(ctx context.Context, label string, a Answerer, queries [][]byte, parallelism int) ([]bool, error) {
	if ctx == nil || ctx.Done() == nil {
		return AnswerBatchPrepared(label, a, queries, parallelism)
	}
	return answerPool(label, func(q []byte) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		return a.Answer(q)
	}, queries, parallelism)
}

// answerPool is the shared worker-pool core of AnswerBatch and
// AnswerBatchPrepared.
func answerPool(label string, answer func(q []byte) (bool, error), queries [][]byte, parallelism int) ([]bool, error) {
	results := make([]bool, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism == 1 {
		for i, q := range queries {
			got, err := answer(q)
			if err != nil {
				return nil, fmt.Errorf("scheme %s: batch query %d: %w", label, i, err)
			}
			results[i] = got
		}
		return results, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, len(queries))
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				got, err := answer(queries[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = got
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scheme %s: batch query %d: %w", label, i, err)
		}
	}
	return results, nil
}

// ApplyBatch is AnswerBatch for function schemes: it computes Apply for
// every query concurrently and returns the outputs in query order, under
// the same concurrency contract and error policy.
func (s *FuncScheme) ApplyBatch(pd []byte, queries [][]byte, parallelism int) ([][]byte, error) {
	results := make([][]byte, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism == 1 {
		for i, q := range queries {
			out, err := s.Apply(pd, q)
			if err != nil {
				return nil, fmt.Errorf("func scheme %s: batch query %d: %w", s.SchemeName, i, err)
			}
			results[i] = out
		}
		return results, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, len(queries))
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out, err := s.Apply(pd, queries[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = out
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("func scheme %s: batch query %d: %w", s.SchemeName, i, err)
		}
	}
	return results, nil
}
