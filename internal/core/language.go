package core

import "fmt"

// Language is a decidable language of pairs S ⊆ Σ*×Σ*, the paper's
// representation of a Boolean query class: ⟨D, Q⟩ ∈ S iff Q(D) is true.
// Contains must be a total decision procedure (errors signal malformed
// encodings, not "undecided").
type Language interface {
	// Name identifies the language in registries and reports.
	Name() string
	// Contains decides ⟨d, q⟩ ∈ S.
	Contains(d, q []byte) (bool, error)
}

// LanguageFunc adapts a function to the Language interface.
type LanguageFunc struct {
	LangName string
	Decide   func(d, q []byte) (bool, error)
}

// Name implements Language.
func (l LanguageFunc) Name() string { return l.LangName }

// Contains implements Language.
func (l LanguageFunc) Contains(d, q []byte) (bool, error) { return l.Decide(d, q) }

// Problem is a decision problem L ⊆ Σ*, with a reference (PTIME) membership
// procedure. The paper treats problems and languages interchangeably; here
// the distinction is explicit so factorizations have something to factor.
type Problem struct {
	ProblemName string
	// Member decides x ∈ L.
	Member func(x []byte) (bool, error)
}

// Name identifies the problem.
func (p *Problem) Name() string { return p.ProblemName }

// Factorization is the paper's Υ = (π1, π2, ρ): three (NC-computable)
// functions splitting an instance into a data part and a query part, with ρ
// restoring the instance. Check enforces ρ(π1(x), π2(x)) = x, the defining
// equation, on concrete instances.
type Factorization struct {
	FactName string
	Pi1      func(x []byte) ([]byte, error)
	Pi2      func(x []byte) ([]byte, error)
	Rho      func(d, q []byte) ([]byte, error)
}

// Name identifies the factorization.
func (f *Factorization) Name() string { return f.FactName }

// Check verifies the defining equation ρ(π1(x), π2(x)) = x on one instance.
func (f *Factorization) Check(x []byte) error {
	d, err := f.Pi1(x)
	if err != nil {
		return fmt.Errorf("factorization %s: π1: %w", f.FactName, err)
	}
	q, err := f.Pi2(x)
	if err != nil {
		return fmt.Errorf("factorization %s: π2: %w", f.FactName, err)
	}
	back, err := f.Rho(d, q)
	if err != nil {
		return fmt.Errorf("factorization %s: ρ: %w", f.FactName, err)
	}
	if string(back) != string(x) {
		return fmt.Errorf("factorization %s: ρ(π1(x),π2(x)) ≠ x", f.FactName)
	}
	return nil
}

// PairLanguage builds the language of pairs S(L,Υ) = {⟨π1(x), π2(x)⟩ | x ∈ L}
// for a problem and one of its factorizations: membership of ⟨d, q⟩ is
// decided by restoring the instance with ρ and asking the problem — exactly
// Proposition 1 ("x ∈ L iff ⟨π1(x), π2(x)⟩ ∈ S(L,Υ)") read right-to-left.
func PairLanguage(p *Problem, f *Factorization) Language {
	return LanguageFunc{
		LangName: p.ProblemName + "/" + f.FactName,
		Decide: func(d, q []byte) (bool, error) {
			x, err := f.Rho(d, q)
			if err != nil {
				return false, err
			}
			return p.Member(x)
		},
	}
}

// IdentityFactorization returns the factorization used in the proof of
// Theorem 5: π1(x) = π2(x) = x and ρ(x, x) = x. Every problem trivially
// admits it; it leaves all the work to the query side.
func IdentityFactorization() *Factorization {
	return &Factorization{
		FactName: "identity",
		Pi1:      func(x []byte) ([]byte, error) { return x, nil },
		Pi2:      func(x []byte) ([]byte, error) { return x, nil },
		Rho: func(d, q []byte) ([]byte, error) {
			if string(d) != string(q) {
				return nil, fmt.Errorf("core: identity factorization requires d = q")
			}
			return d, nil
		},
	}
}

// EmptyDataFactorization returns the Theorem 9 factorization Υ0: the data
// part is the empty string and the whole instance is the query part —
// "preprocess nothing". It witnesses the separation of ΠT⁰Q from P: with
// this factorization preprocessing sees only ε, so it cannot help.
func EmptyDataFactorization() *Factorization {
	return &Factorization{
		FactName: "empty-data",
		Pi1:      func(x []byte) ([]byte, error) { return nil, nil },
		Pi2:      func(x []byte) ([]byte, error) { return x, nil },
		Rho: func(d, q []byte) ([]byte, error) {
			if len(d) != 0 {
				return nil, fmt.Errorf("core: empty-data factorization got a non-empty data part")
			}
			return q, nil
		},
	}
}

// PaddedFactorization builds Υ′ from Υ as in the proof of Lemma 2:
// σ1(x) = σ2(x) = π1(x)@π2(x) and ρ′(y, y) = ρ(unpad(y)). Both parts carry
// the whole pair, which is what lets two reductions with mismatched middle
// factorizations compose.
func PaddedFactorization(f *Factorization) *Factorization {
	pad := func(x []byte) ([]byte, error) {
		d, err := f.Pi1(x)
		if err != nil {
			return nil, err
		}
		q, err := f.Pi2(x)
		if err != nil {
			return nil, err
		}
		return PadPair(d, q), nil
	}
	return &Factorization{
		FactName: f.FactName + "+padded",
		Pi1:      pad,
		Pi2:      pad,
		Rho: func(d, q []byte) ([]byte, error) {
			if string(d) != string(q) {
				return nil, fmt.Errorf("core: padded factorization requires equal parts")
			}
			pd, pq, err := UnpadPair(d)
			if err != nil {
				return nil, err
			}
			return f.Rho(pd, pq)
		},
	}
}
