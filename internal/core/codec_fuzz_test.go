package core

import (
	"bytes"
	"testing"
)

// FuzzPadPairRoundTrip checks the Lemma 2 padding is lossless: any (d, q)
// encodes to a string UnpadPair splits back into exactly (d, q).
func FuzzPadPairRoundTrip(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte("d"), []byte(""))
	f.Add([]byte(""), []byte("q"))
	f.Add([]byte("data with @ inside"), []byte("query@too"))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), []byte{0x80, 0x00})

	f.Fuzz(func(t *testing.T, d, q []byte) {
		gd, gq, err := UnpadPair(PadPair(d, q))
		if err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
		if !bytes.Equal(gd, d) || !bytes.Equal(gq, q) {
			t.Fatalf("round trip changed the pair: (%x,%x) -> (%x,%x)", d, q, gd, gq)
		}
	})
}

// FuzzUnpadPair feeds the pair decoder arbitrary bytes: corrupt or
// truncated inputs must error, never panic, and any accepted split must
// itself survive a PadPair round trip.
func FuzzUnpadPair(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(PadPair([]byte("d"), []byte("q")))
	f.Add(PadPair(nil, nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge length prefix
	f.Add([]byte{0x05, 'a'})                                                        // first length overruns
	valid := PadPair([]byte("data"), []byte("query"))
	f.Add(valid[:len(valid)-1])                        // truncated second component
	f.Add(append(append([]byte(nil), valid...), 0xAA)) // trailing garbage

	f.Fuzz(func(t *testing.T, x []byte) {
		d, q, err := UnpadPair(x)
		if err != nil {
			return
		}
		gd, gq, err := UnpadPair(PadPair(d, q))
		if err != nil {
			t.Fatalf("accepted split does not re-encode: %v", err)
		}
		if !bytes.Equal(gd, d) || !bytes.Equal(gq, q) {
			t.Fatalf("accepted split changed on re-encode: (%x,%x) -> (%x,%x)", d, q, gd, gq)
		}
	})
}
