package core

import "fmt"

// Scheme is an executable witness of Π-tractability (Definition 1): a
// PTIME preprocessing function Π and an answering procedure deciding the NC
// language S′ on ⟨Π(D), Q⟩. A language S is Π-tractable when
//
//	⟨D, Q⟩ ∈ S  iff  ⟨Π(D), Q⟩ ∈ S′   and   S′ ∈ NC.
//
// The complexity annotations are claims; the repository backs them with
// measured growth (see Classify) rather than asserting them blindly.
//
// Schemes obey the concurrency contract documented in batch.go: Preprocess
// runs once, up front; Answer must then be safe from any number of
// goroutines sharing one preprocessed store (see AnswerBatch for the
// worker-pool entry point).
type Scheme struct {
	SchemeName string
	// Preprocess is Π(·), run once per database, off-line, in PTIME.
	Preprocess func(d []byte) ([]byte, error)
	// Answer decides ⟨Π(D), Q⟩ ∈ S′; it must meet the NC budget. It must
	// treat pd and q as read-only and be safe for concurrent use.
	Answer func(pd, q []byte) (bool, error)
	// PrepareAnswerer, when non-nil, decodes one preprocessed string into a
	// typed Answerer whose Answer(q) probes without re-validating or
	// re-decoding pd — the hot-path form the serving layers answer through
	// (see prepared.go and the Prepare method). It must produce verdicts and
	// error strings identical to Answer on the same pd; the schemes package
	// pins that differentially. Nil means the raw Answer is used directly.
	PrepareAnswerer func(pd []byte) (Answerer, error)
	// PrepareFallback, when non-nil, decodes the same preprocessed string
	// into a cheaper degraded-mode Answerer — the one the serving layer
	// switches to when a dataset's health breaker is degraded or a query
	// budget is nearly spent. "Cheaper" means cheaper to build or probe
	// (e.g. reachability labels fall back to a dense closure probe; a
	// relation scan falls back to binary search); verdicts and error
	// strings on well-formed queries must still match Answer exactly —
	// degradation trades serving cost, never correctness. Nil means the
	// scheme declares no fallback and cannot answer degraded.
	PrepareFallback func(pd []byte) (Answerer, error)
	// PreprocessNote and AnswerNote document the claimed complexities,
	// e.g. "O(|D| log |D|)" and "O(log |D|)".
	PreprocessNote string
	AnswerNote     string
}

// Name identifies the scheme.
func (s *Scheme) Name() string { return s.SchemeName }

// Decide answers one pair end-to-end (preprocessing included). Production
// use preprocesses once and answers many times; Decide exists for
// correctness checks.
func (s *Scheme) Decide(d, q []byte) (bool, error) {
	pd, err := s.Preprocess(d)
	if err != nil {
		return false, fmt.Errorf("scheme %s: preprocess: %w", s.SchemeName, err)
	}
	return s.Answer(pd, q)
}

// VerifyAgainst checks Definition 1's equivalence on concrete pairs: for
// every (d, q) supplied, ⟨d,q⟩ ∈ S iff Answer(Π(d), q). Preprocessing runs
// once per distinct data part, mirroring real usage.
func (s *Scheme) VerifyAgainst(lang Language, pairs []Pair) error {
	cache := map[string][]byte{}
	for i, p := range pairs {
		want, err := lang.Contains(p.D, p.Q)
		if err != nil {
			return fmt.Errorf("scheme %s: language %s on pair %d: %w", s.SchemeName, lang.Name(), i, err)
		}
		pd, ok := cache[string(p.D)]
		if !ok {
			pd, err = s.Preprocess(p.D)
			if err != nil {
				return fmt.Errorf("scheme %s: preprocess pair %d: %w", s.SchemeName, i, err)
			}
			cache[string(p.D)] = pd
		}
		got, err := s.Answer(pd, p.Q)
		if err != nil {
			return fmt.Errorf("scheme %s: answer pair %d: %w", s.SchemeName, i, err)
		}
		if got != want {
			return fmt.Errorf("scheme %s: pair %d: scheme says %v, language %s says %v",
				s.SchemeName, i, got, lang.Name(), want)
		}
	}
	return nil
}

// Pair is one ⟨D, Q⟩ instance.
type Pair struct {
	D []byte
	Q []byte
}

// Class places a query class or problem in the paper's Figure 2 landscape.
type Class int

const (
	// ClassNC: answerable in parallel polylog time with no preprocessing
	// at all (NC ⊆ ΠT⁰Q).
	ClassNC Class = iota
	// ClassPiT0Q: Π-tractable with its natural factorization
	// (Definition 1).
	ClassPiT0Q
	// ClassPiTQ: makeable Π-tractable via re-factorization (Definition 3);
	// equals P by Corollary 6.
	ClassPiTQ
	// ClassP: decidable in PTIME; membership in ΠT⁰Q unknown or false.
	ClassP
	// ClassNPComplete: not Π-tractable unless P = NP (Corollary 7).
	ClassNPComplete
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassNC:
		return "NC"
	case ClassPiT0Q:
		return "ΠT⁰Q"
	case ClassPiTQ:
		return "ΠTQ"
	case ClassP:
		return "P"
	case ClassNPComplete:
		return "NP-complete"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Entry is one row of the Figure 2 landscape: a named query class, its
// paper reference, its class, and (when Π-tractable) its scheme.
type Entry struct {
	Name     string
	PaperRef string
	Class    Class
	Scheme   *Scheme
	Notes    string
}

// Registry collects entries for the landscape experiment (F2).
type Registry struct {
	entries []Entry
}

// Register appends an entry; duplicate names are an error.
func (r *Registry) Register(e Entry) error {
	for _, have := range r.entries {
		if have.Name == e.Name {
			return fmt.Errorf("core: duplicate registry entry %q", e.Name)
		}
	}
	if (e.Class == ClassPiT0Q || e.Class == ClassNC) && e.Scheme == nil {
		return fmt.Errorf("core: entry %q claims %v without a scheme witness", e.Name, e.Class)
	}
	r.entries = append(r.entries, e)
	return nil
}

// Entries returns the registered rows in registration order.
func (r *Registry) Entries() []Entry { return append([]Entry(nil), r.entries...) }
