package core

import (
	"bytes"
	"testing"
)

// TestDeltaEnvelopeRoundTrip pins the tagged-delta wire format: delete and
// upsert round-trip through TagDelta/DeltaParts, inserts stay untagged
// byte-for-byte (the PR 4 compatibility contract), and kinds survive
// DeltaKindOf.
func TestDeltaEnvelopeRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 0xFF, 0}
	for _, kind := range []DeltaKind{DeltaInsert, DeltaDelete, DeltaUpsert} {
		tagged := TagDelta(kind, payload)
		if kind == DeltaInsert && !bytes.Equal(tagged, payload) {
			t.Fatalf("insert must stay untagged: %x", tagged)
		}
		gotKind, gotPayload, err := DeltaParts(tagged)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if gotKind != kind || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("%v round trip: got %v %x", kind, gotKind, gotPayload)
		}
		if DeltaKindOf(tagged) != kind {
			t.Fatalf("DeltaKindOf(%v) = %v", kind, DeltaKindOf(tagged))
		}
	}
}

// TestDeltaPartsUntagged: arbitrary untagged bytes — including empty and
// near-magic prefixes — are inserts of the whole delta.
func TestDeltaPartsUntagged(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		{},
		{0xFF},
		{0xFF, 0xFF, 0xFF},       // magic truncated before its terminal byte
		{0xFF, 0xFF, 0xFF, 0x00}, // full magic but no kind byte: too short
		{0xFF, 0xFF, 0x00, 0x00, 0x01},
		{0x08, 0x01, 0x02},
	} {
		kind, payload, err := DeltaParts(b)
		if err != nil {
			t.Fatalf("%x: %v", b, err)
		}
		if kind != DeltaInsert || !bytes.Equal(payload, b) {
			t.Fatalf("%x: got kind %v payload %x, want untouched insert", b, kind, payload)
		}
	}
}

// TestDeltaPartsUnknownKind: a tagged delta with a future kind byte is an
// error, never a guess — and DeltaKindOf defers to the applying scheme by
// reporting insert.
func TestDeltaPartsUnknownKind(t *testing.T) {
	hostile := []byte{0xFF, 0xFF, 0xFF, 0x00, 0x07, 1, 2}
	if _, _, err := DeltaParts(hostile); err == nil {
		t.Fatal("unknown kind byte accepted")
	}
	if got := DeltaKindOf(hostile); got != DeltaInsert {
		t.Fatalf("DeltaKindOf(unknown kind) = %v, want insert", got)
	}
}
