package core

import (
	"fmt"
	"math"
)

// The definitions demand that answering run in parallel polylog time; the
// repository backs that claim empirically. Classify fits a measured
// cost-versus-size series and labels its growth. The discriminator is the
// log-log slope: polylogarithmic families have slope → 0 as n grows, while
// a polynomial of degree a has slope → a.

// Measurement is one (input size, cost) sample. Cost can be nanoseconds,
// probes, PRAM rounds — any resource that grows with the work done.
type Measurement struct {
	N    float64
	Cost float64
}

// Growth labels a fitted growth family.
type Growth int

const (
	// GrowthConstant: cost independent of n.
	GrowthConstant Growth = iota
	// GrowthPolylog: cost bounded by a polynomial in log n — the NC
	// answering budget of Definition 1.
	GrowthPolylog
	// GrowthPolynomial: cost grows like n^a for a ≥ ~0.5 — a linear scan
	// or worse; preprocessing did not (or could not) help.
	GrowthPolynomial
)

// String names the growth family.
func (g Growth) String() string {
	switch g {
	case GrowthConstant:
		return "O(1)"
	case GrowthPolylog:
		return "polylog"
	case GrowthPolynomial:
		return "polynomial"
	default:
		return fmt.Sprintf("Growth(%d)", int(g))
	}
}

// Fit is the result of classifying a measurement series.
type Fit struct {
	Growth Growth
	// Exponent is the fitted log-log slope: ~0 for constant/polylog
	// series, ~a for an n^a series.
	Exponent float64
	// LogLogR2 is the coefficient of determination of the log-log linear
	// fit; values near 1 mean the polynomial model explains the data.
	LogLogR2 float64
}

// Classify fits the series. It requires at least three samples spanning at
// least a factor of four in n, otherwise it errors: growth claims need a
// real sweep behind them.
func Classify(ms []Measurement) (Fit, error) {
	if len(ms) < 3 {
		return Fit{}, fmt.Errorf("core: need ≥ 3 measurements, got %d", len(ms))
	}
	minN, maxN := math.Inf(1), math.Inf(-1)
	for _, m := range ms {
		if m.N <= 0 || m.Cost < 0 {
			return Fit{}, fmt.Errorf("core: measurements must have n > 0, cost ≥ 0")
		}
		minN = math.Min(minN, m.N)
		maxN = math.Max(maxN, m.N)
	}
	if maxN/minN < 4 {
		return Fit{}, fmt.Errorf("core: size sweep spans only %.1fx, need ≥ 4x", maxN/minN)
	}
	// Linear regression of log(cost+1) on log(n). The +1 keeps zero-cost
	// (e.g. zero-probe) samples finite without disturbing large costs.
	var sx, sy, sxx, sxy, syy float64
	n := float64(len(ms))
	for _, m := range ms {
		x := math.Log(m.N)
		y := math.Log(m.Cost + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	slope := (n*sxy - sx*sy) / den
	// R² of the fit.
	meanY := sy / n
	ssTot := syy - n*meanY*meanY
	intercept := (sy - slope*sx) / n
	ssRes := 0.0
	for _, m := range ms {
		x := math.Log(m.N)
		y := math.Log(m.Cost + 1)
		e := y - (intercept + slope*x)
		ssRes += e * e
	}
	r2 := 1.0
	if ssTot > 1e-12 {
		r2 = 1 - ssRes/ssTot
	}
	fit := Fit{Exponent: slope, LogLogR2: r2}
	// A polylog family log^k(n) has log-log slope k/ln(n) → 0; across the
	// sweeps used here (≥ 4x, typically 100x) slopes stay below ~0.3 for
	// k ≤ 2, while n^a families show slope ≈ a. The 0.45 cut cleanly
	// separates polylog from the linear scans the baselines produce; the
	// known blind spot (tiny fractional powers like n^0.3) is documented
	// and irrelevant to the experiment suite.
	if slope >= 0.45 {
		fit.Growth = GrowthPolynomial
		return fit, nil
	}
	// Distinguish truly flat from (poly)logarithmic via the cost ratio
	// between the largest and smallest sample.
	lo, hi := costAt(ms, minN), costAt(ms, maxN)
	if hi <= lo*1.15+1 {
		fit.Growth = GrowthConstant
	} else {
		fit.Growth = GrowthPolylog
	}
	return fit, nil
}

func costAt(ms []Measurement, n float64) float64 {
	best, dist := 0.0, math.Inf(1)
	for _, m := range ms {
		if d := math.Abs(m.N - n); d < dist {
			dist, best = d, m.Cost
		}
	}
	return best
}
