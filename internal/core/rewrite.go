package core

import "fmt"

// The remark below Definition 1: "One may consider a more general setting
// by incorporating a query rewriting function λ: Q → Q′, and revise
// Definition 1 such that (1) ⟨D,Q⟩ ∈ S iff ⟨Π(D), λ(Q)⟩ ∈ S′, and (2) S′
// is in NC. Then as long as λ(·) is a PTIME computable function, it is
// still feasible to answer queries of Q on big data." RewritingScheme is
// that revision, executable. Query answering using views (§4(6)) is its
// natural client: λ rewrites a query over D into a query over V(D).
type RewritingScheme struct {
	SchemeName string
	// Preprocess is Π(·): PTIME, once per database.
	Preprocess func(d []byte) ([]byte, error)
	// Rewrite is λ(·): PTIME, once per query.
	Rewrite func(q []byte) ([]byte, error)
	// Answer decides ⟨Π(D), λ(Q)⟩ ∈ S′ within the NC budget.
	Answer func(pd, lq []byte) (bool, error)
	// Notes document the claimed complexities.
	PreprocessNote string
	RewriteNote    string
	AnswerNote     string
}

// Name identifies the scheme.
func (s *RewritingScheme) Name() string { return s.SchemeName }

// Decide answers one pair end-to-end.
func (s *RewritingScheme) Decide(d, q []byte) (bool, error) {
	pd, err := s.Preprocess(d)
	if err != nil {
		return false, fmt.Errorf("rewriting scheme %s: preprocess: %w", s.SchemeName, err)
	}
	lq, err := s.Rewrite(q)
	if err != nil {
		return false, fmt.Errorf("rewriting scheme %s: rewrite: %w", s.SchemeName, err)
	}
	return s.Answer(pd, lq)
}

// VerifyAgainst checks the revised Definition 1 equivalence on concrete
// pairs: ⟨d,q⟩ ∈ S iff Answer(Π(d), λ(q)).
func (s *RewritingScheme) VerifyAgainst(lang Language, pairs []Pair) error {
	cache := map[string][]byte{}
	for i, p := range pairs {
		want, err := lang.Contains(p.D, p.Q)
		if err != nil {
			return fmt.Errorf("rewriting scheme %s: language pair %d: %w", s.SchemeName, i, err)
		}
		pd, ok := cache[string(p.D)]
		if !ok {
			pd, err = s.Preprocess(p.D)
			if err != nil {
				return fmt.Errorf("rewriting scheme %s: preprocess pair %d: %w", s.SchemeName, i, err)
			}
			cache[string(p.D)] = pd
		}
		lq, err := s.Rewrite(p.Q)
		if err != nil {
			return fmt.Errorf("rewriting scheme %s: rewrite pair %d: %w", s.SchemeName, i, err)
		}
		got, err := s.Answer(pd, lq)
		if err != nil {
			return fmt.Errorf("rewriting scheme %s: answer pair %d: %w", s.SchemeName, i, err)
		}
		if got != want {
			return fmt.Errorf("rewriting scheme %s: pair %d: scheme %v, language %v", s.SchemeName, i, got, want)
		}
	}
	return nil
}

// Plain flattens the rewriting scheme into an ordinary Scheme by folding λ
// into the answering step; correct as long as λ itself fits the answering
// budget (for per-query O(log) rewrites it does).
func (s *RewritingScheme) Plain() *Scheme {
	return &Scheme{
		SchemeName: s.SchemeName + "/flattened",
		Preprocess: s.Preprocess,
		Answer: func(pd, q []byte) (bool, error) {
			lq, err := s.Rewrite(q)
			if err != nil {
				return false, err
			}
			return s.Answer(pd, lq)
		},
		PreprocessNote: s.PreprocessNote,
		AnswerNote:     s.AnswerNote + " after λ",
	}
}
