package core

import "fmt"

// Reduction is a pair of (NC-computable) maps (α, β) between languages of
// pairs:
//
//	⟨D, Q⟩ ∈ S1  iff  ⟨α(D), β(Q)⟩ ∈ S2.
//
// Used with fixed factorizations it is an F-reduction ≤NC_F (Definition 7);
// used together with a choice of factorizations on both sides it is the
// data/query half of an NC-factor reduction ≤NC_fa (Definition 4). The
// factorization bookkeeping lives in FactorReduction below.
type Reduction struct {
	RedName string
	Alpha   func(d []byte) ([]byte, error)
	Beta    func(q []byte) ([]byte, error)
}

// Name identifies the reduction.
func (r *Reduction) Name() string { return r.RedName }

// Apply maps one pair.
func (r *Reduction) Apply(p Pair) (Pair, error) {
	ad, err := r.Alpha(p.D)
	if err != nil {
		return Pair{}, fmt.Errorf("reduction %s: α: %w", r.RedName, err)
	}
	bq, err := r.Beta(p.Q)
	if err != nil {
		return Pair{}, fmt.Errorf("reduction %s: β: %w", r.RedName, err)
	}
	return Pair{D: ad, Q: bq}, nil
}

// Verify checks the defining equivalence on concrete pairs: for every
// supplied (d, q), ⟨d,q⟩ ∈ s1 iff ⟨α(d),β(q)⟩ ∈ s2.
func (r *Reduction) Verify(s1, s2 Language, pairs []Pair) error {
	for i, p := range pairs {
		want, err := s1.Contains(p.D, p.Q)
		if err != nil {
			return fmt.Errorf("reduction %s: source language pair %d: %w", r.RedName, i, err)
		}
		img, err := r.Apply(p)
		if err != nil {
			return err
		}
		got, err := s2.Contains(img.D, img.Q)
		if err != nil {
			return fmt.Errorf("reduction %s: target language pair %d: %w", r.RedName, i, err)
		}
		if got != want {
			return fmt.Errorf("reduction %s: pair %d: source %v, image %v", r.RedName, i, want, got)
		}
	}
	return nil
}

// FactorReduction packages a full NC-factor reduction L1 ≤NC_fa L2
// (Definition 4): factorizations of both problems plus the (α, β) maps
// relating S(L1,Υ1) to S(L2,Υ2).
type FactorReduction struct {
	From, To *Problem
	F1, F2   *Factorization
	Map      Reduction
}

// Verify checks Definition 4 on concrete instances of L1: factor each
// instance with Υ1, map with (α, β), and compare membership of the image
// pair in S(L2,Υ2) against membership of the instance in L1.
func (fr *FactorReduction) Verify(instances [][]byte) error {
	s1 := PairLanguage(fr.From, fr.F1)
	s2 := PairLanguage(fr.To, fr.F2)
	for i, x := range instances {
		if err := fr.F1.Check(x); err != nil {
			return fmt.Errorf("factor reduction: instance %d: %w", i, err)
		}
		d, _ := fr.F1.Pi1(x)
		q, _ := fr.F1.Pi2(x)
		if err := fr.Map.Verify(s1, s2, []Pair{{D: d, Q: q}}); err != nil {
			return fmt.Errorf("factor reduction: instance %d: %w", i, err)
		}
	}
	return nil
}

// TransportScheme implements Lemma 3 (and its query-class analogue,
// Corollary 4 / Lemma 8): given L1 ≤ L2 via (α, β) and a Π-tractability
// scheme for the target language, construct a scheme for the source:
//
//	Π′(D)       = Π(α(D))           (PTIME ∘ NC ⊆ PTIME)
//	Answer′(p,q) = Answer(p, β(q))  (NC ∘ NC ⊆ NC)
//
// This is the constructive content of "≤NC_fa is compatible with ΠTP":
// tractability flows backwards along reductions.
func TransportScheme(red *Reduction, target *Scheme) *Scheme {
	return &Scheme{
		SchemeName: target.SchemeName + "∘" + red.RedName,
		Preprocess: func(d []byte) ([]byte, error) {
			ad, err := red.Alpha(d)
			if err != nil {
				return nil, err
			}
			return target.Preprocess(ad)
		},
		Answer: func(pd, q []byte) (bool, error) {
			bq, err := red.Beta(q)
			if err != nil {
				return false, err
			}
			return target.Answer(pd, bq)
		},
		PreprocessNote: target.PreprocessNote + " after α",
		AnswerNote:     target.AnswerNote + " after β",
	}
}

// Compose implements the Lemma 2 padding construction. Given
//
//	r1: S(L1,Υ1) → S(L2,Υ2)   and   r2: S(L2,Υ2′) → S(L3,Υ3)
//
// with possibly different middle factorizations, it returns a reduction
// from the *padded* factorization of L1 (see PaddedFactorization) to
// S(L3,Υ3):
//
//	α(D1) = α2(σ1(ρ2(α1(d), β1(q))))   where D1 = d@q
//	β(Q1) = β2(σ2(ρ2(α1(d), β1(q))))   where Q1 = d@q
//
// rho2 restores an L2 instance from its Υ2 parts; sigma2 is Υ2′. The
// composed source factorization is PaddedFactorization(f1); callers verify
// the result with FactorReduction.Verify, which is what the Lemma 2 tests
// do.
func Compose(r1 *Reduction, rho2 func(d, q []byte) ([]byte, error),
	sigma2 *Factorization, r2 *Reduction) *Reduction {
	through := func(padded []byte) ([]byte, []byte, error) {
		d, q, err := UnpadPair(padded)
		if err != nil {
			return nil, nil, err
		}
		ad, err := r1.Alpha(d)
		if err != nil {
			return nil, nil, err
		}
		bq, err := r1.Beta(q)
		if err != nil {
			return nil, nil, err
		}
		y, err := rho2(ad, bq)
		if err != nil {
			return nil, nil, err
		}
		d2, err := sigma2.Pi1(y)
		if err != nil {
			return nil, nil, err
		}
		q2, err := sigma2.Pi2(y)
		if err != nil {
			return nil, nil, err
		}
		return d2, q2, nil
	}
	return &Reduction{
		RedName: r1.RedName + ";" + r2.RedName,
		Alpha: func(padded []byte) ([]byte, error) {
			d2, _, err := through(padded)
			if err != nil {
				return nil, err
			}
			return r2.Alpha(d2)
		},
		Beta: func(padded []byte) ([]byte, error) {
			_, q2, err := through(padded)
			if err != nil {
				return nil, err
			}
			return r2.Beta(q2)
		},
	}
}
