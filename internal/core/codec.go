// Package core implements the paper's formal framework: languages of pairs
// over Σ*, factorizations Υ = (π1, π2, ρ) of decision problems,
// Π-tractability schemes (PTIME preprocessing + NC answering, Definition 1),
// NC-factor reductions and F-reductions (Definitions 4, 5, 7), the Lemma 2
// padding composition, the Lemma 3 scheme transport, and an empirical
// growth classifier that checks measured query costs against the polylog
// bound the definitions demand.
//
// Everything here is executable mathematics: each definition from the paper
// maps to a type, each lemma to a function whose statement is enforced by
// tests rather than by proof.
package core

import (
	"encoding/binary"
	"fmt"
)

// PadPair encodes the pair (d, q) into a single self-delimiting string.
// It is the executable form of the paper's "@ padding" from the proof of
// Lemma 2: σ1(x) = π1(x)@π2(x), where @ never occurs elsewhere. A
// length-prefixed layout gives the same unambiguous-split guarantee without
// reserving an alphabet symbol.
func PadPair(d, q []byte) []byte {
	b := binary.AppendUvarint(nil, uint64(len(d)))
	b = append(b, d...)
	b = binary.AppendUvarint(b, uint64(len(q)))
	return append(b, q...)
}

// UnpadPair splits a string produced by PadPair back into (d, q).
func UnpadPair(x []byte) (d, q []byte, err error) {
	n, k := binary.Uvarint(x)
	if k <= 0 || uint64(len(x)-k) < n {
		return nil, nil, fmt.Errorf("core: corrupt pair padding (first component)")
	}
	d = x[k : k+int(n)]
	rest := x[k+int(n):]
	m, k2 := binary.Uvarint(rest)
	if k2 <= 0 || uint64(len(rest)-k2) != m {
		return nil, nil, fmt.Errorf("core: corrupt pair padding (second component)")
	}
	q = rest[k2 : k2+int(m)]
	return d, q, nil
}

// EncodeUint64 renders v as a self-delimiting byte string; used for numeric
// query parts such as node pairs.
func EncodeUint64(vs ...uint64) []byte {
	var b []byte
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// DecodeUint64 parses exactly want unsigned integers.
func DecodeUint64(x []byte, want int) ([]uint64, error) {
	out := make([]uint64, 0, want)
	off := 0
	for i := 0; i < want; i++ {
		v, k := binary.Uvarint(x[off:])
		if k <= 0 {
			return nil, fmt.Errorf("core: corrupt uint at %d", off)
		}
		off += k
		out = append(out, v)
	}
	if off != len(x) {
		return nil, fmt.Errorf("core: %d trailing bytes", len(x)-off)
	}
	return out, nil
}
