package core

// The prepared-answerer seam — the hot-path half of the scheme contract.
//
// Scheme.Answer takes the preprocessed string pd on every call, which forces
// each call to re-locate (and re-validate) the structure inside pd: parse the
// closure header, re-derive the element count of a sorted file, or — worst —
// re-decode an entire graph for a search-per-query baseline. That is fine for
// one-shot correctness checks, but a serving system answers millions of
// queries against one Π(D), and the paper's answering budget is supposed to
// cover the probe, not the decode.
//
// Prepare factors the per-Π work out: it runs once when a store is
// registered, reloaded, or maintained, decoding pd into a typed in-memory
// Answerer whose Answer(q) does only the probe. The raw Answer path is kept
// unchanged as the differential oracle — prepared answerers are pinned
// byte-for-byte (verdicts and error strings) against it by the schemes
// package's differential tests.

// Answerer is one prepared Π(D), ready to answer queries. Implementations
// must satisfy the same concurrency contract as Scheme.Answer (batch.go):
// Answer is called from any number of goroutines at once, must treat q as
// read-only, and must keep per-call state on the stack.
type Answerer interface {
	// Answer decides one query against the prepared store.
	Answer(q []byte) (bool, error)
}

// AnswererFunc adapts a function to Answerer.
type AnswererFunc func(q []byte) (bool, error)

// Answer implements Answerer.
func (f AnswererFunc) Answer(q []byte) (bool, error) { return f(q) }

// PreparedScheme is the seam the serving layers (store.Store, and through
// it shard.ShardedStore) answer through: anything that can decode one Π(D)
// into an Answerer. *Scheme implements it for every scheme — natively when
// the scheme supplies PrepareAnswerer, and through a raw-Answer fallback
// otherwise — so callers never need to branch on whether a prepared form
// exists.
type PreparedScheme interface {
	Prepare(pd []byte) (Answerer, error)
}

// Prepare decodes pd once into an Answerer. Schemes with a typed prepared
// form (PrepareAnswerer != nil) validate and decode pd here — so a corrupt
// preprocessed string errors once, at preparation, with the same message the
// raw path would produce per query — and their Answerer probes without
// re-validating. Schemes without one fall back to an adapter that closes
// over pd and calls the raw Answer, so the prepared path is never slower
// than the raw path, only equal or faster.
func (s *Scheme) Prepare(pd []byte) (Answerer, error) {
	if s.PrepareAnswerer != nil {
		return s.PrepareAnswerer(pd)
	}
	return AnswererFunc(func(q []byte) (bool, error) { return s.Answer(pd, q) }), nil
}
