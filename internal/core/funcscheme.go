package core

import (
	"bytes"
	"fmt"
)

// The paper's §8(3) open issue: "Π-tractability for general queries, as
// well as for search problems and function problems, deserves a full
// treatment." This file supplies the executable side of that treatment:
// function schemes, whose answering step returns a value rather than a
// Boolean. The RMQ and LCA case studies of §4 are naturally *search*
// problems ("Find RMQ_A(i,j)", "Find LCA(u,v)") and are witnessed through
// this interface; the Boolean framework remains the formal anchor, exactly
// as the paper converts search problems to decision problems.

// FuncLanguage is a reference function F: Σ*×Σ* → Σ* mapping a (data,
// query) pair to an answer string — the function-problem analogue of
// Language.
type FuncLanguage interface {
	// Name identifies the function.
	Name() string
	// Eval computes F(d, q).
	Eval(d, q []byte) ([]byte, error)
}

// FuncLanguageFunc adapts a function to FuncLanguage.
type FuncLanguageFunc struct {
	LangName string
	Compute  func(d, q []byte) ([]byte, error)
}

// Name implements FuncLanguage.
func (l FuncLanguageFunc) Name() string { return l.LangName }

// Eval implements FuncLanguage.
func (l FuncLanguageFunc) Eval(d, q []byte) ([]byte, error) { return l.Compute(d, q) }

// FuncScheme witnesses Π-tractability of a function problem: PTIME
// preprocessing plus an NC Apply step computing the answer from Π(D) and Q.
type FuncScheme struct {
	SchemeName string
	// Preprocess is Π(·), run once per database in PTIME.
	Preprocess func(d []byte) ([]byte, error)
	// Apply computes F(D, Q) from ⟨Π(D), Q⟩ within the NC budget.
	Apply func(pd, q []byte) ([]byte, error)
	// PreprocessNote and ApplyNote document the claimed complexities.
	PreprocessNote string
	ApplyNote      string
}

// Name identifies the scheme.
func (s *FuncScheme) Name() string { return s.SchemeName }

// Eval computes one answer end-to-end (preprocessing included).
func (s *FuncScheme) Eval(d, q []byte) ([]byte, error) {
	pd, err := s.Preprocess(d)
	if err != nil {
		return nil, fmt.Errorf("func scheme %s: preprocess: %w", s.SchemeName, err)
	}
	return s.Apply(pd, q)
}

// VerifyAgainst checks the scheme against the reference function on
// concrete pairs, preprocessing once per distinct data part.
func (s *FuncScheme) VerifyAgainst(lang FuncLanguage, pairs []Pair) error {
	cache := map[string][]byte{}
	for i, p := range pairs {
		want, err := lang.Eval(p.D, p.Q)
		if err != nil {
			return fmt.Errorf("func scheme %s: reference %s pair %d: %w", s.SchemeName, lang.Name(), i, err)
		}
		pd, ok := cache[string(p.D)]
		if !ok {
			pd, err = s.Preprocess(p.D)
			if err != nil {
				return fmt.Errorf("func scheme %s: preprocess pair %d: %w", s.SchemeName, i, err)
			}
			cache[string(p.D)] = pd
		}
		got, err := s.Apply(pd, p.Q)
		if err != nil {
			return fmt.Errorf("func scheme %s: apply pair %d: %w", s.SchemeName, i, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("func scheme %s: pair %d: scheme %v, reference %v", s.SchemeName, i, got, want)
		}
	}
	return nil
}

// Decision converts a function scheme into the Boolean scheme deciding
// "F(D, Q) = a" for query pad(Q, a) — the standard search-to-decision
// conversion the paper invokes ("one can write a Boolean query Q to
// determine, given a tuple t, whether t ∈ Q′(D)").
func (s *FuncScheme) Decision() *Scheme {
	return &Scheme{
		SchemeName: s.SchemeName + "/decision",
		Preprocess: s.Preprocess,
		Answer: func(pd, q []byte) (bool, error) {
			fq, want, err := UnpadPair(q)
			if err != nil {
				return false, err
			}
			got, err := s.Apply(pd, fq)
			if err != nil {
				return false, err
			}
			return bytes.Equal(got, want), nil
		},
		PreprocessNote: s.PreprocessNote,
		AnswerNote:     s.ApplyNote,
	}
}
