package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLookupPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Lookup("d", 0, []byte("q")); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put("d", 0, []byte("q"), true)
	v, ok := c.Lookup("d", 0, []byte("q"))
	if !ok || !v {
		t.Fatalf("Lookup = (%v, %v), want (true, true)", v, ok)
	}
	// Distinct versions, datasets, and queries are distinct keys.
	if _, ok := c.Lookup("d", 1, []byte("q")); ok {
		t.Fatal("version is not part of the key")
	}
	if _, ok := c.Lookup("d2", 0, []byte("q")); ok {
		t.Fatal("dataset is not part of the key")
	}
	if _, ok := c.Lookup("d", 0, []byte("q2")); ok {
		t.Fatal("query is not part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 4 misses, 1 entry", st)
	}
}

// TestKeyUnambiguous pins that the length-delimited key never lets two
// distinct ⟨dataset, version, query⟩ triples collide even when their raw
// concatenations would.
func TestKeyUnambiguous(t *testing.T) {
	if Key("ab", 0, []byte("c")) == Key("a", 0, []byte("bc")) {
		t.Fatal("dataset/query boundary is ambiguous")
	}
	if Key("a", 1, nil) == Key("a", 256, nil) {
		t.Fatal("versions collide")
	}
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	// A budget that fits ~4 entries per shard; keys land on shards by
	// hash, so fill well past the total and verify the budget holds.
	c := New(shardCount * 4 * (entryOverhead + 32))
	for i := 0; i < 1024; i++ {
		c.Put("d", 0, []byte(fmt.Sprintf("query-%04d", i)), i%2 == 0)
	}
	st := c.Stats()
	if st.Bytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("filling past the budget evicted nothing")
	}
	if st.Entries == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
	// Recency: re-touch one surviving key, insert more, and the touched key
	// should outlive untouched ones on its shard. Find a survivor first.
	survivor := ""
	for i := 1023; i >= 0; i-- {
		k := fmt.Sprintf("query-%04d", i)
		if _, ok := c.Lookup("d", 0, []byte(k)); ok {
			survivor = k
			break
		}
	}
	if survivor == "" {
		t.Fatal("no surviving entry found")
	}
	for i := 0; i < 64; i++ {
		c.Lookup("d", 0, []byte(survivor)) // keep it hot
		c.Put("d", 0, []byte(fmt.Sprintf("flood-%04d", i)), true)
	}
	if _, ok := c.Lookup("d", 0, []byte(survivor)); !ok {
		t.Fatal("recently used entry was evicted ahead of older ones")
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(shardCount) // tiny budget: per-shard floor of minShardBudget
	// An entry whose key alone exceeds the per-shard floor must be refused.
	huge := make([]byte, minShardBudget)
	c.Put("d", 0, huge, true)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

// TestTinyBudgetStillCaches pins the -cache-bytes truncation fix: budgets
// below shardCount bytes used to integer-divide to a per-shard budget of 0,
// silently refusing every entry — `pitract serve -cache-bytes 8` served
// permanently uncached. A positive budget must cache ordinary entries.
func TestTinyBudgetStillCaches(t *testing.T) {
	for _, budget := range []int64{1, 8, shardCount - 1, shardCount, shardCount + 1} {
		c := New(budget)
		c.Put("d", 0, []byte("q"), true)
		v, ok := c.Lookup("d", 0, []byte("q"))
		if !ok || !v {
			t.Fatalf("New(%d): Lookup after Put = (%v, %v), want (true, true)", budget, v, ok)
		}
		if st := c.Stats(); st.Entries != 1 {
			t.Fatalf("New(%d): stats = %+v, want 1 entry", budget, st)
		}
	}
	// A zero budget still means "no cache budget": nothing is cached.
	c := New(0)
	c.Put("d", 0, []byte("q"), true)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("New(0) cached an entry: %+v", st)
	}
}

func TestDoCachesAndCoalesces(t *testing.T) {
	c := New(1 << 20)
	var calls atomic.Int64
	answer := func() (bool, error) { calls.Add(1); return true, nil }
	for i := 0; i < 10; i++ {
		v, err := c.Do("d", 3, []byte("hot"), answer)
		if err != nil || !v {
			t.Fatalf("Do = (%v, %v)", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("answer ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 9 hits / 1 miss", st)
	}
}

// TestThunderingHerdRunsAnswerOnce pins singleflight: many goroutines
// arriving at one cold key run the underlying answer exactly once, with
// the rest coalesced onto the flight.
func TestThunderingHerdRunsAnswerOnce(t *testing.T) {
	c := New(1 << 20)
	const herd = 64
	var calls atomic.Int64
	release := make(chan struct{})
	answer := func() (bool, error) {
		calls.Add(1)
		<-release // hold the flight open until the whole herd has arrived
		return true, nil
	}
	var started, done sync.WaitGroup
	started.Add(herd)
	done.Add(herd)
	for i := 0; i < herd; i++ {
		go func() {
			started.Done()
			v, err := c.Do("d", 0, []byte("cold"), answer)
			if err != nil || !v {
				t.Errorf("Do = (%v, %v)", v, err)
			}
			done.Done()
		}()
	}
	started.Wait()
	// All herd goroutines are launched; let the flight finish. Goroutines
	// that arrived before the close coalesce; any that arrive after it hit
	// the now-cached entry. Either way the answer ran once.
	close(release)
	done.Wait()
	if calls.Load() != 1 {
		t.Fatalf("answer ran %d times under the herd, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced+st.Hits != herd-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced+hits", st, herd-1)
	}
}

// TestErrorsNeverCached pins that a failing answer propagates (to the
// caller and its coalesced waiters) but leaves no entry behind.
func TestErrorsNeverCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	var calls atomic.Int64
	if _, err := c.Do("d", 0, []byte("q"), func() (bool, error) { calls.Add(1); return false, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if v, err := c.Do("d", 0, []byte("q"), func() (bool, error) { calls.Add(1); return true, nil }); err != nil || !v {
		t.Fatalf("Do after error = (%v, %v)", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("answer ran %d times, want 2 (error not cached)", calls.Load())
	}
}

// TestPanickingAnswerDoesNotPoisonKey pins the singleflight cleanup: a
// panicking answer callback must propagate to its caller, release any
// coalesced waiters with an error, and leave the key usable — not park
// every future Do on a never-closed flight.
func TestPanickingAnswerDoesNotPoisonKey(t *testing.T) {
	c := New(1 << 20)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the Do caller")
			}
		}()
		c.Do("d", 0, []byte("q"), func() (bool, error) { panic("hostile query") })
	}()
	// The key must answer normally afterwards (no wedged flight).
	v, err := c.Do("d", 0, []byte("q"), func() (bool, error) { return true, nil })
	if err != nil || !v {
		t.Fatalf("Do after panic = (%v, %v), want (true, nil)", v, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats after recovery = %+v, want the key cached once", st)
	}
}

// TestConcurrentMixedUse exercises the sharded locks under the race
// detector: concurrent Do/Lookup/Put/Stats across many keys and versions.
func TestConcurrentMixedUse(t *testing.T) {
	c := New(4096 * shardCount)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("q%d", i%37))
				version := uint64(i % 5)
				switch i % 3 {
				case 0:
					if _, err := c.Do("d", version, k, func() (bool, error) { return i%2 == 0, nil }); err != nil {
						t.Errorf("Do: %v", err)
					}
				case 1:
					c.Lookup("d", version, k)
				default:
					c.Put("d", version, k, i%2 == 0)
				}
			}
			c.Stats()
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, st.BudgetBytes)
	}
}
