// Package cache memoizes hot query verdicts in front of the answering
// path. The paper's contract makes every answer a pure function of
// ⟨Π(D), Q⟩, and incremental serving (PR 4) gave every dataset a monotonic
// maintenance version that changes exactly when Π changes — so the triple
// ⟨datasetID, version, query⟩ is a complete cache key: a hit can never
// serve a verdict computed against anything but the keyed version, and
// maintenance invalidates for free, because a committed delta bumps the
// version and all traffic moves to new keys while the stale entries age
// out of the LRU.
//
// The cache is sharded by key hash: each shard has its own lock, LRU list,
// and slice of the byte budget, so concurrent lookups from many serving
// goroutines do not serialize on one mutex. Cold keys coalesce: when many
// goroutines miss on the same key at once (the thundering-herd shape of a
// hot query arriving over many connections), exactly one runs the
// underlying answer and the rest wait for its verdict — the singleflight
// pattern — counted separately from hits and misses so operators can see
// herd suppression working.
//
// Errors are never cached: a failing answer propagates to the caller (and
// any coalesced waiters) and leaves no entry, so a transient failure
// cannot poison a key.
package cache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
)

// shardCount is the number of independently locked cache shards (a power
// of two so shard selection is a mask). 16 comfortably exceeds the core
// counts this repository serves from while keeping per-shard LRUs long.
const shardCount = 16

// entryOverhead approximates the bookkeeping bytes an entry costs beyond
// its key: the list element, the interface header, the map bucket share.
// The budget accounting uses key length + overhead, so a budget of B bytes
// really bounds resident memory near B.
const entryOverhead = 96

// Cache is a sharded, byte-budgeted LRU of query verdicts with
// singleflight coalescing. The zero value is not usable; construct with
// New. All methods are safe for concurrent use.
type Cache struct {
	budgetPerShard int64
	shards         [shardCount]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// cacheShard is one lock's worth of the cache.
type cacheShard struct {
	mu      sync.Mutex
	ll      *list.List               // front = most recent
	table   map[string]*list.Element // key -> element holding *entry
	flights map[string]*flight       // keys with an answer in flight
	bytes   int64
}

// entry is one cached verdict.
type entry struct {
	key     string
	verdict bool
}

// flight is one in-progress answer other callers can wait on.
type flight struct {
	done    chan struct{}
	verdict bool
	err     error
}

// minShardBudget is the smallest per-shard budget a nonzero total budget
// resolves to: room for one entry with a modest key. Without this floor a
// tiny budget would truncate (or round) to a per-shard budget below any
// real entry's cost, and the cache would silently refuse everything —
// `pitract serve -cache-bytes 8` serving permanently uncached.
const minShardBudget = entryOverhead + 64

// New returns a cache bounded by budgetBytes of (approximate) resident
// memory. A positive budget always caches: the per-shard budget is the
// ceiling of budgetBytes/shardCount, floored at one typical entry per
// shard, so small budgets degrade to a small cache rather than a disabled
// one. Only entries larger than a whole shard's budget are refused.
func New(budgetBytes int64) *Cache {
	perShard := (budgetBytes + shardCount - 1) / shardCount
	if budgetBytes > 0 && perShard < minShardBudget {
		perShard = minShardBudget
	}
	c := &Cache{budgetPerShard: perShard}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].table = map[string]*list.Element{}
		c.shards[i].flights = map[string]*flight{}
	}
	return c
}

// Key renders the complete cache identity of one answer: the dataset, the
// maintenance version of Π the answer was admitted against, and the query
// bytes, each length-delimited so distinct triples never collide.
func Key(dataset string, version uint64, q []byte) string {
	b := make([]byte, 0, binary.MaxVarintLen64*2+8+len(dataset)+len(q))
	b = binary.AppendUvarint(b, uint64(len(dataset)))
	b = append(b, dataset...)
	b = binary.BigEndian.AppendUint64(b, version)
	b = append(b, q...)
	return string(b)
}

// shardFor hashes a key (FNV-1a) onto its shard.
func (c *Cache) shardFor(key string) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h&(shardCount-1)]
}

// Lookup returns the cached verdict for ⟨dataset, version, q⟩, if present,
// bumping its recency.
func (c *Cache) Lookup(dataset string, version uint64, q []byte) (verdict, ok bool) {
	key := Key(dataset, version, q)
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.table[key]
	if ok {
		sh.ll.MoveToFront(el)
		verdict = el.Value.(*entry).verdict
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return verdict, ok
}

// Put inserts a verdict for ⟨dataset, version, q⟩, evicting
// least-recently-used entries if the shard's budget overflows. Entries
// larger than a whole shard budget are not cached.
func (c *Cache) Put(dataset string, version uint64, q []byte, verdict bool) {
	key := Key(dataset, version, q)
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.put(c, key, verdict)
	sh.mu.Unlock()
}

// put inserts under the shard lock (held by the caller).
func (sh *cacheShard) put(c *Cache, key string, verdict bool) {
	cost := int64(len(key)) + entryOverhead
	if cost > c.budgetPerShard {
		return
	}
	if el, ok := sh.table[key]; ok {
		el.Value.(*entry).verdict = verdict
		sh.ll.MoveToFront(el)
		return
	}
	sh.table[key] = sh.ll.PushFront(&entry{key: key, verdict: verdict})
	sh.bytes += cost
	for sh.bytes > c.budgetPerShard {
		tail := sh.ll.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		sh.ll.Remove(tail)
		delete(sh.table, ev.key)
		sh.bytes -= int64(len(ev.key)) + entryOverhead
		c.evictions.Add(1)
	}
}

// Do returns the verdict for ⟨dataset, version, q⟩: from the cache on a
// hit, otherwise by running answer exactly once per key no matter how many
// goroutines arrive at the cold key together — late arrivals block on the
// first caller's flight and share its verdict (or its error, which is
// never cached). This is the serving layers' entry point.
func (c *Cache) Do(dataset string, version uint64, q []byte, answer func() (bool, error)) (bool, error) {
	key := Key(dataset, version, q)
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.table[key]; ok {
		sh.ll.MoveToFront(el)
		v := el.Value.(*entry).verdict
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, nil
	}
	if f, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		return f.verdict, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	c.misses.Add(1)

	// The flight must be removed and closed even if answer panics (a
	// custom Answerer on hostile input can): otherwise the key is poisoned
	// — coalesced waiters and every future Do for it would block forever.
	// The panic itself propagates to this caller; waiters see the
	// zero-value verdict with errFlightPanicked.
	f.err = errFlightPanicked
	defer func() {
		sh.mu.Lock()
		delete(sh.flights, key)
		if f.err == nil {
			sh.put(c, key, f.verdict)
		}
		sh.mu.Unlock()
		close(f.done)
	}()
	f.verdict, f.err = answer()
	return f.verdict, f.err
}

// errFlightPanicked is what coalesced waiters receive when the flight
// they waited on panicked instead of returning — never cached, like any
// other error.
var errFlightPanicked = errors.New("cache: coalesced answer panicked")

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a cached entry; Misses counts
	// lookups that ran (or, via Put, preceded) the underlying answer;
	// Coalesced counts lookups that waited on another caller's in-flight
	// answer instead of running their own.
	Hits, Misses, Coalesced int64
	// Evictions counts entries dropped by the byte budget; stale-version
	// entries leave this way too (nothing looks them up again, so they
	// drift to the LRU tail).
	Evictions int64
	// Entries and Bytes describe current residency; BudgetBytes is the
	// configured capacity.
	Entries, Bytes, BudgetBytes int64
}

// Stats reports the cache counters and current residency.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		BudgetBytes: c.budgetPerShard * shardCount,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += int64(sh.ll.Len())
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}
