package circuit

import (
	"testing"
	"testing/quick"
)

func allAssignments(n int) [][]bool {
	out := make([][]bool, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = mask&(1<<i) != 0
		}
		out = append(out, in)
	}
	return out
}

func TestOptimizePreservesFunctionExhaustively(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := Generate(GenConfig{Inputs: 5, Gates: 40, Seed: seed})
		opt, err := Optimize(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, in := range allAssignments(5) {
			want, err1 := c.Eval(in)
			got, err2 := opt.Eval(in)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if got != want {
				t.Fatalf("seed %d input %v: optimized %v, original %v", seed, in, got, want)
			}
		}
		if opt.Size() > c.Size()+2 {
			t.Fatalf("seed %d: optimization grew the circuit %d → %d", seed, c.Size(), opt.Size())
		}
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	// (x0 AND false) OR (true AND true) ≡ true.
	c := &Circuit{
		NumInputs: 1,
		Gates: []Gate{
			{Kind: KindInput, Arg: 0},
			{Kind: KindConst, Arg: 0},
			{Kind: KindConst, Arg: 1},
			{Kind: KindAnd, In: []int32{0, 1}},
			{Kind: KindAnd, In: []int32{2, 2}},
			{Kind: KindOr, In: []int32{3, 4}},
		},
		Output: 5,
	}
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size() != 1 || opt.Gates[0].Kind != KindConst || opt.Gates[0].Arg != 1 {
		t.Fatalf("constant circuit not fully folded: %+v", opt.Gates)
	}
	if v, _ := opt.Eval([]bool{false}); !v {
		t.Fatal("folded constant has wrong value")
	}
}

func TestOptimizeCollapsesWires(t *testing.T) {
	// OR(x0, false) is just x0; NOT(NOT-free alias) keeps one gate.
	c := &Circuit{
		NumInputs: 1,
		Gates: []Gate{
			{Kind: KindInput, Arg: 0},
			{Kind: KindConst, Arg: 0},
			{Kind: KindOr, In: []int32{0, 1}},
			{Kind: KindNot, In: []int32{2}},
		},
		Output: 3,
	}
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size() != 2 { // input + not
		t.Fatalf("wire not collapsed: %d gates %+v", opt.Size(), opt.Gates)
	}
}

func TestOptimizeDropsDeadGates(t *testing.T) {
	c := &Circuit{
		NumInputs: 2,
		Gates: []Gate{
			{Kind: KindInput, Arg: 0},
			{Kind: KindInput, Arg: 1},
			{Kind: KindAnd, In: []int32{0, 1}}, // dead
			{Kind: KindNot, In: []int32{0}},    // output cone
		},
		Output: 3,
	}
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size() != 2 {
		t.Fatalf("dead gate survived: %+v", opt.Gates)
	}
}

func TestOptimizeQuick(t *testing.T) {
	f := func(seed int64, inputs8, gates8 uint8) bool {
		nIn := 1 + int(inputs8)%4
		c := Generate(GenConfig{Inputs: nIn, Gates: 1 + int(gates8)%60, Seed: seed})
		opt, err := Optimize(c)
		if err != nil {
			return false
		}
		in := RandomInputs(nIn, seed+1)
		a, err1 := c.Eval(in)
		b, err2 := opt.Eval(in)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeRejectsInvalid(t *testing.T) {
	if _, err := Optimize(&Circuit{NumInputs: 1}); err == nil {
		t.Fatal("invalid circuit optimized")
	}
}
