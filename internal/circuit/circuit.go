// Package circuit implements Boolean circuits and the Circuit Value Problem
// (CVP), the paper's touchstone P-complete problem (§4(8), §6, §7).
//
// A circuit is a DAG of gates presented in topological order — exactly the
// paper's encoding ᾱ, "a sequence of tuples, one for each node". Gates are
// inputs, constants, or AND/OR/NOT operators over earlier gates. CVP asks
// whether a designated output gate evaluates to true on given inputs.
//
// The package provides evaluation (sequential and layer-parallel with depth
// accounting), validation, a deterministic byte codec, seeded random
// generation, and the reduction of CVP instances to BDS instances used by
// the Theorem 5 completeness experiments.
package circuit

import (
	"fmt"
)

// Kind enumerates gate kinds.
type Kind uint8

const (
	// KindInput reads the gate's Arg-th circuit input.
	KindInput Kind = iota
	// KindConst is a constant; Arg 0 = false, 1 = true.
	KindConst
	// KindAnd is the conjunction of the In gates (fan-in ≥ 1).
	KindAnd
	// KindOr is the disjunction of the In gates (fan-in ≥ 1).
	KindOr
	// KindNot negates its single In gate.
	KindNot
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConst:
		return "const"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindNot:
		return "not"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Gate is one node of the circuit DAG.
type Gate struct {
	Kind Kind
	// Arg is the input position (KindInput) or constant value (KindConst).
	Arg int32
	// In lists operand gate indices, all strictly smaller than this gate's
	// own index (topological encoding).
	In []int32
}

// Circuit is a topologically ordered gate list with a designated output.
type Circuit struct {
	NumInputs int
	Gates     []Gate
	Output    int32
}

// Validate checks the structural invariants: operands precede their gate,
// fan-in matches the kind, the output exists, and input/const arguments are
// in range.
func (c *Circuit) Validate() error {
	if c.NumInputs < 0 {
		return fmt.Errorf("circuit: negative input count %d", c.NumInputs)
	}
	if len(c.Gates) == 0 {
		return fmt.Errorf("circuit: no gates")
	}
	if c.Output < 0 || int(c.Output) >= len(c.Gates) {
		return fmt.Errorf("circuit: output %d out of range [0,%d)", c.Output, len(c.Gates))
	}
	for i, g := range c.Gates {
		switch g.Kind {
		case KindInput:
			if g.Arg < 0 || int(g.Arg) >= c.NumInputs {
				return fmt.Errorf("circuit: gate %d reads input %d of %d", i, g.Arg, c.NumInputs)
			}
			if len(g.In) != 0 {
				return fmt.Errorf("circuit: input gate %d has operands", i)
			}
		case KindConst:
			if g.Arg != 0 && g.Arg != 1 {
				return fmt.Errorf("circuit: const gate %d has value %d", i, g.Arg)
			}
			if len(g.In) != 0 {
				return fmt.Errorf("circuit: const gate %d has operands", i)
			}
		case KindAnd, KindOr:
			if len(g.In) < 1 {
				return fmt.Errorf("circuit: %v gate %d has fan-in 0", g.Kind, i)
			}
		case KindNot:
			if len(g.In) != 1 {
				return fmt.Errorf("circuit: not gate %d has fan-in %d", i, len(g.In))
			}
		default:
			return fmt.Errorf("circuit: gate %d has unknown kind %d", i, g.Kind)
		}
		for _, in := range g.In {
			if in < 0 || int(in) >= i {
				return fmt.Errorf("circuit: gate %d references gate %d (not earlier)", i, in)
			}
		}
	}
	return nil
}

// Eval computes the designated output on the given inputs — the direct
// PTIME evaluation of CVP.
func (c *Circuit) Eval(inputs []bool) (bool, error) {
	vals, err := c.EvalAll(inputs)
	if err != nil {
		return false, err
	}
	return vals[c.Output], nil
}

// EvalAll computes every gate value. This is the Corollary-6 preprocessing
// step for the gate-value query class: one PTIME pass stores all values, and
// each later query is an O(1) readout.
func (c *Circuit) EvalAll(inputs []bool) ([]bool, error) {
	if len(inputs) != c.NumInputs {
		return nil, fmt.Errorf("circuit: got %d inputs, want %d", len(inputs), c.NumInputs)
	}
	vals := make([]bool, len(c.Gates))
	for i, g := range c.Gates {
		switch g.Kind {
		case KindInput:
			vals[i] = inputs[g.Arg]
		case KindConst:
			vals[i] = g.Arg == 1
		case KindAnd:
			v := true
			for _, in := range g.In {
				v = v && vals[in]
			}
			vals[i] = v
		case KindOr:
			v := false
			for _, in := range g.In {
				v = v || vals[in]
			}
			vals[i] = v
		case KindNot:
			vals[i] = !vals[g.In[0]]
		default:
			return nil, fmt.Errorf("circuit: gate %d has unknown kind %d", i, g.Kind)
		}
	}
	return vals, nil
}

// Depth returns the longest input-to-output path length. A layer-parallel
// evaluator needs exactly Depth rounds, which is why deep circuits defeat
// NC evaluation: for the Cook–Levin circuits of internal/tm the depth is
// Θ(T), polynomial rather than polylog — the concrete face of CVP's
// P-completeness.
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.Gates))
	max := 0
	for i, g := range c.Gates {
		d := 0
		for _, in := range g.In {
			if depth[in] > d {
				d = depth[in]
			}
		}
		if len(g.In) > 0 {
			d++
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Size reports the number of gates.
func (c *Circuit) Size() int { return len(c.Gates) }
