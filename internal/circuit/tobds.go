package circuit

// Reduction from CVP to Breadth-Depth Search.
//
// Theorem 5 proves BDS complete for ΠTP by a generic argument: BDS is
// P-complete [21], so for every L ∈ P there EXISTS an NC function h with
// x ∈ L iff h(x) ∈ BDS; the paper never exhibits the gadget construction,
// which lives in the P-completeness literature. Per the substitution rule
// in DESIGN.md we implement a *reference* h: evaluate the circuit (PTIME)
// and emit a canonical BDS instance carrying the answer. Every observable
// property the paper uses — answer preservation, composability under the
// Lemma 2/3 machinery, Π-tractability of the image — holds for this h and
// is exercised by tests. For the formula (tree-shaped circuit) subclass the
// evaluation itself is in NC (Buss's formula-value problem is in NC¹), so
// for that subclass this very map is a genuine ≤NC_fa reduction.

import (
	"pitract/internal/graph"
)

// BDSInstance is an instance of the breadth-depth search decision problem:
// an undirected numbered graph and a node pair; the answer is "is U visited
// before V".
type BDSInstance struct {
	G    *graph.Graph
	U, V int
}

// canonicalBDSGraph is a fixed five-vertex undirected graph whose
// breadth-depth search order from vertex 0 is 0,1,2,3,4 (a star 0—{1,2,3}
// with the extra edge 2—4, cf. the bds package tests). Embedding the answer
// in a non-path graph keeps the downstream BDS machinery honest: answering
// still requires running (or having preprocessed) an actual search.
func canonicalBDSGraph() *graph.Graph {
	g := graph.New(5, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(2, 4)
	g.Normalize()
	return g
}

// ReduceInstanceToBDS maps a CVP instance to a BDS instance with the same
// answer: h(x) ∈ BDS iff x ∈ CVP. The visit order of the canonical graph
// puts 3 before 4, so a true instance asks (3,4) and a false one (4,3).
func ReduceInstanceToBDS(in *Instance) (*BDSInstance, error) {
	val, err := in.Eval()
	if err != nil {
		return nil, err
	}
	b := &BDSInstance{G: canonicalBDSGraph()}
	if val {
		b.U, b.V = 3, 4
	} else {
		b.U, b.V = 4, 3
	}
	return b, nil
}
