package circuit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pitract/internal/bds"
)

// handBuilt returns (x0 AND x1) OR NOT x2.
func handBuilt() *Circuit {
	return &Circuit{
		NumInputs: 3,
		Gates: []Gate{
			{Kind: KindInput, Arg: 0},
			{Kind: KindInput, Arg: 1},
			{Kind: KindInput, Arg: 2},
			{Kind: KindAnd, In: []int32{0, 1}},
			{Kind: KindNot, In: []int32{2}},
			{Kind: KindOr, In: []int32{3, 4}},
		},
		Output: 5,
	}
}

func TestEvalHandBuilt(t *testing.T) {
	c := handBuilt()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		in := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
		want := (in[0] && in[1]) || !in[2]
		got, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("inputs %v: got %v want %v", in, got, want)
		}
	}
}

func TestEvalAllExposesEveryGate(t *testing.T) {
	c := handBuilt()
	vals, err := c.EvalAll([]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, true, false, true}
	if !reflect.DeepEqual(vals, want) {
		t.Fatalf("EvalAll = %v, want %v", vals, want)
	}
}

func TestEvalRejectsWrongArity(t *testing.T) {
	c := handBuilt()
	if _, err := c.Eval([]bool{true}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]*Circuit{
		"no gates":       {NumInputs: 1},
		"bad output":     {NumInputs: 1, Gates: []Gate{{Kind: KindInput}}, Output: 5},
		"forward ref":    {NumInputs: 1, Gates: []Gate{{Kind: KindNot, In: []int32{0}}}, Output: 0},
		"input arg":      {NumInputs: 1, Gates: []Gate{{Kind: KindInput, Arg: 3}}, Output: 0},
		"const arg":      {NumInputs: 0, Gates: []Gate{{Kind: KindConst, Arg: 7}}, Output: 0},
		"not fan-in":     {NumInputs: 1, Gates: []Gate{{Kind: KindInput}, {Kind: KindNot, In: []int32{0, 0}}}, Output: 1},
		"and fan-in 0":   {NumInputs: 1, Gates: []Gate{{Kind: KindInput}, {Kind: KindAnd}}, Output: 1},
		"input with ins": {NumInputs: 1, Gates: []Gate{{Kind: KindInput}, {Kind: KindInput, In: []int32{0}}}, Output: 1},
		"unknown kind":   {NumInputs: 1, Gates: []Gate{{Kind: Kind(99)}}, Output: 0},
		"neg inputs":     {NumInputs: -1, Gates: []Gate{{Kind: KindConst}}, Output: 0},
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDepth(t *testing.T) {
	c := handBuilt()
	if d := c.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	flat := &Circuit{NumInputs: 1, Gates: []Gate{{Kind: KindInput}}, Output: 0}
	if d := flat.Depth(); d != 0 {
		t.Fatalf("flat Depth = %d", d)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := Generate(GenConfig{Inputs: 1 + int(seed)%5, Gates: 30, Seed: seed})
		if err := c.Validate(); err != nil {
			t.Fatalf("generated circuit invalid: %v", err)
		}
		back, err := Decode(c.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c, back) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	c := handBuilt()
	enc := c.Encode()
	for i, bad := range [][]byte{nil, enc[:3], append(append([]byte{}, enc...), 1)} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Structurally invalid circuits must fail Decode's validation.
	invalid := (&Circuit{NumInputs: 1, Gates: []Gate{{Kind: KindInput, Arg: 9}}, Output: 0}).Encode()
	if _, err := Decode(invalid); err == nil {
		t.Error("invalid circuit decoded")
	}
}

func TestInstanceEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, nIn8 uint8) bool {
		nIn := 1 + int(nIn8)%6
		in := &Instance{
			Circuit: Generate(GenConfig{Inputs: nIn, Gates: 20, Seed: seed}),
			Inputs:  RandomInputs(nIn, seed+1),
		}
		back, err := DecodeInstance(EncodeInstance(in))
		if err != nil {
			return false
		}
		a, err1 := in.Eval()
		b, err2 := back.Eval()
		return err1 == nil && err2 == nil && a == b && reflect.DeepEqual(in.Inputs, back.Inputs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInstanceRejectsCorrupt(t *testing.T) {
	in := &Instance{Circuit: handBuilt(), Inputs: []bool{true, false, true}}
	enc := EncodeInstance(in)
	for i, bad := range [][]byte{nil, enc[:2], enc[:len(enc)-1]} {
		if _, err := DecodeInstance(bad); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Input byte out of {0,1}.
	badByte := append([]byte{}, enc...)
	badByte[1] = 9
	if _, err := DecodeInstance(badByte); err == nil {
		t.Error("bad input byte decoded")
	}
	// Arity mismatch between carried inputs and circuit.
	mismatch := EncodeInstance(&Instance{Circuit: handBuilt(), Inputs: []bool{true, false, true}})
	// Truncate one input by rewriting the count prefix (3 -> 2 shifts the
	// whole layout, so rebuild instead).
	short := append([]byte{2, 1, 0}, handBuilt().Encode()...)
	if _, err := DecodeInstance(short); err == nil {
		t.Error("arity mismatch decoded")
	}
	_ = mismatch
}

func TestGenerateDeterministicAndShape(t *testing.T) {
	a := Generate(GenConfig{Inputs: 4, Gates: 50, Seed: 7})
	b := Generate(GenConfig{Inputs: 4, Gates: 50, Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation not deterministic")
	}
	if a.Size() != 54 {
		t.Fatalf("Size = %d, want 54", a.Size())
	}
	// Degenerate configs are clamped, not rejected.
	c := Generate(GenConfig{})
	if err := c.Validate(); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
}

func TestReduceInstanceToBDSPreservesAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nIn := 1 + rng.Intn(5)
		in := &Instance{
			Circuit: Generate(GenConfig{Inputs: nIn, Gates: 1 + rng.Intn(40), Seed: int64(trial)}),
			Inputs:  RandomInputs(nIn, int64(trial*31)),
		}
		want, err := in.Eval()
		if err != nil {
			t.Fatal(err)
		}
		inst, err := ReduceInstanceToBDS(in)
		if err != nil {
			t.Fatal(err)
		}
		// Answer the BDS instance by actually running the search.
		got, err := bds.AnswerNaive(inst.G, inst.U, inst.V)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: circuit value %v, BDS image answers %v", trial, want, got)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInput: "input", KindConst: "const", KindAnd: "and",
		KindOr: "or", KindNot: "not", Kind(42): "Kind(42)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}
