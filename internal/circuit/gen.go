package circuit

import "math/rand"

// GenConfig parameterizes random circuit generation.
type GenConfig struct {
	Inputs int
	Gates  int // operator gates beyond the input layer
	Seed   int64
	// MaxFanIn bounds AND/OR fan-in (default 2).
	MaxFanIn int
}

// Generate builds a seeded random circuit: an input layer followed by
// random AND/OR/NOT gates wired to earlier gates, with the final gate as
// output. Generation is deterministic per seed.
func Generate(cfg GenConfig) *Circuit {
	if cfg.Inputs < 1 {
		cfg.Inputs = 1
	}
	if cfg.Gates < 1 {
		cfg.Gates = 1
	}
	if cfg.MaxFanIn < 2 {
		cfg.MaxFanIn = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Circuit{NumInputs: cfg.Inputs}
	for i := 0; i < cfg.Inputs; i++ {
		c.Gates = append(c.Gates, Gate{Kind: KindInput, Arg: int32(i)})
	}
	for i := 0; i < cfg.Gates; i++ {
		prev := len(c.Gates)
		pick := func() int32 { return int32(rng.Intn(prev)) }
		switch rng.Intn(3) {
		case 0:
			c.Gates = append(c.Gates, Gate{Kind: KindNot, In: []int32{pick()}})
		case 1:
			c.Gates = append(c.Gates, Gate{Kind: KindAnd, In: pickMany(rng, prev, cfg.MaxFanIn)})
		default:
			c.Gates = append(c.Gates, Gate{Kind: KindOr, In: pickMany(rng, prev, cfg.MaxFanIn)})
		}
	}
	c.Output = int32(len(c.Gates) - 1)
	return c
}

func pickMany(rng *rand.Rand, prev, maxFanIn int) []int32 {
	k := 2 + rng.Intn(maxFanIn-1)
	if k > prev {
		k = prev
	}
	in := make([]int32, k)
	for i := range in {
		in[i] = int32(rng.Intn(prev))
	}
	return in
}

// RandomInputs returns a seeded input assignment of length n.
func RandomInputs(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	in := make([]bool, n)
	for i := range in {
		in[i] = rng.Intn(2) == 1
	}
	return in
}
