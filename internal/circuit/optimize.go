package circuit

// Optimize shrinks a circuit without changing its function: constants are
// folded through gates, neutral operands are pruned, single-operand
// AND/OR gates collapse to wires, and gates unreachable from the output
// are dropped. The Cook–Levin tableaux of internal/tm are dominated by
// constant wires (blank tape cells, absent heads), so optimization
// routinely removes the bulk of their gates — an ablation the benchmarks
// exercise.

// foldState is the per-gate folding result: a known constant, an alias of
// another gate, or a real gate (neither flag set).
type foldState struct {
	isConst bool
	val     bool
	alias   int32 // ≥ 0 when this gate is exactly another gate's value
}

// Optimize returns a functionally identical circuit, typically much
// smaller. The input circuit is not modified.
func Optimize(c *Circuit) (*Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.Gates)
	states := make([]foldState, n)
	liveIns := make([][]int32, n) // pruned operand lists for surviving gates
	for i := range states {
		states[i].alias = -1
	}
	resolve := func(g int32) int32 {
		for states[g].alias >= 0 {
			g = states[g].alias
		}
		return g
	}
	for i, g := range c.Gates {
		switch g.Kind {
		case KindInput:
			// stays a real gate
		case KindConst:
			states[i] = foldState{isConst: true, val: g.Arg == 1, alias: -1}
		case KindNot:
			in := resolve(g.In[0])
			if states[in].isConst {
				states[i] = foldState{isConst: true, val: !states[in].val, alias: -1}
			} else {
				liveIns[i] = []int32{in}
			}
		case KindAnd, KindOr:
			neutral := g.Kind == KindAnd // AND's neutral operand is true, OR's is false
			decided := false
			var live []int32
			seen := map[int32]bool{}
			for _, raw := range g.In {
				in := resolve(raw)
				if states[in].isConst {
					if states[in].val != neutral {
						// Absorbing operand: false decides AND, true decides OR.
						states[i] = foldState{isConst: true, val: !neutral, alias: -1}
						decided = true
						break
					}
					continue // neutral operand: drop
				}
				if !seen[in] {
					seen[in] = true
					live = append(live, in)
				}
			}
			if decided {
				continue
			}
			switch len(live) {
			case 0:
				// All operands were neutral: AND() = true, OR() = false.
				states[i] = foldState{isConst: true, val: neutral, alias: -1}
			case 1:
				states[i] = foldState{alias: live[0]}
			default:
				liveIns[i] = live
			}
		}
	}
	// Emit the compacted circuit bottom-up in the original (topological)
	// order, keeping only gates reachable from the resolved output.
	outRep := resolve(c.Output)
	out := &Circuit{NumInputs: c.NumInputs}
	constFalse, constTrue := int32(-1), int32(-1)
	getConst := func(v bool) int32 {
		if v {
			if constTrue < 0 {
				out.Gates = append(out.Gates, Gate{Kind: KindConst, Arg: 1})
				constTrue = int32(len(out.Gates) - 1)
			}
			return constTrue
		}
		if constFalse < 0 {
			out.Gates = append(out.Gates, Gate{Kind: KindConst, Arg: 0})
			constFalse = int32(len(out.Gates) - 1)
		}
		return constFalse
	}
	if states[outRep].isConst {
		out.Output = getConst(states[outRep].val)
		return out, nil
	}
	// Reachability sweep (iterative; tableaux can be very deep).
	needed := make([]bool, n)
	stack := []int32{outRep}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if needed[g] {
			continue
		}
		needed[g] = true
		for _, in := range liveIns[g] {
			if !needed[in] {
				stack = append(stack, in)
			}
		}
	}
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	for i := 0; i < n; i++ {
		if !needed[i] {
			continue
		}
		g := c.Gates[i]
		ng := Gate{Kind: g.Kind, Arg: g.Arg}
		for _, in := range liveIns[i] {
			ng.In = append(ng.In, remap[in])
		}
		out.Gates = append(out.Gates, ng)
		remap[i] = int32(len(out.Gates) - 1)
	}
	out.Output = remap[outRep]
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
