package circuit

import (
	"encoding/binary"
	"fmt"
)

// Instance is a full CVP instance: circuit ᾱ, inputs x1..xn, designated
// output y (carried inside Circuit.Output).
type Instance struct {
	Circuit *Circuit
	Inputs  []bool
}

// Eval answers the instance.
func (in *Instance) Eval() (bool, error) { return in.Circuit.Eval(in.Inputs) }

// Encode serializes the circuit as the paper's "sequence of tuples".
func (c *Circuit) Encode() []byte {
	b := binary.AppendUvarint(nil, uint64(c.NumInputs))
	b = binary.AppendUvarint(b, uint64(len(c.Gates)))
	b = binary.AppendUvarint(b, uint64(c.Output))
	for _, g := range c.Gates {
		b = append(b, byte(g.Kind))
		b = binary.AppendUvarint(b, uint64(g.Arg))
		b = binary.AppendUvarint(b, uint64(len(g.In)))
		for _, in := range g.In {
			b = binary.AppendUvarint(b, uint64(in))
		}
	}
	return b
}

// Decode parses a byte string produced by Encode and validates the result.
func Decode(buf []byte) (*Circuit, error) {
	off := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, fmt.Errorf("circuit: corrupt varint at offset %d", off)
		}
		off += n
		return v, nil
	}
	numIn, err := next()
	if err != nil {
		return nil, err
	}
	nGates, err := next()
	if err != nil {
		return nil, err
	}
	output, err := next()
	if err != nil {
		return nil, err
	}
	// A gate encodes to at least three bytes (kind, arg, fan-in), so bound
	// the count by the remaining buffer before allocating — this decoder
	// sees attacker-controlled bytes on the serve path.
	if nGates > uint64(len(buf)-off)/3 {
		return nil, fmt.Errorf("circuit: gate count %d exceeds remaining %d bytes", nGates, len(buf)-off)
	}
	c := &Circuit{NumInputs: int(numIn), Output: int32(output), Gates: make([]Gate, 0, nGates)}
	for i := uint64(0); i < nGates; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("circuit: truncated at gate %d", i)
		}
		kind := Kind(buf[off])
		off++
		arg, err := next()
		if err != nil {
			return nil, err
		}
		fanIn, err := next()
		if err != nil {
			return nil, err
		}
		g := Gate{Kind: kind, Arg: int32(arg)}
		for j := uint64(0); j < fanIn; j++ {
			in, err := next()
			if err != nil {
				return nil, err
			}
			g.In = append(g.In, int32(in))
		}
		c.Gates = append(c.Gates, g)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("circuit: %d trailing bytes", len(buf)-off)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// EncodeInstance serializes a full instance (inputs then circuit).
func EncodeInstance(in *Instance) []byte {
	b := binary.AppendUvarint(nil, uint64(len(in.Inputs)))
	for _, v := range in.Inputs {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return append(b, in.Circuit.Encode()...)
}

// DecodeInstance parses a byte string produced by EncodeInstance.
func DecodeInstance(buf []byte) (*Instance, error) {
	n64, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("circuit: corrupt instance header")
	}
	off := k
	if uint64(len(buf)-off) < n64 {
		return nil, fmt.Errorf("circuit: truncated inputs")
	}
	inputs := make([]bool, n64)
	for i := range inputs {
		switch buf[off] {
		case 0:
		case 1:
			inputs[i] = true
		default:
			return nil, fmt.Errorf("circuit: input byte %d is %d", i, buf[off])
		}
		off++
	}
	c, err := Decode(buf[off:])
	if err != nil {
		return nil, err
	}
	if c.NumInputs != len(inputs) {
		return nil, fmt.Errorf("circuit: instance carries %d inputs, circuit wants %d", len(inputs), c.NumInputs)
	}
	return &Instance{Circuit: c, Inputs: inputs}, nil
}
