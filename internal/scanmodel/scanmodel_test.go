package scanmodel

import (
	"math"
	"strings"
	"testing"
)

func TestPaperNumbersReproduced(t *testing.T) {
	// §1: 1 PB at 6 GB/s = 166,666 seconds ≈ 46 hours ≈ 1.9 days.
	d := PaperSSD()
	sec := d.ScanSeconds(1 * PB)
	if math.Abs(sec-166666.0) > 1.0 {
		t.Fatalf("1PB scan = %.1f s, paper says 166,666 s", sec)
	}
	if h := sec / 3600; math.Abs(h-46.3) > 0.2 {
		t.Fatalf("1PB scan = %.1f h, paper says 46 h", h)
	}
	if days := sec / 86400; math.Abs(days-1.9) > 0.05 {
		t.Fatalf("1PB scan = %.2f days, paper says 1.9 days", days)
	}
}

func TestIndexedAccessIsSeconds(t *testing.T) {
	// The paper: "we can get the results in seconds with the indices
	// rather than 1.9 days". The modelled indexed lookup over 1 PB must be
	// far below one second of probe time.
	d := PaperSSD()
	sec := d.IndexedSeconds(1*PB, 100, 64)
	if sec >= 1.0 {
		t.Fatalf("indexed access over 1PB = %.3f s, want < 1 s", sec)
	}
	if sec <= 0 {
		t.Fatal("indexed access cost vanished")
	}
	// Tiny datasets cost one probe.
	if got := d.IndexedSeconds(50, 100, 64); got != d.ProbeSeconds {
		t.Fatalf("tiny dataset probe = %v", got)
	}
}

func TestIndexedGrowsLogarithmically(t *testing.T) {
	d := PaperSSD()
	t1 := d.IndexedSeconds(1*GB, 100, 64)
	t2 := d.IndexedSeconds(1*PB, 100, 64)
	// A million-fold data increase must cost only a constant factor more.
	if t2 > 3*t1 {
		t.Fatalf("indexed cost grew %0.1fx across 10^6x data", t2/t1)
	}
	scanRatio := d.ScanSeconds(1*PB) / d.ScanSeconds(1*GB)
	if math.Abs(scanRatio-1e6) > 1 {
		t.Fatalf("scan cost should grow linearly, ratio %.0f", scanRatio)
	}
}

func TestTableShape(t *testing.T) {
	rows := Table(PaperSSD(), 100, 64)
	if len(rows) != 4 {
		t.Fatalf("table has %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ScanSeconds <= rows[i-1].ScanSeconds {
			t.Fatal("scan column not increasing")
		}
		if rows[i].IndexedSeconds < rows[i-1].IndexedSeconds {
			t.Fatal("indexed column decreasing")
		}
	}
	last := rows[len(rows)-1]
	// 166,666 s renders as hours — the paper's own "46 hours".
	if last.Label != "1PB" || !strings.HasSuffix(last.ScanHuman, "h") {
		t.Fatalf("1PB row renders as %q", last.ScanHuman)
	}
}

func TestHumanDuration(t *testing.T) {
	cases := map[float64]string{
		0.5:    "500.0ms",
		30:     "30.0s",
		600:    "10.0min",
		7200:   "2.0h",
		200000: "2.3d",
	}
	for sec, want := range cases {
		if got := HumanDuration(sec); got != want {
			t.Errorf("HumanDuration(%v) = %q, want %q", sec, got, want)
		}
	}
}
