// Package scanmodel reproduces the paper's §1 motivating arithmetic: "for a
// dataset D of 1 PB on the fastest SSDs with a scanning speed of 6 GB/s, a
// linear scan of D takes 166,666 seconds; that is, 46 hours, or 1.9 days",
// versus O(log |D|) index probes after preprocessing.
//
// The model is deliberately the paper's own: pure bandwidth for scans, a
// per-probe latency for index access. It regenerates the quoted numbers
// exactly and extends them into the E1 experiment table.
package scanmodel

import (
	"fmt"
	"math"
)

// Byte-size units.
const (
	KB float64 = 1e3
	MB float64 = 1e6
	GB float64 = 1e9
	TB float64 = 1e12
	PB float64 = 1e15
)

// Device models a storage device.
type Device struct {
	Name string
	// ScanBytesPerSec is the sequential scan bandwidth.
	ScanBytesPerSec float64
	// ProbeSeconds is the latency of one random index probe (node fetch).
	ProbeSeconds float64
}

// PaperSSD is the device of the paper's §1 example: 6 GB/s scanning speed
// [38]; the probe latency of 0.1 ms is a representative SSD random read
// used only for the indexed column of the table (the paper quotes
// "seconds" without a constant).
func PaperSSD() Device {
	return Device{Name: "SSD (6GB/s)", ScanBytesPerSec: 6 * GB, ProbeSeconds: 1e-4}
}

// ScanSeconds is the time to scan size bytes linearly.
func (d Device) ScanSeconds(size float64) float64 {
	return size / d.ScanBytesPerSec
}

// IndexedSeconds is the time for one point lookup over size bytes of
// tupleSize-byte records via a B⁺-tree of the given fanout: ⌈log_f(n)⌉
// probes.
func (d Device) IndexedSeconds(size, tupleSize float64, fanout int) float64 {
	n := size / tupleSize
	if n < 2 {
		return d.ProbeSeconds
	}
	probes := math.Ceil(math.Log(n) / math.Log(float64(fanout)))
	return probes * d.ProbeSeconds
}

// Row is one line of the Example 1 table.
type Row struct {
	Label          string
	Bytes          float64
	ScanSeconds    float64
	ScanHuman      string
	IndexedSeconds float64
}

// Table regenerates the paper's arithmetic for a sweep of dataset sizes.
func Table(d Device, tupleSize float64, fanout int) []Row {
	sizes := []struct {
		label string
		bytes float64
	}{
		{"1GB", 1 * GB},
		{"1TB", 1 * TB},
		{"100TB", 100 * TB},
		{"1PB", 1 * PB},
	}
	rows := make([]Row, 0, len(sizes))
	for _, s := range sizes {
		scan := d.ScanSeconds(s.bytes)
		rows = append(rows, Row{
			Label:          s.label,
			Bytes:          s.bytes,
			ScanSeconds:    scan,
			ScanHuman:      HumanDuration(scan),
			IndexedSeconds: d.IndexedSeconds(s.bytes, tupleSize, fanout),
		})
	}
	return rows
}

// HumanDuration renders seconds the way the paper does ("166,666 seconds;
// that is, 46 hours, or 1.9 days").
func HumanDuration(sec float64) string {
	switch {
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	case sec < 120:
		return fmt.Sprintf("%.1fs", sec)
	case sec < 7200:
		return fmt.Sprintf("%.1fmin", sec/60)
	case sec < 2*86400:
		return fmt.Sprintf("%.1fh", sec/3600)
	default:
		return fmt.Sprintf("%.1fd", sec/86400)
	}
}
