package listsearch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexAgreesWithScan(t *testing.T) {
	f := func(list []int64, probes []int64) bool {
		idx := NewIndex(list)
		for _, e := range probes {
			if idx.Contains(e) != Scan(list, e) {
				return false
			}
		}
		for _, e := range list { // every member must be found
			if !idx.Contains(e) {
				return false
			}
		}
		return idx.Len() == len(list)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewIndexDoesNotMutateInput(t *testing.T) {
	list := []int64{3, 1, 2}
	NewIndex(list)
	if list[0] != 3 || list[1] != 1 || list[2] != 2 {
		t.Fatalf("input mutated: %v", list)
	}
}

func TestProbesLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		list := make([]int64, n)
		for i := range list {
			list[i] = rng.Int63()
		}
		idx := NewIndex(list)
		maxProbes := 0
		for q := 0; q < 200; q++ {
			_, p := idx.ContainsProbes(rng.Int63())
			if p > maxProbes {
				maxProbes = p
			}
		}
		bound := 1
		for v := n; v > 0; v >>= 1 {
			bound++
		}
		if maxProbes > bound {
			t.Errorf("n=%d: %d probes exceeds log bound %d", n, maxProbes, bound)
		}
	}
}

func TestEmptyList(t *testing.T) {
	idx := NewIndex(nil)
	if idx.Contains(0) || Scan(nil, 0) {
		t.Fatal("empty list claims membership")
	}
	ok, probes := idx.ContainsProbes(1)
	if ok || probes != 0 {
		t.Fatalf("empty list: ok=%v probes=%d", ok, probes)
	}
}

func TestFromSortedAndSorted(t *testing.T) {
	idx := NewIndex([]int64{5, 1, 3})
	s := idx.Sorted()
	if len(s) != 3 || s[0] != 1 || s[2] != 5 {
		t.Fatalf("Sorted = %v", s)
	}
	re := FromSorted(s)
	for _, e := range []int64{1, 3, 5} {
		if !re.Contains(e) {
			t.Errorf("FromSorted missing %d", e)
		}
	}
	if re.Contains(2) {
		t.Error("FromSorted phantom member")
	}
}

func TestDuplicatesHandled(t *testing.T) {
	idx := NewIndex([]int64{7, 7, 7, 7})
	if !idx.Contains(7) || idx.Contains(6) {
		t.Fatal("duplicate handling broken")
	}
}
