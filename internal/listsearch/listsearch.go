// Package listsearch implements the paper's §4(2) case study, problem L1:
//
//	Input:    an unordered list M and an element e.
//	Question: does e appear in M?
//
// The factorization Υ1 treats M as data and e as query. Preprocessing sorts
// M in O(|M| log |M|); afterwards every membership query is answered by
// binary search in O(log |M|). The naive baseline scans M per query.
package listsearch

import "sort"

// Scan answers membership with a linear scan — the no-preprocessing
// baseline: O(|M|) per query.
func Scan(list []int64, e int64) bool {
	for _, v := range list {
		if v == e {
			return true
		}
	}
	return false
}

// Index is the sorted copy of M produced by the Υ1 preprocessing function.
type Index struct {
	sorted []int64
}

// NewIndex sorts a copy of the list (PTIME preprocessing; the input is not
// mutated).
func NewIndex(list []int64) *Index {
	s := append([]int64(nil), list...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &Index{sorted: s}
}

// Len reports the list length.
func (x *Index) Len() int { return len(x.sorted) }

// Contains answers membership by binary search in O(log |M|).
func (x *Index) Contains(e int64) bool {
	ok, _ := x.ContainsProbes(e)
	return ok
}

// ContainsProbes also reports the number of probes used, the measurable
// stand-in for the O(log |M|) bound.
func (x *Index) ContainsProbes(e int64) (bool, int) {
	lo, hi, probes := 0, len(x.sorted), 0
	for lo < hi {
		probes++
		mid := int(uint(lo+hi) >> 1)
		switch {
		case x.sorted[mid] == e:
			return true, probes
		case x.sorted[mid] < e:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, probes
}

// Sorted exposes the preprocessed list (aliasing; do not mutate). The core
// framework serializes it across the factorization boundary.
func (x *Index) Sorted() []int64 { return x.sorted }

// FromSorted wraps an already-sorted slice as an index without copying;
// callers must guarantee ascending order.
func FromSorted(sorted []int64) *Index { return &Index{sorted: sorted} }
