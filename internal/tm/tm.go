// Package tm implements single-tape deterministic Turing machines with
// explicit polynomial clocks, plus the Cook–Levin/Ladner compilation of a
// clocked machine into a Boolean circuit.
//
// This is the machinery behind the paper's Corollary 6 ("all problems in P
// can be made Π-tractable"): an arbitrary member of P is represented by a
// DTM with a polynomial step bound; the tableau construction compiles its
// T-step computation into a circuit whose value equals acceptance; and the
// circuit package's reduction carries the instance onward to BDS, the
// ΠTP-complete problem. Every link of that chain is executable and tested.
//
// Tape convention: the tape is one-way infinite to the right; a left move
// in cell 0 leaves the head in cell 0. The simulator and the compiled
// circuit implement the identical convention, which the equivalence tests
// pin down.
package tm

import "fmt"

// Move is a head movement.
type Move int8

const (
	// Left moves the head one cell left (staying put in cell 0).
	Left Move = iota
	// Right moves the head one cell right.
	Right
	// Stay keeps the head in place.
	Stay
)

// Symbol indices for the fixed tape alphabet. Machines may use a subset.
const (
	// Blank is the blank tape symbol.
	Blank = 0
	// Zero is the input bit 0.
	Zero = 1
	// One is the input bit 1.
	One = 2
	// Mark is a scratch symbol for marking cells.
	Mark = 3
	// NumSymbols is the tape alphabet size.
	NumSymbols = 4
)

// Rule is the effect of one transition: write a symbol, move, enter a state.
type Rule struct {
	Write int8
	Move  Move
	Next  int8
}

// Machine is a deterministic single-tape Turing machine over the fixed
// four-symbol alphabet, with binary inputs written in cells 0..n-1.
type Machine struct {
	Name   string
	States int
	Start  int8
	Accept int8
	Reject int8
	// delta[state][symbol]; accept/reject rows must self-loop (absorb) so
	// the tableau can run a fixed number of steps.
	delta [][NumSymbols]Rule
}

// NewMachine allocates a machine shell with states all-absorbing into
// reject; Add installs real transitions.
func NewMachine(name string, states int, start, accept, reject int8) (*Machine, error) {
	if states < 2 || int(start) >= states || int(accept) >= states || int(reject) >= states {
		return nil, fmt.Errorf("tm: bad state configuration (states=%d start=%d accept=%d reject=%d)",
			states, start, accept, reject)
	}
	if accept == reject {
		return nil, fmt.Errorf("tm: accept and reject must differ")
	}
	m := &Machine{Name: name, States: states, Start: start, Accept: accept, Reject: reject,
		delta: make([][NumSymbols]Rule, states)}
	for q := 0; q < states; q++ {
		for s := 0; s < NumSymbols; s++ {
			// Default: halt rejecting; accept/reject absorb.
			next := reject
			if int8(q) == accept {
				next = accept
			}
			m.delta[q][s] = Rule{Write: int8(s), Move: Stay, Next: next}
		}
	}
	return m, nil
}

// Add installs the transition δ(state, symbol) = rule.
func (m *Machine) Add(state int8, symbol int8, rule Rule) error {
	if int(state) >= m.States || state == m.Accept || state == m.Reject {
		return fmt.Errorf("tm: cannot add transition from state %d", state)
	}
	if symbol < 0 || symbol >= NumSymbols {
		return fmt.Errorf("tm: symbol %d out of range", symbol)
	}
	if int(rule.Next) >= m.States || rule.Write < 0 || rule.Write >= NumSymbols {
		return fmt.Errorf("tm: bad rule %+v", rule)
	}
	m.delta[state][symbol] = rule
	return nil
}

// MustAdd is Add that panics, for the static sample machines.
func (m *Machine) MustAdd(state int8, symbol int8, rule Rule) {
	if err := m.Add(state, symbol, rule); err != nil {
		panic(err)
	}
}

// Rule returns δ(state, symbol).
func (m *Machine) Rule(state, symbol int8) Rule { return m.delta[state][symbol] }

// Result reports a simulation outcome.
type Result struct {
	Accepted bool
	Halted   bool // reached accept or reject within the step budget
	Steps    int  // steps executed until halting (or the budget)
}

// Run simulates the machine on a binary input for at most maxSteps steps.
func (m *Machine) Run(input []bool, maxSteps int) Result {
	tape := make([]int8, len(input)+maxSteps+2)
	for i, b := range input {
		if b {
			tape[i] = One
		} else {
			tape[i] = Zero
		}
	}
	state := m.Start
	head := 0
	for step := 0; step < maxSteps; step++ {
		if state == m.Accept || state == m.Reject {
			return Result{Accepted: state == m.Accept, Halted: true, Steps: step}
		}
		r := m.delta[state][tape[head]]
		tape[head] = r.Write
		switch r.Move {
		case Left:
			if head > 0 {
				head--
			}
		case Right:
			head++
		}
		state = r.Next
	}
	return Result{Accepted: state == m.Accept, Halted: state == m.Accept || state == m.Reject, Steps: maxSteps}
}
