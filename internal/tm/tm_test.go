package tm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pitract/internal/circuit"
)

// allInputs enumerates every binary input of length n.
func allInputs(n int) [][]bool {
	out := make([][]bool, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = mask&(1<<i) != 0
		}
		out = append(out, in)
	}
	return out
}

func refFor(name string) func([]bool) bool {
	switch name {
	case "parity":
		return ParityRef
	case "contains-11":
		return ContainsOneOneRef
	case "div3":
		return DivisibleByThreeRef
	case "palindrome":
		return PalindromeRef
	case "0n1n":
		return ZeroNOneNRef
	default:
		return nil
	}
}

func TestMachinesMatchReferencesExhaustively(t *testing.T) {
	for _, cm := range SampleMachines() {
		ref := refFor(cm.M.Name)
		if ref == nil {
			t.Fatalf("no reference for %s", cm.M.Name)
		}
		for n := 0; n <= 9; n++ {
			bound := cm.Bound(n)
			for _, in := range allInputs(n) {
				res := cm.M.Run(in, bound)
				if !res.Halted {
					t.Fatalf("%s: did not halt on %v within its own bound %d", cm.M.Name, in, bound)
				}
				if res.Accepted != ref(in) {
					t.Fatalf("%s: input %v accepted=%v, reference=%v", cm.M.Name, in, res.Accepted, ref(in))
				}
			}
		}
	}
}

func TestRunRespectsStepBudget(t *testing.T) {
	cm := Palindrome()
	in := make([]bool, 12)
	res := cm.M.Run(in, 3) // far too few steps
	if res.Halted {
		t.Fatal("palindrome halted in 3 steps on a 12-bit input")
	}
	if res.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", res.Steps)
	}
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine("x", 1, 0, 0, 0); err == nil {
		t.Error("degenerate machine accepted")
	}
	if _, err := NewMachine("x", 3, 0, 2, 2); err == nil {
		t.Error("accept == reject accepted")
	}
	if _, err := NewMachine("x", 3, 5, 1, 2); err == nil {
		t.Error("start out of range accepted")
	}
}

func TestAddValidation(t *testing.T) {
	m, err := NewMachine("x", 4, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(2, Zero, Rule{}); err == nil {
		t.Error("transition from accept state accepted")
	}
	if err := m.Add(0, 9, Rule{}); err == nil {
		t.Error("bad symbol accepted")
	}
	if err := m.Add(0, Zero, Rule{Next: 9}); err == nil {
		t.Error("bad next state accepted")
	}
	if err := m.Add(0, Zero, Rule{Write: 9}); err == nil {
		t.Error("bad write symbol accepted")
	}
}

func TestLeftMoveAtCellZeroStays(t *testing.T) {
	// A machine that moves left forever from cell 0 must stay put; verify
	// by watching it read the same first symbol repeatedly.
	m, err := NewMachine("left", 4, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// On One in state 0: write Zero, move left, stay in state 0.
	// On Zero: accept. So from input [1,...]: step 1 writes 0 and "moves
	// left" (stays); step 2 reads the 0 it wrote → accept.
	m.MustAdd(0, One, Rule{Write: Zero, Move: Left, Next: 0})
	m.MustAdd(0, Zero, Rule{Write: Zero, Move: Stay, Next: 2})
	res := m.Run([]bool{true, true}, 5)
	if !res.Halted || !res.Accepted || res.Steps != 2 {
		t.Fatalf("boundary semantics broken: %+v", res)
	}
}

func TestCompiledCircuitsMatchSimulator(t *testing.T) {
	for _, cm := range SampleMachines() {
		maxN := 7
		if cm.M.Name == "palindrome" || cm.M.Name == "0n1n" {
			maxN = 5 // quadratic tableau; keep the circuit small
		}
		for n := 0; n <= maxN; n++ {
			circ, err := cm.Compile(n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", cm.M.Name, n, err)
			}
			bound := cm.Bound(n)
			for _, in := range allInputs(n) {
				want := cm.M.Run(in, bound).Accepted
				got, err := circ.Eval(in)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s n=%d input %v: circuit %v, simulator %v", cm.M.Name, n, in, got, want)
				}
			}
		}
	}
}

func TestCompiledCircuitsMatchReferenceQuick(t *testing.T) {
	// Larger inputs, randomized: the compiled parity circuit must track
	// the plain-Go reference.
	cm := Parity()
	circ, err := cm.Compile(16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make([]bool, 16)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		got, err := circ.Eval(in)
		return err == nil && got == ParityRef(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileRejectsNegativeLength(t *testing.T) {
	if _, err := Parity().Compile(-1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestCompiledDepthIsPolynomialNotPolylog(t *testing.T) {
	// The tableau has depth Θ(T): the concrete reason CVP resists NC
	// evaluation (§7). Check depth grows linearly with the clock.
	cm := Parity()
	c4, _ := cm.Compile(4)
	c16, _ := cm.Compile(16)
	if c16.Depth() <= c4.Depth() {
		t.Fatalf("depth did not grow with input: %d vs %d", c4.Depth(), c16.Depth())
	}
	if c16.Depth() < cm.Bound(16) {
		t.Fatalf("depth %d below clock %d; tableau layers missing", c16.Depth(), cm.Bound(16))
	}
}

func TestOptimizedTableauEquivalentAndSmaller(t *testing.T) {
	// The tableaux are dominated by constant wires; circuit.Optimize must
	// shrink them massively without changing acceptance.
	cm := Parity()
	c, err := cm.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := circuit.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size()*2 > c.Size() {
		t.Fatalf("tableau only shrank %d → %d; expected >2x", c.Size(), opt.Size())
	}
	for _, in := range allInputs(6) {
		want, _ := c.Eval(in)
		got, _ := opt.Eval(in)
		if got != want {
			t.Fatalf("optimized tableau disagrees on %v", in)
		}
	}
	t.Logf("parity tableau: %d → %d gates (%.1fx)", c.Size(), opt.Size(),
		float64(c.Size())/float64(opt.Size()))
}

func TestRuleAccessor(t *testing.T) {
	cm := Parity()
	r := cm.M.Rule(0, One)
	if r.Next != 1 || r.Move != Right {
		t.Fatalf("Rule(0, One) = %+v", r)
	}
}
