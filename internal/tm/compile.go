package tm

// Cook–Levin/Ladner tableau compilation: a machine clocked to T steps on
// inputs of length n becomes a Boolean circuit of size O(T² · |Γ| · |Q|)
// whose value on an input equals the machine's acceptance. This is the
// classical witness that CVP is P-complete, and the first link of the
// paper's Corollary 6 chain (P → CVP → BDS).
//
// Encoding: one wire per (time t, cell i, symbol s, head h) with h = 0 for
// "no head here" and h = q+1 for "head here in state q". Exactly one wire
// per (t, i) is true in any reachable configuration. The update formulas:
//
//	W(i,s')  = C[t][i][s'][none] ∨ ⋁_{δ(q,s).Write=s'} C[t][i][s][q]
//	A(i,q')  = arrivals from the left, right, the same cell (Stay), and
//	           the cell-0 left-move boundary convention
//	C[t+1][i][s'][q'] = W(i,s') ∧ A(i,q')
//	C[t+1][i][s'][none] = W(i,s') ∧ ¬⋁_{q'} A(i,q')
//
// The boundary convention (a left move in cell 0 stays) matches Machine.Run
// exactly; the equivalence tests exercise it.

import (
	"fmt"

	"pitract/internal/circuit"
)

// builder incrementally assembles a circuit.
type builder struct {
	c *circuit.Circuit
	// cached constant gates
	cFalse, cTrue int32
}

func newBuilder(numInputs int) *builder {
	b := &builder{c: &circuit.Circuit{NumInputs: numInputs}}
	for i := 0; i < numInputs; i++ {
		b.add(circuit.Gate{Kind: circuit.KindInput, Arg: int32(i)})
	}
	b.cFalse = b.add(circuit.Gate{Kind: circuit.KindConst, Arg: 0})
	b.cTrue = b.add(circuit.Gate{Kind: circuit.KindConst, Arg: 1})
	return b
}

func (b *builder) add(g circuit.Gate) int32 {
	b.c.Gates = append(b.c.Gates, g)
	return int32(len(b.c.Gates) - 1)
}

func (b *builder) input(i int) int32 { return int32(i) }

func (b *builder) or(in []int32) int32 {
	switch len(in) {
	case 0:
		return b.cFalse
	case 1:
		return in[0]
	default:
		return b.add(circuit.Gate{Kind: circuit.KindOr, In: in})
	}
}

func (b *builder) and2(x, y int32) int32 {
	return b.add(circuit.Gate{Kind: circuit.KindAnd, In: []int32{x, y}})
}

func (b *builder) not(x int32) int32 {
	return b.add(circuit.Gate{Kind: circuit.KindNot, In: []int32{x}})
}

// Compile builds the tableau circuit for inputs of exactly length n with
// step budget T = c.Bound(n). The resulting circuit has n input gates and
// evaluates to true exactly on accepted inputs.
func (c Clocked) Compile(n int) (*circuit.Circuit, error) {
	if n < 0 {
		return nil, fmt.Errorf("tm: negative input length")
	}
	m := c.M
	T := c.Bound(n)
	cells := T + 1
	if n+1 > cells {
		cells = n + 1
	}
	q := m.States
	hstates := q + 1 // 0 = none, i+1 = state i
	b := newBuilder(n)

	// wire[i][s*hstates+h] for the current time step.
	type cellWires []int32 // indexed s*hstates+h
	mk := func() []cellWires {
		w := make([]cellWires, cells)
		for i := range w {
			w[i] = make(cellWires, NumSymbols*hstates)
			for j := range w[i] {
				w[i][j] = b.cFalse
			}
		}
		return w
	}
	cur := mk()

	// t = 0: input bits in cells 0..n-1, blanks beyond, head in cell 0.
	headH := int(m.Start) + 1
	for i := 0; i < cells; i++ {
		h := 0
		if i == 0 {
			h = headH
		}
		switch {
		case i < n:
			x := b.input(i)
			cur[i][One*hstates+h] = x
			cur[i][Zero*hstates+h] = b.not(x)
		default:
			cur[i][Blank*hstates+h] = b.cTrue
		}
	}

	for t := 0; t < T; t++ {
		next := mk()
		for i := 0; i < cells; i++ {
			// W(i, s'): the symbol in cell i at t+1.
			w := make([]int32, NumSymbols)
			for sp := 0; sp < NumSymbols; sp++ {
				terms := []int32{cur[i][sp*hstates+0]}
				for st := 0; st < q; st++ {
					for s := 0; s < NumSymbols; s++ {
						if int(m.delta[st][s].Write) == sp {
							terms = append(terms, cur[i][s*hstates+st+1])
						}
					}
				}
				w[sp] = b.or(terms)
			}
			// A(i, q'): the head arrives in state q'.
			arr := make([]int32, q)
			for qp := 0; qp < q; qp++ {
				var terms []int32
				for st := 0; st < q; st++ {
					for s := 0; s < NumSymbols; s++ {
						r := m.delta[st][s]
						if int(r.Next) != qp {
							continue
						}
						switch r.Move {
						case Right:
							if i > 0 {
								terms = append(terms, cur[i-1][s*hstates+st+1])
							}
						case Left:
							if i+1 < cells {
								terms = append(terms, cur[i+1][s*hstates+st+1])
							}
							if i == 0 { // left move in cell 0 stays
								terms = append(terms, cur[0][s*hstates+st+1])
							}
						case Stay:
							terms = append(terms, cur[i][s*hstates+st+1])
						}
					}
				}
				arr[qp] = b.or(terms)
			}
			anyArr := b.or(append([]int32(nil), arr...))
			noArr := b.not(anyArr)
			for sp := 0; sp < NumSymbols; sp++ {
				next[i][sp*hstates+0] = b.and2(w[sp], noArr)
				for qp := 0; qp < q; qp++ {
					next[i][sp*hstates+qp+1] = b.and2(w[sp], arr[qp])
				}
			}
		}
		cur = next
	}

	// Accept iff the head is anywhere in the accept state at time T.
	var acceptTerms []int32
	accH := int(m.Accept) + 1
	for i := 0; i < cells; i++ {
		for s := 0; s < NumSymbols; s++ {
			acceptTerms = append(acceptTerms, cur[i][s*hstates+accH])
		}
	}
	b.c.Output = b.or(acceptTerms)
	if err := b.c.Validate(); err != nil {
		return nil, fmt.Errorf("tm: compiled circuit invalid: %w", err)
	}
	return b.c, nil
}
