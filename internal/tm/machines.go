package tm

// Sample machines used by the Corollary 6 experiments. Each constructor
// returns the machine together with a step-bound function T(n) guaranteed
// to let the machine halt on every input of length n (the explicit
// polynomial clock the tableau construction needs).

// Clocked couples a machine with its polynomial step bound.
type Clocked struct {
	M     *Machine
	Bound func(n int) int
}

// Parity returns a machine accepting inputs with an even number of 1 bits.
// One left-to-right pass: T(n) = n + 2.
func Parity() Clocked {
	// States: 0 = even-so-far, 1 = odd-so-far, 2 = accept, 3 = reject.
	m, err := NewMachine("parity", 4, 0, 2, 3)
	if err != nil {
		panic(err)
	}
	m.MustAdd(0, Zero, Rule{Write: Zero, Move: Right, Next: 0})
	m.MustAdd(0, One, Rule{Write: One, Move: Right, Next: 1})
	m.MustAdd(0, Blank, Rule{Write: Blank, Move: Stay, Next: 2}) // even → accept
	m.MustAdd(1, Zero, Rule{Write: Zero, Move: Right, Next: 1})
	m.MustAdd(1, One, Rule{Write: One, Move: Right, Next: 0})
	m.MustAdd(1, Blank, Rule{Write: Blank, Move: Stay, Next: 3}) // odd → reject
	return Clocked{M: m, Bound: func(n int) int { return n + 2 }}
}

// ContainsOneOne returns a machine accepting inputs containing "11".
// One pass: T(n) = n + 2.
func ContainsOneOne() Clocked {
	// States: 0 = no progress, 1 = saw a 1, 2 = accept, 3 = reject.
	m, err := NewMachine("contains-11", 4, 0, 2, 3)
	if err != nil {
		panic(err)
	}
	m.MustAdd(0, Zero, Rule{Write: Zero, Move: Right, Next: 0})
	m.MustAdd(0, One, Rule{Write: One, Move: Right, Next: 1})
	m.MustAdd(0, Blank, Rule{Write: Blank, Move: Stay, Next: 3})
	m.MustAdd(1, Zero, Rule{Write: Zero, Move: Right, Next: 0})
	m.MustAdd(1, One, Rule{Write: One, Move: Stay, Next: 2}) // "11" found
	m.MustAdd(1, Blank, Rule{Write: Blank, Move: Stay, Next: 3})
	return Clocked{M: m, Bound: func(n int) int { return n + 2 }}
}

// DivisibleByThree returns a machine accepting binary numbers (MSB first)
// divisible by three; the empty input encodes zero and is accepted.
// One pass tracking the value mod 3: T(n) = n + 2.
func DivisibleByThree() Clocked {
	// States 0,1,2 = value mod 3; 3 = accept, 4 = reject.
	m, err := NewMachine("div3", 5, 0, 3, 4)
	if err != nil {
		panic(err)
	}
	for rem := int8(0); rem < 3; rem++ {
		shift0 := (2 * rem) % 3 // appending bit 0: v' = 2v
		shift1 := (2*rem + 1) % 3
		m.MustAdd(rem, Zero, Rule{Write: Zero, Move: Right, Next: shift0})
		m.MustAdd(rem, One, Rule{Write: One, Move: Right, Next: shift1})
		halt := int8(4)
		if rem == 0 {
			halt = 3
		}
		m.MustAdd(rem, Blank, Rule{Write: Blank, Move: Stay, Next: halt})
	}
	return Clocked{M: m, Bound: func(n int) int { return n + 2 }}
}

// Palindrome returns a machine accepting binary palindromes by the classic
// zig-zag: mark the leftmost unmarked bit, run right, compare and mark the
// rightmost unmarked bit, run back. T(n) = (n+2)·(n+3): each round marks
// two cells and walks at most 2(n+2) steps.
func Palindrome() Clocked {
	// States:
	//  0 check   — at leftmost unmarked cell; classify it
	//  1 right0  — running right, remembering 0
	//  2 right1  — running right, remembering 1
	//  3 cmp0    — at rightmost unmarked cell, expecting 0
	//  4 cmp1    — at rightmost unmarked cell, expecting 1
	//  5 back    — running left to the marked prefix
	//  6 accept, 7 reject
	m, err := NewMachine("palindrome", 8, 0, 6, 7)
	if err != nil {
		panic(err)
	}
	// check
	m.MustAdd(0, Blank, Rule{Write: Blank, Move: Stay, Next: 6}) // empty → accept
	m.MustAdd(0, Mark, Rule{Write: Mark, Move: Stay, Next: 6})   // all matched
	m.MustAdd(0, Zero, Rule{Write: Mark, Move: Right, Next: 1})
	m.MustAdd(0, One, Rule{Write: Mark, Move: Right, Next: 2})
	// right0 / right1: run to the right boundary (Mark or Blank).
	for st, cmp := range map[int8]int8{1: 3, 2: 4} {
		m.MustAdd(st, Zero, Rule{Write: Zero, Move: Right, Next: st})
		m.MustAdd(st, One, Rule{Write: One, Move: Right, Next: st})
		m.MustAdd(st, Blank, Rule{Write: Blank, Move: Left, Next: cmp})
		m.MustAdd(st, Mark, Rule{Write: Mark, Move: Left, Next: cmp})
	}
	// cmp0: the cell under the head is the rightmost unmarked cell, or the
	// Mark we just wrote (odd-length centre), which accepts.
	m.MustAdd(3, Zero, Rule{Write: Mark, Move: Left, Next: 5})
	m.MustAdd(3, One, Rule{Write: One, Move: Stay, Next: 7})
	m.MustAdd(3, Mark, Rule{Write: Mark, Move: Stay, Next: 6})
	// cmp1
	m.MustAdd(4, One, Rule{Write: Mark, Move: Left, Next: 5})
	m.MustAdd(4, Zero, Rule{Write: Zero, Move: Stay, Next: 7})
	m.MustAdd(4, Mark, Rule{Write: Mark, Move: Stay, Next: 6})
	// back: run left to the marked prefix, then step right onto the
	// leftmost unmarked cell.
	m.MustAdd(5, Zero, Rule{Write: Zero, Move: Left, Next: 5})
	m.MustAdd(5, One, Rule{Write: One, Move: Left, Next: 5})
	m.MustAdd(5, Mark, Rule{Write: Mark, Move: Right, Next: 0})
	return Clocked{M: m, Bound: func(n int) int { return (n + 2) * (n + 3) }}
}

// ZeroNOneN returns a machine accepting 0^a 1^a (equal runs of zeros then
// ones) — a context-free, non-regular language decided by the same zig-zag
// marking as the palindrome machine: mark the leftmost unmarked symbol
// (must be 0), check and mark the rightmost (must be 1), repeat.
// T(n) = (n+2)·(n+3).
func ZeroNOneN() Clocked {
	// States: 0 check, 1 run-right, 2 compare, 3 run-back, 4 accept, 5 reject.
	m, err := NewMachine("0n1n", 6, 0, 4, 5)
	if err != nil {
		panic(err)
	}
	// check: at the leftmost unmarked cell.
	m.MustAdd(0, Blank, Rule{Write: Blank, Move: Stay, Next: 4}) // empty rest → accept
	m.MustAdd(0, Mark, Rule{Write: Mark, Move: Stay, Next: 4})   // all matched
	m.MustAdd(0, Zero, Rule{Write: Mark, Move: Right, Next: 1})
	m.MustAdd(0, One, Rule{Write: One, Move: Stay, Next: 5}) // leading 1 → reject
	// run-right to the boundary (Mark or Blank), then step left.
	m.MustAdd(1, Zero, Rule{Write: Zero, Move: Right, Next: 1})
	m.MustAdd(1, One, Rule{Write: One, Move: Right, Next: 1})
	m.MustAdd(1, Blank, Rule{Write: Blank, Move: Left, Next: 2})
	m.MustAdd(1, Mark, Rule{Write: Mark, Move: Left, Next: 2})
	// compare: the rightmost unmarked cell must be a 1; a Mark here means
	// the 0 we just marked has no partner.
	m.MustAdd(2, One, Rule{Write: Mark, Move: Left, Next: 3})
	m.MustAdd(2, Zero, Rule{Write: Zero, Move: Stay, Next: 5})
	m.MustAdd(2, Mark, Rule{Write: Mark, Move: Stay, Next: 5})
	// run-back to the marked prefix, then step right onto the leftmost
	// unmarked cell.
	m.MustAdd(3, Zero, Rule{Write: Zero, Move: Left, Next: 3})
	m.MustAdd(3, One, Rule{Write: One, Move: Left, Next: 3})
	m.MustAdd(3, Mark, Rule{Write: Mark, Move: Right, Next: 0})
	return Clocked{M: m, Bound: func(n int) int { return (n + 2) * (n + 3) }}
}

// ZeroNOneNRef reports whether the input is 0^a 1^a.
func ZeroNOneNRef(in []bool) bool {
	n := len(in)
	if n%2 != 0 {
		return false
	}
	for i := 0; i < n/2; i++ {
		if in[i] {
			return false
		}
	}
	for i := n / 2; i < n; i++ {
		if !in[i] {
			return false
		}
	}
	return true
}

// SampleMachines returns all sample machines with their clocks.
func SampleMachines() []Clocked {
	return []Clocked{Parity(), ContainsOneOne(), DivisibleByThree(), Palindrome(), ZeroNOneN()}
}

// Reference predicates for testing the machines against plain Go logic.

// ParityRef reports whether the input has an even number of 1 bits.
func ParityRef(in []bool) bool {
	ones := 0
	for _, b := range in {
		if b {
			ones++
		}
	}
	return ones%2 == 0
}

// ContainsOneOneRef reports whether the input contains two adjacent 1 bits.
func ContainsOneOneRef(in []bool) bool {
	for i := 0; i+1 < len(in); i++ {
		if in[i] && in[i+1] {
			return true
		}
	}
	return false
}

// DivisibleByThreeRef reports whether the input, read MSB-first, encodes a
// multiple of three (empty input encodes zero).
func DivisibleByThreeRef(in []bool) bool {
	v := 0
	for _, b := range in {
		v = (v * 2) % 3
		if b {
			v = (v + 1) % 3
		}
	}
	return v == 0
}

// PalindromeRef reports whether the input is a palindrome.
func PalindromeRef(in []bool) bool {
	for i, j := 0, len(in)-1; i < j; i, j = i+1, j-1 {
		if in[i] != in[j] {
			return false
		}
	}
	return true
}
