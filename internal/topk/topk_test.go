package topk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// scoresOf projects results to their scores.
func scoresOf(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	return out
}

func sameScores(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestTAMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		m := 1 + rng.Intn(4)
		d := GenZipf(n, m, int64(trial))
		idx, err := NewIndex(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 10, n} {
			got, _, err := idx.TopK(k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Scan(d, k)
			if err != nil {
				t.Fatal(err)
			}
			if !sameScores(scoresOf(got), scoresOf(want)) {
				t.Fatalf("trial %d n=%d m=%d k=%d: TA scores %v, scan scores %v",
					trial, n, m, k, scoresOf(got), scoresOf(want))
			}
			// Every reported score must be the true aggregate of its object.
			for _, r := range got {
				total := 0.0
				for a := 0; a < m; a++ {
					total += d.Scores[a][r.Object]
				}
				if math.Abs(total-r.Score) > 1e-9 {
					t.Fatalf("object %d reported %f, true %f", r.Object, r.Score, total)
				}
			}
		}
	}
}

func TestTAUniformRandomQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, k8 uint8) bool {
		n := 1 + int(n16)%300
		k := 1 + int(k8)%20
		rng := rand.New(rand.NewSource(seed))
		d := &Dataset{Scores: make([][]float64, 2)}
		for a := range d.Scores {
			col := make([]float64, n)
			for o := range col {
				col[o] = float64(rng.Intn(50)) // many ties
			}
			d.Scores[a] = col
		}
		idx, err := NewIndex(d)
		if err != nil {
			return false
		}
		got, _, err := idx.TopK(k)
		if err != nil {
			return false
		}
		want, err := Scan(d, k)
		if err != nil {
			return false
		}
		return sameScores(scoresOf(got), scoresOf(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyTerminationOnSkewedData(t *testing.T) {
	n := 100_000
	d := GenZipf(n, 3, 7)
	idx, err := NewIndex(d)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := idx.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	// TA must stop far before exhausting the lists: on Zipf scores the
	// threshold collapses within a few hundred positions.
	if st.Sequential >= n {
		t.Fatalf("TA read %d sequential entries on n=%d: no early termination", st.Sequential, n)
	}
	if st.Sequential > n/10 {
		t.Errorf("TA read %d entries; expected ≪ n/10 on skewed data", st.Sequential)
	}
	if st.Random == 0 {
		t.Error("TA performed no random accesses")
	}
}

func TestTopKOrderingAndBounds(t *testing.T) {
	d := GenZipf(50, 2, 1)
	idx, err := NewIndex(d)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := idx.TopK(50 + 10) // k > n clamps
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 50 {
		t.Fatalf("len = %d, want 50", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not descending")
		}
		if res[i].Score == res[i-1].Score && res[i].Object < res[i-1].Object {
			t.Fatal("tie-break not by object id")
		}
	}
	if _, _, err := idx.TopK(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Scan(d, -1); err == nil {
		t.Fatal("negative k accepted by Scan")
	}
}

func TestValidate(t *testing.T) {
	if (&Dataset{}).Validate() == nil {
		t.Error("empty dataset accepted")
	}
	ragged := &Dataset{Scores: [][]float64{{1, 2}, {1}}}
	if ragged.Validate() == nil {
		t.Error("ragged dataset accepted")
	}
	neg := &Dataset{Scores: [][]float64{{1, -2}}}
	if neg.Validate() == nil {
		t.Error("negative score accepted")
	}
	if _, err := NewIndex(ragged); err == nil {
		t.Error("NewIndex accepted ragged dataset")
	}
	ok := &Dataset{Scores: [][]float64{{1, 2, 3}}}
	if ok.Validate() != nil || ok.N() != 3 || ok.M() != 1 {
		t.Error("valid dataset rejected")
	}
}
