// Package topk implements top-k query answering with early termination,
// the preprocessing strategy the paper's §8(5) singles out as a candidate
// for Π-tractability ("under certain conditions, top-k query answering
// with early termination [14] may be made Π-tractable, which finds top-k
// answers without computing the entire Q(D)").
//
// The instance follows Fagin, Lotem & Naor's Threshold Algorithm (TA):
// objects carry m attribute scores; preprocessing sorts one descending
// (score, object) list per attribute; a top-k query walks the lists
// round-robin, random-accesses the remaining scores of each object it
// meets, and stops as soon as the k-th best aggregate reaches the
// threshold — the sum of the scores at the current list positions. On
// skewed score distributions TA reads a vanishing fraction of the lists,
// which the access counters make visible.
package topk

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Dataset is n objects × m attributes of non-negative scores.
type Dataset struct {
	// Scores[a][o] is the score of object o on attribute a.
	Scores [][]float64
}

// N reports the object count.
func (d *Dataset) N() int {
	if len(d.Scores) == 0 {
		return 0
	}
	return len(d.Scores[0])
}

// M reports the attribute count.
func (d *Dataset) M() int { return len(d.Scores) }

// Validate checks rectangular shape and non-negative scores.
func (d *Dataset) Validate() error {
	if d.M() == 0 {
		return fmt.Errorf("topk: need at least one attribute")
	}
	n := d.N()
	for a, col := range d.Scores {
		if len(col) != n {
			return fmt.Errorf("topk: attribute %d has %d objects, want %d", a, len(col), n)
		}
		for o, s := range col {
			if s < 0 {
				return fmt.Errorf("topk: negative score at (%d,%d)", a, o)
			}
		}
	}
	return nil
}

// GenZipf generates a seeded dataset whose scores follow a Zipf-like decay
// over a random object permutation per attribute — the skew that makes
// early termination pay.
func GenZipf(n, m int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Scores: make([][]float64, m)}
	for a := 0; a < m; a++ {
		col := make([]float64, n)
		perm := rng.Perm(n)
		for rank, obj := range perm {
			col[obj] = 1000.0 / float64(rank+1)
		}
		d.Scores[a] = col
	}
	return d
}

// Index is the TA preprocessing output: per-attribute descending lists.
type Index struct {
	d *Dataset
	// lists[a][r] is the object with the r-th highest score on attribute a.
	lists [][]int32
}

// NewIndex sorts one list per attribute: O(m · n log n) preprocessing.
func NewIndex(d *Dataset) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	idx := &Index{d: d, lists: make([][]int32, d.M())}
	for a, col := range d.Scores {
		list := make([]int32, len(col))
		for o := range list {
			list[o] = int32(o)
		}
		sort.SliceStable(list, func(i, j int) bool { return col[list[i]] > col[list[j]] })
		idx.lists[a] = list
	}
	return idx, nil
}

// Result is one ranked answer.
type Result struct {
	Object int
	Score  float64
}

// Stats counts the accesses a query performed.
type Stats struct {
	// Sequential is the number of sorted-list entries read.
	Sequential int
	// Random is the number of random score lookups.
	Random int
}

// resultHeap is a min-heap on Score keeping the current top-k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// TopK runs the Threshold Algorithm: the k objects with the highest score
// sums, in descending order (ties broken by smaller object id), plus access
// statistics.
func (x *Index) TopK(k int) ([]Result, Stats, error) {
	n, m := x.d.N(), x.d.M()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	var st Stats
	seen := make(map[int32]bool, 4*k)
	var best resultHeap
	for depth := 0; depth < n; depth++ {
		threshold := 0.0
		for a := 0; a < m; a++ {
			obj := x.lists[a][depth]
			st.Sequential++
			threshold += x.d.Scores[a][obj]
			if !seen[obj] {
				seen[obj] = true
				total := 0.0
				for b := 0; b < m; b++ {
					total += x.d.Scores[b][obj]
					st.Random++
				}
				heap.Push(&best, Result{Object: int(obj), Score: total})
				if best.Len() > k {
					heap.Pop(&best)
				}
			}
		}
		// Early termination: nothing below this depth can beat the
		// current k-th best.
		if best.Len() == k && best[0].Score >= threshold {
			break
		}
	}
	return finish(best), st, nil
}

// Scan is the baseline: aggregate every object, sort, take k. O(n·m +
// n log n) per query.
func Scan(d *Dataset, k int) ([]Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	n := d.N()
	if k > n {
		k = n
	}
	all := make([]Result, n)
	for o := 0; o < n; o++ {
		total := 0.0
		for a := 0; a < d.M(); a++ {
			total += d.Scores[a][o]
		}
		all[o] = Result{Object: o, Score: total}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Object < all[j].Object
	})
	return all[:k], nil
}

func finish(h resultHeap) []Result {
	out := make([]Result, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Object < out[j].Object
	})
	return out
}
