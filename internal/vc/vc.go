// Package vc implements Vertex Cover with Buss kernelization, the paper's
// §4(9) case study.
//
// VC is NP-complete in general, but the paper observes (via parameterized
// complexity) that instances can be preprocessed by Buss' kernelization in
// O(|E|) time so that for fixed K, deciding whether a vertex cover of size
// ≤ K exists takes time independent of the original graph size — i.e. for
// fixed K, VC is in ΠTP.
//
// Buss' rules: a vertex of degree > K must belong to every cover of size
// ≤ K (otherwise all of its > K neighbours would be needed), so take it and
// decrement K; after exhausting that rule, a yes-instance can retain at
// most K·K' edges, so larger remainders are rejected outright. What is left
// — the kernel — has at most K'² edges and 2K'² non-isolated vertices and
// is decided by a bounded search tree in O(2^K' · K'²).
package vc

import (
	"fmt"
	"math/rand"

	"pitract/internal/graph"
)

// Kernel is the result of Buss kernelization.
type Kernel struct {
	// Forced lists vertices (of the original graph) every size-≤K cover
	// must contain.
	Forced []int
	// Edges are the surviving kernel edges in original vertex ids.
	Edges [][2]int
	// Budget is the remaining cover budget K - len(Forced).
	Budget int
	// Rejected is true when kernelization already refutes the instance
	// (too many forced vertices or too many surviving edges).
	Rejected bool
}

// Kernelize applies Buss' rules to an undirected graph with budget k.
func Kernelize(g *graph.Graph, k int) (*Kernel, error) {
	if g.Directed() {
		return nil, fmt.Errorf("vc: vertex cover is defined on undirected graphs")
	}
	if k < 0 {
		return nil, fmt.Errorf("vc: negative budget %d", k)
	}
	n := g.N()
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	ker := &Kernel{Budget: k}
	// Repeatedly take any vertex with degree > remaining budget.
	for {
		victim := -1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] > ker.Budget {
				victim = v
				break
			}
		}
		if victim < 0 {
			break
		}
		if ker.Budget == 0 {
			// An uncovered edge remains but the budget is spent.
			ker.Rejected = true
			return ker, nil
		}
		removed[victim] = true
		ker.Forced = append(ker.Forced, victim)
		ker.Budget--
		for _, w := range g.Neighbors(victim) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	// Collect surviving edges.
	for _, e := range g.Edges() {
		if !removed[e[0]] && !removed[e[1]] {
			ker.Edges = append(ker.Edges, e)
		}
	}
	// Buss bound: a yes-instance keeps at most Budget² edges, since every
	// remaining vertex covers ≤ Budget edges.
	if len(ker.Edges) > ker.Budget*ker.Budget {
		ker.Rejected = true
	}
	return ker, nil
}

// searchEdges decides by bounded search whether the given edges admit a
// cover of size ≤ k: pick an uncovered edge, branch on covering it with
// either endpoint.
func searchEdges(edges [][2]int, k int) bool {
	if len(edges) == 0 {
		return true
	}
	if k == 0 {
		return false
	}
	e := edges[0]
	for _, pick := range []int{e[0], e[1]} {
		var rest [][2]int
		for _, f := range edges[1:] {
			if f[0] != pick && f[1] != pick {
				rest = append(rest, f)
			}
		}
		if searchEdges(rest, k-1) {
			return true
		}
	}
	return false
}

// Decide reports whether g has a vertex cover of size ≤ k, using Buss
// kernelization followed by the bounded search tree. For fixed k the work
// after kernelization is independent of |G|.
func Decide(g *graph.Graph, k int) (bool, error) {
	ker, err := Kernelize(g, k)
	if err != nil {
		return false, err
	}
	if ker.Rejected {
		return false, nil
	}
	return searchEdges(ker.Edges, ker.Budget), nil
}

// BruteForce enumerates all vertex subsets of size ≤ k — the exponential
// baseline, usable only for small graphs and small k.
func BruteForce(g *graph.Graph, k int) (bool, error) {
	if g.Directed() {
		return false, fmt.Errorf("vc: vertex cover is defined on undirected graphs")
	}
	if k < 0 {
		return false, fmt.Errorf("vc: negative budget %d", k)
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return true, nil
	}
	n := g.N()
	if k >= n {
		return true, nil
	}
	// Enumerate k-subsets of vertices via combinations.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	covers := func() bool {
		inSet := make(map[int]bool, k)
		for _, v := range idx {
			inSet[v] = true
		}
		for _, e := range edges {
			if !inSet[e[0]] && !inSet[e[1]] {
				return false
			}
		}
		return true
	}
	if k == 0 {
		return false, nil // edges exist but no budget
	}
	for {
		if covers() {
			return true, nil
		}
		// Advance combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return false, nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// MinimumCoverSize returns the size of a minimum vertex cover (exponential;
// test helper for small graphs only).
func MinimumCoverSize(g *graph.Graph) (int, error) {
	if g.Directed() {
		return 0, fmt.Errorf("vc: vertex cover is defined on undirected graphs")
	}
	for k := 0; k <= g.N(); k++ {
		ok, err := Decide(g, k)
		if err != nil {
			return 0, err
		}
		if ok {
			return k, nil
		}
	}
	return g.N(), nil
}

// PlantCover returns a seeded undirected graph on n vertices whose edges
// all touch a planted cover of the given size, so its minimum cover is at
// most that size. Useful for workload generation with known answers.
func PlantCover(n, coverSize, m int, seed int64) *graph.Graph {
	g := graph.New(n, false)
	if coverSize <= 0 || n < 2 {
		return g
	}
	cover := make([]int, coverSize)
	for i := range cover {
		cover[i] = i // vertices 0..coverSize-1 form the planted cover
	}
	rng := rand.New(rand.NewSource(seed))
	for e := 0; e < m; e++ {
		u := cover[rng.Intn(coverSize)]
		v := rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	return g
}
