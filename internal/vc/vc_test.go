package vc

import (
	"math/rand"
	"testing"

	"pitract/internal/graph"
)

func TestDecideMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.RandomConnectedUndirected(n, rng.Intn(n), int64(trial))
		for k := 0; k <= n; k++ {
			want, err := BruteForce(g, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decide(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d n=%d k=%d: Decide=%v BruteForce=%v", trial, n, k, got, want)
			}
		}
	}
}

func TestKnownCovers(t *testing.T) {
	// A triangle needs 2 vertices.
	tri := graph.New(3, false)
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(0, 2)
	if got, _ := MinimumCoverSize(tri); got != 2 {
		t.Errorf("triangle cover = %d, want 2", got)
	}
	// A star needs 1 vertex (the hub).
	star := graph.New(6, false)
	for v := 1; v < 6; v++ {
		star.MustAddEdge(0, v)
	}
	if got, _ := MinimumCoverSize(star); got != 1 {
		t.Errorf("star cover = %d, want 1", got)
	}
	// A path of 5 vertices needs 2.
	if got, _ := MinimumCoverSize(graph.Path(5, false)); got != 2 {
		t.Errorf("path cover = %d, want 2", got)
	}
	// Edgeless graph needs 0.
	if got, _ := MinimumCoverSize(graph.New(4, false)); got != 0 {
		t.Errorf("edgeless cover = %d, want 0", got)
	}
}

func TestKernelizeForcesHighDegreeVertices(t *testing.T) {
	// Star with 5 leaves, k=1: the hub has degree > 1 and must be forced.
	star := graph.New(6, false)
	for v := 1; v < 6; v++ {
		star.MustAddEdge(0, v)
	}
	ker, err := Kernelize(star, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ker.Rejected {
		t.Fatal("star with k=1 wrongly rejected")
	}
	if len(ker.Forced) != 1 || ker.Forced[0] != 0 {
		t.Fatalf("Forced = %v, want [0]", ker.Forced)
	}
	if len(ker.Edges) != 0 || ker.Budget != 0 {
		t.Fatalf("kernel not empty: edges=%v budget=%d", ker.Edges, ker.Budget)
	}
}

func TestKernelizeRejectsOverfullKernels(t *testing.T) {
	// A perfect matching of 10 edges: max degree 1, so no vertex is forced
	// for any k ≥ 1; with k=2 the kernel keeps 10 > k² = 4 edges → reject.
	g := graph.New(20, false)
	for i := 0; i < 10; i++ {
		g.MustAddEdge(2*i, 2*i+1)
	}
	ker, err := Kernelize(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ker.Rejected {
		t.Fatal("matching with k=2 not rejected by the edge bound")
	}
	if ok, _ := Decide(g, 2); ok {
		t.Fatal("Decide accepted an instance needing 10 vertices with k=2")
	}
	if ok, _ := Decide(g, 10); !ok {
		t.Fatal("Decide rejected the matching with exactly enough budget")
	}
}

func TestKernelizeBudgetExhaustion(t *testing.T) {
	// k=0 with any edge must reject.
	g := graph.Path(2, false)
	ker, err := Kernelize(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ker.Rejected {
		t.Fatal("k=0 with an edge not rejected")
	}
}

func TestKernelSizeIndependentOfGraphSize(t *testing.T) {
	// The point of §4(9): for fixed k, kernel size is bounded by k², no
	// matter how large the instance grows.
	k := 4
	for _, n := range []int{100, 1000, 5000} {
		g := PlantCover(n, k, 6*n, int64(n))
		ker, err := Kernelize(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if ker.Rejected {
			// A planted instance may still be rejected only if its true
			// cover exceeds k; verify against Decide on the kernel bound.
			ok, _ := Decide(g, k)
			if ok {
				t.Fatalf("n=%d: kernel rejected a yes-instance", n)
			}
			continue
		}
		if len(ker.Edges) > ker.Budget*ker.Budget {
			t.Fatalf("n=%d: kernel has %d edges, bound %d", n, len(ker.Edges), ker.Budget*ker.Budget)
		}
	}
}

func TestPlantedInstancesAreYesInstances(t *testing.T) {
	for _, n := range []int{50, 200} {
		for k := 1; k <= 5; k++ {
			g := PlantCover(n, k, 4*n, int64(n*k))
			ok, err := Decide(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("planted cover of size %d in n=%d not found", k, n)
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	d := graph.Path(3, true)
	if _, err := Kernelize(d, 1); err == nil {
		t.Error("directed graph accepted by Kernelize")
	}
	if _, err := Decide(d, 1); err == nil {
		t.Error("directed graph accepted by Decide")
	}
	if _, err := BruteForce(d, 1); err == nil {
		t.Error("directed graph accepted by BruteForce")
	}
	if _, err := MinimumCoverSize(d); err == nil {
		t.Error("directed graph accepted by MinimumCoverSize")
	}
	u := graph.Path(3, false)
	if _, err := Kernelize(u, -1); err == nil {
		t.Error("negative budget accepted by Kernelize")
	}
	if _, err := BruteForce(u, -1); err == nil {
		t.Error("negative budget accepted by BruteForce")
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	g := graph.New(3, false)
	if ok, _ := BruteForce(g, 0); !ok {
		t.Error("edgeless graph rejected with k=0")
	}
	p := graph.Path(3, false)
	if ok, _ := BruteForce(p, 3); !ok {
		t.Error("k >= n rejected")
	}
	if ok, _ := BruteForce(p, 0); ok {
		t.Error("k=0 with edges accepted")
	}
}
