// Package lca implements lowest-common-ancestor preprocessing for trees and
// DAGs, the paper's §4(4) case study (citing Bender et al., J. Algorithms
// 57(2), 2005): preprocess in PTIME, answer LCA(u, v) in O(1).
package lca

import (
	"fmt"

	"pitract/internal/rmq"
)

// Tree answers constant-time LCA queries on a rooted tree via the classic
// Euler-tour + range-minimum reduction: the LCA of u and v is the
// shallowest node between their first occurrences on the Euler tour.
type Tree struct {
	n      int
	first  []int   // first occurrence of each node on the tour
	tour   []int32 // node at each tour position
	depths []int64 // depth at each tour position
	rmq    rmq.Querier
}

// NewTree preprocesses a rooted tree given as a parent array
// (parent[root] == root). It validates that the structure is a single tree.
func NewTree(parent []int, root int) (*Tree, error) {
	n := len(parent)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("lca: root %d out of range [0,%d)", root, n)
	}
	if parent[root] != root {
		return nil, fmt.Errorf("lca: parent[root=%d] = %d, want self-loop", root, parent[root])
	}
	children := make([][]int32, n)
	for v, p := range parent {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("lca: parent[%d] = %d out of range", v, p)
		}
		if v != root {
			if p == v {
				return nil, fmt.Errorf("lca: node %d is a second root", v)
			}
			children[p] = append(children[p], int32(v))
		}
	}
	t := &Tree{n: n, first: make([]int, n)}
	for i := range t.first {
		t.first[i] = -1
	}
	// Iterative Euler tour: push (node, depth, childIndex).
	type frame struct {
		node  int32
		depth int64
		child int
	}
	stack := []frame{{int32(root), 0, 0}}
	t.visit(int32(root), 0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child < len(children[f.node]) {
			c := children[f.node][f.child]
			f.child++
			t.visit(c, f.depth+1)
			stack = append(stack, frame{c, f.depth + 1, 0})
		} else {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				t.visit(top.node, top.depth)
			}
		}
	}
	for v, f := range t.first {
		if f < 0 {
			return nil, fmt.Errorf("lca: node %d unreachable from root %d (cycle or forest)", v, root)
		}
	}
	t.rmq = rmq.NewSparse(t.depths)
	return t, nil
}

func (t *Tree) visit(node int32, depth int64) {
	if t.first[node] < 0 {
		t.first[node] = len(t.tour)
	}
	t.tour = append(t.tour, node)
	t.depths = append(t.depths, depth)
}

// Len reports the number of nodes.
func (t *Tree) Len() int { return t.n }

// LCA returns the lowest common ancestor of u and v in O(1).
func (t *Tree) LCA(u, v int) (int, error) {
	if u < 0 || u >= t.n || v < 0 || v >= t.n {
		return 0, fmt.Errorf("lca: query (%d,%d) out of range [0,%d)", u, v, t.n)
	}
	i, j := t.first[u], t.first[v]
	if i > j {
		i, j = j, i
	}
	return int(t.tour[t.rmq.Query(i, j)]), nil
}

// Depth returns the depth of node v (root has depth 0).
func (t *Tree) Depth(v int) int64 { return t.depths[t.first[v]] }

// NaiveLCA walks parent pointers upward — the no-preprocessing baseline:
// O(depth) per query.
func NaiveLCA(parent []int, u, v int) int {
	seen := make(map[int]bool)
	for x := u; ; x = parent[x] {
		seen[x] = true
		if parent[x] == x {
			break
		}
	}
	for x := v; ; x = parent[x] {
		if seen[x] {
			return x
		}
		if parent[x] == x {
			return x
		}
	}
}
