package lca

import (
	"math/rand"
	"testing"
)

func randTree(rng *rand.Rand, n int) []int {
	parent := make([]int, n)
	parent[0] = 0
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return parent
}

func TestTreeLCAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(80)
		parent := randTree(rng, n)
		tree, err := NewTree(parent, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 200; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			got, err := tree.LCA(u, v)
			if err != nil {
				t.Fatal(err)
			}
			want := NaiveLCA(parent, u, v)
			if got != want {
				t.Fatalf("trial %d: LCA(%d,%d) = %d, want %d (parent=%v)", trial, u, v, got, want, parent)
			}
		}
	}
}

func TestTreeLCAProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	parent := randTree(rng, 120)
	tree, err := NewTree(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 300; q++ {
		u, v := rng.Intn(120), rng.Intn(120)
		w, _ := tree.LCA(u, v)
		// Symmetry.
		w2, _ := tree.LCA(v, u)
		if w != w2 {
			t.Fatalf("LCA not symmetric: (%d,%d) -> %d vs %d", u, v, w, w2)
		}
		// Idempotence: LCA(u,u) = u.
		self, _ := tree.LCA(u, u)
		if self != u {
			t.Fatalf("LCA(%d,%d) = %d", u, u, self)
		}
		// w is an ancestor of both.
		for _, x := range []int{u, v} {
			cur := x
			for cur != w && parent[cur] != cur {
				cur = parent[cur]
			}
			if cur != w {
				t.Fatalf("LCA(%d,%d)=%d is not an ancestor of %d", u, v, w, x)
			}
		}
		// No deeper common ancestor: depth(w) must equal the naive answer's.
		if tree.Depth(w) != tree.Depth(NaiveLCA(parent, u, v)) {
			t.Fatalf("depth mismatch for (%d,%d)", u, v)
		}
	}
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree([]int{0, 1}, 2); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := NewTree([]int{1, 0}, 0); err == nil {
		t.Error("non-self-loop root accepted")
	}
	if _, err := NewTree([]int{0, 1}, 0); err == nil {
		t.Error("forest (two roots) accepted")
	}
	if _, err := NewTree([]int{0, 5}, 0); err == nil {
		t.Error("out-of-range parent accepted")
	}
	tree, err := NewTree([]int{0}, 0)
	if err != nil || tree.Len() != 1 {
		t.Errorf("singleton tree rejected: %v", err)
	}
	if _, err := tree.LCA(0, 1); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func randDAG(rng *rand.Rand, n int, density float64) [][]int {
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				adj[u] = append(adj[u], v) // edges increase: acyclic
			}
		}
	}
	return adj
}

func TestDAGLCAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		adj := randDAG(rng, n, 0.15)
		d, err := NewDAG(adj)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 60; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			got, ok, err := d.LCA(u, v)
			if err != nil {
				t.Fatal(err)
			}
			want, wok, err := NaiveDAGLCA(adj, u, v)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wok || (ok && got != want) {
				t.Fatalf("trial %d: LCA(%d,%d) = (%d,%v), want (%d,%v)", trial, u, v, got, ok, want, wok)
			}
		}
	}
}

func TestDAGLCAIsValidLCA(t *testing.T) {
	// Check the defining property directly: the answer is a common
	// ancestor with no common-ancestor descendant.
	rng := rand.New(rand.NewSource(33))
	n := 25
	adj := randDAG(rng, n, 0.2)
	d, err := NewDAG(adj)
	if err != nil {
		t.Fatal(err)
	}
	reach := make([][]bool, n)
	for w := 0; w < n; w++ {
		reach[w] = make([]bool, n)
		reach[w][w] = true
		stack := []int{w}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !reach[w][y] {
					reach[w][y] = true
					stack = append(stack, y)
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w, ok, _ := d.LCA(u, v)
			hasCA := false
			for x := 0; x < n; x++ {
				if reach[x][u] && reach[x][v] {
					hasCA = true
					break
				}
			}
			if ok != hasCA {
				t.Fatalf("(%d,%d): ok=%v but common ancestor existence=%v", u, v, ok, hasCA)
			}
			if !ok {
				continue
			}
			if !reach[w][u] || !reach[w][v] {
				t.Fatalf("(%d,%d): %d is not a common ancestor", u, v, w)
			}
			for x := 0; x < n; x++ {
				if x != w && reach[w][x] && reach[x][u] && reach[x][v] {
					t.Fatalf("(%d,%d): descendant %d of %d is also a common ancestor", u, v, x, w)
				}
			}
		}
	}
}

func TestDAGSharedRoot(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3. LCA(1,2) must be 0; LCA(3,3)=3;
	// LCA(1,3) must be 1 (1 reaches both and has no deeper candidate).
	adj := [][]int{{1, 2}, {3}, {3}, {}}
	d, err := NewDAG(adj)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok, _ := d.LCA(1, 2); !ok || w != 0 {
		t.Errorf("LCA(1,2) = (%d,%v), want (0,true)", w, ok)
	}
	if w, ok, _ := d.LCA(1, 3); !ok || w != 1 {
		t.Errorf("LCA(1,3) = (%d,%v), want (1,true)", w, ok)
	}
}

func TestDAGNoCommonAncestor(t *testing.T) {
	adj := [][]int{{}, {}} // two isolated nodes
	d, err := NewDAG(adj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.LCA(0, 1); ok {
		t.Error("isolated nodes reported a common ancestor")
	}
}

func TestDAGRejectsCycle(t *testing.T) {
	if _, err := NewDAG([][]int{{1}, {0}}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := NewDAG([][]int{{5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, _, err := NaiveDAGLCA([][]int{{1}, {0}}, 0, 1); err == nil {
		t.Error("naive accepted cycle")
	}
	if _, _, err := NaiveDAGLCA([][]int{{}}, 0, 5); err == nil {
		t.Error("naive accepted bad query")
	}
	d, _ := NewDAG([][]int{{}})
	if _, _, err := d.LCA(0, 5); err == nil {
		t.Error("bad query accepted")
	}
}
