package lca

import "fmt"

// DAG answers constant-time representative-LCA queries on a directed
// acyclic graph after O(n³) preprocessing, following the paper's statement
// of §4(4): "G can be preprocessed by computing LCA for all pairs of nodes
// in O(|G|³) time; then given any nodes (u,v), LCA(u,v) can be found in
// O(1) time."
//
// In a DAG an LCA is any common ancestor w of u and v such that no
// descendant of w is also a common ancestor. LCAs are not unique; this
// structure returns the representative that appears last in topological
// order (the "deepest" one), which is a valid LCA because any candidate
// appearing later in topological order cannot be its ancestor.
type DAG struct {
	n     int
	table []int32 // n×n, -1 when no common ancestor exists
}

// NewDAG preprocesses the DAG given by its adjacency lists (edge u→v means
// u is a parent of v). It returns an error if the graph has a cycle.
func NewDAG(adj [][]int) (*DAG, error) {
	n := len(adj)
	topo, err := topoOrder(adj)
	if err != nil {
		return nil, err
	}
	// Reachability closure as bitsets: reach[w] ∋ x iff w = x or w →* x.
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
		reach[i][i/64] |= 1 << (i % 64)
	}
	// Process in reverse topological order so children are complete first.
	for i := n - 1; i >= 0; i-- {
		w := topo[i]
		for _, c := range adj[w] {
			for k, bits := range reach[c] {
				reach[w][k] |= bits
			}
		}
	}
	d := &DAG{n: n, table: make([]int32, n*n)}
	// For each pair, scan candidates in reverse topological order; the
	// first common ancestor found has no common-ancestor descendant, since
	// descendants come strictly later in topological order.
	for u := 0; u < n; u++ {
		for v := u; v < n; v++ {
			best := int32(-1)
			for i := n - 1; i >= 0; i-- {
				w := topo[i]
				if reach[w][u/64]&(1<<(u%64)) != 0 && reach[w][v/64]&(1<<(v%64)) != 0 {
					best = int32(w)
					break
				}
			}
			d.table[u*n+v] = best
			d.table[v*n+u] = best
		}
	}
	return d, nil
}

// topoOrder returns a topological order via Kahn's algorithm, or an error
// if the graph is cyclic.
func topoOrder(adj [][]int) ([]int, error) {
	n := len(adj)
	indeg := make([]int, n)
	for u, outs := range adj {
		for _, v := range outs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("lca: edge %d→%d out of range", u, v)
			}
			indeg[v]++
		}
	}
	queue := make([]int, 0, n)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("lca: graph has a cycle; %d of %d nodes ordered", len(order), n)
	}
	return order, nil
}

// Len reports the number of nodes.
func (d *DAG) Len() int { return d.n }

// LCA returns a representative lowest common ancestor of u and v, or ok =
// false when the pair has no common ancestor.
func (d *DAG) LCA(u, v int) (w int, ok bool, err error) {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		return 0, false, fmt.Errorf("lca: query (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	got := d.table[u*d.n+v]
	return int(got), got >= 0, nil
}

// NaiveDAGLCA recomputes one representative LCA from scratch — the
// no-preprocessing baseline: O(|V|·|E|) per query. It returns the same
// representative as DAG.LCA (last common ancestor in topological order).
func NaiveDAGLCA(adj [][]int, u, v int) (int, bool, error) {
	n := len(adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, false, fmt.Errorf("lca: query (%d,%d) out of range [0,%d)", u, v, n)
	}
	topo, err := topoOrder(adj)
	if err != nil {
		return 0, false, err
	}
	reachesFrom := func(w int) []bool {
		seen := make([]bool, n)
		stack := []int{w}
		seen[w] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return seen
	}
	for i := n - 1; i >= 0; i-- {
		w := topo[i]
		r := reachesFrom(w)
		if r[u] && r[v] {
			return w, true, nil
		}
	}
	return 0, false, nil
}
