// Package graph provides the graph substrate shared by the paper's case
// studies: graph construction and generators, traversals, strongly
// connected components, transitive closure (sequential and PRAM), and a
// deterministic byte codec for moving graphs across the data/query boundary
// of factorizations.
package graph

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"pitract/internal/pram"
)

// Graph is a simple graph with vertices 0..n-1. Undirected graphs store
// each edge in both adjacency lists. Adjacency lists are kept sorted
// ascending, which the breadth-depth search semantics of the paper rely on
// ("the ordering induced by the vertex numbering").
type Graph struct {
	n        int
	directed bool
	m        int // logical edge count (an undirected edge counts once)
	adj      [][]int32
	sorted   bool
}

// New returns a graph with n vertices and no edges.
func New(n int, directed bool) *Graph {
	return &Graph{n: n, directed: directed, adj: make([][]int32, n), sorted: true}
}

// MaxDecodeVertices caps the vertex count Decode will accept. Vertices cost
// no bytes in the wire format (only the varint count), so without a cap a
// tiny buffer can demand an arbitrarily large adjacency allocation. 1<<24
// is far above every workload in this repo while keeping the worst-case
// allocation a few hundred MB instead of unbounded.
const MaxDecodeVertices = 1 << 24

// N reports the vertex count.
func (g *Graph) N() int { return g.n }

// M reports the edge count (undirected edges counted once).
func (g *Graph) M() int { return g.m }

// Directed reports edge orientation.
func (g *Graph) Directed() bool { return g.directed }

// AddEdge inserts the edge u→v (plus v→u when undirected). Self-loops and
// out-of-range endpoints are errors; parallel edges are tolerated and
// deduplicated by Normalize.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	g.adj[u] = append(g.adj[u], int32(v))
	if !g.directed {
		g.adj[v] = append(g.adj[v], int32(u))
	}
	g.m++
	g.sorted = false
	return nil
}

// MustAddEdge is AddEdge that panics on error, for fixtures and generators.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the edge u→v is present (v→u counts too when
// undirected, since AddEdge stores both arcs).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// RemoveEdge deletes the edge u→v (plus v→u when undirected). Deleting an
// edge that is not present is an error: retraction of a fact that was never
// asserted is a client mistake the caller must surface, not absorb.
// Duplicates from un-normalized parallel insertions lose one copy per call.
func (g *Graph) RemoveEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if !g.removeArc(u, v) {
		return fmt.Errorf("graph: edge (%d,%d) not present", u, v)
	}
	if !g.directed {
		// AddEdge always stores the reverse arc, so its absence here means
		// the adjacency lists were corrupted, not a client mistake.
		if !g.removeArc(v, u) {
			return fmt.Errorf("graph: undirected edge (%d,%d) missing reverse arc", u, v)
		}
	}
	g.m--
	return nil
}

// removeArc removes the first copy of v from u's adjacency list, preserving
// order (so a sorted list stays sorted).
func (g *Graph) removeArc(u, v int) bool {
	l := g.adj[u]
	for i, w := range l {
		if int(w) == v {
			g.adj[u] = append(l[:i], l[i+1:]...)
			return true
		}
	}
	return false
}

// Normalize sorts adjacency lists ascending and removes duplicate edges.
// All traversal functions call it implicitly via Neighbors.
func (g *Graph) Normalize() {
	if g.sorted {
		return
	}
	m := 0
	for i := range g.adj {
		l := g.adj[i]
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		out := l[:0]
		for k, v := range l {
			if k == 0 || v != l[k-1] {
				out = append(out, v)
			}
		}
		g.adj[i] = out
		m += len(out)
	}
	if g.directed {
		g.m = m
	} else {
		g.m = m / 2
	}
	g.sorted = true
}

// Neighbors returns the ascending adjacency list of v. The slice aliases
// internal state and must not be mutated.
func (g *Graph) Neighbors(v int) []int32 {
	g.Normalize()
	return g.adj[v]
}

// Degree reports the (out-)degree of v.
func (g *Graph) Degree(v int) int { return len(g.Neighbors(v)) }

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n, g.directed)
	c.m = g.m
	c.sorted = g.sorted
	for i, l := range g.adj {
		c.adj[i] = append([]int32(nil), l...)
	}
	return c
}

// Edges enumerates edges as (u, v) pairs; undirected edges appear once with
// u < v.
func (g *Graph) Edges() [][2]int {
	g.Normalize()
	var out [][2]int
	for u, l := range g.adj {
		for _, v := range l {
			if g.directed || u < int(v) {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// --- codec -----------------------------------------------------------------

// Encode serializes the graph as a self-delimiting byte string:
// n, directed flag, edge count, then delta-free (u,v) varint pairs.
func (g *Graph) Encode() []byte {
	g.Normalize()
	edges := g.Edges()
	b := binary.AppendUvarint(nil, uint64(g.n))
	if g.directed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(edges)))
	for _, e := range edges {
		b = binary.AppendUvarint(b, uint64(e[0]))
		b = binary.AppendUvarint(b, uint64(e[1]))
	}
	return b
}

// Decode parses a byte string produced by Encode.
func Decode(buf []byte) (*Graph, error) {
	off := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, fmt.Errorf("graph: corrupt varint at offset %d", off)
		}
		off += n
		return v, nil
	}
	n64, err := next()
	if err != nil {
		return nil, err
	}
	// Bound the vertex count before allocating adjacency headers: a hostile
	// dozen-byte buffer can claim 2^40 vertices and OOM-kill the process
	// otherwise (the serve path feeds Decode attacker-controlled bytes).
	if n64 > MaxDecodeVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds decode limit %d", n64, uint64(MaxDecodeVertices))
	}
	if off >= len(buf) {
		return nil, fmt.Errorf("graph: truncated before orientation flag")
	}
	directed := buf[off] == 1
	off++
	g := New(int(n64), directed)
	m64, err := next()
	if err != nil {
		return nil, err
	}
	// Each encoded edge takes at least two bytes, so an edge count beyond
	// half the remaining buffer is corrupt — reject it up front.
	if m64 > uint64(len(buf)-off)/2 {
		return nil, fmt.Errorf("graph: edge count %d exceeds remaining %d bytes", m64, len(buf)-off)
	}
	for i := uint64(0); i < m64; i++ {
		u, err := next()
		if err != nil {
			return nil, err
		}
		v, err := next()
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, err
		}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("graph: %d trailing bytes", len(buf)-off)
	}
	g.Normalize()
	return g, nil
}

// --- generators -------------------------------------------------------------

// RandomDirected returns a seeded G(n, m) directed graph without self-loops.
func RandomDirected(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, true)
	for added := 0; added < m && n > 1; added++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.MustAddEdge(u, v)
	}
	g.Normalize()
	return g
}

// RandomConnectedUndirected returns a seeded connected undirected graph: a
// random spanning tree plus extra random edges.
func RandomConnectedUndirected(n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v))
	}
	for e := 0; e < extra && n > 1; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	return g
}

// RandomDAG returns a seeded DAG: each edge goes from a lower to a higher
// vertex number.
func RandomDAG(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, true)
	for added := 0; added < m && n > 1; added++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		g.MustAddEdge(u, v)
	}
	g.Normalize()
	return g
}

// CommunityGraph returns a seeded directed graph of c dense communities of
// size s with sparse cross links — the "social network graph" shape used by
// the query-preserving-compression case study (§4(5)).
func CommunityGraph(c, s int, cross int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := c * s
	g := New(n, true)
	for com := 0; com < c; com++ {
		base := com * s
		// A cycle through the community keeps it strongly connected, plus
		// chords for density.
		for i := 0; i < s; i++ {
			g.MustAddEdge(base+i, base+(i+1)%s)
		}
		for i := 0; i < s; i++ {
			u := base + rng.Intn(s)
			v := base + rng.Intn(s)
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
	}
	for e := 0; e < cross; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	return g
}

// Path returns the n-vertex path 0—1—…—n-1 (directed: 0→1→…).
func Path(n int, directed bool) *Graph {
	g := New(n, directed)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
	}
	g.Normalize()
	return g
}

// AdjacencyMatrix converts the graph to a PRAM Boolean matrix.
func (g *Graph) AdjacencyMatrix() *pram.BoolMatrix {
	g.Normalize()
	mat := pram.NewBoolMatrix(g.n)
	for u, l := range g.adj {
		for _, v := range l {
			mat.Set(u, int(v), true)
		}
	}
	return mat
}
