package graph

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, true)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestNormalizeSortsAndDedups(t *testing.T) {
	g := New(4, true)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 3) // duplicate
	g.MustAddEdge(0, 2)
	got := g.Neighbors(0)
	want := []int32{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := New(3, false)
	g.MustAddEdge(0, 2)
	if g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Fatal("undirected edge not mirrored")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	edges := g.Edges()
	if len(edges) != 1 || edges[0] != [2]int{0, 2} {
		t.Fatalf("Edges = %v", edges)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3, true)
	g.MustAddEdge(0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for trial := int64(0); trial < 10; trial++ {
			var g *Graph
			if directed {
				g = RandomDirected(30, 80, trial)
			} else {
				g = RandomConnectedUndirected(30, 20, trial)
			}
			back, err := Decode(g.Encode())
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			back.Normalize()
			g.Normalize()
			if !reflect.DeepEqual(g, back) {
				t.Fatalf("round trip mismatch (directed=%v trial=%d)", directed, trial)
			}
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	g := RandomDirected(10, 20, 1)
	enc := g.Encode()
	for _, bad := range [][]byte{nil, enc[:1], enc[:len(enc)-1], append(append([]byte{}, enc...), 9)} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("corrupt input of length %d decoded", len(bad))
		}
	}
}

// TestDecodeRejectsHostileCounts: a tiny buffer claiming a huge vertex or
// edge count must error cleanly before allocating, never OOM or hang — the
// serving subsystem feeds Decode attacker-controlled bytes.
func TestDecodeRejectsHostileCounts(t *testing.T) {
	hugeN := binary.AppendUvarint(nil, 1<<40) // 2^40 vertices…
	hugeN = append(hugeN, 1)                  // directed
	hugeN = binary.AppendUvarint(hugeN, 0)    // …0 edges, ~12 bytes total
	if _, err := Decode(hugeN); err == nil {
		t.Fatal("2^40-vertex claim decoded")
	}

	hugeM := binary.AppendUvarint(nil, 4) // 4 vertices
	hugeM = append(hugeM, 1)
	hugeM = binary.AppendUvarint(hugeM, 1<<50) // 2^50 edges in no bytes
	if _, err := Decode(hugeM); err == nil {
		t.Fatal("2^50-edge claim decoded")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5, false)
	order, dist := g.BFS(0)
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("order = %v", order)
	}
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d] = %d", i, d)
		}
	}
	// Directed path: nothing reaches backwards.
	gd := Path(4, true)
	if gd.Reachable(2, 0) {
		t.Error("directed path reachable backwards")
	}
	if !gd.Reachable(0, 3) {
		t.Error("directed path not reachable forwards")
	}
	if !gd.Reachable(2, 2) {
		t.Error("self reachability broken")
	}
}

func TestClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(40)
		g := RandomDirected(n, 3*n, int64(trial))
		c := NewClosure(g)
		for q := 0; q < 100; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if c.Reach(u, v) != g.Reachable(u, v) {
				t.Fatalf("trial %d: closure and BFS disagree on (%d,%d)", trial, u, v)
			}
		}
	}
}

func TestClosurePRAMMatchesBitset(t *testing.T) {
	g := RandomDirected(24, 60, 9)
	mat, machine := ClosurePRAM(g)
	c := NewClosure(g)
	for u := 0; u < 24; u++ {
		for v := 0; v < 24; v++ {
			if mat.At(u, v) != c.Reach(u, v) {
				t.Fatalf("PRAM closure disagrees at (%d,%d)", u, v)
			}
		}
	}
	if machine.Cost().Rounds == 0 {
		t.Fatal("PRAM closure reported zero rounds")
	}
}

func TestRowEqual(t *testing.T) {
	g := New(4, true)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	c := NewClosure(g)
	if c.RowEqual(0, 1) {
		t.Error("rows 0,1 differ reflexively but compared equal")
	}
	// 0 reaches {0,2,3}, 1 reaches {1,2,3}: distinct. 2 and 3 differ too.
	if c.RowEqual(2, 3) {
		t.Error("rows 2,3 compared equal")
	}
	if !c.RowEqual(2, 2) {
		t.Error("row not equal to itself")
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
}

// sccRef is a quadratic reference: u,v in one SCC iff mutually reachable.
func sccRef(g *Graph) [][]bool {
	n := g.N()
	same := make([][]bool, n)
	c := NewClosure(g)
	for u := 0; u < n; u++ {
		same[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			same[u][v] = c.Reach(u, v) && c.Reach(v, u)
		}
	}
	return same
}

func TestSCCMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		g := RandomDirected(n, 2*n, int64(100+trial))
		comp, count := g.SCC()
		same := sccRef(g)
		for u := 0; u < n; u++ {
			if comp[u] < 0 || comp[u] >= count {
				t.Fatalf("component id out of range: %d", comp[u])
			}
			for v := 0; v < n; v++ {
				if (comp[u] == comp[v]) != same[u][v] {
					t.Fatalf("trial %d: SCC disagreement on (%d,%d)", trial, u, v)
				}
			}
		}
	}
}

func TestSCCReverseTopological(t *testing.T) {
	// Tarjan emits components in reverse topological order: for any edge
	// u→v across components, comp[v] < comp[u].
	for trial := 0; trial < 10; trial++ {
		g := RandomDirected(30, 70, int64(trial))
		comp, _ := g.SCC()
		for _, e := range g.Edges() {
			if comp[e[0]] != comp[e[1]] && comp[e[1]] > comp[e[0]] {
				t.Fatalf("edge %v violates reverse topological numbering", e)
			}
		}
	}
}

func TestCondenseIsAcyclicAndPreservesReach(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomDirected(n, 3*n, int64(trial))
		dag, comp := g.Condense()
		// Acyclic: every edge goes to a smaller component id (reverse topo).
		for _, e := range dag.Edges() {
			if e[1] > e[0] {
				t.Fatalf("condensation edge %v is not order-respecting", e)
			}
		}
		// Reachability preserved.
		cg, cd := NewClosure(g), NewClosure(dag)
		for q := 0; q < 50; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if cg.Reach(u, v) != cd.Reach(comp[u], comp[v]) {
				t.Fatalf("condensation changed reachability for (%d,%d)", u, v)
			}
		}
	}
}

func TestGeneratorsShape(t *testing.T) {
	g := RandomConnectedUndirected(50, 10, 3)
	_, dist := g.BFS(0)
	for v, d := range dist {
		if d < 0 {
			t.Fatalf("vertex %d unreachable in connected generator", v)
		}
	}
	dag := RandomDAG(40, 100, 3)
	for _, e := range dag.Edges() {
		if e[0] >= e[1] {
			t.Fatalf("DAG edge %v not ascending", e)
		}
	}
	cg := CommunityGraph(4, 10, 5, 3)
	if cg.N() != 40 {
		t.Fatalf("community graph has %d vertices", cg.N())
	}
	comp, _ := cg.SCC()
	// Vertices within one community must be strongly connected (the cycle).
	for i := 1; i < 10; i++ {
		if comp[0] != comp[i] {
			t.Fatalf("community 0 split across SCCs")
		}
	}
	if Path(1, false).M() != 0 {
		t.Error("singleton path has edges")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomDirected(20, 40, seed)
		b := RandomDirected(20, 40, seed)
		return reflect.DeepEqual(a.Edges(), b.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := New(3, true)
	g.MustAddEdge(0, 2)
	mat := g.AdjacencyMatrix()
	if !mat.At(0, 2) || mat.At(2, 0) || mat.At(0, 0) {
		t.Fatal("adjacency matrix wrong")
	}
}
