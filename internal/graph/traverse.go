package graph

import "pitract/internal/pram"

// Traversals and reachability. BFS doubles as the no-preprocessing baseline
// for the paper's Example 3 (reachability queries answered by search), and
// the bitset Closure is the "precompute a matrix that records reachability
// between all pairs" preprocessing the same example describes.

// BFS returns the breadth-first visit order from src and the distance array
// (-1 for unreachable vertices).
func (g *Graph) BFS(src int) (order []int, dist []int) {
	g.Normalize()
	dist = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return order, dist
}

// Reachable answers one reachability query by BFS: O(|V|+|E|) per query.
func (g *Graph) Reachable(src, dst int) bool {
	if src == dst {
		return true
	}
	_, dist := g.BFS(src)
	return dist[dst] >= 0
}

// Closure is a dense all-pairs reachability index: bit i*n+j set iff j is
// reachable from i (reflexively). Building it is the PTIME preprocessing of
// Example 3; Reach is the O(1) answering step.
type Closure struct {
	n     int
	words int
	bits  []uint64
}

// NewClosure computes the reflexive-transitive closure with one bitset BFS
// per vertex in O(n·(n+m)/w) word operations.
func NewClosure(g *Graph) *Closure {
	g.Normalize()
	n := g.n
	words := (n + 63) / 64
	c := &Closure{n: n, words: words, bits: make([]uint64, n*words)}
	stack := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		row := c.bits[s*words : (s+1)*words]
		row[s/64] |= 1 << (s % 64)
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.adj[u] {
				w, b := int(v)/64, uint64(1)<<(int(v)%64)
				if row[w]&b == 0 {
					row[w] |= b
					stack = append(stack, v)
				}
			}
		}
	}
	return c
}

// Reach answers a reachability query in O(1).
func (c *Closure) Reach(u, v int) bool {
	return c.bits[u*c.words+v/64]&(1<<(v%64)) != 0
}

// N reports the vertex count.
func (c *Closure) N() int { return c.n }

// RowEqual reports whether vertices u and v reach exactly the same set.
func (c *Closure) RowEqual(u, v int) bool {
	ru := c.bits[u*c.words : (u+1)*c.words]
	rv := c.bits[v*c.words : (v+1)*c.words]
	for i := range ru {
		if ru[i] != rv[i] {
			return false
		}
	}
	return true
}

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative, so deep graphs do not overflow the goroutine stack). It
// returns the component id of every vertex and the number of components.
// Component ids are in reverse topological order of the condensation
// (Tarjan's natural output order).
func (g *Graph) SCC() (comp []int, count int) {
	g.Normalize()
	n := g.n
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	next := 0

	type frame struct {
		v    int32
		edge int
	}
	var call []frame
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		call = append(call[:0], frame{int32(root), 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.edge < len(g.adj[v]) {
				w := g.adj[v][f.edge]
				f.edge++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// Condense returns the condensation DAG of a directed graph: one vertex per
// SCC, an edge between components when any member edge crosses them. The
// comp array maps original vertices to condensation vertices.
func (g *Graph) Condense() (dag *Graph, comp []int) {
	comp, count := g.SCC()
	dag = New(count, true)
	seen := make(map[[2]int]bool)
	for u, l := range g.adj {
		for _, v := range l {
			cu, cv := comp[u], comp[int(v)]
			if cu != cv && !seen[[2]int{cu, cv}] {
				seen[[2]int{cu, cv}] = true
				dag.MustAddEdge(cu, cv)
			}
		}
	}
	dag.Normalize()
	return dag, comp
}

// ClosurePRAM computes the reflexive-transitive closure on the PRAM by
// repeated Boolean squaring, returning the closure and the machine so the
// caller can inspect the round count. It exists to demonstrate that the
// Example 3 preprocessing itself lies in NC.
func ClosurePRAM(g *Graph) (*pram.BoolMatrix, *pram.Machine) {
	m := pram.New(1)
	return pram.TransitiveClosure(m, g.AdjacencyMatrix()), m
}
