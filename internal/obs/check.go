package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition parses a Prometheus text-exposition payload and verifies
// format conformance: every line lexes, every sample is preceded by HELP and
// TYPE lines for its family, metric and label names are legal, label values
// use only the legal escapes, and every histogram series has cumulative
// non-decreasing buckets terminated by le="+Inf" whose value equals the
// series' _count. It exists so conformance tests and live smoke checks can
// validate /metrics without a Prometheus dependency.
func CheckExposition(data []byte) error {
	helped := map[string]bool{}
	typed := map[string]string{}

	type bucketState struct {
		lastLe  float64
		started bool
		infVal  int64
		sawInf  bool
		count   int64
		sawCnt  bool
		sawSum  bool
	}
	hists := map[string]*bucketState{}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseCommentLine(line)
			if !ok {
				continue // free-form comment
			}
			switch kind {
			case "HELP":
				helped[name] = true
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, rest, name)
				}
				typed[name] = rest
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if !helped[base] {
			return fmt.Errorf("line %d: sample %q has no preceding # HELP %s", lineNo, name, base)
		}
		t, ok := typed[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE %s", lineNo, name, base)
		}
		if t != "histogram" {
			continue
		}

		key := base + "\x00" + labelFingerprint(labels, "le")
		st := hists[key]
		if st == nil {
			st = &bucketState{}
			hists[key] = st
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %q missing le label", lineNo, name)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad le value %q: %v", lineNo, leStr, err)
			}
			if st.started && le <= st.lastLe {
				return fmt.Errorf("line %d: bucket bounds not increasing (%v after %v)", lineNo, le, st.lastLe)
			}
			cum := int64(value)
			if st.started && cum < st.infVal {
				return fmt.Errorf("line %d: bucket counts not cumulative (%d after %d)", lineNo, cum, st.infVal)
			}
			st.lastLe, st.infVal, st.started = le, cum, true
			if math.IsInf(le, +1) {
				st.sawInf = true
			}
		case strings.HasSuffix(name, "_count"):
			st.count, st.sawCnt = int64(value), true
		case strings.HasSuffix(name, "_sum"):
			st.sawSum = true
		default:
			return fmt.Errorf("line %d: bare sample %q inside histogram family %q", lineNo, name, base)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := hists[k]
		fam := k[:strings.IndexByte(k, 0)]
		if !st.sawInf {
			return fmt.Errorf("histogram %q: buckets not terminated by le=\"+Inf\"", fam)
		}
		if !st.sawCnt || !st.sawSum {
			return fmt.Errorf("histogram %q: missing _count or _sum series", fam)
		}
		if st.count != st.infVal {
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d", fam, st.infVal, st.count)
		}
	}
	return nil
}

// parseCommentLine splits "# HELP name text" / "# TYPE name kind" lines.
func parseCommentLine(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	if !validMetricName(fields[2]) {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSampleLine lexes one `name{labels} value` line.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		rest, err = parseLabelSet(rest[1:], labels)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	// Tolerate an optional trailing timestamp.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		if _, terr := strconv.ParseInt(rest[sp+1:], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("trailing garbage %q", rest[sp+1:])
		}
		rest = rest[:sp]
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	return name, labels, value, nil
}

// parseLabelSet consumes `key="value",...}` (the input starts just past the
// opening brace) and returns what follows the closing brace. Label values
// must use only the legal escapes: \\, \", \n.
func parseLabelSet(s string, out map[string]string) (rest string, err error) {
	for {
		if s == "" {
			return "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return "", fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return "", fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("unterminated value for label %q", key)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("illegal escape \\%c in label %q", s[1], key)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		out[key] = val.String()
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
		default:
			return "", fmt.Errorf("expected ',' or '}' after label %q", key)
		}
	}
}

// labelFingerprint canonicalizes a label map, skipping one excluded key.
func labelFingerprint(labels map[string]string, except string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == except {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(labels[k])
		b.WriteByte(0)
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
