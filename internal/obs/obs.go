// Package obs is pitract's dependency-free observability core: lock-free
// log-bucketed latency histograms, named counters and gauges, and a registry
// that renders the Prometheus text exposition format.
//
// Every metric is a fixed set of atomics — recording is a handful of atomic
// adds with no allocation, no locks, and no time-source reads beyond the two
// the caller makes, so instrumentation can stay on the serve hot path. The
// whole package can be switched off at runtime with SetEnabled(false), which
// turns every Observe/Add into a single atomic load; harness experiment X8
// uses that switch to measure the instrumented-vs-uninstrumented overhead.
//
// Typical hot-path usage pairs Start with Histogram.Since so a disabled
// process pays neither the clock reads nor the atomic writes:
//
//	start := obs.Start() // zero Time when disabled
//	... stage work ...
//	hist.Since(start) // no-op when start is zero
package obs

import (
	"sync/atomic"
	"time"
)

// disabled is the package-wide kill switch. The zero value means enabled, so
// an importing process is instrumented by default with no init required.
var disabled atomic.Bool

// SetEnabled turns metric recording on or off process-wide. Disabling does
// not clear previously recorded values; it only stops new observations.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether metric recording is currently on.
func Enabled() bool { return !disabled.Load() }

// Start returns the current time when metric recording is enabled and the
// zero Time otherwise. Pair it with Histogram.Since: when recording is off
// the caller skips both clock reads and the histogram write entirely.
func Start() time.Time {
	if disabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Label is one metric dimension, e.g. {Key: "stage", Value: "preprocess"}.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing named value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter. It is a no-op when recording is disabled or the
// receiver is nil, so call sites never need their own guard.
func (c *Counter) Add(n int64) {
	if c == nil || disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current counter value.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named value that can go up and down. A gauge created with
// Registry.GaugeFunc reads its value from a callback at render time instead,
// which keeps hot paths free of bookkeeping for values that already exist
// elsewhere (e.g. an in-flight count the admission envelope maintains).
type Gauge struct {
	v  atomic.Int64
	fn func() int64
}

// Set stores n as the gauge value. No-op for callback gauges.
func (g *Gauge) Set(n int64) {
	if g == nil || g.fn != nil || disabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add adds n (which may be negative) to the gauge. No-op for callback gauges.
func (g *Gauge) Add(n int64) {
	if g == nil || g.fn != nil || disabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value, consulting the callback if set.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}
