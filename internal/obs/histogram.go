package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are powers of two spanning 2^7 ns (128ns) through
// 2^33 ns (~8.6s) — the full useful range from a prepared in-memory probe
// to a worst-case registration budget — plus one overflow (+Inf) bucket.
// The layout is fixed at compile time so recording is a single shifted
// bits.Len64 and three atomic adds: lock-free, allocation-free, mergeable.
const (
	minExp         = 7  // smallest finite bound: 2^7 ns = 128ns
	maxExp         = 33 // largest finite bound: 2^33 ns ≈ 8.59s
	numFinite      = maxExp - minExp + 1
	NumBuckets     = numFinite + 1 // trailing overflow bucket renders as le="+Inf"
	maxFiniteBound = time.Duration(1) << maxExp
)

// BucketBound returns the inclusive upper bound of finite bucket i.
// For the overflow bucket (i == NumBuckets-1) it returns the largest finite
// bound; exposition renders that bucket as le="+Inf".
func BucketBound(i int) time.Duration {
	if i >= numFinite {
		return maxFiniteBound
	}
	return time.Duration(1) << (minExp + i)
}

// bucketIndex maps a non-negative duration in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1<<minExp {
		return 0
	}
	idx := bits.Len64(uint64(ns-1)) - minExp
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// Histogram is a lock-free latency histogram with log-spaced buckets.
// All methods are safe for concurrent use.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration. It is a no-op when recording is disabled or
// the receiver is nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || disabled.Load() {
		return
	}
	h.record(d)
}

// Since records the elapsed time from start, skipping the clock read and the
// write entirely when start is the zero Time (the disabled-mode value
// returned by Start).
func (h *Histogram) Since(start time.Time) {
	if h == nil || start.IsZero() || disabled.Load() {
		return
	}
	h.record(time.Since(start))
}

func (h *Histogram) record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Snapshot returns a point-in-time copy of the histogram. Buckets are read
// individually without a global lock, so a snapshot taken during concurrent
// recording may be mid-update by a handful of observations; totals remain
// internally consistent enough for percentile estimation and exposition
// (count is read last so it never undercounts the buckets).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	s.Count = h.count.Load()
	return s
}

// HistogramSnapshot is a mergeable copy of a Histogram's state.
type HistogramSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	SumNs   int64
}

// Merge adds the other snapshot into s, bucket by bucket.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
}

// Mean returns the arithmetic mean of all recorded durations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by walking the cumulative
// bucket counts and interpolating linearly inside the target bucket. Values
// that landed in the overflow bucket report the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if rank <= cum+float64(n) {
			if i >= numFinite {
				return maxFiniteBound
			}
			hi := float64(int64(1) << (minExp + i))
			lo := 0.0
			if i > 0 {
				lo = float64(int64(1) << (minExp + i - 1))
			}
			frac := (rank - cum) / float64(n)
			return time.Duration(lo + frac*(hi-lo))
		}
		cum += float64(n)
	}
	return maxFiniteBound
}
