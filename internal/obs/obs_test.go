package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{128, 0},                 // 2^7: top of the first bucket
		{129, 1},                 // first value past 2^7
		{256, 1},                 // 2^8
		{1 << 20, 13},            // 1MiB ns ≈ 1ms
		{1 << 33, numFinite - 1}, // top finite bound
		{1<<33 + 1, NumBuckets - 1},
		{1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond) // bucket 0
	h.Observe(200 * time.Nanosecond) // bucket 1
	h.Observe(time.Millisecond)      // bucket 13
	h.Observe(-time.Second)          // clamped to 0 → bucket 0

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	wantSum := int64(100 + 200 + 1e6)
	if s.SumNs != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNs, wantSum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[13] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets)
	}
	if got := s.Mean(); got != time.Duration(wantSum/4) {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram should report 0")
	}

	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond) // all in one bucket: (2^19, 2^20] ns
	}
	s := h.Snapshot()
	lo, hi := time.Duration(1<<19), time.Duration(1<<20)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		v := s.Quantile(q)
		if v <= lo || v > hi {
			t.Fatalf("q%.3f = %v outside bucket (%v, %v]", q, v, lo, hi)
		}
	}
	if !(s.Quantile(0.5) <= s.Quantile(0.9) && s.Quantile(0.9) <= s.Quantile(0.99) &&
		s.Quantile(0.99) <= s.Quantile(0.999)) {
		t.Fatal("quantiles not monotone")
	}

	var over Histogram
	over.Observe(time.Minute) // overflow bucket
	if got := over.Snapshot().Quantile(0.5); got != maxFiniteBound {
		t.Fatalf("overflow quantile = %v, want %v", got, maxFiniteBound)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Millisecond)

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if sa.SumNs != int64(1e3+2e6) {
		t.Fatalf("merged sum = %d", sa.SumNs)
	}
	if sa.Buckets[13] != 2 {
		t.Fatalf("merged buckets: %v", sa.Buckets)
	}
}

func TestSetEnabledKillSwitch(t *testing.T) {
	defer SetEnabled(true)

	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() should be false")
	}
	if !Start().IsZero() {
		t.Fatal("Start() should return zero time when disabled")
	}
	var h Histogram
	h.Observe(time.Second)
	h.Since(time.Now().Add(-time.Second))
	var c Counter
	c.Inc()
	var g Gauge
	g.Set(7)
	g.Add(3)
	if h.Snapshot().Count != 0 || c.Value() != 0 || g.Value() != 0 {
		t.Fatal("disabled metrics must not record")
	}

	SetEnabled(true)
	h.Since(Start())
	c.Inc()
	if h.Snapshot().Count != 1 || c.Value() != 1 {
		t.Fatal("re-enabled metrics must record again")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("x_seconds", "help", Label{"stage", "a"})
	h2 := r.Histogram("x_seconds", "ignored on re-lookup", Label{"stage", "a"})
	if h1 != h2 {
		t.Fatal("same name+labels must return the same histogram")
	}
	if h3 := r.Histogram("x_seconds", "help", Label{"stage", "b"}); h3 == h1 {
		t.Fatal("different labels must return a different histogram")
	}
	// Label order must not matter.
	c1 := r.Counter("y_total", "h", Label{"a", "1"}, Label{"b", "2"})
	c2 := r.Counter("y_total", "h", Label{"b", "2"}, Label{"a", "1"})
	if c1 != c2 {
		t.Fatal("label order must not create a new series")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Counter("x_seconds", "help")
}

func TestStageHelpers(t *testing.T) {
	if Stage(StagePreprocess) != Stage(StagePreprocess) {
		t.Fatal("Stage must be idempotent")
	}
	if AnswerHistogram("s") != AnswerHistogram("s") {
		t.Fatal("AnswerHistogram must be idempotent")
	}
	if Stage(StagePreprocess) == Stage(StageWarm) {
		t.Fatal("distinct stages must be distinct series")
	}
}

func TestWritePrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Total requests.").Add(5)
	r.Counter("t_requests_total", "Total requests.", Label{"endpoint", "/v1/query"}).Add(2)
	r.Gauge("t_in_flight", "In-flight requests.").Set(3)
	r.GaugeFunc("t_goroutines", "Callback-valued gauge.", func() int64 { return 42 })
	h := r.Histogram("t_latency_seconds", "Latency with tricky labels.",
		Label{"path", `a\b"c` + "\n" + "d"})
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Minute) // overflow
	r.Histogram("t_latency_seconds", "Latency with tricky labels.", Label{"path", "plain"}).
		Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := CheckExposition([]byte(out)); err != nil {
		t.Fatalf("exposition not conformant: %v\n%s", err, out)
	}

	for _, want := range []string{
		"# HELP t_requests_total Total requests.\n",
		"# TYPE t_requests_total counter\n",
		"t_requests_total 5\n",
		`t_requests_total{endpoint="/v1/query"} 2` + "\n",
		"# TYPE t_latency_seconds histogram\n",
		`path="a\\b\"c\nd"`,
		`le="+Inf"`,
		"t_goroutines 42\n",
		"t_in_flight 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE t_latency_seconds histogram") != 1 {
		t.Error("TYPE line must appear once per family")
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE": "# HELP x h\nx 1\n",
		"no HELP": "# TYPE x counter\nx 1\n",
		"bad escape": "# HELP x h\n# TYPE x counter\n" +
			`x{a="\q"} 1` + "\n",
		"bad value": "# HELP x h\n# TYPE x counter\nx one\n",
		"non-cumulative buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"unterminated labels": "# HELP x h\n# TYPE x counter\n" +
			`x{a="1" 1` + "\n",
	}
	for name, payload := range cases {
		if err := CheckExposition([]byte(payload)); err == nil {
			t.Errorf("%s: CheckExposition accepted malformed payload", name)
		}
	}
	good := "# HELP h h\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1.5\nh_count 5\n"
	if err := CheckExposition([]byte(good)); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}
