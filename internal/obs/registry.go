package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance inside a family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups all series sharing a metric name, kind, and help text.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition format. Lookups are get-or-create and idempotent: asking twice
// for the same name + labels returns the same metric, so packages can keep
// package-level metric variables while tests construct servers freely.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry that GET /metrics renders.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String(), sorted
}

func (f *family) get(labels []Label) *series {
	key, sorted := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sorted}
		switch f.kind {
		case counterKind:
			s.counter = &Counter{}
		case gaugeKind:
			s.gauge = &Gauge{}
		case histogramKind:
			s.hist = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name + labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, counterKind).get(labels).counter
}

// Gauge returns the gauge for name + labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, gaugeKind).get(labels).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
// Re-registering the same name + labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.family(name, help, gaugeKind).get(labels)
	s.gauge.fn = fn
}

// Histogram returns the histogram for name + labels, creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.family(name, help, histogramKind).get(labels).hist
}

// SeriesSnapshot pairs one histogram series' labels with its snapshot.
type SeriesSnapshot struct {
	Labels   []Label
	Snapshot HistogramSnapshot
}

// HistogramSeries returns a snapshot of every series in the named histogram
// family, sorted by label set. It returns nil if the family does not exist
// or is not a histogram.
func (r *Registry) HistogramSeries(name string) []SeriesSnapshot {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind != histogramKind {
		return nil
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SeriesSnapshot, 0, len(keys))
	for _, k := range keys {
		s := f.series[k]
		out = append(out, SeriesSnapshot{Labels: s.labels, Snapshot: s.hist.Snapshot()})
	}
	f.mu.Unlock()
	return out
}

// escapeLabelValue applies the exposition-format label escapes:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels formats a sorted label set, optionally appending extra
// (used for histogram le labels). Returns "" for an empty set.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus renders every family in the registry as Prometheus text
// exposition format (version 0.0.4): HELP and TYPE lines per family,
// cumulative +Inf-terminated buckets with bounds in seconds for histograms,
// families and series in deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make([]*series, 0, len(keys))
		for _, k := range keys {
			ordered = append(ordered, f.series[k])
		}
		f.mu.Unlock()

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ordered {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.counter.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.gauge.Value())
			case histogramKind:
				snap := s.hist.Snapshot()
				var cum int64
				for i := 0; i < NumBuckets; i++ {
					cum += snap.Buckets[i]
					le := "+Inf"
					if i < numFinite {
						le = formatSeconds(int64(BucketBound(i)))
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, renderLabels(s.labels, Label{"le", le}), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatSeconds(snap.SumNs))
				// _count is the cumulative bucket sum, not snap.Count: the
				// buckets and the count are read at slightly different
				// instants under concurrent recording, and the exposition
				// format requires the +Inf bucket to equal the count.
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(s.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
