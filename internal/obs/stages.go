package obs

// Family names rendered by the Default registry. Every serve-path stage
// records into one histogram family keyed by a stage label; per-scheme
// answer latency gets its own family keyed by scheme so /v1/stats can
// report percentiles next to the existing per-scheme totals.
const (
	StageFamily  = "pitract_stage_duration_seconds"
	AnswerFamily = "pitract_answer_duration_seconds"
)

// Stage label values. One constant per instrumented serve-path stage; the
// instrumenting packages hold the returned *Histogram in package-level vars
// so the registry lookup happens once per process, not per request.
const (
	StageAdmission    = "admission"     // envelope admission wait + decision
	StageCacheHit     = "cache_hit"     // answer served from the version-keyed cache (incl. coalesced waits)
	StageCacheMiss    = "cache_miss"    // cache miss: underlying answer computed and inserted
	StageShardFanout  = "shard_fanout"  // cross-shard fan-out of one query to every shard store
	StageShardMerge   = "shard_merge"   // scheme-specific merge of per-shard verdicts
	StagePreprocess   = "preprocess"    // scheme Preprocess during registration or rebuild
	StageSnapshotLoad = "snapshot_load" // reading + verifying a Π snapshot from disk
	StageSnapshotSave = "snapshot_save" // atomic snapshot write (including fsync)
	StageWarm         = "warm"          // decoding Π into its prepared in-memory form
	StagePatchApply   = "patch_apply"   // incremental ApplyDelta over a PATCH batch
	StagePatchPersist = "patch_persist" // checkpointing the maintained Π after a PATCH
	StageLogAppend    = "log_append"    // CRC-framed delta-log append + fsync (the PATCH commit point)
	StageLogReplay    = "log_replay"    // replaying the delta-log tail over a loaded snapshot at open
	StageProbeDense   = "probe_dense"   // reachability answered by the dense closure-matrix scheme
	StageProbeLabel   = "probe_label"   // reachability answered by the succinct 2-hop labels scheme
)

// Stage returns the Default-registry histogram for one serve-path stage.
func Stage(name string) *Histogram {
	return Default.Histogram(StageFamily,
		"Latency of each internal serve-path stage, labeled by stage.",
		Label{Key: "stage", Value: name})
}

// AnswerHistogram returns the Default-registry per-scheme answer-latency
// histogram feeding the /v1/stats percentile columns.
func AnswerHistogram(scheme string) *Histogram {
	return Default.Histogram(AnswerFamily,
		"End-to-end answer latency of the query handlers, labeled by scheme.",
		Label{Key: "scheme", Value: scheme})
}
