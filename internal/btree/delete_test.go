package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkInvariants walks the tree verifying ordering, fill floors and leaf
// chain consistency.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(n node, depth int, isRoot bool) (min, max int64, leaves int)
	leafDepth := -1
	walk = func(n node, depth int, isRoot bool) (int64, int64, int) {
		switch n := n.(type) {
		case *leafNode:
			if leafDepth < 0 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaves at depths %d and %d", leafDepth, depth)
			}
			if !isRoot && len(n.keys) < minLeafKeys(tr.order) {
				t.Fatalf("leaf underfull: %d < %d", len(n.keys), minLeafKeys(tr.order))
			}
			for i := 1; i < len(n.keys); i++ {
				if n.keys[i-1] >= n.keys[i] {
					t.Fatalf("leaf keys unsorted: %v", n.keys)
				}
			}
			if len(n.keys) == 0 {
				return 0, 0, 1 // empty root leaf
			}
			return n.keys[0], n.keys[len(n.keys)-1], 1
		case *innerNode:
			if !isRoot && len(n.children) < minChildren(tr.order) {
				t.Fatalf("inner underfull: %d < %d", len(n.children), minChildren(tr.order))
			}
			if len(n.children) != len(n.keys)+1 {
				t.Fatalf("inner shape broken: %d children, %d keys", len(n.children), len(n.keys))
			}
			var lo, hi int64
			leaves := 0
			for i, c := range n.children {
				cmin, cmax, cl := walk(c, depth+1, false)
				leaves += cl
				if i == 0 {
					lo = cmin
				} else {
					if cmin < n.keys[i-1] {
						t.Fatalf("child %d min %d below separator %d", i, cmin, n.keys[i-1])
					}
				}
				if i < len(n.keys) && cmax >= n.keys[i] {
					t.Fatalf("child %d max %d not below separator %d", i, cmax, n.keys[i])
				}
				hi = cmax
			}
			return lo, hi, leaves
		}
		t.Fatal("unknown node type")
		return 0, 0, 0
	}
	walk(tr.root, 0, true)
	// Leaf chain must enumerate exactly the sorted keys.
	keys := tr.Keys()
	if len(keys) != tr.Len() {
		t.Fatalf("chain has %d keys, counter says %d", len(keys), tr.Len())
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("chain unsorted: %v", keys)
	}
}

func TestDeleteSimple(t *testing.T) {
	tr := MustNew(4)
	for row, k := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		tr.Insert(k, row)
	}
	if !tr.Delete(4) {
		t.Fatal("existing key not deleted")
	}
	if tr.Delete(4) {
		t.Fatal("deleted key deleted again")
	}
	if tr.Delete(100) {
		t.Fatal("phantom key deleted")
	}
	if tr.Contains(4) {
		t.Fatal("deleted key still present")
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	checkInvariants(t, tr)
}

func TestDeleteDrainsTree(t *testing.T) {
	for _, order := range []int{3, 4, 8, 32} {
		tr := MustNew(order)
		n := 500
		perm := rand.New(rand.NewSource(int64(order))).Perm(n)
		for row, k := range perm {
			tr.Insert(int64(k), row)
		}
		drain := rand.New(rand.NewSource(int64(order) + 1)).Perm(n)
		for i, k := range drain {
			if !tr.Delete(int64(k)) {
				t.Fatalf("order %d: key %d missing at step %d", order, k, i)
			}
			if i%83 == 0 {
				checkInvariants(t, tr)
			}
		}
		if tr.Len() != 0 || tr.Postings() != 0 {
			t.Fatalf("order %d: tree not empty after drain: %d keys", order, tr.Len())
		}
		if tr.Height() != 1 {
			t.Fatalf("order %d: empty tree height %d", order, tr.Height())
		}
		checkInvariants(t, tr)
	}
}

func TestDeleteRemovesAllPostings(t *testing.T) {
	tr := MustNew(4)
	for row := 0; row < 5; row++ {
		tr.Insert(9, row)
	}
	tr.Insert(1, 99)
	if !tr.Delete(9) {
		t.Fatal("key not deleted")
	}
	if tr.Postings() != 1 || tr.Len() != 1 {
		t.Fatalf("Postings=%d Len=%d after posting-heavy delete", tr.Postings(), tr.Len())
	}
}

func TestInterleavedInsertDeleteAgainstModel(t *testing.T) {
	f := func(ops []int16, order8 uint8) bool {
		order := MinOrder + int(order8)%30
		tr := MustNew(order)
		model := map[int64][]int{}
		for row, op := range ops {
			k := int64(op % 64) // small key space: plenty of collisions
			if op%3 == 0 {
				deleted := tr.Delete(k)
				_, existed := model[k]
				if deleted != existed {
					return false
				}
				delete(model, k)
			} else {
				tr.Insert(k, row)
				model[k] = append(model[k], row)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, rows := range model {
			got := tr.Lookup(k)
			if len(got) != len(rows) {
				return false
			}
		}
		// Chain must equal the sorted model key set.
		want := make([]int64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := tr.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScanAfterHeavyDeletion(t *testing.T) {
	tr := MustNew(5)
	for k := int64(0); k < 1000; k++ {
		tr.Insert(k, int(k))
	}
	for k := int64(0); k < 1000; k += 2 { // delete evens
		tr.Delete(k)
	}
	checkInvariants(t, tr)
	var got []int64
	tr.AscendRange(100, 120, func(k int64, rows []int) bool {
		got = append(got, k)
		return true
	})
	want := []int64{101, 103, 105, 107, 109, 111, 113, 115, 117, 119}
	if len(got) != len(want) {
		t.Fatalf("range after deletion = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range after deletion = %v", got)
		}
	}
	if tr.RangeExists(100, 100) {
		t.Fatal("deleted key still found by range")
	}
}
