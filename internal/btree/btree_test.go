package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidatesOrder(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("order 2 accepted")
	}
	tr, err := New(3)
	if err != nil || tr.Order() != 3 {
		t.Errorf("order 3 rejected: %v", err)
	}
	if NewDefault().Order() != DefaultOrder {
		t.Error("NewDefault wrong order")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestInsertLookupSmall(t *testing.T) {
	tr := MustNew(4)
	keys := []int64{5, 3, 8, 1, 9, 7, 2, 6, 4, 0}
	for row, k := range keys {
		tr.Insert(k, row)
	}
	if tr.Len() != 10 || tr.Postings() != 10 {
		t.Fatalf("Len=%d Postings=%d, want 10,10", tr.Len(), tr.Postings())
	}
	for row, k := range keys {
		got := tr.Lookup(k)
		if len(got) != 1 || got[0] != row {
			t.Fatalf("Lookup(%d) = %v, want [%d]", k, got, row)
		}
	}
	if tr.Contains(42) {
		t.Error("phantom key")
	}
	if tr.Lookup(42) != nil {
		t.Error("phantom lookup")
	}
}

func TestDuplicateKeysAccumulateRows(t *testing.T) {
	tr := MustNew(4)
	for row := 0; row < 5; row++ {
		tr.Insert(7, row)
	}
	if tr.Len() != 1 || tr.Postings() != 5 {
		t.Fatalf("Len=%d Postings=%d, want 1,5", tr.Len(), tr.Postings())
	}
	if rows := tr.Lookup(7); len(rows) != 5 {
		t.Fatalf("Lookup(7) = %v", rows)
	}
}

// model-based property test: the tree must agree with a sorted-map model for
// membership, ordered key iteration, and range existence.
func TestAgainstModelQuick(t *testing.T) {
	f := func(raw []int16, order8 uint8) bool {
		order := MinOrder + int(order8)%62
		tr := MustNew(order)
		model := map[int64][]int{}
		for row, v := range raw {
			k := int64(v)
			tr.Insert(k, row)
			model[k] = append(model[k], row)
		}
		if tr.Len() != len(model) {
			return false
		}
		want := make([]int64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := tr.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		for k, rows := range model {
			g := tr.Lookup(k)
			if len(g) != len(rows) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionOrderInvariance(t *testing.T) {
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = int64(i * 3 % 101)
	}
	tr1 := MustNew(8)
	for row, k := range keys {
		tr1.Insert(k, row)
	}
	shuffled := append([]int64(nil), keys...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	tr2 := MustNew(8)
	for row, k := range shuffled {
		tr2.Insert(k, row)
	}
	k1, k2 := tr1.Keys(), tr2.Keys()
	if len(k1) != len(k2) {
		t.Fatalf("key counts differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("key order differs at %d", i)
		}
	}
}

func TestRangeExists(t *testing.T) {
	tr := MustNew(4)
	for row, k := range []int64{10, 20, 30, 40} {
		tr.Insert(k, row)
	}
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 9, false}, {0, 10, true}, {10, 10, true}, {11, 19, false},
		{15, 35, true}, {41, 99, false}, {40, 40, true}, {50, 10, false},
	}
	for _, c := range cases {
		if got := tr.RangeExists(c.lo, c.hi); got != c.want {
			t.Errorf("RangeExists(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := MustNew(4)
	for row := 0; row < 100; row++ {
		tr.Insert(int64(row*2), row) // even keys 0..198
	}
	var got []int64
	tr.AscendRange(10, 30, func(k int64, rows []int) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("AscendRange keys = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AscendRange keys = %v", got)
		}
	}
	// Early stop.
	count := 0
	tr.AscendRange(0, 198, func(int64, []int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
	// Inverted range visits nothing.
	tr.AscendRange(5, 1, func(int64, []int) bool {
		t.Fatal("inverted range visited a key")
		return false
	})
}

func TestHeightLogarithmic(t *testing.T) {
	for _, order := range []int{4, 16, 64} {
		tr := MustNew(order)
		n := 20000
		for row := 0; row < n; row++ {
			tr.Insert(int64(row), row)
		}
		// Height is at most log_{order/2}(n) + 2.
		bound := int(math.Ceil(math.Log(float64(n))/math.Log(float64(order)/2))) + 2
		if tr.Height() > bound {
			t.Errorf("order %d: height %d exceeds bound %d", order, tr.Height(), bound)
		}
	}
}

func TestProbesLogarithmic(t *testing.T) {
	tr := MustNew(8)
	n := 1 << 15
	for row := 0; row < n; row++ {
		tr.Insert(int64(row), row)
	}
	_, probes := tr.ContainsProbes(int64(n / 2))
	if probes != tr.Height() {
		t.Fatalf("probes %d != height %d", probes, tr.Height())
	}
	if probes > 16 {
		t.Fatalf("probes %d is not logarithmic for n=%d", probes, n)
	}
}

func TestBulk(t *testing.T) {
	tr, err := Bulk(8, []int64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, err := Bulk(1, nil); err == nil {
		t.Fatal("Bulk accepted bad order")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewDefault()
	if tr.Contains(0) || tr.Lookup(0) != nil || tr.RangeExists(0, 10) {
		t.Error("empty tree claims membership")
	}
	if got := tr.Keys(); len(got) != 0 {
		t.Errorf("Keys = %v", got)
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d", tr.Height())
	}
}
