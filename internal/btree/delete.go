package btree

import "sort"

// Deletion with standard B⁺-tree rebalancing: remove the key from its leaf,
// then repair underflow bottom-up by borrowing from a sibling or merging
// with it, collapsing the root when it degenerates to a single child. The
// tree keeps the leaf chain intact across merges, so range scans remain
// valid after any update sequence.

// minLeafKeys is the fill floor for non-root leaves.
func minLeafKeys(order int) int { return (order - 1) / 2 }

// minChildren is the fill floor for non-root interior nodes.
func minChildren(order int) int { return (order + 1) / 2 }

// Delete removes a key and all its postings. It reports whether the key
// was present.
func (t *Tree) Delete(key int64) bool {
	removed, postings := t.deleteIn(t.root, key)
	if !removed {
		return false
	}
	t.keys--
	t.rows -= postings
	// Collapse a degenerate root.
	if inner, ok := t.root.(*innerNode); ok && len(inner.children) == 1 {
		t.root = inner.children[0]
		t.height--
	}
	return true
}

// deleteIn removes key under n, repairing child underflow. It returns
// whether the key existed and how many postings it carried.
func (t *Tree) deleteIn(n node, key int64) (bool, int) {
	switch n := n.(type) {
	case *leafNode:
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i >= len(n.keys) || n.keys[i] != key {
			return false, 0
		}
		postings := len(n.rows[i])
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.rows = append(n.rows[:i], n.rows[i+1:]...)
		return true, postings
	case *innerNode:
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		removed, postings := t.deleteIn(n.children[i], key)
		if removed {
			t.repair(n, i)
		}
		return removed, postings
	}
	return false, 0
}

// underfull reports whether child violates its fill floor.
func (t *Tree) underfull(child node) bool {
	switch c := child.(type) {
	case *leafNode:
		return len(c.keys) < minLeafKeys(t.order)
	case *innerNode:
		return len(c.children) < minChildren(t.order)
	}
	return false
}

// repair fixes an underfull child i of parent by borrowing from an adjacent
// sibling when possible, merging otherwise.
func (t *Tree) repair(parent *innerNode, i int) {
	child := parent.children[i]
	if !t.underfull(child) {
		return
	}
	// Prefer borrowing from the left sibling, then the right; merge as the
	// last resort (left-into-right order keeps the leaf chain trivial).
	if i > 0 && t.canLend(parent.children[i-1]) {
		t.borrowFromLeft(parent, i)
		return
	}
	if i+1 < len(parent.children) && t.canLend(parent.children[i+1]) {
		t.borrowFromRight(parent, i)
		return
	}
	if i > 0 {
		t.merge(parent, i-1)
	} else {
		t.merge(parent, i)
	}
}

// canLend reports whether a sibling can give up one entry without
// underflowing itself.
func (t *Tree) canLend(sib node) bool {
	switch s := sib.(type) {
	case *leafNode:
		return len(s.keys) > minLeafKeys(t.order)
	case *innerNode:
		return len(s.children) > minChildren(t.order)
	}
	return false
}

func (t *Tree) borrowFromLeft(parent *innerNode, i int) {
	switch cur := parent.children[i].(type) {
	case *leafNode:
		left := parent.children[i-1].(*leafNode)
		last := len(left.keys) - 1
		cur.keys = append([]int64{left.keys[last]}, cur.keys...)
		cur.rows = append([][]int{left.rows[last]}, cur.rows...)
		left.keys = left.keys[:last]
		left.rows = left.rows[:last]
		parent.keys[i-1] = cur.keys[0]
	case *innerNode:
		left := parent.children[i-1].(*innerNode)
		lastK := len(left.keys) - 1
		lastC := len(left.children) - 1
		cur.keys = append([]int64{parent.keys[i-1]}, cur.keys...)
		cur.children = append([]node{left.children[lastC]}, cur.children...)
		parent.keys[i-1] = left.keys[lastK]
		left.keys = left.keys[:lastK]
		left.children = left.children[:lastC]
	}
}

func (t *Tree) borrowFromRight(parent *innerNode, i int) {
	switch cur := parent.children[i].(type) {
	case *leafNode:
		right := parent.children[i+1].(*leafNode)
		cur.keys = append(cur.keys, right.keys[0])
		cur.rows = append(cur.rows, right.rows[0])
		right.keys = right.keys[1:]
		right.rows = right.rows[1:]
		parent.keys[i] = right.keys[0]
	case *innerNode:
		right := parent.children[i+1].(*innerNode)
		cur.keys = append(cur.keys, parent.keys[i])
		cur.children = append(cur.children, right.children[0])
		parent.keys[i] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	}
}

// merge folds child i+1 of parent into child i and drops the separator.
func (t *Tree) merge(parent *innerNode, i int) {
	switch left := parent.children[i].(type) {
	case *leafNode:
		right := parent.children[i+1].(*leafNode)
		left.keys = append(left.keys, right.keys...)
		left.rows = append(left.rows, right.rows...)
		left.next = right.next
	case *innerNode:
		right := parent.children[i+1].(*innerNode)
		left.keys = append(left.keys, parent.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	parent.keys = append(parent.keys[:i], parent.keys[i+1:]...)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
}
