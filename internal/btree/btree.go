// Package btree implements an in-memory B⁺-tree over int64 keys.
//
// The tree is the preprocessing structure of the paper's Example 1: build it
// once in PTIME over the selection column, then answer point and range
// selection queries in O(log |D|) probes instead of scanning. Leaves are
// chained for ordered range iteration; every key maps to the list of row ids
// carrying it, so the tree also acts as a secondary index.
//
// The implementation counts node probes per lookup so that the experiment
// harness can demonstrate the logarithmic access path directly, rather than
// inferring it from wall-clock time alone.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of children per interior node.
const DefaultOrder = 64

// MinOrder is the smallest supported order; below 3 a B-tree degenerates.
const MinOrder = 3

// Tree is a B⁺-tree index from int64 keys to row ids.
//
// The zero value is not usable; construct trees with New.
type Tree struct {
	order  int
	root   node
	height int
	keys   int // number of distinct keys
	rows   int // number of (key, row) postings
}

type node interface {
	// insert adds key→row under this subtree. When the node overflows it
	// splits, returning the separator key and the new right sibling.
	// newKey reports whether the key was not previously present.
	insert(key int64, row int, order int) (sep int64, right node, split, newKey bool)
}

// leafNode stores sorted keys with their row-id postings and a next pointer
// forming the leaf chain.
type leafNode struct {
	keys []int64
	rows [][]int
	next *leafNode
}

// innerNode stores separator keys and child pointers;
// children[i] covers keys < keys[i]; children[len(keys)] covers the rest.
type innerNode struct {
	keys     []int64
	children []node
}

// New returns an empty tree of the given order (maximum children per
// interior node). Orders below MinOrder are an error.
func New(order int) (*Tree, error) {
	if order < MinOrder {
		return nil, fmt.Errorf("btree: order %d below minimum %d", order, MinOrder)
	}
	return &Tree{order: order, root: &leafNode{}, height: 1}, nil
}

// MustNew is New that panics on error.
func MustNew(order int) *Tree {
	t, err := New(order)
	if err != nil {
		panic(err)
	}
	return t
}

// NewDefault returns an empty tree with DefaultOrder.
func NewDefault() *Tree { return MustNew(DefaultOrder) }

// Order reports the configured order.
func (t *Tree) Order() int { return t.order }

// Len reports the number of distinct keys.
func (t *Tree) Len() int { return t.keys }

// Postings reports the total number of (key, row) pairs stored.
func (t *Tree) Postings() int { return t.rows }

// Height reports the current tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds a key→row posting.
func (t *Tree) Insert(key int64, row int) {
	sep, right, split, newKey := t.root.insert(key, row, t.order)
	if split {
		t.root = &innerNode{keys: []int64{sep}, children: []node{t.root, right}}
		t.height++
	}
	if newKey {
		t.keys++
	}
	t.rows++
}

func (l *leafNode) insert(key int64, row int, order int) (int64, node, bool, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		l.rows[i] = append(l.rows[i], row)
		return 0, nil, false, false
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.rows = append(l.rows, nil)
	copy(l.rows[i+1:], l.rows[i:])
	l.rows[i] = []int{row}
	if len(l.keys) < order {
		return 0, nil, false, true
	}
	// Split the leaf in half; the separator is the first key of the right
	// sibling (B⁺-tree convention: separators duplicate leaf keys).
	mid := len(l.keys) / 2
	right := &leafNode{
		keys: append([]int64(nil), l.keys[mid:]...),
		rows: append([][]int(nil), l.rows[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.rows = l.rows[:mid:mid]
	l.next = right
	return right.keys[0], right, true, true
}

func (n *innerNode) insert(key int64, row int, order int) (int64, node, bool, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	sep, right, split, newKey := n.children[i].insert(key, row, order)
	if !split {
		return 0, nil, false, newKey
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.children) <= order {
		return 0, nil, false, newKey
	}
	mid := len(n.keys) / 2
	up := n.keys[mid]
	rightNode := &innerNode{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return up, rightNode, true, newKey
}

// findLeaf descends to the leaf that would hold key, returning it together
// with the number of nodes probed on the way (root and leaf included).
func (t *Tree) findLeaf(key int64) (*leafNode, int) {
	probes := 0
	cur := t.root
	for {
		probes++
		switch n := cur.(type) {
		case *leafNode:
			return n, probes
		case *innerNode:
			i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
			cur = n.children[i]
		}
	}
}

// Contains reports whether key is present.
func (t *Tree) Contains(key int64) bool {
	ok, _ := t.ContainsProbes(key)
	return ok
}

// ContainsProbes reports presence together with the number of node probes
// used — the measurable stand-in for the paper's O(log |D|) access path.
func (t *Tree) ContainsProbes(key int64) (bool, int) {
	l, probes := t.findLeaf(key)
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	return i < len(l.keys) && l.keys[i] == key, probes
}

// Lookup returns the row ids posted under key (nil when absent). The
// returned slice aliases the index and must not be mutated.
func (t *Tree) Lookup(key int64) []int {
	l, _ := t.findLeaf(key)
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		return l.rows[i]
	}
	return nil
}

// RangeExists reports whether any key k with lo ≤ k ≤ hi is present —
// the Boolean range-selection query of §4(1).
func (t *Tree) RangeExists(lo, hi int64) bool {
	if hi < lo {
		return false
	}
	l, _ := t.findLeaf(lo)
	for ; l != nil; l = l.next {
		for _, k := range l.keys {
			if k > hi {
				return false
			}
			if k >= lo {
				return true
			}
		}
	}
	return false
}

// AscendRange calls fn for every (key, rows) with lo ≤ key ≤ hi in
// ascending order; fn returning false stops the scan.
func (t *Tree) AscendRange(lo, hi int64, fn func(key int64, rows []int) bool) {
	if hi < lo {
		return
	}
	l, _ := t.findLeaf(lo)
	for ; l != nil; l = l.next {
		for i, k := range l.keys {
			if k > hi {
				return
			}
			if k >= lo && !fn(k, l.rows[i]) {
				return
			}
		}
	}
}

// Keys returns all distinct keys in ascending order.
func (t *Tree) Keys() []int64 {
	out := make([]int64, 0, t.keys)
	l := t.leftmost()
	for ; l != nil; l = l.next {
		out = append(out, l.keys...)
	}
	return out
}

func (t *Tree) leftmost() *leafNode {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *leafNode:
			return n
		case *innerNode:
			cur = n.children[0]
		}
	}
}

// Bulk builds a tree of the given order from unsorted postings.
func Bulk(order int, keys []int64) (*Tree, error) {
	t, err := New(order)
	if err != nil {
		return nil, err
	}
	for row, k := range keys {
		t.Insert(k, row)
	}
	return t, nil
}
