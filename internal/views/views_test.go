package views

import (
	"errors"
	"testing"

	"pitract/internal/relation"
)

func sample() *relation.Relation {
	r := relation.New(relation.MustSchema("orders",
		relation.Attr{Name: "amount", Kind: relation.KindInt64},
		relation.Attr{Name: "note", Kind: relation.KindString},
	))
	for _, v := range []int64{5, 17, 23, 42, 77, 91} {
		r.MustAppend(relation.Tuple{relation.Int(v), relation.Str("x")})
	}
	return r
}

func TestMaterializeAndAnswerPoint(t *testing.T) {
	r := sample()
	s, err := Materialize(r, EvenPartition("amount", 0, 99, 4))
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 100; c++ {
		want, err := r.ScanPointSelect("amount", relation.Int(c))
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.AnswerPoint("amount", c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point %d: views %v, scan %v", c, got, want)
		}
	}
}

func TestAnswerRange(t *testing.T) {
	r := sample()
	// One wide view covers everything.
	s, err := Materialize(r, []Def{{Name: "all", Attr: "amount", Lo: 0, Hi: 99}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 4, false}, {0, 5, true}, {18, 22, false}, {18, 23, true}, {92, 99, false},
	}
	for _, c := range cases {
		got, err := s.AnswerRange("amount", c.lo, c.hi)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("range [%d,%d]: got %v want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestUncoveredQueriesFail(t *testing.T) {
	r := sample()
	s, err := Materialize(r, []Def{{Name: "low", Attr: "amount", Lo: 0, Hi: 49}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AnswerPoint("amount", 77); err == nil {
		t.Fatal("uncovered point answered")
	}
	var nv *ErrNoView
	_, err = s.AnswerRange("amount", 40, 60) // straddles the view boundary
	if !errors.As(err, &nv) {
		t.Fatalf("want ErrNoView, got %v", err)
	}
	if nv.Error() == "" {
		t.Error("empty error text")
	}
	if _, err := s.AnswerPoint("other", 1); err == nil {
		t.Fatal("unknown attribute answered")
	}
	// Point error text differs from range error text.
	_, perr := s.AnswerPoint("amount", 99)
	if perr == nil || perr.Error() == err.Error() {
		t.Error("point/range error rendering broken")
	}
}

func TestMaterializeValidation(t *testing.T) {
	r := sample()
	if _, err := Materialize(r, []Def{{Name: "v", Attr: "missing", Lo: 0, Hi: 1}}); err == nil {
		t.Error("missing attribute accepted")
	}
	if _, err := Materialize(r, []Def{{Name: "v", Attr: "note", Lo: 0, Hi: 1}}); err == nil {
		t.Error("string attribute accepted")
	}
	if _, err := Materialize(r, []Def{{Name: "v", Attr: "amount", Lo: 5, Hi: 1}}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestViewFootprintSmallerThanBase(t *testing.T) {
	r := relation.Generate(relation.GenConfig{Rows: 10000, Seed: 3, KeyMax: 1000})
	// Views over a narrow hot range only.
	s, err := Materialize(r, []Def{{Name: "hot", Attr: "key", Lo: 0, Hi: 49}})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRows() >= r.Len()/2 {
		t.Fatalf("view footprint %d not much smaller than base %d", s.TotalRows(), r.Len())
	}
	if len(s.Views()) != 1 || s.Views()[0].Rows != s.TotalRows() {
		t.Fatal("view accounting inconsistent")
	}
}

func TestEvenPartitionCoversWithoutGaps(t *testing.T) {
	defs := EvenPartition("k", 0, 1000, 7)
	if len(defs) != 7 {
		t.Fatalf("got %d views", len(defs))
	}
	if defs[0].Lo != 0 || defs[6].Hi != 1000 {
		t.Fatalf("partition bounds wrong: %+v", defs)
	}
	for i := 1; i < len(defs); i++ {
		if defs[i].Lo != defs[i-1].Hi+1 {
			t.Fatalf("gap or overlap between views %d and %d", i-1, i)
		}
	}
	if got := EvenPartition("k", 0, 10, 0); len(got) != 1 {
		t.Fatal("k<1 not clamped")
	}
}
