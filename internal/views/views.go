// Package views implements query answering using views, the paper's §4(6)
// strategy: materialize a set V of views over a database D in PTIME (the
// preprocessing), then answer queries by rewriting them over the view
// extensions V(D) only — never touching the original, big D. When the
// rewritten query runs in parallel polylog time on the views, the query
// class is Π-tractable.
//
// The concrete query class here is the paper's running example: Boolean
// point and range selections on a relation (Q1 of Example 1 and §4(1)).
// Views are range partitions σ_{lo ≤ A ≤ hi}(R), each materialized with its
// own B⁺-tree, so the rewritten query is an index probe on a structure much
// smaller than D.
package views

import (
	"fmt"

	"pitract/internal/btree"
	"pitract/internal/relation"
)

// Def is a view definition: the rows of R whose attr value lies in
// [Lo, Hi].
type Def struct {
	Name string
	Attr string
	Lo   int64
	Hi   int64
}

// Covers reports whether the view can answer a point query attr = c.
func (d Def) Covers(attr string, c int64) bool {
	return d.Attr == attr && d.Lo <= c && c <= d.Hi
}

// CoversRange reports whether the view can answer a range query
// lo ≤ attr ≤ hi.
func (d Def) CoversRange(attr string, lo, hi int64) bool {
	return d.Attr == attr && d.Lo <= lo && hi <= d.Hi
}

// Materialized is one view extension: the matching rows plus an index.
type Materialized struct {
	Def  Def
	Rows int
	idx  *btree.Tree
}

// Set is a collection of materialized views over one relation — the
// preprocessed structure Π(D).
type Set struct {
	views []*Materialized
}

// Materialize builds the extensions of the given definitions over r in one
// PTIME pass per view. Definitions over missing or non-integer attributes
// are rejected.
func Materialize(r *relation.Relation, defs []Def) (*Set, error) {
	s := &Set{}
	for _, def := range defs {
		idx := r.Schema.AttrIndex(def.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("views: %s: relation %q has no attribute %q", def.Name, r.Schema.Name, def.Attr)
		}
		if r.Schema.Attrs[idx].Kind != relation.KindInt64 {
			return nil, fmt.Errorf("views: %s: attribute %q is not int64", def.Name, def.Attr)
		}
		if def.Hi < def.Lo {
			return nil, fmt.Errorf("views: %s: empty range [%d,%d]", def.Name, def.Lo, def.Hi)
		}
		m := &Materialized{Def: def, idx: btree.NewDefault()}
		for row, t := range r.Tuples {
			v := t[idx].I
			if def.Lo <= v && v <= def.Hi {
				m.idx.Insert(v, row)
				m.Rows++
			}
		}
		s.views = append(s.views, m)
	}
	return s, nil
}

// ErrNoView reports that no materialized view covers a query; per the
// paper this means the query cannot be answered using the views and would
// need the original D.
type ErrNoView struct {
	Attr string
	Lo   int64
	Hi   int64
}

// Error implements error.
func (e *ErrNoView) Error() string {
	if e.Lo == e.Hi {
		return fmt.Sprintf("views: no view covers point %s = %d", e.Attr, e.Lo)
	}
	return fmt.Sprintf("views: no view covers range %d ≤ %s ≤ %d", e.Lo, e.Attr, e.Hi)
}

// AnswerPoint rewrites the Boolean point selection "∃t: t[attr] = c" over
// the first covering view and answers it with an O(log |V(D)|) index probe.
func (s *Set) AnswerPoint(attr string, c int64) (bool, error) {
	for _, m := range s.views {
		if m.Def.Covers(attr, c) {
			return m.idx.Contains(c), nil
		}
	}
	return false, &ErrNoView{Attr: attr, Lo: c, Hi: c}
}

// AnswerRange rewrites the Boolean range selection over a covering view.
func (s *Set) AnswerRange(attr string, lo, hi int64) (bool, error) {
	for _, m := range s.views {
		if m.Def.CoversRange(attr, lo, hi) {
			return m.idx.RangeExists(lo, hi), nil
		}
	}
	return false, &ErrNoView{Attr: attr, Lo: lo, Hi: hi}
}

// Views lists the materialized views.
func (s *Set) Views() []*Materialized { return s.views }

// TotalRows reports the summed extension sizes |V(D)|, the footprint the
// paper contrasts with |D| ("in practice V(D) is often much smaller than
// D").
func (s *Set) TotalRows() int {
	total := 0
	for _, m := range s.views {
		total += m.Rows
	}
	return total
}

// EvenPartition returns k contiguous range views splitting [lo, hi] —
// a convenient workload-shaped view set.
func EvenPartition(attr string, lo, hi int64, k int) []Def {
	if k < 1 {
		k = 1
	}
	defs := make([]Def, 0, k)
	span := hi - lo + 1
	for i := 0; i < k; i++ {
		vlo := lo + span*int64(i)/int64(k)
		vhi := lo + span*int64(i+1)/int64(k) - 1
		if i == k-1 {
			vhi = hi
		}
		defs = append(defs, Def{
			Name: fmt.Sprintf("%s_part_%d", attr, i),
			Attr: attr, Lo: vlo, Hi: vhi,
		})
	}
	return defs
}
