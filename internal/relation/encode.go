package relation

// Deterministic, self-delimiting byte encoding for relations.
//
// The paper models databases and queries as strings over a finite alphabet
// Σ "with necessary delimiters". This codec makes that concrete: encode a
// relation to bytes, decode it back, and round-trip exactly. The framework
// package (internal/core) moves relations across the data/query boundary of
// factorizations in this form.

import (
	"encoding/binary"
	"fmt"
)

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	if v.Kind == KindInt64 {
		return binary.AppendVarint(dst, v.I)
	}
	return appendString(dst, v.S)
}

// Encode serializes the relation, schema included, into a self-delimiting
// byte string.
func (r *Relation) Encode() []byte {
	var b []byte
	b = appendString(b, r.Schema.Name)
	b = appendUvarint(b, uint64(len(r.Schema.Attrs)))
	for _, a := range r.Schema.Attrs {
		b = appendString(b, a.Name)
		b = append(b, byte(a.Kind))
	}
	b = appendUvarint(b, uint64(len(r.Tuples)))
	for _, t := range r.Tuples {
		for _, v := range t {
			b = appendValue(b, v)
		}
	}
	return b
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("relation: corrupt uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("relation: corrupt varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("relation: truncated input at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", fmt.Errorf("relation: string of length %d overruns input", n)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) value() (Value, error) {
	kb, err := d.byte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(kb) {
	case KindInt64:
		i, err := d.varint()
		if err != nil {
			return Value{}, err
		}
		return Int(i), nil
	case KindString:
		s, err := d.str()
		if err != nil {
			return Value{}, err
		}
		return Str(s), nil
	default:
		return Value{}, fmt.Errorf("relation: unknown value kind %d", kb)
	}
}

// Decode parses a byte string produced by Encode.
func Decode(buf []byte) (*Relation, error) {
	d := &decoder{buf: buf}
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	nattrs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each attribute costs at least two bytes (name + kind), so bound the
	// count by the remaining buffer before allocating — this decoder sees
	// attacker-controlled bytes on the serve path.
	if nattrs > uint64(len(buf)-d.off)/2 {
		return nil, fmt.Errorf("relation: attribute count %d exceeds remaining %d bytes", nattrs, len(buf)-d.off)
	}
	attrs := make([]Attr, 0, nattrs)
	for i := uint64(0); i < nattrs; i++ {
		an, err := d.str()
		if err != nil {
			return nil, err
		}
		kb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if Kind(kb) != KindInt64 && Kind(kb) != KindString {
			return nil, fmt.Errorf("relation: unknown attribute kind %d", kb)
		}
		attrs = append(attrs, Attr{Name: an, Kind: Kind(kb)})
	}
	schema, err := NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	ntuples, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every tuple costs at least one byte per attribute; bounding by the
	// remaining buffer also rejects a hostile huge count on a zero-attr
	// schema, which would otherwise loop (and allocate) byte-free.
	if ntuples > uint64(len(buf)-d.off) {
		return nil, fmt.Errorf("relation: tuple count %d exceeds remaining %d bytes", ntuples, len(buf)-d.off)
	}
	for i := uint64(0); i < ntuples; i++ {
		t := make(Tuple, len(attrs))
		for j := range t {
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			t[j] = v
		}
		if err := rel.Append(t); err != nil {
			return nil, err
		}
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("relation: %d trailing bytes after relation", len(buf)-d.off)
	}
	return rel, nil
}
