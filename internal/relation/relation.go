// Package relation implements the relational substrate used by the paper's
// motivating examples: schemas, tuples, relations, Boolean selection
// queries, and a deterministic byte encoding that plays the role of the
// paper's Σ* strings ("a database can be encoded as a string D ∈ Σ*").
//
// The package deliberately covers only what the paper exercises — point and
// range selections on attributes (Example 1, Example 3, §4(1)) — but covers
// it at production quality: typed schemas, validation, deterministic
// encode/decode, and seeded workload generation.
package relation

import (
	"fmt"
	"math/rand"
	"sort"
)

// Kind enumerates supported attribute types.
type Kind int

const (
	// KindInt64 is a 64-bit signed integer attribute.
	KindInt64 Kind = iota
	// KindString is a byte-string attribute.
	KindString
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attr is one attribute of a schema.
type Attr struct {
	Name string
	Kind Kind
}

// Schema describes a relation: a name plus an ordered attribute list.
type Schema struct {
	Name  string
	Attrs []Attr
}

// NewSchema validates and returns a schema. Attribute names must be
// non-empty and unique.
func NewSchema(name string, attrs ...Attr) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema name must be non-empty")
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %q has an unnamed attribute", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("relation: schema %q repeats attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	return &Schema{Name: name, Attrs: attrs}, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(name string, attrs ...Attr) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Value is a dynamically typed attribute value.
type Value struct {
	Kind Kind
	I    int64
	S    string
}

// Int returns an int64 value.
func Int(v int64) Value { return Value{Kind: KindInt64, I: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(w Value) bool {
	return v.Kind == w.Kind && v.I == w.I && v.S == w.S
}

// Less orders values of the same kind (ints numerically, strings
// lexicographically). Comparing across kinds orders ints before strings so
// that sorting mixed columns is still total.
func (v Value) Less(w Value) bool {
	if v.Kind != w.Kind {
		return v.Kind < w.Kind
	}
	if v.Kind == KindInt64 {
		return v.I < w.I
	}
	return v.S < w.S
}

// String renders the value.
func (v Value) String() string {
	if v.Kind == KindInt64 {
		return fmt.Sprintf("%d", v.I)
	}
	return fmt.Sprintf("%q", v.S)
}

// Tuple is an ordered list of values matching a schema.
type Tuple []Value

// Relation is an instance of a schema: a bag of tuples.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// New returns an empty relation over the schema.
func New(s *Schema) *Relation { return &Relation{Schema: s} }

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append validates a tuple against the schema and adds it.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Schema.Attrs) {
		return fmt.Errorf("relation %q: tuple arity %d, schema arity %d",
			r.Schema.Name, len(t), len(r.Schema.Attrs))
	}
	for i, v := range t {
		if v.Kind != r.Schema.Attrs[i].Kind {
			return fmt.Errorf("relation %q: attribute %q expects %v, got %v",
				r.Schema.Name, r.Schema.Attrs[i].Name, r.Schema.Attrs[i].Kind, v.Kind)
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics on error, for test fixtures.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Column returns a copy of the values in the named attribute.
func (r *Relation) Column(attr string) ([]Value, error) {
	idx := r.Schema.AttrIndex(attr)
	if idx < 0 {
		return nil, fmt.Errorf("relation %q: no attribute %q", r.Schema.Name, attr)
	}
	out := make([]Value, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t[idx]
	}
	return out, nil
}

// ScanPointSelect answers the paper's Q1 by a full scan: does some tuple t
// have t[attr] = c? This is the no-preprocessing baseline of Example 1.
func (r *Relation) ScanPointSelect(attr string, c Value) (bool, error) {
	idx := r.Schema.AttrIndex(attr)
	if idx < 0 {
		return false, fmt.Errorf("relation %q: no attribute %q", r.Schema.Name, attr)
	}
	for _, t := range r.Tuples {
		if t[idx].Equal(c) {
			return true, nil
		}
	}
	return false, nil
}

// ScanRangeSelect answers the §4(1) Boolean range query by a full scan:
// does some tuple t satisfy lo ≤ t[attr] ≤ hi?
func (r *Relation) ScanRangeSelect(attr string, lo, hi Value) (bool, error) {
	idx := r.Schema.AttrIndex(attr)
	if idx < 0 {
		return false, fmt.Errorf("relation %q: no attribute %q", r.Schema.Name, attr)
	}
	for _, t := range r.Tuples {
		v := t[idx]
		if !v.Less(lo) && !hi.Less(v) {
			return true, nil
		}
	}
	return false, nil
}

// SortedInts returns the ascending, deduplicated int64 values of attr; it
// is the preprocessing step for binary-search answering.
func (r *Relation) SortedInts(attr string) ([]int64, error) {
	idx := r.Schema.AttrIndex(attr)
	if idx < 0 {
		return nil, fmt.Errorf("relation %q: no attribute %q", r.Schema.Name, attr)
	}
	if r.Schema.Attrs[idx].Kind != KindInt64 {
		return nil, fmt.Errorf("relation %q: attribute %q is %v, want int64",
			r.Schema.Name, attr, r.Schema.Attrs[idx].Kind)
	}
	vals := make([]int64, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		vals = append(vals, t[idx].I)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out, nil
}

// GenConfig parameterizes synthetic relation generation.
type GenConfig struct {
	Rows    int
	Seed    int64
	KeyMax  int64 // keys drawn uniformly from [0, KeyMax)
	Payload int   // length of the generated string payload
}

// Generate builds a synthetic two-column relation R(key int64, payload
// string) of the shape Example 1 queries: point selections on "key".
func Generate(cfg GenConfig) *Relation {
	if cfg.KeyMax <= 0 {
		cfg.KeyMax = int64(cfg.Rows) * 4
		if cfg.KeyMax == 0 {
			cfg.KeyMax = 1
		}
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := New(MustSchema("synthetic",
		Attr{Name: "key", Kind: KindInt64},
		Attr{Name: "payload", Kind: KindString},
	))
	buf := make([]byte, cfg.Payload)
	for i := 0; i < cfg.Rows; i++ {
		for j := range buf {
			buf[j] = byte('a' + rng.Intn(26))
		}
		r.MustAppend(Tuple{Int(rng.Int63n(cfg.KeyMax)), Str(string(buf))})
	}
	return r
}
