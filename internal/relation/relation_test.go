package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty schema name accepted")
	}
	if _, err := NewSchema("r", Attr{Name: "", Kind: KindInt64}); err == nil {
		t.Error("unnamed attribute accepted")
	}
	if _, err := NewSchema("r", Attr{Name: "a"}, Attr{Name: "a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("r", Attr{Name: "a"}, Attr{Name: "b"}); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema("")
}

func TestAppendValidation(t *testing.T) {
	r := New(MustSchema("r", Attr{Name: "k", Kind: KindInt64}, Attr{Name: "s", Kind: KindString}))
	if err := r.Append(Tuple{Int(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Append(Tuple{Str("x"), Str("y")}); err == nil {
		t.Error("wrong kind accepted")
	}
	if err := r.Append(Tuple{Int(1), Str("y")}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestValueOrderingAndString(t *testing.T) {
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("int ordering broken")
	}
	if !Str("a").Less(Str("b")) {
		t.Error("string ordering broken")
	}
	if !Int(99).Less(Str("")) {
		t.Error("cross-kind ordering should put ints first")
	}
	if Int(3).String() != "3" || Str("x").String() != `"x"` {
		t.Error("String rendering broken")
	}
	if KindInt64.String() != "int64" || KindString.String() != "string" || Kind(9).String() == "" {
		t.Error("Kind.String broken")
	}
}

func TestScanPointSelect(t *testing.T) {
	r := Generate(GenConfig{Rows: 500, Seed: 1, KeyMax: 100})
	// Key 'k' present iff some tuple has it; compare with manual scan.
	col, err := r.Column("key")
	if err != nil {
		t.Fatal(err)
	}
	present := map[int64]bool{}
	for _, v := range col {
		present[v.I] = true
	}
	for k := int64(0); k < 100; k++ {
		got, err := r.ScanPointSelect("key", Int(k))
		if err != nil {
			t.Fatal(err)
		}
		if got != present[k] {
			t.Fatalf("key %d: scan=%v want %v", k, got, present[k])
		}
	}
	if _, err := r.ScanPointSelect("nope", Int(0)); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := r.Column("nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestScanRangeSelect(t *testing.T) {
	r := New(MustSchema("r", Attr{Name: "k", Kind: KindInt64}))
	for _, v := range []int64{10, 20, 30} {
		r.MustAppend(Tuple{Int(v)})
	}
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 5, false}, {0, 10, true}, {10, 10, true}, {11, 19, false},
		{15, 25, true}, {31, 99, false}, {0, 99, true},
	}
	for _, c := range cases {
		got, err := r.ScanRangeSelect("k", Int(c.lo), Int(c.hi))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("range [%d,%d]: got %v want %v", c.lo, c.hi, got, c.want)
		}
	}
	if _, err := r.ScanRangeSelect("nope", Int(0), Int(1)); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestSortedInts(t *testing.T) {
	r := New(MustSchema("r", Attr{Name: "k", Kind: KindInt64}, Attr{Name: "s", Kind: KindString}))
	for _, v := range []int64{5, 3, 5, 1, 3} {
		r.MustAppend(Tuple{Int(v), Str("p")})
	}
	got, err := r.SortedInts("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{1, 3, 5}) {
		t.Fatalf("SortedInts = %v", got)
	}
	if _, err := r.SortedInts("s"); err == nil {
		t.Error("SortedInts on string column accepted")
	}
	if _, err := r.SortedInts("nope"); err == nil {
		t.Error("SortedInts on missing column accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		r := Generate(GenConfig{Rows: rng.Intn(200), Seed: int64(trial), KeyMax: 50, Payload: 1 + rng.Intn(12)})
		back, err := Decode(r.Encode())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(keys []int64, payloads []string) bool {
		r := New(MustSchema("q", Attr{Name: "k", Kind: KindInt64}, Attr{Name: "p", Kind: KindString}))
		for i, k := range keys {
			p := ""
			if i < len(payloads) {
				p = payloads[i]
			}
			r.MustAppend(Tuple{Int(k), Str(p)})
		}
		back, err := Decode(r.Encode())
		return err == nil && reflect.DeepEqual(r, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	r := Generate(GenConfig{Rows: 10, Seed: 3})
	enc := r.Encode()
	cases := [][]byte{
		nil,
		enc[:len(enc)/2],                     // truncated
		append(enc[:0:0], append(enc, 0)...), // trailing byte
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: corrupt input decoded", i)
		}
	}
	// Unknown kind byte in attribute table.
	bad := append([]byte{}, enc...)
	// Find the first attribute kind byte: name "synthetic"(1+9 bytes) +
	// attr count(1) + "key"(1+3) => kind at offset 15.
	bad[15] = 0x7f
	if _, err := Decode(bad); err == nil {
		t.Error("unknown attribute kind decoded")
	}
}

func TestGenerateDefaults(t *testing.T) {
	r := Generate(GenConfig{Rows: 10, Seed: 1})
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
	r2 := Generate(GenConfig{Rows: 10, Seed: 1})
	if !reflect.DeepEqual(r, r2) {
		t.Fatal("generation is not deterministic for equal seeds")
	}
	if Generate(GenConfig{Rows: 0, Seed: 1}).Len() != 0 {
		t.Fatal("empty generation broken")
	}
}
