// Package compress implements query-preserving compression for graph
// reachability queries — the paper's §4(5) strategy: preprocess a database
// D into a smaller Dc such that Q(D) = Q(Dc) for every query in the class,
// "preserving the information only relevant to queries in Q rather than
// preserving the data itself".
//
// The compression pipeline for the reachability query class:
//
//  1. SCC condensation: vertices in one strongly connected component are
//     mutually reachable, so collapsing each SCC to a single vertex
//     preserves every reachability query (with the obvious translation).
//  2. False-twin merging on the condensation DAG: two non-adjacent vertices
//     with identical in-neighbour and identical out-neighbour sets are
//     indistinguishable to every reachability query that does not name
//     both; the only queries naming both (u→v or v→u) are necessarily
//     false in a DAG, which the query translation hard-codes. Merging is
//     iterated to a fixpoint.
//
// This follows the spirit of Fan et al., "Query preserving graph
// compression" (SIGMOD 2012) [16], which the paper cites; their
// reachability-equivalence relation is coarser (it also merges chains), at
// the price of a more intricate query translation. The twin relation keeps
// the translation a two-case lookup while still shrinking community-shaped
// graphs dramatically — the SCC step alone removes every community core.
package compress

import (
	"fmt"
	"sort"

	"pitract/internal/graph"
)

// Compressed is the query-preserving compression of a directed graph for
// the reachability query class, together with the vertex translation map.
type Compressed struct {
	// Dc is the compressed graph (a DAG).
	Dc *graph.Graph
	// Map sends each original vertex to its compressed representative.
	Map []int
	// scc holds the stage-1 SCC id of each original vertex; two originals
	// with one representative are mutually reachable iff they share an SCC.
	scc []int
	// closure over Dc for O(1) answering after compression.
	closure *graph.Closure
}

// Compress builds the query-preserving compression of g.
func Compress(g *graph.Graph) (*Compressed, error) {
	if !g.Directed() {
		return nil, fmt.Errorf("compress: reachability compression expects a directed graph")
	}
	// Stage 1: SCC condensation.
	dag, comp := g.Condense()
	// Stage 2: iterated false-twin merging.
	mapping := make([]int, len(comp))
	copy(mapping, comp)
	for {
		merged, twinMap := mergeFalseTwins(dag)
		if merged == nil {
			break
		}
		for v := range mapping {
			mapping[v] = twinMap[mapping[v]]
		}
		dag = merged
	}
	return &Compressed{Dc: dag, Map: mapping, scc: comp, closure: graph.NewClosure(dag)}, nil
}

// mergeFalseTwins finds classes of vertices with identical in- and
// out-neighbour sets and collapses each class to one vertex. It returns
// (nil, nil) when no class has more than one member.
func mergeFalseTwins(dag *graph.Graph) (*graph.Graph, []int) {
	n := dag.N()
	// Build in-neighbour lists from the out-lists.
	ins := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range dag.Neighbors(u) {
			ins[v] = append(ins[v], int32(u))
		}
	}
	for v := range ins {
		sort.Slice(ins[v], func(i, j int) bool { return ins[v][i] < ins[v][j] })
	}
	// Group by (in-list, out-list) signature.
	sig := make(map[string][]int, n)
	for v := 0; v < n; v++ {
		key := key32(ins[v]) + "|" + key32(dag.Neighbors(v))
		sig[key] = append(sig[key], v)
	}
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = -1
	}
	classes := 0
	any := false
	// Deterministic order: iterate vertices, assign class ids first-seen.
	assigned := make(map[string]int, len(sig))
	for v := 0; v < n; v++ {
		key := key32(ins[v]) + "|" + key32(dag.Neighbors(v))
		id, ok := assigned[key]
		if !ok {
			id = classes
			classes++
			assigned[key] = id
			if len(sig[key]) > 1 {
				any = true
			}
		}
		classOf[v] = id
	}
	if !any {
		return nil, nil
	}
	merged := graph.New(classes, true)
	seen := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		for _, v := range dag.Neighbors(u) {
			cu, cv := classOf[u], classOf[int(v)]
			if cu != cv && !seen[[2]int{cu, cv}] {
				seen[[2]int{cu, cv}] = true
				merged.MustAddEdge(cu, cv)
			}
		}
	}
	merged.Normalize()
	return merged, classOf
}

func key32(l []int32) string {
	b := make([]byte, 0, len(l)*5)
	for _, v := range l {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// Reach answers the original-graph reachability query reach(u, v) on the
// compressed structure: u reaches v iff u = v, or their representatives
// differ and are connected in Dc. Two distinct originals sharing a
// representative are never connected (twins are non-adjacent by
// construction; SCC members translate to the same vertex and ARE mutually
// reachable, which the same-representative case must answer true for —
// distinguished by the sameSCC flag kept in Map semantics below).
func (c *Compressed) Reach(u, v int) (bool, error) {
	if u < 0 || u >= len(c.Map) || v < 0 || v >= len(c.Map) {
		return false, fmt.Errorf("compress: query (%d,%d) out of range [0,%d)", u, v, len(c.Map))
	}
	if u == v {
		return true, nil
	}
	mu, mv := c.Map[u], c.Map[v]
	if mu != mv {
		return c.closure.Reach(mu, mv), nil
	}
	// Same representative: either the originals share an SCC (mutually
	// reachable: answer true) or they are merged twins (answer false).
	// The two cases are distinguished by sccMate.
	return c.sccMate(u, v), nil
}

// sccMate reports whether u and v were merged at the SCC stage (mutually
// reachable) rather than at the twin stage. Twins are only ever merged when
// non-adjacent in the condensation, i.e. not mutually reachable, so the
// SCC question is exactly "mutually reachable in the original". The
// Compressed structure intentionally retains no original-graph state, so
// this is recomputed from the stored per-vertex SCC ids.
func (c *Compressed) sccMate(u, v int) bool {
	return c.scc[u] == c.scc[v]
}

// SCCIDs returns the stage-1 SCC id of every original vertex. Two vertices
// sharing a representative in Map are mutually reachable iff they share an
// SCC id — the disambiguation the succinct labeling scheme
// (internal/schemes) persists alongside Map so its verdict translation
// matches Reach exactly. The slice aliases internal state; callers must
// not mutate it.
func (c *Compressed) SCCIDs() []int { return c.scc }

// Ratio reports the compression ratios (vertices and edges, compressed
// over original).
func (c *Compressed) Ratio(orig *graph.Graph) (vertexRatio, edgeRatio float64) {
	vr := float64(c.Dc.N()) / float64(max(1, orig.N()))
	er := float64(c.Dc.M()) / float64(max(1, orig.M()))
	return vr, er
}
