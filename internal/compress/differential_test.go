package compress

// Compress-vs-closure differential: the compressed structure's Reach must
// agree with the dense transitive closure of the original graph on every
// pair — including u == v, where Compress answers true unconditionally and
// graph.NewClosure is reflexive by construction, so the two conventions
// must coincide even for vertices with no self-loop. Any divergence is a
// bug in the translation (Map/SCC bookkeeping), never in the oracle.

import (
	"strings"
	"testing"

	"pitract/internal/graph"
)

// TestCompressVsClosureDifferential sweeps random digraphs of assorted
// density — plus shapes that stress each compression stage — and checks
// every pair.
func TestCompressVsClosureDifferential(t *testing.T) {
	cases := map[string]*graph.Graph{
		"sparse":    graph.RandomDirected(30, 40, 1),
		"medium":    graph.RandomDirected(40, 160, 2),
		"dense":     graph.RandomDirected(25, 400, 3),
		"dag":       graph.RandomDAG(35, 90, 4),
		"path":      graph.Path(20, true),
		"community": graph.CommunityGraph(4, 10, 8, 5),
		"singleton": graph.New(1, true),
		"empty":     graph.New(0, true),
		"edgeless":  graph.New(12, true),
	}
	for seed := int64(10); seed < 16; seed++ {
		cases[string(rune('a'+seed-10))+"-random"] = graph.RandomDirected(20+int(seed), 3*int(seed)*int(seed), seed)
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			c, err := Compress(g)
			if err != nil {
				t.Fatal(err)
			}
			cl := graph.NewClosure(g)
			for u := 0; u < g.N(); u++ {
				for v := 0; v < g.N(); v++ {
					got, err := c.Reach(u, v)
					if err != nil {
						t.Fatalf("Reach(%d,%d): %v", u, v, err)
					}
					if want := cl.Reach(u, v); got != want {
						t.Fatalf("Reach(%d,%d) = %v, closure says %v (Map[u]=%d, Map[v]=%d)",
							u, v, got, want, c.Map[u], c.Map[v])
					}
				}
			}
		})
	}
}

// TestCompressSelfQueryNoSelfLoop pins the self-reachability convention on
// the sharpest case: an edgeless vertex, mutually reachable with itself by
// the closure's reflexivity despite having no self-loop (graphs here never
// store self-loops at all — AddEdge refuses them).
func TestCompressSelfQueryNoSelfLoop(t *testing.T) {
	g := graph.New(3, true)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	cl := graph.NewClosure(g)
	for v := 0; v < 3; v++ {
		got, err := c.Reach(v, v)
		if err != nil {
			t.Fatal(err)
		}
		if !got || !cl.Reach(v, v) {
			t.Fatalf("self query (%d,%d): compress %v, closure %v — conventions diverge", v, v, got, cl.Reach(v, v))
		}
	}
}

// TestCompressReachOutOfRange pins the error contract on bad pairs.
func TestCompressReachOutOfRange(t *testing.T) {
	c, err := Compress(graph.RandomDirected(5, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{-1, 0}, {0, 5}, {5, 5}, {0, -2}} {
		if _, err := c.Reach(pair[0], pair[1]); err == nil {
			t.Fatalf("Reach(%d,%d) accepted an out-of-range pair", pair[0], pair[1])
		} else if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("Reach(%d,%d) error = %v", pair[0], pair[1], err)
		}
	}
}

// TestSCCIDsMatchMap pins the accessor the labels scheme persists: two
// vertices share a representative AND an SCC id exactly when mutually
// reachable.
func TestSCCIDsMatchMap(t *testing.T) {
	g := graph.RandomDirected(30, 120, 21)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	scc := c.SCCIDs()
	if len(scc) != g.N() {
		t.Fatalf("SCCIDs has %d entries, want %d", len(scc), g.N())
	}
	cl := graph.NewClosure(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			mutual := cl.Reach(u, v) && cl.Reach(v, u)
			if (scc[u] == scc[v]) != mutual {
				t.Fatalf("scc[%d]=%d, scc[%d]=%d but mutual=%v", u, scc[u], v, scc[v], mutual)
			}
			// Map must factor through SCC ids (same SCC ⇒ same rep).
			if scc[u] == scc[v] && c.Map[u] != c.Map[v] {
				t.Fatalf("same SCC, different representatives (%d vs %d)", c.Map[u], c.Map[v])
			}
		}
	}
}
