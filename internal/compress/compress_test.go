package compress

import (
	"math/rand"
	"testing"

	"pitract/internal/graph"
)

func TestCompressPreservesAllReachabilityQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := graph.RandomDirected(n, 3*n, int64(trial))
		c, err := Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		truth := graph.NewClosure(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got, err := c.Reach(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if got != truth.Reach(u, v) {
					t.Fatalf("trial %d: query (%d,%d): compressed %v, truth %v", trial, u, v, got, !got)
				}
			}
		}
	}
}

func TestCompressCommunityGraphsShrink(t *testing.T) {
	g := graph.CommunityGraph(10, 40, 30, 7)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	vr, er := c.Ratio(g)
	if vr > 0.25 {
		t.Errorf("vertex ratio %.2f: SCC condensation should collapse communities", vr)
	}
	if er > 1.0 {
		t.Errorf("edge ratio %.2f > 1", er)
	}
	// And answers stay exact.
	truth := graph.NewClosure(g)
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 500; q++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		got, _ := c.Reach(u, v)
		if got != truth.Reach(u, v) {
			t.Fatalf("community query (%d,%d) wrong", u, v)
		}
	}
}

func TestCompressTwinMerging(t *testing.T) {
	// A DAG with parallel twin branches: 0 → {1,2,3} → 4. Vertices 1,2,3
	// have identical in/out neighbourhoods and must merge.
	g := graph.New(5, true)
	for _, mid := range []int{1, 2, 3} {
		g.MustAddEdge(0, mid)
		g.MustAddEdge(mid, 4)
	}
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dc.N() != 3 {
		t.Fatalf("compressed to %d vertices, want 3 (source, twin class, sink)", c.Dc.N())
	}
	if c.Map[1] != c.Map[2] || c.Map[2] != c.Map[3] {
		t.Fatalf("twins not merged: map = %v", c.Map)
	}
	// Twins must not claim to reach one another.
	for _, pair := range [][2]int{{1, 2}, {2, 1}, {1, 3}} {
		if got, _ := c.Reach(pair[0], pair[1]); got {
			t.Errorf("merged twins %v report reachability", pair)
		}
	}
	// But the path through them survives.
	if got, _ := c.Reach(0, 4); !got {
		t.Error("path 0→4 lost")
	}
}

func TestCompressSCCMatesStayReachable(t *testing.T) {
	// A 4-cycle is one SCC; every ordered pair must stay reachable.
	g := graph.New(4, true)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, (i+1)%4)
	}
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dc.N() != 1 {
		t.Fatalf("cycle compressed to %d vertices, want 1", c.Dc.N())
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if got, _ := c.Reach(u, v); !got {
				t.Fatalf("SCC pair (%d,%d) lost", u, v)
			}
		}
	}
}

func TestCompressRejectsUndirected(t *testing.T) {
	if _, err := Compress(graph.Path(3, false)); err == nil {
		t.Fatal("undirected graph accepted")
	}
}

func TestCompressQueryValidation(t *testing.T) {
	c, err := Compress(graph.Path(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reach(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
	if _, err := c.Reach(0, 9); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if got, _ := c.Reach(1, 1); !got {
		t.Error("reflexive reachability lost")
	}
}

func TestCompressIdempotentShape(t *testing.T) {
	// Compressing an already-compressed shape changes nothing further.
	g := graph.RandomDAG(30, 60, 3)
	c1, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compress(c1.Dc)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Dc.N() != c1.Dc.N() || c2.Dc.M() != c1.Dc.M() {
		t.Fatalf("second compression changed shape: %d/%d → %d/%d",
			c1.Dc.N(), c1.Dc.M(), c2.Dc.N(), c2.Dc.M())
	}
}
