package schemes

// Succinct Π for reachability: the "reachability/labels" scheme answers
// with a 2-hop reachability labeling instead of the dense n²-bit closure
// matrix, and builds that labeling on the query-preserving compression of
// the graph (internal/compress, the paper's §4(5) strategy) rather than on
// the graph itself:
//
//  1. Compress: SCC condensation + iterated false-twin merging yields a
//     DAG Dc with Map sending each original vertex to its representative.
//  2. Label: pruned landmark labeling (PLL, Akiba–Iwata–Yoshida style,
//     adapted from distances to reachability) over Dc assigns every Dc
//     vertex two sorted hub sets Lout/Lin such that x ⇝ y in Dc iff
//     Lout[x] ∩ Lin[y] ≠ ∅. Hubs are processed in degree order, and the
//     pruned BFS skips every vertex an earlier hub already covers, which
//     is what keeps the label sets small on hub-and-spoke shapes.
//  3. Translate: reach(u, v) on the original graph is u = v, or same SCC
//     (mutually reachable), or — distinct representatives — the label
//     intersection on Dc. Two distinct SCCs merged as false twins are
//     non-adjacent by construction, so same-representative/different-SCC
//     answers false. This is exactly compress.Reach's translation, pinned
//     differentially against it and against the dense closure oracle.
//
// Undirected graphs need none of this machinery: reachability is connected
// components, so the labeling degenerates to one component id per vertex —
// the "pick the labeling per graph shape" half of the scheme.
//
// The payload carries the canonical encoding of the original graph as an
// appendix (like the closure's ClosureGraphFlag section): incremental
// maintenance edits the appendix and relabels from it wholesale
// (relabel-on-commit), so maintained and rebuilt Π stay byte-identical.
//
// The dense closure scheme ("reachability/closure-matrix") is kept
// unchanged as the differential oracle: identical verdicts AND identical
// error strings, pinned by the succinct differential suites.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pitract/internal/compress"
	"pitract/internal/core"
	"pitract/internal/graph"
)

// Label payload kind bytes: a directed payload carries the compression map
// plus 2-hop labels over Dc; an undirected payload carries component ids.
const (
	labelsKindDirected   = 0
	labelsKindUndirected = 1
)

// reachLabels is the decoded labels payload — the typed form both the raw
// Answer (per call) and the prepared answerer (once) decode into.
type reachLabels struct {
	n          int  // original vertex count
	undirected bool // payload kind

	// Undirected: connected-component id per vertex.
	comp []int32

	// Directed: the compression map and the 2-hop labeling over Dc.
	scc       []int32   // stage-1 SCC id per original vertex
	rep       []int32   // Dc representative per SCC id (compress.Map factored through SCC ids)
	nDc       int       // compressed DAG vertex count
	lout, lin [][]int32 // per Dc vertex: ascending hub ranks

	// graphEnc is the canonical encoding of the original graph (the
	// relabel-on-commit maintenance input). It aliases the payload.
	graphEnc []byte
}

// reach answers the original-graph query on decoded labels. Bounds are the
// caller's job (both answer paths check them first, with the closure
// scheme's exact error string).
func (rl *reachLabels) reach(u, v int) bool {
	if u == v {
		return true
	}
	if rl.undirected {
		return rl.comp[u] == rl.comp[v]
	}
	su, sv := rl.scc[u], rl.scc[v]
	if su == sv {
		return true // same SCC: mutually reachable
	}
	mu, mv := rl.rep[su], rl.rep[sv]
	if mu == mv {
		return false // merged false twins: non-adjacent by construction
	}
	return intersectSorted(rl.lout[mu], rl.lin[mv])
}

// intersectSorted reports whether two ascending hub lists share an element
// — the 2-hop probe, O(|a|+|b|).
func intersectSorted(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// buildReachLabels preprocesses a decoded graph into labels: component ids
// for undirected graphs, compression + PLL for directed ones.
func buildReachLabels(g *graph.Graph) (*reachLabels, error) {
	rl := &reachLabels{n: g.N(), graphEnc: g.Encode()}
	if !g.Directed() {
		rl.undirected = true
		rl.comp = undirectedComponents(g)
		return rl, nil
	}
	c, err := compress.Compress(g)
	if err != nil {
		return nil, err
	}
	sccIDs := c.SCCIDs()
	rl.scc = make([]int32, rl.n)
	nSCC := 0
	for v, s := range sccIDs {
		rl.scc[v] = int32(s)
		if s+1 > nSCC {
			nSCC = s + 1
		}
	}
	rl.nDc = c.Dc.N()
	rl.rep = make([]int32, nSCC)
	for v := range sccIDs {
		rl.rep[sccIDs[v]] = int32(c.Map[v])
	}
	rl.lout, rl.lin = buildPLL(c.Dc)
	return rl, nil
}

// undirectedComponents labels each vertex with its connected component, ids
// assigned in first-seen vertex order (deterministic).
func undirectedComponents(g *graph.Graph) []int32 {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] < 0 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp
}

// buildPLL computes a pruned landmark labeling of a DAG: hub sets such
// that x ⇝ y iff Lout[x] ∩ Lin[y] ≠ ∅ (reflexively — every vertex is its
// own hub unless an earlier hub already covers it). Hubs are stored as
// ranks in the processing order (degree descending, ties by id), so label
// lists are appended in ascending order and intersect by sorted merge.
func buildPLL(dag *graph.Graph) (lout, lin [][]int32) {
	n := dag.N()
	lout = make([][]int32, n)
	lin = make([][]int32, n)
	if n == 0 {
		return lout, lin
	}
	// Reverse adjacency for the backward sweeps, sorted for determinism.
	radj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range dag.Neighbors(u) {
			radj[v] = append(radj[v], int32(u))
		}
	}
	for v := range radj {
		l := radj[v]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	fadj := make([][]int32, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		fadj[v] = dag.Neighbors(v)
		deg[v] = len(fadj[v]) + len(radj[v])
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if deg[order[i]] != deg[order[j]] {
			return deg[order[i]] > deg[order[j]]
		}
		return order[i] < order[j]
	})

	// sweep runs one pruned BFS from root over adj, appending rank to
	// to[u] for every visited u not already covered by an earlier hub.
	// The cover check intersects from[root] with to[u]: for the forward
	// sweep that is Lout[root] ∩ Lin[u] (∃ earlier hub h: root ⇝ h ⇝ u);
	// the backward sweep passes from = lin, to = lout, giving the
	// symmetric Lout[u] ∩ Lin[root]. Pruning a covered vertex prunes its
	// whole subtree — the PLL invariant guarantees the earlier hub's own
	// sweep labeled everything beyond it.
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	visited := make([]int32, 0, n)
	sweep := func(adj, from, to [][]int32, root, rank int) {
		queue = append(queue[:0], int32(root))
		visited = append(visited[:0], int32(root))
		seen[root] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if intersectSorted(from[root], to[u]) {
				continue
			}
			to[u] = append(to[u], int32(rank))
			for _, w := range adj[u] {
				if !seen[w] {
					seen[w] = true
					visited = append(visited, w)
					queue = append(queue, w)
				}
			}
		}
		for _, u := range visited {
			seen[u] = false
		}
	}
	for rank, root := range order {
		sweep(fadj, lout, lin, root, rank)
		sweep(radj, lin, lout, root, rank)
	}
	return lout, lin
}

// encodeLabels lays the labels payload out as a single forward-decodable
// varint stream:
//
//	kind ‖ uvarint n ‖ body ‖ uvarint len(graphEnc) ‖ graphEnc
//
// with the directed body
//
//	n × uvarint scc[v] ‖ uvarint S ‖ uvarint nDc ‖ S × uvarint rep[s]
//	‖ nDc × (labelList(Lout[x]) ‖ labelList(Lin[x]))
//
// where labelList is uvarint count ‖ first hub ‖ ascending deltas, and the
// undirected body is n × uvarint comp[v].
func encodeLabels(rl *reachLabels) []byte {
	b := []byte{labelsKindDirected}
	if rl.undirected {
		b[0] = labelsKindUndirected
	}
	b = binary.AppendUvarint(b, uint64(rl.n))
	if rl.undirected {
		for _, c := range rl.comp {
			b = binary.AppendUvarint(b, uint64(c))
		}
	} else {
		for _, s := range rl.scc {
			b = binary.AppendUvarint(b, uint64(s))
		}
		b = binary.AppendUvarint(b, uint64(len(rl.rep)))
		b = binary.AppendUvarint(b, uint64(rl.nDc))
		for _, r := range rl.rep {
			b = binary.AppendUvarint(b, uint64(r))
		}
		for x := 0; x < rl.nDc; x++ {
			b = appendLabelList(b, rl.lout[x])
			b = appendLabelList(b, rl.lin[x])
		}
	}
	b = binary.AppendUvarint(b, uint64(len(rl.graphEnc)))
	return append(b, rl.graphEnc...)
}

// appendLabelList delta-encodes one ascending hub list.
func appendLabelList(b []byte, l []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(l)))
	prev := int32(0)
	for i, h := range l {
		if i == 0 {
			b = binary.AppendUvarint(b, uint64(h))
		} else {
			b = binary.AppendUvarint(b, uint64(h-prev))
		}
		prev = h
	}
	return b
}

// errCorruptLabels is the shared shape of every labels-payload decode
// failure — one message both answer paths report identically.
func errCorruptLabels(what string) error {
	return fmt.Errorf("schemes: corrupt reachability labels (%s)", what)
}

// decodeLabels parses a labels payload. Hostile input fails closed: every
// count is bounded by the remaining buffer before allocation, every id is
// range-checked, and trailing bytes are rejected — never a panic, never an
// unbounded allocation (see FuzzDecodeLabels).
func decodeLabels(pd []byte) (*reachLabels, error) {
	if len(pd) < 2 {
		return nil, errCorruptLabels("truncated header")
	}
	kind := pd[0]
	if kind != labelsKindDirected && kind != labelsKindUndirected {
		return nil, errCorruptLabels(fmt.Sprintf("unknown kind %d", kind))
	}
	off := 1
	next := func(what string) (uint64, error) {
		v, k := binary.Uvarint(pd[off:])
		if k <= 0 {
			return 0, errCorruptLabels(what)
		}
		off += k
		return v, nil
	}
	n64, err := next("vertex count")
	if err != nil {
		return nil, err
	}
	if n64 > graph.MaxDecodeVertices {
		return nil, errCorruptLabels(fmt.Sprintf("%d vertices exceeds decode limit %d", n64, graph.MaxDecodeVertices))
	}
	// Every per-vertex entry costs at least one byte; a count beyond the
	// remaining buffer is hostile — reject before allocating.
	if n64 > uint64(len(pd)-off) {
		return nil, errCorruptLabels(fmt.Sprintf("%d vertices exceeds remaining %d bytes", n64, len(pd)-off))
	}
	rl := &reachLabels{n: int(n64), undirected: kind == labelsKindUndirected}
	if rl.undirected {
		rl.comp = make([]int32, rl.n)
		for v := range rl.comp {
			c, err := next("component id")
			if err != nil {
				return nil, err
			}
			if c >= n64 {
				return nil, errCorruptLabels(fmt.Sprintf("component id %d out of range", c))
			}
			rl.comp[v] = int32(c)
		}
	} else {
		rl.scc = make([]int32, rl.n)
		for v := range rl.scc {
			s, err := next("scc id")
			if err != nil {
				return nil, err
			}
			if s >= n64 {
				return nil, errCorruptLabels(fmt.Sprintf("scc id %d out of range", s))
			}
			rl.scc[v] = int32(s)
		}
		s64, err := next("scc count")
		if err != nil {
			return nil, err
		}
		if s64 > n64 {
			return nil, errCorruptLabels(fmt.Sprintf("%d sccs over %d vertices", s64, n64))
		}
		for _, s := range rl.scc {
			if uint64(s) >= s64 {
				return nil, errCorruptLabels(fmt.Sprintf("scc id %d out of range [0,%d)", s, s64))
			}
		}
		dc64, err := next("compressed vertex count")
		if err != nil {
			return nil, err
		}
		if dc64 > s64 {
			return nil, errCorruptLabels(fmt.Sprintf("%d compressed vertices over %d sccs", dc64, s64))
		}
		rl.nDc = int(dc64)
		if s64 > uint64(len(pd)-off) {
			return nil, errCorruptLabels(fmt.Sprintf("%d representatives exceed remaining %d bytes", s64, len(pd)-off))
		}
		rl.rep = make([]int32, s64)
		for s := range rl.rep {
			r, err := next("representative")
			if err != nil {
				return nil, err
			}
			if r >= dc64 {
				return nil, errCorruptLabels(fmt.Sprintf("representative %d out of range [0,%d)", r, dc64))
			}
			rl.rep[s] = int32(r)
		}
		rl.lout = make([][]int32, rl.nDc)
		rl.lin = make([][]int32, rl.nDc)
		for x := 0; x < rl.nDc; x++ {
			if rl.lout[x], err = decodeLabelList(pd, &off, next, dc64); err != nil {
				return nil, err
			}
			if rl.lin[x], err = decodeLabelList(pd, &off, next, dc64); err != nil {
				return nil, err
			}
		}
	}
	enc64, err := next("graph appendix length")
	if err != nil {
		return nil, err
	}
	if enc64 != uint64(len(pd)-off) {
		return nil, errCorruptLabels(fmt.Sprintf("graph appendix claims %d bytes, %d remain", enc64, len(pd)-off))
	}
	rl.graphEnc = pd[off:]
	return rl, nil
}

// decodeLabelList parses one delta-encoded hub list, enforcing strict
// ascent and the hub-id bound.
func decodeLabelList(pd []byte, off *int, next func(string) (uint64, error), nDc uint64) ([]int32, error) {
	c64, err := next("label count")
	if err != nil {
		return nil, err
	}
	if c64 > uint64(len(pd)-*off) {
		return nil, errCorruptLabels(fmt.Sprintf("label count %d exceeds remaining %d bytes", c64, len(pd)-*off))
	}
	if c64 > nDc {
		return nil, errCorruptLabels(fmt.Sprintf("label count %d over %d compressed vertices", c64, nDc))
	}
	l := make([]int32, c64)
	prev := uint64(0)
	for i := range l {
		d, err := next("label hub")
		if err != nil {
			return nil, err
		}
		h := d
		if i > 0 {
			h = prev + d
			if d == 0 {
				return nil, errCorruptLabels("label hubs not strictly ascending")
			}
		}
		if h >= nDc {
			return nil, errCorruptLabels(fmt.Sprintf("label hub %d out of range [0,%d)", h, nDc))
		}
		l[i] = int32(h)
		prev = h
	}
	return l, nil
}

// preprocessLabels is Π for the labels scheme: decode the graph, compress,
// label, encode.
func preprocessLabels(d []byte) ([]byte, error) {
	g, err := graph.Decode(d)
	if err != nil {
		return nil, err
	}
	rl, err := buildReachLabels(g)
	if err != nil {
		return nil, err
	}
	return encodeLabels(rl), nil
}

// labelsAnswerer is the prepared form: the payload decoded once, each
// probe a bounds check plus a label intersection.
type labelsAnswerer struct {
	rl *reachLabels
}

// Answer implements core.Answerer.
func (a *labelsAnswerer) Answer(q []byte) (bool, error) {
	u, v, err := DecodeNodePairQuery(q)
	if err != nil {
		return false, err
	}
	if u < 0 || u >= a.rl.n || v < 0 || v >= a.rl.n {
		return false, fmt.Errorf("schemes: node pair (%d,%d) out of range [0,%d)", u, v, a.rl.n)
	}
	return a.rl.reach(u, v), nil
}

// prepareLabels decodes the payload once (same errors as the raw path).
func prepareLabels(pd []byte) (core.Answerer, error) {
	rl, err := decodeLabels(pd)
	if err != nil {
		return nil, err
	}
	return &labelsAnswerer{rl: rl}, nil
}

// ReachabilityLabelsScheme is the succinct alternative to the dense
// closure matrix: 2-hop reachability labels over the query-preserving
// compression, answering by label intersection in O(|label|) — with the
// dense scheme kept unchanged as the differential oracle.
func ReachabilityLabelsScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "reachability/labels",
		Preprocess: preprocessLabels,
		Answer: func(pd, q []byte) (bool, error) {
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return false, err
			}
			rl, err := decodeLabels(pd)
			if err != nil {
				return false, err
			}
			if u < 0 || u >= rl.n || v < 0 || v >= rl.n {
				return false, fmt.Errorf("schemes: node pair (%d,%d) out of range [0,%d)", u, v, rl.n)
			}
			return rl.reach(u, v), nil
		},
		PrepareAnswerer: prepareLabels,
		// Degraded mode rebuilds the dense closure bitset from the graph
		// appendix and probes it in O(1) — a cheaper, allocation-free probe
		// than the label intersection, with identical verdicts and
		// identical out-of-range error strings (both answerers validate
		// against the same n). The serving layer switches to it when the
		// dataset's health breaker degrades or the query budget runs low.
		PrepareFallback: prepareLabelsFallback,
		PreprocessNote:  "O(compress) + O(PLL(Dc)) — labels built on the compressed DAG",
		AnswerNote:      "O(|Lout| + |Lin|) label intersection",
	}
}

// prepareLabelsFallback builds the labels scheme's degraded-mode
// answerer: the original graph recovered from the appendix, its
// transitive closure computed densely, probed as a bitset.
func prepareLabelsFallback(pd []byte) (core.Answerer, error) {
	rl, err := decodeLabels(pd)
	if err != nil {
		return nil, err
	}
	g, err := graph.Decode(rl.graphEnc)
	if err != nil {
		return nil, fmt.Errorf("schemes: labels graph appendix: %w", err)
	}
	return prepareClosure(closureBytes(g))
}

// IncrementalReachabilityLabels maintains the labels scheme by
// relabel-on-commit: an edge delta edits the graph appendix (the same
// validation and strict-delete contract as the dense closure) and the
// labels are rebuilt wholesale from the maintained graph. There is no
// per-delta label surgery — a single edge can restructure the SCC
// condensation, the twin classes, and the hub cover all at once, so the
// bounded-incrementality contract the closure's §4(7) OR-ing satisfies
// does not hold for labels; what does hold is that the relabel runs on the
// compressed DAG, far below the dense matrix rebuild. A payload whose
// appendix fails to decode refuses the delta cleanly (nothing applied).
// Maintained and rebuilt Π stay byte-identical (pinned differentially).
func IncrementalReachabilityLabels() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme: ReachabilityLabelsScheme(),
		ApplyDelta: func(pd, delta []byte) ([]byte, error) {
			kind, payload, err := core.DeltaParts(delta)
			if err != nil {
				return nil, err
			}
			rl, err := decodeLabels(pd)
			if err != nil {
				return nil, err
			}
			u, v, err := DecodeNodePairQuery(payload)
			if err != nil {
				return nil, err
			}
			if u < 0 || u >= rl.n || v < 0 || v >= rl.n || u == v {
				return nil, fmt.Errorf("schemes: bad edge delta (%d,%d)", u, v)
			}
			g, err := graph.Decode(rl.graphEnc)
			if err != nil {
				return nil, fmt.Errorf("schemes: labels graph appendix: %w", err)
			}
			switch kind {
			case core.DeltaDelete:
				err = g.RemoveEdge(u, v)
			default: // insert and upsert coincide: a present edge is a no-op
				if g.HasEdge(u, v) {
					return pd, nil
				}
				err = g.AddEdge(u, v)
			}
			if err != nil {
				return nil, err
			}
			rebuilt, err := buildReachLabels(g)
			if err != nil {
				return nil, err
			}
			return encodeLabels(rebuilt), nil
		},
		ApplyUpdate: applyEdgeToGraph,
		DeltaNote:   "relabel on commit: O(compress + PLL(Dc)) rebuild from the graph appendix",
	}
}
