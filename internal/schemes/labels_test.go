package schemes

// Unit and differential coverage for the succinct reachability labeling:
// the PLL builder against the dense closure, the payload codec round-trip,
// the succinct-vs-dense scheme differential (verdicts AND error strings),
// relabel-on-commit maintenance, and the fail-closed decoder (see also
// FuzzDecodeLabels).

import (
	"bytes"
	"testing"

	"pitract/internal/graph"
)

// labelsPayload preprocesses g through the labels scheme, panicking on
// failure — usable from both tests and fuzz-seed registration.
func labelsPayload(g *graph.Graph) []byte {
	pd, err := ReachabilityLabelsScheme().Preprocess(g.Encode())
	if err != nil {
		panic(err)
	}
	return pd
}

// TestBuildPLLMatchesClosure pins the 2-hop labeling's core invariant on
// random DAGs: Lout[x] ∩ Lin[y] ≠ ∅ exactly when x reaches y.
func TestBuildPLLMatchesClosure(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		dag := graph.RandomDAG(30+int(seed)*7, 60+int(seed)*15, seed)
		lout, lin := buildPLL(dag)
		cl := graph.NewClosure(dag)
		for x := 0; x < dag.N(); x++ {
			for y := 0; y < dag.N(); y++ {
				want := cl.Reach(x, y)
				got := intersectSorted(lout[x], lin[y])
				if got != want {
					t.Fatalf("seed %d: label probe (%d,%d) = %v, closure %v", seed, x, y, got, want)
				}
			}
		}
	}
}

// TestBuildPLLEdgeShapes covers the degenerate shapes: empty graph, single
// vertex, and a path (where labels should stay tiny).
func TestBuildPLLEdgeShapes(t *testing.T) {
	empty := graph.New(0, true)
	if lout, lin := buildPLL(empty); len(lout) != 0 || len(lin) != 0 {
		t.Fatalf("empty DAG labels: %d/%d", len(lout), len(lin))
	}
	one := graph.New(1, true)
	lout, lin := buildPLL(one)
	if !intersectSorted(lout[0], lin[0]) {
		t.Fatal("single vertex does not reach itself through its labels")
	}
	path := graph.Path(50, true)
	lout, lin = buildPLL(path)
	cl := graph.NewClosure(path)
	for x := 0; x < 50; x++ {
		for y := 0; y < 50; y++ {
			if intersectSorted(lout[x], lin[y]) != cl.Reach(x, y) {
				t.Fatalf("path probe (%d,%d) diverges", x, y)
			}
		}
	}
}

// TestLabelsCodecRoundTrip pins encode→decode as the identity on the
// decoded form, for directed and undirected graphs.
func TestLabelsCodecRoundTrip(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"directed":   graph.RandomDirected(40, 120, 5),
		"undirected": graph.RandomConnectedUndirected(30, 60, 9),
		"empty-dir":  graph.New(0, true),
		"community":  graph.CommunityGraph(4, 8, 6, 2),
	} {
		t.Run(name, func(t *testing.T) {
			rl, err := buildReachLabels(g)
			if err != nil {
				t.Fatal(err)
			}
			enc := encodeLabels(rl)
			dec, err := decodeLabels(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(encodeLabels(dec), enc) {
				t.Fatal("re-encode diverges from original encoding")
			}
			for u := 0; u < g.N(); u++ {
				for v := 0; v < g.N(); v++ {
					if rl.reach(u, v) != dec.reach(u, v) {
						t.Fatalf("decoded labels answer (%d,%d) differently", u, v)
					}
				}
			}
		})
	}
}

// TestLabelsVsDenseDifferential is the scheme-level half of the succinct
// differential suite: for every query — in range, out of range, malformed
// — the labels scheme and the dense closure oracle must return identical
// verdicts and identical error strings, on both the raw and prepared
// paths.
func TestLabelsVsDenseDifferential(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"directed-sparse": graph.RandomDirected(40, 60, 1),
		"directed-dense":  graph.RandomDirected(32, 300, 2),
		"community":       graph.CommunityGraph(5, 8, 10, 3),
		"undirected":      graph.RandomConnectedUndirected(36, 70, 4),
		"dag":             graph.RandomDAG(45, 110, 5),
	} {
		t.Run(name, func(t *testing.T) {
			dense, succinct := ReachabilityScheme(), ReachabilityLabelsScheme()
			densePd, err := dense.Preprocess(g.Encode())
			if err != nil {
				t.Fatal(err)
			}
			succinctPd, err := succinct.Preprocess(g.Encode())
			if err != nil {
				t.Fatal(err)
			}
			denseAns, err := dense.Prepare(densePd)
			if err != nil {
				t.Fatal(err)
			}
			succinctAns, err := succinct.Prepare(succinctPd)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			queries := [][]byte{}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					queries = append(queries, NodePairQuery(u, v))
				}
			}
			queries = append(queries, NodePairQuery(n, 0), NodePairQuery(0, n+7), []byte{3}, nil)
			for i, q := range queries {
				dGot, dErr := denseAns.Answer(q)
				sGot, sErr := succinctAns.Answer(q)
				rGot, rErr := succinct.Answer(succinctPd, q)
				if (dErr == nil) != (sErr == nil) || (dErr == nil) != (rErr == nil) {
					t.Fatalf("query %d: dense err %v, labels prepared err %v, labels raw err %v", i, dErr, sErr, rErr)
				}
				if dErr != nil {
					if dErr.Error() != sErr.Error() || dErr.Error() != rErr.Error() {
						t.Fatalf("query %d: error strings diverge:\n dense: %v\n prep:  %v\n raw:   %v", i, dErr, sErr, rErr)
					}
					continue
				}
				if dGot != sGot || dGot != rGot {
					t.Fatalf("query %d: dense %v, labels prepared %v, labels raw %v", i, dGot, sGot, rGot)
				}
			}
		})
	}
}

// TestLabelsArtifactSmallerOnCommunityGraph pins the point of the scheme:
// on a community-shaped graph (dense SCC cores the compression collapses)
// the labels artifact is a fraction of the n²-bit closure matrix.
func TestLabelsArtifactSmallerOnCommunityGraph(t *testing.T) {
	g := graph.CommunityGraph(10, 30, 40, 7)
	densePd, err := ReachabilityScheme().Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	succinctPd, err := ReachabilityLabelsScheme().Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(succinctPd)*2 > len(densePd) {
		t.Fatalf("labels artifact %d bytes, dense %d — expected at least 2x smaller", len(succinctPd), len(densePd))
	}
}

// TestLabelsMaintainedEqualsRebuilt pins relabel-on-commit: a mixed
// insert/upsert/delete run through the incremental form must leave Π
// byte-identical to a from-scratch Preprocess of the maintained graph.
func TestLabelsMaintainedEqualsRebuilt(t *testing.T) {
	g := graph.RandomDirected(28, 60, 13)
	inc := IncrementalReachabilityLabels()
	pd, err := inc.Scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	deltas := [][]byte{
		EdgeDelta(0, 27),
		EdgeDeleteDelta(int(edges[0][0]), int(edges[0][1])),
		EdgeUpsertDelta(3, 9),
		EdgeUpsertDelta(3, 9), // present: no-op
		EdgeDelta(26, 1),
		EdgeDeleteDelta(int(edges[5][0]), int(edges[5][1])),
	}
	maintained := g.Clone()
	for i, d := range deltas {
		if pd, err = inc.ApplyDelta(pd, d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		enc, err := applyEdgeToGraph(maintained.Encode(), d)
		if err != nil {
			t.Fatalf("delta %d on raw graph: %v", i, err)
		}
		if maintained, err = graph.Decode(enc); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	rebuilt, err := inc.Scheme.Preprocess(maintained.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pd, rebuilt) {
		t.Fatalf("maintained Π (%d bytes) != rebuilt Π (%d bytes)", len(pd), len(rebuilt))
	}
}

// TestLabelsDeltaRefusedCleanly pins the refusal contract: a bad delta
// errors without changing the payload, with the closure scheme's exact
// error string.
func TestLabelsDeltaRefusedCleanly(t *testing.T) {
	g := graph.RandomDirected(10, 20, 3)
	inc := IncrementalReachabilityLabels()
	pd, err := inc.Scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), pd...)
	for _, tc := range []struct {
		delta []byte
		want  string
	}{
		{EdgeDelta(10, 0), "schemes: bad edge delta (10,0)"},
		{EdgeDelta(0, 99), "schemes: bad edge delta (0,99)"},
		{EdgeDelta(4, 4), "schemes: bad edge delta (4,4)"},
		{[]byte{1, 2, 3}, ""}, // malformed pair: any error, nothing applied
	} {
		out, err := inc.ApplyDelta(pd, tc.delta)
		if err == nil {
			t.Fatalf("delta %x applied", tc.delta)
		}
		if tc.want != "" && err.Error() != tc.want {
			t.Fatalf("error = %q, want %q", err, tc.want)
		}
		if out != nil {
			t.Fatalf("failed delta returned a payload")
		}
		if !bytes.Equal(pd, before) {
			t.Fatal("failed delta mutated the payload")
		}
	}
}

// TestDecodeLabelsHostile pins fail-closed decoding on crafted payloads:
// clean errors, no panics, no unbounded allocation.
func TestDecodeLabelsHostile(t *testing.T) {
	valid := labelsPayload(graph.RandomDirected(12, 30, 1))
	cases := map[string][]byte{
		"empty":               nil,
		"kind-only":           {labelsKindDirected},
		"unknown-kind":        {7, 4},
		"huge-n":              append([]byte{labelsKindDirected}, 0xff, 0xff, 0xff, 0xff, 0xff, 0x07),
		"n-over-remaining":    {labelsKindDirected, 200, 1},
		"truncated-body":      valid[:len(valid)/2],
		"trailing-garbage":    append(append([]byte(nil), valid...), 0xAB),
		"appendix-length-lie": valid[:len(valid)-1],
	}
	for name, pd := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeLabels(pd); err == nil {
				t.Fatalf("hostile payload decoded")
			}
			// The prepared path must refuse identically (same entry point).
			if _, err := prepareLabels(pd); err == nil {
				t.Fatalf("hostile payload prepared")
			}
		})
	}
}

// FuzzDecodeLabels drives the labels decoder with mutated payloads: it
// must never panic, and anything it accepts must re-encode/re-decode
// stably and answer in-range queries without panicking.
func FuzzDecodeLabels(f *testing.F) {
	f.Add(labelsPayload(graph.RandomDirected(10, 25, 2)))
	f.Add(labelsPayload(graph.RandomConnectedUndirected(8, 14, 3)))
	f.Add(labelsPayload(graph.New(0, true)))
	f.Add([]byte{labelsKindDirected, 0, 0})
	f.Add([]byte{labelsKindUndirected, 3, 0, 0, 0, 0})
	f.Add([]byte{labelsKindDirected, 200, 0xff, 0xff})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, pd []byte) {
		rl, err := decodeLabels(pd)
		if err != nil {
			return
		}
		enc := encodeLabels(rl)
		rl2, err := decodeLabels(enc)
		if err != nil {
			t.Fatalf("accepted payload fails to round-trip: %v", err)
		}
		if !bytes.Equal(encodeLabels(rl2), enc) {
			t.Fatal("re-encoding is unstable")
		}
		for u := 0; u < rl.n && u < 8; u++ {
			for v := 0; v < rl.n && v < 8; v++ {
				rl.reach(u, v) // must not panic
			}
		}
	})
}

// TestLabelsSchemeInCatalogs pins the wiring: the labels scheme is
// maintainable and shardable by name.
func TestLabelsSchemeInCatalogs(t *testing.T) {
	if IncrementalForScheme("reachability/labels") == nil {
		t.Fatal("labels scheme has no incremental form")
	}
	found := false
	for _, n := range MaintainableSchemes() {
		if n == "reachability/labels" {
			found = true
		}
	}
	if !found {
		t.Fatal("labels scheme missing from MaintainableSchemes")
	}
	if got := ReachabilityLabelsScheme().Name(); got != "reachability/labels" {
		t.Fatalf("scheme name = %q", got)
	}
}
