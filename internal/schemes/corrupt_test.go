package schemes

// Failure injection: answering procedures operate on preprocessed byte
// strings that may arrive truncated or mangled (a disk-backed index with a
// torn write, a mis-framed network transfer). Every Answer/Apply path must
// return an error — never panic, never misanswer silently — on such input.

import (
	"math/rand"
	"testing"

	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
	"pitract/internal/views"
)

// mutations derives corrupt variants of a valid preprocessed string.
func mutations(pd []byte) [][]byte {
	out := [][]byte{nil, {}, pd[:1]}
	if len(pd) > 2 {
		out = append(out, pd[:len(pd)/2], pd[:len(pd)-1])
	}
	grown := append(append([]byte{}, pd...), 0xEE)
	out = append(out, grown)
	if len(pd) >= 8 {
		// Mangle the header so it claims a different size.
		big := append([]byte{}, pd...)
		for i := 0; i < 8; i++ {
			big[i] = 0xFF
		}
		out = append(out, big)
	}
	return out
}

// answerMustNotPanic drives one Answer function over all mutations; errors
// are expected, panics and silent successes that change answers are not.
func answerMustNotPanic(t *testing.T, name string, pd []byte, answer func(pd []byte) (bool, error)) {
	t.Helper()
	for i, bad := range mutations(pd) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: mutation %d (len %d) panicked: %v", name, i, len(bad), r)
				}
			}()
			if _, err := answer(bad); err == nil {
				// A shorter-but-well-formed prefix may legitimately decode
				// (e.g. sorted-key files are any multiple of 8 bytes), so a
				// nil error alone is not a failure; reaching here without
				// panicking is the requirement. Schemes with framed headers
				// are asserted strictly below.
				_ = i
			}
		}()
	}
}

// answerMustError is the strict variant for self-framing layouts.
func answerMustError(t *testing.T, name string, pd []byte, answer func(pd []byte) (bool, error)) {
	t.Helper()
	for i, bad := range mutations(pd) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: mutation %d (len %d) panicked: %v", name, i, len(bad), r)
				}
			}()
			if _, err := answer(bad); err == nil {
				t.Fatalf("%s: mutation %d (len %d) answered without error", name, i, len(bad))
			}
		}()
	}
}

func TestCorruptClosureMatrix(t *testing.T) {
	g := graph.RandomDirected(20, 50, 1)
	s := ReachabilityScheme()
	pd, err := s.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	q := NodePairQuery(1, 2)
	answerMustError(t, "closure", pd, func(b []byte) (bool, error) { return s.Answer(b, q) })
}

func TestCorruptGateValues(t *testing.T) {
	c := circuit.Generate(circuit.GenConfig{Inputs: 4, Gates: 30, Seed: 2})
	inst := &circuit.Instance{Circuit: c, Inputs: circuit.RandomInputs(4, 3)}
	s := CVPGateValueScheme()
	pd, err := s.Preprocess(circuit.EncodeInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	q := GateQuery(0)
	answerMustError(t, "gate-values", pd, func(b []byte) (bool, error) { return s.Answer(b, q) })
}

func TestCorruptRMQTable(t *testing.T) {
	s := RMQFuncScheme()
	pd, err := s.Preprocess(EncodeList([]int64{5, 2, 9, 1, 7, 3, 8, 6}))
	if err != nil {
		t.Fatal(err)
	}
	q := RangeQueryIJ(1, 5)
	for i, bad := range mutations(pd) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("rmq mutation %d panicked: %v", i, r)
				}
			}()
			if _, err := s.Apply(bad, q); err == nil {
				t.Fatalf("rmq mutation %d (len %d) applied without error", i, len(bad))
			}
		}()
	}
}

func TestCorruptLCATable(t *testing.T) {
	s := LCAFuncScheme()
	pd, err := s.Preprocess(graph.RandomDAG(10, 20, 1).Encode())
	if err != nil {
		t.Fatal(err)
	}
	q := NodePairQuery(0, 1)
	for i, bad := range mutations(pd) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lca mutation %d panicked: %v", i, r)
				}
			}()
			if _, err := s.Apply(bad, q); err == nil {
				t.Fatalf("lca mutation %d (len %d) applied without error", i, len(bad))
			}
		}()
	}
}

func TestCorruptViewDirectory(t *testing.T) {
	rel := relation.Generate(relation.GenConfig{Rows: 100, Seed: 1, KeyMax: 100})
	s := ViewRewritingScheme(views.EvenPartition("key", 0, 99, 3))
	pd, err := s.Preprocess(rel.Encode())
	if err != nil {
		t.Fatal(err)
	}
	lq, err := s.Rewrite(PointQuery(10))
	if err != nil {
		t.Fatal(err)
	}
	// A truncation can leave the probed view's segment intact (the
	// directory is self-framing per view), so the general contract is
	// no-panic; header-level damage must error.
	answerMustNotPanic(t, "views", pd, func(b []byte) (bool, error) { return s.Answer(b, lq) })
	for _, bad := range [][]byte{nil, pd[:1], pd[:40]} {
		if _, err := s.Answer(bad, lq); err == nil {
			t.Fatalf("header-damaged directory (len %d) answered without error", len(bad))
		}
	}
}

func TestCorruptSortedKeysAndPosArray(t *testing.T) {
	// These layouts are headerless fixed-width files: any 8/4-multiple
	// prefix is well-formed, so the requirement is only no-panic plus
	// correct range errors for the position array.
	rel := relation.Generate(relation.GenConfig{Rows: 64, Seed: 1, KeyMax: 64})
	sel := PointSelectionScheme()
	pd, err := sel.Preprocess(rel.Encode())
	if err != nil {
		t.Fatal(err)
	}
	answerMustNotPanic(t, "sorted-keys", pd, func(b []byte) (bool, error) {
		return sel.Answer(b, PointQuery(3))
	})

	g := graph.RandomConnectedUndirected(16, 8, 1)
	bdsS := BDSScheme()
	pd2, err := bdsS.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	answerMustNotPanic(t, "pos-array", pd2, func(b []byte) (bool, error) {
		return bdsS.Answer(b, NodePairQuery(10, 12))
	})
	// Truncating below the queried nodes must produce a range error.
	if _, err := bdsS.Answer(pd2[:8], NodePairQuery(10, 12)); err == nil {
		t.Fatal("truncated position array answered an out-of-range node")
	}
}

func TestCorruptDeltasRejected(t *testing.T) {
	incSel := IncrementalPointSelection()
	rel := relation.Generate(relation.GenConfig{Rows: 10, Seed: 1, KeyMax: 10})
	pd, err := incSel.Scheme.Preprocess(rel.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incSel.ApplyDelta(pd, []byte{0xFF}); err == nil {
		t.Fatal("corrupt delta accepted by sorted-keys maintenance")
	}
	if _, err := incSel.ApplyUpdate(rel.Encode(), []byte{0xFF}); err == nil {
		t.Fatal("corrupt delta accepted by ⊕")
	}
	incReach := IncrementalReachability()
	g := graph.RandomDirected(8, 10, 1)
	pd2, err := incReach.Scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incReach.ApplyDelta(pd2[:3], EdgeDelta(0, 1)); err == nil {
		t.Fatal("truncated closure accepted by maintenance")
	}
}

func TestCorruptQueriesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	junk := make([]byte, 3)
	rng.Read(junk)
	rel := relation.Generate(relation.GenConfig{Rows: 10, Seed: 1, KeyMax: 10})
	sel := PointSelectionScheme()
	pd, err := sel.Preprocess(rel.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Answer(pd, junk); err == nil {
		t.Fatal("junk query accepted by point selection")
	}
	if _, err := core.DecodeUint64(junk, 2); err == nil {
		t.Fatal("junk decoded as two uints")
	}
}
