// Package schemes instantiates the paper's case studies as executable
// Π-tractability witnesses over the core framework: each scheme is a PTIME
// preprocessing function Π: Σ* → Σ* paired with an answering procedure that
// reads the preprocessed string with random access in polylog (or constant)
// time. Baseline schemes — correct but with polynomial-time answering — are
// provided alongside, so experiments can measure the gap the paper is
// about.
//
// Preprocessed byte formats are fixed-width so that answering really is
// sublinear over the string (no per-query decode): sorted key files are
// n×8-byte big-endian arrays, position files n×4-byte arrays, closures are
// bitsets behind an 8-byte header.
package schemes

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pitract/internal/bds"
	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/listsearch"
	"pitract/internal/relation"
)

// --- shared fixed-width codecs ----------------------------------------------

func putSortedKeys(keys []int64) []byte {
	b := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.BigEndian.PutUint64(b[i*8:], uint64(k)+(1<<63)) // order-preserving bias
	}
	return b
}

func sortedKeyAt(b []byte, i int) int64 {
	return int64(binary.BigEndian.Uint64(b[i*8:]) - (1 << 63))
}

// searchSortedKeys locates the first index with key ≥ target, reading
// O(log n) fixed-width records of the preprocessed string.
func searchSortedKeys(b []byte, target int64) (idx int, found bool) {
	n := len(b) / 8
	idx = sort.Search(n, func(i int) bool { return sortedKeyAt(b, i) >= target })
	return idx, idx < n && sortedKeyAt(b, idx) == target
}

// --- Example 1 / §4(1): point and range selection -----------------------------

// PointQuery encodes the Boolean point-selection query (A, c) on the fixed
// key attribute.
func PointQuery(c int64) []byte { return core.EncodeUint64(uint64(c) + (1 << 63)) }

// DecodePointQuery parses a PointQuery back into its key — the codec's
// other half, exported so routing layers (internal/shard) can inspect
// queries without re-specifying the wire format.
func DecodePointQuery(q []byte) (int64, error) {
	vs, err := core.DecodeUint64(q, 1)
	if err != nil {
		return 0, err
	}
	return int64(vs[0] - (1 << 63)), nil
}

// RangeQuery encodes the Boolean range-selection query (A, [lo, hi]).
func RangeQuery(lo, hi int64) []byte {
	return core.EncodeUint64(uint64(lo)+(1<<63), uint64(hi)+(1<<63))
}

// DecodeRangeQuery parses a RangeQuery back into its bounds.
func DecodeRangeQuery(q []byte) (lo, hi int64, err error) {
	vs, err := core.DecodeUint64(q, 2)
	if err != nil {
		return 0, 0, err
	}
	return int64(vs[0] - (1 << 63)), int64(vs[1] - (1 << 63)), nil
}

// SelectionLanguage is S1 from Example 3: ⟨D, (A, c)⟩ with D a relation and
// the answer "∃t ∈ D: t[key] = c", decided by the reference scan.
func SelectionLanguage() core.Language {
	return core.LanguageFunc{
		LangName: "S1-point-selection",
		Decide: func(d, q []byte) (bool, error) {
			rel, err := relation.Decode(d)
			if err != nil {
				return false, err
			}
			c, err := DecodePointQuery(q)
			if err != nil {
				return false, err
			}
			return rel.ScanPointSelect("key", relation.Int(c))
		},
	}
}

// PointSelectionScheme preprocesses the relation into a sorted key file and
// answers point selections by binary search — Example 1's B⁺-tree access
// path in string form: O(|D| log |D|) preprocessing, O(log |D|) answering.
func PointSelectionScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "point-selection/sorted-keys",
		Preprocess: func(d []byte) ([]byte, error) {
			rel, err := relation.Decode(d)
			if err != nil {
				return nil, err
			}
			keys, err := rel.SortedInts("key")
			if err != nil {
				return nil, err
			}
			return putSortedKeys(keys), nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			c, err := DecodePointQuery(q)
			if err != nil {
				return false, err
			}
			_, found := searchSortedKeys(pd, c)
			return found, nil
		},
		PrepareAnswerer: prepareSortedKeys,
		PreprocessNote:  "O(|D| log |D|)",
		AnswerNote:      "O(log |D|)",
	}
}

// PointSelectionScanScheme is the no-preprocessing baseline: Π is the
// identity and every query scans D.
func PointSelectionScanScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "point-selection/scan",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Answer: func(pd, q []byte) (bool, error) {
			return SelectionLanguage().Contains(pd, q)
		},
		PrepareAnswerer: preparePointScan,
		// Degraded mode trades the per-query O(|D|) scan for one O(|D| log
		// |D|) sort at fallback build, then O(log |D|) probes — the same
		// verdicts (and the same malformed-query errors, both paths decode
		// the point query first), delivered cheaper per probe when the
		// serving budget is nearly spent.
		PrepareFallback: prepareScanFallback,
		PreprocessNote:  "O(1)",
		AnswerNote:      "O(|D|) per query",
	}
}

// prepareScanFallback builds the scan baseline's degraded-mode answerer:
// the relation's key column sorted once, probed by binary search.
func prepareScanFallback(pd []byte) (core.Answerer, error) {
	rel, err := relation.Decode(pd)
	if err != nil {
		return nil, err
	}
	ks, err := rel.SortedInts("key")
	if err != nil {
		return nil, err
	}
	return &sortedKeysAnswerer{keys: ks}, nil
}

// RangeSelectionLanguage decides range selections by the reference scan.
func RangeSelectionLanguage() core.Language {
	return core.LanguageFunc{
		LangName: "range-selection",
		Decide: func(d, q []byte) (bool, error) {
			rel, err := relation.Decode(d)
			if err != nil {
				return false, err
			}
			lo, hi, err := DecodeRangeQuery(q)
			if err != nil {
				return false, err
			}
			return rel.ScanRangeSelect("key", relation.Int(lo), relation.Int(hi))
		},
	}
}

// RangeSelectionScheme answers range selections on the sorted key file:
// find the first key ≥ lo, check it against hi.
func RangeSelectionScheme() *core.Scheme {
	base := PointSelectionScheme()
	return &core.Scheme{
		SchemeName: "range-selection/sorted-keys",
		Preprocess: base.Preprocess,
		Answer: func(pd, q []byte) (bool, error) {
			lo, hi, err := DecodeRangeQuery(q)
			if err != nil {
				return false, err
			}
			if hi < lo {
				return false, nil
			}
			idx, _ := searchSortedKeys(pd, lo)
			return idx < len(pd)/8 && sortedKeyAt(pd, idx) <= hi, nil
		},
		PrepareAnswerer: prepareSortedKeysRange,
		PreprocessNote:  "O(|D| log |D|)",
		AnswerNote:      "O(log |D|)",
	}
}

// --- §4(2): searching in a list -------------------------------------------------

// EncodeList serializes an int64 list as the data part of problem L1.
func EncodeList(list []int64) []byte {
	b := binary.AppendUvarint(nil, uint64(len(list)))
	for _, v := range list {
		b = binary.AppendVarint(b, v)
	}
	return b
}

// DecodeList parses EncodeList output.
func DecodeList(d []byte) ([]int64, error) {
	n, k := binary.Uvarint(d)
	if k <= 0 {
		return nil, fmt.Errorf("schemes: corrupt list header")
	}
	off := k
	// Each entry takes at least one byte, so a count beyond the remaining
	// buffer is corrupt — reject before allocating (the serve path hands
	// this decoder attacker-controlled bytes).
	if n > uint64(len(d)-off) {
		return nil, fmt.Errorf("schemes: list count %d exceeds remaining %d bytes", n, len(d)-off)
	}
	out := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		v, k := binary.Varint(d[off:])
		if k <= 0 {
			return nil, fmt.Errorf("schemes: corrupt list entry %d", i)
		}
		off += k
		out = append(out, v)
	}
	if off != len(d) {
		return nil, fmt.Errorf("schemes: %d trailing bytes", len(d)-off)
	}
	return out, nil
}

// ListMembershipLanguage is S(L1,Υ1): ⟨M, e⟩ with the answer "e ∈ M".
func ListMembershipLanguage() core.Language {
	return core.LanguageFunc{
		LangName: "L1-list-membership",
		Decide: func(d, q []byte) (bool, error) {
			list, err := DecodeList(d)
			if err != nil {
				return false, err
			}
			e, err := DecodePointQuery(q)
			if err != nil {
				return false, err
			}
			return listsearch.Scan(list, e), nil
		},
	}
}

// ListMembershipScheme sorts M once, then answers by binary search —
// §4(2) verbatim.
func ListMembershipScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "list-membership/sorted",
		Preprocess: func(d []byte) ([]byte, error) {
			list, err := DecodeList(d)
			if err != nil {
				return nil, err
			}
			idx := listsearch.NewIndex(list)
			return putSortedKeys(idx.Sorted()), nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			e, err := DecodePointQuery(q)
			if err != nil {
				return false, err
			}
			_, found := searchSortedKeys(pd, e)
			return found, nil
		},
		PrepareAnswerer: prepareSortedKeys,
		PreprocessNote:  "O(|M| log |M|)",
		AnswerNote:      "O(log |M|)",
	}
}

// RelationFromKeys builds (and encodes) a single-int64-column relation over
// the schema synthetic(key, payload) from a key list. It is the α map of
// the list-membership ≤NC_F point-selection reduction.
func RelationFromKeys(keys []int64) []byte {
	rel := relation.New(relation.MustSchema("synthetic",
		relation.Attr{Name: "key", Kind: relation.KindInt64},
		relation.Attr{Name: "payload", Kind: relation.KindString},
	))
	for _, k := range keys {
		rel.MustAppend(relation.Tuple{relation.Int(k), relation.Str("")})
	}
	return rel.Encode()
}

// --- Example 3: reachability ------------------------------------------------------

// NodePairQuery encodes a (u, v) node-pair query.
func NodePairQuery(u, v int) []byte { return core.EncodeUint64(uint64(u), uint64(v)) }

// DecodeNodePairQuery parses a NodePairQuery back into (u, v).
func DecodeNodePairQuery(q []byte) (int, int, error) {
	vs, err := core.DecodeUint64(q, 2)
	if err != nil {
		return 0, 0, err
	}
	return int(vs[0]), int(vs[1]), nil
}

// ReachabilityLanguage is S2 from Example 3: ⟨G, (s, t)⟩ with the answer
// "there is a path from s to t in G", decided by BFS.
func ReachabilityLanguage() core.Language {
	return core.LanguageFunc{
		LangName: "S2-reachability",
		Decide: func(d, q []byte) (bool, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return false, err
			}
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return false, err
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return false, fmt.Errorf("schemes: node pair (%d,%d) out of range", u, v)
			}
			return g.Reachable(u, v), nil
		},
	}
}

// ClosureUndirectedFlag is set in the closure header's top bit when the
// closure was built from an undirected graph. Vertex counts are capped at
// graph.MaxDecodeVertices (2²⁴), so the bit is always free; readers mask
// it off. Incremental maintenance needs it: inserting an undirected edge
// must OR reachability in both orientations, and the closure alone —
// without this flag — cannot tell the two graph kinds apart. (Closures
// persisted before the flag existed read as directed, which is what every
// pre-existing snapshot in this repository holds.)
const ClosureUndirectedFlag = uint64(1) << 63

// ClosureGraphFlag is set in the closure header when the payload carries the
// source graph's canonical encoding after the bitset:
//
//	header (8) ‖ row-major bitset ((n²+7)/8) ‖ uvarint len ‖ graph.Encode bytes
//
// Decremental maintenance needs it: a closure bit says only that *some*
// path exists, so retracting one edge cannot be decided from the matrix
// alone — the maintainer re-derives the affected rows from the surviving
// edges. Preprocess now always emits the appendix; closures persisted
// before the flag existed still answer queries and accept insertions, but
// refuse deletions until the dataset is re-registered.
const ClosureGraphFlag = uint64(1) << 62

// closureParts parses and validates a closure payload into its header
// fields, bitset, and optional graph appendix (nil when ClosureGraphFlag is
// unset). The appendix length is framed explicitly so any truncated or
// grown payload still errors here; the appendix's own integrity is checked
// by graph.Decode at use.
func closureParts(pd []byte) (n int, undirected bool, bits, graphEnc []byte, err error) {
	if len(pd) < 8 {
		return 0, false, nil, nil, fmt.Errorf("schemes: corrupt closure header")
	}
	raw := binary.BigEndian.Uint64(pd)
	undirected = raw&ClosureUndirectedFlag != 0
	hasGraph := raw&ClosureGraphFlag != 0
	n64 := raw &^ (ClosureUndirectedFlag | ClosureGraphFlag)
	if n64 > uint64(graph.MaxDecodeVertices) {
		return 0, false, nil, nil, fmt.Errorf("schemes: closure payload is %d bytes, header claims n=%d", len(pd)-8, n64)
	}
	bitLen := (int(n64)*int(n64) + 7) / 8
	if hasGraph {
		encLen, m := binary.Uvarint(pd[min(8+bitLen, len(pd)):])
		if m <= 0 || encLen > uint64(len(pd)) || len(pd) != 8+bitLen+m+int(encLen) {
			return 0, false, nil, nil, fmt.Errorf("schemes: closure payload is %d bytes, header claims n=%d with graph appendix", len(pd)-8, n64)
		}
		graphEnc = pd[len(pd)-int(encLen):]
	} else if len(pd) != 8+bitLen {
		return 0, false, nil, nil, fmt.Errorf("schemes: closure payload is %d bytes, header claims n=%d", len(pd)-8, n64)
	}
	return int(n64), undirected, pd[8 : 8+bitLen], graphEnc, nil
}

// appendClosureGraph frames and appends a graph appendix to a closure
// head (header ‖ bitset) whose header already carries ClosureGraphFlag.
func appendClosureGraph(head []byte, g *graph.Graph) []byte {
	enc := g.Encode()
	out := binary.AppendUvarint(head, uint64(len(enc)))
	return append(out, enc...)
}

// closureHeader parses and validates the closure header against the
// payload length.
func closureHeader(pd []byte) (n int, undirected bool, err error) {
	n, undirected, _, _, err = closureParts(pd)
	return n, undirected, err
}

// closureBytes lays out an n-vertex closure as an 8-byte header (vertex
// count plus the orientation and appendix flags), a row-major bitset, and
// the canonical encoding of the source graph (see ClosureGraphFlag).
func closureBytes(g *graph.Graph) []byte {
	n := g.N()
	c := graph.NewClosure(g)
	b := make([]byte, 8+(n*n+7)/8)
	header := uint64(n) | ClosureGraphFlag
	if !g.Directed() {
		header |= ClosureUndirectedFlag
	}
	binary.BigEndian.PutUint64(b, header)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if c.Reach(u, v) {
				bit := u*n + v
				b[8+bit/8] |= 1 << (bit % 8)
			}
		}
	}
	return appendClosureGraph(b, g)
}

// closureProbe is the branch-light probe shared by the raw path and the
// maintenance code: bounds check plus one byte read, with the header
// already validated and n hoisted out by the caller. bits is the payload
// after the 8-byte header.
func closureProbe(bits []byte, n, u, v int) (bool, error) {
	if u < 0 || u >= n || v < 0 || v >= n {
		return false, fmt.Errorf("schemes: node pair (%d,%d) out of range [0,%d)", u, v, n)
	}
	bit := u*n + v
	return bits[bit/8]&(1<<(bit%8)) != 0, nil
}

// closureReach is the raw-path probe: header validated per call (pd is
// arbitrary here), then closureProbe. It is kept exactly this shape as the
// differential oracle for the prepared closureAnswerer, which validates
// once at Prepare and then probes words directly.
func closureReach(pd []byte, u, v int) (bool, error) {
	n, _, bits, _, err := closureParts(pd)
	if err != nil {
		return false, err
	}
	return closureProbe(bits, n, u, v)
}

// ReachabilityScheme precomputes the all-pairs matrix ("we may precompute a
// matrix that records the reachability between all pairs of nodes") and
// answers in O(1).
func ReachabilityScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "reachability/closure-matrix",
		Preprocess: func(d []byte) ([]byte, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return nil, err
			}
			return closureBytes(g), nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return false, err
			}
			return closureReach(pd, u, v)
		},
		PrepareAnswerer: prepareClosure,
		PreprocessNote:  "O(|V|·|E|)",
		AnswerNote:      "O(1)",
	}
}

// ReachabilityBFSScheme is the baseline: no preprocessing, BFS per query.
func ReachabilityBFSScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "reachability/bfs-per-query",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Answer: func(pd, q []byte) (bool, error) {
			return ReachabilityLanguage().Contains(pd, q)
		},
		PrepareAnswerer: prepareBFS,
		PreprocessNote:  "O(1)",
		AnswerNote:      "O(|V|+|E|) per query",
	}
}

// --- Example 2/5 and Figure 1: breadth-depth search --------------------------------

// BDSProblem is the decision problem: instances are pad(G, (u,v)); member
// iff u is visited before v.
func BDSProblem() *core.Problem {
	return &core.Problem{
		ProblemName: "BDS",
		Member: func(x []byte) (bool, error) {
			d, q, err := core.UnpadPair(x)
			if err != nil {
				return false, err
			}
			return BDSLanguage().Contains(d, q)
		},
	}
}

// BDSFactorization is Υ_BDS from Figure 1: π1 = G, π2 = (u, v).
func BDSFactorization() *core.Factorization {
	return &core.Factorization{
		FactName: "Υ_BDS",
		Pi1: func(x []byte) ([]byte, error) {
			d, _, err := core.UnpadPair(x)
			return d, err
		},
		Pi2: func(x []byte) ([]byte, error) {
			_, q, err := core.UnpadPair(x)
			return q, err
		},
		Rho: func(d, q []byte) ([]byte, error) { return core.PadPair(d, q), nil },
	}
}

// BDSLanguage is S(BDS, Υ_BDS): ⟨G, (u, v)⟩ decided by running the search.
func BDSLanguage() core.Language {
	return core.LanguageFunc{
		LangName: "S-BDS",
		Decide: func(d, q []byte) (bool, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return false, err
			}
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return false, err
			}
			return bds.AnswerNaive(g, u, v)
		},
	}
}

// posArrayBytes lays out pos[v] as n×4-byte records.
func posArrayBytes(idx *bds.Index) []byte {
	n := idx.Len()
	b := make([]byte, 4*n)
	for i, v := range idx.Order() {
		binary.BigEndian.PutUint32(b[int(v)*4:], uint32(i))
	}
	return b
}

// BDSScheme is Example 5's preprocessing: run the search once, keep the
// visit order; answer "u before v" by two O(1) position reads.
func BDSScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "bds/visit-order",
		Preprocess: func(d []byte) ([]byte, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return nil, err
			}
			idx, err := bds.NewIndex(g)
			if err != nil {
				return nil, err
			}
			return posArrayBytes(idx), nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return false, err
			}
			n := len(pd) / 4
			if u < 0 || u >= n || v < 0 || v >= n {
				return false, fmt.Errorf("schemes: node pair (%d,%d) out of range [0,%d)", u, v, n)
			}
			pu := binary.BigEndian.Uint32(pd[u*4:])
			pv := binary.BigEndian.Uint32(pd[v*4:])
			return pu < pv, nil
		},
		PrepareAnswerer: prepareBDS,
		PreprocessNote:  "O(|V|+|E|)",
		AnswerNote:      "O(1) (O(log |M|) via binary search)",
	}
}

// BDSNoPreprocessScheme is Figure 1's Υ′: nothing is preprocessed (the data
// part is ε) and each query carries the whole instance, answered by a full
// fresh search — PTIME per query.
func BDSNoPreprocessScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "bds/no-preprocessing",
		Preprocess: func(d []byte) ([]byte, error) {
			if len(d) != 0 {
				return nil, fmt.Errorf("schemes: Υ′ has an empty data part, got %d bytes", len(d))
			}
			return nil, nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			return BDSProblem().Member(q)
		},
		PreprocessNote: "O(1) (nothing to preprocess)",
		AnswerNote:     "O(|V|+|E|) per query",
	}
}

// --- §4(8), §6, §7: the circuit value problem ----------------------------------

// GateQuery encodes the gate-value query "is gate g true".
func GateQuery(g int) []byte { return core.EncodeUint64(uint64(g)) }

// CVPGateLanguage: ⟨instance, g⟩ with the answer "gate g of the instance
// evaluates to true" — the query class obtained by factorizing CVP with the
// circuit-plus-inputs as data (the factorization Corollary 6 exploits).
func CVPGateLanguage() core.Language {
	return core.LanguageFunc{
		LangName: "CVP-gate-values",
		Decide: func(d, q []byte) (bool, error) {
			inst, err := circuit.DecodeInstance(d)
			if err != nil {
				return false, err
			}
			vs, err := core.DecodeUint64(q, 1)
			if err != nil {
				return false, err
			}
			g := int(vs[0])
			vals, err := inst.Circuit.EvalAll(inst.Inputs)
			if err != nil {
				return false, err
			}
			if g < 0 || g >= len(vals) {
				return false, fmt.Errorf("schemes: gate %d out of range [0,%d)", g, len(vals))
			}
			return vals[g], nil
		},
	}
}

// gateValueHeader parses and validates the gate-value header against the
// payload length — hoisted out so the prepared path validates once instead
// of per probe (the raw Answer keeps its inline checks as the oracle).
func gateValueHeader(pd []byte) (int, error) {
	if len(pd) < 8 {
		return 0, fmt.Errorf("schemes: corrupt gate-value header")
	}
	n := int(binary.BigEndian.Uint64(pd))
	if n < 0 || len(pd) != 8+(n+7)/8 {
		return 0, fmt.Errorf("schemes: gate-value payload is %d bytes, header claims n=%d", len(pd)-8, n)
	}
	return n, nil
}

// CVPGateValueScheme preprocesses a CVP instance by evaluating every gate
// once (PTIME) and answers gate queries by a single bit read (O(1)).
func CVPGateValueScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "cvp/gate-values",
		Preprocess: func(d []byte) ([]byte, error) {
			inst, err := circuit.DecodeInstance(d)
			if err != nil {
				return nil, err
			}
			vals, err := inst.Circuit.EvalAll(inst.Inputs)
			if err != nil {
				return nil, err
			}
			b := make([]byte, 8+(len(vals)+7)/8)
			binary.BigEndian.PutUint64(b, uint64(len(vals)))
			for i, v := range vals {
				if v {
					b[8+i/8] |= 1 << (i % 8)
				}
			}
			return b, nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			if len(pd) < 8 {
				return false, fmt.Errorf("schemes: corrupt gate-value header")
			}
			vs, err := core.DecodeUint64(q, 1)
			if err != nil {
				return false, err
			}
			g := int(vs[0])
			n := int(binary.BigEndian.Uint64(pd))
			if n < 0 || len(pd) != 8+(n+7)/8 {
				return false, fmt.Errorf("schemes: gate-value payload is %d bytes, header claims n=%d", len(pd)-8, n)
			}
			if g < 0 || g >= n {
				return false, fmt.Errorf("schemes: gate %d out of range [0,%d)", g, n)
			}
			return pd[8+g/8]&(1<<(g%8)) != 0, nil
		},
		PrepareAnswerer: prepareCVPGates,
		PreprocessNote:  "O(|α|)",
		AnswerNote:      "O(1)",
	}
}

// CVPNoPreprocessScheme is Theorem 9's Υ0: the data part is ε, so
// preprocessing sees a constant and cannot help; every query carries a full
// CVP instance evaluated from scratch.
func CVPNoPreprocessScheme() *core.Scheme {
	return &core.Scheme{
		SchemeName: "cvp/empty-data",
		Preprocess: func(d []byte) ([]byte, error) {
			if len(d) != 0 {
				return nil, fmt.Errorf("schemes: Υ0 has an empty data part, got %d bytes", len(d))
			}
			return nil, nil
		},
		Answer: func(pd, q []byte) (bool, error) {
			inst, err := circuit.DecodeInstance(q)
			if err != nil {
				return false, err
			}
			return inst.Eval()
		},
		PreprocessNote: "O(1) (constant input)",
		AnswerNote:     "O(|α|) per query — preprocessing cannot help",
	}
}
