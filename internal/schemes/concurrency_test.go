package schemes

// The scheme concurrency contract (core/batch.go) promises that after one
// preprocessing pass, Answer is safe from any number of goroutines. This
// file enforces the contract for every scheme in the package: a stress
// test hammers each scheme's Answer from many goroutines under the race
// detector, and a batch test checks AnswerBatch against one-at-a-time
// answering on real schemes (including the Theorem 5 chain, whose
// compiled-tableau cache is the one piece of shared mutable state).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
	"pitract/internal/tm"
)

// schemeCase is one (scheme, database, queries) triple covering every
// scheme constructor in the package.
type schemeCase struct {
	name    string
	scheme  *core.Scheme
	d       []byte
	queries [][]byte
}

func allSchemeCases(t testing.TB) []schemeCase {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	rel := relation.Generate(relation.GenConfig{Rows: 512, Seed: 3, KeyMax: 1024})
	relBytes := rel.Encode()
	var pointQs, rangeQs [][]byte
	for i := 0; i < 48; i++ {
		pointQs = append(pointQs, PointQuery(rng.Int63n(2048)))
		lo := rng.Int63n(2048)
		rangeQs = append(rangeQs, RangeQuery(lo, lo+rng.Int63n(64)))
	}

	list := make([]int64, 400)
	for i := range list {
		list[i] = rng.Int63n(800)
	}
	listBytes := EncodeList(list)

	dg := graph.RandomDirected(96, 300, 5)
	ug := graph.RandomConnectedUndirected(96, 200, 7)
	var nodeQs [][]byte
	for i := 0; i < 48; i++ {
		nodeQs = append(nodeQs, NodePairQuery(rng.Intn(96), rng.Intn(96)))
	}
	var bdsPadded [][]byte
	ugBytes := ug.Encode()
	for i := 0; i < 16; i++ {
		bdsPadded = append(bdsPadded, core.PadPair(ugBytes, NodePairQuery(rng.Intn(96), rng.Intn(96))))
	}

	inst := cvpInstanceBytes(t, 256)
	var gateQs [][]byte
	for i := 0; i < 48; i++ {
		gateQs = append(gateQs, GateQuery(rng.Intn(256)))
	}

	bits := []bool{true, false, true, true, false, true}
	tmInput := EncodeBits(bits)

	return []schemeCase{
		{"point-selection", PointSelectionScheme(), relBytes, pointQs},
		{"point-selection-scan", PointSelectionScanScheme(), relBytes, pointQs},
		{"range-selection", RangeSelectionScheme(), relBytes, rangeQs},
		{"list-membership", ListMembershipScheme(), listBytes, pointQs},
		{"reachability-closure", ReachabilityScheme(), dg.Encode(), nodeQs},
		{"reachability-bfs", ReachabilityBFSScheme(), dg.Encode(), nodeQs},
		{"bds-visit-order", BDSScheme(), ugBytes, nodeQs},
		{"bds-no-preprocessing", BDSNoPreprocessScheme(), nil, bdsPadded},
		{"cvp-gate-values", CVPGateValueScheme(), inst, gateQs},
		{"cvp-empty-data", CVPNoPreprocessScheme(), nil, [][]byte{inst}},
		{"tm-via-bds", TMSchemeViaBDS(tm.Parity()), tmInput, [][]byte{tmInput}},
	}
}

func cvpInstanceBytes(t testing.TB, gates int) []byte {
	t.Helper()
	circ := circuit.Generate(circuit.GenConfig{Inputs: 8, Gates: gates, Seed: 21})
	return circuit.EncodeInstance(&circuit.Instance{Circuit: circ, Inputs: circuit.RandomInputs(8, 22)})
}

// TestAnswerConcurrencyContract preprocesses each scheme once, computes
// the expected verdicts sequentially, then fires many goroutines that
// replay all queries concurrently. Run under -race this catches both data
// races and nondeterministic answers.
func TestAnswerConcurrencyContract(t *testing.T) {
	const goroutines = 12
	for _, tc := range allSchemeCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			pd, err := tc.scheme.Preprocess(tc.d)
			if err != nil {
				t.Fatalf("preprocess: %v", err)
			}
			want := make([]bool, len(tc.queries))
			for i, q := range tc.queries {
				want[i], err = tc.scheme.Answer(pd, q)
				if err != nil {
					t.Fatalf("sequential answer %d: %v", i, err)
				}
			}
			var wg sync.WaitGroup
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Each goroutine walks the queries from a different
					// offset so distinct queries overlap in time.
					for k := range tc.queries {
						i := (k + g*7) % len(tc.queries)
						got, err := tc.scheme.Answer(pd, tc.queries[i])
						if err != nil {
							errc <- fmt.Errorf("goroutine %d query %d: %v", g, i, err)
							return
						}
						if got != want[i] {
							errc <- fmt.Errorf("goroutine %d query %d: got %v, want %v", g, i, got, want[i])
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestAnswerBatchMatchesLoop checks the AnswerBatch worker pool against
// the plain loop on every scheme.
func TestAnswerBatchMatchesLoop(t *testing.T) {
	for _, tc := range allSchemeCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			pd, err := tc.scheme.Preprocess(tc.d)
			if err != nil {
				t.Fatalf("preprocess: %v", err)
			}
			want, err := tc.scheme.AnswerBatch(pd, tc.queries, 1)
			if err != nil {
				t.Fatalf("sequential batch: %v", err)
			}
			got, err := tc.scheme.AnswerBatch(pd, tc.queries, 6)
			if err != nil {
				t.Fatalf("parallel batch: %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("query %d: parallel %v, sequential %v", i, got[i], want[i])
				}
			}
		})
	}
}
