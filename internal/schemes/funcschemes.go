package schemes

// Function-problem schemes (§8(3) extension; see core.FuncScheme): the §4
// case studies that the paper states as search problems — RMQ ("Find
// RMQ_A(i,j)") and LCA ("Find LCA(u,v)") — witnessed at the byte level with
// random-access preprocessed strings, exactly like the Boolean schemes.

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/lca"
	"pitract/internal/rmq"
)

// RangeQueryIJ encodes an (i, j) index-range query.
func RangeQueryIJ(i, j int) []byte { return core.EncodeUint64(uint64(i), uint64(j)) }

// RMQFuncLanguage is the reference function: the leftmost argmin of
// A[i..j], computed by the naive scan.
func RMQFuncLanguage() core.FuncLanguage {
	return core.FuncLanguageFunc{
		LangName: "RMQ",
		Compute: func(d, q []byte) ([]byte, error) {
			a, err := DecodeList(d)
			if err != nil {
				return nil, err
			}
			vs, err := core.DecodeUint64(q, 2)
			if err != nil {
				return nil, err
			}
			i, j := int(vs[0]), int(vs[1])
			if i < 0 || j >= len(a) || i > j {
				return nil, fmt.Errorf("schemes: RMQ query [%d,%d] out of bounds for n=%d", i, j, len(a))
			}
			return core.EncodeUint64(uint64(rmq.NewNaive(a).Query(i, j))), nil
		},
	}
}

// RMQ preprocessed layout (all fixed width for random access):
//
//	[0:8)                 n
//	[8:16)                levels L
//	[16:16+8n)            values, order-biased uint64
//	then L level blocks:  level k has n-2^k+1 uint32 argmin entries
func rmqTableBytes(a []int64) []byte {
	n := len(a)
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n)) // floor(log2 n)+1 levels
	}
	size := 16 + 8*n
	width := 1
	for k := 0; k < levels; k++ {
		size += 4 * (n - width + 1)
		width <<= 1
	}
	b := make([]byte, size)
	binary.BigEndian.PutUint64(b, uint64(n))
	binary.BigEndian.PutUint64(b[8:], uint64(levels))
	for i, v := range a {
		binary.BigEndian.PutUint64(b[16+8*i:], uint64(v)+(1<<63))
	}
	// Level 0: identity.
	off := 16 + 8*n
	prevOff := off
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(b[off+4*i:], uint32(i))
	}
	off += 4 * n
	prevWidth := 1
	for k := 1; k < levels; k++ {
		width := prevWidth << 1
		cnt := n - width + 1
		for i := 0; i < cnt; i++ {
			left := binary.BigEndian.Uint32(b[prevOff+4*i:])
			right := binary.BigEndian.Uint32(b[prevOff+4*(i+prevWidth):])
			pick := left
			lv := binary.BigEndian.Uint64(b[16+8*int(left):])
			rv := binary.BigEndian.Uint64(b[16+8*int(right):])
			if rv < lv {
				pick = right
			}
			binary.BigEndian.PutUint32(b[off+4*i:], pick)
		}
		prevOff = off
		prevWidth = width
		off += 4 * cnt
	}
	return b
}

// rmqTableQuery answers from the layout in O(1) reads.
func rmqTableQuery(pd []byte, i, j int) (int, error) {
	if len(pd) < 16 {
		return 0, fmt.Errorf("schemes: corrupt RMQ table header")
	}
	n := int(binary.BigEndian.Uint64(pd))
	levels := int(binary.BigEndian.Uint64(pd[8:]))
	if n < 1 || levels < 1 || levels > 63 {
		return 0, fmt.Errorf("schemes: corrupt RMQ table header (n=%d levels=%d)", n, levels)
	}
	want := 16 + 8*n
	for k, width := 0, 1; k < levels; k, width = k+1, width<<1 {
		if width > n {
			return 0, fmt.Errorf("schemes: RMQ level %d is wider than the array", k)
		}
		want += 4 * (n - width + 1)
	}
	if len(pd) != want {
		return 0, fmt.Errorf("schemes: RMQ table is %d bytes, header implies %d", len(pd), want)
	}
	if i < 0 || j >= n || i > j {
		return 0, fmt.Errorf("schemes: RMQ query [%d,%d] out of bounds for n=%d", i, j, n)
	}
	span := j - i + 1
	k := bits.Len(uint(span)) - 1 // floor(log2(span))
	if k >= levels {
		k = levels - 1
	}
	// Offset of level k block.
	off := 16 + 8*n
	width := 1
	for l := 0; l < k; l++ {
		off += 4 * (n - width + 1)
		width <<= 1
	}
	left := int(binary.BigEndian.Uint32(pd[off+4*i:]))
	right := int(binary.BigEndian.Uint32(pd[off+4*(j-width+1):]))
	lv := binary.BigEndian.Uint64(pd[16+8*left:])
	rv := binary.BigEndian.Uint64(pd[16+8*right:])
	if rv < lv || (rv == lv && right < left) {
		return right, nil
	}
	return left, nil
}

// RMQFuncScheme is the §4(3) search problem as a function scheme: sparse
// table preprocessing, O(1) answering, leftmost tie-breaking.
func RMQFuncScheme() *core.FuncScheme {
	return &core.FuncScheme{
		SchemeName: "rmq/sparse-table",
		Preprocess: func(d []byte) ([]byte, error) {
			a, err := DecodeList(d)
			if err != nil {
				return nil, err
			}
			if len(a) == 0 {
				return nil, fmt.Errorf("schemes: RMQ needs a non-empty array")
			}
			return rmqTableBytes(a), nil
		},
		Apply: func(pd, q []byte) ([]byte, error) {
			vs, err := core.DecodeUint64(q, 2)
			if err != nil {
				return nil, err
			}
			pos, err := rmqTableQuery(pd, int(vs[0]), int(vs[1]))
			if err != nil {
				return nil, err
			}
			return core.EncodeUint64(uint64(pos)), nil
		},
		PreprocessNote: "O(n log n)",
		ApplyNote:      "O(1)",
	}
}

// LCAFuncLanguage is the §4(4) reference: a representative LCA in a DAG,
// recomputed per query.
func LCAFuncLanguage() core.FuncLanguage {
	return core.FuncLanguageFunc{
		LangName: "DAG-LCA",
		Compute: func(d, q []byte) ([]byte, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return nil, err
			}
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return nil, err
			}
			w, ok, err := lca.NaiveDAGLCA(adjOf(g), u, v)
			if err != nil {
				return nil, err
			}
			return encodeLCAAnswer(w, ok), nil
		},
	}
}

func adjOf(g *graph.Graph) [][]int {
	adj := make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			adj[u] = append(adj[u], int(v))
		}
	}
	return adj
}

func encodeLCAAnswer(w int, ok bool) []byte {
	if !ok {
		return core.EncodeUint64(0)
	}
	return core.EncodeUint64(1, uint64(w))
}

// LCAFuncScheme preprocesses the all-pairs representative-LCA table
// (O(|G|³), §4(4) verbatim) into an n×n array of uint32 entries
// (representative+1, 0 for none) and answers in O(1).
func LCAFuncScheme() *core.FuncScheme {
	return &core.FuncScheme{
		SchemeName: "lca/all-pairs-table",
		Preprocess: func(d []byte) ([]byte, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return nil, err
			}
			dag, err := lca.NewDAG(adjOf(g))
			if err != nil {
				return nil, err
			}
			n := dag.Len()
			b := make([]byte, 8+4*n*n)
			binary.BigEndian.PutUint64(b, uint64(n))
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					w, ok, err := dag.LCA(u, v)
					if err != nil {
						return nil, err
					}
					var enc uint32
					if ok {
						enc = uint32(w) + 1
					}
					binary.BigEndian.PutUint32(b[8+4*(u*n+v):], enc)
				}
			}
			return b, nil
		},
		Apply: func(pd, q []byte) ([]byte, error) {
			if len(pd) < 8 {
				return nil, fmt.Errorf("schemes: corrupt LCA table header")
			}
			n := int(binary.BigEndian.Uint64(pd))
			if n < 0 || len(pd) != 8+4*n*n {
				return nil, fmt.Errorf("schemes: LCA table is %d bytes, header claims n=%d", len(pd), n)
			}
			u, v, err := DecodeNodePairQuery(q)
			if err != nil {
				return nil, err
			}
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("schemes: LCA query (%d,%d) out of range [0,%d)", u, v, n)
			}
			enc := binary.BigEndian.Uint32(pd[8+4*(u*n+v):])
			if enc == 0 {
				return encodeLCAAnswer(0, false), nil
			}
			return encodeLCAAnswer(int(enc-1), true), nil
		},
		PreprocessNote: "O(|G|³)",
		ApplyNote:      "O(1)",
	}
}
