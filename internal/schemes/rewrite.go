package schemes

// The query-rewriting scheme (remark below Definition 1, instantiated with
// §4(6) query answering using views): λ rewrites a point-selection query on
// D into a (view, key) probe against the materialized view directory, and
// answering touches only V(D).

import (
	"encoding/binary"
	"fmt"

	"pitract/internal/core"
	"pitract/internal/relation"
	"pitract/internal/views"
)

// Preprocessed layout of the materialized view set:
//
//	[0:8)  k — number of views
//	per view v: lo (8B biased), hi (8B biased), offset (8B), keys (8B)
//	then k segments of sorted biased uint64 keys
func materializeBytes(rel *relation.Relation, defs []views.Def) ([]byte, error) {
	keys, err := rel.SortedInts("key")
	if err != nil {
		return nil, err
	}
	k := len(defs)
	header := 8 + 32*k
	segments := make([][]int64, k)
	for i, def := range defs {
		if def.Hi < def.Lo {
			return nil, fmt.Errorf("schemes: view %q has empty range", def.Name)
		}
		for _, key := range keys {
			if def.Lo <= key && key <= def.Hi {
				segments[i] = append(segments[i], key)
			}
		}
	}
	size := header
	for _, seg := range segments {
		size += 8 * len(seg)
	}
	b := make([]byte, size)
	binary.BigEndian.PutUint64(b, uint64(k))
	off := header
	for i, def := range defs {
		base := 8 + 32*i
		binary.BigEndian.PutUint64(b[base:], uint64(def.Lo)+(1<<63))
		binary.BigEndian.PutUint64(b[base+8:], uint64(def.Hi)+(1<<63))
		binary.BigEndian.PutUint64(b[base+16:], uint64(off))
		binary.BigEndian.PutUint64(b[base+24:], uint64(len(segments[i])))
		for j, key := range segments[i] {
			binary.BigEndian.PutUint64(b[off+8*j:], uint64(key)+(1<<63))
		}
		off += 8 * len(segments[i])
	}
	return b, nil
}

// ViewRewritingScheme builds the §4(6) scheme for a fixed set of range
// views: Π materializes V(D); λ rewrites a point query (key = c) into
// (view index, c), failing when no view covers c — the paper's "answered
// using the views" precondition; answering binary-searches one view
// segment.
func ViewRewritingScheme(defs []views.Def) *core.RewritingScheme {
	return &core.RewritingScheme{
		SchemeName: "point-selection/views",
		Preprocess: func(d []byte) ([]byte, error) {
			rel, err := relation.Decode(d)
			if err != nil {
				return nil, err
			}
			return materializeBytes(rel, defs)
		},
		Rewrite: func(q []byte) ([]byte, error) {
			c, err := DecodePointQuery(q)
			if err != nil {
				return nil, err
			}
			for i, def := range defs {
				if def.Covers("key", c) {
					return core.EncodeUint64(uint64(i), uint64(c)+(1<<63)), nil
				}
			}
			return nil, &views.ErrNoView{Attr: "key", Lo: c, Hi: c}
		},
		Answer: func(pd, lq []byte) (bool, error) {
			vs, err := core.DecodeUint64(lq, 2)
			if err != nil {
				return false, err
			}
			vi := int(vs[0])
			if len(pd) < 8 {
				return false, fmt.Errorf("schemes: corrupt view directory")
			}
			k := int(binary.BigEndian.Uint64(pd))
			if k < 0 || len(pd) < 8+32*k {
				return false, fmt.Errorf("schemes: view directory truncated (%d bytes for k=%d)", len(pd), k)
			}
			if vi < 0 || vi >= k {
				return false, fmt.Errorf("schemes: view %d out of range [0,%d)", vi, k)
			}
			base := 8 + 32*vi
			off := int(binary.BigEndian.Uint64(pd[base+16:]))
			cnt := int(binary.BigEndian.Uint64(pd[base+24:]))
			if off < 0 || cnt < 0 || off+8*cnt > len(pd) {
				return false, fmt.Errorf("schemes: view %d segment [%d,%d) overruns directory of %d bytes",
					vi, off, off+8*cnt, len(pd))
			}
			seg := pd[off : off+8*cnt]
			target := vs[1]
			lo, hi := 0, cnt
			for lo < hi {
				mid := (lo + hi) / 2
				v := binary.BigEndian.Uint64(seg[8*mid:])
				switch {
				case v == target:
					return true, nil
				case v < target:
					lo = mid + 1
				default:
					hi = mid
				}
			}
			return false, nil
		},
		PreprocessNote: "O(|D| log |D| + k·|D|)",
		RewriteNote:    "O(k) per query",
		AnswerNote:     "O(log |V(D)|)",
	}
}
