package schemes

// The Theorem 5 / Corollary 6 chain, assembled from the framework pieces:
// an arbitrary member of P (here: a clocked Turing machine) reduces via the
// Cook–Levin circuit to BDS, the ΠTP-complete problem, and Π-tractability
// of BDS transports back along the reduction (Lemma 3). Everything below is
// checked by tests against direct TM simulation.

import (
	"fmt"
	"sync"

	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/tm"
)

// decodeBits parses an instance of a TM problem: one byte per input bit.
func decodeBits(x []byte) ([]bool, error) {
	in := make([]bool, len(x))
	for i, b := range x {
		switch b {
		case 0:
		case 1:
			in[i] = true
		default:
			return nil, fmt.Errorf("schemes: instance byte %d is %d, want 0/1", i, b)
		}
	}
	return in, nil
}

// EncodeBits renders a binary input as a TM problem instance.
func EncodeBits(in []bool) []byte {
	x := make([]byte, len(in))
	for i, b := range in {
		if b {
			x[i] = 1
		}
	}
	return x
}

// TMProblem wraps a clocked machine as the decision problem
// L = {x | the machine accepts x within its clock}.
func TMProblem(cm tm.Clocked) *core.Problem {
	return &core.Problem{
		ProblemName: "L(" + cm.M.Name + ")",
		Member: func(x []byte) (bool, error) {
			in, err := decodeBits(x)
			if err != nil {
				return false, err
			}
			res := cm.M.Run(in, cm.Bound(len(in)))
			if !res.Halted {
				return false, fmt.Errorf("schemes: %s did not halt within its clock", cm.M.Name)
			}
			return res.Accepted, nil
		},
	}
}

// compileCache memoizes tableau compilation per (machine, input length):
// the circuit depends only on the length, so α and β — which both derive
// their half of h(x) from the full instance — share one compilation.
type compileCache struct {
	cm tm.Clocked
	mu sync.Mutex
	by map[int]*circuit.Circuit
}

func newCompileCache(cm tm.Clocked) *compileCache {
	return &compileCache{cm: cm, by: make(map[int]*circuit.Circuit)}
}

func (c *compileCache) get(n int) (*circuit.Circuit, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if circ, ok := c.by[n]; ok {
		return circ, nil
	}
	circ, err := c.cm.Compile(n)
	if err != nil {
		return nil, err
	}
	// Optimization folds the tableau's constant wires (blank cells, absent
	// heads) — a large shrink that leaves the function untouched.
	opt, err := circuit.Optimize(circ)
	if err != nil {
		return nil, err
	}
	c.by[n] = opt
	return opt, nil
}

// hToBDS is the many-one map h: machine input → BDS instance, composed of
// the Cook–Levin compilation and the circuit→BDS reduction.
func hToBDS(cache *compileCache, x []byte) (*circuit.BDSInstance, error) {
	in, err := decodeBits(x)
	if err != nil {
		return nil, err
	}
	circ, err := cache.get(len(in))
	if err != nil {
		return nil, err
	}
	return circuit.ReduceInstanceToBDS(&circuit.Instance{Circuit: circ, Inputs: in})
}

// TMToBDSReduction packages the Theorem 5 reduction L(machine) ≤ BDS as a
// FactorReduction: the source uses the identity factorization from the
// theorem's proof (π1(x) = π2(x) = x), the target is (BDS, Υ_BDS), and α/β
// each derive their half of h(x) from the full instance.
func TMToBDSReduction(cm tm.Clocked) *core.FactorReduction {
	cache := newCompileCache(cm)
	return &core.FactorReduction{
		From: TMProblem(cm),
		To:   BDSProblem(),
		F1:   core.IdentityFactorization(),
		F2:   BDSFactorization(),
		Map: core.Reduction{
			RedName: "h(" + cm.M.Name + "→CVP→BDS)",
			Alpha: func(d []byte) ([]byte, error) {
				inst, err := hToBDS(cache, d)
				if err != nil {
					return nil, err
				}
				return inst.G.Encode(), nil
			},
			Beta: func(q []byte) ([]byte, error) {
				inst, err := hToBDS(cache, q)
				if err != nil {
					return nil, err
				}
				return NodePairQuery(inst.U, inst.V), nil
			},
		},
	}
}

// TMSchemeViaBDS transports BDS's Π-tractability scheme back along the
// reduction (Lemma 3), yielding a scheme that decides the machine's
// language: preprocess Π(α(x)), answer with β(x) against the visit-order
// index.
func TMSchemeViaBDS(cm tm.Clocked) *core.Scheme {
	red := TMToBDSReduction(cm)
	return core.TransportScheme(&core.Reduction{
		RedName: red.Map.RedName,
		Alpha:   red.Map.Alpha,
		Beta:    red.Map.Beta,
	}, BDSScheme())
}
