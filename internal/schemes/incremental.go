package schemes

// Incremental preprocessing (§1 justification (3); see
// core.IncrementalScheme): maintain Π(D ⊕ ∆D) from Π(D) and ∆D instead of
// re-preprocessing. The instances:
//
//   - the sorted-key file of the point/range-selection and list-membership
//     schemes under insertions (merge in O(|D| + |∆D|), versus
//     O(|D| log |D|) re-sorting);
//   - the reachability closure matrix under edge insertions (ancestor-row
//     OR-ing, work proportional to the affected rows — the §4(7) bounded
//     flavour);
//   - the BFS-per-query baseline, whose "preprocessed" string is the graph
//     itself, so maintenance is appending the edge.
//
// IncrementalForScheme is the catalog the serving layers route through:
// store.Registry.ApplyDelta and the HTTP PATCH /v1/datasets/{id} path
// resolve a dataset's incremental form by scheme name there.

import (
	"encoding/binary"
	"fmt"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
)

// KeysDelta encodes an insertion batch of keys for the point-selection
// scheme.
func KeysDelta(keys []int64) []byte { return EncodeList(keys) }

// IncrementalForScheme returns the incremental form of a scheme, or nil
// when the scheme has none (e.g. the point-selection scan baseline keeps no
// maintained structure, and BDS visit orders are global artifacts an
// insertion can reshuffle wholesale). This is the catalog the serving
// layers consult: store.Registry.ApplyDelta and the server's PATCH
// /v1/datasets/{id} handler resolve a registered dataset's maintenance
// path here by scheme name.
func IncrementalForScheme(name string) *core.IncrementalScheme {
	switch name {
	case "point-selection/sorted-keys":
		return IncrementalPointSelection()
	case "range-selection/sorted-keys":
		return IncrementalRangeSelection()
	case "list-membership/sorted":
		return IncrementalListMembership()
	case "reachability/closure-matrix":
		return IncrementalReachability()
	case "reachability/bfs-per-query":
		return IncrementalReachabilityBFS()
	default:
		return nil
	}
}

// MaintainableSchemes lists the scheme names IncrementalForScheme accepts,
// for error messages and docs.
func MaintainableSchemes() []string {
	return []string{
		"list-membership/sorted",
		"point-selection/sorted-keys",
		"range-selection/sorted-keys",
		"reachability/bfs-per-query",
		"reachability/closure-matrix",
	}
}

// mergeSortedKeyFiles merges a sorted fixed-width key file with a sorted
// batch of new keys, dropping duplicates — the shared maintenance step of
// every sorted-key-file scheme.
func mergeSortedKeyFiles(pd, sorted []byte) []byte {
	out := make([]byte, 0, len(pd)+len(sorted))
	i, j := 0, 0
	for i < len(pd) && j < len(sorted) {
		a := binary.BigEndian.Uint64(pd[i:])
		b := binary.BigEndian.Uint64(sorted[j:])
		switch {
		case a < b:
			out = append(out, pd[i:i+8]...)
			i += 8
		case b < a:
			out = append(out, sorted[j:j+8]...)
			j += 8
		default:
			out = append(out, pd[i:i+8]...)
			i += 8
			j += 8
		}
	}
	out = append(out, pd[i:]...)
	out = append(out, sorted[j:]...)
	return out
}

// applyKeysDelta is the shared ApplyDelta of the sorted-key-file schemes.
func applyKeysDelta(pd, delta []byte) ([]byte, error) {
	if len(pd)%8 != 0 {
		return nil, fmt.Errorf("schemes: corrupt sorted-key file (%d bytes)", len(pd))
	}
	newKeys, err := DecodeList(delta)
	if err != nil {
		return nil, err
	}
	return mergeSortedKeyFiles(pd, putSortedKeys(dedupSorted(newKeys))), nil
}

// appendRelationKeys is the ⊕ of the relation-backed selection schemes:
// append one tuple per inserted key.
func appendRelationKeys(d, delta []byte) ([]byte, error) {
	rel, err := relation.Decode(d)
	if err != nil {
		return nil, err
	}
	newKeys, err := DecodeList(delta)
	if err != nil {
		return nil, err
	}
	for _, k := range newKeys {
		if err := rel.Append(relation.Tuple{relation.Int(k), relation.Str("")}); err != nil {
			return nil, err
		}
	}
	return rel.Encode(), nil
}

// IncrementalPointSelection returns the point-selection scheme extended
// with merge-based maintenance of its sorted key file.
func IncrementalPointSelection() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:      PointSelectionScheme(),
		ApplyDelta:  applyKeysDelta,
		ApplyUpdate: appendRelationKeys,
		DeltaNote:   "O(|D|/8 + |∆D| log |∆D|) merge vs O(|D| log |D|) re-sort",
	}
}

// IncrementalRangeSelection is IncrementalPointSelection for the range
// scheme: the two share the sorted-key-file artifact, so the same merge
// maintains both.
func IncrementalRangeSelection() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:      RangeSelectionScheme(),
		ApplyDelta:  applyKeysDelta,
		ApplyUpdate: appendRelationKeys,
		DeltaNote:   "O(|D|/8 + |∆D| log |∆D|) merge vs O(|D| log |D|) re-sort",
	}
}

// IncrementalListMembership maintains the §4(2) sorted list under element
// insertions with the same merge. Note: the merge deduplicates, while a
// fresh Preprocess of the appended list keeps duplicates, so maintained and
// rebuilt Π are verdict-equivalent but not byte-equivalent when an inserted
// element was already a member.
func IncrementalListMembership() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:     ListMembershipScheme(),
		ApplyDelta: applyKeysDelta,
		ApplyUpdate: func(d, delta []byte) ([]byte, error) {
			list, err := DecodeList(d)
			if err != nil {
				return nil, err
			}
			newKeys, err := DecodeList(delta)
			if err != nil {
				return nil, err
			}
			return EncodeList(append(list, newKeys...)), nil
		},
		DeltaNote: "O(|M|/8 + |∆M| log |∆M|) merge vs O(|M| log |M|) re-sort",
	}
}

func dedupSorted(keys []int64) []int64 {
	if len(keys) == 0 {
		return keys
	}
	sorted := append([]int64(nil), keys...)
	for i := 1; i < len(sorted); i++ { // insertion sort; deltas are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, k := range sorted[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// EdgeDelta encodes an edge insertion for the reachability scheme.
func EdgeDelta(u, v int) []byte { return core.EncodeUint64(uint64(u), uint64(v)) }

// closureInsertArc ORs one arc insertion (u, v) into a closure bitset in
// place: every row that reaches u gains v's descendant row. Rows are read
// from the evolving matrix, which is sound — OR-ing only ever adds true
// transitive facts.
func closureInsertArc(out []byte, n, u, v int) {
	bit := func(r, c int) bool {
		idx := r*n + c
		return out[8+idx/8]&(1<<(idx%8)) != 0
	}
	if bit(u, v) {
		return // already implied; |∆O| = 0
	}
	for a := 0; a < n; a++ {
		if !bit(a, u) {
			continue
		}
		for c := 0; c < n; c++ {
			if bit(v, c) {
				idx := a*n + c
				out[8+idx/8] |= 1 << (idx % 8)
			}
		}
	}
}

// IncrementalReachability returns the closure-matrix scheme extended with
// §4(7)-style maintenance: inserting (u, v) ORs v's descendant row into
// every ancestor row of u, touching only affected rows. The closure
// header's orientation flag decides whether the symmetric arc is inserted
// too, so undirected datasets stay equivalent to a from-scratch rebuild
// (whose AddEdge is symmetric).
func IncrementalReachability() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme: ReachabilityScheme(),
		ApplyDelta: func(pd, delta []byte) ([]byte, error) {
			n, undirected, err := closureHeader(pd)
			if err != nil {
				return nil, err
			}
			u, v, err := DecodeNodePairQuery(delta)
			if err != nil {
				return nil, err
			}
			if u < 0 || u >= n || v < 0 || v >= n || u == v {
				return nil, fmt.Errorf("schemes: bad edge delta (%d,%d)", u, v)
			}
			out := append([]byte(nil), pd...)
			closureInsertArc(out, n, u, v)
			if undirected {
				closureInsertArc(out, n, v, u)
			}
			return out, nil
		},
		ApplyUpdate: addEdgeToGraph,
		DeltaNote:   "O(|ancestors(u)| · n/8) words vs O(n·(n+m)/8) recompute",
	}
}

// addEdgeToGraph decodes a graph, inserts one edge, and re-encodes — both
// the ⊕ of the reachability schemes and the whole maintenance step of the
// BFS baseline (whose preprocessed string is the graph itself).
func addEdgeToGraph(d, delta []byte) ([]byte, error) {
	g, err := graph.Decode(d)
	if err != nil {
		return nil, err
	}
	u, v, err := DecodeNodePairQuery(delta)
	if err != nil {
		return nil, err
	}
	if err := g.AddEdge(u, v); err != nil {
		return nil, err
	}
	return g.Encode(), nil
}

// IncrementalReachabilityBFS maintains the BFS-per-query baseline, whose
// Π(D) is D: inserting an edge appends it to the graph encoding. There is
// nothing index-shaped to maintain, which is exactly why the baseline pays
// O(|V|+|E|) per query forever.
func IncrementalReachabilityBFS() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:      ReachabilityBFSScheme(),
		ApplyDelta:  addEdgeToGraph,
		ApplyUpdate: addEdgeToGraph,
		DeltaNote:   "O(|V|+|E|) re-encode (Π = D); queries stay O(|V|+|E|)",
	}
}
