package schemes

// Incremental preprocessing (§1 justification (3); see
// core.IncrementalScheme): maintain Π(D ⊕ ∆D) from Π(D) and ∆D instead of
// re-preprocessing. The instances:
//
//   - the sorted-key file of the point/range-selection and list-membership
//     schemes under insertions (merge in O(|D| + |∆D|), versus
//     O(|D| log |D|) re-sorting);
//   - the reachability closure matrix under edge insertions (ancestor-row
//     OR-ing, work proportional to the affected rows — the §4(7) bounded
//     flavour);
//   - the BFS-per-query baseline, whose "preprocessed" string is the graph
//     itself, so maintenance is appending the edge.
//
// IncrementalForScheme is the catalog the serving layers route through:
// store.Registry.ApplyDelta and the HTTP PATCH /v1/datasets/{id} path
// resolve a dataset's incremental form by scheme name there.

import (
	"encoding/binary"
	"fmt"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
)

// KeysDelta encodes an insertion batch of keys for the point-selection
// scheme.
func KeysDelta(keys []int64) []byte { return EncodeList(keys) }

// KeysDeleteDelta encodes a retraction batch for the sorted-key-file
// schemes: every record carrying a batch key is dropped (tombstone
// semantics — deleting an absent key is a no-op, so retractions are
// idempotent and replay-safe).
func KeysDeleteDelta(keys []int64) []byte {
	return core.TagDelta(core.DeltaDelete, EncodeList(keys))
}

// KeysUpsertDelta encodes an insert-where-absent batch. Unlike a plain
// insert it keeps the raw data duplicate-free, so maintained and rebuilt
// list-membership artifacts stay byte-identical.
func KeysUpsertDelta(keys []int64) []byte {
	return core.TagDelta(core.DeltaUpsert, EncodeList(keys))
}

// IncrementalForScheme returns the incremental form of a scheme, or nil
// when the scheme has none (e.g. the point-selection scan baseline keeps no
// maintained structure, and BDS visit orders are global artifacts an
// insertion can reshuffle wholesale). This is the catalog the serving
// layers consult: store.Registry.ApplyDelta and the server's PATCH
// /v1/datasets/{id} handler resolve a registered dataset's maintenance
// path here by scheme name.
func IncrementalForScheme(name string) *core.IncrementalScheme {
	switch name {
	case "point-selection/sorted-keys":
		return IncrementalPointSelection()
	case "range-selection/sorted-keys":
		return IncrementalRangeSelection()
	case "list-membership/sorted":
		return IncrementalListMembership()
	case "reachability/closure-matrix":
		return IncrementalReachability()
	case "reachability/labels":
		return IncrementalReachabilityLabels()
	case "reachability/bfs-per-query":
		return IncrementalReachabilityBFS()
	default:
		return nil
	}
}

// MaintainableSchemes lists the scheme names IncrementalForScheme accepts,
// for error messages and docs.
func MaintainableSchemes() []string {
	return []string{
		"list-membership/sorted",
		"point-selection/sorted-keys",
		"range-selection/sorted-keys",
		"reachability/bfs-per-query",
		"reachability/closure-matrix",
		"reachability/labels",
	}
}

// mergeSortedKeyFiles merges a sorted fixed-width key file with a sorted
// batch of new keys, dropping duplicates — the shared maintenance step of
// every sorted-key-file scheme.
func mergeSortedKeyFiles(pd, sorted []byte) []byte {
	out := make([]byte, 0, len(pd)+len(sorted))
	i, j := 0, 0
	for i < len(pd) && j < len(sorted) {
		a := binary.BigEndian.Uint64(pd[i:])
		b := binary.BigEndian.Uint64(sorted[j:])
		switch {
		case a < b:
			out = append(out, pd[i:i+8]...)
			i += 8
		case b < a:
			out = append(out, sorted[j:j+8]...)
			j += 8
		default:
			out = append(out, pd[i:i+8]...)
			i += 8
			j += 8
		}
	}
	out = append(out, pd[i:]...)
	out = append(out, sorted[j:]...)
	return out
}

// deleteSortedKeys drops every fixed-width record whose key appears in the
// tombstone batch — all duplicate records of a key fall together, matching
// a fresh rebuild of the retracted data. Keys absent from the file are
// ignored (idempotent tombstones).
func deleteSortedKeys(pd []byte, keys []int64) []byte {
	tombs := putSortedKeys(dedupSorted(keys))
	out := make([]byte, 0, len(pd))
	j := 0
	for i := 0; i < len(pd); i += 8 {
		a := binary.BigEndian.Uint64(pd[i:])
		for j < len(tombs) && binary.BigEndian.Uint64(tombs[j:]) < a {
			j += 8
		}
		if j < len(tombs) && binary.BigEndian.Uint64(tombs[j:]) == a {
			continue
		}
		out = append(out, pd[i:i+8]...)
	}
	return out
}

// applyKeysDelta is the shared ApplyDelta of the sorted-key-file schemes:
// inserts and upserts merge (the merge already skips present keys), deletes
// tombstone.
func applyKeysDelta(pd, delta []byte) ([]byte, error) {
	if len(pd)%8 != 0 {
		return nil, fmt.Errorf("schemes: corrupt sorted-key file (%d bytes)", len(pd))
	}
	kind, payload, err := core.DeltaParts(delta)
	if err != nil {
		return nil, err
	}
	keys, err := DecodeList(payload)
	if err != nil {
		return nil, err
	}
	if kind == core.DeltaDelete {
		return deleteSortedKeys(pd, keys), nil
	}
	return mergeSortedKeyFiles(pd, putSortedKeys(dedupSorted(keys))), nil
}

// applyRelationKeys is the ⊕ of the relation-backed selection schemes:
// insert appends one tuple per key, upsert appends only absent keys, delete
// removes every tuple carrying a batch key.
func applyRelationKeys(d, delta []byte) ([]byte, error) {
	rel, err := relation.Decode(d)
	if err != nil {
		return nil, err
	}
	kind, payload, err := core.DeltaParts(delta)
	if err != nil {
		return nil, err
	}
	keys, err := DecodeList(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case core.DeltaDelete:
		idx := rel.Schema.AttrIndex("key")
		if idx < 0 {
			return nil, fmt.Errorf("schemes: relation %q has no key attribute to delete by", rel.Schema.Name)
		}
		dropped := make(map[int64]bool, len(keys))
		for _, k := range keys {
			dropped[k] = true
		}
		kept := rel.Tuples[:0]
		for _, t := range rel.Tuples {
			if !dropped[t[idx].I] {
				kept = append(kept, t)
			}
		}
		rel.Tuples = kept
	case core.DeltaUpsert:
		for _, k := range keys {
			present, err := rel.ScanPointSelect("key", relation.Int(k))
			if err != nil {
				return nil, err
			}
			if present {
				continue
			}
			if err := rel.Append(relation.Tuple{relation.Int(k), relation.Str("")}); err != nil {
				return nil, err
			}
		}
	default:
		for _, k := range keys {
			if err := rel.Append(relation.Tuple{relation.Int(k), relation.Str("")}); err != nil {
				return nil, err
			}
		}
	}
	return rel.Encode(), nil
}

// IncrementalPointSelection returns the point-selection scheme extended
// with merge-based maintenance of its sorted key file.
func IncrementalPointSelection() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:      PointSelectionScheme(),
		ApplyDelta:  applyKeysDelta,
		ApplyUpdate: applyRelationKeys,
		DeltaNote:   "O(|D|/8 + |∆D| log |∆D|) merge/tombstone vs O(|D| log |D|) re-sort",
	}
}

// IncrementalRangeSelection is IncrementalPointSelection for the range
// scheme: the two share the sorted-key-file artifact, so the same merge
// maintains both.
func IncrementalRangeSelection() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:      RangeSelectionScheme(),
		ApplyDelta:  applyKeysDelta,
		ApplyUpdate: applyRelationKeys,
		DeltaNote:   "O(|D|/8 + |∆D| log |∆D|) merge/tombstone vs O(|D| log |D|) re-sort",
	}
}

// IncrementalListMembership maintains the §4(2) sorted list under element
// insertions with the same merge. Note: the merge deduplicates, while a
// fresh Preprocess of the appended list keeps duplicates, so maintained and
// rebuilt Π are verdict-equivalent but not byte-equivalent when an inserted
// element was already a member.
func IncrementalListMembership() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:     ListMembershipScheme(),
		ApplyDelta: applyKeysDelta,
		ApplyUpdate: func(d, delta []byte) ([]byte, error) {
			list, err := DecodeList(d)
			if err != nil {
				return nil, err
			}
			kind, payload, err := core.DeltaParts(delta)
			if err != nil {
				return nil, err
			}
			newKeys, err := DecodeList(payload)
			if err != nil {
				return nil, err
			}
			switch kind {
			case core.DeltaDelete:
				dropped := make(map[int64]bool, len(newKeys))
				for _, k := range newKeys {
					dropped[k] = true
				}
				kept := list[:0]
				for _, e := range list {
					if !dropped[e] {
						kept = append(kept, e)
					}
				}
				return EncodeList(kept), nil
			case core.DeltaUpsert:
				present := make(map[int64]bool, len(list))
				for _, e := range list {
					present[e] = true
				}
				for _, k := range newKeys {
					if !present[k] {
						present[k] = true
						list = append(list, k)
					}
				}
				return EncodeList(list), nil
			default:
				return EncodeList(append(list, newKeys...)), nil
			}
		},
		DeltaNote: "O(|M|/8 + |∆M| log |∆M|) merge vs O(|M| log |M|) re-sort",
	}
}

func dedupSorted(keys []int64) []int64 {
	if len(keys) == 0 {
		return keys
	}
	sorted := append([]int64(nil), keys...)
	for i := 1; i < len(sorted); i++ { // insertion sort; deltas are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, k := range sorted[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// EdgeDelta encodes an edge insertion for the reachability scheme.
func EdgeDelta(u, v int) []byte { return core.EncodeUint64(uint64(u), uint64(v)) }

// EdgeDeleteDelta encodes an edge retraction. Unlike key tombstones,
// deleting an absent edge is an error: an edge is a concrete asserted
// datum, and absorbing its absence would mask routing bugs in sharded
// splits.
func EdgeDeleteDelta(u, v int) []byte {
	return core.TagDelta(core.DeltaDelete, core.EncodeUint64(uint64(u), uint64(v)))
}

// EdgeUpsertDelta encodes an insert-unless-present edge.
func EdgeUpsertDelta(u, v int) []byte {
	return core.TagDelta(core.DeltaUpsert, core.EncodeUint64(uint64(u), uint64(v)))
}

// closureInsertArc ORs one arc insertion (u, v) into a closure bitset in
// place: every row that reaches u gains v's descendant row. Rows are read
// from the evolving matrix, which is sound — OR-ing only ever adds true
// transitive facts.
func closureInsertArc(out []byte, n, u, v int) {
	bit := func(r, c int) bool {
		idx := r*n + c
		return out[8+idx/8]&(1<<(idx%8)) != 0
	}
	if bit(u, v) {
		return // already implied; |∆O| = 0
	}
	for a := 0; a < n; a++ {
		if !bit(a, u) {
			continue
		}
		for c := 0; c < n; c++ {
			if bit(v, c) {
				idx := a*n + c
				out[8+idx/8] |= 1 << (idx % 8)
			}
		}
	}
}

// IncrementalReachability returns the closure-matrix scheme extended with
// §4(7)-style maintenance in both directions. Inserting (u, v) ORs v's
// descendant row into every ancestor row of u, touching only affected rows;
// the closure header's orientation flag decides whether the symmetric arc
// is inserted too, so undirected datasets stay equivalent to a from-scratch
// rebuild (whose AddEdge is symmetric).
//
// Deleting (u, v) uses the graph appendix (ClosureGraphFlag) and Vigny's
// observation (arXiv:2010.02982) that retractions are cheap when
// connectivity survives: after removing the edge, if u still reaches v,
// every old path through the deleted arc reroutes along the surviving u⇝v
// path and the matrix is bitwise unchanged — one O(|V|+|E|) traversal
// settles the whole update. Only when the deletion actually disconnects
// u from v do we fall back to recomputing the affected rows (exactly the
// old ancestors of u; no other row can lose a fact), each by a fresh
// traversal, with the dense rebuild kept as the differential oracle in the
// test suites.
func IncrementalReachability() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme: ReachabilityScheme(),
		ApplyDelta: func(pd, delta []byte) ([]byte, error) {
			kind, payload, err := core.DeltaParts(delta)
			if err != nil {
				return nil, err
			}
			n, undirected, bits, graphEnc, err := closureParts(pd)
			if err != nil {
				return nil, err
			}
			u, v, err := DecodeNodePairQuery(payload)
			if err != nil {
				return nil, err
			}
			if u < 0 || u >= n || v < 0 || v >= n || u == v {
				return nil, fmt.Errorf("schemes: bad edge delta (%d,%d)", u, v)
			}
			if graphEnc == nil {
				// Closure persisted before the appendix existed: insertions
				// keep working from the matrix alone, but a retraction
				// cannot be decided without the surviving edges.
				if kind == core.DeltaDelete {
					return nil, fmt.Errorf("schemes: closure predates the graph appendix; re-register the dataset to enable deletions")
				}
				out := append([]byte(nil), pd...)
				closureInsertArc(out, n, u, v)
				if undirected {
					closureInsertArc(out, n, v, u)
				}
				return out, nil
			}
			g, err := graph.Decode(graphEnc)
			if err != nil {
				return nil, err
			}
			if g.N() != n {
				return nil, fmt.Errorf("schemes: closure appendix has %d vertices, header claims %d", g.N(), n)
			}
			head := pd[:8+len(bits)]
			if kind == core.DeltaDelete {
				if err := g.RemoveEdge(u, v); err != nil {
					return nil, err
				}
				out := append([]byte(nil), head...)
				if !g.Reachable(u, v) {
					recomputeClosureRows(out, bits, n, u, g)
				}
				return appendClosureGraph(out, g), nil
			}
			// Insert and upsert coincide here: a present edge is already
			// dedup'd by the rebuild's Normalize, so the rebuilt Π is
			// bitwise identical to the unchanged one.
			if g.HasEdge(u, v) {
				return pd, nil
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			out := append([]byte(nil), head...)
			closureInsertArc(out, n, u, v)
			if undirected {
				closureInsertArc(out, n, v, u)
			}
			return appendClosureGraph(out, g), nil
		},
		ApplyUpdate: applyEdgeToGraph,
		DeltaNote:   "insert O(|ancestors(u)| · n/8) words; delete O(|V|+|E|) when u⇝v survives, else affected-row recompute",
	}
}

// recomputeClosureRows rewrites, in out's bitset (rooted at byte 8), every
// row that could have lost a fact to the deletion of arc (u, ·): exactly
// the rows whose old bits reached u — any old path through the arc passes
// u, and deletions never add facts, so all other rows are unchanged. Each
// affected row is refilled by a traversal of the surviving graph, matching
// graph.NewClosure's reflexive semantics bit for bit.
func recomputeClosureRows(out, oldBits []byte, n, u int, g *graph.Graph) {
	for a := 0; a < n; a++ {
		idx := a*n + u
		if oldBits[idx/8]&(1<<(idx%8)) == 0 {
			continue
		}
		_, dist := g.BFS(a)
		for c := 0; c < n; c++ {
			idx := a*n + c
			if dist[c] >= 0 {
				out[8+idx/8] |= 1 << (idx % 8)
			} else {
				out[8+idx/8] &^= 1 << (idx % 8)
			}
		}
	}
}

// applyEdgeToGraph decodes a graph, applies one edge delta, and re-encodes
// — both the ⊕ of the reachability schemes and the whole maintenance step
// of the BFS baseline (whose preprocessed string is the graph itself).
func applyEdgeToGraph(d, delta []byte) ([]byte, error) {
	g, err := graph.Decode(d)
	if err != nil {
		return nil, err
	}
	kind, payload, err := core.DeltaParts(delta)
	if err != nil {
		return nil, err
	}
	u, v, err := DecodeNodePairQuery(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case core.DeltaDelete:
		err = g.RemoveEdge(u, v)
	case core.DeltaUpsert:
		if !g.HasEdge(u, v) {
			err = g.AddEdge(u, v)
		}
	default:
		err = g.AddEdge(u, v)
	}
	if err != nil {
		return nil, err
	}
	return g.Encode(), nil
}

// IncrementalReachabilityBFS maintains the BFS-per-query baseline, whose
// Π(D) is D: an edge delta edits the graph encoding directly. There is
// nothing index-shaped to maintain, which is exactly why the baseline pays
// O(|V|+|E|) per query forever.
func IncrementalReachabilityBFS() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme:      ReachabilityBFSScheme(),
		ApplyDelta:  applyEdgeToGraph,
		ApplyUpdate: applyEdgeToGraph,
		DeltaNote:   "O(|V|+|E|) re-encode (Π = D); queries stay O(|V|+|E|)",
	}
}
