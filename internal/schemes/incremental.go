package schemes

// Incremental preprocessing (§1 justification (3); see
// core.IncrementalScheme): maintain Π(D ⊕ ∆D) from Π(D) and ∆D instead of
// re-preprocessing. Two instances:
//
//   - the sorted-key file of the point-selection scheme under tuple
//     insertions (merge in O(|D| + |∆D|), versus O(|D| log |D|) re-sorting);
//   - the reachability closure matrix under edge insertions (ancestor-row
//     OR-ing, work proportional to the affected rows — the §4(7) bounded
//     flavour).

import (
	"encoding/binary"
	"fmt"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
)

// KeysDelta encodes an insertion batch of keys for the point-selection
// scheme.
func KeysDelta(keys []int64) []byte { return EncodeList(keys) }

// IncrementalPointSelection returns the point-selection scheme extended
// with merge-based maintenance of its sorted key file.
func IncrementalPointSelection() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme: PointSelectionScheme(),
		ApplyDelta: func(pd, delta []byte) ([]byte, error) {
			newKeys, err := DecodeList(delta)
			if err != nil {
				return nil, err
			}
			sorted := putSortedKeys(dedupSorted(newKeys))
			// Merge two sorted fixed-width files, dropping duplicates.
			out := make([]byte, 0, len(pd)+len(sorted))
			i, j := 0, 0
			for i < len(pd) && j < len(sorted) {
				a := binary.BigEndian.Uint64(pd[i:])
				b := binary.BigEndian.Uint64(sorted[j:])
				switch {
				case a < b:
					out = append(out, pd[i:i+8]...)
					i += 8
				case b < a:
					out = append(out, sorted[j:j+8]...)
					j += 8
				default:
					out = append(out, pd[i:i+8]...)
					i += 8
					j += 8
				}
			}
			out = append(out, pd[i:]...)
			out = append(out, sorted[j:]...)
			return out, nil
		},
		ApplyUpdate: func(d, delta []byte) ([]byte, error) {
			rel, err := relation.Decode(d)
			if err != nil {
				return nil, err
			}
			newKeys, err := DecodeList(delta)
			if err != nil {
				return nil, err
			}
			for _, k := range newKeys {
				if err := rel.Append(relation.Tuple{relation.Int(k), relation.Str("")}); err != nil {
					return nil, err
				}
			}
			return rel.Encode(), nil
		},
		DeltaNote: "O(|D|/8 + |∆D| log |∆D|) merge vs O(|D| log |D|) re-sort",
	}
}

func dedupSorted(keys []int64) []int64 {
	if len(keys) == 0 {
		return keys
	}
	sorted := append([]int64(nil), keys...)
	for i := 1; i < len(sorted); i++ { // insertion sort; deltas are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, k := range sorted[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// EdgeDelta encodes an edge insertion for the reachability scheme.
func EdgeDelta(u, v int) []byte { return core.EncodeUint64(uint64(u), uint64(v)) }

// IncrementalReachability returns the closure-matrix scheme extended with
// §4(7)-style maintenance: inserting (u, v) ORs v's descendant row into
// every ancestor row of u, touching only affected rows.
func IncrementalReachability() *core.IncrementalScheme {
	return &core.IncrementalScheme{
		Scheme: ReachabilityScheme(),
		ApplyDelta: func(pd, delta []byte) ([]byte, error) {
			if len(pd) < 8 {
				return nil, fmt.Errorf("schemes: corrupt closure header")
			}
			u, v, err := DecodeNodePairQuery(delta)
			if err != nil {
				return nil, err
			}
			n := int(binary.BigEndian.Uint64(pd))
			if u < 0 || u >= n || v < 0 || v >= n || u == v {
				return nil, fmt.Errorf("schemes: bad edge delta (%d,%d)", u, v)
			}
			out := append([]byte(nil), pd...)
			bit := func(b []byte, r, c int) bool {
				idx := r*n + c
				return b[8+idx/8]&(1<<(idx%8)) != 0
			}
			setBit := func(b []byte, r, c int) {
				idx := r*n + c
				b[8+idx/8] |= 1 << (idx % 8)
			}
			if bit(out, u, v) {
				return out, nil // already implied; |∆O| = 0
			}
			for a := 0; a < n; a++ {
				if !bit(out, a, u) {
					continue
				}
				for c := 0; c < n; c++ {
					if bit(pd, v, c) {
						setBit(out, a, c)
					}
				}
			}
			return out, nil
		},
		ApplyUpdate: func(d, delta []byte) ([]byte, error) {
			g, err := graph.Decode(d)
			if err != nil {
				return nil, err
			}
			u, v, err := DecodeNodePairQuery(delta)
			if err != nil {
				return nil, err
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			return g.Encode(), nil
		},
		DeltaNote: "O(|ancestors(u)| · n/8) words vs O(n·(n+m)/8) recompute",
	}
}
