package schemes

// Differential pinning of the prepared answerers against the raw Answer
// oracle: for every scheme with a typed prepared form, the prepared probe
// must return the identical verdict — and on bad queries the identical
// error string — as Answer(pd, q) on the same preprocessed string.

import (
	"testing"

	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
)

// preparedCase is one scheme plus a workload: a data part and a query mix
// that exercises hits, misses, bounds violations, and malformed queries.
type preparedCase struct {
	scheme  *core.Scheme
	data    []byte
	queries [][]byte
}

func preparedCases(t *testing.T) map[string]preparedCase {
	t.Helper()
	rel := relation.Generate(relation.GenConfig{Rows: 300, Seed: 7, KeyMax: 500})
	list := EncodeList([]int64{-9, 0, 3, 3, 14, 99, 1 << 40})
	dg := graph.RandomDirected(48, 130, 11)
	ug := graph.RandomConnectedUndirected(40, 90, 3)
	inst := circuit.Generate(circuit.GenConfig{Inputs: 8, Gates: 64, Seed: 5})
	cvp := circuit.EncodeInstance(&circuit.Instance{Circuit: inst, Inputs: circuit.RandomInputs(8, 6)})

	selQueries := [][]byte{}
	for k := int64(-3); k < 40; k += 7 {
		selQueries = append(selQueries, PointQuery(k))
	}
	selQueries = append(selQueries, []byte{1, 2}, nil) // malformed

	rangeQueries := [][]byte{
		RangeQuery(0, 10), RangeQuery(10, 0), RangeQuery(-50, 600),
		RangeQuery(77, 77), []byte{9}, nil,
	}

	pairQueries := func(n int) [][]byte {
		qs := [][]byte{}
		for u := 0; u < n; u += 5 {
			for v := 1; v < n; v += 7 {
				qs = append(qs, NodePairQuery(u, v))
			}
		}
		// Out-of-range pairs and malformed queries.
		return append(qs, NodePairQuery(n, 0), NodePairQuery(0, n+3), []byte{1}, nil)
	}

	gateQueries := [][]byte{GateQuery(0), GateQuery(5), GateQuery(63), GateQuery(64), GateQuery(1 << 20), []byte{7}, nil}

	return map[string]preparedCase{
		"point-sorted": {PointSelectionScheme(), rel.Encode(), selQueries},
		"point-scan":   {PointSelectionScanScheme(), rel.Encode(), selQueries},
		"range":        {RangeSelectionScheme(), rel.Encode(), rangeQueries},
		"list":         {ListMembershipScheme(), list, selQueries},
		"closure-dir":  {ReachabilityScheme(), dg.Encode(), pairQueries(48)},
		"closure-und":  {ReachabilityScheme(), ug.Encode(), pairQueries(40)},
		"labels-dir":   {ReachabilityLabelsScheme(), dg.Encode(), pairQueries(48)},
		"labels-und":   {ReachabilityLabelsScheme(), ug.Encode(), pairQueries(40)},
		"bfs":          {ReachabilityBFSScheme(), dg.Encode(), pairQueries(48)},
		"bds":          {BDSScheme(), ug.Encode(), pairQueries(40)},
		"cvp":          {CVPGateValueScheme(), cvp, gateQueries},
	}
}

// TestPreparedVsRawDifferential pins prepared ≡ raw, query for query and
// error string for error string.
func TestPreparedVsRawDifferential(t *testing.T) {
	for name, tc := range preparedCases(t) {
		t.Run(name, func(t *testing.T) {
			if tc.scheme.PrepareAnswerer == nil {
				t.Fatalf("scheme %s has no prepared form", tc.scheme.Name())
			}
			pd, err := tc.scheme.Preprocess(tc.data)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := tc.scheme.Prepare(pd)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			for i, q := range tc.queries {
				rawGot, rawErr := tc.scheme.Answer(pd, q)
				prepGot, prepErr := ans.Answer(q)
				if (rawErr == nil) != (prepErr == nil) {
					t.Fatalf("query %d: raw err %v, prepared err %v", i, rawErr, prepErr)
				}
				if rawErr != nil {
					if rawErr.Error() != prepErr.Error() {
						t.Fatalf("query %d: error strings diverge:\n raw:      %v\n prepared: %v", i, rawErr, prepErr)
					}
					continue
				}
				if rawGot != prepGot {
					t.Fatalf("query %d: raw %v, prepared %v", i, rawGot, prepGot)
				}
			}
		})
	}
}

// TestPreparedRejectsCorruptPayload pins that Prepare surfaces the same
// validation error the raw path reports per query, for the schemes that
// validate their payload.
func TestPreparedRejectsCorruptPayload(t *testing.T) {
	cases := map[string]struct {
		scheme *core.Scheme
		pd     []byte
	}{
		"closure-short-header":  {ReachabilityScheme(), []byte{1, 2, 3}},
		"closure-length-lie":    {ReachabilityScheme(), append(core.EncodeUint64(100), 0xff)},
		"cvp-short-header":      {CVPGateValueScheme(), []byte{9}},
		"cvp-length-lie":        {CVPGateValueScheme(), append(core.EncodeUint64(1000), 1)},
		"bfs-corrupt-graph":     {ReachabilityBFSScheme(), []byte{0xff, 0xff, 0xff, 0xff, 0xff}},
		"scan-corrupt-relation": {PointSelectionScanScheme(), []byte{0xff, 0xff}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, prepErr := tc.scheme.Prepare(tc.pd)
			if prepErr == nil {
				t.Fatalf("prepare accepted corrupt payload")
			}
			_, rawErr := tc.scheme.Answer(tc.pd, NodePairQuery(0, 1))
			if rawErr == nil {
				t.Fatalf("raw path accepted corrupt payload")
			}
			if rawErr.Error() != prepErr.Error() {
				t.Fatalf("error strings diverge:\n raw:      %v\n prepared: %v", rawErr, prepErr)
			}
		})
	}
}

// TestPreparedFallbackCoversEveryScheme pins the seam's totality: a scheme
// without a typed prepared form still answers through Prepare (via the raw
// fallback), identically to Answer.
func TestPreparedFallbackCoversEveryScheme(t *testing.T) {
	s := BDSNoPreprocessScheme()
	pd, err := s.Preprocess(nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := s.Prepare(pd)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnectedUndirected(16, 30, 2)
	q := core.PadPair(g.Encode(), NodePairQuery(1, 5))
	rawGot, rawErr := s.Answer(pd, q)
	prepGot, prepErr := ans.Answer(q)
	if rawErr != nil || prepErr != nil {
		t.Fatalf("raw err %v, prepared err %v", rawErr, prepErr)
	}
	if rawGot != prepGot {
		t.Fatalf("fallback diverged: raw %v, prepared %v", rawGot, prepGot)
	}
}
