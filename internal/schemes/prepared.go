package schemes

// Typed prepared answerers (core.PreparedScheme). Each scheme's raw Answer
// re-locates its structure inside the preprocessed string on every call —
// parsing the closure header, re-deriving the sorted-file length, or (for
// the search-per-query baselines) re-decoding the entire graph or relation.
// Prepare does that exactly once per Π(D): it validates the payload and
// decodes it into a typed in-memory form whose Answer is only the probe.
//
// Every answerer here is pinned differentially against the raw Answer
// oracle (TestPreparedVsRawDifferential): identical verdicts and identical
// error strings on the same inputs. Validation errors a raw Answer would
// report per query are reported once, at Prepare, with the same message;
// the serving layer (store.Store) surfaces that error on every Answer, so
// the observable behavior of a corrupt Π is unchanged.
//
// Concurrency: prepared forms are immutable after Prepare returns (the
// decoded graph is normalized up front so traversals never mutate it), so
// Answer is safe from any number of goroutines — the same contract as the
// raw path (core/batch.go).

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
)

// --- sorted key files (point/range selection, list membership) ---------------

// sortedKeysAnswerer is the decoded sorted key file: binary search probes
// compare int64s directly instead of re-decoding 8-byte big-endian records
// per comparison. rangeQueries selects the range-selection query codec.
type sortedKeysAnswerer struct {
	keys         []int64
	rangeQueries bool
}

// decodeSortedKeys unpacks an n×8-byte sorted key file. Like the raw
// searchSortedKeys path, trailing bytes beyond the last full record are
// ignored rather than rejected.
func decodeSortedKeys(pd []byte) []int64 {
	n := len(pd) / 8
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = sortedKeyAt(pd, i)
	}
	return keys
}

// searchInt64s locates the first index with keys[i] >= target.
func searchInt64s(keys []int64, target int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= target })
}

// Answer implements core.Answerer.
func (a *sortedKeysAnswerer) Answer(q []byte) (bool, error) {
	if a.rangeQueries {
		lo, hi, err := DecodeRangeQuery(q)
		if err != nil {
			return false, err
		}
		if hi < lo {
			return false, nil
		}
		idx := searchInt64s(a.keys, lo)
		return idx < len(a.keys) && a.keys[idx] <= hi, nil
	}
	c, err := DecodePointQuery(q)
	if err != nil {
		return false, err
	}
	idx := searchInt64s(a.keys, c)
	return idx < len(a.keys) && a.keys[idx] == c, nil
}

// prepareSortedKeys builds the point-query answerer over a sorted key file.
func prepareSortedKeys(pd []byte) (core.Answerer, error) {
	return &sortedKeysAnswerer{keys: decodeSortedKeys(pd)}, nil
}

// prepareSortedKeysRange is prepareSortedKeys for the range-selection codec.
func prepareSortedKeysRange(pd []byte) (core.Answerer, error) {
	return &sortedKeysAnswerer{keys: decodeSortedKeys(pd), rangeQueries: true}, nil
}

// --- reachability closure matrix ---------------------------------------------

// closureAnswerer is the validated closure: the header is parsed once, the
// bitset re-packed into words, and each probe is a bounds check plus one
// word read.
type closureAnswerer struct {
	n     int
	words []uint64
}

// Answer implements core.Answerer.
func (a *closureAnswerer) Answer(q []byte) (bool, error) {
	u, v, err := DecodeNodePairQuery(q)
	if err != nil {
		return false, err
	}
	if u < 0 || u >= a.n || v < 0 || v >= a.n {
		return false, fmt.Errorf("schemes: node pair (%d,%d) out of range [0,%d)", u, v, a.n)
	}
	bit := u*a.n + v
	return a.words[bit>>6]>>(bit&63)&1 != 0, nil
}

// prepareClosure validates the closure header once (same errors as the raw
// path) and packs the row-major bitset into 64-bit words for direct probes.
func prepareClosure(pd []byte) (core.Answerer, error) {
	n, _, bits, _, err := closureParts(pd)
	if err != nil {
		return nil, err
	}
	words := make([]uint64, (n*n+63)/64)
	for i, b := range bits {
		words[i>>3] |= uint64(b) << ((i & 7) * 8)
	}
	return &closureAnswerer{n: n, words: words}, nil
}

// --- reachability BFS baseline ------------------------------------------------

// bfsAnswerer holds the graph decoded once; each query is a fresh traversal
// over the in-memory adjacency instead of a decode plus a traversal. The
// graph is normalized at Prepare so concurrent searches never mutate it.
type bfsAnswerer struct {
	g *graph.Graph
}

// Answer implements core.Answerer.
func (a *bfsAnswerer) Answer(q []byte) (bool, error) {
	u, v, err := DecodeNodePairQuery(q)
	if err != nil {
		return false, err
	}
	if u < 0 || u >= a.g.N() || v < 0 || v >= a.g.N() {
		return false, fmt.Errorf("schemes: node pair (%d,%d) out of range", u, v)
	}
	return a.g.Reachable(u, v), nil
}

// prepareBFS decodes the graph once — the whole point for a baseline whose
// raw path re-decodes O(|V|+|E|) bytes per query.
func prepareBFS(pd []byte) (core.Answerer, error) {
	g, err := graph.Decode(pd)
	if err != nil {
		return nil, err
	}
	g.Normalize()
	return &bfsAnswerer{g: g}, nil
}

// --- BDS visit order ----------------------------------------------------------

// bdsAnswerer is the decoded pos array: two slice reads per query.
type bdsAnswerer struct {
	pos []uint32
}

// Answer implements core.Answerer.
func (a *bdsAnswerer) Answer(q []byte) (bool, error) {
	u, v, err := DecodeNodePairQuery(q)
	if err != nil {
		return false, err
	}
	if u < 0 || u >= len(a.pos) || v < 0 || v >= len(a.pos) {
		return false, fmt.Errorf("schemes: node pair (%d,%d) out of range [0,%d)", u, v, len(a.pos))
	}
	return a.pos[u] < a.pos[v], nil
}

// prepareBDS unpacks the n×4-byte pos file (trailing bytes ignored, like
// the raw path).
func prepareBDS(pd []byte) (core.Answerer, error) {
	n := len(pd) / 4
	pos := make([]uint32, n)
	for i := range pos {
		pos[i] = binary.BigEndian.Uint32(pd[i*4:])
	}
	return &bdsAnswerer{pos: pos}, nil
}

// --- CVP gate values ----------------------------------------------------------

// cvpGateAnswerer is the validated gate-value bitset: header checked once,
// probes are a bounds check plus one byte read.
type cvpGateAnswerer struct {
	n    int
	bits []byte
}

// Answer implements core.Answerer.
func (a *cvpGateAnswerer) Answer(q []byte) (bool, error) {
	vs, err := core.DecodeUint64(q, 1)
	if err != nil {
		return false, err
	}
	g := int(vs[0])
	if g < 0 || g >= a.n {
		return false, fmt.Errorf("schemes: gate %d out of range [0,%d)", g, a.n)
	}
	return a.bits[g/8]&(1<<(g%8)) != 0, nil
}

// prepareCVPGates validates the gate-value header once (same errors as the
// raw path).
func prepareCVPGates(pd []byte) (core.Answerer, error) {
	n, err := gateValueHeader(pd)
	if err != nil {
		return nil, err
	}
	return &cvpGateAnswerer{n: n, bits: pd[8:]}, nil
}

// --- point-selection scan baseline --------------------------------------------

// pointScanAnswerer holds the relation decoded once; each query scans the
// in-memory tuples instead of re-decoding the whole relation.
type pointScanAnswerer struct {
	rel *relation.Relation
}

// Answer implements core.Answerer.
func (a *pointScanAnswerer) Answer(q []byte) (bool, error) {
	c, err := DecodePointQuery(q)
	if err != nil {
		return false, err
	}
	return a.rel.ScanPointSelect("key", relation.Int(c))
}

// preparePointScan decodes the relation once. The scan per query remains —
// that O(|D|) cost is exactly what the baseline exists to demonstrate — but
// the per-query decode does not.
func preparePointScan(pd []byte) (core.Answerer, error) {
	rel, err := relation.Decode(pd)
	if err != nil {
		return nil, err
	}
	return &pointScanAnswerer{rel: rel}, nil
}
