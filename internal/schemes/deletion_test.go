package schemes

import (
	"encoding/binary"
	"strings"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
)

// TestDeletionDifferential runs the defining incremental equation with
// mixed-kind sequences — insert, delete, re-insert (upsert), delete again —
// through every delta-capable scheme: after every update the maintained Π
// must answer every probe exactly like a from-scratch preprocessing of the
// updated data.
func TestDeletionDifferential(t *testing.T) {
	keys := []int64{2, 4, 6, 8, 10, 12}
	keyDeltas := [][]byte{
		KeysDelta([]int64{5, 7}),
		KeysDeleteDelta([]int64{4, 5}),
		KeysUpsertDelta([]int64{4, 9}),
		KeysDeleteDelta([]int64{4}),   // delete the re-inserted key again
		KeysDeleteDelta([]int64{999}), // absent: idempotent tombstone
		KeysUpsertDelta([]int64{2}),   // present: no-op upsert
	}
	keyProbes := make([][]byte, 0, 24)
	for _, k := range []int64{2, 4, 5, 6, 7, 8, 9, 10, 12, 999, 1} {
		keyProbes = append(keyProbes, PointQuery(k))
	}
	rangeProbes := make([][]byte, 0, 12)
	for _, r := range [][2]int64{{0, 3}, {3, 5}, {4, 4}, {5, 9}, {9, 12}, {13, 998}, {998, 1000}} {
		rangeProbes = append(rangeProbes, RangeQuery(r[0], r[1]))
	}

	dg := graph.New(7, true)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		dg.MustAddEdge(e[0], e[1])
	}
	dgDeltas := [][]byte{
		EdgeDelta(2, 3),       // bridge
		EdgeDeleteDelta(1, 2), // cut upstream of the bridge
		EdgeDelta(1, 2),       // restore
		EdgeDeleteDelta(2, 3), // un-bridge: downstream reachability collapses
		EdgeUpsertDelta(0, 1), // present: no-op
		EdgeDelta(5, 6),
		EdgeDeleteDelta(5, 6), // delete a just-inserted edge
	}
	ug := graph.New(7, false)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		ug.MustAddEdge(e[0], e[1])
	}
	pairProbes := make([][]byte, 0, 49)
	for u := 0; u < 7; u++ {
		for v := 0; v < 7; v++ {
			pairProbes = append(pairProbes, NodePairQuery(u, v))
		}
	}

	cases := []struct {
		name   string
		inc    *core.IncrementalScheme
		data   []byte
		deltas [][]byte
		probes [][]byte
	}{
		{"point-selection/sorted-keys", IncrementalPointSelection(), RelationFromKeys(keys), keyDeltas, keyProbes},
		{"range-selection/sorted-keys", IncrementalRangeSelection(), RelationFromKeys(keys), keyDeltas, rangeProbes},
		{"list-membership/sorted", IncrementalListMembership(), EncodeList(keys), keyDeltas, keyProbes},
		{"reachability/closure-matrix", IncrementalReachability(), dg.Encode(), dgDeltas, pairProbes},
		{"reachability/closure-matrix (undirected)", IncrementalReachability(), ug.Encode(), dgDeltas, pairProbes},
		{"reachability/bfs-per-query", IncrementalReachabilityBFS(), dg.Encode(), dgDeltas, pairProbes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.inc.VerifyIncremental(tc.data, tc.deltas, tc.probes); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDecrementalClosureReroute pins the Vigny fast path: deleting an edge
// that a surviving path bypasses must leave the closure matrix bitwise
// unchanged (no row recompute), and the appendix graph must drop the edge.
func TestDecrementalClosureReroute(t *testing.T) {
	g := graph.New(4, true)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2) // the bypass
	g.MustAddEdge(2, 3)
	inc := IncrementalReachability()
	pd, err := inc.Scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	next, err := inc.ApplyDelta(pd, EdgeDeleteDelta(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// 0 still reaches 1 via nothing? No: 0→1 was the only arc into 1 from 0.
	// Reachability 0⇝1 is gone; but deleting (0,2) instead reroutes via 1.
	// Check the rerouting case explicitly:
	rerouted, err := inc.ApplyDelta(pd, EdgeDeleteDelta(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := inc.Scheme.Answer(rerouted, NodePairQuery(0, 3))
	if err != nil || !ok {
		t.Fatalf("0⇝3 must survive deleting the shortcut (0,2): %v %v", ok, err)
	}
	// And the disconnecting delete must actually disconnect.
	ok, err = inc.Scheme.Answer(next, NodePairQuery(0, 1))
	if err != nil || ok {
		t.Fatalf("0⇝1 must not survive deleting (0,1): %v %v", ok, err)
	}
	if err := inc.VerifyIncremental(g.Encode(),
		[][]byte{EdgeDeleteDelta(0, 2), EdgeDeleteDelta(0, 1)}, [][]byte{
			NodePairQuery(0, 1), NodePairQuery(0, 2), NodePairQuery(0, 3),
			NodePairQuery(1, 3), NodePairQuery(2, 3),
		}); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteAbsentEdgeErrors: unlike key tombstones, retracting an edge
// that is not there is an error (see EdgeDeleteDelta), and a failed delete
// must not disturb the artifact.
func TestDeleteAbsentEdgeErrors(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1)
	for _, inc := range []*core.IncrementalScheme{IncrementalReachability(), IncrementalReachabilityBFS()} {
		pd, err := inc.Scheme.Preprocess(g.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.ApplyDelta(pd, EdgeDeleteDelta(1, 2)); err == nil {
			t.Fatalf("%s: deleting an absent edge succeeded", inc.Name())
		}
		if ok, err := inc.Scheme.Answer(pd, NodePairQuery(0, 1)); err != nil || !ok {
			t.Fatalf("%s: failed delete disturbed the artifact: %v %v", inc.Name(), ok, err)
		}
	}
}

// TestHostileTombstones throws malformed tagged deltas at every
// delta-capable scheme: junk payloads, truncated envelopes, and unknown
// kind bytes must error cleanly — never panic, never partially apply.
func TestHostileTombstones(t *testing.T) {
	hostile := [][]byte{
		core.TagDelta(core.DeltaDelete, []byte{0x80}),                   // truncated uvarint payload
		core.TagDelta(core.DeltaDelete, []byte{0xFF, 0xFF, 0xFF, 0xFF}), // junk
		core.TagDelta(core.DeltaUpsert, nil),                            // empty payload
		{0xFF, 0xFF, 0xFF, 0x00, 0x09, 1, 2, 3},                         // unknown kind
	}
	cases := []struct {
		name   string
		inc    *core.IncrementalScheme
		data   []byte
		canary []byte
	}{
		{"point-selection/sorted-keys", IncrementalPointSelection(), RelationFromKeys([]int64{2, 4}), PointQuery(2)},
		{"range-selection/sorted-keys", IncrementalRangeSelection(), RelationFromKeys([]int64{2, 4}), RangeQuery(2, 4)},
		{"list-membership/sorted", IncrementalListMembership(), EncodeList([]int64{2, 4}), PointQuery(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pd, err := tc.inc.Scheme.Preprocess(tc.data)
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hostile {
				if _, err := tc.inc.ApplyDelta(pd, h); err == nil {
					t.Fatalf("hostile delta %d accepted", i)
				}
				if ok, err := tc.inc.Scheme.Answer(pd, tc.canary); err != nil || !ok {
					t.Fatalf("hostile delta %d disturbed the artifact: %v %v", i, ok, err)
				}
			}
		})
	}
}

// TestNoReappearance pins the tombstone ordering contract the race suite
// leans on: insert → delete → (unrelated churn) must never resurrect a key;
// only an explicit re-insert may.
func TestNoReappearance(t *testing.T) {
	inc := IncrementalPointSelection()
	pd, err := inc.Scheme.Preprocess(RelationFromKeys([]int64{2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	steps := [][]byte{
		KeysDelta([]int64{100}),
		KeysDeleteDelta([]int64{100}),
		KeysDelta([]int64{7, 9}),          // unrelated churn
		KeysUpsertDelta([]int64{11}),      // unrelated churn
		KeysDeleteDelta([]int64{100, 50}), // idempotent re-delete
	}
	for i, d := range steps {
		if pd, err = inc.ApplyDelta(pd, d); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i >= 1 {
			if ok, _ := inc.Scheme.Answer(pd, PointQuery(100)); ok {
				t.Fatalf("step %d: deleted key 100 reappeared", i)
			}
		}
	}
	// Explicit re-insert is the only way back.
	pd, err = inc.ApplyDelta(pd, KeysDelta([]int64{100}))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := inc.Scheme.Answer(pd, PointQuery(100)); !ok {
		t.Fatal("explicit re-insert did not restore key 100")
	}
}

// TestPreAppendixClosureRefusesDeletes pins the migration contract for
// closures persisted before the graph appendix existed: inserts keep
// working, deletes fail with an actionable message.
func TestPreAppendixClosureRefusesDeletes(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1)
	inc := IncrementalReachability()
	pd, err := inc.Scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	n, _, bits, graphEnc, err := closureParts(pd)
	if err != nil {
		t.Fatal(err)
	}
	if graphEnc == nil || n != 3 {
		t.Fatalf("fresh closure should carry the appendix (n=%d)", n)
	}
	// Reconstruct the pre-appendix layout: drop the framed graph and clear
	// its header flag, exactly what an old snapshot on disk looks like.
	legacy := append([]byte(nil), pd[:8+len(bits)]...)
	binary.BigEndian.PutUint64(legacy, binary.BigEndian.Uint64(legacy)&^ClosureGraphFlag)
	if _, err := inc.ApplyDelta(legacy, EdgeDelta(1, 2)); err != nil {
		t.Fatalf("pre-appendix insert must keep working: %v", err)
	}
	_, err = inc.ApplyDelta(legacy, EdgeDeleteDelta(0, 1))
	if err == nil {
		t.Fatal("pre-appendix delete succeeded")
	}
	if !strings.Contains(err.Error(), "re-register") {
		t.Fatalf("pre-appendix delete error %q does not tell the operator what to do", err)
	}
}
