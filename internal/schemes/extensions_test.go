package schemes

import (
	"math/rand"
	"testing"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
	"pitract/internal/views"
)

func TestRMQFuncScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scheme := RMQFuncScheme()
	lang := RMQFuncLanguage()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(32) - 16 // negatives and ties
		}
		d := EncodeList(a)
		var pairs []core.Pair
		for q := 0; q < 40; q++ {
			i := rng.Intn(n)
			j := i + rng.Intn(n-i)
			pairs = append(pairs, core.Pair{D: d, Q: RangeQueryIJ(i, j)})
		}
		if err := scheme.VerifyAgainst(lang, pairs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	// Bad queries error.
	d := EncodeList([]int64{1, 2, 3})
	pd, err := scheme.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scheme.Apply(pd, RangeQueryIJ(2, 1)); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := scheme.Apply(pd, RangeQueryIJ(0, 5)); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := scheme.Preprocess(EncodeList(nil)); err == nil {
		t.Error("empty array accepted")
	}
}

func TestRMQFuncSchemeDecisionForm(t *testing.T) {
	// The search-to-decision conversion: "is position p the RMQ answer?"
	a := []int64{5, 1, 3, 1}
	d := EncodeList(a)
	dec := RMQFuncScheme().Decision()
	pd, err := dec.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	yes, err := dec.Answer(pd, core.PadPair(RangeQueryIJ(0, 3), core.EncodeUint64(1)))
	if err != nil {
		t.Fatal(err)
	}
	no, err := dec.Answer(pd, core.PadPair(RangeQueryIJ(0, 3), core.EncodeUint64(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !yes || no {
		t.Fatalf("decision form: yes=%v no=%v", yes, no)
	}
}

func TestLCAFuncScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scheme := LCAFuncScheme()
	lang := LCAFuncLanguage()
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(25)
		g := graph.RandomDAG(n, 3*n, int64(trial))
		d := g.Encode()
		var pairs []core.Pair
		for q := 0; q < 30; q++ {
			pairs = append(pairs, core.Pair{D: d, Q: NodePairQuery(rng.Intn(n), rng.Intn(n))})
		}
		if err := scheme.VerifyAgainst(lang, pairs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	// Cyclic graphs are rejected at preprocessing.
	cyc := graph.New(2, true)
	cyc.MustAddEdge(0, 1)
	cyc.MustAddEdge(1, 0)
	if _, err := scheme.Preprocess(cyc.Encode()); err == nil {
		t.Error("cyclic graph accepted")
	}
	// Out-of-range queries error.
	g := graph.Path(3, true)
	pd, err := scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scheme.Apply(pd, NodePairQuery(0, 9)); err == nil {
		t.Error("out-of-range LCA query accepted")
	}
}

func TestViewRewritingScheme(t *testing.T) {
	rel := relation.Generate(relation.GenConfig{Rows: 800, Seed: 9, KeyMax: 1000})
	d := rel.Encode()
	defs := views.EvenPartition("key", 0, 999, 5)
	scheme := ViewRewritingScheme(defs)
	lang := SelectionLanguage()
	rng := rand.New(rand.NewSource(10))
	var pairs []core.Pair
	for q := 0; q < 120; q++ {
		pairs = append(pairs, core.Pair{D: d, Q: PointQuery(rng.Int63n(1000))})
	}
	if err := scheme.VerifyAgainst(lang, pairs); err != nil {
		t.Fatal(err)
	}
	// The flattened form behaves identically.
	flat := scheme.Plain()
	if err := flat.VerifyAgainst(lang, pairs); err != nil {
		t.Fatal(err)
	}
	// Uncovered queries fail at λ — the paper's "answerable using views"
	// precondition.
	if _, err := scheme.Rewrite(PointQuery(5000)); err == nil {
		t.Error("uncovered query rewritten")
	}
	// End-to-end Decide.
	got, err := scheme.Decide(d, PointQuery(500))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := lang.Contains(d, PointQuery(500))
	if got != want {
		t.Fatal("Decide disagrees with language")
	}
}

func TestIncrementalPointSelection(t *testing.T) {
	rel := relation.Generate(relation.GenConfig{Rows: 300, Seed: 2, KeyMax: 400})
	d := rel.Encode()
	inc := IncrementalPointSelection()
	rng := rand.New(rand.NewSource(3))
	var deltas [][]byte
	for step := 0; step < 5; step++ {
		batch := make([]int64, 1+rng.Intn(8))
		for i := range batch {
			batch[i] = rng.Int63n(600)
		}
		deltas = append(deltas, KeysDelta(batch))
	}
	var probes [][]byte
	for q := 0; q < 60; q++ {
		probes = append(probes, PointQuery(rng.Int63n(700)))
	}
	if err := inc.VerifyIncremental(d, deltas, probes); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalReachability(t *testing.T) {
	g := graph.RandomDirected(40, 60, 4)
	d := g.Encode()
	inc := IncrementalReachability()
	rng := rand.New(rand.NewSource(5))
	var deltas [][]byte
	used := map[[2]int]bool{}
	for len(deltas) < 10 {
		u, v := rng.Intn(40), rng.Intn(40)
		if u == v || used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		deltas = append(deltas, EdgeDelta(u, v))
	}
	var probes [][]byte
	for q := 0; q < 100; q++ {
		probes = append(probes, NodePairQuery(rng.Intn(40), rng.Intn(40)))
	}
	if err := inc.VerifyIncremental(d, deltas, probes); err != nil {
		t.Fatal(err)
	}
	// Cycle-creating insertions are the hard case; force some.
	gp := graph.Path(6, true)
	var smallProbes [][]byte
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			smallProbes = append(smallProbes, NodePairQuery(u, v))
		}
	}
	if err := inc.VerifyIncremental(gp.Encode(),
		[][]byte{EdgeDelta(5, 0), EdgeDelta(3, 1)},
		smallProbes); err != nil {
		t.Fatal(err)
	}
	// Bad deltas error.
	pd, err := inc.Scheme.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.ApplyDelta(pd, EdgeDelta(0, 0)); err == nil {
		t.Error("self-loop delta accepted")
	}
	if _, err := inc.ApplyDelta(pd, EdgeDelta(0, 99)); err == nil {
		t.Error("out-of-range delta accepted")
	}
}

func TestIncrementalRedundantEdgeNoChange(t *testing.T) {
	g := graph.Path(4, true) // 0→1→2→3
	inc := IncrementalReachability()
	pd, err := inc.Scheme.Preprocess(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// (0,2) is already implied by the closure, but it is a new *edge*: the
	// matrix must not change while the graph appendix gains it — exactly
	// what a fresh rebuild of the updated data produces.
	out, err := inc.ApplyDelta(pd, EdgeDelta(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	bitLen := 8 + (4*4+7)/8
	if string(out[:bitLen]) != string(pd[:bitLen]) {
		t.Fatal("redundant edge changed the closure matrix")
	}
	d2, err := inc.ApplyUpdate(g.Encode(), EdgeDelta(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := inc.Scheme.Preprocess(d2)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(fresh) {
		t.Fatal("maintained Π diverges from rebuilt Π after redundant edge")
	}
	// A redundant edge that is also already *present* changes nothing at
	// all: the rebuild's Normalize would dedup it anyway.
	same, err := inc.ApplyDelta(out, EdgeDelta(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if string(same) != string(out) {
		t.Fatal("re-inserting a present edge changed the closure bytes")
	}
}
