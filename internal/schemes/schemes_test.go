package schemes

import (
	"math/rand"
	"testing"

	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
	"pitract/internal/tm"
)

func relationPairs(t *testing.T, rows int, seed int64) (d []byte, queries [][]byte) {
	t.Helper()
	rel := relation.Generate(relation.GenConfig{Rows: rows, Seed: seed, KeyMax: int64(rows)})
	rng := rand.New(rand.NewSource(seed + 99))
	for i := 0; i < 50; i++ {
		queries = append(queries, PointQuery(rng.Int63n(int64(rows)*2)))
	}
	return rel.Encode(), queries
}

func verifyScheme(t *testing.T, s *core.Scheme, lang core.Language, d []byte, queries [][]byte) {
	t.Helper()
	pairs := make([]core.Pair, 0, len(queries))
	for _, q := range queries {
		pairs = append(pairs, core.Pair{D: d, Q: q})
	}
	if err := s.VerifyAgainst(lang, pairs); err != nil {
		t.Fatal(err)
	}
}

func TestPointSelectionSchemes(t *testing.T) {
	d, queries := relationPairs(t, 400, 3)
	verifyScheme(t, PointSelectionScheme(), SelectionLanguage(), d, queries)
	verifyScheme(t, PointSelectionScanScheme(), SelectionLanguage(), d, queries)
}

func TestRangeSelectionScheme(t *testing.T) {
	rel := relation.Generate(relation.GenConfig{Rows: 300, Seed: 5, KeyMax: 300})
	d := rel.Encode()
	rng := rand.New(rand.NewSource(8))
	var queries [][]byte
	for i := 0; i < 60; i++ {
		lo := rng.Int63n(350) - 10
		hi := lo + rng.Int63n(40) - 5 // sometimes inverted
		queries = append(queries, RangeQuery(lo, hi))
	}
	verifyScheme(t, RangeSelectionScheme(), RangeSelectionLanguage(), d, queries)
}

func TestListMembershipScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	list := make([]int64, 500)
	for i := range list {
		list[i] = rng.Int63n(1000) - 500
	}
	d := EncodeList(list)
	// Round-trip check of the list codec.
	back, err := DecodeList(d)
	if err != nil || len(back) != len(list) {
		t.Fatalf("list codec broken: %v", err)
	}
	var queries [][]byte
	for i := 0; i < 60; i++ {
		queries = append(queries, PointQuery(rng.Int63n(1200)-600))
	}
	verifyScheme(t, ListMembershipScheme(), ListMembershipLanguage(), d, queries)
}

func TestDecodeListRejectsCorrupt(t *testing.T) {
	good := EncodeList([]int64{1, -2, 3})
	for i, bad := range [][]byte{nil, good[:1], good[:len(good)-1], append(append([]byte{}, good...), 0)} {
		if _, err := DecodeList(bad); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestReachabilitySchemes(t *testing.T) {
	g := graph.RandomDirected(40, 120, 11)
	d := g.Encode()
	rng := rand.New(rand.NewSource(12))
	var queries [][]byte
	for i := 0; i < 80; i++ {
		queries = append(queries, NodePairQuery(rng.Intn(40), rng.Intn(40)))
	}
	verifyScheme(t, ReachabilityScheme(), ReachabilityLanguage(), d, queries)
	verifyScheme(t, ReachabilityBFSScheme(), ReachabilityLanguage(), d, queries)
	// Out-of-range queries must error, not misanswer.
	s := ReachabilityScheme()
	pd, err := s.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Answer(pd, NodePairQuery(0, 99)); err == nil {
		t.Error("out-of-range reachability query accepted")
	}
}

func TestBDSSchemes(t *testing.T) {
	g := graph.RandomConnectedUndirected(50, 30, 13)
	d := g.Encode()
	rng := rand.New(rand.NewSource(14))
	var queries [][]byte
	for i := 0; i < 80; i++ {
		queries = append(queries, NodePairQuery(rng.Intn(50), rng.Intn(50)))
	}
	verifyScheme(t, BDSScheme(), BDSLanguage(), d, queries)

	// The Υ′ scheme answers over the empty-data factorization: pairs are
	// (ε, whole-instance).
	noPre := BDSNoPreprocessScheme()
	lang := core.PairLanguage(BDSProblem(), core.EmptyDataFactorization())
	var pairs []core.Pair
	for _, q := range queries {
		pairs = append(pairs, core.Pair{D: nil, Q: core.PadPair(d, q)})
	}
	if err := noPre.VerifyAgainst(lang, pairs); err != nil {
		t.Fatal(err)
	}
	if _, err := noPre.Preprocess([]byte("junk")); err == nil {
		t.Error("Υ′ accepted a non-empty data part")
	}
	// Both factorizations answer identically — Figure 1's two rows agree
	// on every query; only the costs differ.
	idxScheme := BDSScheme()
	pd, err := idxScheme.Preprocess(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		fast, err := idxScheme.Answer(pd, q)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := noPre.Answer(nil, core.PadPair(d, q))
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("factorizations disagree on query %v", q)
		}
	}
}

func TestBDSFactorizationRoundTrip(t *testing.T) {
	g := graph.Path(5, false)
	x := core.PadPair(g.Encode(), NodePairQuery(1, 3))
	if err := BDSFactorization().Check(x); err != nil {
		t.Fatal(err)
	}
	member, err := BDSProblem().Member(x)
	if err != nil {
		t.Fatal(err)
	}
	if !member {
		t.Fatal("1 is visited before 3 on a path; problem says no")
	}
}

func TestCVPSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	circ := circuit.Generate(circuit.GenConfig{Inputs: 6, Gates: 60, Seed: 4})
	inst := &circuit.Instance{Circuit: circ, Inputs: circuit.RandomInputs(6, 5)}
	d := circuit.EncodeInstance(inst)
	var queries [][]byte
	for i := 0; i < 60; i++ {
		queries = append(queries, GateQuery(rng.Intn(circ.Size())))
	}
	verifyScheme(t, CVPGateValueScheme(), CVPGateLanguage(), d, queries)

	// Theorem 9 scheme: empty data, instance-as-query.
	noPre := CVPNoPreprocessScheme()
	got, err := noPre.Answer(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := inst.Eval()
	if got != want {
		t.Fatal("Υ0 scheme misanswered")
	}
	if _, err := noPre.Preprocess([]byte{1}); err == nil {
		t.Error("Υ0 accepted a non-empty data part")
	}
	// Gate query out of range errors.
	s := CVPGateValueScheme()
	pd, _ := s.Preprocess(d)
	if _, err := s.Answer(pd, GateQuery(circ.Size()+5)); err == nil {
		t.Error("out-of-range gate accepted")
	}
}

func TestTheorem5ChainOnAllSampleMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, cm := range tm.SampleMachines() {
		maxN := 6
		if cm.M.Name == "palindrome" || cm.M.Name == "0n1n" {
			maxN = 4
		}
		// Collect instances across lengths, including both accepting and
		// rejecting inputs.
		var instances [][]byte
		for n := 0; n <= maxN; n++ {
			for k := 0; k < 4; k++ {
				in := make([]bool, n)
				for i := range in {
					in[i] = rng.Intn(2) == 1
				}
				instances = append(instances, EncodeBits(in))
			}
		}
		// Definition 4 verification of the reduction itself.
		red := TMToBDSReduction(cm)
		if err := red.Verify(instances); err != nil {
			t.Fatalf("%s: %v", cm.M.Name, err)
		}
		// Lemma 3 transport: the resulting scheme decides the language.
		scheme := TMSchemeViaBDS(cm)
		lang := core.PairLanguage(red.From, red.F1)
		var pairs []core.Pair
		for _, x := range instances {
			pairs = append(pairs, core.Pair{D: x, Q: x})
		}
		if err := scheme.VerifyAgainst(lang, pairs); err != nil {
			t.Fatalf("%s: transported scheme: %v", cm.M.Name, err)
		}
	}
}

func TestTMProblemRejectsBadBytes(t *testing.T) {
	p := TMProblem(tm.Parity())
	if _, err := p.Member([]byte{0, 1, 7}); err == nil {
		t.Fatal("byte 7 accepted as an input bit")
	}
}
