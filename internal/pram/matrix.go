package pram

// Parallel Boolean matrix algorithms. Transitive closure by repeated
// squaring is the canonical NC² algorithm and backs the paper's Example 3:
// reachability queries are Π-tractable, and the closure itself can even be
// (re)computed in parallel polylog time.

// BoolMatrix is a dense n×n Boolean matrix in row-major order.
type BoolMatrix struct {
	N     int
	Cells []bool
}

// NewBoolMatrix returns an n×n all-false matrix.
func NewBoolMatrix(n int) *BoolMatrix {
	return &BoolMatrix{N: n, Cells: make([]bool, n*n)}
}

// At reports the cell (i, j).
func (a *BoolMatrix) At(i, j int) bool { return a.Cells[i*a.N+j] }

// Set assigns the cell (i, j).
func (a *BoolMatrix) Set(i, j int, v bool) { a.Cells[i*a.N+j] = v }

// Clone returns a deep copy.
func (a *BoolMatrix) Clone() *BoolMatrix {
	c := NewBoolMatrix(a.N)
	copy(c.Cells, a.Cells)
	return c
}

// Equal reports whether two matrices have identical dimensions and cells.
func (a *BoolMatrix) Equal(b *BoolMatrix) bool {
	if a.N != b.N {
		return false
	}
	for i, v := range a.Cells {
		if v != b.Cells[i] {
			return false
		}
	}
	return true
}

// boolMatSquareOr computes a ∨ (a × a) on the machine: first one round with
// n³ processors producing all AND terms is folded into n² processors doing a
// ⌈log n⌉-round OR-reduction over k. Total: O(log n) rounds, O(n³) work —
// the standard CREW schedule for Boolean matrix product.
//
// Memory layout: cells [0, n²) hold the current matrix; cells [n², n²+n³)
// hold the partial products p[i][j][k].
func boolMatSquareOr(m *Machine, n int) {
	nn := n * n
	base := nn
	m.Grow(nn + nn*n)
	// Round 1: p[i][j][k] = a[i][k] AND a[k][j], n³ processors.
	m.MustStep(nn*n, func(c Ctx) {
		p := c.Proc()
		k := p % n
		j := (p / n) % n
		i := p / nn
		v := int64(0)
		if c.Load(i*n+k) != 0 && c.Load(k*n+j) != 0 {
			v = 1
		}
		c.Store(base+p, v)
	})
	// OR-reduce over k in ⌈log2 n⌉ rounds with n² processors, then fold the
	// reduced bit into the matrix (a ∨ a²).
	for width := n; width > 1; width = (width + 1) / 2 {
		half := (width + 1) / 2
		w := width
		m.MustStep(nn*half, func(c Ctx) {
			p := c.Proc()
			k := p % half
			ij := p / half
			lo := c.Load(base + ij*n + k)
			if k+half < w {
				if c.Load(base+ij*n+k+half) != 0 {
					lo = 1
				}
			}
			c.Store(base+ij*n+k, lo)
		})
	}
	m.MustStep(nn, func(c Ctx) {
		p := c.Proc()
		if c.Load(p) != 0 || c.Load(base+p*n) != 0 {
			c.Store(p, 1)
		} else {
			c.Store(p, 0)
		}
	})
}

// TransitiveClosure computes the reflexive-transitive closure of adj by
// ⌈log2 n⌉ repeated squarings, each O(log n) rounds: O(log² n) rounds total
// with O(n³) processors — the NC² schedule quoted by the paper for
// reachability preprocessing.
func TransitiveClosure(m *Machine, adj *BoolMatrix) *BoolMatrix {
	n := adj.N
	if n == 0 {
		return NewBoolMatrix(0)
	}
	nn := n * n
	m.Grow(nn)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := int64(0)
			if i == j || adj.At(i, j) {
				v = 1
			}
			m.Store(i*n+j, v)
		}
	}
	for s := 0; s < ceilLog2(n); s++ {
		boolMatSquareOr(m, n)
	}
	out := NewBoolMatrix(n)
	for i := 0; i < nn; i++ {
		out.Cells[i] = m.Load(i) != 0
	}
	return out
}

// WarshallClosure is the sequential O(n³) Floyd–Warshall baseline used to
// cross-check the PRAM schedule and to serve as the "preprocess in PTIME"
// reference implementation.
func WarshallClosure(adj *BoolMatrix) *BoolMatrix {
	n := adj.N
	out := adj.Clone()
	for i := 0; i < n; i++ {
		out.Set(i, i, true)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !out.At(i, k) {
				continue
			}
			rowK := out.Cells[k*n : k*n+n]
			rowI := out.Cells[i*n : i*n+n]
			for j, v := range rowK {
				if v {
					rowI[j] = true
				}
			}
		}
	}
	return out
}
