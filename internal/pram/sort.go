package pram

// Batcher's bitonic sorting network on the CREW PRAM: O(log² n) rounds
// with n/2 comparators per round. It matters to the paper's Justification
// (1): "If we choose NC [for preprocessing], then ΠT⁰Q coincides with NC."
// The §4(2) preprocessing (sort the list) is exactly such a case — the
// network shows the preprocessing itself is in NC, so list membership is
// not just Π-tractable but NC end-to-end.

// BitonicSort sorts vals ascending on the machine and returns the sorted
// copy. The input length is padded internally to a power of two with +∞
// sentinels; rounds consumed are O(log² n).
func BitonicSort(m *Machine, vals []int64) []int64 {
	n := len(vals)
	if n <= 1 {
		return append([]int64(nil), vals...)
	}
	size := 1
	for size < n {
		size <<= 1
	}
	const inf = int64(^uint64(0) >> 1) // MaxInt64 sentinel
	m.Grow(size)
	m.StoreSlice(0, vals)
	for i := n; i < size; i++ {
		m.Store(i, inf)
	}
	// Standard bitonic network: stages k = 2,4,…,size; passes j = k/2,…,1.
	for k := 2; k <= size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			kk, jj := k, j
			m.MustStep(size/2, func(c Ctx) {
				// Processor p handles the p-th comparator: recover the
				// element index i with bit jj clear.
				p := c.Proc()
				i := (p/jj)*(jj*2) + p%jj
				l := i ^ jj
				a, b := c.Load(i), c.Load(l)
				ascending := i&kk == 0
				if (a > b) == ascending {
					c.Store(i, b)
					c.Store(l, a)
				}
			})
		}
	}
	return m.LoadSlice(0, n)
}
