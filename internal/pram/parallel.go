package pram

// The goroutine-backed parallel executor. A round's processor activations
// are partitioned into contiguous chunks of processor ids; a bounded pool
// of worker goroutines claims chunks off an atomic counter and runs each
// chunk's kernels against a chunk-private roundSink. Because chunks cover
// [0, procs) in order and their journals are committed in chunk order, the
// commit sequence is exactly the sequential executor's processor order —
// the parallel path is observationally identical to the oracle (memory
// image, rounds, work, and conflict verdicts), differing only in host
// wall-clock time.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default minimum number of processor activations per
// parallel chunk. Rounds narrower than two grains run sequentially: a
// goroutine handoff costs on the order of a microsecond, so scattering a
// handful of cheap kernel calls across workers would only add overhead.
const DefaultGrain = 1 << 11

// chunksPerWorker bounds how many chunks a round is split into, as a
// multiple of the worker count. More chunks than workers smooths load
// imbalance between kernels of different cost; too many wastes time on
// chunk bookkeeping.
const chunksPerWorker = 4

// WithWorkers enables the parallel executor with n worker goroutines.
// n <= 0 selects runtime.GOMAXPROCS(0). n == 1 keeps the sequential
// executor, which is the reference oracle.
func WithWorkers(n int) Option {
	return func(m *Machine) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		m.workers = n
	}
}

// WithGrain sets the minimum processor activations per parallel chunk
// (default DefaultGrain). Lower it for kernels whose per-activation cost is
// large; tests use a grain of 1 to force tiny programs onto the parallel
// path.
func WithGrain(g int) Option {
	return func(m *Machine) {
		if g < 1 {
			g = 1
		}
		m.grain = g
	}
}

// Workers reports the configured worker-goroutine count (1 when the
// machine runs on the sequential executor).
func (m *Machine) Workers() int {
	if m.workers < 1 {
		return 1
	}
	return m.workers
}

// parallelEligible reports whether a round of procs activations is worth
// running on the worker pool.
func (m *Machine) parallelEligible(procs int) bool {
	return m.workers > 1 && procs >= 2*m.grain
}

func (m *Machine) stepParallel(procs int, kernel func(Ctx)) error {
	// Chunk the round: at least grain activations per chunk, at most
	// chunksPerWorker chunks per worker.
	chunk := m.grain
	nChunks := (procs + chunk - 1) / chunk
	if maxChunks := m.workers * chunksPerWorker; nChunks > maxChunks {
		chunk = (procs + maxChunks - 1) / maxChunks
		nChunks = (procs + chunk - 1) / chunk
	}
	for len(m.par) < nChunks {
		m.par = append(m.par, roundSink{})
	}
	sinks := m.par[:nChunks]
	for i := range sinks {
		sinks[i].reset(m.detect)
	}

	workers := m.workers
	if workers > nChunks {
		workers = nChunks
	}
	var (
		next     atomic.Int64
		panicMu  sync.Mutex
		panicked any
		didPanic bool
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				// A kernel panic (bad address, caller bug) must surface on
				// the calling goroutine like in the sequential executor,
				// not crash the process. Guarded by a mutex: panic values
				// of different concrete types are fine.
				if r := recover(); r != nil {
					panicMu.Lock()
					if !didPanic {
						panicked, didPanic = r, true
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= nChunks {
					return
				}
				s := &sinks[i]
				lo := i * chunk
				hi := lo + chunk
				if hi > procs {
					hi = procs
				}
				for p := lo; p < hi; p++ {
					kernel(Ctx{m: m, sink: s, proc: p})
				}
			}
		}()
	}
	wg.Wait()
	if didPanic {
		panic(panicked)
	}

	if m.detect {
		conflict := false
		clear(m.writers)
		for i := range sinks {
			s := &sinks[i]
			if s.conflict {
				conflict = true
			}
			for addr, proc := range s.writers {
				if prev, ok := m.writers[addr]; ok && prev != proc {
					conflict = true
				} else {
					m.writers[addr] = proc
				}
			}
		}
		if conflict {
			return ErrWriteConflict
		}
	}
	// Commit chunk journals in chunk order == processor order, so even the
	// last-write-wins outcome of undetected collisions matches the oracle.
	for i := range sinks {
		for _, w := range sinks[i].journal {
			m.mem[w.addr] = w.val
		}
	}
	m.rounds++
	m.work += int64(procs)
	return nil
}
