package pram

// This file implements the textbook NC building blocks used by the rest of
// the repository: parallel reductions, prefix sums, pointer jumping and
// parallel binary search. Each primitive documents its round complexity;
// tests assert that the measured rounds match.

// ceilLog2 returns ⌈log2(n)⌉ for n ≥ 1, and 0 for n ≤ 1.
func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// ReduceOr computes the logical OR of vals (non-zero meaning true) in
// ⌈log2 n⌉ rounds with ⌈n/2⌉ processors per round.
func ReduceOr(m *Machine, vals []int64) bool {
	return reduce(m, vals, func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}) != 0
}

// ReduceMax computes the maximum of vals in ⌈log2 n⌉ rounds.
func ReduceMax(m *Machine, vals []int64) int64 {
	return reduce(m, vals, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// ReduceSum computes the sum of vals in ⌈log2 n⌉ rounds.
func ReduceSum(m *Machine, vals []int64) int64 {
	return reduce(m, vals, func(a, b int64) int64 { return a + b })
}

// reduce folds vals with an associative operator using a binary tree of
// rounds. It lays the values out in machine memory starting at cell 0,
// growing memory as needed.
func reduce(m *Machine, vals []int64, op func(a, b int64) int64) int64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	m.Grow(n)
	m.StoreSlice(0, vals)
	for width := n; width > 1; width = (width + 1) / 2 {
		half := (width + 1) / 2
		m.MustStep(half, func(c Ctx) {
			p := c.Proc()
			lo := c.Load(p)
			hiIdx := p + half
			if hiIdx < width {
				c.Store(p, op(lo, c.Load(hiIdx)))
			} else {
				c.Store(p, lo)
			}
		})
	}
	return m.Load(0)
}

// PrefixSum returns the inclusive prefix sums of vals, computed with the
// Hillis–Steele scan: ⌈log2 n⌉ rounds, n processors per round.
func PrefixSum(m *Machine, vals []int64) []int64 {
	n := len(vals)
	if n == 0 {
		return nil
	}
	// Double-buffer in machine memory: cells [0,n) and [n,2n).
	m.Grow(2 * n)
	m.StoreSlice(0, vals)
	src, dst := 0, n
	for stride := 1; stride < n; stride <<= 1 {
		s := stride // capture loop variable for the kernel
		from, to := src, dst
		m.MustStep(n, func(c Ctx) {
			p := c.Proc()
			v := c.Load(from + p)
			if p >= s {
				v += c.Load(from + p - s)
			}
			c.Store(to+p, v)
		})
		src, dst = dst, src
	}
	return m.LoadSlice(src, n)
}

// PointerJump resolves, for every node i of a forest given by parent
// pointers (parent[i] == i marks a root), the root of i's tree. It uses the
// classic pointer-jumping technique: ⌈log2 n⌉ rounds, n processors.
func PointerJump(m *Machine, parent []int) []int {
	n := len(parent)
	if n == 0 {
		return nil
	}
	m.Grow(n)
	for i, p := range parent {
		m.Store(i, int64(p))
	}
	for r := 0; r < ceilLog2(n)+1; r++ {
		m.MustStep(n, func(c Ctx) {
			p := c.Proc()
			next := c.Load(int(c.Load(p)))
			c.Store(p, next)
		})
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(m.Load(i))
	}
	return out
}

// SearchSorted locates key in the ascending slice sorted, one probe per
// round with a single processor, i.e. O(log n) parallel time. It returns
// whether the key is present. It exercises exactly the access pattern the
// paper attributes to index lookups after preprocessing (Example 1).
func SearchSorted(m *Machine, sorted []int64, key int64) bool {
	n := len(sorted)
	m.Grow(n + 3)
	m.StoreSlice(0, sorted)
	loCell, hiCell, foundCell := n, n+1, n+2
	m.Store(loCell, 0)
	m.Store(hiCell, int64(n))
	m.Store(foundCell, 0)
	for r := 0; r <= ceilLog2(n+1); r++ {
		m.MustStep(1, func(c Ctx) {
			lo, hi := c.Load(loCell), c.Load(hiCell)
			if lo >= hi {
				return
			}
			mid := (lo + hi) / 2
			v := c.Load(int(mid))
			switch {
			case v == key:
				c.Store(foundCell, 1)
				c.Store(loCell, hi) // terminate
			case v < key:
				c.Store(loCell, mid+1)
			default:
				c.Store(hiCell, mid)
			}
		})
	}
	return m.Load(foundCell) != 0
}
