package pram

import (
	"math/rand"
	"runtime"
	"testing"
)

// parallelOpts forces even tiny programs onto the parallel executor so the
// differential tests exercise it regardless of round width.
func parallelOpts(extra ...Option) []Option {
	return append([]Option{WithWorkers(4), WithGrain(1)}, extra...)
}

// diffMachines runs prog on a sequential oracle machine and a parallel
// machine and asserts byte-identical memory images, equal outputs (as
// reported by prog), and equal round/work accounting.
func diffMachines(t *testing.T, name string, prog func(m *Machine) interface{}) {
	t.Helper()
	seq := New(0, WithConflictDetection())
	par := New(0, parallelOpts(WithConflictDetection())...)
	wantOut := prog(seq)
	gotOut := prog(par)

	if seq.Cost() != par.Cost() {
		t.Errorf("%s: cost diverged: sequential %v, parallel %v", name, seq.Cost(), par.Cost())
	}
	if seq.Size() != par.Size() {
		t.Fatalf("%s: memory size diverged: sequential %d, parallel %d", name, seq.Size(), par.Size())
	}
	seqMem := seq.LoadSlice(0, seq.Size())
	parMem := par.LoadSlice(0, par.Size())
	for i := range seqMem {
		if seqMem[i] != parMem[i] {
			t.Fatalf("%s: memory cell %d diverged: sequential %d, parallel %d",
				name, i, seqMem[i], parMem[i])
		}
	}
	assertDeepEqual(t, name, wantOut, gotOut)
}

func assertDeepEqual(t *testing.T, name string, want, got interface{}) {
	t.Helper()
	switch w := want.(type) {
	case []int64:
		g := got.([]int64)
		if len(w) != len(g) {
			t.Fatalf("%s: output length diverged: %d vs %d", name, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: output[%d] diverged: %d vs %d", name, i, w[i], g[i])
			}
		}
	case []int:
		g := got.([]int)
		if len(w) != len(g) {
			t.Fatalf("%s: output length diverged: %d vs %d", name, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: output[%d] diverged: %d vs %d", name, i, w[i], g[i])
			}
		}
	case *BoolMatrix:
		if !w.Equal(got.(*BoolMatrix)) {
			t.Fatalf("%s: closure matrices diverged", name)
		}
	case int64:
		if w != got.(int64) {
			t.Fatalf("%s: output diverged: %d vs %d", name, w, got)
		}
	case bool:
		if w != got.(bool) {
			t.Fatalf("%s: output diverged: %v vs %v", name, w, got)
		}
	default:
		t.Fatalf("%s: unhandled output type %T", name, want)
	}
}

// TestParallelMatchesSequentialOnAllPrograms is the differential oracle
// test: every PRAM program in the repository must produce byte-identical
// memory images, outputs, rounds, and work on both executors.
func TestParallelMatchesSequentialOnAllPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, 777) // odd length exercises ragged chunking
	for i := range vals {
		vals[i] = rng.Int63n(1 << 20)
	}
	parent := make([]int, 500)
	for i := range parent {
		if i == 0 || rng.Intn(4) == 0 {
			parent[i] = i
		} else {
			parent[i] = rng.Intn(i)
		}
	}
	adj := randMatrix(rng, 23, 0.12)
	sorted := append([]int64(nil), vals...)
	{
		m := New(0)
		sorted = BitonicSort(m, sorted)
	}

	cases := []struct {
		name string
		prog func(m *Machine) interface{}
	}{
		{"ReduceSum", func(m *Machine) interface{} { return ReduceSum(m, vals) }},
		{"ReduceMax", func(m *Machine) interface{} { return ReduceMax(m, vals) }},
		{"ReduceOr", func(m *Machine) interface{} { return ReduceOr(m, vals) }},
		{"PrefixSum", func(m *Machine) interface{} { return PrefixSum(m, vals) }},
		{"PointerJump", func(m *Machine) interface{} { return PointerJump(m, parent) }},
		{"BitonicSort", func(m *Machine) interface{} { return BitonicSort(m, vals) }},
		{"SearchSorted", func(m *Machine) interface{} { return SearchSorted(m, sorted, vals[3]) }},
		{"TransitiveClosure", func(m *Machine) interface{} { return TransitiveClosure(m, adj) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { diffMachines(t, tc.name, tc.prog) })
	}
}

// TestParallelDefaultGrainPath runs a round wide enough to clear
// DefaultGrain with default options, covering the production configuration
// rather than the test-forced grain of 1.
func TestParallelDefaultGrainPath(t *testing.T) {
	n := 4 * DefaultGrain
	seq := New(n)
	par := New(n, WithWorkers(4))
	step := func(m *Machine) {
		m.MustStep(n, func(c Ctx) { c.Store(c.Proc(), int64(3*c.Proc()+1)) })
	}
	step(seq)
	step(par)
	for i := 0; i < n; i++ {
		if seq.Load(i) != par.Load(i) {
			t.Fatalf("cell %d: sequential %d, parallel %d", i, seq.Load(i), par.Load(i))
		}
	}
	if seq.Cost() != par.Cost() {
		t.Fatalf("cost diverged: %v vs %v", seq.Cost(), par.Cost())
	}
}

// TestParallelConflictDetection checks CREW enforcement across chunk
// boundaries: with grain 1 every processor lands in its own chunk, so the
// collision below is only visible to the cross-chunk writer-map merge.
func TestParallelConflictDetection(t *testing.T) {
	m := New(2, parallelOpts(WithConflictDetection())...)
	m.Store(0, 42)
	err := m.Step(4, func(c Ctx) { c.Store(0, int64(c.Proc())) })
	if err != ErrWriteConflict {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	if m.Load(0) != 42 {
		t.Fatalf("conflicting round committed: cell 0 = %d, want 42", m.Load(0))
	}
	if c := m.Cost(); c.Rounds != 0 || c.Work != 0 {
		t.Fatalf("conflicting round was charged: %v", c)
	}
	// A conflict-free round on the same machine still works afterwards.
	if err := m.Step(2, func(c Ctx) { c.Store(c.Proc(), int64(c.Proc())) }); err != nil {
		t.Fatalf("clean round after conflict: %v", err)
	}
}

// TestParallelIntraChunkConflictDetection forces two processors into one
// chunk so the conflict is latched inside a single sink.
func TestParallelIntraChunkConflictDetection(t *testing.T) {
	m := New(1, WithWorkers(2), WithGrain(2), WithConflictDetection())
	err := m.Step(4, func(c Ctx) { c.Store(0, int64(c.Proc())) })
	if err != ErrWriteConflict {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
}

// TestParallelSameProcRewriteLegal: one processor rewriting its own cell is
// last-write-wins, not a conflict — also on the parallel path.
func TestParallelSameProcRewriteLegal(t *testing.T) {
	m := New(4, parallelOpts(WithConflictDetection())...)
	if err := m.Step(4, func(c Ctx) {
		c.Store(c.Proc(), 1)
		c.Store(c.Proc(), int64(10+c.Proc()))
	}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	for p := 0; p < 4; p++ {
		if m.Load(p) != int64(10+p) {
			t.Fatalf("cell %d = %d, want %d", p, m.Load(p), 10+p)
		}
	}
}

// TestParallelLastWriteWinsMatchesOracle: with detection off, an (illegal)
// multi-writer round must still resolve exactly like the sequential
// executor — the highest processor id wins — so buggy programs at least
// stay deterministic under executor substitution.
func TestParallelLastWriteWinsMatchesOracle(t *testing.T) {
	const procs = 97
	seq := New(1)
	par := New(1, parallelOpts()...)
	kernel := func(c Ctx) { c.Store(0, int64(c.Proc())) }
	seq.MustStep(procs, kernel)
	par.MustStep(procs, kernel)
	if seq.Load(0) != par.Load(0) {
		t.Fatalf("collision resolution diverged: sequential %d, parallel %d", seq.Load(0), par.Load(0))
	}
	if seq.Load(0) != procs-1 {
		t.Fatalf("last write should win: got %d, want %d", seq.Load(0), procs-1)
	}
}

// TestParallelSynchronousSemantics: the parallel executor must also read
// the pre-round image (the n-cell rotation only works if it does).
func TestParallelSynchronousSemantics(t *testing.T) {
	const n = 64
	m := New(n, parallelOpts(WithConflictDetection())...)
	for i := 0; i < n; i++ {
		m.Store(i, int64(i))
	}
	m.MustStep(n, func(c Ctx) {
		c.Store(c.Proc(), c.Load((c.Proc()+1)%n))
	})
	for i := 0; i < n; i++ {
		if m.Load(i) != int64((i+1)%n) {
			t.Fatalf("cell %d = %d, want %d", i, m.Load(i), (i+1)%n)
		}
	}
}

// TestParallelKernelPanicPropagates: a panicking kernel must surface on
// the caller, as with the sequential executor.
func TestParallelKernelPanicPropagates(t *testing.T) {
	m := New(1, parallelOpts()...)
	defer func() {
		if recover() == nil {
			t.Fatal("kernel panic was swallowed by the worker pool")
		}
	}()
	m.MustStep(8, func(c Ctx) {
		if c.Proc() == 5 {
			panic("kernel bug")
		}
	})
}

func TestWithWorkersDefaults(t *testing.T) {
	if got := New(0, WithWorkers(0)).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("WithWorkers(0) → %d workers, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(0).Workers(); got != 1 {
		t.Errorf("default machine has %d workers, want 1", got)
	}
	if got := New(0, WithWorkers(3)).Workers(); got != 3 {
		t.Errorf("WithWorkers(3) → %d workers", got)
	}
	if New(0, WithGrain(-5)).grain != 1 {
		t.Error("WithGrain should clamp to ≥ 1")
	}
}

// TestParallelNarrowRoundFallsBack: a parallel machine still runs narrow
// rounds on the sequential path (procs < 2·grain), transparently.
func TestParallelNarrowRoundFallsBack(t *testing.T) {
	m := New(4, WithWorkers(4)) // default grain; 4 procs is far below it
	if m.parallelEligible(4) {
		t.Fatal("narrow round should not be parallel-eligible")
	}
	m.MustStep(4, func(c Ctx) { c.Store(c.Proc(), 9) })
	for i := 0; i < 4; i++ {
		if m.Load(i) != 9 {
			t.Fatalf("cell %d = %d, want 9", i, m.Load(i))
		}
	}
}
