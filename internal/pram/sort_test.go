package pram

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitonicSortMatchesSequential(t *testing.T) {
	f := func(raw []int32) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		got := BitonicSort(New(1, WithConflictDetection()), vals)
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortDoesNotMutateInput(t *testing.T) {
	vals := []int64{3, 1, 2}
	BitonicSort(New(1), vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestBitonicSortEdgeCases(t *testing.T) {
	if got := BitonicSort(New(1), nil); len(got) != 0 {
		t.Fatal("empty sort broken")
	}
	if got := BitonicSort(New(1), []int64{7}); len(got) != 1 || got[0] != 7 {
		t.Fatal("singleton sort broken")
	}
	// Non-power-of-two with duplicates and negatives.
	got := BitonicSort(New(1, WithConflictDetection()), []int64{5, -1, 5, 0, -1, 3, 2})
	want := []int64{-1, -1, 0, 2, 3, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestBitonicSortRoundsPolylog(t *testing.T) {
	rounds := func(n int) int {
		rng := rand.New(rand.NewSource(int64(n)))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63()
		}
		m := New(1)
		BitonicSort(m, vals)
		return m.Cost().Rounds
	}
	// The network uses exactly Σ_{k=1..log n} k = log n (log n + 1)/2
	// rounds; for n = 1024 that is 55 — far below n.
	r1024 := rounds(1024)
	if r1024 != 55 {
		t.Fatalf("n=1024 used %d rounds, bitonic network predicts 55", r1024)
	}
	r64 := rounds(64)
	if r64 != 21 {
		t.Fatalf("n=64 used %d rounds, want 21", r64)
	}
}
