// Package pram implements a deterministic CREW PRAM simulator.
//
// The paper defines Π-tractable query answering as "parallel polylog-time
// with polynomially many processors", i.e. the class NC, whose canonical
// machine model is the PRAM (parallel random access machine). Physical
// massively-parallel hardware is not available here, so — per the
// substitution rule recorded in DESIGN.md — we simulate the machine and
// account for its two resources exactly:
//
//   - rounds: the number of synchronous parallel steps (parallel time), and
//   - work:   the total number of processor activations across all rounds.
//
// An algorithm is empirically "in NC" when its measured rounds grow
// polylogarithmically in the input size while its processor count stays
// polynomial. The simulator enforces CREW semantics (concurrent reads,
// exclusive writes): two processors writing the same cell in one round is a
// programming error and is detected when conflict checking is enabled.
//
// All computation inside a round reads the memory image from the start of
// the round; writes become visible only when the round commits. This gives
// the synchronous semantics the NC literature assumes.
//
// # Execution engines and the parallel substitution rule
//
// The machine has two interchangeable executors:
//
//   - the sequential executor (the default) runs every processor activation
//     of a round on the calling goroutine, in processor order. It is the
//     reference oracle: simple, allocation-light, and trivially
//     deterministic.
//
//   - the parallel executor (enabled with WithWorkers) partitions a round's
//     activations into contiguous processor-id chunks and runs the chunks on
//     a bounded pool of goroutines. Chunk journals are committed in chunk
//     order, which equals processor order, so the post-round memory image,
//     the round count, the work count, and even the last-write-wins
//     resolution of (illegal, undetected) write collisions are byte-for-byte
//     identical to the sequential executor. CREW conflict detection keeps
//     working: intra-chunk conflicts are caught during the round, and
//     cross-chunk conflicts are caught by merging the per-chunk writer maps
//     before commit.
//
// Substituting one executor for the other therefore never changes results
// or accounted costs — only host wall-clock time. Tests assert this
// differentially on every PRAM program in the repository; benchmarks
// measure the wall-clock gap.
//
// Kernels must be pure with respect to host state: a kernel may read and
// write machine memory through its Ctx and read captured variables, but it
// must not mutate shared host variables, because the parallel executor runs
// kernel invocations concurrently.
package pram

import (
	"errors"
	"fmt"
)

// Cost records the resources consumed by a simulated PRAM computation.
type Cost struct {
	Rounds int   // synchronous parallel steps
	Work   int64 // total processor activations
}

// Add returns the component-wise sum of two costs. Sequencing two PRAM
// computations adds both their rounds and their work.
func (c Cost) Add(d Cost) Cost { return Cost{c.Rounds + d.Rounds, c.Work + d.Work} }

// String renders the cost in a compact human-readable form.
func (c Cost) String() string { return fmt.Sprintf("rounds=%d work=%d", c.Rounds, c.Work) }

// ErrWriteConflict is returned by Step when two processors write the same
// memory cell in one round and conflict detection is enabled. CREW PRAMs
// forbid concurrent writes.
var ErrWriteConflict = errors.New("pram: concurrent write to the same cell within a round")

// Machine is a CREW PRAM with a flat memory of int64 cells.
//
// The zero value is not usable; construct machines with New.
type Machine struct {
	mem     []int64
	rounds  int
	work    int64
	detect  bool
	workers int // ≥ 2 enables the parallel executor
	grain   int // minimum activations per parallel chunk

	seq     roundSink   // reused by the sequential executor
	par     []roundSink // reused per-chunk sinks for the parallel executor
	writers map[int]int // merged writer map for cross-chunk detection
}

type write struct {
	addr int
	val  int64
}

// roundSink collects the writes (and, under conflict detection, the writer
// identities) produced by one executor lane during a round. The sequential
// executor uses a single sink; the parallel executor uses one per chunk.
type roundSink struct {
	journal  []write
	writers  map[int]int // addr -> processor id, populated only when detecting
	conflict bool
}

func (s *roundSink) reset(detect bool) {
	s.journal = s.journal[:0]
	s.conflict = false
	if detect {
		if s.writers == nil {
			s.writers = make(map[int]int)
		} else {
			clear(s.writers)
		}
	}
}

func (s *roundSink) store(proc, addr int, v int64) {
	if s.writers != nil {
		if prev, ok := s.writers[addr]; ok && prev != proc {
			// Record the conflict by poisoning; Step surfaces the error.
			s.conflict = true
		} else {
			s.writers[addr] = proc
		}
	}
	s.journal = append(s.journal, write{addr, v})
}

// Option configures a Machine.
type Option func(*Machine)

// WithConflictDetection enables per-round detection of concurrent writes.
// Detection costs extra host time, so benchmarks leave it off while tests
// turn it on.
func WithConflictDetection() Option {
	return func(m *Machine) { m.detect = true }
}

// New returns a machine with size zeroed memory cells.
func New(size int, opts ...Option) *Machine {
	m := &Machine{mem: make([]int64, size), grain: DefaultGrain}
	for _, o := range opts {
		o(m)
	}
	if m.detect {
		m.writers = make(map[int]int)
	}
	return m
}

// Size reports the number of memory cells.
func (m *Machine) Size() int { return len(m.mem) }

// Grow extends the memory to at least size cells, preserving contents.
// Growing models allocating a larger (still polynomial) memory and is a
// host-side operation with no round cost.
func (m *Machine) Grow(size int) {
	if size <= len(m.mem) {
		return
	}
	grown := make([]int64, size)
	copy(grown, m.mem)
	m.mem = grown
}

// Load reads a cell from the host side (outside any round).
func (m *Machine) Load(addr int) int64 { return m.mem[addr] }

// Store writes a cell from the host side (outside any round). Host I/O is
// part of loading the input and is not charged as PRAM work.
func (m *Machine) Store(addr int, v int64) { m.mem[addr] = v }

// LoadSlice copies cells [base, base+n) into a fresh host slice.
func (m *Machine) LoadSlice(base, n int) []int64 {
	out := make([]int64, n)
	copy(out, m.mem[base:base+n])
	return out
}

// StoreSlice copies a host slice into cells starting at base.
func (m *Machine) StoreSlice(base int, vals []int64) {
	copy(m.mem[base:base+len(vals)], vals)
}

// Cost reports the resources consumed since construction or the last
// ResetCost call.
func (m *Machine) Cost() Cost { return Cost{Rounds: m.rounds, Work: m.work} }

// ResetCost zeroes the round and work counters without touching memory.
func (m *Machine) ResetCost() { m.rounds, m.work = 0, 0 }

// Ctx gives a processor read access to the pre-round memory image and write
// access to the post-round image. It is valid only for the duration of the
// kernel invocation it is passed to.
type Ctx struct {
	m    *Machine
	sink *roundSink
	proc int
}

// Proc reports the processor id executing the kernel, in [0, procs).
func (c Ctx) Proc() int { return c.proc }

// Load reads a cell as it was at the start of the round.
func (c Ctx) Load(addr int) int64 { return c.m.mem[addr] }

// Store schedules a write that commits when the round ends. Writing the same
// cell twice from the same processor keeps the last value; writes from two
// different processors to one cell violate CREW and are reported by Step.
func (c Ctx) Store(addr int, v int64) { c.sink.store(c.proc, addr, v) }

// Step executes one synchronous round on procs processors. Every processor
// runs the kernel once; all loads observe the memory image from the start of
// the round, and all stores commit together when the round returns.
//
// The round adds 1 to Rounds and procs to Work. When the machine was built
// with WithWorkers, rounds wide enough to amortize goroutine scheduling run
// on the parallel executor; results and costs are identical either way.
func (m *Machine) Step(procs int, kernel func(Ctx)) error {
	if procs <= 0 {
		return fmt.Errorf("pram: Step needs a positive processor count, got %d", procs)
	}
	if m.parallelEligible(procs) {
		return m.stepParallel(procs, kernel)
	}
	return m.stepSequential(procs, kernel)
}

func (m *Machine) stepSequential(procs int, kernel func(Ctx)) error {
	s := &m.seq
	s.reset(m.detect)
	for p := 0; p < procs; p++ {
		kernel(Ctx{m: m, sink: s, proc: p})
	}
	if s.conflict {
		return ErrWriteConflict
	}
	for _, w := range s.journal {
		m.mem[w.addr] = w.val
	}
	m.rounds++
	m.work += int64(procs)
	return nil
}

// MustStep is Step for kernels the caller knows to be conflict-free; it
// panics on CREW violations, which indicate a bug in the calling algorithm
// rather than bad input.
func (m *Machine) MustStep(procs int, kernel func(Ctx)) {
	if err := m.Step(procs, kernel); err != nil {
		panic(err)
	}
}
