package pram

import (
	"math/rand"
	"testing"
)

// Sequential-vs-parallel executor benchmarks on the two widest PRAM
// programs in the repository. Run with:
//
//	go test -bench=Executor ./internal/pram
//
// On a multi-core host the parallel variants win roughly linearly in core
// count for the closure (n³-wide rounds); on a single core they track the
// sequential oracle to within the pool's scheduling overhead.

func benchClosure(b *testing.B, opts ...Option) {
	rng := rand.New(rand.NewSource(3))
	adj := randMatrix(rng, 48, 0.08)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TransitiveClosure(New(0, opts...), adj)
	}
}

func BenchmarkExecutorClosureSequential(b *testing.B) { benchClosure(b) }
func BenchmarkExecutorClosureParallel(b *testing.B)   { benchClosure(b, WithWorkers(0)) }

func benchSort(b *testing.B, opts ...Option) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 1<<15)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BitonicSort(New(0, opts...), vals)
	}
}

func BenchmarkExecutorSortSequential(b *testing.B) { benchSort(b) }
func BenchmarkExecutorSortParallel(b *testing.B)   { benchSort(b, WithWorkers(0)) }

func benchWideStep(b *testing.B, opts ...Option) {
	const procs = 1 << 18
	m := New(procs, opts...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MustStep(procs, func(c Ctx) {
			p := c.Proc()
			c.Store(p, c.Load(p)+int64(p))
		})
	}
}

func BenchmarkExecutorWideStepSequential(b *testing.B) { benchWideStep(b) }
func BenchmarkExecutorWideStepParallel(b *testing.B)   { benchWideStep(b, WithWorkers(0)) }
