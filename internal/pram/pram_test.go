package pram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStepSynchronousSemantics(t *testing.T) {
	// A parallel swap only works if reads see the pre-round image.
	m := New(2, WithConflictDetection())
	m.Store(0, 7)
	m.Store(1, 9)
	if err := m.Step(2, func(c Ctx) {
		c.Store(c.Proc(), c.Load(1-c.Proc()))
	}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if m.Load(0) != 9 || m.Load(1) != 7 {
		t.Fatalf("swap failed: got %d,%d", m.Load(0), m.Load(1))
	}
}

func TestStepCountsCost(t *testing.T) {
	m := New(8)
	for i := 0; i < 3; i++ {
		m.MustStep(4, func(Ctx) {})
	}
	got := m.Cost()
	if got.Rounds != 3 || got.Work != 12 {
		t.Fatalf("cost = %+v, want rounds=3 work=12", got)
	}
	m.ResetCost()
	if c := m.Cost(); c.Rounds != 0 || c.Work != 0 {
		t.Fatalf("after reset cost = %+v", c)
	}
}

func TestStepRejectsNonPositiveProcs(t *testing.T) {
	m := New(1)
	if err := m.Step(0, func(Ctx) {}); err == nil {
		t.Fatal("Step(0) succeeded, want error")
	}
}

func TestConflictDetection(t *testing.T) {
	m := New(1, WithConflictDetection())
	err := m.Step(2, func(c Ctx) { c.Store(0, int64(c.Proc())) })
	if err != ErrWriteConflict {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	// Same processor rewriting a cell is legal (last write wins).
	if err := m.Step(1, func(c Ctx) {
		c.Store(0, 1)
		c.Store(0, 2)
	}); err != nil {
		t.Fatalf("single-proc rewrite: %v", err)
	}
	if m.Load(0) != 2 {
		t.Fatalf("last write should win, got %d", m.Load(0))
	}
}

func TestGrowPreservesContents(t *testing.T) {
	m := New(2)
	m.Store(1, 5)
	m.Grow(10)
	if m.Size() != 10 || m.Load(1) != 5 {
		t.Fatalf("grow lost data: size=%d cell=%d", m.Size(), m.Load(1))
	}
	m.Grow(4) // shrinking request is a no-op
	if m.Size() != 10 {
		t.Fatalf("grow shrank memory to %d", m.Size())
	}
}

func TestReduceOps(t *testing.T) {
	vals := []int64{3, -1, 4, 1, 5, 9, 2, 6, 5}
	if got := ReduceMax(New(1, WithConflictDetection()), vals); got != 9 {
		t.Errorf("ReduceMax = %d, want 9", got)
	}
	if got := ReduceSum(New(1, WithConflictDetection()), vals); got != 34 {
		t.Errorf("ReduceSum = %d, want 34", got)
	}
	if !ReduceOr(New(1), []int64{0, 0, 2}) {
		t.Error("ReduceOr missed a true")
	}
	if ReduceOr(New(1), []int64{0, 0, 0}) {
		t.Error("ReduceOr fabricated a true")
	}
	if got := ReduceSum(New(1), nil); got != 0 {
		t.Errorf("empty ReduceSum = %d", got)
	}
}

func TestReduceRoundsLogarithmic(t *testing.T) {
	for _, n := range []int{2, 16, 1024, 4096} {
		m := New(1)
		vals := make([]int64, n)
		ReduceSum(m, vals)
		want := ceilLog2(n)
		if got := m.Cost().Rounds; got != want {
			t.Errorf("n=%d rounds=%d, want %d", n, got, want)
		}
	}
}

func TestPrefixSumMatchesSequential(t *testing.T) {
	f := func(raw []int16) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		got := PrefixSum(New(1, WithConflictDetection()), vals)
		sum := int64(0)
		for i, v := range vals {
			sum += v
			if got[i] != sum {
				return false
			}
		}
		return len(got) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPointerJumpFindsRoots(t *testing.T) {
	// Build a random forest and check every node resolves to its true root.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		parent := make([]int, n)
		for i := range parent {
			if i == 0 || rng.Intn(4) == 0 {
				parent[i] = i // root
			} else {
				parent[i] = rng.Intn(i) // parent strictly earlier: acyclic
			}
		}
		want := make([]int, n)
		for i := range want {
			r := i
			for parent[r] != r {
				r = parent[r]
			}
			want[i] = r
		}
		got := PointerJump(New(1), parent)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d node %d: root %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSearchSorted(t *testing.T) {
	sorted := []int64{1, 3, 5, 7, 9, 11}
	for _, k := range sorted {
		if !SearchSorted(New(1), sorted, k) {
			t.Errorf("missing key %d", k)
		}
	}
	for _, k := range []int64{0, 2, 12} {
		if SearchSorted(New(1), sorted, k) {
			t.Errorf("phantom key %d", k)
		}
	}
	if SearchSorted(New(1), nil, 1) {
		t.Error("found key in empty slice")
	}
}

func TestSearchSortedRoundsLogarithmic(t *testing.T) {
	prev := 0
	for _, n := range []int{1 << 6, 1 << 10, 1 << 14} {
		sorted := make([]int64, n)
		for i := range sorted {
			sorted[i] = int64(2 * i)
		}
		m := New(1)
		SearchSorted(m, sorted, int64(n)) // present
		r := m.Cost().Rounds
		if r > 2*ceilLog2(n)+2 {
			t.Errorf("n=%d rounds=%d exceeds O(log n) bound", n, r)
		}
		if r < prev {
			t.Errorf("rounds decreased with n: %d -> %d", prev, r)
		}
		prev = r
	}
}

func randMatrix(rng *rand.Rand, n int, density float64) *BoolMatrix {
	a := NewBoolMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				a.Set(i, j, true)
			}
		}
	}
	return a
}

func TestTransitiveClosureMatchesWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(24)
		adj := randMatrix(rng, n, 0.15)
		want := WarshallClosure(adj)
		got := TransitiveClosure(New(1), adj)
		if !got.Equal(want) {
			t.Fatalf("trial %d (n=%d): PRAM closure differs from Warshall", trial, n)
		}
	}
}

func TestTransitiveClosureRoundsPolylog(t *testing.T) {
	// Rounds should scale like log²(n): for n=64 expect far fewer rounds
	// than n, and roughly (log 64 / log 8)² ≈ 4x the rounds of n=8.
	rounds := func(n int) int {
		m := New(1)
		adj := NewBoolMatrix(n)
		for i := 0; i+1 < n; i++ {
			adj.Set(i, i+1, true) // a path: worst-case diameter
		}
		TransitiveClosure(m, adj)
		return m.Cost().Rounds
	}
	r8, r64 := rounds(8), rounds(64)
	if r64 >= 64 {
		t.Errorf("closure of n=64 took %d rounds; not polylog", r64)
	}
	if r64 > 8*r8 {
		t.Errorf("round growth 8→64 is %dx (r8=%d r64=%d); exceeds polylog scaling", r64/r8, r8, r64)
	}
}

func TestBoolMatrixHelpers(t *testing.T) {
	a := NewBoolMatrix(2)
	a.Set(0, 1, true)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(1, 0, true)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(NewBoolMatrix(3)) {
		t.Fatal("matrices of different size compared equal")
	}
	if TransitiveClosure(New(1), NewBoolMatrix(0)).N != 0 {
		t.Fatal("empty closure should be empty")
	}
}

func TestCostAddAndString(t *testing.T) {
	c := Cost{Rounds: 2, Work: 10}.Add(Cost{Rounds: 3, Work: 5})
	if c.Rounds != 5 || c.Work != 15 {
		t.Fatalf("Add = %+v", c)
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}
