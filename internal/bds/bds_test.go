package bds

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pitract/internal/graph"
)

// referenceSearch is an independent, deliberately simple implementation of
// the paper's prose: visit s, visit its unvisited neighbours in numbering
// order, push them in reverse numbering order, continue from the stack top.
func referenceSearch(g *graph.Graph) []int32 {
	n := g.N()
	visited := make([]bool, n)
	var order []int32
	var stack []int32
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		order = append(order, int32(start))
		cur := int32(start)
		for {
			var fresh []int32
			for _, w := range g.Neighbors(int(cur)) {
				if !visited[w] {
					visited[w] = true
					order = append(order, w)
					fresh = append(fresh, w)
				}
			}
			for i := len(fresh) - 1; i >= 0; i-- {
				stack = append(stack, fresh[i])
			}
			if len(stack) == 0 {
				break
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return order
}

func TestSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(60)
		g := graph.RandomConnectedUndirected(n, rng.Intn(2*n), int64(trial))
		got, err := Search(g)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceSearch(g)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: search order %v, want %v", trial, got, want)
		}
	}
}

func TestSearchKnownExample(t *testing.T) {
	// Star around 0 with leaves 1,2,3 and an extra edge 2—4:
	// visit 0, then children 1,2,3 (in numbering order); stack top is 1
	// (pushed in reverse); expanding 1 yields nothing; then 2 visits 4.
	g := graph.New(5, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(2, 4)
	order, err := Search(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSearchDepthBias(t *testing.T) {
	// The stack continuation makes BDS depth-biased across batches:
	// 0—1, 0—2, 1—3: after visiting {0,1,2}, the search continues at 1
	// (top of stack) and visits 3 before returning to 2's neighbourhood.
	g := graph.New(5, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	order, err := Search(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	// Contrast: plain BFS from 0 gives the same set but BDS ≠ BFS in
	// general — exercised by the disconnected/chain tests below.
}

func TestSearchDiffersFromBFS(t *testing.T) {
	// 0—1, 0—2, 2—3 but give 1 a deep chain: BDS expands 1's chain before
	// 2's children; BFS would visit 3 earlier.
	g := graph.New(6, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(2, 3)
	order, err := Search(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 4, 5, 3}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	bfsOrder, _ := g.BFS(0)
	if reflect.DeepEqual(order, bfsOrder) {
		t.Fatal("BDS coincided with BFS on a case built to separate them")
	}
}

func TestSearchIsPermutation(t *testing.T) {
	f := func(seed int64, n8, extra8 uint8) bool {
		n := 1 + int(n8)%50
		g := graph.RandomConnectedUndirected(n, int(extra8)%40, seed)
		order, err := Search(g)
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchDisconnectedRestartsInOrder(t *testing.T) {
	g := graph.New(6, false)
	g.MustAddEdge(4, 5) // component {4,5}
	g.MustAddEdge(1, 2) // component {1,2}
	// 0 and 3 isolated.
	order, err := Search(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSearchRejectsDirected(t *testing.T) {
	if _, err := Search(graph.Path(3, true)); err == nil {
		t.Fatal("directed graph accepted")
	}
	if _, err := NewIndex(graph.Path(3, true)); err == nil {
		t.Fatal("directed graph accepted by NewIndex")
	}
}

func TestIndexAnswersAgreeWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := graph.RandomConnectedUndirected(n, rng.Intn(n), int64(trial))
		idx, err := NewIndex(g)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 80; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			fast, err := idx.Before(u, v)
			if err != nil {
				t.Fatal(err)
			}
			bin, err := idx.BeforeBinarySearch(u, v)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := AnswerNaive(g, u, v)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow || bin != slow {
				t.Fatalf("trial %d (%d,%d): fast=%v bin=%v naive=%v", trial, u, v, fast, bin, slow)
			}
		}
	}
}

func TestIndexQueryValidation(t *testing.T) {
	idx, err := NewIndex(graph.Path(3, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Before(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := idx.Before(0, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := idx.BeforeBinarySearch(5, 0); err == nil {
		t.Error("out-of-range node accepted by binary search")
	}
	if _, err := AnswerNaive(graph.Path(3, false), 0, 9); err == nil {
		t.Error("out-of-range node accepted by naive")
	}
	if before, _ := idx.Before(1, 1); before {
		t.Error("node visited before itself")
	}
}

func TestIndexEncodeDecodeRoundTrip(t *testing.T) {
	g := graph.RandomConnectedUndirected(30, 15, 5)
	idx, err := NewIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeIndex(idx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx.Order(), back.Order()) {
		t.Fatal("round trip changed the visit order")
	}
	if back.Len() != 30 {
		t.Fatalf("Len = %d", back.Len())
	}
}

func TestDecodeIndexRejectsCorrupt(t *testing.T) {
	idx, _ := NewIndex(graph.Path(4, false))
	enc := idx.Encode()
	bad := [][]byte{nil, enc[:1], append(append([]byte{}, enc...), 7)}
	for i, b := range bad {
		if _, err := DecodeIndex(b); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Not a permutation: element repeated.
	nonPerm := []byte{3, 0, 0, 1}
	if _, err := DecodeIndex(nonPerm); err == nil {
		t.Error("non-permutation decoded")
	}
	// Element out of range.
	outOfRange := []byte{2, 0, 5}
	if _, err := DecodeIndex(outOfRange); err == nil {
		t.Error("out-of-range element decoded")
	}
}
