// Package bds implements Breadth-Depth Search, the problem the paper proves
// ΠTP-complete (Theorem 5).
//
// BDS (Example 2, citing Greenlaw–Hoover–Ruzzo [21]):
//
//	Input:    an undirected graph G = (V, E) with a numbering on the nodes,
//	          and a pair (u, v) of nodes in V.
//	Question: is u visited before v in the breadth-depth search of G
//	          induced by the vertex numbering?
//
// The search starts at the smallest-numbered node and visits all its
// unvisited neighbours in numbering order, pushing them onto a stack in
// reverse numbering order (so the smallest ends on top). It then continues
// from the node on top of the stack. When the stack empties with unvisited
// nodes remaining (a disconnected graph), the search restarts from the
// smallest unvisited node. BDS is P-complete, which is what makes it the
// "hardest" member of ΠTP.
//
// The package provides the traversal itself, the Example 5 preprocessing
// (run the search once, keep the visit-order list M), and both answering
// paths the paper discusses: binary search over M in O(log |M|) and the
// O(1) position-array readout. The Figure-1 pair of factorizations is wired
// into the framework by internal/core.
package bds

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pitract/internal/graph"
)

// Search runs the breadth-depth search over g (which must be undirected)
// and returns the visit order: order[i] is the i-th node visited. Every
// node appears exactly once.
func Search(g *graph.Graph) ([]int32, error) {
	if g.Directed() {
		return nil, fmt.Errorf("bds: breadth-depth search is defined on undirected graphs")
	}
	n := g.N()
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	stack := make([]int32, 0, n)
	visit := func(v int32) {
		visited[v] = true
		order = append(order, v)
	}
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visit(int32(start))
		cur := int32(start)
		for {
			// Visit all unvisited neighbours of cur in increasing order;
			// push them in reverse so the smallest ends on top.
			nbrs := g.Neighbors(int(cur)) // ascending by construction
			firstNew := len(stack)
			for _, w := range nbrs {
				if !visited[w] {
					visit(w)
					stack = append(stack, w)
				}
			}
			// Reverse the freshly pushed run in place.
			for i, j := firstNew, len(stack)-1; i < j; i, j = i+1, j-1 {
				stack[i], stack[j] = stack[j], stack[i]
			}
			if len(stack) == 0 {
				break
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// Index is the Example 5 preprocessing output: the visit-order list M
// together with a by-node lookup. It answers "is u visited before v" either
// in O(1) (position array) or in O(log n) (binary search over the sorted
// (node, position) pairs), matching the two costs the paper quotes.
type Index struct {
	order []int32 // M: order[i] = i-th visited node
	pos   []int32 // pos[v] = position of node v in M
	// byNode holds node ids sorted ascending; byNodePos[i] is the position
	// of byNode[i]. Kept separately to honour the paper's "binary searches
	// on M" answering path.
	byNode    []int32
	byNodePos []int32
}

// NewIndex preprocesses g by running the search once (PTIME in |G|).
func NewIndex(g *graph.Graph) (*Index, error) {
	order, err := Search(g)
	if err != nil {
		return nil, err
	}
	return newIndexFromOrder(order), nil
}

func newIndexFromOrder(order []int32) *Index {
	n := len(order)
	idx := &Index{order: order, pos: make([]int32, n)}
	for i, v := range order {
		idx.pos[v] = int32(i)
	}
	idx.byNode = make([]int32, n)
	idx.byNodePos = make([]int32, n)
	for v := 0; v < n; v++ {
		idx.byNode[v] = int32(v)
		idx.byNodePos[v] = idx.pos[v]
	}
	return idx
}

// Len reports the number of nodes.
func (x *Index) Len() int { return len(x.order) }

// Order returns the visit-order list M. The slice aliases the index.
func (x *Index) Order() []int32 { return x.order }

// Before answers the BDS question in O(1) via the position array.
func (x *Index) Before(u, v int) (bool, error) {
	if err := x.check(u, v); err != nil {
		return false, err
	}
	return x.pos[u] < x.pos[v], nil
}

// BeforeBinarySearch answers via two O(log |M|) binary searches over the
// node-sorted view of M — the access path Example 5 describes.
func (x *Index) BeforeBinarySearch(u, v int) (bool, error) {
	if err := x.check(u, v); err != nil {
		return false, err
	}
	pu := x.lookup(int32(u))
	pv := x.lookup(int32(v))
	return pu < pv, nil
}

func (x *Index) lookup(node int32) int32 {
	i := sort.Search(len(x.byNode), func(i int) bool { return x.byNode[i] >= node })
	return x.byNodePos[i]
}

func (x *Index) check(u, v int) error {
	n := len(x.order)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("bds: query (%d,%d) out of range [0,%d)", u, v, n)
	}
	return nil
}

// Encode serializes the index (the list M) as bytes: it is the Π(D)
// produced by the Figure-1 factorization Υ_BDS.
func (x *Index) Encode() []byte {
	b := binary.AppendUvarint(nil, uint64(len(x.order)))
	for _, v := range x.order {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return b
}

// DecodeIndex parses an encoded index.
func DecodeIndex(buf []byte) (*Index, error) {
	off := 0
	n64, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("bds: corrupt index length")
	}
	off += k
	order := make([]int32, n64)
	seen := make([]bool, n64)
	for i := range order {
		v, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, fmt.Errorf("bds: corrupt index entry %d", i)
		}
		off += k
		if v >= n64 || seen[v] {
			return nil, fmt.Errorf("bds: entry %d is not a permutation element", i)
		}
		seen[v] = true
		order[i] = int32(v)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("bds: %d trailing bytes", len(buf)-off)
	}
	return newIndexFromOrder(order), nil
}

// AnswerNaive answers a single query with a full fresh search — the Υ′
// factorization of Figure 1 where nothing is preprocessed: PTIME per query.
func AnswerNaive(g *graph.Graph, u, v int) (bool, error) {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false, fmt.Errorf("bds: query (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return false, nil // "before" is strict
	}
	order, err := Search(g)
	if err != nil {
		return false, err
	}
	for _, w := range order {
		if int(w) == u {
			return true, nil
		}
		if int(w) == v {
			return false, nil
		}
	}
	return false, fmt.Errorf("bds: query nodes never visited") // unreachable
}
