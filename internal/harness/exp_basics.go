package harness

import (
	"math/rand"

	"pitract/internal/core"
	"pitract/internal/listsearch"
	"pitract/internal/relation"
	"pitract/internal/scanmodel"
	"pitract/internal/schemes"
)

// E1PointSelection reproduces Example 1: the paper's 1PB arithmetic
// (regenerated from the model) and a real measurement of scan-per-query vs
// preprocessing + logarithmic answering across relation sizes.
func E1PointSelection(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "point selection: linear scan vs B⁺-tree-style index",
		Columns: []string{"rows", "scan ns/query", "indexed ns/query",
			"speedup", "preprocess ns"},
	}
	scanScheme := schemes.PointSelectionScanScheme()
	idxScheme := schemes.PointSelectionScheme()
	lang := schemes.SelectionLanguage()
	var scanSeries, idxSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 8, 1 << 10, 1 << 12, 1 << 14},
		[]int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}) {
		rel := relation.Generate(relation.GenConfig{Rows: n, Seed: int64(n), KeyMax: int64(2 * n)})
		d := rel.Encode()
		rng := rand.New(rand.NewSource(int64(n) + 7))
		queries := make([][]byte, 64)
		for i := range queries {
			queries[i] = schemes.PointQuery(rng.Int63n(int64(4 * n)))
		}
		// Correctness first: both schemes must agree with the language.
		var pairs []core.Pair
		for _, q := range queries[:8] {
			pairs = append(pairs, core.Pair{D: d, Q: q})
		}
		if err := idxScheme.VerifyAgainst(lang, pairs); err != nil {
			return nil, err
		}
		var prep []byte
		prepNs := timeOp(1, func() {
			var err error
			prep, err = idxScheme.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		qi := 0
		scanNs := timeOp(32, func() {
			_, _ = scanScheme.Answer(d, queries[qi%len(queries)])
			qi++
		})
		idxNs := timeOp(4096, func() {
			_, _ = idxScheme.Answer(prep, queries[qi%len(queries)])
			qi++
		})
		t.AddRow(n, scanNs, idxNs, scanNs/idxNs, prepNs)
		scanSeries = append(scanSeries, core.Measurement{N: float64(n), Cost: scanNs})
		idxSeries = append(idxSeries, core.Measurement{N: float64(n), Cost: idxNs})
	}
	t.Note("%s", fitNote("scan answering", scanSeries))
	t.Note("%s", fitNote("indexed answering", idxSeries))
	for _, row := range scanmodel.Table(scanmodel.PaperSSD(), 100, 64) {
		t.Note("model %s: scan %s vs indexed %s (paper: 1PB = 166,666s ≈ 46h ≈ 1.9d)",
			row.Label, row.ScanHuman, scanmodel.HumanDuration(row.IndexedSeconds))
	}
	return t, nil
}

// C1RangeSelection measures the §4(1) Boolean range query.
func C1RangeSelection(s Scale) (*Table, error) {
	t := &Table{
		ID:      "C1",
		Title:   "range selection: scan vs sorted-key index",
		Columns: []string{"rows", "scan ns/query", "indexed ns/query", "speedup"},
	}
	idxScheme := schemes.RangeSelectionScheme()
	lang := schemes.RangeSelectionLanguage()
	var idxSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 8, 1 << 10, 1 << 12, 1 << 14},
		[]int{1 << 10, 1 << 13, 1 << 16, 1 << 18}) {
		rel := relation.Generate(relation.GenConfig{Rows: n, Seed: int64(n), KeyMax: int64(2 * n)})
		d := rel.Encode()
		rng := rand.New(rand.NewSource(int64(n)))
		queries := make([][]byte, 64)
		for i := range queries {
			lo := rng.Int63n(int64(2 * n))
			queries[i] = schemes.RangeQuery(lo, lo+rng.Int63n(64))
		}
		var pairs []core.Pair
		for _, q := range queries[:8] {
			pairs = append(pairs, core.Pair{D: d, Q: q})
		}
		if err := idxScheme.VerifyAgainst(lang, pairs); err != nil {
			return nil, err
		}
		prep, err := idxScheme.Preprocess(d)
		if err != nil {
			return nil, err
		}
		qi := 0
		scanNs := timeOp(32, func() {
			_, _ = lang.Contains(d, queries[qi%len(queries)])
			qi++
		})
		idxNs := timeOp(4096, func() {
			_, _ = idxScheme.Answer(prep, queries[qi%len(queries)])
			qi++
		})
		t.AddRow(n, scanNs, idxNs, scanNs/idxNs)
		idxSeries = append(idxSeries, core.Measurement{N: float64(n), Cost: idxNs})
	}
	t.Note("%s", fitNote("indexed answering", idxSeries))
	return t, nil
}

// C2ListSearch measures §4(2): sort once, binary-search many, in probe
// counts (machine-independent) and wall time.
func C2ListSearch(s Scale) (*Table, error) {
	t := &Table{
		ID:      "C2",
		Title:   "searching in a list: scan vs sort + binary search",
		Columns: []string{"|M|", "scan ns/query", "binsearch ns/query", "probes/query"},
	}
	var probeSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 10, 1 << 13, 1 << 16},
		[]int{1 << 12, 1 << 15, 1 << 18, 1 << 21}) {
		rng := rand.New(rand.NewSource(int64(n)))
		list := make([]int64, n)
		for i := range list {
			list[i] = rng.Int63()
		}
		idx := listsearch.NewIndex(list)
		probes := [1 << 8]int64{}
		var probeTargets [1 << 8]int64
		for i := range probeTargets {
			probeTargets[i] = rng.Int63()
		}
		qi := 0
		scanNs := timeOp(16, func() {
			listsearch.Scan(list, probeTargets[qi%len(probeTargets)])
			qi++
		})
		binNs := timeOp(4096, func() {
			_, p := idx.ContainsProbes(probeTargets[qi%len(probeTargets)])
			probes[qi%len(probes)] = int64(p)
			qi++
		})
		maxProbes := int64(0)
		for _, p := range probes {
			if p > maxProbes {
				maxProbes = p
			}
		}
		t.AddRow(n, scanNs, binNs, maxProbes)
		probeSeries = append(probeSeries, core.Measurement{N: float64(n), Cost: float64(maxProbes)})
	}
	t.Note("%s", fitNote("probe count", probeSeries))
	return t, nil
}

// C6Views measures §4(6): answering over materialized views vs the base
// relation.
func C6Views(s Scale) (*Table, error) {
	t := &Table{
		ID:      "C6",
		Title:   "query answering using views: base scan vs view index",
		Columns: []string{"rows", "|V(D)| rows", "base ns/query", "views ns/query", "speedup"},
	}
	return c6impl(t, s)
}
