package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment at Quick scale and
// sanity-checks the produced tables. This is the repository's integration
// test: it exercises every substrate through the framework at once.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Fatalf("table id %q, want %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s row %d has %d cells for %d columns", e.ID, i, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			out := buf.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, tbl.Columns[0]) {
				t.Fatalf("%s render missing header: %q", e.ID, out[:80])
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Fatal("E1 not found")
	}
	if _, ok := Find("e1"); !ok {
		t.Fatal("case-insensitive lookup broken")
	}
	if _, ok := Find("ZZ"); ok {
		t.Fatal("phantom experiment found")
	}
	if len(All()) != 34 {
		t.Fatalf("experiment count = %d, want 23 from DESIGN.md plus X1…X11", len(All()))
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow(1.5, "x")
	tbl.AddRow(0.00012, 3)
	tbl.AddRow(1234567.0, true)
	tbl.Note("hello %d", 42)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"1.50", "0.0001", "1.23e+06", "hello 42", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestScaleSizes(t *testing.T) {
	q, f := []int{1}, []int{2}
	if Quick.sizes(q, f)[0] != 1 || Full.sizes(q, f)[0] != 2 {
		t.Fatal("Scale.sizes broken")
	}
}

func TestTimeOpPositive(t *testing.T) {
	ns := timeOp(10, func() {})
	if ns < 0 {
		t.Fatal("negative duration")
	}
	if timeOp(0, func() {}) < 0 {
		t.Fatal("iters clamp broken")
	}
}
