package harness

import (
	"math/rand"

	"pitract/internal/btree"
	"pitract/internal/graph"
	"pitract/internal/pram"
	"pitract/internal/rmq"
)

// A1ClosureAblation compares the three transitive-closure implementations:
// sequential Warshall, bitset BFS, and the PRAM repeated-squaring schedule
// (reporting its round count — the NC evidence).
func A1ClosureAblation(s Scale) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "transitive closure: Warshall vs bitset-BFS vs PRAM squaring",
		Columns: []string{"|V|", "warshall ns", "bitset ns", "pram ns",
			"pram rounds", "pram work"},
	}
	for _, n := range s.sizes([]int{16, 32, 64}, []int{32, 64, 128, 192}) {
		g := graph.RandomDirected(n, 3*n, int64(n))
		adj := g.AdjacencyMatrix()
		warshallNs := timeOp(3, func() { pram.WarshallClosure(adj) })
		bitsetNs := timeOp(3, func() { graph.NewClosure(g) })
		var machine *pram.Machine
		pramNs := timeOp(1, func() {
			var mat *pram.BoolMatrix
			mat, machine = graph.ClosurePRAM(g)
			_ = mat
		})
		cost := machine.Cost()
		t.AddRow(n, warshallNs, bitsetNs, pramNs, cost.Rounds, cost.Work)
	}
	t.Note("PRAM rounds grow polylog in |V| while its (simulated) work is O(n³ log n) — the NC² schedule")
	return t, nil
}

// A2BTreeFanout sweeps the B⁺-tree order: higher fanout lowers height (and
// probes) at the cost of wider nodes.
func A2BTreeFanout(s Scale) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "B⁺-tree fanout ablation",
		Columns: []string{"order", "height", "probes/lookup", "lookup ns", "insert ns"},
	}
	n := s.sizes([]int{1 << 14}, []int{1 << 18})[0]
	rng := rand.New(rand.NewSource(9))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	for _, order := range []int{4, 8, 16, 64, 256} {
		tr := btree.MustNew(order)
		insertNs := timeOp(1, func() {
			for row, k := range keys {
				tr.Insert(k, row)
			}
		}) / float64(n)
		_, probes := tr.ContainsProbes(keys[n/2])
		qi := 0
		lookupNs := timeOp(4096, func() {
			tr.Contains(keys[qi%n])
			qi++
		})
		t.AddRow(order, tr.Height(), probes, lookupNs, insertNs)
	}
	t.Note("height (and probes) fall as log_order(n): Example 1's access-path knob")
	return t, nil
}

// A3RMQAblation contrasts the RMQ structures' preprocessing time and space
// against query time — the Fischer–Heun space saving the paper cites.
func A3RMQAblation(s Scale) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "RMQ structures: build time, space, query time",
		Columns: []string{"structure", "n", "build ns", "aux words", "ns/query"},
	}
	n := s.sizes([]int{1 << 15}, []int{1 << 20})[0]
	rng := rand.New(rand.NewSource(2))
	a := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(1 << 30)
	}
	type qr struct{ i, j int }
	queries := make([]qr, 256)
	for k := range queries {
		i := rng.Intn(n)
		queries[k] = qr{i, i + rng.Intn(n-i)}
	}
	build := []struct {
		name string
		mk   func() rmq.Querier
	}{
		{"naive", func() rmq.Querier { return rmq.NewNaive(a) }},
		{"sparse", func() rmq.Querier { return rmq.NewSparse(a) }},
		{"fischer-heun", func() rmq.Querier { return rmq.NewFischerHeun(a, 0) }},
	}
	for _, b := range build {
		var q rmq.Querier
		buildNs := timeOp(1, func() { q = b.mk() })
		iters := 4096
		if b.name == "naive" {
			iters = 8
		}
		qi := 0
		queryNs := timeOp(iters, func() {
			q.Query(queries[qi%len(queries)].i, queries[qi%len(queries)].j)
			qi++
		})
		t.AddRow(b.name, n, buildNs, q.Words(), queryNs)
	}
	t.Note("fischer-heun trades a slower build for sparse-table query speed at a fraction of the space")
	return t, nil
}
